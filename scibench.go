// Package scibench is a statistically sound benchmarking library for
// parallel computing, reproducing Hoefler & Belli, "Scientific
// Benchmarking of Parallel Computing Systems: Twelve ways to tell the
// masses when reporting performance results" (SC'15).
//
// It is the supported public surface over the implementation packages:
//
//   - measurement campaigns with warmup, adaptive CI-driven stopping and
//     explicit outlier policy (Run, Plan, Result);
//   - the correct summaries for costs, rates and ratios (Rules 3–4);
//   - confidence intervals of the mean (Student-t) and of the median and
//     arbitrary quantiles (nonparametric, Le Boudec);
//   - normality diagnostics (Shapiro–Wilk, Q-Q) and sound comparisons
//     (Welch t-test, one-way ANOVA, Kruskal–Wallis, effect size);
//   - quantile regression for tail-sensitive comparisons (Fig 4);
//   - bounds models (ideal, Amdahl, parallel-overhead, machine model);
//   - the designed-experiment pipeline (Experiment → Results → Audit)
//     with a twelve-rule compliance audit;
//   - a simulated parallel machine (clusters, clocks, collectives,
//     noise) substituting for MPI testbeds, for fully reproducible
//     experiments.
//
// The quickstart in examples/quickstart/main.go measures a function and
// prints a fully analyzed, audit-clean report in ~20 lines.
package scibench

import (
	"context"
	"io"
	"math/rand/v2"
	"net/http"

	"repro/internal/bench"
	"repro/internal/bootstrap"
	"repro/internal/bounds"
	"repro/internal/campaign"
	"repro/internal/ci"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/doe"
	"repro/internal/faults"
	"repro/internal/htest"
	"repro/internal/model"
	"repro/internal/qreg"
	"repro/internal/regress"
	"repro/internal/remote"
	"repro/internal/report"
	"repro/internal/rules"
	"repro/internal/shard"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/suite"
	"repro/internal/telemetry"
	"repro/internal/timer"
)

// Measurement campaign configuration and results (package bench).
type (
	// Plan configures a measurement campaign: warmup, fixed or adaptive
	// sample counts, confidence level, outlier policy, and the analysis
	// worker count (Plan.Workers, 0 = GOMAXPROCS; results are
	// worker-count invariant).
	Plan = bench.Plan
	// Result is a fully analyzed campaign: summary statistics, CIs of
	// mean and median, normality diagnostics, and provenance.
	Result = bench.Result
	// OutlierPolicy selects Tukey-fence removal (the removed count is
	// always reported, per §3.1.3).
	OutlierPolicy = bench.OutlierPolicy
	// CrossProcess is the Rule 10 summarization of per-process samples
	// with an ANOVA pooling gate.
	CrossProcess = bench.CrossProcess
	// StopReason explains why sample collection ended (see the Stop*
	// constants).
	StopReason = bench.StopReason
)

// Run executes a measurement campaign against the measure closure.
func Run(plan Plan, measure func() float64) (Result, error) {
	return bench.Run(plan, measure)
}

// RunErr executes a campaign against an error-aware measure closure: a
// returned error fails that sample attempt, which Plan.Resilience
// retries and accounts rather than aborting.
func RunErr(plan Plan, measure func() (float64, error)) (Result, error) {
	return bench.RunErr(plan, measure)
}

// RunCtx is Run under a context: cancellation (Ctrl-C, a wall-clock
// budget) checkpoints the campaign cleanly with StopInterrupted instead
// of discarding the collected samples.
func RunCtx(ctx context.Context, plan Plan, measure func() float64) (Result, error) {
	return bench.RunCtx(ctx, plan, measure)
}

// RunErrCtx is RunErr under a context; see RunCtx.
func RunErrCtx(ctx context.Context, plan Plan, measure func() (float64, error)) (Result, error) {
	return bench.RunErrCtx(ctx, plan, measure)
}

// Stop reasons recorded in Result.Stop.
const (
	// StopFixed: no adaptive target; the fixed sample count was collected.
	StopFixed = bench.StopFixed
	// StopConverged: the CI reached the requested relative width.
	StopConverged = bench.StopConverged
	// StopMaxSamples: the budget ran out before convergence.
	StopMaxSamples = bench.StopMaxSamples
	// StopDegraded: resilient collection abandoned the campaign after too
	// many losses; the Result is partial with full loss accounting.
	StopDegraded = bench.StopDegraded
	// StopInterrupted: the context was cancelled and collection
	// checkpointed cleanly; a journaled campaign can resume.
	StopInterrupted = bench.StopInterrupted
)

// Analyze runs the full statistical analysis over an existing sample.
func Analyze(xs []float64, confidence float64) (Result, error) {
	return bench.Analyze(xs, confidence)
}

// SummarizeAcrossProcesses applies the Rule 10 procedure: ANOVA across
// the per-process samples decides whether pooling is sound.
func SummarizeAcrossProcesses(perProc [][]float64, alpha float64) (CrossProcess, error) {
	return bench.SummarizeAcrossProcesses(perProc, alpha)
}

// Descriptive statistics (package stats).
type (
	// Summary is the descriptive-statistics bundle the paper asks
	// experimenters to report.
	Summary = stats.Summary
	// MetricKind classifies a metric as cost, rate, or ratio (Rules 3–4).
	MetricKind = stats.Kind
)

// Metric kinds.
const (
	Cost  = stats.Cost
	Rate  = stats.Rate
	Ratio = stats.Ratio
)

// Mean returns the arithmetic mean (correct for costs, Rule 3).
func Mean(xs []float64) float64 { return stats.Mean(xs) }

// HarmonicMean returns the harmonic mean (correct for rates, Rule 3).
func HarmonicMean(xs []float64) (float64, error) { return stats.HarmonicMean(xs) }

// GeometricMean returns the geometric mean (last resort for ratios,
// Rule 4).
func GeometricMean(xs []float64) (float64, error) { return stats.GeometricMean(xs) }

// SummarizeMean dispatches to the correct mean for the metric kind.
func SummarizeMean(kind MetricKind, xs []float64) (float64, error) {
	return stats.SummarizeMean(kind, xs)
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return stats.Median(xs) }

// Quantile returns the p-quantile of xs (type-7 interpolation).
func Quantile(xs []float64, p float64) float64 { return stats.QuantileOf(xs, p) }

// TrimmedMean returns the mean after removing the trim fraction from
// each tail — a robust alternative to outlier removal.
func TrimmedMean(xs []float64, trim float64) (float64, error) {
	return stats.TrimmedMean(xs, trim)
}

// MAD returns the (normal-consistent) median absolute deviation, the
// robust spread companion to the median.
func MAD(xs []float64) float64 { return stats.MAD(xs) }

// Summarize computes the full descriptive summary.
func Summarize(xs []float64) Summary { return stats.Summarize(xs) }

// Sample is the allocation-lean fast path through the statistics layer:
// it sorts the data exactly once at construction and caches the sorted
// view plus the single-pass (Welford) moments, so quantiles, the
// Summary, Tukey fences, and the rank-based CIs all reuse one ordered
// view. A Sample is immutable after construction and safe for
// concurrent use.
type Sample = stats.Sample

// NewSample wraps xs in a Sample, sorting a copy once and accumulating
// the moments. The slice itself is retained (not copied) and must not
// be mutated while the Sample is in use.
func NewSample(xs []float64) *Sample { return stats.NewSample(xs) }

// Confidence intervals (package ci).
type (
	// Interval is a two-sided confidence interval around a point
	// estimate.
	Interval = ci.Interval
	// StoppingRule is the §4.2.2 sequential CI-width stopping criterion.
	StoppingRule = ci.StoppingRule
)

// MeanCI returns the Student-t confidence interval for the mean.
func MeanCI(xs []float64, confidence float64) (Interval, error) {
	return ci.MeanCI(xs, confidence)
}

// MedianCI returns the nonparametric rank-based CI for the median.
func MedianCI(xs []float64, confidence float64) (Interval, error) {
	return ci.MedianCI(xs, confidence)
}

// QuantileCI returns the nonparametric rank-based CI for any quantile.
func QuantileCI(xs []float64, p, confidence float64) (Interval, error) {
	return ci.QuantileCI(xs, p, confidence)
}

// RequiredSamples computes the sample size needed for a target relative
// error at a confidence level, from a normal pilot sample (§4.2.2).
func RequiredSamples(pilot []float64, confidence, relErr float64) (int, error) {
	return ci.RequiredSamples(pilot, confidence, relErr)
}

// Hypothesis tests (package htest).
type (
	// TestResult carries a test statistic and its p-value.
	TestResult = htest.TestResult
	// ANOVAResult extends TestResult with the variance decomposition.
	ANOVAResult = htest.ANOVAResult
)

// ShapiroWilk tests composite normality (Rule 6; 3 <= n <= 5000).
func ShapiroWilk(xs []float64) (TestResult, error) { return htest.ShapiroWilk(xs) }

// TTest compares two means (welch=true recommended).
func TTest(xs, ys []float64, welch bool) (TestResult, error) {
	return htest.TTest(xs, ys, welch)
}

// OneWayANOVA tests equality of k group means (§3.2.1).
func OneWayANOVA(groups ...[]float64) (ANOVAResult, error) {
	return htest.OneWayANOVA(groups...)
}

// KruskalWallis tests equality of k group medians (§3.2.2).
func KruskalWallis(groups ...[]float64) (TestResult, error) {
	return htest.KruskalWallis(groups...)
}

// EffectSize returns the standardized mean difference (§3.2.2).
func EffectSize(xs, ys []float64) (float64, error) { return htest.EffectSize(xs, ys) }

// MannWhitneyResult extends TestResult with the U statistics and the
// rank-biserial effect size.
type MannWhitneyResult = htest.MannWhitneyResult

// MannWhitney performs the two-sample Wilcoxon rank-sum test (the
// two-group Kruskal–Wallis specialization of §3.2.2), with mid-ranks,
// tie-corrected variance, and a continuity-corrected two-sided p.
func MannWhitney(xs, ys []float64) (MannWhitneyResult, error) {
	return htest.MannWhitney(xs, ys)
}

// PairedTTest tests the mean of paired differences (blocked designs).
func PairedTTest(xs, ys []float64) (TestResult, error) { return htest.PairedTTest(xs, ys) }

// MeanDifferenceCI returns the Welch CI for mean(ys) − mean(xs).
func MeanDifferenceCI(xs, ys []float64, confidence float64) (lo, hi float64, err error) {
	return htest.MeanDifferenceCI(xs, ys, confidence)
}

// AndersonDarling tests composite normality with the A² statistic — one
// of the alternatives Rule 6's discussion compares Shapiro–Wilk against.
func AndersonDarling(xs []float64) (TestResult, error) { return htest.AndersonDarling(xs) }

// Lilliefors tests composite normality with the KS statistic and
// estimated parameters.
func Lilliefors(xs []float64) (TestResult, error) { return htest.Lilliefors(xs) }

// KolmogorovSmirnov tests xs against a fully specified CDF.
func KolmogorovSmirnov(xs []float64, cdf func(float64) float64) (TestResult, error) {
	return htest.KolmogorovSmirnov(xs, cdf)
}

// IIDDiagnosis bundles independence diagnostics (autocorrelations and
// the runs test) behind the iid requirement of §3.1.3.
type IIDDiagnosis = htest.IIDDiagnosis

// DiagnoseIID checks a measurement series for serial dependence.
func DiagnoseIID(xs []float64, maxLag int) (IIDDiagnosis, error) {
	return htest.DiagnoseIID(xs, maxLag)
}

// Bootstrap resampling (package bootstrap) — the "more advanced
// techniques" pointer of the paper's related work, for statistics with
// no analytic interval.

// BootstrapMethod selects the bootstrap interval construction.
type BootstrapMethod = bootstrap.Method

// Bootstrap interval constructions.
const (
	// BootstrapPercentile uses raw bootstrap-distribution quantiles.
	BootstrapPercentile = bootstrap.Percentile
	// BootstrapBCa applies bias correction and acceleration.
	BootstrapBCa = bootstrap.BCa
)

// BootstrapCI computes a resampling CI for an arbitrary statistic. The
// resamples are sharded across all cores with one derived PCG stream
// per resample, so the interval is bit-identical however many workers
// run it; the stat must be safe for concurrent calls on distinct
// slices.
func BootstrapCI(xs []float64, stat func([]float64) float64, method BootstrapMethod,
	resamples int, confidence float64, rng *rand.Rand) (Interval, error) {
	return bootstrap.CI(xs, stat, method, resamples, confidence, rng)
}

// BootstrapDifferenceCI bootstraps stat(ys) − stat(xs), parallelized
// with the same worker-count-invariance guarantee as BootstrapCI.
func BootstrapDifferenceCI(xs, ys []float64, stat func([]float64) float64,
	resamples int, confidence float64, rng *rand.Rand) (Interval, error) {
	return bootstrap.DifferenceCI(xs, ys, stat, resamples, confidence, rng)
}

// Factorial design (package doe, §4's recommendation).
type (
	// DesignFactor is one factor with its levels.
	DesignFactor = doe.Factor
	// FactorialDesign is a set of runs over factor-level combinations.
	FactorialDesign = doe.Design
	// DesignObservations holds replicated measurements per run.
	DesignObservations = doe.Observations
	// FactorEffect is one estimated main effect or interaction.
	FactorEffect = doe.Effect
)

// FullFactorial enumerates every factor-level combination.
func FullFactorial(factors []DesignFactor) (*FactorialDesign, error) {
	return doe.FullFactorial(factors)
}

// TwoLevelDesign builds a 2^k design over the named factors.
func TwoLevelDesign(names ...string) (*FactorialDesign, error) {
	return doe.TwoLevel(names...)
}

// CollectDesign executes a design with `reps` replicates per run.
func CollectDesign(d *FactorialDesign, reps int, measure func(levels []int) float64) (*DesignObservations, error) {
	return doe.Collect(d, reps, measure)
}

// FactorEffects estimates main effects (and optionally two-factor
// interactions) of a replicated two-level design.
func FactorEffects(obs *DesignObservations, interactions bool) ([]FactorEffect, error) {
	return doe.Effects(obs, interactions)
}

// Software counters (package counters — the PAPI analogue).
type (
	// CounterDelta is the counter change across one measured region.
	CounterDelta = counters.Delta
)

// MeasureCounters runs fn once and returns its counter delta (allocation
// volume, GC activity, elapsed time).
func MeasureCounters(fn func()) CounterDelta { return counters.Measure(fn) }

// CounterSeries collects per-invocation deltas over n runs.
func CounterSeries(n int, fn func()) []CounterDelta { return counters.Series(n, fn) }

// Quantile regression (package qreg).
type (
	// QuantileFit is one fitted quantile-regression model.
	QuantileFit = qreg.Fit
	// QuantilePoint is one quantile's two-group comparison (Fig 4).
	QuantilePoint = qreg.TwoGroupPoint
)

// QuantileRegress fits the exact Koenker–Bassett LP for tau.
func QuantileRegress(x [][]float64, y []float64, tau float64) (QuantileFit, error) {
	return qreg.Regress(x, y, tau)
}

// CompareQuantiles computes per-quantile differences between two systems
// with confidence bands (the Fig 4 analysis).
func CompareQuantiles(base, alt []float64, taus []float64, confidence float64) ([]QuantilePoint, error) {
	return qreg.TwoGroupQuantiles(base, alt, taus, confidence)
}

// Bounds models (package bounds).
type (
	// BoundsModel is a scaling lower-bound-on-time model (Rule 11).
	BoundsModel = bounds.Model
	// Ideal is the linear-speedup bound.
	Ideal = bounds.Ideal
	// Amdahl is the serial-fraction bound.
	Amdahl = bounds.Amdahl
	// ParallelOverhead adds a p-dependent overhead term.
	ParallelOverhead = bounds.ParallelOverhead
	// MachineModel is the k-dimensional capability vector Γ of §5.1.
	MachineModel = bounds.MachineModel
	// Requirements is an application's measured rate vector τ.
	Requirements = bounds.Requirements
	// Roofline is the k = 2 machine model.
	Roofline = bounds.Roofline
)

// NewMachineModel builds a validated machine model.
func NewMachineModel(features []string, peaks []float64) (*MachineModel, error) {
	return bounds.NewMachineModel(features, peaks)
}

// Semi-analytic model fitting (package model, §5.1).
type (
	// ModelFit is a fitted linear model with goodness-of-fit.
	ModelFit = model.Fit
	// CollectiveModel is the LogP-style T(p) = A + B·log₂p + C·p model.
	CollectiveModel = model.CollectiveModel
	// SegmentedModel is the piecewise log-linear model of Fig 7's
	// reduction overhead.
	SegmentedModel = model.Segmented
)

// LeastSquares fits y ≈ X·β by ordinary least squares.
func LeastSquares(x [][]float64, y []float64, names []string) (ModelFit, error) {
	return model.LeastSquares(x, y, names)
}

// FitCollective fits the LogP-style collective model to (p, seconds)
// measurements.
func FitCollective(ps []int, seconds []float64) (CollectiveModel, error) {
	return model.FitCollective(ps, seconds)
}

// FitSegmented fits a piecewise log-linear model split at the given
// process-count breakpoints.
func FitSegmented(ps []int, seconds []float64, breaks []int) (SegmentedModel, error) {
	return model.FitSegmented(ps, seconds, breaks)
}

// Experiment pipeline (package core).
type (
	// Experiment is a designed measurement campaign (Rule 9 metadata +
	// plan + configurations).
	Experiment = core.Experiment
	// Metadata documents an experiment's environment and factors.
	Metadata = core.Metadata
	// Configuration is one factor-level combination.
	Configuration = core.Configuration
	// Results is an analyzed experiment.
	Results = core.Results
	// Comparison is the Rule 7 comparison battery.
	Comparison = core.Comparison
)

// Rules audit (package rules).
type (
	// RulesReport describes a study for auditing.
	RulesReport = rules.Report
	// Finding is one audit observation.
	Finding = rules.Finding
	// Compliance is the 12-rule scorecard.
	Compliance = rules.Compliance
	// ExperimentEnv documents the nine environment classes of Table 1.
	ExperimentEnv = rules.Environment
	// ExperimentFactor is one varied factor with its levels.
	ExperimentFactor = rules.Factor
	// ParallelTimingDoc documents Rule 10 methodology.
	ParallelTimingDoc = rules.ParallelTiming
	// RulesPlot describes one figure for the Rule 12 audit.
	RulesPlot = rules.Plot
	// RulesComparison records one A-beats-B claim for the Rule 7 audit.
	RulesComparison = rules.Comparison
	// RulesSpeedup documents a speedup claim for the Rule 1 audit.
	RulesSpeedup = rules.Speedup
	// RulesSummaryUse records one summarized metric for Rules 3–4.
	RulesSummaryUse = rules.SummaryUse
)

// AuditRules checks a report against the twelve rules.
func AuditRules(r RulesReport) ([]Finding, Compliance) {
	fs := rules.Audit(r)
	return fs, rules.Summarize(fs)
}

// RuleText returns rule n's text verbatim (1–12).
func RuleText(n int) string {
	if n < 1 || n > 12 {
		return ""
	}
	return rules.RuleTexts[n]
}

// Fault injection and resilient measurement (packages faults, bench,
// htest): deterministic, seeded fault schedules for the simulated
// machine, a collection loop that survives and accounts failures, and a
// change-point detector for mid-campaign contamination.
type (
	// FaultSchedule is a deterministic set of injected faults for a
	// simulated cluster (set ClusterConfig.Faults).
	FaultSchedule = faults.Schedule
	// Straggler is a persistently slowed node.
	Straggler = faults.Straggler
	// InterferenceBurst is a windowed (optionally periodic) latency
	// multiplier on the interconnect.
	InterferenceBurst = faults.Burst
	// MessageLoss is probabilistic message loss with timeout-based
	// retransmission and exponential backoff.
	MessageLoss = faults.Loss
	// RankCrash removes a rank from the machine at a point in time.
	RankCrash = faults.Crash
	// ClockStepFault is an NTP-style step of one rank's clock, violating
	// the §4.2.1 synchronization assumptions.
	ClockStepFault = faults.ClockStep
	// ClusterFaultStats counts fault events a simulated machine absorbed.
	ClusterFaultStats = cluster.FaultStats
	// Resilience arms the fault-tolerant collection loop in a Plan:
	// per-sample watchdog, value ceiling, bounded retries, and explicit
	// loss accounting in the Result.
	Resilience = bench.Resilience
	// ChangePoint is the result of Pettitt's nonparametric change-point
	// test over an ordered measurement stream.
	ChangePoint = htest.ChangePoint
)

// Sentinel errors of the measurement API, for errors.Is branching.
var (
	// ErrBadPlan reports a Plan or Resilience field with a nonsensical
	// value.
	ErrBadPlan = bench.ErrBadPlan
	// ErrTooFewSamples reports a sample too small to analyze.
	ErrTooFewSamples = bench.ErrTooFewSamples
	// ErrTooFewProcesses reports a cross-process summary over fewer than
	// two processes.
	ErrTooFewProcesses = bench.ErrTooFewProcesses
	// ErrMeasurePanic wraps a panic recovered from a measure closure.
	ErrMeasurePanic = bench.ErrMeasurePanic
	// ErrSampleTimeout reports a sample attempt that exceeded the
	// resilience watchdog deadline.
	ErrSampleTimeout = bench.ErrSampleTimeout
	// ErrBadFaultSchedule reports an invalid fault schedule.
	ErrBadFaultSchedule = faults.ErrBadSchedule
)

// FaultPreset returns a named ready-made fault schedule ("straggler",
// "burst", "loss", "crash", "clockstep", "storm", or a comma-separated
// combination); "" and "none" return nil.
func FaultPreset(name string) (*FaultSchedule, error) { return faults.Preset(name) }

// FaultPresetNames lists the available preset names.
func FaultPresetNames() []string { return faults.PresetNames() }

// DetectChangePoint runs Pettitt's change-point test over the ordered
// series — the contamination check behind Result.ShiftDetected, usable
// standalone on any sample stream (n >= 8).
func DetectChangePoint(xs []float64) (ChangePoint, error) { return htest.Pettitt(xs) }

// Simulated parallel machine (package cluster).
type (
	// Cluster is a simulated parallel machine.
	Cluster = cluster.Machine
	// ClusterConfig describes a simulated system.
	ClusterConfig = cluster.Config
	// Collective is a simulated collective operation's result.
	Collective = cluster.CollectiveResult
	// CollectiveResultMode selects exact per-rank vs fixed-size summary
	// collective results (ClusterConfig.ResultMode).
	CollectiveResultMode = cluster.ResultMode
	// CollectiveSummary is the streaming quantile sketch a summary-mode
	// Collective carries instead of O(P) per-rank times.
	CollectiveSummary = stats.QuantileSketch
)

// Collective result modes: auto switches to summaries at
// ClusterConfig.SummaryThreshold ranks (default 2^16).
const (
	CollectiveModeAuto    = cluster.ModeAuto
	CollectiveModePerRank = cluster.ModePerRank
	CollectiveModeSummary = cluster.ModeSummary
)

// ParseCollectiveResultMode parses "auto", "perrank"/"exact" or
// "summary" (CLI -mode flags).
func ParseCollectiveResultMode(s string) (CollectiveResultMode, error) {
	return cluster.ParseResultMode(s)
}

// NewCluster instantiates a simulated machine with `ranks` processes.
func NewCluster(cfg ClusterConfig, ranks int, seed uint64) (*Cluster, error) {
	return cluster.New(cfg, ranks, seed)
}

// Preset system models of the paper's §4.1.2 testbeds.
var (
	// PizDaint approximates the Cray XC30 partition.
	PizDaint = cluster.PizDaint
	// PizDora approximates the Cray XC40.
	PizDora = cluster.PizDora
	// Pilatus approximates the InfiniBand FDR cluster.
	Pilatus = cluster.Pilatus
	// QuietCluster returns a noise-free test system.
	QuietCluster = cluster.Quiet
)

// Collective microbenchmark suite (package suite).
type (
	// SuiteConfig parametrizes a collective microbenchmark sweep,
	// including SuiteConfig.Workers: how many configurations are
	// measured concurrently (0 = GOMAXPROCS, 1 = serial). Seeds are
	// assigned from the canonical sweep order before fan-out, so the
	// SuiteResult is bit-identical for every worker count.
	SuiteConfig = suite.Config
	// SuiteResult is a completed sweep with fitted scaling models.
	SuiteResult = suite.Result
)

// RunSuite executes the SKaMPI-style collective suite; progress rows
// stream to w (nil for silent).
func RunSuite(cfg SuiteConfig, w io.Writer) (*SuiteResult, error) {
	return suite.Run(context.Background(), cfg, w)
}

// RunSuiteCtx is RunSuite under a context: cancellation checkpoints the
// sweep and returns the partial result marked Interrupted.
func RunSuiteCtx(ctx context.Context, cfg SuiteConfig, w io.Writer) (*SuiteResult, error) {
	return suite.Run(ctx, cfg, w)
}

// Open-loop service workloads (packages serve and suite; ROADMAP item 2).
type (
	// ArrivalConfig parametrizes a seeded open-loop arrival process:
	// Poisson, multi-period diurnal, or bursty ON/OFF.
	ArrivalConfig = serve.ArrivalConfig
	// DiurnalPeriod is one sinusoidal component of a diurnal rate
	// profile.
	DiurnalPeriod = serve.DiurnalPeriod
	// ServeServiceConfig is the lognormal per-request service-time
	// model.
	ServeServiceConfig = serve.ServiceConfig
	// ServeStall is one injected dispatch freeze — the canonical
	// coordinated-omission trigger.
	ServeStall = serve.Stall
	// ServeServerConfig is the simulated service under test: parallel
	// servers, bounded queue, size/deadline batching, lognormal service
	// times, injected dispatch stalls.
	ServeServerConfig = serve.ServerConfig
	// ServeOptions configures one simulated serving epoch.
	ServeOptions = serve.Options
	// ServeResult is one fully simulated epoch with its latency
	// histogram.
	ServeResult = serve.Result
	// OmissionCheck quantifies coordinated omission: the open- vs
	// closed-loop p99 gap on the identical seeded stall schedule.
	OmissionCheck = serve.OmissionCheck
	// ServeSweepConfig parametrizes an offered-load ramp of the serve
	// workload; like SuiteConfig, results are bit-identical for every
	// Workers value.
	ServeSweepConfig = suite.ServeConfig
	// ServeSweepResult is a completed load sweep with per-point tail
	// quantiles, rank-based CIs, and the detected latency knee.
	ServeSweepResult = suite.ServeResult
	// LogHistogram is the mergeable log-bucketed latency histogram
	// behind the serve workload's tail percentiles: 0 allocs per
	// Record, relative quantization error ≤ 1/64.
	LogHistogram = stats.LogHistogram
)

// RunServe simulates one serving epoch: seeded open- or closed-loop
// arrivals into the configured servers, every latency recorded.
func RunServe(o ServeOptions) (ServeResult, error) {
	return serve.Run(o)
}

// CheckCoordinatedOmission runs the same seeded workload open- and
// closed-loop and reports how badly the closed loop under-reports the
// tail (Rules 2, 5, 6).
func CheckCoordinatedOmission(o ServeOptions) (OmissionCheck, error) {
	return serve.CheckCoordinatedOmission(o)
}

// RunServeSweep ramps offered load through the configured fractions of
// capacity and reports tail latency per point with the detected knee;
// progress rows stream to w (nil for silent).
func RunServeSweep(ctx context.Context, cfg ServeSweepConfig, w io.Writer) (*ServeSweepResult, error) {
	return suite.RunServe(ctx, cfg, w)
}

// QuantileCIHist is Le Boudec's rank-based quantile CI resolved through
// a LogHistogram's cumulative counts — nonparametric tail CIs at
// millions of recorded requests without materializing a sample slice.
func QuantileCIHist(h *LogHistogram, p, confidence float64) (Interval, error) {
	return ci.QuantileCIHist(h, p, confidence)
}

// Timer calibration (package timer).
type (
	// TimerCalibration is a clock's measured resolution and overhead.
	TimerCalibration = timer.Calibration
)

// CalibrateTimer measures the wall clock's resolution and overhead and
// returns the §4.2.1 quality thresholds via Calibration.Check.
func CalibrateTimer(samples int) TimerCalibration {
	return timer.Calibrate(timer.NewWallClock(), samples)
}

// Rendering and export (package report).

// WriteCSV exports named sample columns (Rule 9's data release).
func WriteCSV(w io.Writer, names []string, cols ...[]float64) error {
	return report.WriteCSV(w, names, cols...)
}

// DensityPlot renders an annotated ASCII density (Fig 1 style).
func DensityPlot(w io.Writer, xs []float64, width, height int) error {
	return report.DensityPlot(w, xs, width, height)
}

// BoxPlot renders per-group ASCII box plots (Fig 6/7c style).
func BoxPlot(w io.Writer, groups map[string][]float64, width int) error {
	return report.BoxPlot(w, groups, width)
}

// ViolinPlot renders per-group ASCII violins (Fig 7c style).
func ViolinPlot(w io.Writer, groups map[string][]float64, width int) error {
	return report.ViolinPlot(w, groups, width)
}

// QQPlot renders a normal quantile-quantile scatter (Fig 2 style).
func QQPlot(w io.Writer, xs []float64, width, height int) error {
	return report.QQPlot(w, xs, width, height)
}

// Series is one named line in an XY chart.
type Series = report.Series

// XYPlot renders multiple series on a shared ASCII grid (Fig 5/7a/b
// style).
func XYPlot(w io.Writer, title string, series []Series, width, height int) error {
	return report.XYPlot(w, title, series, width, height)
}

// WriteRulesReport renders audit findings grouped by rule with the
// verbatim rule text for every non-passing rule.
func WriteRulesReport(w io.Writer, findings []Finding) error {
	return rules.WriteReport(w, findings)
}

// Durable, interruptible campaigns (package campaign): a write-ahead
// sample journal with per-record checksums, a manifest binding the
// journal to its exact setup (Rule 9), and crash/cancel recovery that
// resumes a deterministic campaign bit-for-bit.
type (
	// CampaignManifest binds a journal to the setup that produced it:
	// seed, config hash, fault-schedule fingerprint, environment.
	CampaignManifest = campaign.Manifest
	// CampaignJournal is an open write-ahead journal; attach it via
	// Plan.Record to make every collection event durable.
	CampaignJournal = campaign.Journal
	// CampaignState is the collection state replayed from a journal,
	// with any torn tail dropped.
	CampaignState = campaign.State
	// CampaignResumeInfo reports what a resume recovered and verified.
	CampaignResumeInfo = campaign.ResumeInfo
	// CampaignResumeOptions tunes resume for the measure source; the
	// zero value is right for deterministic (seeded simulated) sources.
	CampaignResumeOptions = campaign.ResumeOptions
	// CampaignJournalFormat selects the journal's on-disk encoding: v1
	// JSONL (one CRC-framed JSON line per event, fsynced per record) or
	// the v2 chunked binary format (delta-encoded columns, CRC per
	// chunk, group fsync). Readers sniff the format; the choice never
	// enters the campaign identity.
	CampaignJournalFormat = campaign.Format
	// CampaignJournalOptions selects the journal format and chunk width
	// for a new campaign; the zero value keeps the v1 default.
	CampaignJournalOptions = campaign.JournalOptions
	// CampaignConvertInfo is ConvertCampaignJournal's accounting: what
	// was converted and the before/after sizes.
	CampaignConvertInfo = campaign.ConvertInfo
)

// Journal format selectors (see CampaignJournalFormat).
const (
	JournalFormatJSONL = campaign.FormatJSONL
	JournalFormatV2    = campaign.FormatV2
)

// NewCampaignManifest builds the Rule 9 manifest for a journaled
// campaign: config is the complete setup description (hashed
// canonically), sched the injected fault schedule (nil for none).
func NewCampaignManifest(name string, seed uint64, config any, sched *FaultSchedule, env ExperimentEnv) (CampaignManifest, error) {
	return campaign.NewManifest(name, seed, config, sched, env)
}

// RunCampaign executes a fully journaled campaign in dir: every
// collection event is durable before the next observation runs, so an
// interruption at any point leaves a resumable journal.
func RunCampaign(ctx context.Context, dir string, m CampaignManifest, plan Plan, measure func() (float64, error)) (Result, error) {
	return campaign.Run(ctx, dir, m, plan, measure)
}

// RunCampaignOpts is RunCampaign with explicit journal options —
// notably JournalFormatV2 for the chunked binary journal. The report
// is byte-identical across formats; only the journal's encoding and
// durability batching change.
func RunCampaignOpts(ctx context.Context, dir string, m CampaignManifest, plan Plan,
	measure func() (float64, error), opt CampaignJournalOptions) (Result, error) {
	return campaign.RunOpts(ctx, dir, m, plan, measure, opt)
}

// ParseJournalFormat parses a -journal-format flag value: "" or "v1"
// or "jsonl" → JournalFormatJSONL; "v2" or "binary" → JournalFormatV2.
func ParseJournalFormat(s string) (CampaignJournalFormat, error) {
	return campaign.ParseFormat(s)
}

// ConvertCampaignJournal rewrites a completed (non-torn) campaign's
// journal in the other format, atomically and with a record-for-record
// re-replay verification. The campaign stays resumable afterwards:
// format is storage, not identity. flushEvery ≤ 0 picks the default
// v2 chunk width.
func ConvertCampaignJournal(dir string, to CampaignJournalFormat, flushEvery int) (CampaignConvertInfo, error) {
	return campaign.ConvertJournal(dir, to, flushEvery)
}

// ResumeCampaign continues an interrupted journaled campaign: it
// replays the journal (dropping any torn tail), refuses on manifest
// drift (Rule 9), fast-forwards the deterministic measure source, and
// runs to completion — bit-identical to an uninterrupted run.
func ResumeCampaign(ctx context.Context, dir string, current CampaignManifest, plan Plan,
	measure func() (float64, error), opt CampaignResumeOptions) (Result, CampaignResumeInfo, error) {
	return campaign.Resume(ctx, dir, current, plan, measure, opt)
}

// LoadCampaign inspects a campaign directory without opening it for
// writing: the manifest plus the verified journal state.
func LoadCampaign(dir string) (CampaignManifest, CampaignState, error) {
	return campaign.Load(dir)
}

// CampaignBoundaryShift checks whether a significant regime shift
// localizes at a suspend/resume boundary index (Rule 6 quarantine).
func CampaignBoundaryShift(xs []float64, boundary int, alpha float64) (ChangePoint, bool, error) {
	return campaign.BoundaryShift(xs, boundary, alpha)
}

// Sentinel errors of the campaign layer, for errors.Is branching.
var (
	// ErrManifestDrift reports a resume whose current setup differs from
	// the recorded one; resume is refused (Rule 9).
	ErrManifestDrift = campaign.ErrManifestDrift
	// ErrReplayDivergence reports fast-forward re-measurement that did
	// not reproduce the journaled samples.
	ErrReplayDivergence = campaign.ErrReplayDivergence
	// ErrCampaignExists reports RunCampaign on a directory that already
	// holds a campaign (resume it instead).
	ErrCampaignExists = campaign.ErrCampaignExists
	// ErrNoCampaign reports a resume/load on a directory without one.
	ErrNoCampaign = campaign.ErrNoCampaign
	// ErrRecorder wraps a journal write failure that aborted collection.
	ErrRecorder = bench.ErrRecorder
)

// Performance-regression gate (package regress): the paper's
// statistics applied to the repo's own benchmarks. A BenchReport is a
// recorded multi-run sample set (`BENCH_*.json`, schema v2 with raw
// per-run samples; legacy v1 single-run files still parse);
// CompareBenchReports turns a baseline/candidate pair into
// per-benchmark PASS / REGRESSED / IMPROVED / INCONCLUSIVE verdicts
// backed by median rank CIs, Mann–Whitney tests, and the §4.2.2 power
// check. cmd/benchjson records reports; cmd/benchgate gates on them.
type (
	// BenchReport is one recorded benchmark run set with its Rule 9
	// environment block and optional provenance.
	BenchReport = regress.Report
	// BenchRecord is one benchmark's per-run raw samples.
	BenchRecord = regress.Result
	// BenchProvenance documents where a committed baseline came from.
	BenchProvenance = regress.Provenance
	// GateOptions configures the gate (effect threshold, alpha,
	// confidence, Tukey k, gated unit); the zero value is usable.
	GateOptions = regress.Options
	// GateReport is a completed gate run: per-benchmark comparisons
	// plus cross-cutting Rule 9 caveats.
	GateReport = regress.GateReport
	// GateComparison is one benchmark's verdict with its evidence.
	GateComparison = regress.Comparison
	// GateVerdict is the per-benchmark conclusion.
	GateVerdict = regress.Verdict
)

// Gate verdicts.
const (
	GatePass         = regress.VerdictPass
	GateRegressed    = regress.VerdictRegressed
	GateImproved     = regress.VerdictImproved
	GateInconclusive = regress.VerdictInconclusive
)

// ParseBenchReport decodes a BENCH_*.json document (schema v2 or
// legacy v1).
func ParseBenchReport(data []byte) (*BenchReport, error) { return regress.ParseReport(data) }

// LoadBenchReport reads and parses a BENCH_*.json file.
func LoadBenchReport(path string) (*BenchReport, error) { return regress.LoadReport(path) }

// ParseBenchOutput parses `go test -bench` text output into a
// BenchReport, grouping `-count N` repetitions into per-run samples.
func ParseBenchOutput(r io.Reader) (*BenchReport, error) { return regress.ParseBench(r) }

// CompareBenchReports runs the regression gate over a baseline and a
// candidate report.
func CompareBenchReports(baseline, candidate *BenchReport, opt GateOptions) (*GateReport, error) {
	return regress.Compare(baseline, candidate, opt)
}

// BenchEnvFingerprint hashes an environment block into the short
// identifier provenance records and the gate's Rule 9 drift check use.
func BenchEnvFingerprint(env map[string]string) string { return regress.EnvFingerprint(env) }

// Distributed campaign execution (package shard): partition a sweep's
// canonical config order into shard manifests, run each shard as an
// independent journaled executor process (heartbeat liveness, crash and
// stall detection, reassignment with resume-from-journal), and merge
// the shard journals into one report byte-identical to the
// single-process run. Exhausted-retry shards surface as explicit
// losses, never as silently shorter samples (Rule 4).
type (
	// ShardUnit is one entry of a sweep's canonical config order: ID,
	// pre-assigned seed, config hash, and the raw config an executor
	// rebuilds the measurement from.
	ShardUnit = shard.Unit
	// ShardSweep is the partitioned sweep: the full unit table, its
	// hash, and the shard count.
	ShardSweep = shard.SweepManifest
	// ShardManifest pins one shard's slice of the sweep.
	ShardManifest = shard.Manifest
	// ShardUnitRunner rebuilds a unit's campaign (manifest, plan,
	// measure closure) from its recorded config.
	ShardUnitRunner = shard.UnitRunner
	// ShardExecOptions tunes one executor run (attempt number,
	// heartbeat interval, progress writer).
	ShardExecOptions = shard.ExecOptions
	// ShardSuperviseOptions tunes the supervisor: heartbeat timeout,
	// poll interval, retry budget, backoff.
	ShardSuperviseOptions = shard.Options
	// ShardStatus is the supervisor's per-shard outcome accounting.
	ShardStatus = shard.ShardStatus
	// ShardStartFunc launches one executor attempt for a shard.
	ShardStartFunc = shard.StartFunc
	// ShardMergeReport is the deterministic merge of all shard journals
	// with its per-seam drift checks and loss accounting.
	ShardMergeReport = shard.MergeReport
)

// ErrShardDrift reports a shard or sweep manifest that does not match
// the sweep claiming it; the merge is refused (Rule 9).
var ErrShardDrift = shard.ErrShardDrift

// ShardDirName is the canonical directory name of shard i inside a
// sweep directory ("shard-000", "shard-001", ...).
func ShardDirName(i int) string { return shard.ShardDirName(i) }

// NewShardSweep builds a sweep manifest over the given canonical unit
// order, partitioned into the given number of shards.
func NewShardSweep(name string, units []ShardUnit, faultFingerprint string, env ExperimentEnv, shards int) (ShardSweep, error) {
	return shard.NewSweep(name, units, faultFingerprint, env, shards)
}

// CreateShardSweep materializes a sweep directory: sweep.json plus one
// shard-NNN/ directory per shard, each with its shard manifest.
func CreateShardSweep(dir string, s ShardSweep) error { return shard.Create(dir, s) }

// LoadShardSweep reads a sweep directory back, re-verifying its hash.
func LoadShardSweep(dir string) (ShardSweep, error) { return shard.LoadSweep(dir) }

// ExecShard runs one shard to completion as an executor: per-unit
// journaled campaigns, heartbeats, resume-from-journal on reassignment,
// completed units skipped.
func ExecShard(ctx context.Context, shardDir string, r ShardUnitRunner, opt ShardExecOptions) error {
	_, err := shard.ExecShard(ctx, shardDir, r, opt)
	return err
}

// SuperviseShards runs every shard of a sweep under supervision: stall
// and crash detection via heartbeats, reassignment with exponential
// backoff, explicit loss after the retry budget.
func SuperviseShards(ctx context.Context, sweepDir string, start ShardStartFunc, opt ShardSuperviseOptions) ([]ShardStatus, error) {
	return shard.Supervise(ctx, sweepDir, start, opt)
}

// ShardExecutorCommand builds a StartFunc that forks argv with
// "-attempt=N" and the shard directory appended — the local-process
// executor launcher.
func ShardExecutorCommand(stdout, stderr io.Writer, argv ...string) ShardStartFunc {
	return shard.Command(stdout, stderr, argv...)
}

// MergeShards merges every shard's journals into one deterministic
// report, refusing drifted manifests and checking every merge seam for
// regime shifts (Rule 6).
func MergeShards(sweepDir string) (*ShardMergeReport, error) { return shard.Merge(sweepDir) }

// WriteMergedShardManifest records the merge outcome (per-shard env
// fingerprints, seam checks, loss accounting) as merged.json in the
// sweep directory.
func WriteMergedShardManifest(sweepDir string, r *ShardMergeReport) error {
	return shard.WriteMerged(sweepDir, r)
}

// HashCampaignConfig hashes a config value the way campaign manifests
// do — the hash a ShardUnit must carry for its executor-built manifest
// to verify.
func HashCampaignConfig(v any) (string, error) { return campaign.HashJSON(v) }

// Cross-machine shard execution (package remote): an HTTP/JSON
// transport that plugs remote worker processes into the shard
// supervisor's StartFunc seam. Workers register with a coordinator,
// receive hash-pinned shard manifests, run the journaled executor
// locally, and ship journal chunks back with CRC framing and resumable
// offsets; the coordinator mirrors each shard's files locally, fences
// stale attempts so a zombie worker's late chunks are refused, and
// reassigns lost workers' shards — so the merged report stays
// byte-identical to the single-process run under crashes, stalls, and
// network partitions. Each worker's Rule 9 host environment is
// fingerprinted and recorded per shard; the merge stratifies cross-host
// seams by host rather than pooling across them.
type (
	// RemoteCoordinator accepts worker registrations for one sweep and
	// exposes the StartFunc the shard supervisor launches attempts
	// through.
	RemoteCoordinator = remote.Coordinator
	// RemoteCoordinatorOptions tunes the coordinator (listen address,
	// per-request timeout, assignment retry budget, seed).
	RemoteCoordinatorOptions = remote.CoordinatorOptions
	// RemoteWorker is a running worker agent: it executes assigned
	// shards locally and ships their journals back.
	RemoteWorker = remote.Worker
	// RemoteWorkerOptions tunes a worker (coordinator URL, listen
	// address, work dir, unit runner, ship interval).
	RemoteWorkerOptions = remote.WorkerOptions
	// RemoteFaultTransport is a seeded, deterministic network-fault
	// injector (drops, delays, duplication, partitions) wrapped around
	// an HTTP transport — for rehearsing partition tolerance.
	RemoteFaultTransport = remote.FaultTransport
)

// NewRemoteCoordinator starts a coordinator serving the sweep in
// sweepDir. Close it when the campaign is done.
func NewRemoteCoordinator(sweepDir string, opt RemoteCoordinatorOptions) (*RemoteCoordinator, error) {
	return remote.NewCoordinator(sweepDir, opt)
}

// StartRemoteWorker starts a worker agent and registers it with its
// coordinator. Close it to cancel its jobs and stop serving.
func StartRemoteWorker(opt RemoteWorkerOptions) (*RemoteWorker, error) {
	return remote.StartWorker(opt)
}

// RemoteHostEnv captures this machine's Rule 9 host environment — the
// record each worker registers and the merge stratifies by.
func RemoteHostEnv() ExperimentEnv { return remote.HostEnv() }

// NewRemoteFaultTransport seeds a deterministic fault injector around
// next (nil for the default HTTP transport).
func NewRemoteFaultTransport(seed uint64, next http.RoundTripper) *RemoteFaultTransport {
	return remote.NewFaultTransport(seed, next)
}

// Harness observability (package telemetry): a lock-cheap metrics
// registry the measurement layers instrument unconditionally,
// hierarchical spans emitted as an out-of-band JSONL trace, and an
// optional HTTP endpoint serving /metrics, /trace, and net/http/pprof.
// Telemetry never changes report bytes, campaign identity, or RNG
// positions — the bit-identity guarantees hold with it on or off.
type (
	// TelemetryRegistry is a named collection of counters, gauges, and
	// streaming histograms.
	TelemetryRegistry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time capture of every metric.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetryServer is a running /metrics + /trace + pprof endpoint.
	TelemetryServer = telemetry.Server
	// TraceSpan is one completed interval of harness work (campaign →
	// sweep → config → collection → analysis).
	TraceSpan = telemetry.Span
	// TelemetrySpanSink receives every completed span; implemented by
	// the JSONL sink and the chunked binary trace writer.
	TelemetrySpanSink = telemetry.SpanSink
	// BinaryTraceWriter streams spans as chunked binary (the journal
	// v2 encoder: per-chunk string table, varint delta columns) —
	// roughly an order of magnitude smaller than the JSONL trace.
	BinaryTraceWriter = telemetry.BinaryTraceWriter
)

// Telemetry returns the process-wide metrics registry the harness
// instruments (sample counts, retries, watchdog trips, fsync latency,
// worker occupancy, analysis-stage durations, ...).
func Telemetry() *TelemetryRegistry { return telemetry.Default() }

// EnableTelemetryTrace arms span tracing. sink, when non-nil, receives
// every completed span as one JSON line (the out-of-band JSONL trace);
// nil keeps spans only in the in-memory ring served by /trace.
func EnableTelemetryTrace(sink io.Writer) { telemetry.Enable(sink) }

// EnableTelemetryTraceSink arms span tracing with an arbitrary sink —
// e.g. a BinaryTraceWriter for the chunked binary trace.
func EnableTelemetryTraceSink(sink TelemetrySpanSink) { telemetry.EnableSink(sink) }

// NewBinaryTraceWriter returns a binary trace sink streaming chunks to
// w; the caller owns w and should Flush (or Close) the writer before
// closing it.
func NewBinaryTraceWriter(w io.Writer) *BinaryTraceWriter {
	return telemetry.NewBinaryTraceWriter(w)
}

// ReadBinaryTrace decodes a binary trace file: the spans of every
// whole, CRC-verified chunk, and whether a torn tail was dropped.
func ReadBinaryTrace(data []byte) ([]TraceSpan, bool) {
	return telemetry.ReadBinaryTrace(data)
}

// DisableTelemetryTrace stops span collection and detaches the sink.
func DisableTelemetryTrace() { telemetry.Disable() }

// ServeTelemetry starts the observability endpoint on addr (":0" picks
// a free port; read it back with Addr). Close the server when done.
func ServeTelemetry(addr string) (*TelemetryServer, error) { return telemetry.Serve(addr) }
