package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	scibench "repro"
)

// v2Args is the fixed configuration of the v2 durability test: enough
// samples that the chunked journal seals several 64-record chunks
// mid-campaign, paced so a SIGKILL lands between seals.
func v2Args(dir string, extra ...string) []string {
	base := []string{"-system", "daint", "-samples", "200", "-relerr", "0.0001",
		"-seed", "17", "-throttle", "5ms", "-dir", dir}
	return append(base, extra...)
}

// TestCampaignV2SIGKILLResumeByteIdentity drives the v2 journal's crash
// story against the real binary: run a campaign with -journal-format
// v2, SIGKILL it after at least one chunk has sealed (losing the
// unsealed tail — the format's durability trade), resume it from the
// sealed prefix, and require the final analysis byte-identical to both
// an uninterrupted v2 run and an uninterrupted v1 run of the same
// configuration. Then exercise `scibench convert` both ways on the
// completed campaign.
func TestCampaignV2SIGKILLResumeByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real processes with wall-clock pacing")
	}

	// Reference 1: uninterrupted v1 run.
	v1 := filepath.Join(t.TempDir(), "camp")
	v1Out, err := exec.Command(binPath, append([]string{"campaign"}, v2Args(v1)...)...).CombinedOutput()
	if c := exitCode(t, err); c != 0 {
		t.Fatalf("v1 campaign exited %d; output:\n%s", c, v1Out)
	}

	// Reference 2: uninterrupted v2 run. Same basename, so the manifests
	// (and therefore the reports) describe the same campaign.
	v2 := filepath.Join(t.TempDir(), "camp")
	v2Out, err := exec.Command(binPath, append([]string{"campaign"},
		v2Args(v2, "-journal-format", "v2")...)...).CombinedOutput()
	if c := exitCode(t, err); c != 0 {
		t.Fatalf("v2 campaign exited %d; output:\n%s", c, v2Out)
	}
	want := resultLine(t, string(v1Out))
	if got := resultLine(t, string(v2Out)); got != want {
		t.Fatalf("v2 analysis differs from v1:\n  v1: %s\n  v2: %s", want, got)
	}
	if _, st, err := scibench.LoadCampaign(v2); err != nil || st.Format != scibench.JournalFormatV2 {
		t.Fatalf("v2 campaign journal: format=%v err=%v, want v2", st.Format, err)
	}

	// The victim: SIGKILL once the journal has grown past the 8-byte
	// header, i.e. at least one CRC-framed chunk is durable.
	camp := filepath.Join(t.TempDir(), "camp")
	victim := exec.Command(binPath, append([]string{"campaign"},
		v2Args(camp, "-journal-format", "v2")...)...)
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(camp, "journal.jsonl")
	deadline := time.Now().Add(20 * time.Second)
	for {
		if fi, err := os.Stat(journal); err == nil && fi.Size() > 8 {
			break
		}
		if time.Now().After(deadline) {
			victim.Process.Kill()
			t.Fatal("v2 journal never sealed a chunk")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = victim.Wait()

	// The sealed prefix must load as a valid v2 campaign.
	_, st, err := scibench.LoadCampaign(camp)
	if err != nil {
		t.Fatalf("killed v2 campaign not loadable: %v", err)
	}
	if st.Format != scibench.JournalFormatV2 {
		t.Fatalf("killed campaign format = %v, want v2", st.Format)
	}
	if len(st.Records) == 0 {
		t.Fatal("no records recovered from the sealed chunks")
	}

	// Resume sniffs the format (no flag needed) and completes.
	resumed, err := exec.Command(binPath, "resume", camp).CombinedOutput()
	if c := exitCode(t, err); c != 0 {
		t.Fatalf("resume exited %d; output:\n%s", c, resumed)
	}
	if !strings.Contains(string(resumed), "recovered") {
		t.Errorf("resume did not report recovery:\n%s", resumed)
	}
	if got := resultLine(t, string(resumed)); got != want {
		t.Errorf("resumed v2 analysis differs:\n  want: %s\n  got:  %s", want, got)
	}

	// Convert the completed campaign v2 → v1 → v2 through the CLI; each
	// step verifies by replay, and the journal must grow then shrink.
	v2Size := fileSize(t, journal)
	out, err := exec.Command(binPath, "convert", "-to", "v1", camp).CombinedOutput()
	if c := exitCode(t, err); c != 0 || !strings.Contains(string(out), "converted v2 → v1") {
		t.Fatalf("convert to v1 exited %d:\n%s", c, out)
	}
	v1Size := fileSize(t, journal)
	if v1Size <= v2Size {
		t.Errorf("v1 journal (%d B) not larger than v2 (%d B)", v1Size, v2Size)
	}
	out, err = exec.Command(binPath, "convert", "-to", "v2", camp).CombinedOutput()
	if c := exitCode(t, err); c != 0 || !strings.Contains(string(out), "converted v1 → v2") {
		t.Fatalf("convert back to v2 exited %d:\n%s", c, out)
	}
	if got := fileSize(t, journal); got != v2Size {
		t.Errorf("v2 journal after round trip = %d B, want %d", got, v2Size)
	}
	out, err = exec.Command(binPath, "convert", "-to", "v2", camp).CombinedOutput()
	if c := exitCode(t, err); c != 0 || !strings.Contains(string(out), "nothing to do") {
		t.Fatalf("idempotent convert exited %d:\n%s", c, out)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestShardedCampaignV2ByteIdentity: `scibench campaign -shards N
// -journal-format v2` must produce a merged report byte-identical to
// the v1 sharded run, with every unit journal actually chunked binary.
func TestShardedCampaignV2ByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real processes with wall-clock pacing")
	}
	sweepArgs := func(dir string, extra ...string) []string {
		base := []string{"-dir", dir, "-units", "3", "-samples", "25",
			"-relerr", "0.0001", "-seed", "9", "-shards", "2"}
		return append(base, extra...)
	}
	refDir := filepath.Join(t.TempDir(), "sweep")
	ref, err := exec.Command(binPath,
		append([]string{"campaign"}, sweepArgs(refDir)...)...).Output()
	if err != nil {
		t.Fatalf("v1 sharded campaign: %v", err)
	}
	dir := filepath.Join(t.TempDir(), "sweep")
	got, err := exec.Command(binPath,
		append([]string{"campaign"}, sweepArgs(dir, "-journal-format", "v2")...)...).Output()
	if err != nil {
		t.Fatalf("v2 sharded campaign: %v", err)
	}
	if string(got) != string(ref) {
		t.Errorf("v2 sharded report differs from v1:\n--- v1\n%s\n--- v2\n%s", ref, got)
	}
	// Every unit journal must really be v2.
	units, err := filepath.Glob(filepath.Join(dir, "shard-*", "units", "*", "journal.jsonl"))
	if err != nil || len(units) == 0 {
		t.Fatalf("no unit journals found: %v", err)
	}
	for _, j := range units {
		_, st, err := scibench.LoadCampaign(filepath.Dir(j))
		if err != nil {
			t.Fatalf("unit %s: %v", j, err)
		}
		if st.Format != scibench.JournalFormatV2 {
			t.Errorf("unit %s journal format = %v, want v2", j, st.Format)
		}
	}
}
