package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestServeMergedJSONWorkerInvariance drives the built binary through
// the acceptance criterion of the open-loop workload: a seeded
// two-period diurnal Poisson sweep must record a bit-identical
// merged.json whether one worker or GOMAXPROCS workers measured the
// load points.
func TestServeMergedJSONWorkerInvariance(t *testing.T) {
	run := func(j int) []byte {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("j%d", j))
		cmd := exec.Command(binPath, "serve",
			"-preset", "diurnal2", "-epoch", "1s", "-loads", "0.2,0.6,0.9",
			"-seed", "41", "-j", fmt.Sprint(j), "-dir", dir)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("serve -j %d: %v\n%s", j, err, out)
		}
		data, err := os.ReadFile(filepath.Join(dir, "merged.json"))
		if err != nil {
			t.Fatalf("serve -j %d wrote no merged.json: %v", j, err)
		}
		return data
	}
	serial := run(1)
	parallel := run(runtime.GOMAXPROCS(0))
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("merged.json differs between -j 1 and -j %d:\n--- serial ---\n%s\n--- parallel ---\n%s",
			runtime.GOMAXPROCS(0), serial, parallel)
	}
	if !bytes.Contains(serial, []byte(`"arrival": "diurnal"`)) {
		t.Fatalf("merged.json does not describe the diurnal sweep:\n%s", serial)
	}
}

// TestServeStallReportsOmission checks the CLI surface of the
// coordinated-omission audit: an injected stall must print the ratio.
func TestServeStallReportsOmission(t *testing.T) {
	cmd := exec.Command(binPath, "serve",
		"-preset", "poisson", "-epoch", "1s", "-loads", "0.4",
		"-stall", "200ms", "-seed", "5")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("serve -stall: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "coordinated-omission audit") {
		t.Fatalf("stall run did not report the omission audit:\n%s", out)
	}
}
