package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	scibench "repro"
)

// binPath is the scibench binary built once in TestMain; the campaign
// integration tests drive it as a real process so signal delivery and
// exit codes are tested end to end.
var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "scibench-bin")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "scibench")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building scibench: %v\n%s", err, out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// campaignArgs is the one fixed configuration every stage of the
// integration test shares; any drift between stages would (correctly)
// be refused.
func campaignArgs(dir string) []string {
	return []string{"-system", "daint", "-samples", "60", "-relerr", "0.0001",
		"-seed", "11", "-throttle", "25ms", "-dir", dir}
}

// resultLine extracts the final "result: ..." analysis line.
func resultLine(t *testing.T, out string) string {
	t.Helper()
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "result:") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no result line in output:\n%s", out)
	}
	return line
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("process did not exit normally: %v", err)
	}
	return ee.ExitCode()
}

// TestCampaignInterruptResume drives the full durability story against
// the real binary: SIGINT a running campaign, verify the checkpoint,
// refuse a drifted resume, corrupt the journal tail as a crash
// mid-append would, resume anyway, and check the final analysis is
// identical to an uninterrupted campaign with the same seed.
func TestCampaignInterruptResume(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real processes with wall-clock pacing")
	}
	camp := filepath.Join(t.TempDir(), "camp")

	// Stage 1: start a throttled campaign and SIGINT it mid-collection.
	var out strings.Builder
	cmd := exec.Command(binPath, append([]string{"campaign"}, campaignArgs(camp)...)...)
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(camp, "journal.jsonl")
	deadline := time.Now().Add(15 * time.Second)
	for {
		if fi, err := os.Stat(journal); err == nil && fi.Size() > 300 {
			break // several records are durable; interrupt mid-flight
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("journal never grew; output:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if c := exitCode(t, err); c != 3 {
		t.Fatalf("interrupted campaign exited %d, want 3; output:\n%s", c, out.String())
	}
	if !strings.Contains(out.String(), "interrupted") {
		t.Errorf("no interruption notice in output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "scibench resume") {
		t.Errorf("no resume hint in output:\n%s", out.String())
	}

	// The checkpoint must be a loadable campaign with verified records.
	man, st, err := scibench.LoadCampaign(camp)
	if err != nil {
		t.Fatalf("interrupted campaign not loadable: %v", err)
	}
	if man.Seed != 11 {
		t.Errorf("manifest seed = %d, want 11", man.Seed)
	}
	if len(st.Records) == 0 {
		t.Fatal("no records recovered from the interrupted journal")
	}
	if st.Torn {
		t.Error("journal torn after a clean SIGINT checkpoint")
	}

	// Stage 2: a resume whose flags drift from the recorded setup is
	// refused with Rule 9 findings and a nonzero exit.
	drifted, err := exec.Command(binPath, "resume", "-seed", "12", camp).CombinedOutput()
	if c := exitCode(t, err); c != 1 {
		t.Fatalf("drifted resume exited %d, want 1; output:\n%s", c, drifted)
	}
	if !strings.Contains(string(drifted), "REFUSED") {
		t.Errorf("drifted resume not refused:\n%s", drifted)
	}
	if !strings.Contains(string(drifted), "seed") {
		t.Errorf("refusal does not name the drifted field:\n%s", drifted)
	}

	// Stage 3: simulate a crash mid-append on top of the checkpoint —
	// a torn, newline-less half record at the tail.
	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"crc":1,"rec":{"seq":`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Stage 4: the real resume drops the torn tail and completes.
	resumed, err := exec.Command(binPath, "resume", camp).CombinedOutput()
	if c := exitCode(t, err); c != 0 {
		t.Fatalf("resume exited %d, want 0; output:\n%s", c, resumed)
	}
	if !strings.Contains(string(resumed), "torn tail") {
		t.Errorf("resume did not report the torn tail:\n%s", resumed)
	}
	if !strings.Contains(string(resumed), "recovered") {
		t.Errorf("resume did not report recovery:\n%s", resumed)
	}

	// Stage 5: an uninterrupted campaign with the same seed must land on
	// the exact same analysis (bit-identical retained samples).
	clean := filepath.Join(t.TempDir(), "clean")
	cleanOut, err := exec.Command(binPath, append([]string{"campaign"}, campaignArgs(clean)...)...).CombinedOutput()
	if c := exitCode(t, err); c != 0 {
		t.Fatalf("clean campaign exited %d; output:\n%s", c, cleanOut)
	}
	got := resultLine(t, string(resumed))
	want := resultLine(t, string(cleanOut))
	if got != want {
		t.Errorf("resumed analysis differs from uninterrupted run:\n  resumed: %s\n  clean:   %s", got, want)
	}
}

// TestShardedCampaignSIGKILLByteIdentity drives the distributed flow
// against the real binary: build a 2-shard sweep with `scibench shard`,
// SIGKILL one executor mid-unit (the crash a scheduler preemption or
// OOM kill delivers), re-run it as a reassignment attempt that resumes
// from the journal, merge — and require the merged report byte-equal to
// the report of `scibench campaign -shards 1` over the same sweep.
func TestShardedCampaignSIGKILLByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real processes with wall-clock pacing")
	}
	sweepArgs := func(dir string) []string {
		return []string{"-dir", dir, "-units", "4", "-samples", "30",
			"-relerr", "0.0001", "-seed", "5", "-throttle", "20ms"}
	}

	// Reference: the whole sweep in one supervised executor. The sweep
	// directory basename must match (it names the sweep in the report).
	refDir := filepath.Join(t.TempDir(), "sweep")
	ref, err := exec.Command(binPath,
		append([]string{"campaign", "-shards", "1"}, sweepArgs(refDir)...)...).Output()
	if err != nil {
		t.Fatalf("single-executor campaign: %v", err)
	}

	// Distributed: build the sweep, then run the two shards by hand.
	dir := filepath.Join(t.TempDir(), "sweep")
	if out, err := exec.Command(binPath,
		append([]string{"shard", "-shards", "2"}, sweepArgs(dir)...)...).CombinedOutput(); err != nil {
		t.Fatalf("scibench shard: %v\n%s", err, out)
	}

	// Start executor 0 and SIGKILL it once its first unit has journaled
	// a few durable records — mid-unit, mid-journal.
	shard0 := filepath.Join(dir, "shard-000")
	victim := exec.Command(binPath, "exec", shard0)
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(shard0, "units", "u000-seed-5", "journal.jsonl")
	deadline := time.Now().Add(15 * time.Second)
	for {
		if fi, err := os.Stat(journal); err == nil && fi.Size() > 300 {
			break
		}
		if time.Now().After(deadline) {
			victim.Process.Kill()
			t.Fatal("executor 0 never journaled a record")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = victim.Wait()

	// Reassignment: attempt 2 resumes the torn unit from its journal and
	// finishes the shard; executor 1 runs clean.
	if out, err := exec.Command(binPath, "exec", "-attempt", "2", shard0).CombinedOutput(); err != nil {
		t.Fatalf("reassigned executor: %v\n%s", err, out)
	}
	if out, err := exec.Command(binPath, "exec", filepath.Join(dir, "shard-001")).CombinedOutput(); err != nil {
		t.Fatalf("executor 1: %v\n%s", err, out)
	}

	got, err := exec.Command(binPath, "merge", "-dir", dir).Output()
	if err != nil {
		t.Fatalf("scibench merge: %v", err)
	}
	if string(got) != string(ref) {
		t.Errorf("merged report after SIGKILL differs from single-executor run:\n--- ref\n%s\n--- got\n%s", ref, got)
	}
	if _, err := os.Stat(filepath.Join(dir, "merged.json")); err != nil {
		t.Errorf("merge recorded no merged.json: %v", err)
	}
}

// TestRemoteCampaignWorkerLossByteIdentity drives the cross-machine
// flow end to end with real processes: a coordinator campaign over two
// worker agents on loopback (one with injected drops and duplication on
// its link), one worker SIGKILLed mid-sweep so its shard stalls, is
// fenced, and is reassigned to the survivor — and the merged report
// must still be byte-identical to the single-process run.
func TestRemoteCampaignWorkerLossByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real processes with wall-clock pacing")
	}
	sweepArgs := func(dir string) []string {
		return []string{"-dir", dir, "-units", "4", "-samples", "30",
			"-relerr", "0.0001", "-seed", "5", "-throttle", "20ms"}
	}
	refDir := filepath.Join(t.TempDir(), "sweep")
	ref, err := exec.Command(binPath,
		append([]string{"campaign", "-shards", "1"}, sweepArgs(refDir)...)...).Output()
	if err != nil {
		t.Fatalf("single-executor campaign: %v", err)
	}

	dir := filepath.Join(t.TempDir(), "sweep")
	var coordOut strings.Builder
	coord := exec.Command(binPath, append([]string{"campaign", "-shards", "2",
		"-remote", "127.0.0.1:0", "-min-workers", "2", "-heartbeat-timeout", "2s"},
		sweepArgs(dir)...)...)
	coord.Stdout = &coordOut
	stderr, err := coord.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	// The coordinator picks a free port; read it off its stderr banner.
	urlCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "coordinator on http://"); i >= 0 {
				urlCh <- strings.Fields(line[i+len("coordinator on "):])[0]
			}
			fmt.Fprintln(os.Stderr, "coord:", line)
		}
	}()
	var coordURL string
	select {
	case coordURL = <-urlCh:
	case <-time.After(15 * time.Second):
		t.Fatal("coordinator never printed its address")
	}

	worker := func(name string, chaos ...string) *exec.Cmd {
		args := append([]string{"worker", "-coordinator", coordURL,
			"-work", filepath.Join(t.TempDir(), name)}, chaos...)
		w := exec.Command(binPath, args...)
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		return w
	}
	victim := worker("wa")
	defer victim.Process.Kill()
	survivor := worker("wb", "-fault-drop", "0.05", "-fault-dup", "0.08", "-fault-seed", "13")
	defer survivor.Process.Kill()

	// SIGKILL the first worker once the mirror shows both shards are
	// mid-flight (each worker holds one shard; whichever the victim held
	// must stall, be fenced, and land on the survivor).
	deadline := time.Now().Add(30 * time.Second)
	for {
		n := 0
		for _, sh := range []string{"shard-000", "shard-001"} {
			if fi, err := os.Stat(filepath.Join(dir, sh, "heartbeat.json")); err == nil && fi.Size() > 0 {
				n++
			}
		}
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shards never started shipping heartbeats")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = victim.Wait()

	if err := coord.Wait(); err != nil {
		t.Fatalf("remote campaign failed: %v\n%s", err, coordOut.String())
	}
	if coordOut.String() != string(ref) {
		t.Errorf("remote merged report differs from single-process run:\n--- ref\n%s\n--- got\n%s",
			ref, coordOut.String())
	}
	// Both shards carry host provenance; the reassigned one completed on
	// a later attempt.
	reassigned := false
	for _, sh := range []string{"shard-000", "shard-001"} {
		var done struct{ Attempt int }
		raw, err := os.ReadFile(filepath.Join(dir, sh, "done.json"))
		if err != nil {
			t.Fatalf("%s: %v", sh, err)
		}
		if err := json.Unmarshal(raw, &done); err != nil {
			t.Fatal(err)
		}
		if done.Attempt > 1 {
			reassigned = true
		}
		if _, err := os.Stat(filepath.Join(dir, sh, "host.json")); err != nil {
			t.Errorf("%s: no host record: %v", sh, err)
		}
	}
	if !reassigned {
		t.Error("no shard was reassigned — the kill landed after the sweep finished; lower the pacing")
	}
}

// TestCampaignRefusesExistingDir covers the Create guard end to end.
func TestCampaignRefusesExistingDir(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real processes")
	}
	camp := filepath.Join(t.TempDir(), "camp")
	args := []string{"campaign", "-dir", camp, "-samples", "12", "-relerr", "0.5", "-seed", "3"}
	if out, err := exec.Command(binPath, args...).CombinedOutput(); err != nil {
		t.Fatalf("first campaign failed: %v\n%s", err, out)
	}
	out, err := exec.Command(binPath, args...).CombinedOutput()
	if exitCode(t, err) == 0 {
		t.Fatalf("second campaign in the same directory must fail:\n%s", out)
	}
	if !strings.Contains(string(out), "already holds a campaign") {
		t.Errorf("unexpected refusal message:\n%s", out)
	}
}
