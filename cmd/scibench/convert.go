// Journal format conversion: the `scibench convert` subcommand
// rewrites a campaign's journal between the v1 JSONL and v2 chunked
// binary encodings. The conversion is atomic (temp file + rename),
// verified by re-replaying the rewritten journal record-for-record
// against the original, and identity-preserving: the campaign resumes
// bit-for-bit afterwards, because the format is storage, not part of
// the recorded experiment.
package main

import (
	"flag"
	"fmt"

	scibench "repro"
)

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	to := fs.String("to", "v2", "target journal encoding: v1|jsonl or v2|binary")
	flushEvery := fs.Int("flush-every", 0, "v2 chunk width in records (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dir := fs.Arg(0)
	if dir == "" {
		return fmt.Errorf("usage: scibench convert [-to v2] <campaign-dir>")
	}
	format, err := scibench.ParseJournalFormat(*to)
	if err != nil {
		return fmt.Errorf("-to: %w", err)
	}
	info, err := scibench.ConvertCampaignJournal(dir, format, *flushEvery)
	if err != nil {
		return err
	}
	if info.From == info.To {
		fmt.Printf("journal already %s (%d record(s), %d bytes) — nothing to do\n",
			info.To, info.Records, info.OldBytes)
		return nil
	}
	ratio := 0.0
	if info.NewBytes > 0 {
		ratio = float64(info.OldBytes) / float64(info.NewBytes)
	}
	fmt.Printf("converted %s → %s: %d record(s), %d → %d bytes (%.1f×), verified by replay\n",
		info.From, info.To, info.Records, info.OldBytes, info.NewBytes, ratio)
	return nil
}
