// Durable, interruptible campaigns: the `scibench campaign` and
// `scibench resume` subcommands. A campaign journals every collection
// event (write-ahead, CRC-framed, fsynced) into a directory next to a
// manifest that pins the exact setup; Ctrl-C, SIGTERM, or an elapsed
// -budget checkpoints cleanly, and `scibench resume` continues the same
// campaign bit-for-bit — refusing, with Rule 9 findings, if any flag
// drifted from the recorded configuration.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	scibench "repro"
)

// campaignConfig is the complete recorded setup of a journaled campaign:
// it is persisted as config.json in the campaign directory and hashed
// into the manifest, so `scibench resume` can rebuild the exact same
// measurement — and refuse anything else.
type campaignConfig struct {
	System   string        `json:"system"`
	Samples  int           `json:"samples"`
	RelErr   float64       `json:"relerr"`
	Seed     uint64        `json:"seed"`
	Faults   string        `json:"faults,omitempty"`
	Throttle time.Duration `json:"throttle_ns,omitempty"`
}

const campaignConfigFile = "config.json"

func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory (required)")
	shards := fs.Int("shards", 0, "distributed mode: fork this many supervised executor processes")
	units := fs.Int("units", 8, "sweep units in distributed mode (replications at consecutive seeds)")
	hbTimeout := fs.Duration("heartbeat-timeout", 5*time.Second, "distributed mode: executor liveness timeout")
	remoteAddr := fs.String("remote", "", "distributed mode: serve a coordinator on this address and run shards on registered `scibench worker` agents instead of local processes")
	minWorkers := fs.Int("min-workers", 1, "distributed -remote mode: wait for this many workers before starting")
	cc, budget, workers, telAddr, jfmt := campaignFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	format, err := scibench.ParseJournalFormat(*jfmt)
	if err != nil {
		return fmt.Errorf("-journal-format: %w", err)
	}
	if *remoteAddr != "" {
		if *shards <= 0 {
			return fmt.Errorf("-remote requires -shards N")
		}
		return runRemoteCampaign(*dir, *cc, *jfmt, *units, *shards, *hbTimeout, *remoteAddr, *minWorkers)
	}
	if *shards > 0 {
		return runShardedCampaign(*dir, *cc, *jfmt, *units, *shards, *hbTimeout)
	}
	if err := writeCampaignConfig(*dir, *cc); err != nil {
		return err
	}
	stopTel, err := startTelemetry(*telAddr, *dir, format)
	if err != nil {
		return err
	}
	defer stopTel()

	man, plan, measure, err := campaignSetup(*dir, *cc)
	if err != nil {
		return err
	}
	plan.Workers = *workers
	ctx, stop := campaignContext(*budget)
	defer stop()

	res, err := scibench.RunCampaignOpts(ctx, *dir, man, plan, measure,
		scibench.CampaignJournalOptions{Format: format})
	return reportCampaign(*dir, res, err, ctx)
}

func cmdResume(args []string) error {
	fs := flag.NewFlagSet("resume", flag.ExitOnError)
	cc, budget, workers, telAddr, jfmt := campaignFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	dir := fs.Arg(0)
	if dir == "" {
		return fmt.Errorf("usage: scibench resume [flags] <campaign-dir>")
	}
	// On resume the on-disk journal's format always wins (the flag only
	// names a preference for an empty journal), so passing a different
	// -journal-format than the original run is safe, never drift. Use
	// `scibench convert` to actually rewrite the encoding.
	format, err := scibench.ParseJournalFormat(*jfmt)
	if err != nil {
		return fmt.Errorf("-journal-format: %w", err)
	}
	stopTel, err := startTelemetry(*telAddr, dir, format)
	if err != nil {
		return err
	}
	defer stopTel()
	recorded, err := readCampaignConfig(dir)
	if err != nil {
		return err
	}
	// Flags left at their defaults resume the recorded setup; any flag
	// the caller explicitly set overrides it — and an override that
	// changes the campaign identity is refused below as manifest drift.
	current := applyOverrides(recorded, fs, *cc)

	man, plan, measure, err := campaignSetup(dir, current)
	if err != nil {
		return err
	}
	plan.Workers = *workers
	ctx, stop := campaignContext(*budget)
	defer stop()

	res, info, err := scibench.ResumeCampaign(ctx, dir, man, plan, measure, scibench.CampaignResumeOptions{
		Journal: scibench.CampaignJournalOptions{Format: format},
	})
	if err != nil {
		if errors.Is(err, scibench.ErrManifestDrift) {
			fmt.Fprintln(os.Stdout, "resume REFUSED: the current setup does not match the recorded campaign")
			if werr := scibench.WriteRulesReport(os.Stdout, info.Findings); werr != nil {
				return werr
			}
		}
		return err
	}

	fmt.Printf("recovered %d sample(s) from the journal", info.PriorSamples)
	if info.Torn {
		fmt.Print(" (torn tail record dropped — crash mid-append)")
	}
	fmt.Println()
	if info.FastForwarded > 0 {
		fmt.Printf("fast-forwarded the measure source %d invocation(s); "+
			"%d replayed sample(s) verified bit-identical\n", info.FastForwarded, info.ReplayChecked)
	}
	if info.BoundaryDrift {
		fmt.Printf("WARNING: regime shift at the suspend/resume boundary (p ≈ %.3g) — "+
			"the environment drifted while suspended; quarantine the resumed half (Rule 6)\n", info.Boundary.P)
	}
	return reportCampaign(dir, res, nil, ctx)
}

// campaignFlags registers the flags shared by campaign and resume; the
// returned config holds the parsed values after fs.Parse. The analysis
// worker count is returned separately: it changes only how fast the
// statistics are computed, never their values, so it is deliberately NOT
// part of the recorded campaign identity (running a campaign with -j 1
// and resuming it with -j 8 is not drift).
func campaignFlags(fs *flag.FlagSet) (*campaignConfig, *time.Duration, *int, *string, *string) {
	cc := &campaignConfig{}
	fs.StringVar(&cc.System, "system", "daint", "simulated system: daint|dora|pilatus")
	fs.IntVar(&cc.Samples, "samples", 200, "sample budget (adaptive max)")
	fs.Float64Var(&cc.RelErr, "relerr", 0.02, "target relative CI width")
	fs.Uint64Var(&cc.Seed, "seed", 1, "RNG seed of the simulated machine")
	fs.StringVar(&cc.Faults, "faults", "", "fault preset(s) to inject (see `scibench generate`)")
	fs.DurationVar(&cc.Throttle, "throttle", 0, "wall-clock pause before each observation (pacing)")
	budget := fs.Duration("budget", 0, "wall-clock campaign budget (e.g. 10m); 0 means unlimited")
	workers := fs.Int("j", 0, "analysis workers (0 = GOMAXPROCS); results are worker-count invariant")
	// Telemetry observes the harness but never steers it, so — like -j —
	// it is deliberately NOT part of the recorded campaign identity.
	telAddr := fs.String("telemetry", "", "serve /metrics, /trace, and /debug/pprof on this address (e.g. :8080); spans also stream to <dir>/trace.jsonl")
	// The journal format is storage, not experiment identity: v1 and v2
	// journals of the same campaign replay to byte-identical reports, so
	// — like -j and -telemetry — the format is NOT recorded in the
	// campaign config and switching it on resume is not drift (resume
	// extends whatever format is on disk regardless).
	jfmt := fs.String("journal-format", "", "journal encoding: v1|jsonl (one fsync per record) or v2|binary (chunked columns, group fsync); default v1")
	return cc, budget, workers, telAddr, jfmt
}

// startTelemetry arms span tracing (appending the trace out-of-band of
// the journal and manifest) and serves the observability endpoint. The
// trace encoding follows the journal format: v1 appends JSON lines to
// <dir>/trace.jsonl, v2 streams chunked binary (same encoder as the
// journal, ~10× smaller) to <dir>/trace.bin. An empty addr is a no-op;
// the returned stop function is always safe to call.
func startTelemetry(addr, dir string, format scibench.CampaignJournalFormat) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	name, flush := "trace.jsonl", func() {}
	if format == scibench.JournalFormatV2 {
		name = "trace.bin"
	}
	sink, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if format == scibench.JournalFormatV2 {
		bw := scibench.NewBinaryTraceWriter(sink)
		scibench.EnableTelemetryTraceSink(bw)
		flush = func() { bw.Close() }
	} else {
		scibench.EnableTelemetryTrace(sink)
	}
	srv, err := scibench.ServeTelemetry(addr)
	if err != nil {
		scibench.DisableTelemetryTrace()
		sink.Close()
		return nil, fmt.Errorf("-telemetry: %w", err)
	}
	fmt.Fprintf(os.Stderr, "telemetry on http://%s (/metrics, /trace, /debug/pprof); trace at %s\n",
		srv.Addr(), filepath.Join(dir, name))
	return func() {
		srv.Close()
		scibench.DisableTelemetryTrace()
		flush()
		sink.Close()
	}, nil
}

// applyOverrides starts from the recorded config and applies only the
// flags the caller explicitly set on the resume command line.
func applyOverrides(recorded campaignConfig, fs *flag.FlagSet, parsed campaignConfig) campaignConfig {
	out := recorded
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "system":
			out.System = parsed.System
		case "samples":
			out.Samples = parsed.Samples
		case "relerr":
			out.RelErr = parsed.RelErr
		case "seed":
			out.Seed = parsed.Seed
		case "faults":
			out.Faults = parsed.Faults
		case "throttle":
			out.Throttle = parsed.Throttle
		}
	})
	return out
}

// campaignContext wires SIGINT/SIGTERM and the optional wall-clock
// budget into one cancellation context.
func campaignContext(budget time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if budget <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, budget)
	return tctx, func() { cancel(); stop() }
}

// campaignSetup rebuilds the deterministic measurement from a recorded
// configuration: the manifest (campaign identity), the collection plan,
// and the ping-pong measure closure on the seeded simulated machine.
func campaignSetup(dir string, cc campaignConfig) (scibench.CampaignManifest, scibench.Plan, func() (float64, error), error) {
	return campaignSetupNamed(filepath.Base(dir), cc)
}

// campaignSetupNamed is campaignSetup with an explicit campaign name —
// shard executors name each unit campaign after its unit ID.
func campaignSetupNamed(name string, cc campaignConfig) (scibench.CampaignManifest, scibench.Plan, func() (float64, error), error) {
	var clusterCfg scibench.ClusterConfig
	switch cc.System {
	case "daint":
		clusterCfg = scibench.PizDaint()
	case "dora":
		clusterCfg = scibench.PizDora()
	case "pilatus":
		clusterCfg = scibench.Pilatus()
	default:
		return scibench.CampaignManifest{}, scibench.Plan{}, nil,
			fmt.Errorf("unknown system %q", cc.System)
	}
	sched, err := scibench.FaultPreset(cc.Faults)
	if err != nil {
		return scibench.CampaignManifest{}, scibench.Plan{}, nil, fmt.Errorf("-faults: %w", err)
	}
	clusterCfg.Faults = sched

	m, err := scibench.NewCluster(clusterCfg, 2, cc.Seed)
	if err != nil {
		return scibench.CampaignManifest{}, scibench.Plan{}, nil, err
	}
	measure := func() (float64, error) {
		if cc.Throttle > 0 {
			time.Sleep(cc.Throttle)
		}
		d := m.PingPong(0, 1, 64, 1)[0]
		return float64(d) / float64(time.Microsecond), nil
	}

	man, err := scibench.NewCampaignManifest(name, cc.Seed, cc, sched, campaignEnv(cc))
	if err != nil {
		return scibench.CampaignManifest{}, scibench.Plan{}, nil, err
	}
	plan := scibench.Plan{
		Warmup:     3,
		MaxSamples: cc.Samples,
		RelErr:     cc.RelErr,
	}
	return man, plan, measure, nil
}

// campaignEnv is the Rule 9 environment block recorded for a campaign
// configuration. The seed is deliberately excluded: shard units of one
// sweep differ only by seed and must share one env fingerprint, seeds
// being pinned per-unit in the manifests instead.
func campaignEnv(cc campaignConfig) scibench.ExperimentEnv {
	return scibench.ExperimentEnv{
		Processor:        "simulated " + cc.System + " (cluster package)",
		Network:          "simulated interconnect, 2 ranks, ping-pong 64 B",
		MeasurementSetup: "1 round per observation, journaled write-ahead",
		InputAndCode:     "scibench campaign (repro module)",
		NotApplicable:    []string{"memory", "compiler", "runtime", "filesystem", "codeurl"},
	}
}

// reportCampaign prints the campaign outcome and exits 3 on a clean
// interruption, after printing the resume hint.
func reportCampaign(dir string, res scibench.Result, err error, ctx context.Context) error {
	interrupted := res.Stop == scibench.StopInterrupted
	if err != nil {
		// Cancelled before even two samples landed: nothing to analyze,
		// but the journal is already durable and resumable.
		if ctx.Err() != nil && errors.Is(err, scibench.ErrTooFewSamples) {
			fmt.Println("campaign interrupted before an analyzable sample was collected")
			interrupted = true
		} else {
			return err
		}
	} else {
		fmt.Printf("result: %s\n", res)
	}
	if interrupted {
		fmt.Printf("campaign interrupted; continue it with: scibench resume %s\n", dir)
		os.Exit(3)
	}
	return nil
}

func writeCampaignConfig(dir string, cc campaignConfig) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(cc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, campaignConfigFile), append(b, '\n'), 0o644)
}

func readCampaignConfig(dir string) (campaignConfig, error) {
	b, err := os.ReadFile(filepath.Join(dir, campaignConfigFile))
	if err != nil {
		return campaignConfig{}, fmt.Errorf("reading campaign config: %w", err)
	}
	var cc campaignConfig
	if err := json.Unmarshal(b, &cc); err != nil {
		return campaignConfig{}, fmt.Errorf("parsing campaign config: %w", err)
	}
	return cc, nil
}
