package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/suite"
)

// servePresets are the named service-workload shapes. diurnal2 is the
// reference configuration of the determinism contract: a two-period
// diurnal Poisson sweep whose merged.json must be bit-identical for
// every -j value.
var servePresetNames = []string{"poisson", "diurnal2", "burst"}

func servePreset(name string, epoch time.Duration) (suite.ServeConfig, error) {
	switch name {
	case "poisson":
		return suite.ServeConfig{
			Arrival: serve.ArrivalConfig{Kind: serve.Poisson},
			Server: serve.ServerConfig{
				Servers: 1,
				Service: serve.ServiceConfig{Mean: time.Millisecond, Sigma: 0.5},
			},
		}, nil
	case "diurnal2":
		return suite.ServeConfig{
			Arrival: serve.ArrivalConfig{Kind: serve.Diurnal, Periods: []serve.DiurnalPeriod{
				{Period: epoch, Amplitude: 0.6},
				{Period: epoch / 5, Amplitude: 0.25},
			}},
			Server: serve.ServerConfig{
				Servers: 2,
				Service: serve.ServiceConfig{Mean: time.Millisecond, Sigma: 0.5},
			},
		}, nil
	case "burst":
		return suite.ServeConfig{
			Arrival: serve.ArrivalConfig{Kind: serve.OnOff},
			Server: serve.ServerConfig{
				Servers:    1,
				QueueCap:   4096,
				BatchMax:   8,
				BatchDelay: 2 * time.Millisecond,
				Service:    serve.ServiceConfig{Mean: time.Millisecond, Sigma: 0.5, PerItem: 100 * time.Microsecond},
			},
		}, nil
	}
	return suite.ServeConfig{}, fmt.Errorf("unknown preset %q (poisson|diurnal2|burst)", name)
}

// cmdServe runs an open-loop offered-load sweep of a preset service
// workload and, with -dir, records the deterministic merged.json
// artifact.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	preset := fs.String("preset", "diurnal2", "workload preset: poisson|diurnal2|burst")
	dir := fs.String("dir", "", "write merged.json (the sweep artifact) into this directory")
	epoch := fs.Duration("epoch", 5*time.Second, "simulated time per epoch")
	epochs := fs.Int("epochs", 6, "seeded epochs per load point (min 6)")
	loads := fs.String("loads", "", "comma-separated offered-load fractions (default ramp)")
	seed := fs.Uint64("seed", 1, "RNG seed")
	workers := fs.Int("j", 0, "load points measured concurrently (0 = GOMAXPROCS); merged.json is bit-identical for every value")
	stall := fs.Duration("stall", 0, "inject a dispatch stall of this duration mid-epoch; arms the coordinated-omission audit")
	verbose := fs.Bool("v", false, "stream per-point progress")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := servePreset(*preset, *epoch)
	if err != nil {
		return fmt.Errorf("-preset: %w", err)
	}
	cfg.Duration = *epoch
	cfg.Epochs = *epochs
	cfg.Seed = *seed
	cfg.Workers = *workers
	if *loads != "" {
		if cfg.Loads, err = parseLoadList(*loads); err != nil {
			return fmt.Errorf("-loads: %w", err)
		}
	}
	if *stall > 0 {
		cfg.Server.Stalls = []serve.Stall{{At: *epoch / 2, Dur: *stall}}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	res, err := suite.RunServe(ctx, cfg, progress)
	if err != nil {
		return err
	}
	if err := res.WriteReport(os.Stdout); err != nil {
		return err
	}
	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o777); err != nil {
			return err
		}
		path := filepath.Join(*dir, "merged.json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := res.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "scibench: sweep recorded in %s\n", path)
	}
	return nil
}

func parseLoadList(csv string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad load %q", part)
		}
		if v <= 0 || v > 2 {
			return nil, fmt.Errorf("load fraction %g outside (0, 2]", v)
		}
		out = append(out, v)
	}
	return out, nil
}
