// Distributed campaigns: the `scibench shard`, `scibench exec`, and
// `scibench merge` subcommands, plus the `-shards N` mode of
// `scibench campaign` that forks local executor processes under
// supervision. A sweep is K independent seeded replications of the
// campaign configuration (unit i runs seed+i); its canonical unit
// order is partitioned into contiguous shards, each shard runs as an
// independent journaled executor, and the merge reassembles one report
// byte-identical to the single-process run — however many executors
// ran, crashed, or were reassigned along the way.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	scibench "repro"
)

// shardUnits builds the sweep's canonical unit table: K replications of
// cc with consecutive seeds, each carrying its full config and the
// config hash its executor-built manifest must reproduce.
func shardUnits(cc campaignConfig, k int) ([]scibench.ShardUnit, error) {
	units := make([]scibench.ShardUnit, k)
	for i := range units {
		u := cc
		u.Seed = cc.Seed + uint64(i)
		raw, err := json.Marshal(u)
		if err != nil {
			return nil, err
		}
		ch, err := scibench.HashCampaignConfig(u)
		if err != nil {
			return nil, err
		}
		units[i] = scibench.ShardUnit{
			ID:         fmt.Sprintf("u%03d-seed-%d", i, u.Seed),
			Seed:       u.Seed,
			ConfigHash: ch,
			Config:     raw,
		}
	}
	return units, nil
}

// buildShardSweep validates the configuration once (the same checks an
// executor will re-run) and assembles the sweep manifest. journal names
// the unit journal encoding every executor attempt will use ("" keeps
// v1); it is recorded in the sweep outside the sweep hash — storage,
// not experiment identity.
func buildShardSweep(name string, cc campaignConfig, journal string, units, shards int) (scibench.ShardSweep, error) {
	if _, err := scibench.ParseJournalFormat(journal); err != nil {
		return scibench.ShardSweep{}, fmt.Errorf("-journal-format: %w", err)
	}
	if _, _, _, err := campaignSetupNamed(name, cc); err != nil {
		return scibench.ShardSweep{}, err
	}
	sched, err := scibench.FaultPreset(cc.Faults)
	if err != nil {
		return scibench.ShardSweep{}, err
	}
	faultFP, err := scibench.HashCampaignConfig(sched)
	if err != nil {
		return scibench.ShardSweep{}, err
	}
	us, err := shardUnits(cc, units)
	if err != nil {
		return scibench.ShardSweep{}, err
	}
	sw, err := scibench.NewShardSweep(name, us, faultFP, campaignEnv(cc), shards)
	if err != nil {
		return scibench.ShardSweep{}, err
	}
	sw.Journal = journal
	return sw, nil
}

// cliRunner rebuilds a unit's journaled campaign from the recorded
// config — the executor side of the shard contract.
type cliRunner struct{}

func (cliRunner) Setup(u scibench.ShardUnit) (scibench.CampaignManifest, scibench.Plan, func() (float64, error), error) {
	var cc campaignConfig
	if err := json.Unmarshal(u.Config, &cc); err != nil {
		return scibench.CampaignManifest{}, scibench.Plan{}, nil,
			fmt.Errorf("unit %s: corrupt config: %w", u.ID, err)
	}
	return campaignSetupNamed(u.ID, cc)
}

func cmdShard(args []string) error {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	dir := fs.String("dir", "", "sweep directory (required)")
	shards := fs.Int("shards", 2, "number of shards (executor processes)")
	units := fs.Int("units", 8, "sweep units: independent replications with consecutive seeds")
	cc, _, _, _, jfmt := campaignFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	sw, err := buildShardSweep(filepath.Base(*dir), *cc, *jfmt, *units, *shards)
	if err != nil {
		return err
	}
	if err := scibench.CreateShardSweep(*dir, sw); err != nil {
		return err
	}
	fmt.Printf("sweep %s: %d unit(s) partitioned into %d shard(s) under %s\n",
		sw.Name, len(sw.Units), sw.NumShards, *dir)
	for i, m := range sw.Shards() {
		fmt.Printf("  shard %d: %d unit(s) — run with: scibench exec %s\n",
			i, len(m.Units), filepath.Join(*dir, scibench.ShardDirName(i)))
	}
	fmt.Printf("merge when done with: scibench merge -dir %s\n", *dir)
	return nil
}

func cmdExec(args []string) error {
	fs := flag.NewFlagSet("exec", flag.ExitOnError)
	attempt := fs.Int("attempt", 1, "supervisor attempt number (heartbeat provenance)")
	heartbeat := fs.Duration("heartbeat", 0, "heartbeat interval (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dir := fs.Arg(0)
	if dir == "" {
		return fmt.Errorf("usage: scibench exec [-attempt N] <shard-dir>")
	}
	return scibench.ExecShard(context.Background(), dir, cliRunner{}, scibench.ShardExecOptions{
		Attempt:   *attempt,
		Heartbeat: *heartbeat,
		Progress:  os.Stderr,
	})
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	dir := fs.String("dir", "", "sweep directory (required)")
	ops := fs.Bool("ops", false, "append the operational annex (per-shard attempts, env fingerprints, seam checks)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	rep, err := scibench.MergeShards(*dir)
	if err != nil {
		return err
	}
	if err := scibench.WriteMergedShardManifest(*dir, rep); err != nil {
		return err
	}
	if err := rep.WriteReport(os.Stdout); err != nil {
		return err
	}
	if *ops {
		fmt.Println()
		if err := rep.WriteOps(os.Stdout); err != nil {
			return err
		}
	}
	if rep.UnitsLost > 0 {
		os.Exit(4)
	}
	return nil
}

// runShardedCampaign is `scibench campaign -shards N`: build the sweep,
// fork one supervised executor process per shard (this same binary,
// `scibench exec`), and merge. Executor crashes and stalls are detected
// by heartbeat and the shard reassigned; a shard that exhausts its
// retries is reported lost, degrading — never corrupting — the merge.
func runShardedCampaign(dir string, cc campaignConfig, journal string, units, shards int, timeout time.Duration) error {
	if _, err := scibench.LoadShardSweep(dir); err != nil {
		sw, err := buildShardSweep(filepath.Base(dir), cc, journal, units, shards)
		if err != nil {
			return err
		}
		if err := scibench.CreateShardSweep(dir, sw); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(os.Stderr, "resuming existing sweep in %s\n", dir)
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	start := scibench.ShardExecutorCommand(os.Stdout, os.Stderr, self, "exec")
	statuses, err := scibench.SuperviseShards(context.Background(), dir, start,
		scibench.ShardSuperviseOptions{HeartbeatTimeout: timeout, Log: os.Stderr})
	if err != nil {
		return err
	}
	lost := 0
	for _, st := range statuses {
		if st.Lost {
			lost++
			fmt.Fprintf(os.Stderr, "shard %d LOST after %d attempt(s): %v\n", st.Shard, st.Attempts, st.Err)
		}
	}
	rep, err := scibench.MergeShards(dir)
	if err != nil {
		return err
	}
	if err := scibench.WriteMergedShardManifest(dir, rep); err != nil {
		return err
	}
	if err := rep.WriteReport(os.Stdout); err != nil {
		return err
	}
	if lost > 0 {
		os.Exit(4)
	}
	return nil
}
