// Command scibench is the library's command-line front end:
//
//	scibench analyze -col NAME [-confidence 0.95] < data.csv
//	    Full statistical analysis (summary, CIs, normality, density) of
//	    one CSV column of measurements.
//
//	scibench compare -a NAME -b NAME [-alpha 0.05] < data.csv
//	    Rule 7 comparison of two CSV columns: Kruskal–Wallis, Welch
//	    t-test, effect size, CI overlap, and quantile differences.
//
//	scibench timer
//	    Calibrate the wall clock and print the smallest reliably
//	    measurable interval (§4.2.1).
//
//	scibench audit < report.json
//	    Audit a study description (JSON rules.Report) against the twelve
//	    rules and print the findings and scorecard.
//
//	scibench generate [-n 1000] [-seed 1] [-faults straggler,burst]
//	    Emit a demo CSV (two simulated systems' latencies) to stdout for
//	    the analyze/compare subcommands; -faults injects a named fault
//	    preset into the first system.
//
//	scibench changepoint -col NAME [-alpha 0.01] < data.csv
//	    Run Pettitt's nonparametric change-point test over the ordered
//	    column — the contamination check for mid-campaign regime shifts.
//
//	scibench campaign -dir DIR [-system daint] [-samples 200] [-relerr 0.02]
//	          [-seed 1] [-faults ...] [-throttle 0] [-budget 0]
//	    Run a durable, journaled measurement campaign: every observation
//	    is checksummed and fsynced before the next one runs. Ctrl-C,
//	    SIGTERM, or an elapsed -budget checkpoints cleanly (exit 3) and
//	    the campaign resumes later — bit-for-bit, the setup being pinned
//	    in the campaign manifest (Rule 9).
//
//	scibench resume [flags] DIR
//	    Continue an interrupted campaign exactly where it stopped: verify
//	    the journal (dropping a torn tail from a crash mid-append),
//	    refuse on any configuration drift with Rule 9 findings, check the
//	    suspend/resume boundary for environment drift (Rule 6), and run
//	    to completion. Flags override the recorded setup — which refuses
//	    the resume unless they match.
//
//	scibench convert [-to v2|v1] [-flush-every N] DIR
//	    Rewrite a campaign's journal between the v1 JSONL encoding (one
//	    CRC-framed JSON line per event) and the v2 chunked binary
//	    encoding (delta-encoded columns, CRC per chunk — several times
//	    smaller). Atomic, verified by record-for-record replay, and
//	    identity-preserving: the campaign resumes bit-for-bit after
//	    conversion. Both campaign and resume also accept
//	    -journal-format v2 to write the binary encoding directly (with
//	    group fsync every chunk instead of per record).
//
//	scibench campaign -dir DIR -shards N [-units K] [campaign flags]
//	    Distributed mode: partition a K-unit sweep (unit i = the campaign
//	    at seed+i) into N shards and fork one supervised executor process
//	    per shard. Crashed or stalled executors (heartbeat timeout) are
//	    reassigned and resume their shard from its journals; exhausted
//	    retries degrade the merged report with explicit losses (exit 4).
//	    The merged report is byte-identical to a single-process run.
//
//	scibench shard -dir DIR -shards N -units K [campaign flags]
//	    Only build the sweep: write sweep.json and the per-shard
//	    manifests, to be executed by N separate `scibench exec` runs.
//
//	scibench exec [-attempt N] SHARD_DIR
//	    Run one shard as an executor: a journaled campaign per unit,
//	    heartbeat liveness file, completed units skipped, interrupted
//	    units resumed from their journal bit-for-bit.
//
//	scibench campaign -dir DIR -shards N -remote ADDR [-min-workers M]
//	    Cross-machine mode: serve a coordinator on ADDR, wait for M
//	    `scibench worker` agents to register, and run the shards on them.
//	    Shard manifests are hash-pinned over the wire; journal chunks
//	    ship back CRC-framed with resumable offsets, so a reconnecting
//	    worker re-ships only the missing suffix and completed
//	    observations are never re-measured. Workers that crash, stall,
//	    or partition are fenced (late chunks refused) and their shards
//	    reassigned to other workers; each worker's Rule 9 host
//	    environment is fingerprinted and the merge stratifies cross-host
//	    seams. The merged report is byte-identical to a single-process
//	    run.
//
//	scibench worker -coordinator URL [-listen ADDR] [-work DIR]
//	    Run a worker agent: register with a coordinator, execute
//	    assigned shards locally (journaled, resumable), ship journals
//	    back. -fault-drop/-fault-delay/-fault-dup inject seeded
//	    transport faults for partition-tolerance rehearsal.
//
//	scibench merge -dir DIR [-ops]
//	    Verify and merge every shard's journals into one canonical
//	    report (refusing manifest drift, checking each merge seam for
//	    regime shifts) and record merged.json; -ops appends the
//	    operational annex (attempts, env fingerprints, seam p-values).
//
//	scibench serve [-preset poisson|diurnal2|burst] [-loads 0.1,...]
//	          [-epoch 5s] [-epochs 6] [-seed 1] [-j 0] [-stall 0] [-dir DIR]
//	    Sweep a seeded open-loop service workload (ROADMAP item 2)
//	    through an offered-load ramp: Poisson / two-period diurnal /
//	    bursty ON-OFF arrivals into simulated batching servers, every
//	    request latency recorded in a mergeable log-bucketed histogram,
//	    p50/p99/p999 reported with rank-based nonparametric CIs and the
//	    detected latency knee. -dir records merged.json, bit-identical
//	    for every -j (Rule 9); -stall injects a mid-epoch dispatch stall
//	    and reports the coordinated-omission ratio (open- vs closed-loop
//	    p99 on the identical schedule).
//
//	scibench rules
//	    Print the twelve rules verbatim.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	scibench "repro"
	"repro/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "timer":
		err = cmdTimer()
	case "rules":
		err = cmdRules()
	case "audit":
		err = cmdAudit()
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "changepoint":
		err = cmdChangePoint(os.Args[2:])
	case "campaign":
		err = cmdCampaign(os.Args[2:])
	case "resume":
		err = cmdResume(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "shard":
		err = cmdShard(os.Args[2:])
	case "exec":
		err = cmdExec(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "worker":
		err = cmdWorker(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "scibench: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: scibench analyze|compare|audit|generate|changepoint|campaign|resume|convert|shard|exec|merge|worker|serve|timer|rules [flags]")
	os.Exit(2)
}

func cmdAudit() error {
	var r scibench.RulesReport
	dec := json.NewDecoder(os.Stdin)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return fmt.Errorf("parsing rules report: %w", err)
	}
	findings, _ := scibench.AuditRules(r)
	return scibench.WriteRulesReport(os.Stdout, findings)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	n := fs.Int("n", 1000, "samples per system")
	seed := fs.Uint64("seed", 1, "RNG seed")
	faultsFlag := fs.String("faults", "", "fault preset(s) injected into the first system: "+
		strings.Join(scibench.FaultPresetNames(), "|"))
	if err := fs.Parse(args); err != nil {
		return err
	}
	sched, err := scibench.FaultPreset(*faultsFlag)
	if err != nil {
		return fmt.Errorf("-faults: %w", err)
	}
	gen := func(cfg scibench.ClusterConfig, seed uint64) ([]float64, error) {
		ranks := cfg.CoresPerNode + 1
		m, err := scibench.NewCluster(cfg, ranks, seed)
		if err != nil {
			return nil, err
		}
		raw := m.PingPong(0, ranks-1, 64, *n)
		out := make([]float64, len(raw))
		for i, d := range raw {
			out[i] = float64(d) / float64(time.Microsecond)
		}
		return out, nil
	}
	doraCfg := scibench.PizDora()
	doraCfg.Faults = sched
	if sched != nil {
		fmt.Fprintf(os.Stderr, "scibench: injecting into dora_us: %s\n", sched)
	}
	dora, err := gen(doraCfg, *seed)
	if err != nil {
		return err
	}
	pilatus, err := gen(scibench.Pilatus(), *seed+1)
	if err != nil {
		return err
	}
	return scibench.WriteCSV(os.Stdout, []string{"dora_us", "pilatus_us"}, dora, pilatus)
}

func cmdChangePoint(args []string) error {
	fs := flag.NewFlagSet("changepoint", flag.ExitOnError)
	col := fs.String("col", "", "CSV column to test (required)")
	alpha := fs.Float64("alpha", 0.01, "significance level")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *col == "" {
		return fmt.Errorf("-col is required")
	}
	cols, err := readColumns(os.Stdin, *col)
	if err != nil {
		return err
	}
	xs := cols[*col]
	cp, err := scibench.DetectChangePoint(xs)
	if err != nil {
		return err
	}
	fmt.Printf("Pettitt change-point test over %d ordered observations\n", len(xs))
	fmt.Printf("K = %.0f, p ≈ %.3g\n", cp.K, cp.P)
	if cp.Significant(*alpha) {
		fmt.Printf("REGIME SHIFT at index %d (significant at %.0f%%):\n", cp.Index, 100**alpha)
		fmt.Printf("  median before: %.6g\n  median after:  %.6g\n", cp.MedianBefore, cp.MedianAfter)
		fmt.Println("the sample mixes two regimes; do not summarize it as one distribution")
	} else {
		fmt.Printf("no significant change point at %.0f%%; the stream looks stationary\n", 100**alpha)
	}
	return nil
}

func readColumns(r io.Reader, names ...string) (map[string][]float64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	out := map[string][]float64{}
	for _, name := range names {
		col, err := report.ReadCSVColumn(bytes.NewReader(data), name)
		if err != nil {
			return nil, err
		}
		out[name] = col
	}
	return out, nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	col := fs.String("col", "", "CSV column to analyze (required)")
	confidence := fs.Float64("confidence", 0.95, "confidence level")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *col == "" {
		return fmt.Errorf("-col is required")
	}
	cols, err := readColumns(os.Stdin, *col)
	if err != nil {
		return err
	}
	xs := cols[*col]
	res, err := scibench.Analyze(xs, *confidence)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s\n\n", *col, res.Summary)
	fmt.Printf("mean   %v\n", res.MeanCI)
	fmt.Printf("median %v\n", res.MedianCI)
	fmt.Printf("Shapiro–Wilk W = %.4f, p = %.3g → plausibly normal: %v\n",
		res.ShapiroW, res.ShapiroP, res.PlausiblyNormal)
	if res.ShiftDetected {
		fmt.Printf("WARNING: regime shift detected at index %d (Pettitt p ≈ %.3g) — "+
			"the stream is contaminated; see `scibench changepoint`\n", res.ShiftIndex, res.ShiftP)
	}
	label, iv := res.PreferredCenter()
	fmt.Printf("report the %s: %v\n\n", label, iv)
	if err := scibench.DensityPlot(os.Stdout, xs, 72, 10); err != nil {
		return err
	}
	fmt.Println()
	return scibench.QQPlot(os.Stdout, xs, 60, 14)
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	a := fs.String("a", "", "first CSV column (required)")
	b := fs.String("b", "", "second CSV column (required)")
	alpha := fs.Float64("alpha", 0.05, "significance level")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *a == "" || *b == "" {
		return fmt.Errorf("-a and -b are required")
	}
	cols, err := readColumns(os.Stdin, *a, *b)
	if err != nil {
		return err
	}
	xa, xb := cols[*a], cols[*b]

	kw, err := scibench.KruskalWallis(xa, xb)
	if err != nil {
		return err
	}
	fmt.Printf("Kruskal–Wallis (medians): %s → differ at %.0f%%: %v\n",
		kw, 100*(1-*alpha), kw.Significant(*alpha))
	if tt, err := scibench.TTest(xa, xb, true); err == nil {
		fmt.Printf("Welch t-test (means):     %s\n", tt)
	}
	if es, err := scibench.EffectSize(xa, xb); err == nil {
		fmt.Printf("effect size: %.3f (|0.2| small, |0.5| medium, |0.8| large)\n", es)
	}
	ia, err := scibench.MedianCI(xa, 1-*alpha)
	if err != nil {
		return err
	}
	ib, err := scibench.MedianCI(xb, 1-*alpha)
	if err != nil {
		return err
	}
	fmt.Printf("median %s: %v\nmedian %s: %v\nCIs overlap: %v\n",
		*a, ia, *b, ib, ia.Overlaps(ib))

	pts, err := scibench.CompareQuantiles(xa, xb, []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99}, 1-*alpha)
	if err != nil {
		return err
	}
	fmt.Printf("\nper-quantile differences (%s − %s):\n", *b, *a)
	for _, p := range pts {
		sig := ""
		if p.SignificantDif {
			sig = "  (significant)"
		}
		fmt.Printf("  q%-5g %+.6g  [%+.6g, %+.6g]%s\n",
			p.Tau, p.Difference, p.DifferenceLo, p.DifferenceHi, sig)
	}
	fmt.Println()
	return scibench.BoxPlot(os.Stdout, map[string][]float64{*a: xa, *b: xb}, 60)
}

func cmdTimer() error {
	cal := scibench.CalibrateTimer(64)
	fmt.Printf("wall clock resolution: %v\n", cal.Resolution)
	fmt.Printf("per-call overhead:     %v\n", cal.Overhead)
	fmt.Printf("smallest reliable interval (§4.2.1: overhead < 5%%, resolution 10x): %v\n",
		cal.MinReliableInterval())
	return nil
}

func cmdRules() error {
	for i := 1; i <= 12; i++ {
		fmt.Printf("Rule %2d: %s\n\n", i, scibench.RuleText(i))
	}
	return nil
}
