// Cross-machine campaigns: the `scibench worker` subcommand and the
// `-remote` mode of `scibench campaign -shards N`. A worker agent
// registers with a coordinator, executes assigned shards locally with
// the same journaled executor `scibench exec` uses, and ships journal
// chunks back over HTTP with CRC framing and resumable offsets. The
// coordinator mirrors each shard into the sweep directory, so the
// supervisor, the merge, and byte-identity work exactly as in the
// local-process mode — with workers that crash, stall, or partition
// detected and their shards reassigned.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	scibench "repro"
)

func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	coord := fs.String("coordinator", "", "coordinator base URL, e.g. http://10.0.0.1:7700 (required)")
	listen := fs.String("listen", "127.0.0.1:0", "address this worker serves assignments on")
	advertise := fs.String("advertise", "", "host the coordinator should call back on (default: the listen host)")
	work := fs.String("work", "", "local working directory for shard journals (default: a temp dir)")
	heartbeat := fs.Duration("heartbeat", 0, "executor heartbeat interval (0 = default)")
	ship := fs.Duration("ship", 0, "journal shipping interval (0 = default)")
	seed := fs.Uint64("worker-seed", 1, "seed for this worker's retry jitter")
	// Chaos flags: a seeded fault injector on this worker's link, for
	// rehearsing partition tolerance without real packet loss.
	fDrop := fs.Float64("fault-drop", 0, "inject: probability a request is dropped")
	fDelay := fs.Float64("fault-delay", 0, "inject: probability a request is delayed")
	fDelayBy := fs.Duration("fault-delay-by", 5*time.Millisecond, "inject: delay duration")
	fDup := fs.Float64("fault-dup", 0, "inject: probability a request is duplicated")
	fSeed := fs.Uint64("fault-seed", 1, "inject: fault stream seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coord == "" {
		return fmt.Errorf("-coordinator is required")
	}
	var rt http.RoundTripper
	if *fDrop > 0 || *fDelay > 0 || *fDup > 0 {
		ft := scibench.NewRemoteFaultTransport(*fSeed, nil)
		ft.DropProb = *fDrop
		ft.DelayProb = *fDelay
		ft.Delay = *fDelayBy
		ft.DupProb = *fDup
		rt = ft
		fmt.Fprintf(os.Stderr, "worker: injecting faults (drop %.2f, delay %.2f × %s, dup %.2f, seed %d)\n",
			*fDrop, *fDelay, *fDelayBy, *fDup, *fSeed)
	}
	w, err := scibench.StartRemoteWorker(scibench.RemoteWorkerOptions{
		Coordinator:   *coord,
		Listen:        *listen,
		AdvertiseHost: *advertise,
		WorkDir:       *work,
		Runner:        cliRunner{},
		Heartbeat:     *heartbeat,
		ShipInterval:  *ship,
		Seed:          *seed,
		Transport:     rt,
		Log:           os.Stderr,
	})
	if err != nil {
		return err
	}
	defer w.Close()
	fmt.Fprintf(os.Stderr, "worker %s serving on %s (coordinator %s)\n", w.ID(), w.URL(), *coord)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "worker: shutting down")
	return nil
}

// runRemoteCampaign is `scibench campaign -shards N -remote ADDR`: serve
// the sweep's coordinator on ADDR, wait for -min-workers agents to
// register, then supervise the shards across them. Workers that crash,
// stall, or partition mid-shard are fenced and their shards reassigned
// to other registered workers, resuming from the shipped journals;
// per-worker Rule 9 host fingerprints land in the merge.
func runRemoteCampaign(dir string, cc campaignConfig, journal string, units, shards int,
	timeout time.Duration, listen string, minWorkers int) error {
	if _, err := scibench.LoadShardSweep(dir); err != nil {
		sw, err := buildShardSweep(filepath.Base(dir), cc, journal, units, shards)
		if err != nil {
			return err
		}
		if err := scibench.CreateShardSweep(dir, sw); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(os.Stderr, "resuming existing sweep in %s\n", dir)
	}
	c, err := scibench.NewRemoteCoordinator(dir, scibench.RemoteCoordinatorOptions{
		Listen: listen,
		Seed:   cc.Seed,
		Log:    os.Stderr,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Fprintf(os.Stderr, "coordinator on %s — start agents with: scibench worker -coordinator %s\n",
		c.URL(), c.URL())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "waiting for %d worker(s) to register...\n", minWorkers)
	if err := c.WaitForWorkers(ctx, minWorkers); err != nil {
		return fmt.Errorf("waiting for workers: %w", err)
	}
	for _, w := range c.Workers() {
		fmt.Fprintf(os.Stderr, "  worker %s at %s (%s, env %.12s)\n", w.ID, w.Addr, w.Hostname, w.EnvFP)
	}

	statuses, err := scibench.SuperviseShards(ctx, dir, c.StartFunc(),
		scibench.ShardSuperviseOptions{HeartbeatTimeout: timeout, Seed: cc.Seed, Log: os.Stderr})
	if err != nil {
		return err
	}
	lost := 0
	for _, st := range statuses {
		if st.Lost {
			lost++
			fmt.Fprintf(os.Stderr, "shard %d LOST after %d attempt(s): %v\n", st.Shard, st.Attempts, st.Err)
		}
	}
	rep, err := scibench.MergeShards(dir)
	if err != nil {
		return err
	}
	if err := scibench.WriteMergedShardManifest(dir, rep); err != nil {
		return err
	}
	if err := rep.WriteReport(os.Stdout); err != nil {
		return err
	}
	if lost > 0 {
		os.Exit(4)
	}
	return nil
}
