// Command figures regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// paper-vs-measured comparisons).
//
// Usage:
//
//	figures [flags] <experiment> [flags]
//
// where <experiment> is one of: table1, means, fig1, fig2, fig3, fig4,
// fig5, fig6, fig7ab, fig7c, weak, all. Flags may appear before or after
// the experiment name.
//
// Flags:
//
//	-seed N     RNG seed (default 2015)
//	-samples N  per-system sample count for fig2/fig3/fig4/fig7c
//	            (default 1000000, the paper's 10⁶)
//	-runs N     run count for fig1 (default 50) and fig5/fig6 (default 1000);
//	            an explicit -runs overrides -quick's shrinking
//	-n N        HPL matrix dimension for fig1 (default 314000)
//	-quick      shrink all sizes for a fast smoke run: samples drop to 1e5,
//	            the HPL dimension to 32768, and per-figure run defaults to a
//	            tenth (floor 20) unless -runs is set
//	-j N        experiments to run concurrently for 'all' (0 = GOMAXPROCS);
//	            output order and bytes are identical for every N
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/figures"
	"repro/internal/report"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 2015, "RNG seed")
		samples = flag.Int("samples", 1000000, "per-system samples (fig2/3/4/7c)")
		runs    = flag.Int("runs", 0, "runs for fig1 (default 50) / fig5-6 (default 1000); overrides -quick")
		n       = flag.Int("n", 314000, "HPL matrix dimension (fig1)")
		quick   = flag.Bool("quick", false, "shrink sizes for a fast smoke run")
		jobs    = flag.Int("j", 0, "experiments to run concurrently for 'all' (0 = GOMAXPROCS)")
		csvDir  = flag.String("csv", "", "also write each experiment's raw dataset to this directory (Rule 9)")
		svgDir  = flag.String("svg", "", "also write publication-style SVG figures to this directory")
	)
	usage := func() {
		fmt.Fprintln(os.Stderr, "usage: figures [flags] table1|means|fig1|fig2|fig3|fig4|fig5|fig6|fig7ab|fig7c|weak|all")
		os.Exit(2)
	}
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	name := flag.Arg(0)
	// The flag package stops at the first positional argument; re-parse
	// the remainder so `figures all -quick` works as well as
	// `figures -quick all`.
	if flag.NArg() > 1 {
		if err := flag.CommandLine.Parse(flag.Args()[1:]); err != nil || flag.NArg() != 0 {
			usage()
		}
	}
	if *quick {
		*samples = 100000
		*n = 32768
	}
	runsFor := func(def int) int {
		if *runs > 0 {
			return *runs
		}
		if *quick {
			return max(def/10, 20)
		}
		return def
	}

	// writeCSV releases an experiment's raw data per Rule 9.
	writeCSV := func(name string, cols []string, data ...[]float64) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return report.WriteCSV(f, cols, data...)
	}

	// writeSVG renders a vector figure when -svg is set.
	writeSVG := func(name string, render func(f *os.File) error) error {
		if *svgDir == "" {
			return nil
		}
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*svgDir, name+".svg"))
		if err != nil {
			return err
		}
		defer f.Close()
		return render(f)
	}

	run := func(name string, w io.Writer) error {
		switch name {
		case "table1":
			_, err := figures.Table1(w, *seed)
			return err
		case "means":
			_, err := figures.MeansExample(w)
			return err
		case "fig1":
			d, err := figures.Fig1(w, runsFor(50), *n, *seed)
			if err != nil {
				return err
			}
			if err := writeSVG("fig1_hpl_density", func(f *os.File) error {
				return report.SVGDensityPlot(f,
					"Distribution of completion times for 50 HPL runs",
					"completion time (s)", d.TimesSec, 640, 360)
			}); err != nil {
				return err
			}
			return writeCSV("fig1_hpl_times", []string{"completion_s"}, d.TimesSec)
		case "fig2":
			_, err := figures.Fig2(w, *samples, *seed)
			return err
		case "fig3":
			d, err := figures.Fig3(w, *samples, *seed)
			if err != nil {
				return err
			}
			return writeCSV("fig3_latencies", []string{"dora_us", "pilatus_us"},
				d.DoraRaw, d.PilatusRaw)
		case "fig4":
			d, err := figures.Fig4(w, *samples, *seed)
			if err != nil {
				return err
			}
			var taus, diffs, lo, hi []float64
			for _, p := range d.Points {
				taus = append(taus, p.Tau)
				diffs = append(diffs, p.Difference)
				lo = append(lo, p.DifferenceLo)
				hi = append(hi, p.DifferenceHi)
			}
			return writeCSV("fig4_quantile_differences",
				[]string{"tau", "difference_us", "lo", "hi"}, taus, diffs, lo, hi)
		case "fig5":
			d, err := figures.Fig5(w, runsFor(1000), *seed)
			if err != nil {
				return err
			}
			var ps, med, q1, q3 []float64
			for _, pt := range d.Points {
				ps = append(ps, float64(pt.P))
				med = append(med, pt.MedianUs)
				q1 = append(q1, pt.Q1Us)
				q3 = append(q3, pt.Q3Us)
			}
			return writeCSV("fig5_reduce",
				[]string{"p", "median_us", "q1_us", "q3_us"}, ps, med, q1, q3)
		case "fig6":
			d, err := figures.Fig6(w, runsFor(1000), *seed)
			if err != nil {
				return err
			}
			var ranks, means []float64
			for r, xs := range d.PerProcess {
				sum := 0.0
				for _, v := range xs {
					sum += v
				}
				ranks = append(ranks, float64(r))
				means = append(means, sum/float64(len(xs)))
			}
			return writeCSV("fig6_per_rank_means",
				[]string{"rank", "mean_us"}, ranks, means)
		case "fig7ab":
			d, err := figures.Fig7ab(w, 10, *seed)
			if err != nil {
				return err
			}
			var ps, meas, ideal, amdahl, pov []float64
			for _, pt := range d.Points {
				ps = append(ps, float64(pt.P))
				meas = append(meas, pt.TimeMs)
				ideal = append(ideal, pt.IdealMs)
				amdahl = append(amdahl, pt.AmdahlMs)
				pov = append(pov, pt.ParallelOvhdMs)
			}
			if err := writeSVG("fig7ab_scaling", func(f *os.File) error {
				return report.SVGXYPlot(f, "Pi scaling vs bounds models",
					"processes", "time (ms)", []report.Series{
						{Name: "measured", X: ps, Y: meas},
						{Name: "ideal linear", X: ps, Y: ideal},
						{Name: "Amdahl (b=0.01)", X: ps, Y: amdahl},
						{Name: "parallel overheads", X: ps, Y: pov},
					}, 640, 400)
			}); err != nil {
				return err
			}
			return writeCSV("fig7ab_scaling",
				[]string{"p", "measured_ms", "ideal_ms", "amdahl_ms", "par_ovhd_ms"},
				ps, meas, ideal, amdahl, pov)
		case "fig7c":
			_, err := figures.Fig7c(w, *samples, *seed)
			return err
		case "weak":
			_, err := figures.WeakScaling(w, 10, *seed)
			return err
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	w := os.Stdout
	if name == "all" {
		runAll(w, *jobs, run)
		return
	}
	if err := run(name, w); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
}

// allExperiments is the canonical order `all` renders in — and therefore
// the byte order of its output, for every -j.
var allExperiments = []string{
	"table1", "means", "fig1", "fig2", "fig3", "fig4",
	"fig5", "fig6", "fig7ab", "fig7c", "weak",
}

// runAll renders every experiment on up to jobs goroutines (0 =
// GOMAXPROCS). Experiments are independent given their seeds, so each
// renders into its own buffer; buffers are flushed to w in canonical
// order as soon as every earlier experiment has finished, making the
// output byte-identical to a serial run. On the first (canonical-order)
// failure the error goes to stderr and the process exits 1, just as the
// serial loop did — later experiments' output is not printed.
func runAll(w io.Writer, jobs int, run func(name string, w io.Writer) error) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(allExperiments) {
		jobs = len(allExperiments)
	}

	outs := make([]bytes.Buffer, len(allExperiments))
	errs := make([]error, len(allExperiments))
	completions := make(chan int, len(allExperiments))
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < jobs; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(allExperiments) {
					return
				}
				errs[i] = run(allExperiments[i], &outs[i])
				completions <- i
			}
		}()
	}
	go func() {
		wg.Wait()
		close(completions)
	}()

	finished := make([]bool, len(allExperiments))
	nextFlush := 0
	for i := range completions {
		finished[i] = true
		for nextFlush < len(allExperiments) && finished[nextFlush] {
			exp := allExperiments[nextFlush]
			fmt.Fprintf(w, "==================== %s ====================\n", exp)
			io.Copy(w, &outs[nextFlush])
			if err := errs[nextFlush]; err != nil {
				fmt.Fprintf(os.Stderr, "figures: %s: %v\n", exp, err)
				os.Exit(1)
			}
			fmt.Fprintln(w)
			nextFlush++
		}
	}
}
