// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document on stdout — a machine-readable record of a
// benchmark run, so performance claims ship with their raw data
// (Rule 1: the experiments must be reproducible and interpretable).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson > BENCH.json
//
// Every `Benchmark...` result line becomes one entry with its iteration
// count, ns/op, and any further value/unit pairs the -benchmem flag or
// b.ReportMetric added (B/op, allocs/op, custom metrics). The goos /
// goarch / cpu / pkg header lines are captured as environment metadata.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: name, iterations, and the measured
// metrics keyed by unit (always "ns/op"; "B/op", "allocs/op", and custom
// units when present).
type Result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole run: environment header plus all results.
type Report struct {
	Env     map[string]string `json:"env"`
	Results []Result          `json:"results"`
}

func main() {
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (Report, error) {
	rep := Report{Env: map[string]string{}}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			rep.Env[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "pkg:"):
			_, v, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseResult(line)
			if !ok {
				continue // e.g. a benchmark that only printed a name
			}
			r.Package = pkg
			rep.Results = append(rep.Results, r)
		}
	}
	return rep, sc.Err()
}

// parseResult decodes one result line of the form
//
//	BenchmarkName-8   1234   5678 ns/op   90 B/op   3 allocs/op
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the trailing -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if _, ok := r.Metrics["ns/op"]; !ok {
		return Result{}, false
	}
	return r, true
}
