// Command benchjson records benchmark runs as a machine-readable
// `BENCH_*.json` document (schema v2): per-run raw samples for every
// metric (ns/op, B/op, allocs/op, custom units) plus the Rule 9
// environment block and provenance, so performance claims ship with
// the raw data behind them (Rule 1) and the regression gate
// (cmd/benchgate) has real sample sets to test, not bare means.
//
// Two modes:
//
//	# collector mode: run the benchmarks itself, N repetitions each
//	benchjson -count 5 -bench 'BenchmarkSuiteRun' -o BENCH_harness.json .
//
//	# pipe mode (legacy): convert existing `go test -bench` output
//	go test -bench=. -benchmem -count=5 ./... | benchjson > BENCH.json
//
// With -count N the tool execs `go test -run '^$' -bench <pattern>
// -benchmem -count N` over the given packages (default ".") and groups
// the N repeated result lines per benchmark into sample columns. The
// paper's §4.2.2 point stands here: one run is an anecdote; the gate
// needs repetitions to bound medians nonparametrically.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/regress"
)

func main() {
	var (
		count     = flag.Int("count", 0, "run benchmarks with `N` repetitions (0 = parse stdin)")
		benchPat  = flag.String("bench", ".", "benchmark `regexp` passed to go test -bench")
		benchTime = flag.String("benchtime", "", "go test -benchtime value (e.g. 0.5s, 100x)")
		out       = flag.String("o", "", "write the report to `file` (atomically) instead of stdout")
	)
	flag.Parse()
	if err := run(*count, *benchPat, *benchTime, *out, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(count int, benchPat, benchTime, out string, pkgs []string) error {
	var rep *regress.Report
	var err error
	var tool string
	if count > 0 {
		rep, err = collect(count, benchPat, benchTime, pkgs)
		tool = fmt.Sprintf("benchjson -count %d -bench %q", count, benchPat)
	} else {
		rep, err = regress.ParseBench(os.Stdin)
		tool = "benchjson (stdin)"
	}
	if err != nil {
		return err
	}
	rep.Count = maxRuns(rep)
	// Parsed header values (cpu model etc.) win over the generic
	// collector-side block.
	env := regress.CaptureEnv()
	for k, v := range rep.Env {
		env[k] = v
	}
	rep.Env = env
	rep.Provenance = &regress.Provenance{
		Commit:         gitCommit(),
		Date:           time.Now().UTC().Format(time.RFC3339),
		EnvFingerprint: regress.EnvFingerprint(env),
		Tool:           tool,
	}
	if out == "" {
		return rep.WriteJSON(os.Stdout)
	}
	return writeAtomic(out, rep)
}

// collect execs `go test` and parses its benchmark output, teeing the
// raw text to stderr so a long -count run shows progress.
func collect(count int, benchPat, benchTime string, pkgs []string) (*regress.Report, error) {
	if len(pkgs) == 0 {
		pkgs = []string{"."}
	}
	args := []string{"test", "-run", "^$", "-bench", benchPat, "-benchmem",
		"-count", strconv.Itoa(count)}
	if benchTime != "" {
		args = append(args, "-benchtime", benchTime)
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	var stdout bytes.Buffer
	cmd.Stdout = io.MultiWriter(&stdout, os.Stderr)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	return regress.ParseBench(&stdout)
}

func maxRuns(rep *regress.Report) int {
	max := 0
	for _, r := range rep.Results {
		if r.Runs() > max {
			max = r.Runs()
		}
	}
	return max
}

// gitCommit returns the current short commit hash, or "" outside a
// repository.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// writeAtomic writes via a temp file + rename so a crashed run never
// leaves a torn baseline.
func writeAtomic(path string, rep *regress.Report) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := rep.WriteJSON(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
