// Command benchgate is the statistical performance-regression gate:
// it compares a candidate `BENCH_*.json` (written by benchjson) against
// a committed baseline using the paper's own machinery — Tukey outlier
// policy, nonparametric median CIs (Le Boudec), Mann–Whitney rank
// tests with an effect-size threshold, and the §4.2.2 power check —
// and exits nonzero when any benchmark REGRESSED. Rules 5–8 applied to
// the repo's own perf trajectory: no verdict from a bare mean, no PASS
// from an underpowered non-result, no build failed by noise-level
// wobble.
//
// Usage:
//
//	benchgate -baseline BENCH_harness.json -candidate new.json [-threshold 5%] [-json|-markdown]
//
// Exit status: 0 when no benchmark regressed (or -advisory is set),
// 1 when at least one REGRESSED, 2 on usage or input errors.
//
//	-advisory         report verdicts but always exit 0 — for shared CI
//	                  runners whose noise can't support a hard claim (Rule 9)
//	-update-baseline  refresh the baseline file from the candidate
//	                  (with provenance) instead of gating
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/regress"
)

func main() {
	var (
		baselinePath  = flag.String("baseline", "BENCH_harness.json", "committed baseline `file`")
		candidatePath = flag.String("candidate", "", "candidate `file` to gate (required)")
		threshold     = flag.String("threshold", "5%", "minimum relative median shift treated as real (e.g. 5% or 0.05)")
		alpha         = flag.Float64("alpha", 0.05, "rank-test significance level")
		confidence    = flag.Float64("confidence", 0.95, "median CI confidence level")
		tukeyK        = flag.Float64("tukey", 1.5, "Tukey outlier fence multiplier (negative disables)")
		unit          = flag.String("unit", "ns/op", "gated metric unit")
		asJSON        = flag.Bool("json", false, "emit the gate report as JSON")
		asMarkdown    = flag.Bool("markdown", false, "emit the verdict table as markdown")
		advisory      = flag.Bool("advisory", false, "never fail the exit code (noisy shared runners, Rule 9)")
		update        = flag.Bool("update-baseline", false, "refresh the baseline from the candidate (with provenance) and exit")
	)
	flag.Parse()
	code, err := run(*baselinePath, *candidatePath, *threshold, *alpha, *confidence,
		*tukeyK, *unit, *asJSON, *asMarkdown, *advisory, *update)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(baselinePath, candidatePath, thresholdStr string, alpha, confidence, tukeyK float64,
	unit string, asJSON, asMarkdown, advisory, update bool) (int, error) {
	if candidatePath == "" {
		return 0, fmt.Errorf("-candidate is required")
	}
	threshold, err := parseThreshold(thresholdStr)
	if err != nil {
		return 0, err
	}
	candidate, err := regress.LoadReport(candidatePath)
	if err != nil {
		return 0, err
	}

	if update {
		return 0, updateBaseline(baselinePath, candidate)
	}

	baseline, err := regress.LoadReport(baselinePath)
	if err != nil {
		return 0, err
	}
	gate, err := regress.Compare(baseline, candidate, regress.Options{
		Threshold:  threshold,
		Alpha:      alpha,
		Confidence: confidence,
		TukeyK:     tukeyK,
		Unit:       unit,
	})
	if err != nil {
		return 0, err
	}

	switch {
	case asJSON:
		err = gate.WriteJSON(os.Stdout)
	case asMarkdown:
		err = gate.WriteMarkdown(os.Stdout)
	default:
		err = gate.WriteText(os.Stdout)
	}
	if err != nil {
		return 0, err
	}

	if gate.Regressed() {
		if advisory {
			fmt.Fprintln(os.Stderr, "benchgate: regression detected, but -advisory is set: exiting 0 (Rule 9: shared-runner noise cannot support a hard claim)")
			return 0, nil
		}
		return 1, nil
	}
	return 0, nil
}

// parseThreshold accepts "5%" or a bare fraction like "0.05".
func parseThreshold(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bad -threshold %q: %v", s, err)
	}
	if pct {
		v /= 100
	}
	if v <= 0 || v >= 1 {
		return 0, fmt.Errorf("-threshold %q must be in (0%%, 100%%)", s)
	}
	return v, nil
}

// updateBaseline writes the candidate over the baseline path with
// fresh provenance (commit, date, env fingerprint) so the committed
// reference documents its own origin (Rule 9).
func updateBaseline(baselinePath string, candidate *regress.Report) error {
	candidate.Provenance = &regress.Provenance{
		Commit:         gitCommit(),
		Date:           time.Now().UTC().Format(time.RFC3339),
		EnvFingerprint: regress.EnvFingerprint(candidate.Env),
		Tool:           "benchgate -update-baseline",
	}
	dir := filepath.Dir(baselinePath)
	tmp, err := os.CreateTemp(dir, filepath.Base(baselinePath)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := candidate.WriteJSON(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), baselinePath); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchgate: baseline %s updated (%d benchmarks, commit %s)\n",
		baselinePath, len(candidate.Results), candidate.Provenance.Commit)
	return nil
}

func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
