// Command mpibench is a SKaMPI-style collective microbenchmark suite on
// the simulated machines: it sweeps collectives × process counts ×
// payload sizes with adaptive CI-driven sampling, delay-window
// synchronization, and statistically sound summaries, then fits
// LogP-style scaling models to each collective (§6's "building block
// for a new benchmark suite").
//
// Usage:
//
//	mpibench [-system daint|dora|pilatus] [-collectives reduce,bcast,...]
//	         [-ranks 2,4,8,16,32] [-bytes 8,1024] [-relerr 0.05]
//	         [-seed 1] [-faults straggler,burst] [-ceiling 0]
//	         [-budget 0] [-j 0] [-mode auto] [-summary-threshold 0]
//	         [-coll-workers 0] [-v]
//
// -j measures up to N configurations concurrently (0 = GOMAXPROCS); the
// report is bit-identical for every worker count because per-
// configuration seeds are assigned from the canonical sweep order before
// fan-out.
//
// A second workload family measures open-loop service latency instead of
// collectives (ROADMAP item 2):
//
//	mpibench -workload serve [-arrival poisson|diurnal|onoff]
//	         [-loads 0.1,0.3,...] [-epoch 10s] [-epochs 6]
//	         [-servers 1] [-queue 0] [-batch 1] [-batch-delay 0]
//	         [-service 1ms] [-sigma 0.5] [-seed 1] [-j 0] [-v]
//
// It ramps seeded open-loop arrivals through the offered-load fractions,
// records every request latency in a mergeable log-bucketed histogram,
// and reports p50/p99/p999 with rank-based nonparametric CIs plus the
// detected latency knee — tail percentiles free of coordinated omission.
//
// The sweep is interruptible: Ctrl-C (or an elapsed -budget) checkpoints
// cleanly, prints the partial report with the interruption labeled, and
// exits with status 3.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/suite"
	"repro/internal/telemetry"
)

func main() {
	var (
		workload    = flag.String("workload", "collectives", "workload family: collectives|serve")
		system      = flag.String("system", "daint", "simulated system: daint|dora|pilatus")
		collectives = flag.String("collectives", "", "comma-separated subset (default: all)")
		ranks       = flag.String("ranks", "2,4,8,16,32", "comma-separated process counts")
		bytesFlag   = flag.String("bytes", "8,1024", "comma-separated payload sizes")
		relErr      = flag.Float64("relerr", 0.05, "target relative CI width")
		seed        = flag.Uint64("seed", 1, "RNG seed")
		faultsFlag  = flag.String("faults", "", "fault preset(s) to inject: "+
			strings.Join(faults.PresetNames(), "|")+" (comma-separated to combine)")
		ceiling = flag.Float64("ceiling", 0, "resilient collection: discard+retry observations at or above this value (µs); 0 disables")
		budget  = flag.Duration("budget", 0, "wall-clock campaign budget (e.g. 10m); 0 means unlimited")
		workers = flag.Int("j", 0, "configurations to measure concurrently (0 = GOMAXPROCS); results are worker-count invariant")
		mode    = flag.String("mode", "auto", "collective result mode: auto|perrank|summary (summary keeps million-rank sweeps allocation-flat)")
		sumThr  = flag.Int("summary-threshold", 0, "rank count at which auto mode switches to summary results (0 = engine default)")
		collJ   = flag.Int("coll-workers", 0, "worker goroutines per collective level (0 = serial); output is bit-identical for every value")
		verbose = flag.Bool("v", false, "stream per-configuration progress")
		telAddr = flag.String("telemetry", "", "serve /metrics, /trace, and /debug/pprof on this address (e.g. :8080); also enables span tracing")

		// serve workload flags (ignored by -workload collectives).
		sv serveFlags
	)
	sv.register(flag.CommandLine)
	flag.Parse()

	if *telAddr != "" {
		telemetry.Enable(nil)
		tsrv, err := telemetry.Serve(*telAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpibench: -telemetry: %v\n", err)
			os.Exit(2)
		}
		defer tsrv.Close()
		fmt.Fprintf(os.Stderr, "mpibench: telemetry on http://%s (/metrics, /trace, /debug/pprof)\n", tsrv.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *budget)
		defer cancel()
	}

	var progressW io.Writer
	if *verbose {
		progressW = os.Stderr
	}
	switch *workload {
	case "collectives":
	case "serve":
		if err := runServe(ctx, sv, *seed, *workers, progressW); err != nil {
			fmt.Fprintf(os.Stderr, "mpibench: %v\n", err)
			os.Exit(1)
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "mpibench: unknown workload %q (collectives|serve)\n", *workload)
		os.Exit(2)
	}

	var clusterCfg cluster.Config
	switch *system {
	case "daint":
		clusterCfg = cluster.PizDaint()
	case "dora":
		clusterCfg = cluster.PizDora()
	case "pilatus":
		clusterCfg = cluster.Pilatus()
	default:
		fmt.Fprintf(os.Stderr, "mpibench: unknown system %q\n", *system)
		os.Exit(2)
	}
	sched, err := faults.Preset(*faultsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpibench: -faults: %v\n", err)
		os.Exit(2)
	}
	clusterCfg.Faults = sched
	if sched != nil {
		// Rule 9: injected faults are part of the experimental setup.
		fmt.Fprintf(os.Stderr, "mpibench: injecting faults: %s\n", sched)
	}
	if clusterCfg.ResultMode, err = cluster.ParseResultMode(*mode); err != nil {
		fmt.Fprintf(os.Stderr, "mpibench: -mode: %v\n", err)
		os.Exit(2)
	}
	clusterCfg.SummaryThreshold = *sumThr
	clusterCfg.CollectiveWorkers = *collJ

	cfg := suite.Config{
		Cluster: clusterCfg,
		RelErr:  *relErr,
		Seed:    *seed,
		Workers: *workers,
	}
	if *ceiling > 0 {
		cfg.Resilience = &bench.Resilience{ValueCeiling: *ceiling}
	}
	if *collectives != "" {
		cfg.Collectives = strings.Split(*collectives, ",")
	}
	if cfg.Ranks, err = parseInts(*ranks); err != nil {
		fmt.Fprintf(os.Stderr, "mpibench: -ranks: %v\n", err)
		os.Exit(2)
	}
	if cfg.Bytes, err = parseInts(*bytesFlag); err != nil {
		fmt.Fprintf(os.Stderr, "mpibench: -bytes: %v\n", err)
		os.Exit(2)
	}

	res, err := suite.Run(ctx, cfg, progressW)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpibench: %v\n", err)
		os.Exit(1)
	}
	if err := res.WriteReport(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mpibench: %v\n", err)
		os.Exit(1)
	}
	if res.Interrupted {
		fmt.Fprintln(os.Stderr, "mpibench: sweep interrupted; report above is partial")
		os.Exit(3)
	}
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}
