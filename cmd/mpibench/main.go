// Command mpibench is a SKaMPI-style collective microbenchmark suite on
// the simulated machines: it sweeps collectives × process counts ×
// payload sizes with adaptive CI-driven sampling, delay-window
// synchronization, and statistically sound summaries, then fits
// LogP-style scaling models to each collective (§6's "building block
// for a new benchmark suite").
//
// Usage:
//
//	mpibench [-system daint|dora|pilatus] [-collectives reduce,bcast,...]
//	         [-ranks 2,4,8,16,32] [-bytes 8,1024] [-relerr 0.05]
//	         [-seed 1] [-faults straggler,burst] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/suite"
)

func main() {
	var (
		system      = flag.String("system", "daint", "simulated system: daint|dora|pilatus")
		collectives = flag.String("collectives", "", "comma-separated subset (default: all)")
		ranks       = flag.String("ranks", "2,4,8,16,32", "comma-separated process counts")
		bytesFlag   = flag.String("bytes", "8,1024", "comma-separated payload sizes")
		relErr      = flag.Float64("relerr", 0.05, "target relative CI width")
		seed        = flag.Uint64("seed", 1, "RNG seed")
		faultsFlag  = flag.String("faults", "", "fault preset(s) to inject: "+
			strings.Join(faults.PresetNames(), "|")+" (comma-separated to combine)")
		verbose = flag.Bool("v", false, "stream per-configuration progress")
	)
	flag.Parse()

	var clusterCfg cluster.Config
	switch *system {
	case "daint":
		clusterCfg = cluster.PizDaint()
	case "dora":
		clusterCfg = cluster.PizDora()
	case "pilatus":
		clusterCfg = cluster.Pilatus()
	default:
		fmt.Fprintf(os.Stderr, "mpibench: unknown system %q\n", *system)
		os.Exit(2)
	}
	sched, err := faults.Preset(*faultsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpibench: -faults: %v\n", err)
		os.Exit(2)
	}
	clusterCfg.Faults = sched
	if sched != nil {
		// Rule 9: injected faults are part of the experimental setup.
		fmt.Fprintf(os.Stderr, "mpibench: injecting faults: %s\n", sched)
	}

	cfg := suite.Config{
		Cluster: clusterCfg,
		RelErr:  *relErr,
		Seed:    *seed,
	}
	if *collectives != "" {
		cfg.Collectives = strings.Split(*collectives, ",")
	}
	if cfg.Ranks, err = parseInts(*ranks); err != nil {
		fmt.Fprintf(os.Stderr, "mpibench: -ranks: %v\n", err)
		os.Exit(2)
	}
	if cfg.Bytes, err = parseInts(*bytesFlag); err != nil {
		fmt.Fprintf(os.Stderr, "mpibench: -bytes: %v\n", err)
		os.Exit(2)
	}

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	res, err := suite.Run(cfg, progress)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpibench: %v\n", err)
		os.Exit(1)
	}
	if err := res.WriteReport(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mpibench: %v\n", err)
		os.Exit(1)
	}
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}
