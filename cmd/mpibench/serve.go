package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/serve"
	"repro/internal/suite"
)

// serveFlags holds the -workload serve parameters.
type serveFlags struct {
	arrival    string
	loads      string
	epoch      time.Duration
	epochs     int
	servers    int
	queue      int
	batch      int
	batchDelay time.Duration
	service    time.Duration
	sigma      float64
	perItem    time.Duration
	stallAt    time.Duration
	stallDur   time.Duration
}

func (sv *serveFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&sv.arrival, "arrival", "poisson", "serve: arrival process: poisson|diurnal|onoff")
	fs.StringVar(&sv.loads, "loads", "", "serve: comma-separated offered-load fractions of capacity (default 0.1…0.95 ramp)")
	fs.DurationVar(&sv.epoch, "epoch", 10*time.Second, "serve: simulated time per epoch")
	fs.IntVar(&sv.epochs, "epochs", 6, "serve: seeded epochs per load point (min 6)")
	fs.IntVar(&sv.servers, "servers", 1, "serve: parallel service units")
	fs.IntVar(&sv.queue, "queue", 0, "serve: pending-queue bound (0 = unbounded)")
	fs.IntVar(&sv.batch, "batch", 1, "serve: max requests per batch")
	fs.DurationVar(&sv.batchDelay, "batch-delay", 0, "serve: max wait for an unfilled batch")
	fs.DurationVar(&sv.service, "service", time.Millisecond, "serve: median service time")
	fs.Float64Var(&sv.sigma, "sigma", 0.5, "serve: lognormal service-time shape (0 = deterministic)")
	fs.DurationVar(&sv.perItem, "per-item", 0, "serve: extra service time per batched request")
	fs.DurationVar(&sv.stallAt, "stall-at", 0, "serve: inject a dispatch stall at this epoch time (with -stall)")
	fs.DurationVar(&sv.stallDur, "stall", 0, "serve: injected stall duration (0 = none); arms the coordinated-omission audit")
}

// config translates the flags into the sweep configuration.
func (sv serveFlags) config(seed uint64, workers int) (suite.ServeConfig, error) {
	cfg := suite.ServeConfig{
		Server: serve.ServerConfig{
			Servers:    sv.servers,
			QueueCap:   sv.queue,
			BatchMax:   sv.batch,
			BatchDelay: sv.batchDelay,
			Service:    serve.ServiceConfig{Mean: sv.service, Sigma: sv.sigma, PerItem: sv.perItem},
		},
		Duration: sv.epoch,
		Epochs:   sv.epochs,
		Seed:     seed,
		Workers:  workers,
	}
	switch sv.arrival {
	case "poisson":
		cfg.Arrival = serve.ArrivalConfig{Kind: serve.Poisson}
	case "diurnal":
		cfg.Arrival = serve.ArrivalConfig{Kind: serve.Diurnal, Periods: []serve.DiurnalPeriod{
			{Period: sv.epoch, Amplitude: 0.6},
			{Period: sv.epoch / 4, Amplitude: 0.3},
		}}
	case "onoff":
		cfg.Arrival = serve.ArrivalConfig{Kind: serve.OnOff}
	default:
		return cfg, fmt.Errorf("-arrival: unknown process %q (poisson|diurnal|onoff)", sv.arrival)
	}
	if sv.stallDur > 0 {
		cfg.Server.Stalls = []serve.Stall{{At: sv.stallAt, Dur: sv.stallDur}}
	}
	if sv.loads != "" {
		loads, err := parseFloats(sv.loads)
		if err != nil {
			return cfg, fmt.Errorf("-loads: %w", err)
		}
		cfg.Loads = loads
	}
	return cfg, nil
}

// runServe executes the open-loop load sweep and prints the tail-latency
// report.
func runServe(ctx context.Context, sv serveFlags, seed uint64, workers int, progress io.Writer) error {
	cfg, err := sv.config(seed, workers)
	if err != nil {
		return err
	}
	res, err := suite.RunServe(ctx, cfg, progress)
	if err != nil {
		return err
	}
	return res.WriteReport(os.Stdout)
}

func parseFloats(csv string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		if v <= 0 || v > 2 {
			return nil, fmt.Errorf("load fraction %g outside (0, 2]", v)
		}
		out = append(out, v)
	}
	return out, nil
}
