// Scaling: the paper's Figure 7a/b as a library user would run it —
// a strong-scaling study reported per Rules 1 and 11.
//
// The workload is the paper's Pi calculation: a 20 ms base case with a
// 1% serial fraction and a final reduction, run on the simulated Piz
// Daint. The report states the base case and its absolute performance
// (Rule 1) and shows ideal, Amdahl, and parallel-overhead bounds
// (Rule 11). As a bonus the example really computes π digits in
// parallel to show the workload is not a mock.
//
// Run with: go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	scibench "repro"
	"repro/internal/bounds"
	"repro/internal/cluster"
	"repro/internal/workloads"
)

func main() {
	// The real computation (Rule: the base case must exist!).
	digits, err := workloads.ComputePiDigits(60, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("π to 60 digits (computed in parallel, Machin series): %s…\n\n", digits[:40])

	pc := workloads.PiScalingConfig{
		Base:        20 * time.Millisecond,
		Serial:      0.01,
		ReduceBytes: 8,
	}
	ps := []int{1, 2, 4, 8, 16, 24, 32}
	cfg := cluster.PizDaint()
	cfg.Placement = cluster.Scattered
	points, raw, err := workloads.SimulatePiScaling(cfg, pc, ps, 10, 42)
	if err != nil {
		log.Fatal(err)
	}

	ideal := bounds.Ideal{Base: pc.Base}
	amdahl := bounds.Amdahl{Base: pc.Base, Serial: pc.Serial}

	// Rule 1: the speedup base case, stated with absolute performance.
	base := points[0]
	fmt.Printf("base case: single parallel process, %.4g ms (absolute performance stated per Rule 1)\n\n",
		base.Time.Seconds()*1e3)

	fmt.Printf("%4s  %12s  %12s  %12s  %9s  %9s\n",
		"p", "median (ms)", "ideal (ms)", "Amdahl (ms)", "speedup", "CI ±%")
	for i, pt := range points {
		// Rule 5: quantify the run-to-run spread of each configuration.
		med, err := scibench.MedianCI(raw[i], 0.95)
		relErr := 0.0
		if err == nil {
			relErr = med.RelativeWidth() * 100
		}
		fmt.Printf("%4d  %12.4g  %12.4g  %12.4g  %9.3g  %8.1f%%\n",
			pt.P,
			pt.Time.Seconds()*1e3,
			ideal.MinTime(pt.P).Seconds()*1e3,
			amdahl.MinTime(pt.P).Seconds()*1e3,
			pt.Speedup,
			relErr,
		)
		if pt.Speedup > float64(pt.P) {
			fmt.Printf("      WARNING: super-linear speedup indicates a broken base case (§5.1)\n")
		}
	}

	// Rule 11: plot measured speedup against the bounds.
	var xs, meas, idl, amd []float64
	for _, pt := range points {
		xs = append(xs, float64(pt.P))
		meas = append(meas, pt.Speedup)
		idl = append(idl, bounds.MaxSpeedup(ideal, pt.P))
		amd = append(amd, bounds.MaxSpeedup(amdahl, pt.P))
	}
	fmt.Println()
	err = scibench.XYPlot(os.Stdout, "speedup vs processes", []scibench.Series{
		{Name: "measured", X: xs, Y: meas, Marker: 'o'},
		{Name: "ideal linear", X: xs, Y: idl, Marker: '/'},
		{Name: "Amdahl (b=0.01)", X: xs, Y: amd, Marker: 'a'},
	}, 60, 16)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nreading: measured speedup stays below the Amdahl bound, which stays below")
	fmt.Println("ideal; the residual gap is the reduction overhead (Fig 7b's third bound).")
}
