// Factorial: the §4 experimental-design recommendation in action.
//
// Which matters more for reduction latency on the simulated Piz Daint —
// the payload size or the process placement? A 2² factorial design with
// replicates answers it with main effects, the interaction, and
// per-effect significance, instead of the one-factor-at-a-time guessing
// the paper warns against.
//
// Run with: go run ./examples/factorial
package main

import (
	"fmt"
	"log"
	"time"

	scibench "repro"
	"repro/internal/cluster"
)

func main() {
	design, err := scibench.TwoLevelDesign("payload", "placement")
	if err != nil {
		log.Fatal(err)
	}

	// Factor levels: payload 8 B vs 64 KiB; placement packed vs
	// scattered (one rank per node).
	payloads := []int{8, 65536}
	placements := []cluster.Placement{cluster.Packed, cluster.Scattered}

	seed := uint64(0)
	obs, err := scibench.CollectDesign(design, 40, func(levels []int) float64 {
		seed++
		cfg := scibench.PizDaint()
		cfg.Placement = placements[levels[1]]
		m, err := scibench.NewCluster(cfg, 32, seed)
		if err != nil {
			log.Fatal(err)
		}
		res := m.Reduce(payloads[levels[0]], nil)
		return float64(res.Max()) / float64(time.Microsecond)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("2² factorial: 32-rank reduce latency (µs) on simulated Piz Daint")
	fmt.Println("factors: payload (8 B vs 64 KiB), placement (packed vs scattered)")
	fmt.Println()
	for r, run := range design.Runs {
		mean := scibench.Mean(obs.Y[r])
		fmt.Printf("  %-38s mean %.3f µs over %d replicates\n",
			design.RunLabel(run), mean, len(obs.Y[r]))
	}

	effects, err := scibench.FactorEffects(obs, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\neffects (low → high change, with replicate-based significance):")
	for _, e := range effects {
		verdict := "not significant"
		if e.P < 0.01 {
			verdict = "significant"
		}
		fmt.Printf("  %-18s %+9.3f µs   (t=%7.2f, p=%.2g)  %s\n",
			e.Name(), e.Effect, e.T, e.P, verdict)
	}
	fmt.Println("\nreading: the payload effect dominates (bandwidth term × tree depth);")
	fmt.Println("placement moves latency via the intra- vs inter-node hop mix; the")
	fmt.Println("interaction term shows whether placement matters *more* for large")
	fmt.Println("payloads — one factorial answers all three at once (§4).")
}
