// Serve: coordinated omission, demonstrated and then avoided.
//
// A benchmark loop that waits for each response before sending the next
// request (closed loop) stops offering load exactly when the server
// stalls — so the requests that would have measured the stall are never
// sent, and the reported p99 is a lie of omission. This example runs
// the same seeded workload three ways:
//
//  1. closed-loop through a 2 s dispatch stall: the tail looks clean;
//  2. open-loop through the same stall: the tail shows the truth;
//  3. an open-loop offered-load ramp with rank-based tail CIs and knee
//     detection — the honest way to report service latency (Rules 2,
//     5, 6, 8).
//
// Run with: go run ./examples/serve
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	scibench "repro"
)

func main() {
	// One workload, one seed: Poisson arrivals at 1000 req/s into a
	// single server with deterministic 200 µs service and a 2 s
	// dispatch stall injected at t = 5 s.
	opts := scibench.ServeOptions{
		Arrival: scibench.ArrivalConfig{Kind: "poisson", Rate: 1000},
		Server: scibench.ServeServerConfig{
			Service: scibench.ServeServiceConfig{Mean: 200 * time.Microsecond},
			Stalls:  []scibench.ServeStall{{At: 5 * time.Second, Dur: 2 * time.Second}},
		},
		Duration: 20 * time.Second,
		Seed:     2026,
		Clients:  1,
	}

	chk, err := scibench.CheckCoordinatedOmission(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	fmt.Println("same seeded workload, same 2 s stall, two load generators:")
	fmt.Printf("  closed-loop p99: %8.3f ms   (the loop waited out the stall)\n", 1e3*chk.ClosedP99)
	fmt.Printf("  open-loop   p99: %8.3f ms   (the queueing delay is real)\n", 1e3*chk.OpenP99)
	fmt.Printf("  omission ratio:  %8.0f×\n\n", chk.Ratio)
	fmt.Println("the closed loop did observe the stall once — in its maximum:")
	fmt.Printf("  closed-loop max: %v; it just never reached the percentiles.\n\n", chk.Closed.MaxLatency)

	// The honest report: ramp offered load open-loop, give every tail
	// percentile a nonparametric CI, and show where the knee is.
	sweep := scibench.ServeSweepConfig{
		Arrival: scibench.ArrivalConfig{Kind: "diurnal", Periods: []scibench.DiurnalPeriod{
			{Period: 2 * time.Second, Amplitude: 0.5},
			{Period: 500 * time.Millisecond, Amplitude: 0.25},
		}},
		Server: scibench.ServeServerConfig{
			Servers:    2,
			BatchMax:   4,
			BatchDelay: time.Millisecond,
			Service:    scibench.ServeServiceConfig{Mean: time.Millisecond, Sigma: 0.5, PerItem: 50 * time.Microsecond},
		},
		Loads:    []float64{0.2, 0.5, 0.8, 0.95},
		Duration: 2 * time.Second,
		Seed:     7,
	}
	res, err := scibench.RunServeSweep(context.Background(), sweep, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	if err := res.WriteReport(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}
