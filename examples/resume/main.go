// Resume: a durable campaign interrupted mid-run, corrupted by a
// simulated crash, and resumed bit-for-bit.
//
// The walkthrough runs a journaled ping-pong campaign on a simulated
// Piz Daint and cancels it partway through collection — the write-ahead
// journal already holds every event. It then tears the journal's tail
// the way a crash mid-append would, resumes the campaign (the torn
// record is dropped, the measure source fast-forwarded, every recovered
// sample re-verified), and finally shows that the completed result is
// bit-identical to an uninterrupted campaign with the same seed — the
// property that makes an interruption a pause, not a lost experiment
// (Rule 2: report all data; Rule 9: pin the setup).
//
// Run with: go run ./examples/resume [-seed S]
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	scibench "repro"
)

func main() {
	seed := uint64(21)
	if len(os.Args) > 2 && os.Args[1] == "-seed" {
		fmt.Sscan(os.Args[2], &seed)
	}

	base, err := os.MkdirTemp("", "scibench-resume")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	plan := scibench.Plan{Warmup: 3, MaxSamples: 60, RelErr: 0.005}
	type setup struct {
		System string `json:"system"`
		Seed   uint64 `json:"seed"`
	}
	config := setup{System: "daint", Seed: seed}
	env := scibench.ExperimentEnv{
		Processor:        "simulated Piz Daint (cluster package)",
		Network:          "simulated interconnect, ping-pong 64 B",
		MeasurementSetup: fmt.Sprintf("journaled campaign, seed %d", seed),
		NotApplicable:    []string{"memory", "compiler", "runtime", "filesystem", "inputs", "codeurl"},
	}
	manifest, err := scibench.NewCampaignManifest("walkthrough", seed, config, nil, env)
	if err != nil {
		log.Fatal(err)
	}

	// measure builds the deterministic source: a fresh machine with the
	// recorded seed reproduces the exact latency stream, which is what
	// lets resume fast-forward and verify.
	measure := func() func() (float64, error) {
		m, err := scibench.NewCluster(scibench.PizDaint(), 2, seed)
		if err != nil {
			log.Fatal(err)
		}
		return func() (float64, error) {
			return float64(m.PingPong(0, 1, 64, 1)[0]) / float64(time.Microsecond), nil
		}
	}

	// --- 1. Interrupt a journaled campaign mid-collection. -------------
	dir := filepath.Join(base, "campaign")
	ctx, cancel := context.WithCancel(context.Background())
	calls, src := 0, measure()
	interruptible := func() (float64, error) {
		calls++
		if calls == 25 {
			cancel() // a stand-in for Ctrl-C / SIGTERM / a wall-clock budget
		}
		return src()
	}
	partial, err := scibench.RunCampaign(ctx, dir, manifest, plan, interruptible)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interrupted: %d samples durable, stop = %q\n", len(partial.Raw), partial.Stop)

	// --- 2. Tear the journal like a crash mid-append would. ------------
	j := filepath.Join(dir, "journal.jsonl")
	f, err := os.OpenFile(j, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(f, `{"crc":7,"rec":{"seq":`)
	f.Close()
	fmt.Println("crash simulated: torn half-record appended to the journal")

	// --- 3. A drifted setup is refused (Rule 9). -----------------------
	drifted := manifest
	drifted.Seed = seed + 1
	if _, info, err := scibench.ResumeCampaign(context.Background(), dir, drifted, plan,
		measure(), scibench.CampaignResumeOptions{}); errors.Is(err, scibench.ErrManifestDrift) {
		fmt.Printf("drifted resume refused with %d Rule 9 finding(s) — good\n", len(info.Findings))
	} else {
		log.Fatalf("drifted resume was not refused: %v", err)
	}

	// --- 4. Resume for real. -------------------------------------------
	resumed, info, err := scibench.ResumeCampaign(context.Background(), dir, manifest, plan,
		measure(), scibench.CampaignResumeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed: %d prior samples recovered (torn tail dropped: %v), "+
		"%d invocations fast-forwarded, %d replayed samples verified\n",
		info.PriorSamples, info.Torn, info.FastForwarded, info.ReplayChecked)
	fmt.Printf("final:   %s\n", resumed)

	// --- 5. Bit-identical to an uninterrupted run. ---------------------
	control, err := scibench.RunCampaign(context.Background(), filepath.Join(base, "control"),
		manifest, plan, measure())
	if err != nil {
		log.Fatal(err)
	}
	if len(control.Raw) != len(resumed.Raw) {
		log.Fatalf("sample counts differ: %d vs %d", len(control.Raw), len(resumed.Raw))
	}
	for i := range control.Raw {
		if math.Float64bits(control.Raw[i]) != math.Float64bits(resumed.Raw[i]) {
			log.Fatalf("sample %d differs: %v vs %v", i, control.Raw[i], resumed.Raw[i])
		}
	}
	fmt.Printf("verdict: all %d retained samples are bit-identical to the uninterrupted run\n",
		len(control.Raw))
}
