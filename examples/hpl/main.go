// HPL: the paper's Figure 1 as a library user would run it — a
// variability study of repeated HPL executions, reported the way §3
// demands, on top of a *real* LU factorization.
//
// The example first factors and solves a real system (verifying the
// residual — the computation is not a mock), then runs 50 simulated
// full-scale executions on the 64-node Piz Daint model and reports the
// completion-time distribution with all the statistics the paper
// annotates in Figure 1, including the correct flop-rate summarization
// (harmonic mean of rates vs rate-of-mean-time).
//
// Run with: go run ./examples/hpl [-runs N] [-n N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"

	scibench "repro"
	"repro/internal/cluster"
	"repro/internal/workloads"
)

func main() {
	runs := flag.Int("runs", 50, "number of simulated HPL executions")
	n := flag.Int("n", 65536, "simulated HPL matrix dimension")
	flag.Parse()

	// 1. The real computational core: factor and solve, verify.
	rng := rand.New(rand.NewPCG(7, 7))
	a := workloads.NewRandomMatrix(256, rng)
	f, err := workloads.LUFactor(a, 32)
	if err != nil {
		log.Fatal(err)
	}
	b := make([]float64, 256)
	for i := range b {
		for j := 0; j < 256; j++ {
			b[i] += a.At(i, j)
		}
	}
	x, err := f.Solve(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("real LU solve: n=256, scaled residual %.3g (HPL accepts < 16)\n\n",
		workloads.Residual(a, x, b))

	// 2. The Fig 1 variability study on the simulated 64-node system.
	cfg := cluster.PizDaint()
	cfg.Nodes = 64
	cfg.FlopsPerSec = 1.845e11 // GPU-accelerated rank model
	cfg.BandwidthBps = 4e10
	hplCfg := workloads.HPLConfig{
		N: *n, NB: max(*n/307, 8),
		P: 16, Q: cfg.Nodes * cfg.CoresPerNode / 16,
		RunSigma: 0.025, RunSkew: 0.045,
	}
	m, err := scibench.NewCluster(cfg, hplCfg.Ranks(), 2015)
	if err != nil {
		log.Fatal(err)
	}
	times, results, err := workloads.HPLSeries(m, hplCfg, *runs)
	if err != nil {
		log.Fatal(err)
	}

	s := scibench.Summarize(times)
	medianCI, err := scibench.MedianCI(times, 0.99)
	if err != nil {
		log.Fatal(err)
	}
	flops := results[0].Flops

	fmt.Printf("%d HPL runs (N=%d, %d ranks):\n", *runs, *n, hplCfg.Ranks())
	fmt.Printf("  completion: min %.4g  median %.4g  mean %.4g  p95 %.4g  max %.4g s\n",
		s.Min, s.Median, s.Mean, s.P95, s.Max)
	fmt.Printf("  99%% CI of the median: [%.4g, %.4g] s\n", medianCI.Lo, medianCI.Hi)
	fmt.Printf("  spread (max−min)/min: %.1f%%\n\n", 100*(s.Max-s.Min)/s.Min)

	// Rule 3 in action: summarize rates correctly.
	rates := make([]float64, len(times))
	work := make([]float64, len(times))
	for i, t := range times {
		rates[i] = flops / t / 1e12
		work[i] = flops / 1e12
	}
	wrong := scibench.Mean(rates)
	harm, err := scibench.HarmonicMean(rates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rate summaries (Tflop/s):\n")
	fmt.Printf("  arithmetic mean of per-run rates: %.4g   ← WRONG for rates (Rule 3)\n", wrong)
	fmt.Printf("  harmonic mean of per-run rates:   %.4g   ← correct\n", harm)
	fmt.Printf("  total work / total time:          %.4g   ← identical, from raw costs\n\n",
		scibench.Mean(work)/scibench.Mean(times))

	// The single-number trap: "77 Tflop/s" says nothing without the
	// distribution (the paper's opening example).
	fmt.Printf("best run: %.4g Tflop/s — reporting only this hides a %.0f%%-slower median run\n\n",
		flops/s.Min/1e12, 100*(s.Median-s.Min)/s.Min)

	if err := scibench.DensityPlot(os.Stdout, times, 72, 10); err != nil {
		log.Fatal(err)
	}
}
