// Faults: a straggler-corrupted latency benchmark the contamination
// detector catches.
//
// A simulated Piz Dora measures 64 B ping-pong latency while a seeded
// fault schedule misbehaves underneath: node 0 slows 3x partway through
// the campaign (a straggler) and the interconnect suffers periodic 10x
// interference bursts. The resilient collection loop retries
// burst-spiked samples, accounts what it loses, and Pettitt's
// change-point test flags the straggler onset — after which the
// twelve-rule audit shows how the accounting must be reported (Rule 2)
// and why the contaminated stream must not be summarized as one
// distribution (Rule 6).
//
// Run with: go run ./examples/faults [-samples N] [-seed S]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	scibench "repro"
)

func main() {
	samples := flag.Int("samples", 400, "recorded samples")
	seed := flag.Uint64("seed", 7, "RNG seed (same seed → bit-identical campaign)")
	flag.Parse()

	// Ctrl-C checkpoints the campaign cleanly (StopInterrupted + partial
	// analysis) instead of killing it; see examples/resume for making the
	// checkpoint durable and resumable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The fault schedule is deterministic and part of the experimental
	// setup (Rule 9) — print it like any other factor.
	sched := &scibench.FaultSchedule{
		Stragglers: []scibench.Straggler{{Node: 0, Factor: 3, Start: 600 * time.Microsecond}},
		Bursts: []scibench.InterferenceBurst{{
			Start:    50 * time.Microsecond,
			Duration: 80 * time.Microsecond,
			Factor:   10,
			Period:   400 * time.Microsecond,
		}},
	}
	fmt.Printf("injected schedule: %s\n\n", sched)

	measure := func(faults *scibench.FaultSchedule) (scibench.Result, scibench.ClusterFaultStats) {
		cfg := scibench.PizDora()
		cfg.Faults = faults
		ranks := cfg.CoresPerNode + 1
		m, err := scibench.NewCluster(cfg, ranks, *seed)
		if err != nil {
			log.Fatal(err)
		}
		res, err := scibench.RunErrCtx(ctx, scibench.Plan{
			MinSamples: *samples,
			Resilience: &scibench.Resilience{
				ValueCeiling:    8, // µs: clean ~1.7, straggler ~5, bursts >17
				MaxRetries:      1,
				MaxLossFraction: 1,
			},
		}, func() (float64, error) {
			return float64(m.PingPong(0, ranks-1, 64, 1)[0]) / float64(time.Microsecond), nil
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Stop == scibench.StopInterrupted {
			fmt.Printf("(interrupted after %d samples; the partial analysis below is honest but incomplete)\n",
				res.Summary.N)
		}
		return res, m.FaultStats()
	}

	clean, _ := measure(nil)
	corrupt, fstats := measure(sched)

	fmt.Printf("clean:     %s\n", clean)
	fmt.Printf("corrupted: %s\n\n", corrupt)
	fmt.Printf("collection accounting: %d attempts for %d samples; %d retries, %d lost\n",
		corrupt.Attempts, corrupt.Summary.N, corrupt.Retries, corrupt.SamplesLost)
	fmt.Printf("machine fault stats:   %+v\n\n", fstats)

	// The detector localizes the contamination.
	cp, err := scibench.DetectChangePoint(corrupt.Raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pettitt: K = %.0f, p ≈ %.3g → shift at sample %d, median %.3g → %.3g µs\n",
		cp.K, cp.P, cp.Index, cp.MedianBefore, cp.MedianAfter)
	fmt.Println("(the straggler started at 600µs of simulated time, ~sample 200)")

	// What honest reporting looks like: the loss is disclosed (Rule 2
	// passes) but the regime shift still warns on Rule 6 — a contaminated
	// campaign should be rerun, not averaged over.
	findings, compliance := scibench.AuditRules(scibench.RulesReport{
		SamplesAttempted:    corrupt.Attempts,
		SamplesLost:         corrupt.SamplesLost,
		LossDisclosed:       true,
		StationarityChecked: true,
		RegimeShiftDetected: corrupt.ShiftDetected,
	})
	fmt.Println()
	for _, f := range findings {
		if f.Rule == 2 || f.Rule == 6 {
			fmt.Println(f)
		}
	}
	_ = compliance

	fmt.Println()
	if err := scibench.DensityPlot(os.Stdout, corrupt.Raw, 72, 10); err != nil {
		log.Fatal(err)
	}
}
