// Audit: the twelve rules as an executable reviewer.
//
// The example audits two versions of the same (hypothetical) study: the
// sloppy write-up the paper's survey found to be typical — speedups
// without a base case, arithmetic means of rates, no CIs, a
// mystery-machine setup — and the compliant version of the same study.
//
// Run with: go run ./examples/audit
package main

import (
	"fmt"

	scibench "repro"
)

func sloppyStudy() scibench.RulesReport {
	return scibench.RulesReport{
		Title: "Our System Is 3.7x Faster (sloppy version)",
		// Rule 1: a speedup with no stated base case.
		Speedups: []scibench.RulesSpeedup{{}},
		// Rule 2: only the benchmarks that looked good.
		UsedSubset: true,
		// Rule 3: the classic mistake — arithmetic mean of rates.
		Summaries: []scibench.RulesSummaryUse{
			{Metric: "Gflop/s", Kind: scibench.Rate, Method: "arithmetic mean"},
		},
		// Rules 5–6: nondeterministic data, no CIs, normality assumed.
		Deterministic: false,
		ReportsCI:     false,
		// Rule 7: "ours is faster" straight from two raw numbers.
		Comparisons: []scibench.RulesComparison{
			{Claim: "ours beats baseline", Method: "none (raw numbers compared)"},
		},
		// Rule 9: "we ran on Titan" and nothing else.
		Env: scibench.ExperimentEnv{Processor: "Titan (see TOP500)"},
		// Rule 10: parallel times, methodology unstated.
		Parallel: &scibench.ParallelTimingDoc{},
		// Rule 12: connected line plot over categorical configurations.
		Plots: []scibench.RulesPlot{
			{Name: "speedup lines", ShowsVariation: false, ConnectsPoints: true},
		},
	}
}

func compliantStudy() scibench.RulesReport {
	r := sloppyStudy()
	r.Title = "Our System Under Test (compliant version)"
	r.Speedups = []scibench.RulesSpeedup{{
		BaseCase:         "best serial execution",
		BaseAbsolute:     2.1,
		BaseAbsoluteUnit: "Gflop/s",
	}}
	r.UsedSubset = true
	r.SubsetJustification = "the Fortran kernels are outside the compiler pass's scope"
	r.Summaries = []scibench.RulesSummaryUse{
		{Metric: "Gflop/s", Kind: scibench.Rate, Method: "harmonic mean"},
		{Metric: "completion time", Kind: scibench.Cost, Method: "median"},
	}
	r.ReportsCI = true
	r.CILevel = 0.95
	r.NormalityChecked = true
	r.CenterJustified = true
	r.PercentilesReported = []float64{0.5, 0.99}
	r.Comparisons = []scibench.RulesComparison{
		{Claim: "ours beats baseline at the median", Method: "Kruskal-Wallis"},
	}
	r.Env = scibench.ExperimentEnv{
		Processor:        "2× Xeon E5-2690 v3 (Haswell, 12c, 2.6 GHz)",
		Memory:           "64 GiB DDR4-2133, 4 channels",
		Network:          "Aries dragonfly, ~1.3 µs / 10 GB/s per link",
		Compiler:         "gcc 4.8.2 -O3 -march=native",
		RuntimeLibs:      "CLE 5.2.40, cray-mpich 7.0.4",
		Filesystem:       "not on the critical path",
		InputAndCode:     "inputs and generators released with the code",
		MeasurementSetup: "single-event timing, delay-window sync, 99% CI within 5% of medians",
		CodeURL:          "https://example.org/artifact",
	}
	r.Factors = []scibench.ExperimentFactor{
		{Name: "processes", Levels: []string{"1", "2", "4", "…", "1024"}},
		{Name: "input", Levels: []string{"small", "large"}},
	}
	r.Parallel = &scibench.ParallelTimingDoc{
		MeasurementMethod:   "per-rank interval timing of the full solve",
		SynchronizationUsed: "delay-window",
		SummarizationAcross: "maximum across ranks (worst case), ANOVA-gated",
	}
	r.BoundsModels = []string{"ideal linear", "Amdahl b=0.008", "reduction overhead"}
	r.Plots = []scibench.RulesPlot{
		{Name: "scaling", ShowsVariation: true, ConnectsPoints: true, InterpolationValid: true},
		{Name: "latency violins", ShowsVariation: true},
	}
	return r
}

func printAudit(r scibench.RulesReport) {
	findings, compliance := scibench.AuditRules(r)
	fmt.Printf("── %s\n", r.Title)
	for _, f := range findings {
		if f.Severity.String() != "PASS" {
			fmt.Printf("   %s\n", f)
		}
	}
	fmt.Printf("   → %d/12 rules passed\n\n", compliance.Passed)
}

func main() {
	fmt.Println("auditing two write-ups of the same study against the twelve rules:")
	fmt.Println()
	printAudit(sloppyStudy())
	printAudit(compliantStudy())
	fmt.Println("the sloppy version is exactly the modal paper of the survey (Table 1):")
	fmt.Println("hardware named, everything else missing, and a bare mean as the result.")
}
