// Quickstart: measure a function the statistically sound way.
//
// The library handles everything the paper's rules demand: warmup
// discard, adaptive sampling until the 95% CI of the median is within 2%
// of the estimate, normality diagnostics, and a choice of the right
// summary statistic — then renders an annotated density.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	scibench "repro"
)

// workload is the function under test: sorting 10k pseudo-random ints.
// Real workloads vary run to run (allocator state, cache residency,
// scheduler); this one inherits that nondeterminism naturally.
func workload() float64 {
	xs := make([]int, 10000)
	state := uint64(12345)
	for i := range xs {
		state = state*6364136223846793005 + 1442695040888963407
		xs[i] = int(state >> 33)
	}
	start := time.Now()
	sort.Ints(xs)
	return time.Since(start).Seconds() * 1e6 // µs
}

func main() {
	res, err := scibench.Run(scibench.Plan{
		Warmup:     5,    // establish caches/JIT-like state (§4.1.2)
		MinSamples: 30,   //
		MaxSamples: 2000, //
		Confidence: 0.95,
		RelErr:     0.02, // stop when the median CI is within ±2%
	}, workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("collected %d samples (%s), %d warmup discarded\n",
		res.Summary.N, res.Stop, res.WarmupDiscarded)
	fmt.Printf("summary: %s\n", res.Summary)
	fmt.Printf("Shapiro–Wilk W = %.4f, p = %.3g → plausibly normal: %v\n",
		res.ShapiroW, res.ShapiroP, res.PlausiblyNormal)

	// Rule: report the median with a nonparametric CI for skewed timing
	// data, the mean only for (near) normal data — PreferredCenter
	// encodes that decision tree.
	label, iv := res.PreferredCenter()
	fmt.Printf("\nreport the %s: %v µs\n\n", label, iv)

	if err := scibench.DensityPlot(os.Stdout, res.Raw, 72, 10); err != nil {
		log.Fatal(err)
	}
}
