// Latency: the paper's Figures 3 and 4 as a library user would run them.
//
// Two simulated systems (Piz Dora, Pilatus) measure 64 B ping-pong
// latency; the example demonstrates the full Rule 7/8 toolkit: median
// CIs, the Kruskal–Wallis significance test, effect size, and quantile
// regression revealing that the systems rank differently at different
// percentiles — the paper's central cautionary tale about means.
//
// Run with: go run ./examples/latency [-samples N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	scibench "repro"
)

func measureLatency(cfg scibench.ClusterConfig, samples int, seed uint64) ([]float64, error) {
	// Two processes on different compute nodes (§4.1.2).
	ranks := cfg.CoresPerNode + 1
	m, err := scibench.NewCluster(cfg, ranks, seed)
	if err != nil {
		return nil, err
	}
	raw := m.PingPong(0, ranks-1, 64, samples)
	out := make([]float64, len(raw))
	for i, d := range raw {
		out[i] = float64(d) / float64(time.Microsecond)
	}
	return out, nil
}

func main() {
	samples := flag.Int("samples", 200000, "ping-pong samples per system")
	flag.Parse()

	dora, err := measureLatency(scibench.PizDora(), *samples, 1)
	if err != nil {
		log.Fatal(err)
	}
	pilatus, err := measureLatency(scibench.Pilatus(), *samples, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 3: distributions, robust centers, and significance.
	fmt.Printf("64 B ping-pong latency, %d samples per system (µs)\n\n", *samples)
	for name, xs := range map[string][]float64{"Piz Dora": dora, "Pilatus": pilatus} {
		s := scibench.Summarize(xs)
		med, err := scibench.MedianCI(xs, 0.99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s min %.3f  median %v  mean %.4f  max %.3f\n",
			name, s.Min, med, s.Mean, s.Max)
	}

	kw, err := scibench.KruskalWallis(dora, pilatus)
	if err != nil {
		log.Fatal(err)
	}
	es, err := scibench.EffectSize(dora, pilatus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nKruskal–Wallis: %s → medians differ at 95%%: %v; effect size %.3f\n",
		kw, kw.Significant(0.05), es)

	if err := scibench.BoxPlot(os.Stdout, map[string][]float64{
		"Piz Dora": dora, "Pilatus": pilatus,
	}, 60); err != nil {
		log.Fatal(err)
	}

	// Figure 4: quantile regression — who wins depends on the quantile.
	fmt.Printf("\nper-quantile difference (Pilatus − Dora), 95%% bands:\n")
	pts, err := scibench.CompareQuantiles(dora, pilatus,
		[]float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	var flips []string
	for _, p := range pts {
		sig := ""
		if p.SignificantDif {
			sig = " *"
			if p.Difference < 0 {
				flips = append(flips, fmt.Sprintf("q%g", p.Tau))
			}
		}
		fmt.Printf("  q%-6g %+.4f µs  [%+.4f, %+.4f]%s\n",
			p.Tau, p.Difference, p.DifferenceLo, p.DifferenceHi, sig)
	}
	if len(flips) > 0 {
		fmt.Printf("\nPilatus is significantly FASTER at %v although its median is slower —\n", flips)
		fmt.Println("mean/median comparisons alone would have picked the wrong system for")
		fmt.Println("best-case-latency-critical workloads (Rule 8).")
	}
}
