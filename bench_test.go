// Benchmarks regenerating every table and figure of the paper (one
// benchmark per artifact; see DESIGN.md's per-experiment index). Each
// iteration regenerates the full artifact at a bench-friendly scale;
// cmd/figures runs the paper-scale versions. Additional micro-benchmarks
// cover the statistical kernels the library is built from.
//
// Run with: go test -bench=. -benchmem
package scibench_test

import (
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"testing"
	"time"

	scibench "repro"
	"repro/internal/bootstrap"
	"repro/internal/figures"
	"repro/internal/stats"
)

// BenchmarkTable1Survey regenerates Table 1 (synthetic dataset with the
// exact published marginals + aggregation).
func BenchmarkTable1Survey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Table1(io.Discard, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeansExample regenerates the §3.1.1 worked example.
func BenchmarkMeansExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.MeansExample(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1HPL regenerates Figure 1 (50 HPL runs on the simulated
// 64-node system, scaled N).
func BenchmarkFig1HPL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig1(io.Discard, 50, 16384, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Normalization regenerates Figure 2 (ping-pong samples,
// log and CLT-block normalization, Q-Q + Shapiro–Wilk diagnostics).
func BenchmarkFig2Normalization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig2(io.Discard, 100000, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Significance regenerates Figure 3 (two systems' latency
// distributions, CIs of mean and median, Kruskal–Wallis).
func BenchmarkFig3Significance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig3(io.Discard, 100000, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4QuantileRegression regenerates Figure 4 (per-quantile
// system comparison with confidence bands).
func BenchmarkFig4QuantileRegression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig4(io.Discard, 100000, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Reduce regenerates Figure 5 (reduction times for process
// counts 2..64, powers-of-two effect).
func BenchmarkFig5Reduce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig5(io.Discard, 100, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6PerProcess regenerates Figure 6 (per-process reduction
// variation with the ANOVA pooling gate).
func BenchmarkFig6PerProcess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig6(io.Discard, 100, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Scaling regenerates Figure 7a/b (Pi scaling against the
// three bounds models).
func BenchmarkFig7Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig7ab(io.Discard, 5, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7cPlots regenerates Figure 7c (box/violin statistics of a
// large latency sample).
func BenchmarkFig7cPlots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig7c(io.Discard, 100000, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the statistical kernels -----------------------

func randomSample(n int, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, 1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 50
	}
	return xs
}

// BenchmarkSummarize measures the descriptive-summary bundle on 10k
// observations.
func BenchmarkSummarize(b *testing.B) {
	xs := randomSample(10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = scibench.Summarize(xs)
	}
}

// BenchmarkMedianCI measures the nonparametric median CI on 10k
// observations (dominated by the sort).
func BenchmarkMedianCI(b *testing.B) {
	xs := randomSample(10000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scibench.MedianCI(xs, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShapiroWilk measures the normality test at its maximum
// supported sample size.
func BenchmarkShapiroWilk(b *testing.B) {
	xs := randomSample(5000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scibench.ShapiroWilk(xs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKruskalWallis measures the rank test on two 10k samples.
func BenchmarkKruskalWallis(b *testing.B) {
	xs := randomSample(10000, 4)
	ys := randomSample(10000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scibench.KruskalWallis(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuantileRegression measures the exact LP fit on 200
// observations with two regressors.
func BenchmarkQuantileRegression(b *testing.B) {
	rng := rand.New(rand.NewPCG(6, 6))
	n := 200
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		xi := rng.Float64() * 10
		x[i] = []float64{1, xi}
		y[i] = 2 + 0.5*xi + rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scibench.QuantileRegress(x, y, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveRun measures a full adaptive measurement campaign
// against a synthetic noisy workload.
func BenchmarkAdaptiveRun(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < b.N; i++ {
		_, err := scibench.Run(scibench.Plan{
			MinSamples: 20, MaxSamples: 500, RelErr: 0.05,
		}, func() float64 { return 10 + rng.NormFloat64() })
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterReduce measures one simulated 64-rank reduction.
func BenchmarkClusterReduce(b *testing.B) {
	m, err := scibench.NewCluster(scibench.PizDaint(), 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Reduce(8, nil)
	}
}

// BenchmarkClusterPingPong measures simulated ping-pong sample
// generation (per 1000 samples).
func BenchmarkClusterPingPong(b *testing.B) {
	m, err := scibench.NewCluster(scibench.PizDora(), 25, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.PingPong(0, 24, 64, 1000)
	}
}

// --- Collective scaling benchmarks (million-rank engine) ---------------

// benchCollective sweeps one collective across three orders of magnitude
// of rank count. Auto result mode means P=1k materializes exact per-rank
// times while P=64k and P=1M return fixed-size summaries — B/op must be
// flat across the two summary sizes (the engine's allocation-flat
// contract, pinned by TestSummaryAllocsFlat and gated by benchgate).
func benchCollective(b *testing.B, run func(*scibench.Cluster) scibench.Collective) {
	for _, p := range []int{1 << 10, 1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			cfg := scibench.PizDaint()
			// The preset's 42k cores cap P; scale the node count while
			// keeping the per-node noise character.
			cfg.Nodes = 1 << 17
			m, err := scibench.NewCluster(cfg, p, 1)
			if err != nil {
				b.Fatal(err)
			}
			run(m) // warm the machine's scratch-buffer pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = run(m)
			}
		})
	}
}

func BenchmarkCollectiveReduce(b *testing.B) {
	benchCollective(b, func(m *scibench.Cluster) scibench.Collective { return m.Reduce(8, nil) })
}

func BenchmarkCollectiveBcast(b *testing.B) {
	benchCollective(b, func(m *scibench.Cluster) scibench.Collective { return m.Bcast(8, nil) })
}

func BenchmarkCollectiveBarrier(b *testing.B) {
	benchCollective(b, func(m *scibench.Cluster) scibench.Collective { return m.Barrier(nil) })
}

func BenchmarkCollectiveAllreduce(b *testing.B) {
	benchCollective(b, func(m *scibench.Cluster) scibench.Collective { return m.Allreduce(8, nil) })
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ------

// BenchmarkAblationSync compares the two clock-synchronization schemes
// of §4.2.1: the recommended delay-window scheme vs the naive
// agree-on-a-wall-clock-time approach. The reported custom metric is the
// residual start skew in nanoseconds — the accuracy each scheme buys.
func BenchmarkAblationSync(b *testing.B) {
	for _, scheme := range []string{"delay-window", "naive-clocks", "barrier"} {
		b.Run(scheme, func(b *testing.B) {
			var totalSkew float64
			for i := 0; i < b.N; i++ {
				// A fresh machine per iteration: reusing one lets clock
				// drift accumulate over simulated time, making the naive
				// scheme's skew grow without bound (true, but a different
				// metric than per-sync accuracy).
				m, err := scibench.NewCluster(scibench.PizDora(), 16, 42)
				if err != nil {
					b.Fatal(err)
				}
				switch scheme {
				case "delay-window":
					totalSkew += float64(m.DelayWindowSync(time.Millisecond, 5).MaxSkew)
				case "naive-clocks":
					totalSkew += float64(m.NaiveClockSync(time.Millisecond).MaxSkew)
				case "barrier":
					totalSkew += float64(m.BarrierSync().MaxSkew)
				}
			}
			b.ReportMetric(totalSkew/float64(b.N), "skew-ns")
		})
	}
}

// BenchmarkAblationOutlierPolicy compares summary bias under the three
// outlier policies on identical heavy-tailed data: keep-all vs Tukey
// k=1.5 vs Tukey k=3. The custom metric is the resulting mean estimate
// (×1000), showing how aggressively each policy shifts it.
func BenchmarkAblationOutlierPolicy(b *testing.B) {
	policies := map[string]scibench.OutlierPolicy{
		"keep-all":  {},
		"tukey-1.5": {Remove: true, TukeyK: 1.5},
		"tukey-3.0": {Remove: true, TukeyK: 3},
	}
	for name, pol := range policies {
		b.Run(name, func(b *testing.B) {
			var meanSum float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewPCG(uint64(i), 9))
				res, err := scibench.Run(scibench.Plan{
					MinSamples: 200,
					Outliers:   pol,
				}, func() float64 {
					v := 1 + 0.1*rng.NormFloat64()
					if rng.Float64() < 0.02 {
						v += 5 // rare interference spike
					}
					return v
				})
				if err != nil {
					b.Fatal(err)
				}
				meanSum += res.Summary.Mean
			}
			b.ReportMetric(1000*meanSum/float64(b.N), "mean-x1000")
		})
	}
}

// BenchmarkAblationStoppingRule compares fixed-30-samples against the
// adaptive CI-width rule on the same skewed workload. Custom metrics:
// samples spent and achieved relative CI width (×1000) — the tradeoff
// §4.2.2 is about.
func BenchmarkAblationStoppingRule(b *testing.B) {
	plans := map[string]scibench.Plan{
		"fixed-30":    {MinSamples: 30},
		"adaptive-5%": {MinSamples: 10, MaxSamples: 3000, RelErr: 0.05},
		"adaptive-2%": {MinSamples: 10, MaxSamples: 3000, RelErr: 0.02},
	}
	for name, plan := range plans {
		b.Run(name, func(b *testing.B) {
			var samples, width float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewPCG(uint64(i), 5))
				res, err := scibench.Run(plan, func() float64 {
					return math.Exp(0.4 * rng.NormFloat64())
				})
				if err != nil {
					b.Fatal(err)
				}
				samples += float64(res.Summary.N)
				width += res.MedianCI.RelativeWidth()
			}
			b.ReportMetric(samples/float64(b.N), "samples")
			b.ReportMetric(1000*width/float64(b.N), "relwidth-x1000")
		})
	}
}

// BenchmarkAblationBlockNormalization quantifies the Fig 2 tradeoff:
// larger CLT blocks buy normality (Q-Q straightness ×1000 reported) at
// the cost of resolution.
func BenchmarkAblationBlockNormalization(b *testing.B) {
	m, err := scibench.NewCluster(scibench.PizDora(), 25, 7)
	if err != nil {
		b.Fatal(err)
	}
	raw := m.PingPong(0, 24, 64, 50000)
	xs := make([]float64, len(raw))
	for i, d := range raw {
		xs[i] = float64(d)
	}
	for _, k := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var corr float64
			for i := 0; i < b.N; i++ {
				res, err := scibench.Analyze(blockMeans(xs, k), 0.95)
				if err != nil {
					b.Fatal(err)
				}
				corr += res.ShapiroW
			}
			b.ReportMetric(1000*corr/float64(b.N), "shapiroW-x1000")
		})
	}
}

func blockMeans(xs []float64, k int) []float64 {
	n := len(xs) / k
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := i * k; j < (i+1)*k; j++ {
			sum += xs[j]
		}
		out[i] = sum / float64(k)
	}
	return out
}

// --- Harness benchmarks (parallel execution engine + stats fast path) --

// BenchmarkSuiteRun measures a small collective sweep end to end, serial
// vs all cores; the report is bit-identical either way, so the delta is
// pure harness speedup.
func BenchmarkSuiteRun(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "j=1"
		if workers == 0 {
			name = "j=max"
		}
		b.Run(name, func(b *testing.B) {
			cfg := scibench.SuiteConfig{
				Cluster:     scibench.PizDaint(),
				Collectives: []string{"reduce", "bcast", "allreduce"},
				Ranks:       []int{2, 4, 8, 16},
				Bytes:       []int{8},
				MinRuns:     20,
				MaxRuns:     80,
				RelErr:      0.05,
				Seed:        1,
				Workers:     workers,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := scibench.RunSuite(cfg, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBootstrapCI measures a BCa bootstrap of the median, serial vs
// all cores (identical intervals by construction).
func BenchmarkBootstrapCI(b *testing.B) {
	xs := randomSample(200, 8)
	for _, workers := range []int{1, 0} {
		name := "j=1"
		if workers == 0 {
			name = "j=max"
		}
		b.Run(name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewPCG(1, 2))
				if _, err := bootstrap.CIWorkers(xs, stats.Median, bootstrap.BCa,
					1000, 0.95, rng, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyze measures the full one-sample analysis (summary, CIs,
// change-point scan, normality diagnostics) on 5k observations — the
// path that previously sorted the sample 4–6 times and now sorts once.
func BenchmarkAnalyze(b *testing.B) {
	xs := randomSample(5000, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scibench.Analyze(xs, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSampleReset measures the allocation-lean loop path: one
// Sample reused across many summaries (0 allocs/op after warmup).
func BenchmarkSampleReset(b *testing.B) {
	xs := randomSample(10000, 10)
	s := scibench.NewSample(xs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset(xs)
		_ = s.Summarize()
	}
}
