package scibench_test

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	scibench "repro"
)

// TestFacadeEndToEnd drives the whole public pipeline: measure two
// simulated systems, analyze, compare, audit.
func TestFacadeEndToEnd(t *testing.T) {
	rngA := rand.New(rand.NewPCG(1, 1))
	rngB := rand.New(rand.NewPCG(2, 2))
	exp := &scibench.Experiment{
		Meta: scibench.Metadata{
			Name: "latency",
			Unit: "µs",
			Kind: scibench.Cost,
			Env: scibench.ExperimentEnv{
				Processor: "sim", Memory: "sim", Network: "sim",
				Compiler: "gc", RuntimeLibs: "go", Filesystem: "n/a",
				InputAndCode: "64B pingpong", MeasurementSetup: "single event",
				CodeURL: "https://example.org",
			},
			Factors: []scibench.ExperimentFactor{
				{Name: "system", Levels: []string{"a", "b"}},
			},
		},
		Plan: scibench.Plan{MinSamples: 300},
		Configs: []scibench.Configuration{
			{Label: "a", Measure: func() float64 { return 1.7 + 0.2*math.Exp(0.3*rngA.NormFloat64()) }},
			{Label: "b", Measure: func() float64 { return 1.6 + 0.4*math.Exp(0.5*rngB.NormFloat64()) }},
		},
	}
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := res.Compare("a", "b", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.MedianTest.P < 0 || cmp.MedianTest.P > 1 {
		t.Errorf("p out of range: %v", cmp.MedianTest)
	}
	findings, compliance := res.Audit(scibench.RulesReport{
		Plots: []scibench.RulesPlot{{Name: "densities", ShowsVariation: true}},
		Comparisons: []scibench.RulesComparison{
			{Claim: "a vs b medians", Method: "Kruskal-Wallis"},
		},
		BoundsModels: []string{"latency floor"},
	})
	if len(findings) == 0 {
		t.Fatal("no findings")
	}
	if compliance.Passed < 11 {
		t.Errorf("compliance = %d/12", compliance.Passed)
		for _, f := range findings {
			t.Log(f)
		}
	}
}

// TestFacadeStatistics sanity-checks the re-exported statistics.
func TestFacadeStatistics(t *testing.T) {
	xs := []float64{10, 100, 40}
	if scibench.Mean(xs) != 50 {
		t.Error("Mean")
	}
	h, err := scibench.HarmonicMean([]float64{10, 1, 2.5})
	if err != nil || math.Abs(h-2) > 1e-12 {
		t.Errorf("HarmonicMean = %g, %v", h, err)
	}
	if scibench.Median(xs) != 40 {
		t.Error("Median")
	}
	if scibench.Quantile(xs, 1) != 100 {
		t.Error("Quantile")
	}
	s := scibench.Summarize(xs)
	if s.N != 3 {
		t.Error("Summarize")
	}
	m, err := scibench.SummarizeMean(scibench.Cost, xs)
	if err != nil || m != 50 {
		t.Errorf("SummarizeMean = %g, %v", m, err)
	}
}

func TestFacadeCIsAndTests(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = 5 + rng.NormFloat64()
		ys[i] = 6 + rng.NormFloat64()
	}
	if _, err := scibench.MeanCI(xs, 0.95); err != nil {
		t.Error(err)
	}
	if _, err := scibench.MedianCI(xs, 0.95); err != nil {
		t.Error(err)
	}
	if _, err := scibench.QuantileCI(xs, 0.9, 0.95); err != nil {
		t.Error(err)
	}
	if n, err := scibench.RequiredSamples(xs, 0.95, 0.05); err != nil || n < 1 {
		t.Errorf("RequiredSamples = %d, %v", n, err)
	}
	if sw, err := scibench.ShapiroWilk(xs); err != nil || sw.Stat <= 0 {
		t.Errorf("ShapiroWilk: %v %v", sw, err)
	}
	if ad, err := scibench.AndersonDarling(xs); err != nil || ad.P < 0 {
		t.Errorf("AndersonDarling: %v %v", ad, err)
	}
	if li, err := scibench.Lilliefors(xs); err != nil || li.P < 0 {
		t.Errorf("Lilliefors: %v %v", li, err)
	}
	tt, err := scibench.TTest(xs, ys, true)
	if err != nil || !tt.Significant(0.01) {
		t.Errorf("TTest should detect the shift: %v %v", tt, err)
	}
	kw, err := scibench.KruskalWallis(xs, ys)
	if err != nil || !kw.Significant(0.01) {
		t.Errorf("KruskalWallis should detect the shift: %v %v", kw, err)
	}
	if _, err := scibench.OneWayANOVA(xs, ys); err != nil {
		t.Error(err)
	}
	if es, err := scibench.EffectSize(xs, ys); err != nil || es >= 0 {
		t.Errorf("EffectSize = %g, %v", es, err)
	}
	if d, err := scibench.DiagnoseIID(xs, 5); err != nil || !d.LooksIID {
		t.Errorf("DiagnoseIID: %+v %v", d, err)
	}
}

func TestFacadeBootstrapAndDesign(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = math.Exp(0.3 * rng.NormFloat64())
	}
	iv, err := scibench.BootstrapCI(xs, scibench.Median, scibench.BootstrapBCa, 400, 0.95, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(scibench.Median(xs)) {
		t.Error("bootstrap CI misses the point estimate")
	}
	if _, err := scibench.BootstrapDifferenceCI(xs, xs, scibench.Median, 400, 0.95, rng); err != nil {
		t.Error(err)
	}

	d, err := scibench.TwoLevelDesign("nb", "placement")
	if err != nil {
		t.Fatal(err)
	}
	obs, err := scibench.CollectDesign(d, 10, func(levels []int) float64 {
		return float64(levels[0])*3 + rng.NormFloat64()*0.1
	})
	if err != nil {
		t.Fatal(err)
	}
	effects, err := scibench.FactorEffects(obs, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(effects) != 3 {
		t.Errorf("effects = %d", len(effects))
	}
	if math.Abs(effects[0].Effect-3) > 0.2 {
		t.Errorf("nb effect = %g, want ≈3", effects[0].Effect)
	}
}

func TestFacadeClusterAndBounds(t *testing.T) {
	m, err := scibench.NewCluster(scibench.QuietCluster(4, 2), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reduce(8, nil).Max() <= 0 {
		t.Error("reduce produced no time")
	}
	mm, err := scibench.NewMachineModel([]string{"flop/s"}, []float64{1e12})
	if err != nil {
		t.Fatal(err)
	}
	f, u, err := mm.Bottleneck(scibench.Requirements{Rates: []float64{5e11}})
	if err != nil || f != "flop/s" || math.Abs(u-0.5) > 1e-12 {
		t.Errorf("bottleneck: %s %g %v", f, u, err)
	}
	ideal := scibench.Ideal{Base: 1e9}
	if ideal.MinTime(4) >= ideal.MinTime(2) {
		t.Error("ideal bound not decreasing")
	}
}

func TestFacadeCountersAndTimer(t *testing.T) {
	d := scibench.MeasureCounters(func() {
		_ = make([]byte, 1<<16)
	})
	if d.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
	ds := scibench.CounterSeries(3, func() {})
	if len(ds) != 3 {
		t.Error("series length")
	}
	cal := scibench.CalibrateTimer(16)
	if cal.Resolution <= 0 {
		t.Error("calibration failed")
	}
}

func TestFacadeRulesAndRendering(t *testing.T) {
	if scibench.RuleText(1) == "" || scibench.RuleText(12) == "" {
		t.Error("rule texts missing")
	}
	if scibench.RuleText(0) != "" || scibench.RuleText(13) != "" {
		t.Error("out-of-range rules should be empty")
	}
	fs, c := scibench.AuditRules(scibench.RulesReport{Title: "empty study"})
	if len(fs) == 0 || c.Passed > 12 {
		t.Error("audit of empty report")
	}

	var sb strings.Builder
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 2, 3, 4}
	if err := scibench.DensityPlot(&sb, xs, 40, 6); err != nil {
		t.Error(err)
	}
	if err := scibench.BoxPlot(&sb, map[string][]float64{"g": xs}, 40); err != nil {
		t.Error(err)
	}
	if err := scibench.ViolinPlot(&sb, map[string][]float64{"g": xs}, 40); err != nil {
		t.Error(err)
	}
	if err := scibench.XYPlot(&sb, "t", []scibench.Series{{Name: "s", X: xs, Y: xs}}, 40, 6); err != nil {
		t.Error(err)
	}
	if err := scibench.WriteCSV(&sb, []string{"x"}, xs); err != nil {
		t.Error(err)
	}
	if sb.Len() == 0 {
		t.Error("nothing rendered")
	}
}

// ExampleRun demonstrates the core measurement loop.
func ExampleRun() {
	rng := rand.New(rand.NewPCG(1, 1))
	res, _ := scibench.Run(scibench.Plan{MinSamples: 100}, func() float64 {
		return 10 + rng.NormFloat64()*0.5
	})
	label, _ := res.PreferredCenter()
	fmt.Println("samples:", res.Summary.N, "— report the", label)
	// Output:
	// samples: 100 — report the mean
}

// ExampleSummarizeMean shows Rule 3's dispatch.
func ExampleSummarizeMean() {
	rates := []float64{10, 1, 2.5} // Gflop/s of three 100-Gflop runs
	h, _ := scibench.SummarizeMean(scibench.Rate, rates)
	fmt.Printf("harmonic mean: %.1f Gflop/s\n", h)
	// Output:
	// harmonic mean: 2.0 Gflop/s
}

// TestRegressionGateFacade drives the public regression-gate surface:
// record two bench runs as reports, gate them, and render the verdict.
func TestRegressionGateFacade(t *testing.T) {
	mkReport := func(seed uint64, mean float64) *scibench.BenchReport {
		rng := rand.New(rand.NewPCG(seed, seed))
		var out strings.Builder
		out.WriteString("goos: linux\npkg: repro\ncpu: simulated\n")
		for i := 0; i < 12; i++ {
			fmt.Fprintf(&out, "BenchmarkGate-8 100 %.0f ns/op\n", mean+0.02*mean*rng.NormFloat64())
		}
		rep, err := scibench.ParseBenchOutput(strings.NewReader(out.String()))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := mkReport(1, 1000)
	slow := mkReport(2, 1300) // +30% median: a real regression
	g, err := scibench.CompareBenchReports(base, slow, scibench.GateOptions{Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Regressed() {
		t.Fatalf("gate missed a +30%% shift: %+v", g.Comparisons)
	}
	if g.Comparisons[0].Verdict != scibench.GateRegressed {
		t.Errorf("verdict = %s, want %s", g.Comparisons[0].Verdict, scibench.GateRegressed)
	}
	var md strings.Builder
	if err := g.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "REGRESSED") {
		t.Error("markdown missing REGRESSED row")
	}

	// The rank test behind the gate is exported too.
	mw, err := scibench.MannWhitney(
		base.Results[0].Sample("ns/op"), slow.Results[0].Sample("ns/op"))
	if err != nil {
		t.Fatal(err)
	}
	if !mw.Significant(0.05) {
		t.Errorf("MannWhitney p = %g, want < 0.05", mw.P)
	}
	if scibench.BenchEnvFingerprint(base.Env) != scibench.BenchEnvFingerprint(slow.Env) {
		t.Error("same env block must fingerprint identically")
	}
}

// ExampleCompareQuantiles shows the Fig 4 analysis on synthetic data.
func ExampleCompareQuantiles() {
	rng := rand.New(rand.NewPCG(7, 7))
	base := make([]float64, 5000)
	alt := make([]float64, 5000)
	for i := range base {
		base[i] = 1.7 + 0.1*math.Exp(0.5*rng.NormFloat64())
		alt[i] = 1.85 + 0.01*rng.Float64()
	}
	pts, _ := scibench.CompareQuantiles(base, alt, []float64{0.5}, 0.95)
	fmt.Printf("median difference positive: %v\n", pts[0].Difference > 0)
	// Output:
	// median difference positive: true
}
