// Benchmarks of the campaign journal's two on-disk encodings: append
// throughput (the per-observation durability cost a campaign pays) and
// replay throughput (the recovery/merge cost). v1 is one fsynced JSONL
// frame per record; v2 is chunked delta-encoded columns with one fsync
// per 64-record chunk — the group-commit amortization is the point, so
// both append benchmarks run with Sync on, as campaigns do.
package scibench_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/rules"
)

// benchManifest is a minimal valid manifest for journal benchmarks.
func benchManifest(b *testing.B) campaign.Manifest {
	b.Helper()
	m, err := campaign.NewManifest("bench", 1, map[string]int{"samples": 1}, nil,
		rules.Environment{})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// benchEvent is the steady-state record shape: monotone sample values
// with occasional retries, matching a real collection stream.
func benchEvent(i int) bench.Event {
	if i%50 == 49 {
		return bench.Event{Kind: bench.EventRetry}
	}
	return bench.Event{
		Kind:  bench.EventSample,
		Value: 1800.0 + float64(i%17)*0.25,
		Calls: 1,
	}
}

func benchmarkJournalAppend(b *testing.B, format campaign.Format) {
	dir := b.TempDir()
	j, err := campaign.CreateJournal(dir, benchManifest(b), campaign.JournalOptions{Format: format})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Record(benchEvent(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := j.Flush(); err != nil {
		b.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, campaign.JournalFile)); err == nil && b.N > 0 {
		b.ReportMetric(float64(fi.Size())/float64(b.N), "bytes/record")
	}
}

// BenchmarkJournalAppendV1 is the per-record fsync baseline.
func BenchmarkJournalAppendV1(b *testing.B) {
	benchmarkJournalAppend(b, campaign.FormatJSONL)
}

// BenchmarkJournalAppendV2 is the chunked group-commit path; the gate
// requires it ≥5× the v1 throughput.
func BenchmarkJournalAppendV2(b *testing.B) {
	benchmarkJournalAppend(b, campaign.FormatV2)
}

func benchmarkJournalReplay(b *testing.B, format campaign.Format) {
	const records = 4096
	dir := b.TempDir()
	j, err := campaign.CreateJournal(dir, benchManifest(b), campaign.JournalOptions{Format: format})
	if err != nil {
		b.Fatal(err)
	}
	j.Sync = false // build the fixture fast; replay reads, never syncs
	for i := 0; i < records; i++ {
		if err := j.Record(benchEvent(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		b.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, campaign.JournalFile))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := campaign.Replay(data)
		if len(st.Records) != records || st.Torn {
			b.Fatalf("replay: %d records, torn=%v", len(st.Records), st.Torn)
		}
	}
}

// BenchmarkJournalReplayV1 replays a 4096-record JSONL journal.
func BenchmarkJournalReplayV1(b *testing.B) {
	benchmarkJournalReplay(b, campaign.FormatJSONL)
}

// BenchmarkJournalReplayV2 replays the same stream as chunked binary.
func BenchmarkJournalReplayV2(b *testing.B) {
	benchmarkJournalReplay(b, campaign.FormatV2)
}
