package scibench_test

import (
	"reflect"
	"testing"
	"time"

	scibench "repro"
)

// faultyCampaign is the issue's acceptance scenario: a seeded straggler
// + interference-burst schedule under a resilient plan.
func faultyCampaign(t *testing.T) (scibench.Result, scibench.ClusterFaultStats) {
	t.Helper()
	cfg := scibench.PizDora()
	cfg.Faults = &scibench.FaultSchedule{
		// Node 0 slows 3x from 600µs on — mid-campaign at ~3µs of
		// simulated time per sample.
		Stragglers: []scibench.Straggler{{Node: 0, Factor: 3, Start: 600 * time.Microsecond}},
		// A 10x interference spike for 80µs every 400µs — wide enough
		// that a slot's retry budget can run out inside one window.
		Bursts: []scibench.InterferenceBurst{{
			Start:    50 * time.Microsecond,
			Duration: 80 * time.Microsecond,
			Factor:   10,
			Period:   400 * time.Microsecond,
		}},
	}
	ranks := cfg.CoresPerNode + 1
	m, err := scibench.NewCluster(cfg, ranks, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scibench.RunErr(scibench.Plan{
		MinSamples: 400,
		Resilience: &scibench.Resilience{
			// Clean latency is ~1.7µs and the straggler regime ~5µs; the
			// ceiling catches only the 10x burst spikes (>= 17µs).
			ValueCeiling:    8, // µs
			MaxRetries:      1,
			MaxLossFraction: 1, // collect the full campaign regardless
		},
	}, func() (float64, error) {
		return float64(m.PingPong(0, ranks-1, 64, 1)[0]) / float64(time.Microsecond), nil
	})
	if err != nil {
		t.Fatalf("resilient campaign must complete: %v", err)
	}
	return res, m.FaultStats()
}

func TestFaultyCampaignAcceptance(t *testing.T) {
	res, _ := faultyCampaign(t)
	if res.Summary.N != 400 {
		t.Errorf("n = %d, want the full 400 despite faults", res.Summary.N)
	}
	if res.Retries == 0 {
		t.Error("burst spikes above the ceiling must be retried")
	}
	if res.SamplesLost == 0 {
		t.Error("slots caught inside a burst window must be lost")
	}
	if !res.ShiftDetected {
		t.Errorf("straggler onset not detected: p = %g", res.ShiftP)
	}
	if !res.FaultSuspected {
		t.Error("campaign must be fault-suspected")
	}

	// The detector's split must land near the straggler onset (sample
	// ~200 of 400), not at the edges.
	if res.ShiftIndex < 100 || res.ShiftIndex > 300 {
		t.Errorf("shift index %d far from the 600µs onset", res.ShiftIndex)
	}

	// The audit turns the accounting into findings: disclosed loss
	// passes Rule 2, the detected shift warns on Rule 6.
	findings, _ := scibench.AuditRules(scibench.RulesReport{
		SamplesAttempted:    res.Attempts,
		SamplesLost:         res.SamplesLost,
		LossDisclosed:       true,
		StationarityChecked: true,
		RegimeShiftDetected: res.ShiftDetected,
	})
	var rule2Pass, rule6Warn bool
	for _, f := range findings {
		if f.Rule == 2 && f.Severity == 0 && f.Message != "" {
			rule2Pass = true
		}
		if f.Rule == 6 && f.Severity == 1 {
			rule6Warn = true
		}
	}
	if !rule2Pass {
		t.Error("disclosed loss must produce a Rule 2 pass finding")
	}
	if !rule6Warn {
		t.Error("detected shift must produce a Rule 6 warning")
	}
}

func TestFaultyCampaignReproducible(t *testing.T) {
	a, sa := faultyCampaign(t)
	b, sb := faultyCampaign(t)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed and schedule must reproduce the Result bit-for-bit")
	}
	if sa != sb {
		t.Errorf("fault stats differ: %+v vs %+v", sa, sb)
	}
}
