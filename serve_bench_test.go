// Benchmarks for the open-loop service workload (ROADMAP item 2): the
// simulation hot paths the benchgate tracks. BenchmarkHistogramRecord
// additionally asserts the 0 allocs/op contract the serve loop's
// memory-speed latency recording depends on.
package scibench_test

import (
	"testing"
	"time"

	scibench "repro"
)

// BenchmarkServePoisson simulates one open-loop Poisson epoch: ~2000
// arrivals scheduled, served, and recorded per iteration.
func BenchmarkServePoisson(b *testing.B) {
	var hist scibench.LogHistogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := scibench.RunServe(scibench.ServeOptions{
			Arrival: scibench.ArrivalConfig{Kind: "poisson", Rate: 2000},
			Server: scibench.ServeServerConfig{
				Servers: 2,
				Service: scibench.ServeServiceConfig{Mean: 500 * time.Microsecond, Sigma: 0.5},
			},
			Duration: time.Second,
			Seed:     uint64(i) + 1,
			Hist:     &hist,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed == 0 {
			b.Fatal("empty epoch")
		}
	}
}

// BenchmarkServeBatching exercises the batching dispatch path: full
// batches under saturation with deadline wakes in play.
func BenchmarkServeBatching(b *testing.B) {
	var hist scibench.LogHistogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := scibench.RunServe(scibench.ServeOptions{
			Arrival: scibench.ArrivalConfig{Kind: "onoff", Rate: 4000},
			Server: scibench.ServeServerConfig{
				QueueCap:   1024,
				BatchMax:   8,
				BatchDelay: time.Millisecond,
				Service:    scibench.ServeServiceConfig{Mean: time.Millisecond, Sigma: 0.3, PerItem: 50 * time.Microsecond},
			},
			Duration: time.Second,
			Seed:     uint64(i) + 1,
			Hist:     &hist,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Batches == 0 {
			b.Fatal("no batches dispatched")
		}
	}
}

// BenchmarkHistogramRecord measures the latency-recording hot path and
// enforces its zero-allocation contract.
func BenchmarkHistogramRecord(b *testing.B) {
	var h scibench.LogHistogram
	v := 123e-6
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(v)
		v += 1e-9
	}
	b.StopTimer()
	if h.Count() != uint64(b.N) {
		b.Fatalf("recorded %d of %d", h.Count(), b.N)
	}
	if allocs := testing.AllocsPerRun(1000, func() { h.Record(v) }); allocs != 0 {
		b.Fatalf("Record allocates %.1f per op, want 0", allocs)
	}
}
