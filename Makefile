GO ?= go

.PHONY: all build test vet race check bench bench-smoke bench-json benchgate \
	coverage coverage-check figures telemetry-smoke durability journalcheck \
	shardcheck remotecheck scalecheck loadcheck fuzzcheck profile-cluster

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# telemetry-smoke drives the observability endpoint end to end: real
# harness activity, a live /metrics scrape, and assertions on the
# advertised metric names and trace span hierarchy.
telemetry-smoke:
	$(GO) test -run TestTelemetrySmoke -count=1 ./internal/telemetry

# durability runs the crash-simulation tests for the campaign journal's
# write-ahead manifest protocol (fsync ordering, failed-seal refusal).
durability:
	$(GO) test -run 'TestCreateManifest' -count=1 ./internal/campaign

# journalcheck drives the journal encodings' crash story: torn-tail and
# bit-flip recovery at every offset for both formats, failed-append
# rewind, v1↔v2 conversion with replay verification, in-process and
# real-process (SIGKILL) resumes proving v1 and v2 reports
# byte-identical. (Fuzzing of the v2 decoder lives in `fuzzcheck`.)
journalcheck:
	$(GO) test -run 'TestJournal|TestConvertJournal|TestRunResumeBitIdenticalAcrossFormats|TestReplay' \
		-count=1 ./internal/campaign
	$(GO) test -run 'TestBinaryTrace|TestTracerBinarySink' -count=1 ./internal/telemetry
	$(GO) test -run 'TestCampaignV2SIGKILLResumeByteIdentity|TestShardedCampaignV2ByteIdentity' \
		-count=1 ./cmd/scibench

# shardcheck drives the distributed-execution stack with real executor
# processes: one SIGKILLed mid-shard (resume from journal on
# reassignment), one wedged without heartbeats (stall-killed), and the
# CLI sharded campaign — every merged report byte-identical to its
# single-process reference.
shardcheck:
	$(GO) test -run 'TestProcess' -count=1 ./internal/shard
	$(GO) test -run 'TestShardedCampaignSIGKILLByteIdentity' -count=1 ./cmd/scibench

# remotecheck drives the cross-machine transport: two loopback workers
# under injected loss/delay/duplication, a mid-shard partition forcing a
# fenced reassignment with resume-from-shipped-journal, and the CLI
# worker-loss campaign — every merged report byte-identical to its
# single-process reference.
remotecheck:
	$(GO) test -run 'TestLoopbackTwoWorkersFaultyByteIdentity|TestPartitionReassignmentByteIdentity|TestAllWorkersUnreachableDegrades|TestZombieFencing' -count=1 ./internal/remote
	$(GO) test -run 'TestRemoteCampaignWorkerLossByteIdentity' -count=1 ./cmd/scibench

# loadcheck drives the open-loop service workload's guarantees: arrival
# and simulation determinism, the service-draw order-independence the
# bit-identity contract rests on, the coordinated-omission golden test
# against its analytic M/D/1 value, and the sweep's worker-count
# byte-identity at both the library and CLI (merged.json) layers.
loadcheck:
	$(GO) test -run 'TestSchedule|TestRunDeterministic|TestServiceDrawIsPerRequest|TestCoordinatedOmission|TestOmissionRatio' \
		-count=1 ./internal/serve
	$(GO) test -run 'TestRunServeWorkerInvariance|TestRunServeKneeDetection|TestQuantileCIHist' \
		-count=1 ./internal/suite ./internal/ci
	$(GO) test -run 'TestServeMergedJSONWorkerInvariance' -count=1 ./cmd/scibench

# Every fuzz target in the repo with its package, one per line:
# "<package-dir> <FuzzTarget>". CI's fuzz matrix and the local fuzzcheck
# loop both consume this list, so a new target added here is fuzzed
# everywhere without touching the workflow.
FUZZ_TARGETS = \
	./internal/campaign FuzzReplay \
	./internal/campaign FuzzJournalV2 \
	./internal/campaign FuzzManifest \
	./internal/campaign FuzzReplayTruncation \
	./internal/shard FuzzLoadSweep \
	./internal/shard FuzzLoadManifest \
	./internal/remote FuzzChunkFrame \
	./internal/remote FuzzRegister \
	./internal/remote FuzzValidChunkPath \
	./internal/regress FuzzParseReport \
	./internal/regress FuzzParseBench \
	./internal/desim FuzzEventOrder \
	./internal/serve FuzzArrivalSchedule \
	./internal/stats FuzzHistogramMerge

FUZZTIME ?= 10s

# fuzzcheck runs every fuzz target for FUZZTIME each — the local
# equivalent of CI's matrix fuzz job (which runs 30s per target with a
# persistent corpus cache).
fuzzcheck:
	@set -e; \
	set -- $(FUZZ_TARGETS); \
	while [ $$# -gt 0 ]; do \
		pkg=$$1; tgt=$$2; shift 2; \
		echo "fuzz $$tgt ($$pkg)"; \
		$(GO) test -run '^$$' -fuzz "^$$tgt\$$" -fuzztime $(FUZZTIME) $$pkg; \
	done

# check is the CI gate: static analysis, the plain suite first (clean
# line numbers for pure-Go failures), then the race pass and the
# telemetry + durability + distributed-execution + load-generation
# drives.
check: vet test race telemetry-smoke durability journalcheck shardcheck remotecheck loadcheck

bench:
	$(GO) test -bench=. -benchmem ./...

# BENCH_PKGS is every package that actually defines a benchmark, so the
# smoke pass doesn't recompile and run empty test binaries for the rest.
BENCH_PKGS = $(shell grep -rl --include='*_test.go' 'func Benchmark' . | xargs -n1 dirname | sort -u)

# bench-smoke compiles and runs every benchmark once: catches
# benchmarks that no longer build or crash, without being a perf gate.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x $(BENCH_PKGS)

# The harness benchmarks the committed baseline tracks (suite engine,
# bootstrap, analysis fast path, collective scaling at P=1k/64k/1M).
HARNESS_BENCH = BenchmarkSuiteRun|BenchmarkBootstrapCI|BenchmarkAnalyze|BenchmarkSampleReset|BenchmarkSummarize$$|BenchmarkMedianCI|BenchmarkCollective|BenchmarkJournal|BenchmarkServe|BenchmarkHistogramRecord
BENCH_COUNT ?= 5

# bench-json records the harness benchmarks as a schema v2 sample set
# (BENCH_COUNT runs per benchmark, raw per-run samples + Rule 9 env +
# provenance) — the committed baseline cmd/benchgate gates against.
bench-json:
	$(GO) run ./cmd/benchjson -count $(BENCH_COUNT) -bench '$(HARNESS_BENCH)' \
		-o BENCH_harness.json .
	@echo wrote BENCH_harness.json

# benchgate collects a fresh candidate sample set and gates it against
# the committed baseline with median CIs and rank tests (Rules 5-8
# applied to our own perf trajectory). ARGS passes extra benchgate
# flags, e.g. make benchgate ARGS=-advisory.
benchgate:
	$(GO) run ./cmd/benchjson -count $(BENCH_COUNT) -bench '$(HARNESS_BENCH)' \
		-o BENCH_candidate.json .
	$(GO) run ./cmd/benchgate -baseline BENCH_harness.json \
		-candidate BENCH_candidate.json $(ARGS)

# scalecheck is the million-rank smoke: the 2^20-rank summary-mode
# Allreduce must complete as a single sweep with allocations independent
# of P, and the batch/worker-invariance goldens must hold. No race
# detector — at this scale it would multiply memory and run time without
# adding coverage beyond the dedicated race pass in `check`.
scalecheck:
	$(GO) test -run 'TestMillionRankSummarySmoke|TestSummaryAllocsFlat|TestCollectiveBatchWorkerInvariance' \
		-count=1 ./internal/cluster
	$(GO) test -run '^$$' -bench 'BenchmarkCollective.*/p=1048576' -benchtime 1x -benchmem .

# profile-cluster captures CPU + allocation profiles of the collective
# hot loop (million-rank Allreduce). Inspect with:
#   go tool pprof cluster.cpu.pprof
profile-cluster:
	$(GO) test -run '^$$' -bench 'BenchmarkCollectiveAllreduce/p=1048576' -benchtime 3x \
		-cpuprofile cluster.cpu.pprof -memprofile cluster.mem.pprof .
	@echo "wrote cluster.cpu.pprof and cluster.mem.pprof"

coverage:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# coverage-check fails when total coverage drops more than 2 points
# below the committed COVERAGE watermark (and prints a nudge to raise
# the watermark when coverage grew).
coverage-check: coverage
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	floor=$$(cat COVERAGE); \
	echo "coverage: $${total}% (watermark $${floor}%)"; \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { exit !(t >= f - 2.0) }' || \
		{ echo "FAIL: coverage $${total}% is more than 2 points below watermark $${floor}%"; exit 1; }; \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { exit !(t > f + 0.5) }' && \
		echo "note: coverage rose above the watermark; consider updating COVERAGE to $${total}" || true

figures:
	$(GO) run ./cmd/figures all -quick
