GO ?= go

.PHONY: all build test vet race check bench bench-json figures telemetry-smoke durability

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# telemetry-smoke drives the observability endpoint end to end: real
# harness activity, a live /metrics scrape, and assertions on the
# advertised metric names and trace span hierarchy.
telemetry-smoke:
	$(GO) test -run TestTelemetrySmoke -count=1 ./internal/telemetry

# durability runs the crash-simulation tests for the campaign journal's
# write-ahead manifest protocol (fsync ordering, failed-seal refusal).
durability:
	$(GO) test -run 'TestCreateManifest' -count=1 ./internal/campaign

# check is the CI gate: static analysis, the race-enabled suite, and the
# telemetry + durability smoke drives.
check: vet race telemetry-smoke durability

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json records the harness benchmarks (suite engine, bootstrap,
# analysis fast path) as machine-readable JSON next to the repo.
bench-json:
	$(GO) test -run '^$$' \
		-bench 'BenchmarkSuiteRun|BenchmarkBootstrapCI|BenchmarkAnalyze|BenchmarkSampleReset|BenchmarkSummarize$$|BenchmarkMedianCI' \
		-benchmem . | $(GO) run ./cmd/benchjson > BENCH_harness.json
	@echo wrote BENCH_harness.json

figures:
	$(GO) run ./cmd/figures all -quick
