GO ?= go

.PHONY: all build test vet race check bench bench-json figures

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: static analysis plus the race-enabled suite.
check: vet race

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json records the harness benchmarks (suite engine, bootstrap,
# analysis fast path) as machine-readable JSON next to the repo.
bench-json:
	$(GO) test -run '^$$' \
		-bench 'BenchmarkSuiteRun|BenchmarkBootstrapCI|BenchmarkAnalyze|BenchmarkSampleReset|BenchmarkSummarize$$|BenchmarkMedianCI' \
		-benchmem . | $(GO) run ./cmd/benchjson > BENCH_harness.json
	@echo wrote BENCH_harness.json

figures:
	$(GO) run ./cmd/figures all -quick
