GO ?= go

.PHONY: all build test vet race check bench figures

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: static analysis plus the race-enabled suite.
check: vet race

bench:
	$(GO) test -bench=. -benchmem ./...

figures:
	$(GO) run ./cmd/figures all -quick
