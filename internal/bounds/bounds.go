// Package bounds implements the paper's §5.1 "simple bounds modeling"
// (Rule 11): upper performance bounds that put measured results into
// perspective — ideal linear scaling, Amdahl serial-overhead bounds,
// parallel-overhead bounds (Fig 7a/b), and the k-dimensional machine
// model Γ with application requirement vectors τ and the normalized
// performance view P (the roofline model is the k = 2 special case).
package bounds

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Model is a scaling bounds model: for a given process count it returns
// the smallest achievable execution time (and therefore the largest
// achievable speedup) consistent with its assumptions.
type Model interface {
	// MinTime returns the lower bound on execution time with p processes.
	MinTime(p int) time.Duration
	// Name identifies the model in reports and legends.
	Name() string
}

// MaxSpeedup returns the model's speedup upper bound at p processes,
// relative to its single-process time.
func MaxSpeedup(m Model, p int) float64 {
	t1 := m.MinTime(1)
	tp := m.MinTime(p)
	if tp <= 0 {
		return math.Inf(1)
	}
	return float64(t1) / float64(tp)
}

// Ideal is the ideal linear-speedup bound: p processes cannot be more
// than p times faster than one (super-linear observations indicate
// suboptimal resource use in the base case, §5.1).
type Ideal struct {
	Base time.Duration // single-process execution time
}

// MinTime returns Base/p.
func (m Ideal) MinTime(p int) time.Duration {
	if p < 1 {
		p = 1
	}
	return time.Duration(float64(m.Base) / float64(p))
}

// Name returns the model name.
func (Ideal) Name() string { return "ideal linear" }

// Amdahl is the serial-overhead bound: with serial fraction B of the
// base-case time, speedup is limited to 1/(B + (1−B)/p).
type Amdahl struct {
	Base   time.Duration // single-process execution time
	Serial float64       // non-parallelizable fraction b in [0, 1]
}

// MinTime returns Base·(B + (1−B)/p).
func (m Amdahl) MinTime(p int) time.Duration {
	if p < 1 {
		p = 1
	}
	b := math.Min(math.Max(m.Serial, 0), 1)
	return time.Duration(float64(m.Base) * (b + (1-b)/float64(p)))
}

// Name returns the model name.
func (m Amdahl) Name() string { return fmt.Sprintf("Amdahl (b=%.3g)", m.Serial) }

// Gustafson is the weak-scaling counterpart of Amdahl: with the problem
// size grown in proportion to p (§4.2, "weak scaling"), the scaled
// speedup is bounded by p − B·(p − 1) for serial fraction B, and the
// ideal weak-scaling execution time is flat at Base.
type Gustafson struct {
	Base   time.Duration // per-process execution time at any p (ideal)
	Serial float64       // serial fraction b in [0, 1]
}

// MinTime returns the weak-scaling lower bound on execution time with p
// processes: the serial part is replicated, so ideal weak scaling keeps
// the time constant at Base (the bound is flat; overheads show up as
// measured time rising above it).
func (m Gustafson) MinTime(p int) time.Duration {
	if p < 1 {
		p = 1
	}
	return m.Base
}

// Name returns the model name.
func (m Gustafson) Name() string {
	return fmt.Sprintf("Gustafson weak scaling (b=%.3g)", m.Serial)
}

// ScaledSpeedup returns Gustafson's bound on weak-scaling speedup,
// p − B·(p−1).
func (m Gustafson) ScaledSpeedup(p int) float64 {
	if p < 1 {
		p = 1
	}
	b := math.Min(math.Max(m.Serial, 0), 1)
	return float64(p) - b*float64(p-1)
}

// ParallelOverhead refines Amdahl with a process-count-dependent overhead
// term f(p) — e.g. the Ω(log p) floor of a final reduction. The paper's
// Fig 7 uses an empirical piecewise model; Overhead supplies f.
type ParallelOverhead struct {
	Base     time.Duration // single-process execution time
	Serial   float64       // non-parallelizable fraction
	Overhead func(p int) time.Duration
	Label    string
}

// MinTime returns the Amdahl bound plus the parallel overhead f(p).
func (m ParallelOverhead) MinTime(p int) time.Duration {
	base := Amdahl{Base: m.Base, Serial: m.Serial}.MinTime(p)
	if m.Overhead == nil {
		return base
	}
	return base + m.Overhead(p)
}

// Name returns the model name.
func (m ParallelOverhead) Name() string {
	if m.Label != "" {
		return m.Label
	}
	return "parallel overheads"
}

// PiReductionOverhead is the paper's empirical piecewise overhead model
// for the final reduction of the Pi example on Piz Daint (Fig 7):
// f(p ≤ 8) = 10 ns, f(8 < p ≤ 16) = 0.1 ms·log₂ p,
// f(p > 16) = 0.17 ms·log₂ p. The three pieces reflect the machine's
// architecture (intra-socket, intra-group, and global communication).
func PiReductionOverhead(p int) time.Duration {
	switch {
	case p <= 1:
		return 0
	case p <= 8:
		return 10 * time.Nanosecond
	case p <= 16:
		return time.Duration(0.1e6 * math.Log2(float64(p)) * float64(time.Nanosecond))
	default:
		return time.Duration(0.17e6 * math.Log2(float64(p)) * float64(time.Nanosecond))
	}
}

// ScalingPoint pairs a measured scaling result with the bounds models'
// predictions at that process count.
type ScalingPoint struct {
	P        int
	Measured time.Duration
	Bounds   map[string]time.Duration
}

// Evaluate tabulates measured times against any number of bounds models,
// and reports violations (measurements faster than a bound, which
// indicate a broken model or a broken base case).
func Evaluate(ps []int, measured []time.Duration, models ...Model) ([]ScalingPoint, error) {
	if len(ps) != len(measured) {
		return nil, errors.New("bounds: ps and measured length mismatch")
	}
	out := make([]ScalingPoint, len(ps))
	for i, p := range ps {
		pt := ScalingPoint{P: p, Measured: measured[i], Bounds: map[string]time.Duration{}}
		for _, m := range models {
			pt.Bounds[m.Name()] = m.MinTime(p)
		}
		out[i] = pt
	}
	return out, nil
}

// Violations lists the (point, model) pairs where the measurement beats
// the bound by more than tol (relative), signalling an invalid model or
// base case. Models are visited in sorted-name order so the listing is
// deterministic (Bounds is a map).
func Violations(points []ScalingPoint, tol float64) []string {
	var v []string
	for _, pt := range points {
		names := make([]string, 0, len(pt.Bounds))
		for name := range pt.Bounds {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			b := pt.Bounds[name]
			if float64(pt.Measured) < float64(b)*(1-tol) {
				v = append(v, fmt.Sprintf("p=%d: measured %v beats %s bound %v",
					pt.P, pt.Measured, name, b))
			}
		}
	}
	return v
}
