package bounds_test

import (
	"fmt"
	"time"

	"repro/internal/bounds"
)

// ExampleAmdahl evaluates the paper's Fig 7 serial-overheads bound:
// 20 ms base case with serial fraction 0.01.
func ExampleAmdahl() {
	m := bounds.Amdahl{Base: 20 * time.Millisecond, Serial: 0.01}
	for _, p := range []int{1, 8, 32} {
		fmt.Printf("p=%-3d min time %v, max speedup %.2f\n",
			p, m.MinTime(p).Round(time.Microsecond), bounds.MaxSpeedup(m, p))
	}
	// Output:
	// p=1   min time 20ms, max speedup 1.00
	// p=8   min time 2.675ms, max speedup 7.48
	// p=32  min time 819µs, max speedup 24.43
}

// ExampleMachineModel shows the §5.1 normalized performance view P and
// bottleneck analysis.
func ExampleMachineModel() {
	m, _ := bounds.NewMachineModel(
		[]string{"flop/s", "mem B/s"},
		[]float64{1e12, 1e11},
	)
	app := bounds.Requirements{Rates: []float64{2e11, 9.5e10}}
	feature, util, _ := m.Bottleneck(app)
	fmt.Printf("bottleneck: %s at %.0f%% of peak\n", feature, 100*util)
	ok, _ := m.OptimalityProof(app, "mem B/s", 0.9)
	fmt.Printf("optimality argument available: %v\n", ok)
	// Output:
	// bottleneck: mem B/s at 95% of peak
	// optimality argument available: true
}

// ExampleRoofline shows the k = 2 machine model.
func ExampleRoofline() {
	r := bounds.Roofline{PeakFlops: 1e12, PeakBW: 1e11}
	fmt.Printf("ridge at %.0f flop/B\n", r.RidgeIntensity())
	fmt.Printf("attainable at I=2: %.2g flop/s (memory-bound)\n", r.AttainableFlops(2))
	fmt.Printf("attainable at I=50: %.2g flop/s (compute-bound)\n", r.AttainableFlops(50))
	// Output:
	// ridge at 10 flop/B
	// attainable at I=2: 2e+11 flop/s (memory-bound)
	// attainable at I=50: 1e+12 flop/s (compute-bound)
}
