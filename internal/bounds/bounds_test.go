package bounds

import (
	"math"
	"testing"
	"time"
)

func TestIdealBound(t *testing.T) {
	m := Ideal{Base: 20 * time.Millisecond}
	if m.MinTime(1) != 20*time.Millisecond {
		t.Errorf("p=1: %v", m.MinTime(1))
	}
	if m.MinTime(4) != 5*time.Millisecond {
		t.Errorf("p=4: %v", m.MinTime(4))
	}
	if m.MinTime(0) != 20*time.Millisecond {
		t.Error("p<1 clamps to 1")
	}
	if s := MaxSpeedup(m, 8); math.Abs(s-8) > 1e-9 {
		t.Errorf("ideal speedup at 8 = %g", s)
	}
	if m.Name() == "" {
		t.Error("empty name")
	}
}

func TestAmdahlBound(t *testing.T) {
	// The paper's Fig 7 parameters: 20 ms base, b = 0.01.
	m := Amdahl{Base: 20 * time.Millisecond, Serial: 0.01}
	if m.MinTime(1) != 20*time.Millisecond {
		t.Errorf("p=1: %v", m.MinTime(1))
	}
	// Infinite processors floor: 1% of 20 ms = 200 µs.
	if got := m.MinTime(1 << 20); got < 200*time.Microsecond-time.Microsecond {
		t.Errorf("asymptote = %v, want >= ~200µs", got)
	}
	// Speedup cap: 1/b = 100.
	s := MaxSpeedup(m, 1<<20)
	if s > 100.0001 {
		t.Errorf("Amdahl speedup %g exceeds 1/b", s)
	}
	// At p=32 (Fig 7b): speedup = 1/(0.01 + 0.99/32) ≈ 24.4.
	s32 := MaxSpeedup(m, 32)
	if math.Abs(s32-1/(0.01+0.99/32)) > 1e-9 {
		t.Errorf("speedup(32) = %g", s32)
	}
	// Serial fraction is clamped to [0, 1].
	if (Amdahl{Base: time.Second, Serial: 2}).MinTime(4) != time.Second {
		t.Error("Serial > 1 should clamp")
	}
}

func TestAmdahlDominatesIdeal(t *testing.T) {
	id := Ideal{Base: time.Second}
	am := Amdahl{Base: time.Second, Serial: 0.05}
	for p := 1; p <= 1024; p *= 2 {
		if am.MinTime(p) < id.MinTime(p) {
			t.Errorf("p=%d: Amdahl bound %v below ideal %v", p, am.MinTime(p), id.MinTime(p))
		}
	}
}

func TestParallelOverheadBound(t *testing.T) {
	m := ParallelOverhead{
		Base:     20 * time.Millisecond,
		Serial:   0.01,
		Overhead: PiReductionOverhead,
		Label:    "parallel overheads",
	}
	am := Amdahl{Base: 20 * time.Millisecond, Serial: 0.01}
	for p := 1; p <= 64; p *= 2 {
		if m.MinTime(p) < am.MinTime(p) {
			t.Errorf("p=%d: overhead bound below Amdahl", p)
		}
	}
	// The overhead makes speedup roll over at scale — by p = 4096 the
	// 0.17ms·log2(p) term exceeds the shrinking compute term's savings.
	s64 := MaxSpeedup(m, 64)
	s4096 := MaxSpeedup(m, 4096)
	if s4096 > s64 {
		t.Errorf("speedup should roll over: s(64)=%g s(4096)=%g", s64, s4096)
	}
	if m.Name() != "parallel overheads" {
		t.Error("label not used")
	}
	if (ParallelOverhead{Base: time.Second}).Name() == "" {
		t.Error("default name empty")
	}
	// Nil overhead behaves like Amdahl.
	nilOv := ParallelOverhead{Base: time.Second, Serial: 0.1}
	if nilOv.MinTime(8) != (Amdahl{Base: time.Second, Serial: 0.1}).MinTime(8) {
		t.Error("nil Overhead should reduce to Amdahl")
	}
}

func TestPiReductionOverheadPieces(t *testing.T) {
	if PiReductionOverhead(1) != 0 {
		t.Error("p=1 has no reduction")
	}
	if PiReductionOverhead(8) != 10*time.Nanosecond {
		t.Errorf("p=8: %v", PiReductionOverhead(8))
	}
	// p=16: 0.1 ms · log2(16) = 0.4 ms.
	if got := PiReductionOverhead(16); math.Abs(float64(got)-0.4e6) > 1e3 {
		t.Errorf("p=16: %v, want 0.4ms", got)
	}
	// p=32: 0.17 ms · 5 = 0.85 ms.
	if got := PiReductionOverhead(32); math.Abs(float64(got)-0.85e6) > 1e3 {
		t.Errorf("p=32: %v, want 0.85ms", got)
	}
	// Monotone in the pieces' seams.
	if PiReductionOverhead(17) < PiReductionOverhead(16) {
		t.Error("seam at 16 not monotone")
	}
}

func TestEvaluateAndViolations(t *testing.T) {
	id := Ideal{Base: time.Second}
	ps := []int{1, 2, 4}
	meas := []time.Duration{time.Second, 600 * time.Millisecond, 200 * time.Millisecond}
	pts, err := Evaluate(ps, meas, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[1].Bounds["ideal linear"] != 500*time.Millisecond {
		t.Errorf("points = %+v", pts)
	}
	// p=4 measured 200 ms beats the 250 ms ideal bound: a violation.
	v := Violations(pts, 0.01)
	if len(v) != 1 {
		t.Errorf("violations = %v, want exactly the p=4 entry", v)
	}
	if _, err := Evaluate([]int{1}, nil, id); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestMachineModel(t *testing.T) {
	m, err := NewMachineModel(
		[]string{"flop/s", "membw"},
		[]float64{1e12, 1e11},
	)
	if err != nil {
		t.Fatal(err)
	}
	req := Requirements{Rates: []float64{2e11, 9e10}}
	norm, err := m.Normalized(req)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(norm[0]-0.2) > 1e-12 || math.Abs(norm[1]-0.9) > 1e-12 {
		t.Errorf("normalized = %v", norm)
	}
	f, u, err := m.Bottleneck(req)
	if err != nil || f != "membw" || math.Abs(u-0.9) > 1e-12 {
		t.Errorf("bottleneck = %s %g %v", f, u, err)
	}
	bal, err := m.Balancedness(req)
	if err != nil || math.Abs(bal-0.2/0.9) > 1e-12 {
		t.Errorf("balancedness = %g %v", bal, err)
	}
	ok, err := m.OptimalityProof(req, "membw", 0.85)
	if err != nil || !ok {
		t.Errorf("optimality at 0.85: %v %v", ok, err)
	}
	ok, _ = m.OptimalityProof(req, "membw", 0.95)
	if ok {
		t.Error("0.9 < 0.95 should not prove optimality")
	}
	if _, err := m.OptimalityProof(req, "nonesuch", 0.5); err == nil {
		t.Error("unknown feature should error")
	}
	if m.String() == "" {
		t.Error("empty String")
	}
	names, vals, err := m.SortedUtilizations(req)
	if err != nil || names[0] != "membw" || vals[0] < vals[1] {
		t.Errorf("sorted = %v %v %v", names, vals, err)
	}
}

func TestMachineModelValidation(t *testing.T) {
	if _, err := NewMachineModel(nil, nil); err == nil {
		t.Error("empty model should error")
	}
	if _, err := NewMachineModel([]string{"a"}, []float64{-1}); err == nil {
		t.Error("negative peak should error")
	}
	m, _ := NewMachineModel([]string{"a"}, []float64{1})
	if _, err := m.Normalized(Requirements{Rates: []float64{1, 2}}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := m.Balancedness(Requirements{Rates: []float64{0}}); err == nil {
		t.Error("zero utilization should error")
	}
}

func TestCalibratePeaks(t *testing.T) {
	m, _ := NewMachineModel([]string{"flop/s", "membw"}, []float64{1e12, 1e11})
	cal := m.CalibratePeaks(map[string]float64{"membw": 8e10, "flop/s": 2e12})
	if cal.Peaks[1] != 8e10 {
		t.Errorf("membw should calibrate down to 8e10, got %g", cal.Peaks[1])
	}
	if cal.Peaks[0] != 1e12 {
		t.Error("measured above analytic peak must not raise the bound")
	}
	// Original untouched.
	if m.Peaks[1] != 1e11 {
		t.Error("CalibratePeaks must not mutate the receiver")
	}
}

func TestRoofline(t *testing.T) {
	r := Roofline{PeakFlops: 1e12, PeakBW: 1e11}
	if got := r.RidgeIntensity(); math.Abs(got-10) > 1e-12 {
		t.Errorf("ridge = %g", got)
	}
	// Memory-bound region.
	if got := r.AttainableFlops(1); math.Abs(got-1e11) > 1 {
		t.Errorf("I=1: %g", got)
	}
	// Compute-bound region.
	if got := r.AttainableFlops(100); math.Abs(got-1e12) > 1 {
		t.Errorf("I=100: %g", got)
	}
	if r.AttainableFlops(0) != 0 {
		t.Error("zero intensity attains nothing")
	}
	xs, ys := r.Curve(0.1, 1000, 64)
	if len(xs) != 64 || len(ys) != 64 {
		t.Fatalf("curve size %d/%d", len(xs), len(ys))
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			t.Fatal("roofline must be nondecreasing in intensity")
		}
	}
	if xs2, _ := r.Curve(1, 1, 4); xs2 != nil {
		t.Error("degenerate range should return nil")
	}
}

func TestGustafsonBound(t *testing.T) {
	g := Gustafson{Base: 10 * time.Millisecond, Serial: 0.05}
	// Ideal weak scaling keeps the time flat.
	if g.MinTime(1) != g.MinTime(64) || g.MinTime(1) != 10*time.Millisecond {
		t.Errorf("weak-scaling bound should be flat at Base")
	}
	// Scaled speedup: p − b(p−1).
	if s := g.ScaledSpeedup(64); math.Abs(s-(64-0.05*63)) > 1e-12 {
		t.Errorf("scaled speedup = %g", s)
	}
	if s := g.ScaledSpeedup(1); s != 1 {
		t.Errorf("scaled speedup at p=1 = %g", s)
	}
	if g.ScaledSpeedup(0) != 1 {
		t.Error("p<1 clamps")
	}
	if g.Name() == "" {
		t.Error("name")
	}
	// Serial fraction clamps.
	if (Gustafson{Base: time.Second, Serial: 2}).ScaledSpeedup(10) != 1 {
		t.Error("b>1 should clamp to 1 → speedup 1")
	}
}
