package bounds

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// MachineModel is the k-dimensional capability vector Γ = (p₁, …, p_k) of
// §5.1: each feature is a rate (flop/s, B/s, msg/s, …) and pᵢ is the
// maximum achievable performance of feature i on the machine. Feature
// peaks may come from vendor specifications or from carefully crafted
// microbenchmarks when the analytic peak is unreachable.
type MachineModel struct {
	Features []string  // feature names, e.g. "flop/s", "membw B/s"
	Peaks    []float64 // achievable peak rate per feature
}

// NewMachineModel validates and builds a machine model.
func NewMachineModel(features []string, peaks []float64) (*MachineModel, error) {
	if len(features) == 0 || len(features) != len(peaks) {
		return nil, errors.New("bounds: features and peaks must be non-empty and equal length")
	}
	for i, p := range peaks {
		if p <= 0 || math.IsNaN(p) {
			return nil, fmt.Errorf("bounds: peak %q = %g must be positive", features[i], p)
		}
	}
	return &MachineModel{Features: features, Peaks: peaks}, nil
}

// Requirements is an application's measured rate vector
// τ = (r₁, …, r_k), with rᵢ ≤ pᵢ.
type Requirements struct {
	Rates []float64
}

// Normalized returns the dimensionless performance vector
// P = (r₁/p₁, …, r_k/p_k) (fraction of each feature's peak).
func (m *MachineModel) Normalized(req Requirements) ([]float64, error) {
	if len(req.Rates) != len(m.Peaks) {
		return nil, errors.New("bounds: requirement vector length mismatch")
	}
	out := make([]float64, len(m.Peaks))
	for i, r := range req.Rates {
		out[i] = r / m.Peaks[i]
	}
	return out, nil
}

// Bottleneck returns the feature with the highest normalized utilization
// — the likely limiter — together with its utilization.
func (m *MachineModel) Bottleneck(req Requirements) (string, float64, error) {
	norm, err := m.Normalized(req)
	if err != nil {
		return "", 0, err
	}
	best := 0
	for i, u := range norm {
		if u > norm[best] {
			best = i
		}
	}
	return m.Features[best], norm[best], nil
}

// OptimalityProof reports whether the measurement constitutes an §5.1
// optimality argument for feature i: utilization rᵢ/pᵢ ≥ threshold
// (close to one). The caller must separately argue the application
// cannot be solved with fewer operations of that feature.
func (m *MachineModel) OptimalityProof(req Requirements, feature string, threshold float64) (bool, error) {
	norm, err := m.Normalized(req)
	if err != nil {
		return false, err
	}
	for i, f := range m.Features {
		if f == feature {
			return norm[i] >= threshold, nil
		}
	}
	return false, fmt.Errorf("bounds: unknown feature %q", feature)
}

// Balancedness measures how evenly an application exercises the machine:
// the ratio of the lowest to the highest normalized feature utilization
// (1 = perfectly balanced, →0 = one feature dominates).
func (m *MachineModel) Balancedness(req Requirements) (float64, error) {
	norm, err := m.Normalized(req)
	if err != nil {
		return 0, err
	}
	lo, hi := norm[0], norm[0]
	for _, u := range norm[1:] {
		lo = math.Min(lo, u)
		hi = math.Max(hi, u)
	}
	if hi == 0 {
		return 0, errors.New("bounds: application exercises no feature")
	}
	return lo / hi, nil
}

// String renders the machine model.
func (m *MachineModel) String() string {
	var b strings.Builder
	b.WriteString("Γ = (")
	for i, f := range m.Features {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %.3g", f, m.Peaks[i])
	}
	b.WriteString(")")
	return b.String()
}

// Roofline is the k = 2 machine model popularized by Williams et al.:
// peak flop rate and peak memory bandwidth.
type Roofline struct {
	PeakFlops float64 // flop/s
	PeakBW    float64 // B/s
}

// AttainableFlops returns the roofline bound
// min(PeakFlops, intensity·PeakBW) for an arithmetic intensity in flop/B.
func (r Roofline) AttainableFlops(intensity float64) float64 {
	if intensity <= 0 {
		return 0
	}
	return math.Min(r.PeakFlops, intensity*r.PeakBW)
}

// RidgeIntensity returns the intensity where the roofline flattens
// (PeakFlops / PeakBW).
func (r Roofline) RidgeIntensity() float64 { return r.PeakFlops / r.PeakBW }

// Curve samples the roofline at logarithmically spaced intensities
// spanning [lo, hi], for plotting.
func (r Roofline) Curve(lo, hi float64, n int) ([]float64, []float64) {
	if n < 2 || lo <= 0 || hi <= lo {
		return nil, nil
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	x := lo
	for i := 0; i < n; i++ {
		xs[i] = x
		ys[i] = r.AttainableFlops(x)
		x *= ratio
	}
	return xs, ys
}

// CalibratePeaks replaces analytic peaks with measured microbenchmark
// maxima where those are lower, following §5.1's advice to parametrize
// pᵢ with statistically sound microbenchmarks when vendor numbers are
// unreachable guarantees. measured maps feature name → observed maximum.
func (m *MachineModel) CalibratePeaks(measured map[string]float64) *MachineModel {
	out := &MachineModel{
		Features: append([]string(nil), m.Features...),
		Peaks:    append([]float64(nil), m.Peaks...),
	}
	for i, f := range out.Features {
		if v, ok := measured[f]; ok && v > 0 && v < out.Peaks[i] {
			out.Peaks[i] = v
		}
	}
	return out
}

// SortedUtilizations returns feature names sorted by decreasing
// normalized utilization (most constrained first), for reporting.
func (m *MachineModel) SortedUtilizations(req Requirements) ([]string, []float64, error) {
	norm, err := m.Normalized(req)
	if err != nil {
		return nil, nil, err
	}
	idx := make([]int, len(norm))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return norm[idx[a]] > norm[idx[b]] })
	names := make([]string, len(idx))
	vals := make([]float64, len(idx))
	for i, j := range idx {
		names[i] = m.Features[j]
		vals[i] = norm[j]
	}
	return names, vals, nil
}
