// Package bench is the measurement controller codifying the paper's
// experimental-design rules: warmup discard (§4.1.2), fixed or adaptive
// sample counts driven by confidence-interval width (§4.2.2, Rule 5),
// single-event measurement for exact rank statistics (§4.2.1), explicit
// outlier policy with mandatory reporting (§3.1.3), normality diagnosis
// (Rule 6), ANOVA-gated summarization across processes (Rule 10), and —
// because real systems misbehave — a resilient collection mode that
// survives sample failures, accounts every loss, and detects mid-stream
// regime shifts (see Resilience).
package bench

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ci"
	"repro/internal/htest"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/timer"
)

// Telemetry: the measurement loop's own behaviour, observable without
// perturbing it (see internal/telemetry's invariant — these writes never
// reach a report or an RNG stream). Metrics resolve once; each event is
// a single atomic add.
var (
	telSamples     = telemetry.Default().Counter("bench.samples")
	telWarmups     = telemetry.Default().Counter("bench.warmups")
	telRetries     = telemetry.Default().Counter("bench.retries")
	telLosses      = telemetry.Default().Counter("bench.losses")
	telPanics      = telemetry.Default().Counter("bench.panics")
	telWatchdog    = telemetry.Default().Counter("bench.watchdog_trips")
	telAnalysisUs  = telemetry.Default().Histogram("bench.analysis_us")
	telIntervalsUs = telemetry.Default().Histogram("bench.analysis.intervals_us")
	telShiftUs     = telemetry.Default().Histogram("bench.analysis.changepoint_us")
	telNormalityUs = telemetry.Default().Histogram("bench.analysis.normality_us")
)

// OutlierPolicy selects how outliers are treated. The paper recommends
// robust measures over removal; when removal is unavoidable the count
// must be reported (it is, in Result.OutliersRemoved).
type OutlierPolicy struct {
	// Remove enables Tukey-fence removal before summary computation.
	Remove bool
	// TukeyK is the fence constant (default 1.5; 3.0 is conservative).
	TukeyK float64
}

// Plan configures one measurement campaign.
//
// Zero values select documented defaults; nonsensical values (negative
// counts, out-of-range probabilities) are rejected with an error
// wrapping ErrBadPlan rather than silently clamped.
type Plan struct {
	// Warmup iterations are measured but excluded from analysis
	// (working-set establishment, §4.1.2). Zero means no warmup;
	// negative values are rejected.
	Warmup int
	// MinSamples is collected unconditionally. Zero selects the default
	// of 10; values 1–5 are raised to 6, the nonparametric-CI minimum
	// (§4.2.2 requires n > 5); negative values are rejected.
	MinSamples int
	// MaxSamples bounds the adaptive phase. Zero selects the default of
	// 1000 (and is raised to MinSamples when that is larger); negative
	// values are rejected.
	MaxSamples int
	// Confidence is the CI level used for the stopping rule and the
	// reported intervals. Zero selects the default 0.95; anything else
	// outside (0, 1) is rejected.
	Confidence float64
	// RelErr, when positive, enables adaptive stopping: measure until the
	// median CI's relative half-width is at most RelErr. Zero disables
	// the adaptive phase; negative values or values >= 1 (a "relative
	// error" of 100% or more never converges meaningfully) are rejected.
	RelErr float64
	// BatchSize is the adaptive recheck cadence. Zero selects the
	// default of 10; negative values are rejected.
	BatchSize int
	// Outliers is the outlier policy (default: keep everything).
	Outliers OutlierPolicy
	// EventsPerSample aggregates k consecutive events into one recorded
	// observation (their mean). §4.2.1 allows this when timer overhead
	// or resolution is insufficient for single events, at the cost of
	// losing per-event confidence intervals and exact rank statistics —
	// Result.ResolutionLost flags that loss. Zero selects the
	// recommended 1; negative values are rejected.
	EventsPerSample int
	// Timer, when non-nil, validates every recorded observation against
	// the calibration's §4.2.1 quality thresholds; violations are
	// counted in Result.TimerWarnings. Observations are in seconds.
	Timer *timer.Calibration
	// Workers bounds the analysis-phase parallelism: the independent
	// statistical tasks (summary + intervals, change-point scan,
	// normality diagnostics) run on up to Workers goroutines. Zero
	// selects GOMAXPROCS; 1 forces the serial path; negative values are
	// rejected. The analysis is deterministic for every worker count —
	// the tasks share the one sorted Sample view and merge into disjoint
	// Result fields.
	Workers int
	// Resilience, when non-nil, arms the fault-tolerant collection loop:
	// per-sample watchdog, fault-suspect value ceiling, bounded retry
	// with backoff, panic recovery, and graceful degradation into a
	// partial Result with explicit loss accounting (Rule 4 in spirit:
	// report all data, including the failures).
	Resilience *Resilience
	// Record, when non-nil, observes every collection event as it
	// happens — the hook a durable write-ahead journal attaches to
	// (internal/campaign). A Record error aborts the campaign wrapped in
	// ErrRecorder. Excluded from serialized plan descriptions.
	Record Recorder `json:"-"`
	// Resume, when non-nil, preloads the collection state replayed from
	// a journal so an interrupted campaign continues exactly where it
	// stopped. The caller is responsible for fast-forwarding a
	// deterministic measure source by Resume.Calls() invocations first
	// (internal/campaign does both). Excluded from serialized plans.
	Resume *ResumeState `json:"-"`
}

// ErrBadPlan reports a Plan field with a nonsensical value.
var ErrBadPlan = errors.New("bench: invalid plan")

func (p Plan) withDefaults() (Plan, error) {
	switch {
	case p.Warmup < 0:
		return p, fmt.Errorf("%w: negative Warmup %d", ErrBadPlan, p.Warmup)
	case p.MinSamples < 0:
		return p, fmt.Errorf("%w: negative MinSamples %d", ErrBadPlan, p.MinSamples)
	case p.MaxSamples < 0:
		return p, fmt.Errorf("%w: negative MaxSamples %d", ErrBadPlan, p.MaxSamples)
	case p.BatchSize < 0:
		return p, fmt.Errorf("%w: negative BatchSize %d", ErrBadPlan, p.BatchSize)
	case p.Confidence != 0 && (p.Confidence <= 0 || p.Confidence >= 1):
		return p, fmt.Errorf("%w: Confidence %g outside (0, 1)", ErrBadPlan, p.Confidence)
	case p.RelErr < 0 || p.RelErr >= 1:
		return p, fmt.Errorf("%w: RelErr %g outside [0, 1)", ErrBadPlan, p.RelErr)
	case p.EventsPerSample < 0:
		return p, fmt.Errorf("%w: negative EventsPerSample %d", ErrBadPlan, p.EventsPerSample)
	case p.Workers < 0:
		return p, fmt.Errorf("%w: negative Workers %d", ErrBadPlan, p.Workers)
	}
	if p.MinSamples == 0 {
		p.MinSamples = 10
	} else if p.MinSamples < 6 {
		p.MinSamples = 6 // nonparametric CIs need n > 5
	}
	if p.MaxSamples == 0 {
		p.MaxSamples = 1000
	}
	if p.MaxSamples < p.MinSamples {
		p.MaxSamples = p.MinSamples
	}
	if p.Confidence == 0 {
		p.Confidence = 0.95
	}
	if p.BatchSize == 0 {
		p.BatchSize = 10
	}
	if p.Outliers.Remove && p.Outliers.TukeyK <= 0 {
		p.Outliers.TukeyK = 1.5
	}
	if p.EventsPerSample == 0 {
		p.EventsPerSample = 1
	}
	if p.Resilience != nil {
		r, err := p.Resilience.withDefaults()
		if err != nil {
			return p, err
		}
		p.Resilience = &r
	}
	return p, nil
}

// StopReason explains why sample collection ended.
type StopReason string

const (
	// StopFixed: no adaptive target was set; MinSamples were collected.
	StopFixed StopReason = "fixed sample count"
	// StopConverged: the CI reached the requested relative width.
	StopConverged StopReason = "confidence interval converged"
	// StopMaxSamples: the budget ran out before convergence.
	StopMaxSamples StopReason = "sample budget exhausted before convergence"
	// StopDegraded: the resilient loop abandoned collection because too
	// many sample attempts failed (see Resilience.MaxLossFraction); the
	// Result is partial and carries the loss accounting.
	StopDegraded StopReason = "campaign degraded by sample loss"
	// StopInterrupted: the campaign's context was cancelled (Ctrl-C, a
	// wall-clock budget, a shutdown) and collection checkpointed cleanly
	// instead of losing work. The Result is partial; a journaled
	// campaign (internal/campaign) can resume exactly where it stopped.
	StopInterrupted StopReason = "campaign interrupted"
)

// shiftAlpha is the significance level at which the Pettitt change-point
// detector flags a mid-campaign regime shift. 1% keeps the false-alarm
// rate low on heavy-tailed (but stationary) latency streams.
const shiftAlpha = 0.01

// minShiftSamples is the smallest retained sample the change-point
// detector runs on.
const minShiftSamples = 12

// Result is a fully analyzed measurement campaign. All fields refer to
// the post-warmup, post-outlier-policy sample except Raw, which keeps
// every retained observation for downstream analysis or export.
type Result struct {
	Raw             []float64
	WarmupDiscarded int
	OutliersRemoved int
	Stop            StopReason
	Summary         stats.Summary
	MeanCI          ci.Interval
	MedianCI        ci.Interval
	ShapiroW        float64
	ShapiroP        float64
	PlausiblyNormal bool
	Deterministic   bool // all retained observations identical
	// ResolutionLost is true when EventsPerSample > 1: CIs and rank
	// statistics then describe block means, not single events (§4.2.1).
	ResolutionLost bool
	// TimerWarnings counts observations below the timer calibration's
	// minimum reliable interval (0 when no calibration was supplied).
	TimerWarnings int

	// Resilient-collection accounting (all zero for clean campaigns).
	// Attempts counts observation attempts including retries; Retries
	// counts attempts beyond the first per observation slot;
	// SamplesLost counts slots abandoned after the retry budget;
	// Panics counts recovered measure panics.
	Attempts    int
	Retries     int
	SamplesLost int
	Panics      int

	// ShiftDetected reports a mid-campaign regime shift: Pettitt's
	// nonparametric change-point test over the ordered retained sample
	// is significant at the 1% level. ShiftIndex is the last index of
	// the first regime; ShiftP the approximate p-value (NaN when the
	// detector could not run).
	ShiftDetected bool
	ShiftIndex    int
	ShiftP        float64

	// FaultSuspected is true when anything above indicates the campaign
	// was contaminated: lost or retried samples, recovered panics, or a
	// detected regime shift. A FaultSuspected result must not be
	// reported as a clean measurement (Rule 4: report all data,
	// including the failures).
	FaultSuspected bool
}

// Errors returned by the campaign runners.
var (
	// ErrNoMeasure is returned when Run is invoked without a measure func.
	ErrNoMeasure = errors.New("bench: nil measure function")
	// ErrTooFewSamples is returned (wrapped, with context) when a sample
	// is too small to analyze; callers can branch on it with errors.Is.
	ErrTooFewSamples = errors.New("bench: too few samples")
)

// Run executes a measurement campaign: warmup, collection (fixed or
// adaptive), outlier policy, and statistical analysis. With
// Plan.Resilience set, sample failures (panics, watchdog timeouts,
// ceiling-violating observations) are retried and accounted instead of
// aborting; without it, a measure panic still surfaces as an ordinary
// error rather than crashing the campaign.
func Run(plan Plan, measure func() float64) (Result, error) {
	return RunCtx(context.Background(), plan, measure)
}

// RunCtx is Run under a context: cancellation (Ctrl-C, a wall-clock
// budget) is checked between observation slots and checkpoints the
// campaign cleanly with StopInterrupted instead of losing the collected
// samples. A partial result with at least two observations is analyzed
// and returned with a nil error.
func RunCtx(ctx context.Context, plan Plan, measure func() float64) (Result, error) {
	if measure == nil {
		return Result{}, ErrNoMeasure
	}
	return run(ctx, plan, func() (float64, error) { return measure(), nil })
}

// RunErr is Run for error-aware measure functions: a returned error
// fails that sample attempt, which Plan.Resilience retries and, past its
// budget, records in Result.SamplesLost. Without resilience the first
// error aborts the campaign.
func RunErr(plan Plan, measure func() (float64, error)) (Result, error) {
	return RunErrCtx(context.Background(), plan, measure)
}

// RunErrCtx is RunErr under a context; see RunCtx for the cancellation
// contract.
func RunErrCtx(ctx context.Context, plan Plan, measure func() (float64, error)) (Result, error) {
	if measure == nil {
		return Result{}, ErrNoMeasure
	}
	return run(ctx, plan, measure)
}

func run(ctx context.Context, plan Plan, measure func() (float64, error)) (Result, error) {
	p, err := plan.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, collectSpan := telemetry.StartSpan(ctx, "collection",
		fmt.Sprintf("min=%d max=%d", p.MinSamples, p.MaxSamples))
	defer collectSpan.End()
	rs := p.Resilience
	var res Result
	res.ResolutionLost = p.EventsPerSample > 1

	minReliable := 0.0
	if p.Timer != nil {
		minReliable = p.Timer.MinReliableInterval().Seconds()
	}

	// calls counts measure invocations so journaled events carry the
	// fast-forward position for deterministic resume; counting wraps the
	// measure function itself so every path (warmup, retries, timer-
	// abandoned attempts) is included. Atomic because a watchdog-abandoned
	// goroutine (Resilience.SampleTimeout) may still be running its
	// measure call when the next attempt starts.
	var calls atomic.Int64
	calls.Store(int64(p.Resume.Calls()))
	counted := func() (float64, error) {
		calls.Add(1)
		return measure()
	}
	emit := func(kind EventKind, v float64) error {
		if p.Record == nil {
			return nil
		}
		if err := p.Record.Record(Event{Kind: kind, Value: v, Calls: int(calls.Load())}); err != nil {
			return fmt.Errorf("%w: %v", ErrRecorder, err)
		}
		return nil
	}

	// observation measures one recorded value: the mean of k consecutive
	// guarded events (k = 1 keeps single-event resolution, the paper's
	// recommendation). The first failing event fails the observation.
	observation := func() (float64, error) {
		sum := 0.0
		for i := 0; i < p.EventsPerSample; i++ {
			v, err := rs.guard(counted)
			if err != nil {
				return 0, err
			}
			sum += v
		}
		v := sum / float64(p.EventsPerSample)
		if minReliable > 0 && v < minReliable {
			res.TimerWarnings++
		}
		return v, nil
	}

	// observe adds retry-with-backoff and the fault-suspect value
	// ceiling on top of observation, journaling every event. Without
	// resilience it is a single attempt whose error aborts the campaign
	// (lost = false, err != nil).
	observe := func() (float64, bool, error) {
		if rs == nil {
			res.Attempts++
			v, err := observation()
			if err != nil {
				return 0, false, err
			}
			telSamples.Inc()
			return v, true, emit(EventSample, v)
		}
		for attempt := 0; attempt <= rs.MaxRetries; attempt++ {
			if attempt > 0 {
				res.Retries++
				telRetries.Inc()
				if err := emit(EventRetry, 0); err != nil {
					return 0, false, err
				}
				rs.backoff(attempt)
			}
			res.Attempts++
			v, err := observation()
			if err != nil {
				if errors.Is(err, ErrMeasurePanic) {
					res.Panics++
					telPanics.Inc()
					if jerr := emit(EventPanic, 0); jerr != nil {
						return 0, false, jerr
					}
				}
				continue
			}
			if rs.ValueCeiling > 0 && v >= rs.ValueCeiling {
				continue // fault-suspect observation: discard and retry
			}
			telSamples.Inc()
			return v, true, emit(EventSample, v)
		}
		res.SamplesLost++
		telLosses.Inc()
		return 0, false, emit(EventLoss, 0)
	}

	// degraded reports whether the loss budget is exhausted: after a
	// minimal probe, more than MaxLossFraction of attempts failed.
	degraded := func(collected int) bool {
		if rs == nil {
			return false
		}
		tried := collected + res.SamplesLost
		return tried >= 10 && float64(res.SamplesLost) > rs.MaxLossFraction*float64(tried)
	}

	// Preload journaled state when resuming: the retained sample, loss
	// accounting, warmup position, and the adaptive loop's batch
	// alignment all continue exactly where the interrupted run stopped.
	var xs []float64
	warmupDone := 0
	aslots := 0
	if p.Resume != nil {
		st := fold(p.Resume.Events, p.MinSamples)
		xs = st.samples
		warmupDone = st.warmup
		aslots = st.aslots
		res.WarmupDiscarded = st.warmup
		res.Retries = st.retries
		res.SamplesLost = st.losses
		res.Panics = st.panics
		res.Attempts = len(st.samples) + st.losses + st.retries
	}

	res.Stop = StopFixed
	for i := warmupDone; i < p.Warmup; i++ {
		if ctx.Err() != nil {
			res.Stop = StopInterrupted
			break
		}
		if _, err := rs.guard(counted); err != nil && rs == nil {
			return res, fmt.Errorf("bench: warmup failed: %w", err)
		}
		res.WarmupDiscarded++
		telWarmups.Inc()
		if err := emit(EventWarmup, 0); err != nil {
			return res, err
		}
	}

	if xs == nil {
		xs = make([]float64, 0, p.MinSamples)
	}
	for res.Stop != StopInterrupted && len(xs) < p.MinSamples {
		if ctx.Err() != nil {
			res.Stop = StopInterrupted
			break
		}
		v, ok, err := observe()
		if err != nil {
			return res, fmt.Errorf("bench: sample %d failed: %w", len(xs), err)
		}
		if ok {
			xs = append(xs, v)
		} else if degraded(len(xs)) {
			res.Stop = StopDegraded
			break
		}
	}

	if p.RelErr > 0 && res.Stop != StopDegraded && res.Stop != StopInterrupted {
		rule := ci.StoppingRule{
			Confidence: p.Confidence,
			RelErr:     p.RelErr,
			BatchSize:  p.BatchSize,
		}
		res.Stop = StopMaxSamples
		// Convergence is rechecked at slot counts aligned on BatchSize
		// (not on "whenever collection happens to restart"), so a
		// resumed campaign makes its Done decisions at exactly the same
		// points an uninterrupted one does — a requirement for
		// bit-identical resume.
	adaptive:
		for {
			if len(xs) >= p.MaxSamples || aslots%p.BatchSize == 0 {
				if done, _ := rule.Done(xs); done {
					res.Stop = StopConverged
					break
				}
				if len(xs) >= p.MaxSamples {
					break
				}
			}
			if ctx.Err() != nil {
				res.Stop = StopInterrupted
				break
			}
			v, ok, err := observe()
			aslots++
			if err != nil {
				return res, fmt.Errorf("bench: sample %d failed: %w", len(xs), err)
			}
			if ok {
				xs = append(xs, v)
			} else if degraded(len(xs)) {
				res.Stop = StopDegraded
				break adaptive
			}
		}
	}

	if p.Outliers.Remove {
		kept, out := stats.TukeyFilter(xs, p.Outliers.TukeyK)
		res.OutliersRemoved = len(out)
		xs = kept
	}
	res.Raw = xs
	return analyze(ctx, res, xs, p.Confidence, p.Workers)
}

// Analyze computes the full statistical report for an existing sample
// (e.g. data loaded from a CSV file) at the given confidence level.
// Out-of-range confidence levels fall back to 0.95. Samples with fewer
// than two observations return an error wrapping ErrTooFewSamples.
func Analyze(xs []float64, confidence float64) (Result, error) {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	return analyze(context.Background(), Result{Raw: xs, Stop: StopFixed}, xs, confidence, 1)
}

// analyze computes the statistical report over one shared stats.Sample,
// so the sample is sorted exactly once however many statistics read it.
// The three independent task groups — intervals, the change-point scan,
// and the normality diagnostics — run concurrently when workers permits
// (0 = GOMAXPROCS); each computes into its own locals that are merged
// after the barrier, so the result is bit-identical for every worker
// count.
func analyze(ctx context.Context, res Result, xs []float64, confidence float64, workers int) (Result, error) {
	_, span := telemetry.StartSpan(ctx, "analysis", fmt.Sprintf("n=%d", len(xs)))
	defer span.End()
	t0 := time.Now()
	defer func() { telAnalysisUs.Observe(telemetry.Us(time.Since(t0))) }()

	res.ShiftP = math.NaN()
	if len(xs) < 2 {
		return res, fmt.Errorf("%w: only %d observations retained", ErrTooFewSamples, len(xs))
	}
	smp := stats.NewSample(xs)
	res.Summary = smp.Summarize()
	res.Deterministic = res.Summary.Min == res.Summary.Max

	var meanIV, medianIV ci.Interval
	var meanOK, medianOK bool
	intervals := func() {
		defer observeStage(telIntervalsUs, time.Now())
		if iv, err := ci.MeanCISample(smp, confidence); err == nil {
			meanIV, meanOK = iv, true
		}
		if iv, err := ci.MedianCISample(smp, confidence); err == nil {
			medianIV, medianOK = iv, true
		}
	}

	// Contamination check: the ordered stream must be one regime
	// (§3.1.3's iid requirement; a mid-campaign shift silently mixes
	// distributions and invalidates every summary below).
	var cp htest.ChangePoint
	var cpOK bool
	shift := func() {
		defer observeStage(telShiftUs, time.Now())
		if len(xs) >= minShiftSamples && !res.Deterministic {
			if c, err := htest.Pettitt(xs); err == nil {
				cp, cpOK = c, true
			}
		}
	}

	swW, swP := math.NaN(), math.NaN()
	plausible := false
	normality := func() {
		defer observeStage(telNormalityUs, time.Now())
		if res.Deterministic {
			return
		}
		if n := len(xs); n <= 5000 {
			if sw, err := htest.ShapiroWilkSorted(smp.Sorted()); err == nil {
				swW, swP = sw.Stat, sw.P
				plausible = sw.P >= 0.05 ||
					(n > 1000 && stats.QQCorrelationSorted(smp.Sorted()) > 0.999)
			}
		} else if sw, err := htest.ShapiroWilk(xs[:5000]); err == nil {
			// Above Shapiro–Wilk's range: report W over the leading 5000
			// observations; the plausibility predicate stays false.
			swW, swP = sw.Stat, sw.P
		}
	}

	if workers == 1 {
		intervals()
		shift()
		normality()
	} else {
		var wg sync.WaitGroup
		for _, task := range []func(){intervals, shift, normality} {
			wg.Add(1)
			go func() {
				defer wg.Done()
				task()
			}()
		}
		wg.Wait()
	}

	if meanOK {
		res.MeanCI = meanIV
	}
	if medianOK {
		res.MedianCI = medianIV
	}
	if cpOK {
		res.ShiftP = cp.P
		res.ShiftIndex = cp.Index
		res.ShiftDetected = cp.Significant(shiftAlpha)
	}
	res.FaultSuspected = res.SamplesLost > 0 || res.Retries > 0 ||
		res.Panics > 0 || res.ShiftDetected

	if res.Deterministic {
		res.PlausiblyNormal = false
		return res, nil
	}
	res.ShapiroW = swW
	res.ShapiroP = swP
	res.PlausiblyNormal = plausible
	return res, nil
}

// observeStage records one analysis stage's wall-clock duration
// (deferred with time.Now() evaluated at stage entry).
func observeStage(h *telemetry.Histogram, start time.Time) {
	h.Observe(telemetry.Us(time.Since(start)))
}

// PreferredCenter returns the summary the paper's decision tree
// recommends reporting: the mean with its CI when the data is plausibly
// normal (or deterministic), otherwise the median with its nonparametric
// CI (§3.1.2–3.1.3).
func (r Result) PreferredCenter() (label string, iv ci.Interval) {
	if r.Deterministic || r.PlausiblyNormal {
		return "mean", r.MeanCI
	}
	return "median", r.MedianCI
}

// String gives a one-line human summary, including the fault accounting
// whenever the campaign was not clean.
func (r Result) String() string {
	label, iv := r.PreferredCenter()
	s := fmt.Sprintf("n=%d %s=%s (stop: %s, outliers removed: %d)",
		r.Summary.N, label, iv, r.Stop, r.OutliersRemoved)
	if r.FaultSuspected {
		s += fmt.Sprintf(" [FAULT SUSPECTED: lost=%d retries=%d panics=%d shift=%v]",
			r.SamplesLost, r.Retries, r.Panics, r.ShiftDetected)
	}
	return s
}
