// Package bench is the measurement controller codifying the paper's
// experimental-design rules: warmup discard (§4.1.2), fixed or adaptive
// sample counts driven by confidence-interval width (§4.2.2, Rule 5),
// single-event measurement for exact rank statistics (§4.2.1), explicit
// outlier policy with mandatory reporting (§3.1.3), normality diagnosis
// (Rule 6), and ANOVA-gated summarization across processes (Rule 10).
package bench

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/ci"
	"repro/internal/htest"
	"repro/internal/stats"
	"repro/internal/timer"
)

// OutlierPolicy selects how outliers are treated. The paper recommends
// robust measures over removal; when removal is unavoidable the count
// must be reported (it is, in Result.OutliersRemoved).
type OutlierPolicy struct {
	// Remove enables Tukey-fence removal before summary computation.
	Remove bool
	// TukeyK is the fence constant (default 1.5; 3.0 is conservative).
	TukeyK float64
}

// Plan configures one measurement campaign.
type Plan struct {
	// Warmup iterations are measured but excluded from analysis
	// (working-set establishment, §4.1.2).
	Warmup int
	// MinSamples is collected unconditionally (>= 6 enforced for
	// nonparametric CIs; default 10).
	MinSamples int
	// MaxSamples bounds the adaptive phase (default 1000).
	MaxSamples int
	// Confidence is the CI level used for the stopping rule and the
	// reported intervals (default 0.95).
	Confidence float64
	// RelErr, when positive, enables adaptive stopping: measure until the
	// median CI's relative half-width is at most RelErr.
	RelErr float64
	// BatchSize is the adaptive recheck cadence (default 10).
	BatchSize int
	// Outliers is the outlier policy (default: keep everything).
	Outliers OutlierPolicy
	// EventsPerSample aggregates k consecutive events into one recorded
	// observation (their mean). §4.2.1 allows this when timer overhead
	// or resolution is insufficient for single events, at the cost of
	// losing per-event confidence intervals and exact rank statistics —
	// Result.ResolutionLost flags that loss. Default 1 (recommended).
	EventsPerSample int
	// Timer, when non-nil, validates every recorded observation against
	// the calibration's §4.2.1 quality thresholds; violations are
	// counted in Result.TimerWarnings. Observations are in seconds.
	Timer *timer.Calibration
}

func (p Plan) withDefaults() Plan {
	if p.MinSamples < 6 {
		p.MinSamples = 10
	}
	if p.MaxSamples <= 0 {
		p.MaxSamples = 1000
	}
	if p.MaxSamples < p.MinSamples {
		p.MaxSamples = p.MinSamples
	}
	if p.Confidence <= 0 || p.Confidence >= 1 {
		p.Confidence = 0.95
	}
	if p.BatchSize < 1 {
		p.BatchSize = 10
	}
	if p.Outliers.Remove && p.Outliers.TukeyK <= 0 {
		p.Outliers.TukeyK = 1.5
	}
	if p.EventsPerSample < 1 {
		p.EventsPerSample = 1
	}
	return p
}

// StopReason explains why sample collection ended.
type StopReason string

const (
	// StopFixed: no adaptive target was set; MinSamples were collected.
	StopFixed StopReason = "fixed sample count"
	// StopConverged: the CI reached the requested relative width.
	StopConverged StopReason = "confidence interval converged"
	// StopMaxSamples: the budget ran out before convergence.
	StopMaxSamples StopReason = "sample budget exhausted before convergence"
)

// Result is a fully analyzed measurement campaign. All fields refer to
// the post-warmup, post-outlier-policy sample except Raw, which keeps
// every retained observation for downstream analysis or export.
type Result struct {
	Raw             []float64
	WarmupDiscarded int
	OutliersRemoved int
	Stop            StopReason
	Summary         stats.Summary
	MeanCI          ci.Interval
	MedianCI        ci.Interval
	ShapiroW        float64
	ShapiroP        float64
	PlausiblyNormal bool
	Deterministic   bool // all retained observations identical
	// ResolutionLost is true when EventsPerSample > 1: CIs and rank
	// statistics then describe block means, not single events (§4.2.1).
	ResolutionLost bool
	// TimerWarnings counts observations below the timer calibration's
	// minimum reliable interval (0 when no calibration was supplied).
	TimerWarnings int
}

// ErrNoMeasure is returned when Run is invoked without a measure func.
var ErrNoMeasure = errors.New("bench: nil measure function")

// Run executes a measurement campaign: warmup, collection (fixed or
// adaptive), outlier policy, and statistical analysis.
func Run(plan Plan, measure func() float64) (Result, error) {
	if measure == nil {
		return Result{}, ErrNoMeasure
	}
	p := plan.withDefaults()
	var res Result
	res.ResolutionLost = p.EventsPerSample > 1

	// sample records one observation: the mean of k consecutive events
	// (k = 1 keeps single-event resolution, the paper's recommendation).
	minReliable := 0.0
	if p.Timer != nil {
		minReliable = p.Timer.MinReliableInterval().Seconds()
	}
	sample := func() float64 {
		sum := 0.0
		for i := 0; i < p.EventsPerSample; i++ {
			sum += measure()
		}
		v := sum / float64(p.EventsPerSample)
		if minReliable > 0 && v < minReliable {
			res.TimerWarnings++
		}
		return v
	}

	for i := 0; i < p.Warmup; i++ {
		_ = measure()
		res.WarmupDiscarded++
	}

	xs := make([]float64, 0, p.MinSamples)
	for i := 0; i < p.MinSamples; i++ {
		xs = append(xs, sample())
	}
	res.Stop = StopFixed

	if p.RelErr > 0 {
		rule := ci.StoppingRule{
			Confidence: p.Confidence,
			RelErr:     p.RelErr,
			BatchSize:  p.BatchSize,
		}
		res.Stop = StopMaxSamples
		for {
			if done, _ := rule.Done(xs); done {
				res.Stop = StopConverged
				break
			}
			if len(xs) >= p.MaxSamples {
				break
			}
			for i := 0; i < p.BatchSize && len(xs) < p.MaxSamples; i++ {
				xs = append(xs, sample())
			}
		}
	}

	if p.Outliers.Remove {
		kept, out := stats.TukeyFilter(xs, p.Outliers.TukeyK)
		res.OutliersRemoved = len(out)
		xs = kept
	}
	res.Raw = xs
	return analyze(res, xs, p.Confidence)
}

// Analyze computes the full statistical report for an existing sample
// (e.g. data loaded from a CSV file) at the given confidence level.
func Analyze(xs []float64, confidence float64) (Result, error) {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	return analyze(Result{Raw: xs, Stop: StopFixed}, xs, confidence)
}

func analyze(res Result, xs []float64, confidence float64) (Result, error) {
	if len(xs) < 2 {
		return res, fmt.Errorf("bench: only %d observations retained", len(xs))
	}
	res.Summary = stats.Summarize(xs)
	res.Deterministic = res.Summary.Min == res.Summary.Max

	if iv, err := ci.MeanCI(xs, confidence); err == nil {
		res.MeanCI = iv
	}
	if iv, err := ci.MedianCI(xs, confidence); err == nil {
		res.MedianCI = iv
	}
	if res.Deterministic {
		res.PlausiblyNormal = false
		return res, nil
	}
	if sw, err := htest.ShapiroWilk(clip(xs, 5000)); err == nil {
		res.ShapiroW = sw.Stat
		res.ShapiroP = sw.P
	} else {
		res.ShapiroW = math.NaN()
		res.ShapiroP = math.NaN()
	}
	res.PlausiblyNormal = htest.IsPlausiblyNormal(xs, 0.05)
	return res, nil
}

// clip returns at most n leading elements (Shapiro–Wilk caps at 5000).
func clip(xs []float64, n int) []float64 {
	if len(xs) <= n {
		return xs
	}
	return xs[:n]
}

// PreferredCenter returns the summary the paper's decision tree
// recommends reporting: the mean with its CI when the data is plausibly
// normal (or deterministic), otherwise the median with its nonparametric
// CI (§3.1.2–3.1.3).
func (r Result) PreferredCenter() (label string, iv ci.Interval) {
	if r.Deterministic || r.PlausiblyNormal {
		return "mean", r.MeanCI
	}
	return "median", r.MedianCI
}

// String gives a one-line human summary.
func (r Result) String() string {
	label, iv := r.PreferredCenter()
	return fmt.Sprintf("n=%d %s=%s (stop: %s, outliers removed: %d)",
		r.Summary.N, label, iv, r.Stop, r.OutliersRemoved)
}
