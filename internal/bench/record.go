package bench

import "errors"

// EventKind labels one collection event emitted by the measurement loop.
type EventKind string

// Collection event kinds. Together they are a complete replayable trace
// of a campaign's collection state: folding an event stream reproduces
// the retained sample, every loss counter, and the loop's position in
// both the warmup and the adaptive batching schedule.
const (
	// EventWarmup: one warmup iteration was measured and discarded.
	EventWarmup EventKind = "warmup"
	// EventSample: one observation was recorded into the sample.
	EventSample EventKind = "sample"
	// EventRetry: a failed or fault-suspect attempt is being retried.
	EventRetry EventKind = "retry"
	// EventPanic: the measure function panicked and was recovered.
	EventPanic EventKind = "panic"
	// EventLoss: an observation slot was abandoned after the retry
	// budget (Result.SamplesLost).
	EventLoss EventKind = "loss"
)

// Event is one collection event. Calls is the cumulative number of
// measure-function invocations made when the event was emitted; a
// deterministic measure source (e.g. a seeded simulated cluster) can be
// fast-forwarded by exactly that many calls to restore its RNG state
// before resuming an interrupted campaign.
type Event struct {
	Kind  EventKind `json:"kind"`
	Value float64   `json:"value,omitempty"`
	Calls int       `json:"calls"`
}

// Recorder observes collection events as they happen — the hook a
// write-ahead journal (internal/campaign) attaches to. Record is called
// synchronously after each event; an error aborts the campaign (a
// campaign that cannot journal durably must not pretend it can), wrapped
// in ErrRecorder.
type Recorder interface {
	Record(Event) error
}

// ErrRecorder reports a Plan.Record hook failure (e.g. a full disk under
// a journal). The campaign aborts rather than continue without
// durability.
var ErrRecorder = errors.New("bench: recorder failed")

// ResumeState preloads a campaign with the collection state replayed
// from a journaled event stream, so an interrupted campaign continues
// exactly where it stopped: retained samples, loss accounting, warmup
// position, and the adaptive loop's batch alignment are all restored,
// and with a deterministic measure source the final retained sample is
// bit-identical to an uninterrupted run.
type ResumeState struct {
	// Events is the replayed event stream, in journal order.
	Events []Event
}

// Calls returns the cumulative measure-invocation count at the last
// journaled event — how far a deterministic measure source must be
// fast-forwarded before resuming. Safe on a nil receiver.
func (s *ResumeState) Calls() int {
	if s == nil || len(s.Events) == 0 {
		return 0
	}
	return s.Events[len(s.Events)-1].Calls
}

// Samples returns the retained observations in collection order. Safe
// on a nil receiver.
func (s *ResumeState) Samples() []float64 {
	if s == nil {
		return nil
	}
	var xs []float64
	for _, ev := range s.Events {
		if ev.Kind == EventSample {
			xs = append(xs, ev.Value)
		}
	}
	return xs
}

// Replayed is the collection state summarized from a journaled event
// stream: the retained sample plus the loss accounting the stream
// implies. It is what a merge reader (internal/shard) reconstructs per
// unit so a merged report carries exactly the accounting a live run
// would have — losses are data (Rule 4), recomputed from the journal
// rather than trusted from a sidecar file.
type Replayed struct {
	// Samples are the retained observations in collection order.
	Samples []float64
	// Warmup, Retries, Losses and Panics mirror the live Result fields
	// WarmupDiscarded, Retries, SamplesLost and Panics.
	Warmup  int
	Retries int
	Losses  int
	Panics  int
	// Calls is the cumulative measure-invocation count at the last
	// event (the deterministic fast-forward position).
	Calls int
}

// ReplayEvents folds a journaled event stream into its collection
// summary under the plan's effective MinSamples (pass 0 for the
// default). The fold is the same one Resume uses, so replayed
// accounting is bit-identical to what the interrupted run held.
func ReplayEvents(events []Event, minSamples int) Replayed {
	if minSamples <= 0 {
		minSamples = 10
	}
	st := fold(events, minSamples)
	return Replayed{
		Samples: st.samples,
		Warmup:  st.warmup,
		Retries: st.retries,
		Losses:  st.losses,
		Panics:  st.panics,
		Calls:   st.calls,
	}
}

// foldState is the collection-loop state reconstructed from an event
// stream: everything run() needs to continue mid-campaign.
type foldState struct {
	samples []float64
	warmup  int // warmup iterations already discarded
	retries int
	losses  int
	panics  int
	calls   int // cumulative measure invocations
	aslots  int // adaptive-phase observation slots completed
}

// fold replays events against the effective (defaulted) MinSamples.
// Slot accounting: every observation slot ends in a sample or a loss; a
// slot that started once MinSamples observations were already retained
// belongs to the adaptive phase, whose Done-check cadence is aligned on
// aslots so a resumed campaign rechecks convergence at exactly the same
// points an uninterrupted one would.
func fold(events []Event, minSamples int) foldState {
	var st foldState
	for _, ev := range events {
		st.calls = ev.Calls
		switch ev.Kind {
		case EventWarmup:
			st.warmup++
		case EventRetry:
			st.retries++
		case EventPanic:
			st.panics++
		case EventSample:
			if len(st.samples) >= minSamples {
				st.aslots++
			}
			st.samples = append(st.samples, ev.Value)
		case EventLoss:
			if len(st.samples) >= minSamples {
				st.aslots++
			}
			st.losses++
		}
	}
	return st
}
