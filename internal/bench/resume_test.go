package bench

import (
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

// sliceRecorder journals events in memory.
type sliceRecorder struct {
	events []Event
	failAt int // fail the n-th Record call (0 = never)
}

func (r *sliceRecorder) Record(ev Event) error {
	if r.failAt > 0 && len(r.events)+1 >= r.failAt {
		return errors.New("disk full")
	}
	r.events = append(r.events, ev)
	return nil
}

// noisyMeasure returns a deterministic measure function: a seeded stream
// where every 7th draw spikes above the resilience ceiling, exercising
// retries and the loss path.
func noisyMeasure(seed uint64) func() (float64, error) {
	rng := rand.New(rand.NewPCG(seed, 42))
	n := 0
	return func() (float64, error) {
		n++
		v := 1 + rng.Float64() // body in [1, 2)
		if n%7 == 0 {
			v += 10 // fault-suspect spike
		}
		return v, nil
	}
}

func resumePlan(rec Recorder, rs *ResumeState) Plan {
	return Plan{
		Warmup:     3,
		MinSamples: 15,
		MaxSamples: 60,
		RelErr:     0.02,
		BatchSize:  5,
		Resilience: &Resilience{ValueCeiling: 5, MaxRetries: 1, MaxLossFraction: 1},
		Record:     rec,
		Resume:     rs,
	}
}

func TestRunCtxInterruptedCheckpointsCleanly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	count := 0
	res, err := RunErrCtx(ctx, Plan{MinSamples: 50}, func() (float64, error) {
		count++
		if count == 20 {
			cancel()
		}
		return float64(count), nil
	})
	if err != nil {
		t.Fatalf("interrupted campaign with enough samples should analyze: %v", err)
	}
	if res.Stop != StopInterrupted {
		t.Fatalf("Stop = %q, want %q", res.Stop, StopInterrupted)
	}
	if n := len(res.Raw); n != 20 {
		t.Fatalf("retained %d samples, want 20", n)
	}
}

func TestRunCtxInterruptedBeforeAnySample(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunErrCtx(ctx, Plan{MinSamples: 10}, func() (float64, error) { return 1, nil })
	if !errors.Is(err, ErrTooFewSamples) {
		t.Fatalf("err = %v, want ErrTooFewSamples", err)
	}
	if res.Stop != StopInterrupted {
		t.Fatalf("Stop = %q, want %q", res.Stop, StopInterrupted)
	}
}

// TestResumeBitIdentical interrupts a journaled campaign at every
// feasible sample count, resumes it from the recorded events (with the
// measure source fast-forwarded), and requires the final retained
// sample to be bit-identical to an uninterrupted run — the durability
// contract internal/campaign builds on.
func TestResumeBitIdentical(t *testing.T) {
	const seed = 99
	want, err := RunErr(resumePlan(nil, nil), noisyMeasure(seed))
	if err != nil {
		t.Fatal(err)
	}
	if want.Retries == 0 {
		t.Fatal("test measure should provoke retries")
	}

	for cut := 1; cut < want.Summary.N; cut++ {
		rec := &sliceRecorder{}
		ctx, cancel := context.WithCancel(context.Background())
		samples := 0
		cutRec := recorderFunc(func(ev Event) error {
			if err := rec.Record(ev); err != nil {
				return err
			}
			if ev.Kind == EventSample {
				if samples++; samples == cut {
					cancel()
				}
			}
			return nil
		})
		part, err := RunErrCtx(ctx, resumePlan(cutRec, nil), noisyMeasure(seed))
		cancel()
		if err != nil && !errors.Is(err, ErrTooFewSamples) {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if part.Stop != StopInterrupted {
			t.Fatalf("cut %d: Stop = %q, want interrupted", cut, part.Stop)
		}

		// Resume: fast-forward a fresh measure source, then continue.
		st := &ResumeState{Events: rec.events}
		m := noisyMeasure(seed)
		for i := 0; i < st.Calls(); i++ {
			if _, err := m(); err != nil {
				t.Fatal(err)
			}
		}
		got, err := RunErr(resumePlan(nil, st), m)
		if err != nil {
			t.Fatalf("cut %d resume: %v", cut, err)
		}
		if got.Stop != want.Stop {
			t.Errorf("cut %d: Stop = %q, want %q", cut, got.Stop, want.Stop)
		}
		if len(got.Raw) != len(want.Raw) {
			t.Fatalf("cut %d: resumed n=%d, uninterrupted n=%d", cut, len(got.Raw), len(want.Raw))
		}
		for i := range got.Raw {
			if math.Float64bits(got.Raw[i]) != math.Float64bits(want.Raw[i]) {
				t.Fatalf("cut %d: sample %d diverged: %v vs %v", cut, i, got.Raw[i], want.Raw[i])
			}
		}
		if got.Retries != want.Retries || got.SamplesLost != want.SamplesLost ||
			got.Attempts != want.Attempts {
			t.Errorf("cut %d: accounting diverged: retries %d/%d lost %d/%d attempts %d/%d",
				cut, got.Retries, want.Retries, got.SamplesLost, want.SamplesLost,
				got.Attempts, want.Attempts)
		}
	}
}

// recorderFunc adapts a function to the Recorder interface.
type recorderFunc func(Event) error

func (f recorderFunc) Record(ev Event) error { return f(ev) }

func TestRecorderFailureAbortsCampaign(t *testing.T) {
	rec := &sliceRecorder{failAt: 3}
	_, err := RunErr(Plan{MinSamples: 10, Record: rec}, noisyMeasure(1))
	if !errors.Is(err, ErrRecorder) {
		t.Fatalf("err = %v, want ErrRecorder", err)
	}
}

func TestEventStreamReconstructsAccounting(t *testing.T) {
	rec := &sliceRecorder{}
	res, err := RunErr(resumePlan(rec, nil), noisyMeasure(7))
	if err != nil {
		t.Fatal(err)
	}
	st := fold(rec.events, 15)
	if got := len(st.samples); got != res.Summary.N+res.OutliersRemoved {
		t.Errorf("replayed %d samples, result has %d", got, res.Summary.N)
	}
	if st.retries != res.Retries || st.losses != res.SamplesLost || st.panics != res.Panics {
		t.Errorf("replay accounting %d/%d/%d, result %d/%d/%d",
			st.retries, st.losses, st.panics, res.Retries, res.SamplesLost, res.Panics)
	}
	if st.warmup != res.WarmupDiscarded {
		t.Errorf("replay warmup %d, result %d", st.warmup, res.WarmupDiscarded)
	}
}
