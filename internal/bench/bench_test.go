package bench

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/timer"
)

func TestRunFixedPlan(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	calls := 0
	res, err := Run(Plan{Warmup: 3, MinSamples: 20}, func() float64 {
		calls++
		return 10 + rng.NormFloat64()
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 23 {
		t.Errorf("calls = %d, want 23 (3 warmup + 20)", calls)
	}
	if res.WarmupDiscarded != 3 || res.Summary.N != 20 {
		t.Errorf("warmup=%d n=%d", res.WarmupDiscarded, res.Summary.N)
	}
	if res.Stop != StopFixed {
		t.Errorf("stop = %s", res.Stop)
	}
	if res.MeanCI.Lo >= res.MeanCI.Hi || res.MedianCI.Lo > res.MedianCI.Hi {
		t.Error("degenerate CIs")
	}
	if res.String() == "" {
		t.Error("empty String")
	}
}

func TestRunAdaptiveConverges(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	res, err := Run(Plan{
		MinSamples: 10,
		MaxSamples: 5000,
		RelErr:     0.05,
		BatchSize:  20,
	}, func() float64 {
		return math.Exp(0.3 * rng.NormFloat64())
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopConverged {
		t.Errorf("stop = %s, want converged", res.Stop)
	}
	if res.MedianCI.RelativeWidth() > 0.05 {
		t.Errorf("median CI rel width %g > 0.05", res.MedianCI.RelativeWidth())
	}
	if res.Summary.N >= 5000 {
		t.Error("used the whole budget yet claims convergence")
	}
}

func TestRunAdaptiveBudgetExhausted(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	res, err := Run(Plan{
		MinSamples: 10,
		MaxSamples: 60,
		RelErr:     0.0001, // unreachable with 60 noisy samples
	}, func() float64 {
		return math.Exp(2 * rng.NormFloat64())
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopMaxSamples {
		t.Errorf("stop = %s, want budget exhausted", res.Stop)
	}
	if res.Summary.N != 60 {
		t.Errorf("n = %d, want 60", res.Summary.N)
	}
}

func TestRunOutlierPolicy(t *testing.T) {
	i := 0
	vals := []float64{5, 5.1, 4.9, 5.2, 4.8, 5.0, 5.1, 4.9, 5.0, 500}
	res, err := Run(Plan{
		MinSamples: len(vals),
		Outliers:   OutlierPolicy{Remove: true},
	}, func() float64 {
		v := vals[i%len(vals)]
		i++
		return v
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutliersRemoved != 1 {
		t.Errorf("outliers removed = %d, want 1", res.OutliersRemoved)
	}
	if res.Summary.Max > 6 {
		t.Error("outlier survived the policy")
	}
}

func TestRunDeterministicDetection(t *testing.T) {
	res, err := Run(Plan{MinSamples: 10}, func() float64 { return 42 })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Error("constant measurements should be flagged deterministic")
	}
	label, iv := res.PreferredCenter()
	if label != "mean" {
		t.Errorf("deterministic data should report the mean, got %s", label)
	}
	if iv.Center != 42 && !math.IsNaN(iv.Center) {
		// MeanCI fails on constant data (sd = 0 still yields an interval
		// of width 0 centered at 42).
		t.Errorf("center = %g", iv.Center)
	}
}

func TestRunNilMeasure(t *testing.T) {
	if _, err := Run(Plan{}, nil); err != ErrNoMeasure {
		t.Errorf("err = %v", err)
	}
}

func TestPreferredCenterSwitchesOnNormality(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	norm, err := Run(Plan{MinSamples: 100}, func() float64 { return 10 + rng.NormFloat64() })
	if err != nil {
		t.Fatal(err)
	}
	if label, _ := norm.PreferredCenter(); label != "mean" {
		t.Errorf("normal data prefers the mean, got %s", label)
	}
	skew, err := Run(Plan{MinSamples: 200}, func() float64 { return math.Exp(rng.NormFloat64()) })
	if err != nil {
		t.Fatal(err)
	}
	if label, _ := skew.PreferredCenter(); label != "median" {
		t.Errorf("skewed data prefers the median, got %s", label)
	}
	if skew.PlausiblyNormal {
		t.Error("log-normal sample misdiagnosed as normal")
	}
}

func TestAnalyzeExistingSample(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 30
	}
	res, err := Analyze(xs, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.N != 50 {
		t.Errorf("n = %d", res.Summary.N)
	}
	if res.MeanCI.Confidence != 0.99 {
		t.Errorf("confidence = %g", res.MeanCI.Confidence)
	}
	if _, err := Analyze([]float64{1}, 0.95); err == nil {
		t.Error("tiny sample should error")
	}
	// Invalid confidence falls back to 0.95.
	res2, err := Analyze(xs, 42)
	if err != nil || res2.MeanCI.Confidence != 0.95 {
		t.Errorf("fallback confidence: %g %v", res2.MeanCI.Confidence, err)
	}
}

func TestSummarizeAcrossProcessesHomogeneous(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	perProc := make([][]float64, 8)
	for p := range perProc {
		for i := 0; i < 50; i++ {
			perProc[p] = append(perProc[p], 100+rng.NormFloat64())
		}
	}
	cp, err := SummarizeAcrossProcesses(perProc, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Homogeneous {
		t.Errorf("identical processes flagged heterogeneous: %v", cp.ANOVA)
	}
	if cp.Pooled.N != 400 {
		t.Errorf("pooled n = %d", cp.Pooled.N)
	}
}

func TestSummarizeAcrossProcessesDetectsSlowRank(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	perProc := make([][]float64, 8)
	for p := range perProc {
		shift := 0.0
		if p == 3 {
			shift = 5 // one systematically slow process (Fig 6)
		}
		for i := 0; i < 50; i++ {
			perProc[p] = append(perProc[p], 100+shift+rng.NormFloat64())
		}
	}
	cp, err := SummarizeAcrossProcesses(perProc, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Homogeneous {
		t.Error("slow rank not detected; pooling would be unsound")
	}
	if cp.MaxOfMeans < cp.MedianOfMeans+4 {
		t.Errorf("max of means %g should reflect the slow rank (median %g)",
			cp.MaxOfMeans, cp.MedianOfMeans)
	}
}

func TestSummarizeAcrossProcessesValidation(t *testing.T) {
	if _, err := SummarizeAcrossProcesses([][]float64{{1, 2}}, 0.05); err == nil {
		t.Error("one process should error")
	}
	if _, err := SummarizeAcrossProcesses([][]float64{{1, 2}, {3}}, 0.05); err == nil {
		t.Error("tiny process sample should error")
	}
	// All-constant processes: trivially homogeneous.
	cp, err := SummarizeAcrossProcesses([][]float64{{5, 5}, {5, 5}}, 0.05)
	if err != nil || !cp.Homogeneous {
		t.Errorf("constant processes: %v %v", cp.Homogeneous, err)
	}
}

func TestAdaptiveLevelsRefinesKink(t *testing.T) {
	// A piecewise function with a kink at 64: refinement should place
	// more levels around the kink than in the flat region.
	f := func(x int) float64 {
		if x < 64 {
			return 1
		}
		return float64(x)
	}
	levels, err := AdaptiveLevels(2, 128, 12, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 12 {
		t.Fatalf("levels = %d, want 12", len(levels))
	}
	// Sorted by X.
	nearKink := 0
	for i, l := range levels {
		if i > 0 && l.X <= levels[i-1].X {
			t.Fatal("levels not sorted/unique")
		}
		if l.X >= 48 && l.X <= 96 {
			nearKink++
		}
	}
	if nearKink < 4 {
		t.Errorf("only %d levels near the kink; refinement not adaptive", nearKink)
	}
}

func TestAdaptiveLevelsValidation(t *testing.T) {
	if _, err := AdaptiveLevels(5, 5, 10, func(int) float64 { return 0 }); err == nil {
		t.Error("empty range should error")
	}
	if _, err := AdaptiveLevels(0, 10, 10, nil); err != ErrNoMeasure {
		t.Error("nil measure should error")
	}
	// Budget larger than the number of integer levels terminates.
	levels, err := AdaptiveLevels(0, 4, 100, func(x int) float64 { return float64(x) })
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) > 5 {
		t.Errorf("more levels than integers in range: %d", len(levels))
	}
}

func TestPlanDefaults(t *testing.T) {
	p, err := Plan{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if p.MinSamples != 10 || p.MaxSamples != 1000 || p.Confidence != 0.95 || p.BatchSize != 10 {
		t.Errorf("defaults = %+v", p)
	}
	p2, err := Plan{Outliers: OutlierPolicy{Remove: true}}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if p2.Outliers.TukeyK != 1.5 {
		t.Errorf("TukeyK default = %g", p2.Outliers.TukeyK)
	}
	p3, err := Plan{MinSamples: 50, MaxSamples: 20}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if p3.MaxSamples != 50 {
		t.Error("MaxSamples must be raised to MinSamples")
	}
	p4, err := Plan{MinSamples: 3}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if p4.MinSamples != 6 {
		t.Errorf("MinSamples %d, want raised to 6", p4.MinSamples)
	}
}

func TestPlanRejectsNonsense(t *testing.T) {
	bad := []Plan{
		{Warmup: -1},
		{MinSamples: -5},
		{MaxSamples: -1},
		{BatchSize: -2},
		{Confidence: 1.5},
		{Confidence: -0.5},
		{RelErr: -0.1},
		{RelErr: 1}, // a 100% relative error target is meaningless
		{EventsPerSample: -3},
		{Resilience: &Resilience{MaxRetries: -1}},
		{Resilience: &Resilience{MaxLossFraction: 1.5}},
		{Resilience: &Resilience{SampleTimeout: -time.Second}},
		{Resilience: &Resilience{ValueCeiling: -1}},
		{Resilience: &Resilience{RetryBackoff: -time.Millisecond}},
	}
	for i, p := range bad {
		if _, err := p.withDefaults(); !errors.Is(err, ErrBadPlan) {
			t.Errorf("plan %d: err = %v, want ErrBadPlan", i, err)
		}
		if _, err := Run(p, func() float64 { return 1 }); !errors.Is(err, ErrBadPlan) {
			t.Errorf("Run with plan %d: err = %v, want ErrBadPlan", i, err)
		}
	}
}

func TestRunMatchesDirectStats(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	vals := make([]float64, 0, 30)
	i := 0
	res, err := Run(Plan{MinSamples: 30}, func() float64 {
		v := 5 + rng.NormFloat64()
		vals = append(vals, v)
		i++
		return v
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Summary.Mean-stats.Mean(vals)) > 1e-12 {
		t.Error("summary mean disagrees with raw data")
	}
	if len(res.Raw) != len(vals) {
		t.Error("raw data not preserved")
	}
}

func TestEventsPerSampleAggregation(t *testing.T) {
	calls := 0
	res, err := Run(Plan{MinSamples: 10, EventsPerSample: 4}, func() float64 {
		calls++
		return float64(calls)
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 40 {
		t.Errorf("calls = %d, want 40 (10 samples × 4 events)", calls)
	}
	if !res.ResolutionLost {
		t.Error("k>1 must flag resolution loss")
	}
	// First observation is the mean of events 1..4 = 2.5.
	if res.Raw[0] != 2.5 {
		t.Errorf("first block mean = %g, want 2.5", res.Raw[0])
	}
	// k=1 keeps resolution.
	res1, err := Run(Plan{MinSamples: 10}, func() float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if res1.ResolutionLost {
		t.Error("k=1 must not flag resolution loss")
	}
}

func TestTimerWarnings(t *testing.T) {
	cal := &timer.Calibration{
		Resolution: time.Microsecond,
		Overhead:   100 * time.Nanosecond,
	}
	// Minimum reliable interval is 10µs; feed 1µs observations.
	res, err := Run(Plan{MinSamples: 10, Timer: cal}, func() float64 {
		return 1e-6
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimerWarnings != 10 {
		t.Errorf("warnings = %d, want 10", res.TimerWarnings)
	}
	// Long-enough intervals produce no warnings.
	res, err = Run(Plan{MinSamples: 10, Timer: cal}, func() float64 {
		return 1e-3
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimerWarnings != 0 {
		t.Errorf("warnings = %d, want 0", res.TimerWarnings)
	}
}
