package bench

import (
	"errors"
	"math/rand/v2"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunErrRetriesAndAccounts(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	calls := 0
	res, err := RunErr(Plan{
		MinSamples: 30,
		Resilience: &Resilience{MaxRetries: 3},
	}, func() (float64, error) {
		calls++
		if calls%5 == 0 { // every 5th attempt fails
			return 0, errors.New("injected")
		}
		return 10 + rng.NormFloat64(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.N != 30 {
		t.Errorf("n = %d, want 30 despite failures", res.Summary.N)
	}
	if res.Retries == 0 {
		t.Error("failures must be counted as retries")
	}
	if res.Attempts <= 30 {
		t.Errorf("attempts = %d, must exceed the 30 recorded samples", res.Attempts)
	}
	if !res.FaultSuspected {
		t.Error("retried campaign must be marked fault-suspected")
	}
	if res.SamplesLost != 0 {
		t.Errorf("lost = %d; every slot should succeed within 3 retries", res.SamplesLost)
	}
}

func TestRunErrLosesExhaustedSlots(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	calls := 0
	res, err := RunErr(Plan{
		MinSamples: 20,
		Resilience: &Resilience{MaxRetries: 1, MaxLossFraction: 1},
	}, func() (float64, error) {
		calls++
		// Attempts 7..10 fail back to back: slots lose both their first
		// try and their single retry.
		if calls >= 7 && calls <= 10 {
			return 0, errors.New("burst failure")
		}
		return 5 + rng.NormFloat64(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesLost == 0 {
		t.Error("exhausted slots must be recorded as lost")
	}
	if res.Summary.N != 20 {
		t.Errorf("n = %d; loss must not shrink the requested sample", res.Summary.N)
	}
}

func TestRunErrWithoutResilienceAborts(t *testing.T) {
	sentinel := errors.New("hardware on fire")
	_, err := RunErr(Plan{MinSamples: 10}, func() (float64, error) {
		return 0, sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want wrapped sentinel", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	// Plain Run (no resilience): the panic surfaces as an error, not a
	// crashed test binary.
	calls := 0
	_, err := Run(Plan{MinSamples: 5}, func() float64 {
		calls++
		panic("measure exploded")
	})
	if !errors.Is(err, ErrMeasurePanic) {
		t.Errorf("err = %v, want ErrMeasurePanic", err)
	}

	// With resilience: panics are retried and accounted.
	rng := rand.New(rand.NewPCG(12, 12))
	calls = 0
	res, err := RunErr(Plan{
		MinSamples: 15,
		Resilience: &Resilience{MaxRetries: 2},
	}, func() (float64, error) {
		calls++
		if calls == 4 {
			panic("one-off explosion")
		}
		return 3 + rng.NormFloat64(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Panics != 1 {
		t.Errorf("panics = %d, want 1", res.Panics)
	}
	if !res.FaultSuspected {
		t.Error("recovered panic must mark the campaign fault-suspected")
	}
}

func TestSampleTimeoutWatchdog(t *testing.T) {
	// The measure closure must be overlap-safe: a timed-out attempt's
	// goroutine keeps running while the next attempt starts (see the
	// SampleTimeout doc), so the shared counter is atomic.
	var slow atomic.Int64
	res, err := RunErr(Plan{
		MinSamples: 8,
		Resilience: &Resilience{
			SampleTimeout: 5 * time.Millisecond,
			MaxRetries:    1,
			// One slow attempt per slot is tolerable: never degrade.
			MaxLossFraction: 1,
		},
	}, func() (float64, error) {
		n := slow.Add(1)
		if n%3 == 0 {
			time.Sleep(50 * time.Millisecond) // hangs past the deadline
		}
		return 1.5 + float64(n%7)/10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.N != 8 {
		t.Errorf("n = %d, want 8", res.Summary.N)
	}
	if res.Retries == 0 && res.SamplesLost == 0 {
		t.Error("watchdog timeouts left no trace in the accounting")
	}
}

func TestValueCeilingDiscardsSuspects(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	calls := 0
	res, err := RunErr(Plan{
		MinSamples: 25,
		Resilience: &Resilience{ValueCeiling: 100, MaxRetries: 2, MaxLossFraction: 1},
	}, func() (float64, error) {
		calls++
		if calls%6 == 0 {
			return 1e6, nil // crash-timeout sentinel value
		}
		return 2 + rng.NormFloat64()/10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Max >= 100 {
		t.Errorf("max %g: ceiling-violating value survived", res.Summary.Max)
	}
	if res.Retries == 0 {
		t.Error("ceiling discards must be retried and counted")
	}
}

func TestDegradedStopOnMassiveLoss(t *testing.T) {
	res, err := RunErr(Plan{
		MinSamples: 100,
		Resilience: &Resilience{MaxRetries: 0, MaxLossFraction: 0.3},
	}, func() (float64, error) {
		return 0, errors.New("everything fails")
	})
	if err == nil {
		t.Fatal("fully failed campaign cannot be analyzed")
	}
	if !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("err = %v, want ErrTooFewSamples", err)
	}
	if res.Stop != StopDegraded {
		t.Errorf("stop = %s, want degraded", res.Stop)
	}
	if res.SamplesLost == 0 || res.Attempts == 0 {
		t.Errorf("partial result must carry the accounting: %+v", res)
	}
}

func TestDegradedStopPartialAnalysis(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 14))
	calls := 0
	res, err := RunErr(Plan{
		MinSamples: 200,
		Resilience: &Resilience{MaxRetries: 0, MaxLossFraction: 0.4},
	}, func() (float64, error) {
		calls++
		if calls > 40 { // system dies after 40 good samples
			return 0, errors.New("node crashed")
		}
		return 7 + rng.NormFloat64(), nil
	})
	if err != nil {
		t.Fatalf("40 good samples are analyzable: %v", err)
	}
	if res.Stop != StopDegraded {
		t.Errorf("stop = %s, want degraded", res.Stop)
	}
	if res.Summary.N == 0 || res.Summary.N >= 200 {
		t.Errorf("n = %d, want a partial sample", res.Summary.N)
	}
	if !res.FaultSuspected {
		t.Error("degraded campaign must be fault-suspected")
	}
}

func TestShiftDetectionInRun(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 15))
	calls := 0
	res, err := Run(Plan{MinSamples: 120}, func() float64 {
		calls++
		v := 10 + rng.NormFloat64()/5
		if calls > 60 {
			v *= 3 // contamination onset mid-campaign
		}
		return v
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ShiftDetected {
		t.Errorf("3x regime shift not detected: p = %g", res.ShiftP)
	}
	if res.ShiftIndex < 45 || res.ShiftIndex > 75 {
		t.Errorf("shift located at %d, want near 59", res.ShiftIndex)
	}
	if !res.FaultSuspected {
		t.Error("detected shift must mark the campaign fault-suspected")
	}

	// A clean campaign stays clean.
	clean, err := Run(Plan{MinSamples: 120}, func() float64 {
		return 10 + rng.NormFloat64()/5
	})
	if err != nil {
		t.Fatal(err)
	}
	if clean.FaultSuspected {
		t.Errorf("clean campaign flagged: shift p = %g lost = %d",
			clean.ShiftP, clean.SamplesLost)
	}
}

func TestAnalyzeSentinel(t *testing.T) {
	if _, err := Analyze([]float64{1}, 0.95); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("err = %v, want ErrTooFewSamples", err)
	}
	if _, err := SummarizeAcrossProcesses([][]float64{{1, 2}}, 0.05); !errors.Is(err, ErrTooFewProcesses) {
		t.Error("want ErrTooFewProcesses for a single process")
	}
	if _, err := SummarizeAcrossProcesses([][]float64{{1, 2}, {3}}, 0.05); !errors.Is(err, ErrTooFewSamples) {
		t.Error("want ErrTooFewSamples for a tiny per-process sample")
	}
}

func TestResilientRunDeterministic(t *testing.T) {
	run := func() (Result, error) {
		rng := rand.New(rand.NewPCG(16, 16))
		calls := 0
		return RunErr(Plan{
			MinSamples: 40,
			Resilience: &Resilience{MaxRetries: 2, ValueCeiling: 50},
		}, func() (float64, error) {
			calls++
			if calls%9 == 0 {
				return 0, errors.New("flake")
			}
			if calls%13 == 0 {
				return 1e3, nil // above the ceiling
			}
			return 4 + rng.NormFloat64(), nil
		})
	}
	a, errA := run()
	b, errB := run()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if a.String() != b.String() || a.Attempts != b.Attempts ||
		a.Retries != b.Retries || a.SamplesLost != b.SamplesLost {
		t.Error("same seed must reproduce the identical resilient Result")
	}
	for i := range a.Raw {
		if a.Raw[i] != b.Raw[i] {
			t.Fatalf("raw[%d] differs: %g vs %g", i, a.Raw[i], b.Raw[i])
		}
	}
}
