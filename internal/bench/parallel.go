package bench

import (
	"errors"
	"fmt"

	"repro/internal/htest"
	"repro/internal/stats"
)

// CrossProcess is the Rule 10 summarization of nP values measured as n
// events on each of P processes: before collapsing processes into one
// population, an ANOVA test checks whether the per-process timings
// differ significantly; if they do, a per-process breakdown must be
// reported instead of a single pooled number.
type CrossProcess struct {
	// Pooled is the analysis over all nP values (valid when Homogeneous).
	Pooled stats.Summary
	// PerProcess holds each process's own summary.
	PerProcess []stats.Summary
	// ANOVA is the test result across processes.
	ANOVA htest.ANOVAResult
	// Homogeneous reports whether the processes are statistically
	// indistinguishable at the given alpha (pooling is then sound).
	Homogeneous bool
	// MaxProcess and MedianProcess summarize across processes the way
	// the paper's Fig 5 does (maximum) and a robust alternative.
	MaxOfMeans    float64
	MedianOfMeans float64
}

// ErrTooFewProcesses is returned when a cross-process summary is
// requested for fewer than two processes.
var ErrTooFewProcesses = errors.New("bench: need at least two processes")

// SummarizeAcrossProcesses applies the Rule 10 procedure to perProc
// (one sample per process) at significance level alpha.
func SummarizeAcrossProcesses(perProc [][]float64, alpha float64) (CrossProcess, error) {
	if len(perProc) < 2 {
		return CrossProcess{}, fmt.Errorf("%w: got %d", ErrTooFewProcesses, len(perProc))
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	var out CrossProcess
	var all []float64
	means := make([]float64, 0, len(perProc))
	for i, g := range perProc {
		if len(g) < 2 {
			return CrossProcess{}, fmt.Errorf("%w: process %d has %d observations",
				ErrTooFewSamples, i, len(g))
		}
		out.PerProcess = append(out.PerProcess, stats.Summarize(g))
		means = append(means, stats.Mean(g))
		all = append(all, g...)
	}
	out.Pooled = stats.Summarize(all)
	out.MaxOfMeans = stats.Max(means)
	out.MedianOfMeans = stats.Median(means)

	anova, err := htest.OneWayANOVA(perProc...)
	if err != nil {
		if errors.Is(err, htest.ErrConstant) {
			// All processes identical: trivially homogeneous.
			out.Homogeneous = true
			return out, nil
		}
		return CrossProcess{}, err
	}
	out.ANOVA = anova
	out.Homogeneous = !anova.Significant(alpha)
	return out, nil
}

// Level is one measured factor level in an adaptive refinement sweep.
type Level struct {
	X int
	Y float64
}

// AdaptiveLevels implements §4.2's adaptive level refinement (the SKaMPI
// approach): starting from the interval endpoints, it repeatedly measures
// the midpoint of the segment whose measured value deviates most from
// linear interpolation between its neighbours — spending the measurement
// budget where the curve is least linear (highest uncertainty). It
// returns the measured levels sorted by X.
func AdaptiveLevels(lo, hi int, budget int, measure func(int) float64) ([]Level, error) {
	if hi <= lo {
		return nil, fmt.Errorf("bench: bad level range [%d, %d]", lo, hi)
	}
	if measure == nil {
		return nil, ErrNoMeasure
	}
	if budget < 2 {
		budget = 2
	}
	levels := []Level{{lo, measure(lo)}, {hi, measure(hi)}}
	spent := 2
	for spent < budget {
		// Find the refinable segment with the largest interpolation
		// error estimate: |midpoint prediction gap| × width.
		bestIdx := -1
		bestScore := -1.0
		for i := 0; i+1 < len(levels); i++ {
			a, b := levels[i], levels[i+1]
			if b.X-a.X < 2 {
				continue
			}
			score := absf(b.Y-a.Y) * float64(b.X-a.X)
			if score > bestScore {
				bestScore = score
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break // nothing left to refine
		}
		a, b := levels[bestIdx], levels[bestIdx+1]
		mid := (a.X + b.X) / 2
		y := measure(mid)
		spent++
		// Insert keeping X order.
		levels = append(levels, Level{})
		copy(levels[bestIdx+2:], levels[bestIdx+1:])
		levels[bestIdx+1] = Level{mid, y}
	}
	return levels, nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
