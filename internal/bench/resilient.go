package bench

import (
	"errors"
	"fmt"
	"time"
)

// Errors surfaced by the resilient collection loop.
var (
	// ErrMeasurePanic wraps a panic recovered from the measure function.
	ErrMeasurePanic = errors.New("bench: measure panicked")
	// ErrSampleTimeout reports a sample attempt that exceeded the
	// watchdog deadline (Resilience.SampleTimeout).
	ErrSampleTimeout = errors.New("bench: sample deadline exceeded")
)

// Resilience configures the fault-tolerant collection loop. The paper's
// rules assume every measurement completes; on real systems nodes
// straggle, daemons interfere, and processes crash. Rather than abort —
// or worse, silently drop the bad samples (a Rule 4 violation) — the
// resilient loop bounds each attempt, retries with backoff, and reports
// every loss in the Result.
type Resilience struct {
	// SampleTimeout, when positive, arms a wall-clock watchdog per
	// sample attempt: the measure function runs in a goroutine and an
	// attempt that exceeds the deadline fails with ErrSampleTimeout.
	// Caveat: the abandoned goroutine keeps running to completion in the
	// background (Go cannot kill it), so the measure function must be
	// safe to overlap with the next attempt. For measure functions that
	// share non-thread-safe state (e.g. a simulated cluster Machine),
	// leave this zero and bound attempts with ValueCeiling instead.
	SampleTimeout time.Duration
	// ValueCeiling, when positive, discards (and retries) any observed
	// value at or above it — a simulated-time analogue of the watchdog,
	// catching crash-timeout sentinels and straggler-inflated samples
	// without goroutines.
	ValueCeiling float64
	// MaxRetries bounds extra attempts per observation slot. Zero
	// selects the default of 2; negative values are rejected.
	MaxRetries int
	// RetryBackoff, when positive, sleeps backoff·2^(attempt−1) before
	// each retry (wall clock). Zero means retry immediately — correct
	// for simulated targets where wall-clock waiting buys nothing.
	RetryBackoff time.Duration
	// MaxLossFraction is the degradation threshold: once more than this
	// fraction of attempts has been lost (after a minimal probe of 10),
	// collection stops with StopDegraded and a partial Result. Zero
	// selects the default of 0.5; values outside (0, 1] are rejected.
	// A value of 1 never degrades: collection runs until MinSamples or
	// the sample budget regardless of loss.
	MaxLossFraction float64
}

func (r Resilience) withDefaults() (Resilience, error) {
	switch {
	case r.SampleTimeout < 0:
		return r, fmt.Errorf("%w: negative SampleTimeout %v", ErrBadPlan, r.SampleTimeout)
	case r.ValueCeiling < 0:
		return r, fmt.Errorf("%w: negative ValueCeiling %g", ErrBadPlan, r.ValueCeiling)
	case r.MaxRetries < 0:
		return r, fmt.Errorf("%w: negative MaxRetries %d", ErrBadPlan, r.MaxRetries)
	case r.RetryBackoff < 0:
		return r, fmt.Errorf("%w: negative RetryBackoff %v", ErrBadPlan, r.RetryBackoff)
	case r.MaxLossFraction < 0 || r.MaxLossFraction > 1:
		return r, fmt.Errorf("%w: MaxLossFraction %g outside [0, 1]", ErrBadPlan, r.MaxLossFraction)
	}
	if r.MaxRetries == 0 {
		r.MaxRetries = 2
	}
	if r.MaxLossFraction == 0 {
		r.MaxLossFraction = 0.5
	}
	return r, nil
}

// guard runs one measure attempt with panic recovery and, when armed,
// the wall-clock watchdog. Safe on a nil receiver (plain Run still gets
// panic recovery — a broken measure function surfaces as an error, not a
// crashed campaign).
func (r *Resilience) guard(measure func() (float64, error)) (float64, error) {
	call := func() (v float64, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("%w: %v", ErrMeasurePanic, p)
			}
		}()
		return measure()
	}
	if r == nil || r.SampleTimeout <= 0 {
		return call()
	}
	type outcome struct {
		v   float64
		err error
	}
	done := make(chan outcome, 1) // buffered: the goroutine never blocks
	go func() {
		v, err := call()
		done <- outcome{v, err}
	}()
	watchdog := time.NewTimer(r.SampleTimeout)
	defer watchdog.Stop()
	select {
	case o := <-done:
		return o.v, o.err
	case <-watchdog.C:
		telWatchdog.Inc()
		return 0, ErrSampleTimeout
	}
}

// backoff sleeps before retry number attempt (1-based), doubling each
// time. No-op when RetryBackoff is zero.
func (r *Resilience) backoff(attempt int) {
	if r == nil || r.RetryBackoff <= 0 {
		return
	}
	d := r.RetryBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
	}
	time.Sleep(d)
}
