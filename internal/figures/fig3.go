package figures

import (
	"io"

	"repro/internal/ci"
	"repro/internal/cluster"
	"repro/internal/htest"
	"repro/internal/qreg"
	"repro/internal/report"
	"repro/internal/stats"
)

// Fig3System is one system's panel in Figure 3.
type Fig3System struct {
	Name       string
	Summary    stats.Summary
	MeanCI99   ci.Interval
	MedianCI99 ci.Interval
}

// Fig3Data is the regenerated Figure 3: 64 B ping-pong latency
// distributions on the two simulated systems with 99% CIs of both mean
// and median, and the Kruskal–Wallis significance of the median
// difference.
type Fig3Data struct {
	Samples    int
	Dora       Fig3System
	Pilatus    Fig3System
	KW         htest.TestResult
	Differs    bool // medians differ at 95% confidence
	MeanDiff   float64
	DoraRaw    []float64 `json:"-"`
	PilatusRaw []float64 `json:"-"`
}

// Fig3 regenerates Figure 3 with the given per-system sample count
// (paper: 10⁶).
func Fig3(w io.Writer, samples int, seed uint64) (Fig3Data, error) {
	if samples <= 0 {
		samples = 1000000
	}
	dora, err := pingPongMicros(cluster.PizDora(), samples, seed)
	if err != nil {
		return Fig3Data{}, err
	}
	pil, err := pingPongMicros(cluster.Pilatus(), samples, seed+1)
	if err != nil {
		return Fig3Data{}, err
	}
	d := Fig3Data{Samples: samples, DoraRaw: dora, PilatusRaw: pil}

	build := func(name string, xs []float64) (Fig3System, error) {
		s := Fig3System{Name: name, Summary: stats.Summarize(xs)}
		var err error
		if s.MeanCI99, err = ci.MeanCI(xs, 0.99); err != nil {
			return s, err
		}
		if s.MedianCI99, err = ci.MedianCI(xs, 0.99); err != nil {
			return s, err
		}
		return s, nil
	}
	if d.Dora, err = build("Piz Dora", dora); err != nil {
		return d, err
	}
	if d.Pilatus, err = build("Pilatus", pil); err != nil {
		return d, err
	}
	kw, err := htest.KruskalWallis(dora, pil)
	if err != nil {
		return d, err
	}
	d.KW = kw
	d.Differs = kw.Significant(0.05)
	d.MeanDiff = d.Pilatus.Summary.Mean - d.Dora.Summary.Mean

	if w != nil {
		fprintf(w, "Figure 3: significance of latency results on two systems (n=%d each)\n\n", samples)
		for _, s := range []Fig3System{d.Dora, d.Pilatus} {
			fprintf(w, "%s:\n", s.Name)
			raw := dora
			if s.Name == "Pilatus" {
				raw = pil
			}
			plot := raw
			if len(plot) > 100000 {
				plot = plot[:100000]
			}
			if err := report.DensityPlot(w, plot, 72, 8); err != nil {
				return d, err
			}
			fprintf(w, "  min %.3g  median %.4g (99%% CI [%.4g, %.4g])  mean %.4g (99%% CI [%.4g, %.4g])  max %.3g µs\n\n",
				s.Summary.Min, s.Summary.Median, s.MedianCI99.Lo, s.MedianCI99.Hi,
				s.Summary.Mean, s.MeanCI99.Lo, s.MeanCI99.Hi, s.Summary.Max)
		}
		fprintf(w, "Kruskal–Wallis: %s → medians differ: %v (paper: significant at 95%%)\n",
			d.KW, d.Differs)
		fprintf(w, "mean difference (Pilatus − Dora): %.4g µs (paper: 0.108 µs)\n", d.MeanDiff)
	}
	return d, nil
}

// Fig4Data is the regenerated Figure 4: quantile regression of latency
// on the system indicator — the base system's (Piz Dora's) per-quantile
// latency ("intercept") and Pilatus's per-quantile difference with 95%
// confidence bands, across quantiles 0.1–0.9 plus the tails.
type Fig4Data struct {
	Points   []qreg.TwoGroupPoint
	MeanDiff float64
	// SignFlip reports whether the difference changes sign across the
	// evaluated quantiles (the paper's headline observation).
	SignFlip bool
}

// Fig4 regenerates Figure 4 from the same samples as Figure 3.
func Fig4(w io.Writer, samples int, seed uint64) (Fig4Data, error) {
	f3, err := Fig3(nil, samples, seed)
	if err != nil {
		return Fig4Data{}, err
	}
	taus := []float64{0.01, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99, 0.999}
	pts, err := qreg.TwoGroupQuantiles(f3.DoraRaw, f3.PilatusRaw, taus, 0.95)
	if err != nil {
		return Fig4Data{}, err
	}
	d := Fig4Data{Points: pts, MeanDiff: f3.MeanDiff}
	neg, pos := false, false
	for _, p := range pts {
		if p.SignificantDif {
			if p.Difference > 0 {
				pos = true
			} else if p.Difference < 0 {
				neg = true
			}
		}
	}
	d.SignFlip = neg && pos

	if w != nil {
		fprintf(w, "Figure 4: quantile regression, Pilatus vs Piz Dora (intercept = Dora)\n\n")
		tbl := &report.Table{Headers: []string{
			"quantile", "Dora latency (µs)", "95% CI", "difference (µs)", "95% CI", "significant",
		}}
		for _, p := range pts {
			tbl.AddRow(
				p.Tau,
				fmtG4(p.Intercept),
				fmtIv(p.InterceptLo, p.InterceptHi),
				fmtG4(p.Difference),
				fmtIv(p.DifferenceLo, p.DifferenceHi),
				p.SignificantDif,
			)
		}
		if err := tbl.Render(w); err != nil {
			return d, err
		}
		var xs, ys []float64
		for _, p := range pts {
			xs = append(xs, p.Tau)
			ys = append(ys, p.Difference)
		}
		if err := report.XYPlot(w, "\ndifference (Pilatus − Dora) vs quantile",
			[]report.Series{{Name: "difference", X: xs, Y: ys, Marker: 'o'}}, 64, 14); err != nil {
			return d, err
		}
		fprintf(w, "mean difference: %.4g µs (paper: 0.108 µs); sign flip across quantiles: %v\n",
			d.MeanDiff, d.SignFlip)
	}
	return d, nil
}

func fmtG4(v float64) string { return fmt6(v) }
func fmtIv(lo, hi float64) string {
	return "[" + fmt6(lo) + ", " + fmt6(hi) + "]"
}
