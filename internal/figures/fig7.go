package figures

import (
	"io"
	"time"

	"repro/internal/bounds"
	"repro/internal/cluster"
	"repro/internal/report"
	"repro/internal/workloads"
)

// Fig7ScalingPoint is one process count of the Fig 7a/b scaling study
// with the three bounds models evaluated at that count.
type Fig7ScalingPoint struct {
	P              int
	TimeMs         float64
	Speedup        float64
	IdealMs        float64
	AmdahlMs       float64
	ParallelOvhdMs float64
}

// Fig7abData is the regenerated Figure 7a/b: measured Pi-calculation
// scaling against the ideal, Amdahl, and parallel-overhead bounds
// (base 20 ms, serial fraction 0.01, the paper's piecewise reduction
// overhead model).
type Fig7abData struct {
	Points     []Fig7ScalingPoint
	Violations []string // measurements beating a bound (model errors)
}

// Fig7ab regenerates Figure 7a/b. reps is the per-point repetition count
// (the paper repeated ten times; the 95% CI was within 5% of the mean).
func Fig7ab(w io.Writer, reps int, seed uint64) (Fig7abData, error) {
	if reps <= 0 {
		reps = 10
	}
	pc := workloads.PiScalingConfig{
		Base:        20 * time.Millisecond,
		Serial:      0.01,
		ReduceBytes: 8,
	}
	ps := []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 32}
	cfg := cluster.PizDaint()
	cfg.Placement = cluster.Scattered
	points, _, err := workloads.SimulatePiScaling(cfg, pc, ps, reps, seed)
	if err != nil {
		return Fig7abData{}, err
	}

	ideal := bounds.Ideal{Base: pc.Base}
	amdahl := bounds.Amdahl{Base: pc.Base, Serial: pc.Serial}
	// The paper's published piecewise constants (0.1 ms·log₂p, …) are an
	// *empirical* model of Piz Daint's reduction; following §5.1 we
	// parametrize the same model shape with microbenchmarks of our own
	// (simulated) machine: the calibrated overhead is 90% of the fastest
	// observed reduction at each process count.
	overhead, err := calibrateReduceOverhead(cfg, ps, pc.ReduceBytes, seed+997)
	if err != nil {
		return Fig7abData{}, err
	}
	parov := bounds.ParallelOverhead{
		Base:     pc.Base,
		Serial:   pc.Serial,
		Overhead: overhead,
		Label:    "parallel overheads",
	}

	var d Fig7abData
	var measured []time.Duration
	for _, pt := range points {
		measured = append(measured, pt.Time)
		d.Points = append(d.Points, Fig7ScalingPoint{
			P:              pt.P,
			TimeMs:         pt.Time.Seconds() * 1e3,
			Speedup:        pt.Speedup,
			IdealMs:        ideal.MinTime(pt.P).Seconds() * 1e3,
			AmdahlMs:       amdahl.MinTime(pt.P).Seconds() * 1e3,
			ParallelOvhdMs: parov.MinTime(pt.P).Seconds() * 1e3,
		})
	}
	eval, err := bounds.Evaluate(ps, measured, ideal, amdahl, parov)
	if err != nil {
		return d, err
	}
	d.Violations = bounds.Violations(eval, 0.02)

	if w != nil {
		fprintf(w, "Figure 7a/b: Pi scaling vs bounds models (base %.0f ms, b = %.2f)\n\n",
			pc.Base.Seconds()*1e3, pc.Serial)
		tbl := &report.Table{Headers: []string{
			"p", "measured (ms)", "ideal (ms)", "Amdahl (ms)", "par-ovhd (ms)", "speedup",
		}}
		var xs, measuredS, idealS, amdahlS, povS []float64
		for _, pt := range d.Points {
			tbl.AddRow(pt.P, fmt6(pt.TimeMs), fmt6(pt.IdealMs), fmt6(pt.AmdahlMs),
				fmt6(pt.ParallelOvhdMs), fmt6(pt.Speedup))
			xs = append(xs, float64(pt.P))
			measuredS = append(measuredS, pt.Speedup)
			idealS = append(idealS, bounds.MaxSpeedup(ideal, pt.P))
			amdahlS = append(amdahlS, bounds.MaxSpeedup(amdahl, pt.P))
			povS = append(povS, bounds.MaxSpeedup(parov, pt.P))
		}
		if err := tbl.Render(w); err != nil {
			return d, err
		}
		series := []report.Series{
			{Name: "measured speedup", X: xs, Y: measuredS, Marker: 'o'},
			{Name: "ideal linear", X: xs, Y: idealS, Marker: '/'},
			{Name: "Amdahl bound", X: xs, Y: amdahlS, Marker: 'a'},
			{Name: "parallel-overhead bound", X: xs, Y: povS, Marker: 'p'},
		}
		if err := report.XYPlot(w, "\nspeedup vs processes", series, 64, 16); err != nil {
			return d, err
		}
		if len(d.Violations) > 0 {
			fprintf(w, "bound violations: %v\n", d.Violations)
		} else {
			fprintf(w, "no bound violations: measured ≥ every model at every p\n")
		}
	}
	return d, nil
}

// calibrateReduceOverhead builds the empirical piecewise reduction
// overhead model f(p): 90% of the fastest of `trials` reductions at each
// requested process count (interpolated log-linearly between measured
// counts is unnecessary — every evaluated p is measured).
func calibrateReduceOverhead(cfg cluster.Config, ps []int, bytes int, seed uint64) (func(int) time.Duration, error) {
	const trials = 60
	floor := map[int]time.Duration{1: 0}
	for _, p := range ps {
		if p <= 1 {
			continue
		}
		m, err := cluster.New(cfg, p, seed+uint64(p)*13)
		if err != nil {
			return nil, err
		}
		best := time.Duration(1<<62 - 1)
		for i := 0; i < trials; i++ {
			if t := m.Reduce(bytes, nil).Root; t < best {
				best = t
			}
			m.Advance(150 * time.Microsecond)
		}
		floor[p] = time.Duration(float64(best) * 0.9)
	}
	return func(p int) time.Duration {
		if f, ok := floor[p]; ok {
			return f
		}
		// Uncalibrated count: fall back to the nearest smaller measured
		// count (still a valid lower bound as reductions grow with p).
		bestP := 1
		for q := range floor {
			if q <= p && q > bestP {
				bestP = q
			}
		}
		return floor[bestP]
	}, nil
}

// Fig7cData is the regenerated Figure 7c: box, violin and combined views
// of a large 64 B ping-pong latency sample on Piz Dora.
type Fig7cData struct {
	Samples int
	Box     report.BoxStats
}

// Fig7c regenerates Figure 7c (paper: 10⁶ samples).
func Fig7c(w io.Writer, samples int, seed uint64) (Fig7cData, error) {
	if samples <= 0 {
		samples = 1000000
	}
	xs, err := pingPongMicros(cluster.PizDora(), samples, seed)
	if err != nil {
		return Fig7cData{}, err
	}
	d := Fig7cData{Samples: samples, Box: report.ComputeBoxStats("latency", xs)}
	if w != nil {
		fprintf(w, "Figure 7c: box and violin plots of %d ping-pong latencies (µs)\n\n", samples)
		groups := map[string][]float64{"latency": xs}
		fprintf(w, "box plot:\n")
		if err := report.BoxPlot(w, groups, 64); err != nil {
			return d, err
		}
		fprintf(w, "\nviolin plot:\n")
		if err := report.ViolinPlot(w, groups, 64); err != nil {
			return d, err
		}
		b := d.Box
		fprintf(w, "\nquartiles [%.4g, %.4g], median %.4g, mean %.4g, 1.5-IQR whiskers [%.4g, %.4g], outside %d\n",
			b.Q1, b.Q3, b.Median, b.Mean, b.WhiskerLo, b.WhiskerHi, b.NumOutside)
	}
	return d, nil
}
