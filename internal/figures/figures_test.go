package figures

import (
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/survey"
)

func TestFig1Shape(t *testing.T) {
	var sb strings.Builder
	d, err := Fig1(&sb, 50, 32768, 2015)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.TimesSec) != 50 {
		t.Fatalf("runs = %d", len(d.TimesSec))
	}
	// Paper shapes: right-skewed completion times (mean > median), a
	// spread of roughly 10–30%, best efficiency in the 70–90% band.
	if d.Summary.Mean <= d.Summary.Median*0.999 {
		t.Errorf("mean %.4g should exceed median %.4g (right skew)",
			d.Summary.Mean, d.Summary.Median)
	}
	if d.SpreadRel < 0.05 || d.SpreadRel > 0.5 {
		t.Errorf("spread = %.1f%%, paper reports ≈20%%", 100*d.SpreadRel)
	}
	if d.EffAtBest < 0.6 || d.EffAtBest > 0.95 {
		t.Errorf("best efficiency = %.1f%%, paper reports 81.8%%", 100*d.EffAtBest)
	}
	// Rates order inversely to times.
	if !(d.TflopsAtMin > d.TflopsMedian && d.TflopsMedian > d.TflopsAtMax) {
		t.Error("rate ordering inconsistent with time ordering")
	}
	// The median CI must bracket the median.
	if d.MedianCI99.Lo > d.Summary.Median || d.MedianCI99.Hi < d.Summary.Median {
		t.Error("median CI does not bracket the median")
	}
	out := sb.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "% of peak") {
		t.Error("rendered output incomplete")
	}
}

func TestFig2NormalizationImproves(t *testing.T) {
	d, err := Fig2(io.Discard, 200000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Variants) != 4 {
		t.Fatalf("variants = %d", len(d.Variants))
	}
	orig, logn, k100, k1000 := d.Variants[0], d.Variants[1], d.Variants[2], d.Variants[3]
	// The raw data is right-skewed and clearly non-normal.
	if orig.Skewness <= 0.2 {
		t.Errorf("original skewness = %.3f, want clearly positive", orig.Skewness)
	}
	// Log transform reduces skew; block means approach normality.
	if math.Abs(logn.Skewness) >= orig.Skewness {
		t.Errorf("log transform did not reduce skew: %.3f vs %.3f",
			logn.Skewness, orig.Skewness)
	}
	if !(k100.QQCorr > orig.QQCorr) {
		t.Errorf("k=100 Q-Q corr %.5f should beat original %.5f", k100.QQCorr, orig.QQCorr)
	}
	if k1000.QQCorr < 0.97 {
		t.Errorf("k=1000 block means should be nearly normal, corr %.5f", k1000.QQCorr)
	}
}

func TestFig3SignificantMedians(t *testing.T) {
	d, err := Fig3(io.Discard, 60000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Differs {
		t.Errorf("medians not significantly different: %v", d.KW)
	}
	// Shape relations from the paper's annotations.
	if !(d.Pilatus.Summary.Min < d.Dora.Summary.Min) {
		t.Error("Pilatus should have the lower minimum")
	}
	if !(d.Pilatus.Summary.Median > d.Dora.Summary.Median) {
		t.Error("Pilatus should have the higher median")
	}
	if !(d.Pilatus.Summary.Max > d.Dora.Summary.Max) {
		t.Error("Pilatus should have the heavier extreme tail")
	}
	if d.MeanDiff < 0.02 || d.MeanDiff > 0.4 {
		t.Errorf("mean difference %.4g µs, paper reports 0.108 µs", d.MeanDiff)
	}
	// Mean CIs are far tighter than the distribution spread at n=60000.
	if d.Dora.MeanCI99.Width() > 0.01 {
		t.Errorf("mean CI suspiciously wide: %v", d.Dora.MeanCI99)
	}
}

func TestFig4SignFlip(t *testing.T) {
	d, err := Fig4(io.Discard, 60000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !d.SignFlip {
		t.Error("expected a significant sign flip across quantiles (the paper's headline)")
	}
	// Low quantiles: Pilatus faster (negative difference); median:
	// Pilatus slower (positive).
	var lowDiff, medDiff float64
	for _, p := range d.Points {
		if p.Tau == 0.01 {
			lowDiff = p.Difference
		}
		if p.Tau == 0.5 {
			medDiff = p.Difference
		}
	}
	if lowDiff >= 0 {
		t.Errorf("p01 difference = %.4g, want < 0 (Pilatus faster at best case)", lowDiff)
	}
	if medDiff <= 0 {
		t.Errorf("median difference = %.4g, want > 0", medDiff)
	}
	// Intercept (Dora quantiles) must be monotone in tau.
	prev := 0.0
	for _, p := range d.Points {
		if p.Intercept < prev {
			t.Errorf("intercepts not monotone at tau=%g", p.Tau)
		}
		prev = p.Intercept
	}
}

func TestFig5PowersOfTwoWin(t *testing.T) {
	d, err := Fig5(io.Discard, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) != 63 {
		t.Fatalf("points = %d, want 63 (p=2..64)", len(d.Points))
	}
	byP := map[int]Fig5Point{}
	for _, pt := range d.Points {
		byP[pt.P] = pt
	}
	// Every power of two must beat its successor count.
	for _, p := range []int{4, 8, 16, 32} {
		if byP[p].MedianUs >= byP[p+1].MedianUs {
			t.Errorf("T(%d)=%.3g should beat T(%d)=%.3g",
				p, byP[p].MedianUs, p+1, byP[p+1].MedianUs)
		}
	}
	// Median completion grows with log p overall: T(64) > T(2).
	if byP[64].MedianUs <= byP[2].MedianUs {
		t.Error("completion should grow with process count")
	}
	// The powers-of-two series should generally lie below the
	// interpolated "others" of similar size: compare each 2^k with the
	// median of counts 2^k+1..2^k+3.
	for _, p := range []int{8, 16, 32} {
		others := (byP[p+1].MedianUs + byP[p+2].MedianUs + byP[p+3].MedianUs) / 3
		if byP[p].MedianUs >= others {
			t.Errorf("p=%d (%.3gµs) should undercut neighbours (%.3gµs)",
				p, byP[p].MedianUs, others)
		}
	}
}

func TestFig6PerProcessHeterogeneity(t *testing.T) {
	d, err := Fig6(io.Discard, 150, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.PerProcess) != 64 || len(d.PerProcess[0]) != 150 {
		t.Fatalf("data shape %dx%d", len(d.PerProcess), len(d.PerProcess[0]))
	}
	// The paper's point: differences across processes are significant.
	if d.Cross.Homogeneous {
		t.Errorf("expected significant per-process differences: %v", d.Cross.ANOVA)
	}
	// Leaves finish before the root, so means differ structurally too.
	if d.Cross.MaxOfMeans <= d.Cross.MedianOfMeans {
		t.Error("max of means should exceed median of means")
	}
}

func TestFig7abBoundsOrdering(t *testing.T) {
	d, err := Fig7ab(io.Discard, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Violations) > 0 {
		t.Errorf("measurements beat bounds: %v", d.Violations)
	}
	for _, pt := range d.Points {
		// Bound ordering: ideal <= Amdahl <= parallel-overhead <= measured.
		if !(pt.IdealMs <= pt.AmdahlMs+1e-9 && pt.AmdahlMs <= pt.ParallelOvhdMs+1e-9) {
			t.Errorf("p=%d: bound ordering broken: %.4g %.4g %.4g",
				pt.P, pt.IdealMs, pt.AmdahlMs, pt.ParallelOvhdMs)
		}
		if pt.TimeMs < pt.ParallelOvhdMs*0.98 {
			t.Errorf("p=%d: measured %.4g below the tightest bound %.4g",
				pt.P, pt.TimeMs, pt.ParallelOvhdMs)
		}
		if pt.Speedup > float64(pt.P) {
			t.Errorf("p=%d: super-linear speedup %.3g", pt.P, pt.Speedup)
		}
	}
	// The parallel-overhead bound explains most of the gap: measured
	// time within 25% of it at the largest p.
	last := d.Points[len(d.Points)-1]
	if last.TimeMs > last.ParallelOvhdMs*1.5 {
		t.Errorf("p=%d: measured %.4g far above the overhead bound %.4g",
			last.P, last.TimeMs, last.ParallelOvhdMs)
	}
}

func TestFig7cBoxStats(t *testing.T) {
	d, err := Fig7c(io.Discard, 60000, 13)
	if err != nil {
		t.Fatal(err)
	}
	b := d.Box
	if !(b.Q1 < b.Median && b.Median < b.Q3) {
		t.Error("quartile ordering broken")
	}
	if b.Mean <= b.Median {
		t.Error("right-skewed latency should have mean > median")
	}
	if b.NumOutside == 0 {
		t.Error("heavy tail should place observations beyond the whiskers")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	var sb strings.Builder
	d, err := Table1(&sb, 2015)
	if err != nil {
		t.Fatal(err)
	}
	a := d.Aggregate
	if a.ApplicablePapers != 95 {
		t.Errorf("applicable = %d", a.ApplicablePapers)
	}
	if a.DesignCounts[survey.Processor] != 79 || a.DesignCounts[survey.CodeAvailable] != 7 {
		t.Error("design counts drifted from the paper")
	}
	if a.AnalysisCounts[survey.Mean] != 51 || a.AnalysisCounts[survey.Variation] != 17 {
		t.Error("analysis counts drifted from the paper")
	}
	if !strings.Contains(sb.String(), "79/95") {
		t.Error("rendered table missing the processor count")
	}
}

func TestMeansExampleExact(t *testing.T) {
	d, err := MeansExample(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if d.MeanTimeSec != 50 || d.RateFromMeanTime != 2 {
		t.Errorf("mean time %.4g / rate %.4g", d.MeanTimeSec, d.RateFromMeanTime)
	}
	if d.ArithMeanOfRates != 4.5 {
		t.Errorf("arith of rates = %.4g", d.ArithMeanOfRates)
	}
	if math.Abs(d.HarmonicMeanRates-2) > 1e-12 {
		t.Errorf("harmonic = %.6g", d.HarmonicMeanRates)
	}
	if math.Abs(d.GeoMeanOfRatios-0.29) > 0.003 {
		t.Errorf("geometric = %.4g, paper says 0.29", d.GeoMeanOfRatios)
	}
}

func TestWeakScalingExtension(t *testing.T) {
	d, err := WeakScaling(io.Discard, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) != 6 {
		t.Fatalf("points = %d", len(d.Points))
	}
	base := d.Points[0].TimeMs
	for _, pt := range d.Points {
		// Weak scaling: time stays within ~25% of the base.
		if pt.TimeMs < base*0.95 || pt.TimeMs > base*1.25 {
			t.Errorf("p=%d: time %.4g ms strays from base %.4g", pt.P, pt.TimeMs, base)
		}
		if pt.Efficiency > 1.02 {
			t.Errorf("p=%d: efficiency %.3f above 1", pt.P, pt.Efficiency)
		}
		// Gustafson bound grows nearly linearly.
		if pt.GustafsonS > float64(pt.P) {
			t.Errorf("p=%d: Gustafson bound %g exceeds p", pt.P, pt.GustafsonS)
		}
	}
	// Efficiency at p=32 clearly below 1 (the reduction isn't free) but
	// far above strong scaling's 24/32 at this size.
	last := d.Points[len(d.Points)-1]
	if last.Efficiency < 0.8 {
		t.Errorf("weak-scaling efficiency at p=32 = %.3f, want > 0.8", last.Efficiency)
	}
}
