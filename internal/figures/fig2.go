package figures

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/htest"
	"repro/internal/report"
	"repro/internal/stats"
)

// Fig2Variant is one panel of Figure 2: a normalization strategy applied
// to the raw ping-pong sample, with its normality diagnostics.
type Fig2Variant struct {
	Name     string
	N        int
	QQCorr   float64 // Q-Q straightness (1 = perfectly normal)
	ShapiroW float64
	ShapiroP float64
	Skewness float64
}

// Fig2Data is the regenerated Figure 2: normalization of ping-pong
// latency samples on the simulated Piz Dora — original data, log
// transform, and CLT block means with k = 100 and k = 1000 — each with
// Q-Q diagnostics.
type Fig2Data struct {
	Samples  int
	Variants []Fig2Variant // original, log, k=100, k=1000
}

// Fig2 regenerates Figure 2 with the given sample count (paper: 10⁶).
func Fig2(w io.Writer, samples int, seed uint64) (Fig2Data, error) {
	if samples <= 0 {
		samples = 1000000
	}
	xs, err := pingPongMicros(cluster.PizDora(), samples, seed)
	if err != nil {
		return Fig2Data{}, err
	}
	d := Fig2Data{Samples: samples}

	logXs, err := stats.LogTransform(xs)
	if err != nil {
		return Fig2Data{}, err
	}
	variants := []struct {
		name string
		data []float64
	}{
		{"a) Original", xs},
		{"b) Log Norm", logXs},
	}
	for _, k := range []int{100, 1000} {
		norm, err := stats.BlockNormalize(xs, k)
		if err != nil {
			return Fig2Data{}, fmt.Errorf("figures: block k=%d: %w", k, err)
		}
		variants = append(variants, struct {
			name string
			data []float64
		}{fmt.Sprintf("c/d) Norm K=%d", k), norm})
	}

	for _, v := range variants {
		fv := Fig2Variant{
			Name:     v.name,
			N:        len(v.data),
			QQCorr:   stats.QQCorrelation(v.data),
			Skewness: stats.Skewness(v.data),
		}
		sample := v.data
		if len(sample) > 5000 {
			sample = sample[:5000]
		}
		if sw, err := htest.ShapiroWilk(sample); err == nil {
			fv.ShapiroW = sw.Stat
			fv.ShapiroP = sw.P
		}
		d.Variants = append(d.Variants, fv)
		if w != nil {
			fprintf(w, "%s (n=%d, skew=%.3f, Q-Q corr=%.5f, Shapiro W=%.4f p=%.3g)\n",
				fv.Name, fv.N, fv.Skewness, fv.QQCorr, fv.ShapiroW, fv.ShapiroP)
			plotData := v.data
			if len(plotData) > 100000 {
				plotData = plotData[:100000]
			}
			if err := report.HistogramPlot(w, plotData, 16, 48); err != nil {
				return d, err
			}
			// The paper's bottom row: normal Q-Q inspection per variant.
			if err := report.QQPlot(w, plotData, 48, 10); err != nil {
				return d, err
			}
			fprintf(w, "\n")
		}
	}
	if w != nil {
		tbl := &report.Table{
			Title:   "Figure 2 summary: normalization strategies vs normality diagnostics",
			Headers: []string{"variant", "n", "skewness", "Q-Q corr", "Shapiro W", "p"},
		}
		for _, v := range d.Variants {
			tbl.AddRow(v.Name, v.N, fmt.Sprintf("%.3f", v.Skewness),
				fmt.Sprintf("%.5f", v.QQCorr), fmt.Sprintf("%.4f", v.ShapiroW),
				fmt.Sprintf("%.3g", v.ShapiroP))
		}
		if err := tbl.Render(w); err != nil {
			return d, err
		}
	}
	return d, nil
}
