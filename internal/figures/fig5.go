package figures

import (
	"io"
	"math/bits"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/report"
	"repro/internal/stats"
)

// Fig5Point is one process count's reduction-time distribution summary
// (the paper plots the maximum across processes per run; we keep the
// full per-run max distribution).
type Fig5Point struct {
	P          int
	PowerOfTwo bool
	MedianUs   float64
	Q1Us       float64
	Q3Us       float64
	MaxUs      float64
}

// Fig5Data is the regenerated Figure 5: completion time of 1,000
// MPI_Reduce-style reductions for every process count 2..64, showing the
// powers-of-two advantage.
type Fig5Data struct {
	Runs   int
	Points []Fig5Point
}

// Fig5 regenerates Figure 5 (runs per process count; paper: 1,000).
func Fig5(w io.Writer, runs int, seed uint64) (Fig5Data, error) {
	if runs <= 0 {
		runs = 1000
	}
	d := Fig5Data{Runs: runs}
	for p := 2; p <= 64; p++ {
		cfg := cluster.PizDaint()
		cfg.Placement = cluster.Scattered // one rank per node, as in the paper's setup
		m, err := cluster.New(cfg, p, seed+uint64(p))
		if err != nil {
			return d, err
		}
		maxes := make([]float64, runs)
		for i := 0; i < runs; i++ {
			res := m.Reduce(8, nil)
			maxes[i] = float64(res.Max()) / float64(time.Microsecond)
			m.Advance(100 * time.Microsecond)
		}
		s := stats.Sorted(maxes)
		d.Points = append(d.Points, Fig5Point{
			P:          p,
			PowerOfTwo: bits.OnesCount(uint(p)) == 1,
			MedianUs:   stats.Quantile(s, 0.5),
			Q1Us:       stats.Quantile(s, 0.25),
			Q3Us:       stats.Quantile(s, 0.75),
			MaxUs:      stats.Max(maxes),
		})
	}
	if w != nil {
		fprintf(w, "Figure 5: %d MPI_Reduce runs per process count (maximum across processes)\n\n", runs)
		var px, py, ox, oy []float64
		for _, pt := range d.Points {
			if pt.PowerOfTwo {
				px = append(px, float64(pt.P))
				py = append(py, pt.MedianUs)
			} else {
				ox = append(ox, float64(pt.P))
				oy = append(oy, pt.MedianUs)
			}
		}
		series := []report.Series{
			{Name: "powers of two (median)", X: px, Y: py, Marker: 'P'},
			{Name: "others (median)", X: ox, Y: oy, Marker: '.'},
		}
		if err := report.XYPlot(w, "completion time (µs) vs processes", series, 64, 16); err != nil {
			return d, err
		}
	}
	return d, nil
}

// Fig6Data is the regenerated Figure 6: the per-process completion-time
// distributions of repeated reductions on 64 processes, and the ANOVA
// verdict on whether processes may be pooled (Rule 10).
type Fig6Data struct {
	Runs       int
	PerProcess [][]float64 // [rank][run] in µs
	Cross      bench.CrossProcess
}

// Fig6 regenerates Figure 6 (paper: 1,000 runs on 64 processes on Piz
// Daint, with visible per-process differences).
func Fig6(w io.Writer, runs int, seed uint64) (Fig6Data, error) {
	if runs <= 0 {
		runs = 1000
	}
	cfg := cluster.PizDaint()
	cfg.Placement = cluster.Scattered
	// A fraction of nodes runs OS daemons with short periods so some
	// ranks are systematically slower (the paper's "significant
	// difference for some processes").
	cfg.DaemonNodes = 12
	cfg.DaemonPeriod = 250 * time.Microsecond
	cfg.DaemonWindow = 25 * time.Microsecond
	const p = 64
	m, err := cluster.New(cfg, p, seed)
	if err != nil {
		return Fig6Data{}, err
	}
	d := Fig6Data{Runs: runs, PerProcess: make([][]float64, p)}
	for i := 0; i < runs; i++ {
		res := m.Reduce(8, nil)
		for r, t := range res.PerRank {
			d.PerProcess[r] = append(d.PerProcess[r], float64(t)/float64(time.Microsecond))
		}
		m.Advance(130 * time.Microsecond)
	}
	cross, err := bench.SummarizeAcrossProcesses(d.PerProcess, 0.05)
	if err != nil {
		return d, err
	}
	d.Cross = cross
	if w != nil {
		fprintf(w, "Figure 6: variation across %d processes in MPI_Reduce (%d runs)\n\n", p, runs)
		groups := map[string][]float64{}
		for _, r := range []int{0, 1, 8, 16, 24, 32, 40, 48, 56, 63} {
			groups[fmtRank(r)] = d.PerProcess[r]
		}
		if err := report.BoxPlot(w, groups, 56); err != nil {
			return d, err
		}
		fprintf(w, "\nANOVA across all %d processes: %s\n", p, cross.ANOVA.TestResult)
		fprintf(w, "processes statistically homogeneous: %v (paper: significant differences)\n",
			cross.Homogeneous)
		fprintf(w, "summaries across processes: max of means %.4g µs, median of means %.4g µs\n",
			cross.MaxOfMeans, cross.MedianOfMeans)
	}
	return d, nil
}

func fmtRank(r int) string {
	if r < 10 {
		return "rank 0" + string(rune('0'+r))
	}
	return "rank " + string(rune('0'+r/10)) + string(rune('0'+r%10))
}
