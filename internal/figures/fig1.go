package figures

import (
	"fmt"
	"io"

	"repro/internal/ci"
	"repro/internal/cluster"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig1Data is the regenerated Figure 1: the distribution of HPL
// completion times over repeated runs, with the annotated summary
// statistics the paper overlays on the density (min, median, arithmetic
// mean, 95% quantile, max, and the 99% CI of the median), plus the
// corresponding Tflop/s values.
type Fig1Data struct {
	Runs         int
	TimesSec     []float64
	Summary      stats.Summary
	MedianCI99   ci.Interval
	PeakTflops   float64
	TflopsAtMin  float64 // fastest run = highest rate
	TflopsAtMax  float64 // slowest run = lowest rate
	TflopsMean   float64 // rate of the mean time
	TflopsMedian float64
	Tflops95Q    float64 // rate at the 95% completion-time quantile
	SpreadRel    float64 // (max−min)/min — the paper reports ≈20%
	EffAtBest    float64 // best run's fraction of peak (paper: 81.8%)
}

// Fig1 regenerates Figure 1. The defaults (runs = 50, n = 314k-scaled)
// follow the paper: 50 HPL executions on a simulated 64-node Piz Daint
// partition whose per-node rate approximates the hybrid CPU+GPU nodes
// (94.5 Tflop/s aggregate peak). Pass a smaller n for quick runs.
func Fig1(w io.Writer, runs, n int, seed uint64) (Fig1Data, error) {
	if runs <= 0 {
		runs = 50
	}
	if n <= 0 {
		n = 314000
	}
	cfg := cluster.PizDaint()
	cfg.Nodes = 64
	// Approximate the K20X-accelerated node: 1.48 Tflop/s per node over
	// 8 ranks, with GPU-era multi-rail injection bandwidth.
	cfg.FlopsPerSec = 1.845e11
	cfg.BandwidthBps = 4e10
	ranks := cfg.Nodes * cfg.CoresPerNode

	hplCfg := workloads.HPLConfig{
		N: n, NB: max(n/307, 8), P: 16, Q: ranks / 16,
		// A fresh batch allocation per run (§4.1.2) dominates the
		// run-to-run spread; congestion adds a one-sided tail.
		RunSigma: 0.025,
		RunSkew:  0.045,
	}
	m, err := cluster.New(cfg, hplCfg.Ranks(), seed)
	if err != nil {
		return Fig1Data{}, err
	}
	times, results, err := workloads.HPLSeries(m, hplCfg, runs)
	if err != nil {
		return Fig1Data{}, err
	}

	d := Fig1Data{Runs: runs, TimesSec: times}
	d.Summary = stats.Summarize(times)
	if iv, err := ci.MedianCI(times, 0.99); err == nil {
		d.MedianCI99 = iv
	}
	flops := results[0].Flops
	toTflops := func(sec float64) float64 { return flops / sec / 1e12 }
	d.PeakTflops = cfg.FlopsPerSec * float64(ranks) / 1e12
	d.TflopsAtMin = toTflops(d.Summary.Min)
	d.TflopsAtMax = toTflops(d.Summary.Max)
	d.TflopsMean = toTflops(d.Summary.Mean)
	d.TflopsMedian = toTflops(d.Summary.Median)
	d.Tflops95Q = toTflops(d.Summary.P95)
	d.SpreadRel = (d.Summary.Max - d.Summary.Min) / d.Summary.Min
	d.EffAtBest = d.TflopsAtMin / d.PeakTflops

	if w != nil {
		fprintf(w, "Figure 1: distribution of completion times for %d HPL runs (N=%d, %d ranks)\n\n",
			runs, n, ranks)
		if err := report.DensityPlot(w, times, 72, 12); err != nil {
			return d, err
		}
		fprintf(w, "\n")
		tbl := &report.Table{Headers: []string{"statistic", "completion (s)", "rate (Tflop/s)", "% of peak"}}
		row := func(name string, sec, rate float64) {
			tbl.AddRow(name, fmt6(sec), fmt6(rate), fmt6(100*rate/d.PeakTflops))
		}
		row("min (best)", d.Summary.Min, d.TflopsAtMin)
		row("median", d.Summary.Median, d.TflopsMedian)
		row("arithmetic mean", d.Summary.Mean, d.TflopsMean)
		row("95% quantile", d.Summary.P95, d.Tflops95Q)
		row("max (worst)", d.Summary.Max, d.TflopsAtMax)
		if err := tbl.Render(w); err != nil {
			return d, err
		}
		fprintf(w, "99%% CI of the median: [%.4g, %.4g] s\n", d.MedianCI99.Lo, d.MedianCI99.Hi)
		fprintf(w, "relative spread (max-min)/min: %.1f%%  (paper: up to ~20%%)\n", 100*d.SpreadRel)
		fprintf(w, "theoretical peak: %.4g Tflop/s; best run achieves %.1f%% of peak (paper: 81.8%%)\n",
			d.PeakTflops, 100*d.EffAtBest)
	}
	return d, nil
}

func fmt6(v float64) string { return fmt.Sprintf("%.4g", v) }
