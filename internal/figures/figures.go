// Package figures regenerates every table and figure of the paper's
// evaluation from this repository's own substrates (see DESIGN.md's
// per-experiment index). Each generator returns the computed data for
// programmatic checks (tests, EXPERIMENTS.md) and renders a text version
// of the figure to the supplied writer (pass io.Discard to skip).
//
// Sizes are parameters so the full paper-scale versions run from
// cmd/figures while tests and benchmarks use scaled-down variants; the
// *shapes* under comparison are size-invariant (see EXPERIMENTS.md).
package figures

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
)

// pingPongMicros draws n one-way 64 B ping-pong latency estimates (in
// microseconds) between two ranks on different nodes of the configured
// system.
func pingPongMicros(cfg cluster.Config, n int, seed uint64) ([]float64, error) {
	// The paper's ping-pong nodes show no OS-daemon spikes (Dora's
	// 10⁶-sample maximum is 7.2 µs): model a dedicated allocation away
	// from service nodes.
	cfg.DaemonNodes = 0
	// Two processes on different compute nodes (§4.1.2).
	ranks := cfg.CoresPerNode + 1
	m, err := cluster.New(cfg, ranks, seed)
	if err != nil {
		return nil, err
	}
	raw := m.PingPong(0, ranks-1, 64, n)
	out := make([]float64, len(raw))
	for i, d := range raw {
		out[i] = float64(d) / float64(time.Microsecond)
	}
	return out, nil
}

func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
