package figures

import (
	"fmt"
	"io"

	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/survey"
)

// Table1Data is the regenerated Table 1 plus the in-text survey
// statistics of §2–3.
type Table1Data struct {
	Aggregate survey.Table1
}

// Table1 regenerates the literature-survey table from the synthetic
// per-paper dataset (exact published marginals; see DESIGN.md).
func Table1(w io.Writer, seed uint64) (Table1Data, error) {
	ds, err := survey.Synthetic(survey.PaperMarginals(), seed)
	if err != nil {
		return Table1Data{}, err
	}
	agg := ds.Aggregate()
	d := Table1Data{Aggregate: agg}
	if w == nil {
		return d, nil
	}

	fprintf(w, "Table 1: literature survey summary (%d applicable of %d papers)\n\n",
		agg.ApplicablePapers, len(ds.Papers))
	if err := ds.RenderMatrix(w); err != nil {
		return d, err
	}
	fprintf(w, "\n")
	tbl := &report.Table{Title: "Experimental design documentation",
		Headers: []string{"class", "papers w/ sufficient info", "fraction"}}
	for c := survey.DesignClass(0); c < survey.NumDesignClasses; c++ {
		n := agg.DesignCounts[c]
		tbl.AddRow(c.String(), fmt.Sprintf("%d/%d", n, agg.ApplicablePapers),
			fmt.Sprintf("%.0f%%", 100*float64(n)/float64(agg.ApplicablePapers)))
	}
	if err := tbl.Render(w); err != nil {
		return d, err
	}

	fprintf(w, "\n")
	tbl2 := &report.Table{Title: "Data analysis",
		Headers: []string{"row", "papers", "fraction"}}
	for r := survey.AnalysisRow(0); r < survey.NumAnalysisRows; r++ {
		n := agg.AnalysisCounts[r]
		tbl2.AddRow(r.String(), fmt.Sprintf("%d/%d", n, agg.ApplicablePapers),
			fmt.Sprintf("%.0f%%", 100*float64(n)/float64(agg.ApplicablePapers)))
	}
	if err := tbl2.Render(w); err != nil {
		return d, err
	}

	fprintf(w, "\n")
	tbl3 := &report.Table{Title: "Per conference-year design-score box summaries (0-9 checks per paper)",
		Headers: []string{"conference", "year", "applicable", "min", "median", "max"}}
	for _, c := range agg.Cells {
		tbl3.AddRow(c.Conference, c.Year, c.Applicable, c.Min,
			fmt.Sprintf("%.1f", c.Median), c.Max)
	}
	if err := tbl3.Render(w); err != nil {
		return d, err
	}

	fprintf(w, "\nIn-text statistics (§2–3):\n")
	fprintf(w, "  speedup papers: %d, of which %d (%.0f%%) omit the absolute base case\n",
		agg.Speedups, agg.SpeedupsWithoutBase,
		100*float64(agg.SpeedupsWithoutBase)/float64(agg.Speedups))
	fprintf(w, "  papers specifying the exact averaging method: %d of %d summarizing papers\n",
		agg.SpecifyMethod, agg.AnalysisCounts[survey.Mean])
	fprintf(w, "  papers with fully unambiguous units: %d of %d\n",
		agg.UnambiguousUnits, agg.ApplicablePapers)
	fprintf(w, "  papers reporting confidence intervals: %d of %d\n",
		agg.ReportCIs, agg.ApplicablePapers)
	return d, nil
}

// MeansExampleData is the worked §3.1.1 HPL-means example.
type MeansExampleData struct {
	MeanTimeSec       float64 // 50
	RateFromMeanTime  float64 // 2 Gflop/s
	ArithMeanOfRates  float64 // 4.5 Gflop/s (wrong)
	HarmonicMeanRates float64 // 2 Gflop/s (correct)
	GeoMeanOfRatios   float64 // ≈0.29 (incorrect efficiency 2.9 Gflop/s)
}

// MeansExample reproduces the paper's worked example: three 100 Gflop
// runs at (10, 100, 40) seconds, summarized every way the paper
// discusses.
func MeansExample(w io.Writer) (MeansExampleData, error) {
	times := []float64{10, 100, 40}
	const work = 100.0 // Gflop
	const peak = 10.0  // Gflop/s

	rates := make([]float64, len(times))
	ratios := make([]float64, len(times))
	for i, t := range times {
		rates[i] = work / t
		ratios[i] = rates[i] / peak
	}
	var d MeansExampleData
	d.MeanTimeSec = stats.Mean(times)
	d.RateFromMeanTime = work / d.MeanTimeSec
	d.ArithMeanOfRates = stats.Mean(rates)
	h, err := stats.HarmonicMean(rates)
	if err != nil {
		return d, err
	}
	d.HarmonicMeanRates = h
	g, err := stats.GeometricMean(ratios)
	if err != nil {
		return d, err
	}
	d.GeoMeanOfRatios = g

	if w != nil {
		fprintf(w, "§3.1.1 worked example: 100 Gflop runs at (10, 100, 40) s\n")
		tbl := &report.Table{Headers: []string{"summary", "value", "verdict"}}
		tbl.AddRow("arithmetic mean of times", fmt.Sprintf("%.4g s", d.MeanTimeSec), "correct for costs")
		tbl.AddRow("rate from mean time", fmt.Sprintf("%.4g Gflop/s", d.RateFromMeanTime), "correct")
		tbl.AddRow("arithmetic mean of rates", fmt.Sprintf("%.4g Gflop/s", d.ArithMeanOfRates), "WRONG (Rule 3)")
		tbl.AddRow("harmonic mean of rates", fmt.Sprintf("%.4g Gflop/s", d.HarmonicMeanRates), "correct")
		tbl.AddRow("geometric mean of peak ratios", fmt.Sprintf("%.4g (=%.2g Gflop/s)", d.GeoMeanOfRatios, d.GeoMeanOfRatios*peak), "incorrect (Rule 4)")
		if err := tbl.Render(w); err != nil {
			return d, err
		}
	}
	return d, nil
}
