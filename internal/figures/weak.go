package figures

import (
	"io"
	"time"

	"repro/internal/bounds"
	"repro/internal/cluster"
	"repro/internal/report"
	"repro/internal/workloads"
)

// WeakScalingPoint is one process count of the weak-scaling extension
// experiment.
type WeakScalingPoint struct {
	P          int
	TimeMs     float64
	Efficiency float64 // T(1)/T(p), 1 = perfect weak scaling
	GustafsonS float64 // Gustafson's scaled-speedup bound
}

// WeakScalingData is the §4.2 extension experiment: the Pi workload under
// *weak* scaling (problem size grown linearly with p — the growth
// function the paper requires papers to state), against Gustafson's
// bound. The paper's Fig 7 is the strong-scaling counterpart.
type WeakScalingData struct {
	Points []WeakScalingPoint
}

// WeakScaling runs the weak-scaling study (reps repetitions per point).
func WeakScaling(w io.Writer, reps int, seed uint64) (WeakScalingData, error) {
	if reps <= 0 {
		reps = 10
	}
	pc := workloads.PiScalingConfig{
		Base:        20 * time.Millisecond,
		Serial:      0.01,
		ReduceBytes: 8,
		Mode:        workloads.WeakScaling,
	}
	ps := []int{1, 2, 4, 8, 16, 32}
	cfg := cluster.PizDaint()
	cfg.Placement = cluster.Scattered
	points, _, err := workloads.SimulatePiScaling(cfg, pc, ps, reps, seed)
	if err != nil {
		return WeakScalingData{}, err
	}
	g := bounds.Gustafson{Base: pc.Base, Serial: pc.Serial}

	var d WeakScalingData
	for _, pt := range points {
		d.Points = append(d.Points, WeakScalingPoint{
			P:          pt.P,
			TimeMs:     pt.Time.Seconds() * 1e3,
			Efficiency: pt.Speedup, // T(1)/T(p) under weak scaling
			GustafsonS: g.ScaledSpeedup(pt.P),
		})
	}

	if w != nil {
		fprintf(w, "Weak-scaling extension (§4.2): Pi workload, problem size linear in p\n")
		fprintf(w, "mode: %s\n\n", pc.Mode)
		tbl := &report.Table{Headers: []string{
			"p", "time (ms)", "efficiency T(1)/T(p)", "Gustafson scaled-speedup bound",
		}}
		for _, pt := range d.Points {
			tbl.AddRow(pt.P, fmt6(pt.TimeMs), fmt6(pt.Efficiency), fmt6(pt.GustafsonS))
		}
		if err := tbl.Render(w); err != nil {
			return d, err
		}
		fprintf(w, "\nideal weak scaling keeps time flat at %.4g ms; the growing gap is the\n",
			pc.Base.Seconds()*1e3)
		fprintf(w, "Θ(log p) reduction plus per-rank noise — exactly the overheads Fig 7's\n")
		fprintf(w, "strong-scaling bounds isolate.\n")
	}
	return d, nil
}
