// Package ci implements the confidence-interval machinery of Hoefler &
// Belli (SC'15): parametric Student-t intervals around the mean
// (paper §3.1.2), nonparametric rank-based intervals around the median and
// arbitrary quantiles following Le Boudec (paper §3.1.3), and the
// sample-size planning rules of §4.2.2 (analytic for normal data, a
// sequential CI-width stopping rule otherwise).
package ci

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/stats"
)

// Interval is a two-sided confidence interval with its confidence level
// (e.g. 0.95) and the point estimate it brackets.
type Interval struct {
	Lo, Hi     float64
	Confidence float64
	Center     float64 // the point estimate (mean, median, quantile)
}

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// RelativeWidth returns the half-width relative to the absolute center,
// the "error level" e of §4.2.2; NaN when the center is zero.
func (iv Interval) RelativeWidth() float64 {
	if iv.Center == 0 {
		return math.NaN()
	}
	return (iv.Hi - iv.Lo) / 2 / math.Abs(iv.Center)
}

// Contains reports whether x lies inside the interval (inclusive).
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Overlaps reports whether two intervals share any point. Per §3.2,
// non-overlapping 1−α intervals imply a statistically significant
// difference at that level (the converse does not hold).
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// String renders the interval with its confidence level.
func (iv Interval) String() string {
	return fmt.Sprintf("%.6g [%.6g, %.6g] (%.0f%% CI)",
		iv.Center, iv.Lo, iv.Hi, iv.Confidence*100)
}

// Errors returned by the interval constructors.
var (
	ErrTooFewSamples = errors.New("ci: too few samples")
	ErrConfidence    = errors.New("ci: confidence level must be in (0, 1)")
)

// MeanCI returns the Student-t confidence interval for the mean of xs at
// the given confidence level (e.g. 0.99):
//
//	[x̄ − t(n−1, α/2)·s/√n,  x̄ + t(n−1, α/2)·s/√n]
//
// It assumes xs are independent samples of a (near) normal distribution;
// callers should verify normality first (Rule 6).
func MeanCI(xs []float64, confidence float64) (Interval, error) {
	if confidence <= 0 || confidence >= 1 {
		return Interval{}, ErrConfidence
	}
	n := len(xs)
	if n < 2 {
		return Interval{}, ErrTooFewSamples
	}
	return meanCIFromMoments(stats.Mean(xs), stats.StdDev(xs), n, confidence), nil
}

// MeanCISample is MeanCI over a pre-analyzed Sample, reusing its cached
// single-pass (Welford) moments instead of re-scanning the data. The
// Welford recurrence can differ from the two-pass mean/deviation in the
// last ulp; both are valid estimates of the same interval.
func MeanCISample(s *stats.Sample, confidence float64) (Interval, error) {
	if confidence <= 0 || confidence >= 1 {
		return Interval{}, ErrConfidence
	}
	if s.N() < 2 {
		return Interval{}, ErrTooFewSamples
	}
	return meanCIFromMoments(s.Mean(), s.StdDev(), s.N(), confidence), nil
}

func meanCIFromMoments(mean, sd float64, n int, confidence float64) Interval {
	alpha := 1 - confidence
	tcrit := dist.StudentT{Nu: float64(n - 1)}.Quantile(1 - alpha/2)
	half := tcrit * sd / math.Sqrt(float64(n))
	return Interval{
		Lo:         mean - half,
		Hi:         mean + half,
		Confidence: confidence,
		Center:     mean,
	}
}

// MedianCI returns the nonparametric rank-based confidence interval for
// the median (QuantileCI at p = 0.5).
func MedianCI(xs []float64, confidence float64) (Interval, error) {
	return QuantileCI(xs, 0.5, confidence)
}

// MedianCISample is MedianCI over a pre-analyzed Sample (QuantileCISample
// at p = 0.5).
func MedianCISample(s *stats.Sample, confidence float64) (Interval, error) {
	return QuantileCISample(s, 0.5, confidence)
}

// QuantileCI returns Le Boudec's distribution-free confidence interval
// for the p-quantile of xs. The interval spans the order statistics at
// ranks
//
//	⌊np − z(α/2)·√(np(1−p))⌋   and   ⌈np + z(α/2)·√(np(1−p))⌉ + 1
//
// (1-based), clamped to the sample. These intervals are conservative
// (possibly slightly wider than necessary) because only measured values
// can serve as bounds; they may be asymmetric for skewed data. At least
// six observations are required to bound the median nonparametrically
// (§4.2.2 notes n > 5).
func QuantileCI(xs []float64, p, confidence float64) (Interval, error) {
	if confidence <= 0 || confidence >= 1 {
		return Interval{}, ErrConfidence
	}
	if p <= 0 || p >= 1 {
		return Interval{}, fmt.Errorf("ci: quantile p=%g outside (0,1)", p)
	}
	if len(xs) < 6 {
		return Interval{}, ErrTooFewSamples
	}
	return quantileCISorted(stats.Sorted(xs), p, confidence), nil
}

// QuantileCISample is QuantileCI over a pre-analyzed Sample, reusing its
// cached sorted view instead of re-sorting. The interval is bit-identical
// to QuantileCI on the same data.
func QuantileCISample(s *stats.Sample, p, confidence float64) (Interval, error) {
	if confidence <= 0 || confidence >= 1 {
		return Interval{}, ErrConfidence
	}
	if p <= 0 || p >= 1 {
		return Interval{}, fmt.Errorf("ci: quantile p=%g outside (0,1)", p)
	}
	if s.N() < 6 {
		return Interval{}, ErrTooFewSamples
	}
	return quantileCISorted(s.Sorted(), p, confidence), nil
}

func quantileCISorted(s []float64, p, confidence float64) Interval {
	n := len(s)
	alpha := 1 - confidence
	z := dist.NormalQuantile(1 - alpha/2)
	nf := float64(n)
	sd := z * math.Sqrt(nf*p*(1-p))
	loRank := int(math.Floor(nf*p - sd)) // 1-based lower rank
	hiRank := int(math.Ceil(nf*p+sd)) + 1
	if loRank < 1 {
		loRank = 1
	}
	if hiRank > n {
		hiRank = n
	}
	return Interval{
		Lo:         s[loRank-1],
		Hi:         s[hiRank-1],
		Confidence: confidence,
		Center:     stats.Quantile(s, p),
	}
}

// QuantileCIHist is Le Boudec's distribution-free quantile interval
// computed from a log-bucketed histogram instead of a raw sample: the
// same rank arithmetic as QuantileCI, with ranks resolved through the
// histogram's cumulative counts. This is how tail percentiles (p99,
// p999) of service workloads get nonparametric CIs at millions of
// recorded requests without materializing an O(n) slice — the histogram
// is the summarized distribution Rule 5/6 asks us to model. Interval
// endpoints inherit the histogram's ≤1/64 bucket quantization on top of
// the usual order-statistic conservatism.
func QuantileCIHist(h *stats.LogHistogram, p, confidence float64) (Interval, error) {
	if confidence <= 0 || confidence >= 1 {
		return Interval{}, ErrConfidence
	}
	if p <= 0 || p >= 1 {
		return Interval{}, fmt.Errorf("ci: quantile p=%g outside (0,1)", p)
	}
	n := h.Count()
	if n < 6 {
		return Interval{}, ErrTooFewSamples
	}
	alpha := 1 - confidence
	z := dist.NormalQuantile(1 - alpha/2)
	nf := float64(n)
	sd := z * math.Sqrt(nf*p*(1-p))
	loRank := int64(math.Floor(nf*p - sd)) // 1-based lower rank
	hiRank := int64(math.Ceil(nf*p+sd)) + 1
	if loRank < 1 {
		loRank = 1
	}
	if hiRank > int64(n) {
		hiRank = int64(n)
	}
	return Interval{
		Lo:         h.ValueAtRank(uint64(loRank)),
		Hi:         h.ValueAtRank(uint64(hiRank)),
		Confidence: confidence,
		Center:     h.Quantile(p),
	}, nil
}

// RequiredSamples is the §4.2.2 sample-size planner: the number of
// measurements needed so the 1−α confidence interval stays within
// ±relErr of the estimate, judged from a pilot sample. It is the entry
// point callers (e.g. the regression gate's power check) should use;
// today it applies the normal-approximation rule of
// RequiredSamplesNormal, the paper's analytic planning formula.
func RequiredSamples(pilot []float64, confidence, relErr float64) (int, error) {
	return RequiredSamplesNormal(pilot, confidence, relErr)
}

// RequiredSamplesNormal returns the number of measurements needed so that
// the 1−α confidence interval of the mean lies within ±e·x̄, computed from
// a pilot sample as n = (s·t(n−1, α/2) / (e·x̄))² (§4.2.2). The result is
// never below the pilot size's minimum of 2.
func RequiredSamplesNormal(pilot []float64, confidence, relErr float64) (int, error) {
	if confidence <= 0 || confidence >= 1 {
		return 0, ErrConfidence
	}
	if relErr <= 0 {
		return 0, fmt.Errorf("ci: relative error %g must be positive", relErr)
	}
	n := len(pilot)
	if n < 2 {
		return 0, ErrTooFewSamples
	}
	mean := stats.Mean(pilot)
	if mean == 0 {
		return 0, fmt.Errorf("ci: zero pilot mean, relative error undefined")
	}
	s := stats.StdDev(pilot)
	alpha := 1 - confidence
	tcrit := dist.StudentT{Nu: float64(n - 1)}.Quantile(1 - alpha/2)
	need := math.Pow(s*tcrit/(relErr*math.Abs(mean)), 2)
	res := int(math.Ceil(need))
	if res < 2 {
		res = 2
	}
	return res, nil
}

// StoppingRule implements the sequential nonparametric stopping criterion
// of §4.2.2: after each batch of k measurements, recompute the 1−α CI of
// the target quantile and stop once its relative width is at most the
// requested error level. MaxN bounds the total effort.
type StoppingRule struct {
	Confidence float64 // e.g. 0.95
	RelErr     float64 // e.g. 0.05 → CI half-width within 5% of the estimate
	Quantile   float64 // which quantile to bound, e.g. 0.5 for the median
	BatchSize  int     // recheck cadence k (>= 1)
	MaxN       int     // hard ceiling on measurements (0 = 10,000)
}

// Done reports whether the sample already satisfies the stopping
// criterion, returning the interval that was checked. Samples smaller
// than 6 never satisfy it (nonparametric CIs need n > 5).
func (r StoppingRule) Done(xs []float64) (bool, Interval) {
	iv, err := QuantileCI(xs, r.quantile(), r.Confidence)
	if err != nil {
		return false, Interval{}
	}
	rw := iv.RelativeWidth()
	return !math.IsNaN(rw) && rw <= r.RelErr, iv
}

func (r StoppingRule) quantile() float64 {
	if r.Quantile == 0 {
		return 0.5
	}
	return r.Quantile
}

func (r StoppingRule) batch() int {
	if r.BatchSize < 1 {
		return 1
	}
	return r.BatchSize
}

func (r StoppingRule) maxN() int {
	if r.MaxN <= 0 {
		return 10000
	}
	return r.MaxN
}

// Collect repeatedly invokes measure, rechecking the criterion every
// BatchSize observations, and returns the collected sample together with
// the final interval. It stops at MaxN even if the target width was not
// reached; callers can detect that by re-testing Done.
func (r StoppingRule) Collect(measure func() float64) ([]float64, Interval) {
	var xs []float64
	var iv Interval
	k := r.batch()
	max := r.maxN()
	for len(xs) < max {
		for i := 0; i < k && len(xs) < max; i++ {
			xs = append(xs, measure())
		}
		var done bool
		done, iv = r.Done(xs)
		if done {
			break
		}
	}
	return xs, iv
}
