package ci

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/dist"
	"repro/internal/stats"
)

func TestMeanCIKnownValue(t *testing.T) {
	// Sample {1..10}: mean 5.5, sd ≈ 3.02765, t(9, 0.975) ≈ 2.26216.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	iv, err := MeanCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	wantHalf := 2.2621571627 * 3.0276503540974917 / math.Sqrt(10)
	if math.Abs(iv.Center-5.5) > 1e-12 {
		t.Errorf("center = %g", iv.Center)
	}
	if math.Abs((iv.Hi-iv.Lo)/2-wantHalf) > 1e-6 {
		t.Errorf("half-width = %g, want %g", (iv.Hi-iv.Lo)/2, wantHalf)
	}
	if !iv.Contains(5.5) {
		t.Error("CI must contain the sample mean")
	}
}

func TestMeanCIErrors(t *testing.T) {
	if _, err := MeanCI([]float64{1}, 0.95); err != ErrTooFewSamples {
		t.Errorf("n=1: err = %v", err)
	}
	if _, err := MeanCI([]float64{1, 2}, 1.5); err != ErrConfidence {
		t.Errorf("conf=1.5: err = %v", err)
	}
	if _, err := MeanCI([]float64{1, 2}, 0); err != ErrConfidence {
		t.Errorf("conf=0: err = %v", err)
	}
}

// TestMeanCICoverage checks the frequentist guarantee: across many
// repetitions, the 95% CI contains the true mean close to 95% of the time.
func TestMeanCICoverage(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	const trials = 2000
	const n = 20
	const mu = 10.0
	hits := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = mu + 2*rng.NormFloat64()
		}
		iv, err := MeanCI(xs, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(mu) {
			hits++
		}
	}
	cov := float64(hits) / trials
	// Binomial se ≈ sqrt(0.95·0.05/2000) ≈ 0.005; allow 4σ.
	if math.Abs(cov-0.95) > 0.02 {
		t.Errorf("empirical coverage %.3f, want ≈0.95", cov)
	}
}

// TestMedianCICoverage checks the nonparametric interval's coverage on a
// skewed (log-normal) distribution whose true median is known.
func TestMedianCICoverage(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	const trials = 1500
	const n = 51
	trueMedian := math.Exp(0.0) // median of LogNormal(0, 1) = 1
	hits := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = math.Exp(rng.NormFloat64())
		}
		iv, err := MedianCI(xs, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(trueMedian) {
			hits++
		}
	}
	cov := float64(hits) / trials
	// Rank CIs are conservative; coverage must be at least nominal
	// (within noise) and not wildly above.
	if cov < 0.93 {
		t.Errorf("median CI coverage %.3f, want >= ~0.95 (conservative)", cov)
	}
}

func TestQuantileCIRanksLeBoudec(t *testing.T) {
	// Le Boudec's example shape: for n=100, p=0.5, 95% CI the ranks are
	// floor(50 - 1.96*5) = 40 and ceil(50 + 1.96*5)+1 = 61.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // sorted 1..100
	}
	iv, err := QuantileCI(xs, 0.5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 40 || iv.Hi != 61 {
		t.Errorf("median CI ranks = [%g, %g], want [40, 61]", iv.Lo, iv.Hi)
	}
	if iv.Center != 50.5 {
		t.Errorf("median = %g, want 50.5", iv.Center)
	}
}

func TestQuantileCIBoundsClamped(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7}
	iv, err := QuantileCI(xs, 0.9, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo < 1 || iv.Hi > 7 {
		t.Errorf("CI [%g, %g] escapes the sample", iv.Lo, iv.Hi)
	}
	if iv.Lo > iv.Hi {
		t.Error("inverted interval")
	}
}

func TestQuantileCIErrors(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if _, err := QuantileCI(xs, 0.5, 0.95); err != ErrTooFewSamples {
		t.Errorf("n=5: err = %v, want ErrTooFewSamples", err)
	}
	six := []float64{1, 2, 3, 4, 5, 6}
	if _, err := QuantileCI(six, 0, 0.95); err == nil {
		t.Error("p=0 should error")
	}
	if _, err := QuantileCI(six, 0.5, 0); err != ErrConfidence {
		t.Error("conf=0 should error")
	}
}

func TestIntervalOverlap(t *testing.T) {
	a := Interval{Lo: 1, Hi: 3}
	b := Interval{Lo: 2.5, Hi: 4}
	c := Interval{Lo: 3.5, Hi: 5}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b overlap")
	}
	if a.Overlaps(c) {
		t.Error("a and c are disjoint")
	}
	if !b.Overlaps(c) {
		t.Error("b and c overlap")
	}
	// Touching endpoints count as overlapping.
	d := Interval{Lo: 3, Hi: 4}
	if !a.Overlaps(d) {
		t.Error("touching intervals overlap")
	}
}

func TestRelativeWidth(t *testing.T) {
	iv := Interval{Lo: 9, Hi: 11, Center: 10}
	if math.Abs(iv.RelativeWidth()-0.1) > 1e-15 {
		t.Errorf("relative width = %g, want 0.1", iv.RelativeWidth())
	}
	if !math.IsNaN(Interval{Lo: -1, Hi: 1, Center: 0}.RelativeWidth()) {
		t.Error("zero center should be NaN")
	}
}

func TestRequiredSamplesNormal(t *testing.T) {
	// Pilot with CoV ≈ 0.2: a 5% target at 95% needs roughly
	// (0.2·2/0.05)² ≈ 64 samples (t slightly inflates it).
	rng := rand.New(rand.NewPCG(5, 6))
	pilot := make([]float64, 30)
	for i := range pilot {
		pilot[i] = 100 + 20*rng.NormFloat64()
	}
	n, err := RequiredSamplesNormal(pilot, 0.95, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if n < 30 || n > 150 {
		t.Errorf("required n = %d, expected on the order of 64", n)
	}
	// Tighter target needs quadratically more.
	n2, err := RequiredSamplesNormal(pilot, 0.95, 0.025)
	if err != nil {
		t.Fatal(err)
	}
	if n2 < 3*n {
		t.Errorf("halving the error should ~quadruple n: %d vs %d", n2, n)
	}
	if _, err := RequiredSamplesNormal(pilot[:1], 0.95, 0.05); err != ErrTooFewSamples {
		t.Error("tiny pilot should error")
	}
	if _, err := RequiredSamplesNormal(pilot, 0.95, 0); err == nil {
		t.Error("zero relErr should error")
	}
}

func TestRequiredSamplesEntryPoint(t *testing.T) {
	// RequiredSamples is the planner entry point (the regression gate's
	// power check); today it must agree with the normal-approximation
	// rule exactly.
	rng := rand.New(rand.NewPCG(7, 8))
	pilot := make([]float64, 25)
	for i := range pilot {
		pilot[i] = 50 + 10*rng.NormFloat64()
	}
	a, err := RequiredSamples(pilot, 0.95, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RequiredSamplesNormal(pilot, 0.95, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("RequiredSamples = %d, RequiredSamplesNormal = %d", a, b)
	}
	if _, err := RequiredSamples(pilot[:1], 0.95, 0.05); err != ErrTooFewSamples {
		t.Error("tiny pilot should error through the entry point")
	}
}

func TestStoppingRuleConverges(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	gen := dist.LogNormal{Mu: 0, Sigma: 0.3}
	rule := StoppingRule{Confidence: 0.95, RelErr: 0.05, BatchSize: 10}
	xs, iv := rule.Collect(func() float64 { return gen.Rand(rng) })
	if len(xs) >= rule.maxN() {
		t.Fatalf("stopping rule did not converge within %d samples", rule.maxN())
	}
	if done, _ := rule.Done(xs); !done {
		t.Error("Collect returned before criterion was met")
	}
	if iv.RelativeWidth() > 0.05 {
		t.Errorf("final CI relative width %g > 0.05", iv.RelativeWidth())
	}
	// The interval must bracket the true median exp(0)=1... statistically;
	// with 95% confidence this may rarely fail, so only check sanity.
	if iv.Lo > iv.Hi {
		t.Error("inverted interval")
	}
}

func TestStoppingRuleMaxN(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	// Huge variance with a tight target: must hit the MaxN ceiling.
	rule := StoppingRule{Confidence: 0.99, RelErr: 0.0001, BatchSize: 50, MaxN: 500}
	xs, _ := rule.Collect(func() float64 { return math.Exp(3 * rng.NormFloat64()) })
	if len(xs) != 500 {
		t.Errorf("collected %d, want exactly MaxN=500", len(xs))
	}
}

func TestStoppingRuleDefaults(t *testing.T) {
	r := StoppingRule{}
	if r.quantile() != 0.5 || r.batch() != 1 || r.maxN() != 10000 {
		t.Errorf("defaults: q=%g k=%d max=%d", r.quantile(), r.batch(), r.maxN())
	}
	if done, _ := r.Done([]float64{1, 2, 3}); done {
		t.Error("tiny sample can never satisfy the rule")
	}
}

func TestIntervalString(t *testing.T) {
	iv := Interval{Lo: 1, Hi: 2, Confidence: 0.95, Center: 1.5}
	if iv.String() == "" {
		t.Error("empty String")
	}
}

// TestQuantileCICoverageP90 checks the rank interval's frequentist
// guarantee away from the median, where the interval is asymmetric.
func TestQuantileCICoverageP90(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 77))
	const trials = 1000
	const n = 200
	trueP90 := dist.LogNormal{Mu: 0, Sigma: 1}.Quantile(0.9)
	hits := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = math.Exp(rng.NormFloat64())
		}
		iv, err := QuantileCI(xs, 0.9, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(trueP90) {
			hits++
		}
	}
	cov := float64(hits) / trials
	if cov < 0.93 {
		t.Errorf("p90 CI coverage %.3f, want >= ~0.95 (conservative)", cov)
	}
}

func TestSampleVariantsMatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	xs := make([]float64, 120)
	for i := range xs {
		xs[i] = math.Exp(0.3 * rng.NormFloat64())
	}
	smp := stats.NewSample(xs)

	// Rank-based CIs share the exact same sorted-slice code path, so the
	// Sample variants must be bit-identical to the slice variants.
	for _, p := range []float64{0.25, 0.5, 0.9} {
		a, err := QuantileCI(xs, p, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		b, err := QuantileCISample(smp, p, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("p=%g: QuantileCI %v != QuantileCISample %v", p, a, b)
		}
	}
	a, err := MedianCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MedianCISample(smp, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("MedianCI %v != MedianCISample %v", a, b)
	}

	// The mean CI's moments come from Welford rather than the two-pass
	// formulas: equal to within floating-point noise.
	am, err := MeanCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := MeanCISample(smp, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]float64{{am.Lo, bm.Lo}, {am.Hi, bm.Hi}, {am.Center, bm.Center}} {
		if d := math.Abs(pair[0] - pair[1]); d > 1e-9*math.Abs(pair[0]) {
			t.Errorf("MeanCI %v vs MeanCISample %v differ beyond fp noise", am, bm)
			break
		}
	}

	// Error cases must match the slice variants' thresholds: n < 2 for
	// the mean, n < 6 for the rank-based quantile.
	if _, err := MeanCISample(stats.NewSample(xs[:1]), 0.95); err != ErrTooFewSamples {
		t.Errorf("MeanCISample n=1: err = %v", err)
	}
	if _, err := QuantileCISample(stats.NewSample(xs[:5]), 0.5, 0.95); err != ErrTooFewSamples {
		t.Errorf("QuantileCISample n=5: err = %v", err)
	}
}

func TestQuantileCIHist(t *testing.T) {
	// Against the raw-sample interval on identical data: the histogram
	// interval must agree up to the bucket quantization (≤1/64 relative
	// on interior ranks, exact at the extremes).
	rng := rand.New(rand.NewPCG(13, 17))
	n := 20000
	xs := make([]float64, n)
	var h stats.LogHistogram
	for i := range xs {
		xs[i] = 1e-3 * math.Exp(0.5*rng.NormFloat64())
		h.Record(xs[i])
	}
	for _, p := range []float64{0.5, 0.99, 0.999} {
		exact, err := QuantileCI(xs, p, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		got, err := QuantileCIHist(&h, p, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range [][2]float64{
			{got.Lo, exact.Lo}, {got.Hi, exact.Hi}, {got.Center, exact.Center},
		} {
			if rel := math.Abs(pair[0]-pair[1]) / pair[1]; rel > 1.0/64+1e-9 {
				t.Errorf("p=%g: hist endpoint %g vs exact %g (rel err %.4f)", p, pair[0], pair[1], rel)
			}
		}
		if got.Lo > got.Center || got.Center > got.Hi {
			t.Errorf("p=%g: interval %v not bracketing its center", p, got)
		}
	}

	// Validation must mirror the raw-sample constructor.
	if _, err := QuantileCIHist(&h, 0, 0.95); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := QuantileCIHist(&h, 0.5, 1); err != ErrConfidence {
		t.Errorf("confidence=1: err = %v", err)
	}
	var small stats.LogHistogram
	for i := 0; i < 5; i++ {
		small.Record(float64(i + 1))
	}
	if _, err := QuantileCIHist(&small, 0.5, 0.95); err != ErrTooFewSamples {
		t.Errorf("n=5: err = %v", err)
	}
}
