// Package dist implements the probability distributions and special
// functions needed for statistically sound benchmarking analysis:
// normal, log-normal, Student's t, chi-squared, Fisher's F, exponential,
// Pareto, and uniform distributions, each with PDF, CDF, quantile, moments,
// and random variate generation.
//
// Everything is implemented from scratch on top of the Go standard library
// (math, math/rand/v2); accuracy targets are around 1e-10 relative error in
// the central region and 1e-8 in the tails, which is far tighter than any
// benchmarking decision requires.
package dist

import (
	"errors"
	"math"
)

// ErrDomain is returned (wrapped) by functions whose argument lies outside
// the mathematically valid domain.
var ErrDomain = errors.New("dist: argument outside domain")

// LnGamma returns the natural logarithm of the absolute value of the Gamma
// function. It is a thin, positively named wrapper over math.Lgamma that
// drops the sign (all callers in this package use positive arguments).
func LnGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// GammaP computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0.
//
// A series expansion is used for x < a+1 and a continued fraction for
// x >= a+1 (the classic Numerical Recipes split), giving fast convergence
// on both sides.
func GammaP(a, x float64) float64 {
	switch {
	case a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x == 0:
		return 0
	case math.IsInf(x, 1):
		return 1
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

// GammaQ computes the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x == 0:
		return 1
	case math.IsInf(x, 1):
		return 0
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

const (
	specialEps     = 1e-15
	specialMaxIter = 500
	tinyFloat      = 1e-300
)

func gammaPSeries(a, x float64) float64 {
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < specialMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*specialEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-LnGamma(a))
}

func gammaQContinuedFraction(a, x float64) float64 {
	b := x + 1 - a
	c := 1 / tinyFloat
	d := 1 / b
	h := d
	for i := 1; i <= specialMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tinyFloat {
			d = tinyFloat
		}
		c = b + an/c
		if math.Abs(c) < tinyFloat {
			c = tinyFloat
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < specialEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-LnGamma(a)) * h
}

// GammaPInv returns x such that GammaP(a, x) = p, for a > 0 and p in [0, 1].
// It uses a Wilson–Hilferty style initial guess followed by Halley
// iterations (Numerical Recipes invgammp).
func GammaPInv(a, p float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(p) || a <= 0 || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return 0
	case p == 1:
		return math.Inf(1)
	}
	const eps = 1e-12
	gln := LnGamma(a)
	a1 := a - 1
	var lna1, afac float64
	if a > 1 {
		lna1 = math.Log(a1)
		afac = math.Exp(a1*(lna1-1) - gln)
	}

	var x float64
	if a > 1 {
		// Wilson–Hilferty approximation.
		pp := p
		if p >= 0.5 {
			pp = 1 - p
		}
		t := math.Sqrt(-2 * math.Log(pp))
		x = (2.30753 + t*0.27061) / (1 + t*(0.99229+t*0.04481))
		x -= t
		if p < 0.5 {
			x = -x
		}
		x = math.Max(1e-3, a*math.Pow(1-1/(9*a)-x/(3*math.Sqrt(a)), 3))
	} else {
		t := 1 - a*(0.253+a*0.12)
		if p < t {
			x = math.Pow(p/t, 1/a)
		} else {
			x = 1 - math.Log(1-(p-t)/(1-t))
		}
	}

	for j := 0; j < 24; j++ {
		if x <= 0 {
			return 0
		}
		err := GammaP(a, x) - p
		var t float64
		if a > 1 {
			t = afac * math.Exp(-(x-a1)+a1*(math.Log(x)-lna1))
		} else {
			t = math.Exp(-x + a1*math.Log(x) - gln)
		}
		u := err / t
		// Halley's method.
		t = u / (1 - 0.5*math.Min(1, u*(a1/x-1)))
		x -= t
		if x <= 0 {
			x = 0.5 * (x + t)
		}
		if math.Abs(t) < eps*x {
			break
		}
	}
	return x
}

// BetaInc computes the regularized incomplete beta function I_x(a, b) for
// a, b > 0 and x in [0, 1], using the Lentz continued-fraction evaluation.
func BetaInc(a, b, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return math.NaN()
	case a <= 0 || b <= 0 || x < 0 || x > 1:
		return math.NaN()
	case x == 0:
		return 0
	case x == 1:
		return 1
	}
	lbeta := LnGamma(a+b) - LnGamma(a) - LnGamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func betaCF(a, b, x float64) float64 {
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tinyFloat {
		d = tinyFloat
	}
	d = 1 / d
	h := d
	for m := 1; m <= specialMaxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tinyFloat {
			d = tinyFloat
		}
		c = 1 + aa/c
		if math.Abs(c) < tinyFloat {
			c = tinyFloat
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tinyFloat {
			d = tinyFloat
		}
		c = 1 + aa/c
		if math.Abs(c) < tinyFloat {
			c = tinyFloat
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < specialEps {
			break
		}
	}
	return h
}

// BetaIncInv returns x such that BetaInc(a, b, x) = p. It starts from an
// approximate normal-based guess and polishes with Halley iterations.
func BetaIncInv(a, b, p float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(p):
		return math.NaN()
	case a <= 0 || b <= 0 || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return 0
	case p == 1:
		return 1
	}
	const eps = 1e-12
	var x float64
	a1 := a - 1
	b1 := b - 1
	if a >= 1 && b >= 1 {
		pp := p
		if p >= 0.5 {
			pp = 1 - p
		}
		t := math.Sqrt(-2 * math.Log(pp))
		x = (2.30753 + t*0.27061) / (1 + t*(0.99229+t*0.04481))
		x -= t
		if p < 0.5 {
			x = -x
		}
		al := (x*x - 3) / 6
		h := 2 / (1/(2*a-1) + 1/(2*b-1))
		w := x*math.Sqrt(al+h)/h -
			(1/(2*b-1)-1/(2*a-1))*(al+5.0/6.0-2/(3*h))
		x = a / (a + b*math.Exp(2*w))
	} else {
		lna := math.Log(a / (a + b))
		lnb := math.Log(b / (a + b))
		t := math.Exp(a*lna) / a
		u := math.Exp(b*lnb) / b
		w := t + u
		if p < t/w {
			x = math.Pow(a*w*p, 1/a)
		} else {
			x = 1 - math.Pow(b*w*(1-p), 1/b)
		}
	}
	afac := -LnGamma(a) - LnGamma(b) + LnGamma(a+b)
	for j := 0; j < 24; j++ {
		if x == 0 || x == 1 {
			return x
		}
		err := BetaInc(a, b, x) - p
		t := math.Exp(a1*math.Log(x) + b1*math.Log(1-x) + afac)
		u := err / t
		t = u / (1 - 0.5*math.Min(1, u*(a1/x-b1/(1-x))))
		x -= t
		if x <= 0 {
			x = 0.5 * (x + t)
		}
		if x >= 1 {
			x = 0.5 * (x + t + 1)
		}
		if math.Abs(t) < eps*x && j > 0 {
			break
		}
	}
	return x
}

// NormalCDF returns the standard normal cumulative distribution function
// Φ(z), computed via the complementary error function for full relative
// accuracy in both tails.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalPDF returns the standard normal density φ(z).
func NormalPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

// NormalQuantile returns Φ⁻¹(p), the standard normal quantile function,
// using Acklam's rational approximation refined by one Halley step, which
// yields close to machine precision over (0, 1).
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}
	// Coefficients for Acklam's approximation.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}
