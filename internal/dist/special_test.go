package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func absDiff(a, b float64) float64 { return math.Abs(a - b) }

// closeTo fails unless got is within tol of want.
func closeTo(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) {
		t.Fatalf("%s = %v, want %v", name, got, want)
	}
	if math.IsNaN(want) {
		return
	}
	if absDiff(got, want) > tol {
		t.Errorf("%s = %.12g, want %.12g (|diff| = %.3g > tol %.3g)",
			name, got, want, absDiff(got, want), tol)
	}
}

func TestLnGamma(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, 0},
		{2, 0},
		{3, math.Log(2)},
		{4, math.Log(6)},
		{0.5, math.Log(math.Sqrt(math.Pi))},
		{10, math.Log(362880)},
	}
	for _, c := range cases {
		closeTo(t, "LnGamma", LnGamma(c.x), c.want, 1e-12*math.Max(1, math.Abs(c.want)))
	}
}

func TestGammaPAgainstExponential(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.01, 0.5, 1, 2, 5, 10, 30} {
		closeTo(t, "GammaP(1,x)", GammaP(1, x), 1-math.Exp(-x), 1e-12)
	}
}

func TestGammaPKnownValues(t *testing.T) {
	// Reference values computed with R's pgamma(x, shape=a).
	// Reference values: pgamma(x, shape=a) in R.
	cases := []struct{ a, x, want float64 }{
		{0.5, 0.5, 0.6826894921370859}, // P(0.5, z²/2) = 2Φ(z)-1 with z = 1
		{2, 1, 0.2642411176571153},
		{2, 3, 0.8008517265285442},
		{5, 5, 0.5595067149347875},
	}
	for _, c := range cases {
		closeTo(t, "GammaP", GammaP(c.a, c.x), c.want, 1e-10)
	}
}

func TestGammaPComplement(t *testing.T) {
	for _, a := range []float64{0.3, 1, 2.5, 7, 20, 100} {
		for _, x := range []float64{0.1, 1, 5, 20, 150} {
			p := GammaP(a, x)
			q := GammaQ(a, x)
			closeTo(t, "P+Q", p+q, 1, 1e-10)
			if p < 0 || p > 1 {
				t.Errorf("GammaP(%g,%g) = %g outside [0,1]", a, x, p)
			}
		}
	}
}

func TestGammaPInvRoundTrip(t *testing.T) {
	for _, a := range []float64{0.4, 1, 2, 5.5, 30, 200} {
		for _, p := range []float64{1e-6, 0.01, 0.1, 0.5, 0.9, 0.99, 1 - 1e-6} {
			x := GammaPInv(a, p)
			back := GammaP(a, x)
			closeTo(t, "GammaP(GammaPInv)", back, p, 1e-8)
		}
	}
}

func TestBetaIncSymmetry(t *testing.T) {
	// I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, a := range []float64{0.5, 1, 2, 8} {
		for _, b := range []float64{0.5, 1, 3, 12} {
			for _, x := range []float64{0.05, 0.3, 0.5, 0.77, 0.99} {
				lhs := BetaInc(a, b, x)
				rhs := 1 - BetaInc(b, a, 1-x)
				closeTo(t, "BetaInc symmetry", lhs, rhs, 1e-10)
			}
		}
	}
}

func TestBetaIncKnownValues(t *testing.T) {
	cases := []struct{ a, b, x, want float64 }{
		{1, 1, 0.3, 0.3},     // uniform
		{2, 2, 0.5, 0.5},     // symmetric
		{2, 1, 0.5, 0.25},    // I_x(2,1) = x²
		{1, 2, 0.5, 0.75},    // I_x(1,2) = 1-(1-x)²
		{0.5, 0.5, 0.5, 0.5}, // arcsine distribution median
	}
	for _, c := range cases {
		closeTo(t, "BetaInc", BetaInc(c.a, c.b, c.x), c.want, 1e-9)
	}
}

// binomialTail computes P(X >= a) for X ~ Binomial(n, x) exactly, which by
// a classic identity equals I_x(a, n-a+1). This gives an independent exact
// reference for BetaInc at integer parameters.
func binomialTail(n, a int, x float64) float64 {
	sum := 0.0
	for k := a; k <= n; k++ {
		// C(n,k) via lgamma for stability.
		lc := LnGamma(float64(n+1)) - LnGamma(float64(k+1)) - LnGamma(float64(n-k+1))
		sum += math.Exp(lc + float64(k)*math.Log(x) + float64(n-k)*math.Log(1-x))
	}
	return sum
}

func TestBetaIncBinomialIdentity(t *testing.T) {
	cases := []struct{ a, b int }{
		{5, 3}, {10, 10}, {2, 7}, {1, 12}, {20, 4},
	}
	for _, c := range cases {
		for _, x := range []float64{0.1, 0.4, 0.6, 0.9} {
			n := c.a + c.b - 1
			want := binomialTail(n, c.a, x)
			got := BetaInc(float64(c.a), float64(c.b), x)
			closeTo(t, "BetaInc vs binomial tail", got, want, 1e-10)
		}
	}
}

func TestBetaIncInvRoundTrip(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2, 7.5, 40} {
		for _, b := range []float64{0.5, 1.5, 3, 25} {
			for _, p := range []float64{1e-5, 0.01, 0.25, 0.5, 0.75, 0.99, 1 - 1e-5} {
				x := BetaIncInv(a, b, p)
				if x < 0 || x > 1 {
					t.Fatalf("BetaIncInv(%g,%g,%g) = %g outside [0,1]", a, b, p, x)
				}
				closeTo(t, "BetaInc(BetaIncInv)", BetaInc(a, b, x), p, 1e-7)
			}
		}
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.8413447460685429, 1}, // Φ(1)
		{0.975, 1.959963984540054},
		{0.995, 2.5758293035489004},
		{0.05, -1.6448536269514722},
		{0.01, -2.3263478740408408},
		{1e-10, -6.361340902404056},
	}
	for _, c := range cases {
		closeTo(t, "NormalQuantile", NormalQuantile(c.p), c.want, 1e-9)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p == 0 || p == 1 || math.IsNaN(p) {
			return true
		}
		z := NormalQuantile(p)
		return absDiff(NormalCDF(z), p) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNormalCDFSymmetry(t *testing.T) {
	for _, z := range []float64{0, 0.5, 1, 2, 5, 8} {
		closeTo(t, "Φ(z)+Φ(-z)", NormalCDF(z)+NormalCDF(-z), 1, 1e-12)
	}
}

func TestDomainErrors(t *testing.T) {
	if !math.IsNaN(GammaP(-1, 1)) {
		t.Error("GammaP(-1,1) should be NaN")
	}
	if !math.IsNaN(GammaP(1, -1)) {
		t.Error("GammaP(1,-1) should be NaN")
	}
	if !math.IsNaN(BetaInc(0, 1, 0.5)) {
		t.Error("BetaInc(0,1,·) should be NaN")
	}
	if !math.IsNaN(BetaInc(1, 1, 1.5)) {
		t.Error("BetaInc(·,·,1.5) should be NaN")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) {
		t.Error("NormalQuantile(-0.1) should be NaN")
	}
	if !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("NormalQuantile(1.1) should be NaN")
	}
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("NormalQuantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile(1) should be +Inf")
	}
}
