package dist

import (
	"math"
	"math/rand/v2"
)

// Gamma is the gamma distribution with shape K > 0 and scale Theta > 0
// (mean K·Theta). It generalizes the exponential (K = 1) and chi-squared
// (K = df/2, Theta = 2) distributions and models service-time-like
// nondeterminism with tunable skew.
type Gamma struct {
	K     float64 // shape
	Theta float64 // scale
}

// PDF returns the gamma density at x.
func (g Gamma) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case g.K < 1:
			return math.Inf(1)
		case g.K == 1:
			return 1 / g.Theta
		}
		return 0
	}
	lg := (g.K-1)*math.Log(x) - x/g.Theta - g.K*math.Log(g.Theta) - LnGamma(g.K)
	return math.Exp(lg)
}

// CDF returns P(X <= x) via the regularized incomplete gamma function.
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return GammaP(g.K, x/g.Theta)
}

// Quantile returns the p-quantile via the inverse incomplete gamma.
func (g Gamma) Quantile(p float64) float64 {
	return g.Theta * GammaPInv(g.K, p)
}

// Mean returns K·Theta.
func (g Gamma) Mean() float64 { return g.K * g.Theta }

// Variance returns K·Theta².
func (g Gamma) Variance() float64 { return g.K * g.Theta * g.Theta }

// Rand draws a gamma variate (Marsaglia–Tsang).
func (g Gamma) Rand(rng *rand.Rand) float64 {
	return g.Theta * gammaRand(g.K, rng)
}

var _ Distribution = Gamma{}
