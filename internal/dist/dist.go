package dist

import (
	"math"
	"math/rand/v2"
)

// Distribution is the common interface implemented by every probability
// distribution in this package. Quantile is the inverse of CDF on the
// distribution's support.
type Distribution interface {
	// PDF returns the probability density at x.
	PDF(x float64) float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the smallest x with CDF(x) >= p, for p in [0, 1].
	Quantile(p float64) float64
	// Mean returns the distribution mean (NaN if undefined).
	Mean() float64
	// Variance returns the distribution variance (NaN or +Inf if undefined).
	Variance() float64
	// Rand draws one variate using the supplied source.
	Rand(rng *rand.Rand) float64
}

// Normal is the normal (Gaussian) distribution with mean Mu and standard
// deviation Sigma > 0.
type Normal struct {
	Mu    float64
	Sigma float64
}

// PDF returns the normal density at x.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return NormalPDF(z) / n.Sigma
}

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 {
	return NormalCDF((x - n.Mu) / n.Sigma)
}

// Quantile returns the p-quantile.
func (n Normal) Quantile(p float64) float64 {
	return n.Mu + n.Sigma*NormalQuantile(p)
}

// Mean returns Mu.
func (n Normal) Mean() float64 { return n.Mu }

// Variance returns Sigma².
func (n Normal) Variance() float64 { return n.Sigma * n.Sigma }

// Rand draws a normal variate.
func (n Normal) Rand(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// LogNormal is the distribution of exp(N(Mu, Sigma²)). It models the
// right-skewed, long-tailed timing distributions that dominate measured
// computer performance (paper §3.1.2, "Log-normalization").
type LogNormal struct {
	Mu    float64 // mean of log(X)
	Sigma float64 // standard deviation of log(X), > 0
}

// PDF returns the log-normal density at x (0 for x <= 0).
func (l LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return NormalPDF(z) / (x * l.Sigma)
}

// CDF returns P(X <= x).
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return NormalCDF((math.Log(x) - l.Mu) / l.Sigma)
}

// Quantile returns the p-quantile.
func (l LogNormal) Quantile(p float64) float64 {
	switch p {
	case 0:
		return 0
	case 1:
		return math.Inf(1)
	}
	return math.Exp(l.Mu + l.Sigma*NormalQuantile(p))
}

// Mean returns exp(Mu + Sigma²/2).
func (l LogNormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// Variance returns (exp(Sigma²)-1)·exp(2Mu+Sigma²).
func (l LogNormal) Variance() float64 {
	s2 := l.Sigma * l.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*l.Mu+s2)
}

// Rand draws a log-normal variate.
func (l LogNormal) Rand(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// StudentT is Student's t distribution with Nu > 0 degrees of freedom.
// It underlies confidence intervals of the mean for samples with unknown
// population variance (paper §3.1.2).
type StudentT struct {
	Nu float64
}

// PDF returns the t density at x.
func (t StudentT) PDF(x float64) float64 {
	nu := t.Nu
	lg := LnGamma((nu+1)/2) - LnGamma(nu/2) - 0.5*math.Log(nu*math.Pi)
	return math.Exp(lg - (nu+1)/2*math.Log1p(x*x/nu))
}

// CDF returns P(X <= x) via the regularized incomplete beta function.
func (t StudentT) CDF(x float64) float64 {
	if x == 0 {
		return 0.5
	}
	p := 0.5 * BetaInc(t.Nu/2, 0.5, t.Nu/(t.Nu+x*x))
	if x > 0 {
		return 1 - p
	}
	return p
}

// Quantile returns the p-quantile via the inverse incomplete beta function.
func (t StudentT) Quantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	case p == 0.5:
		return 0
	}
	pp := p
	if p > 0.5 {
		pp = 1 - p
	}
	x := BetaIncInv(t.Nu/2, 0.5, 2*pp)
	q := math.Sqrt(t.Nu * (1 - x) / x)
	if p < 0.5 {
		return -q
	}
	return q
}

// Mean returns 0 for Nu > 1, NaN otherwise.
func (t StudentT) Mean() float64 {
	if t.Nu > 1 {
		return 0
	}
	return math.NaN()
}

// Variance returns Nu/(Nu-2) for Nu > 2, +Inf for 1 < Nu <= 2, NaN otherwise.
func (t StudentT) Variance() float64 {
	switch {
	case t.Nu > 2:
		return t.Nu / (t.Nu - 2)
	case t.Nu > 1:
		return math.Inf(1)
	}
	return math.NaN()
}

// Rand draws a t variate as N / sqrt(ChiSq/Nu).
func (t StudentT) Rand(rng *rand.Rand) float64 {
	z := rng.NormFloat64()
	c := ChiSquared{K: t.Nu}.Rand(rng)
	return z / math.Sqrt(c/t.Nu)
}

// ChiSquared is the chi-squared distribution with K > 0 degrees of freedom
// (used by the Kruskal–Wallis test, paper §3.2.2).
type ChiSquared struct {
	K float64
}

// PDF returns the chi-squared density at x.
func (c ChiSquared) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		if c.K < 2 {
			return math.Inf(1)
		}
		if c.K == 2 {
			return 0.5
		}
		return 0
	}
	k2 := c.K / 2
	return math.Exp((k2-1)*math.Log(x) - x/2 - k2*math.Ln2 - LnGamma(k2))
}

// CDF returns P(X <= x) = P(k/2, x/2).
func (c ChiSquared) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return GammaP(c.K/2, x/2)
}

// Quantile returns the p-quantile.
func (c ChiSquared) Quantile(p float64) float64 {
	return 2 * GammaPInv(c.K/2, p)
}

// Mean returns K.
func (c ChiSquared) Mean() float64 { return c.K }

// Variance returns 2K.
func (c ChiSquared) Variance() float64 { return 2 * c.K }

// Rand draws a chi-squared variate via the gamma distribution
// (Marsaglia–Tsang squeeze method).
func (c ChiSquared) Rand(rng *rand.Rand) float64 {
	return 2 * gammaRand(c.K/2, rng)
}

// gammaRand draws from Gamma(shape, 1) via Marsaglia–Tsang (2000).
func gammaRand(shape float64, rng *rand.Rand) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaRand(shape+1, rng) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// FisherF is the F distribution with D1 numerator and D2 denominator
// degrees of freedom (used by the one-way ANOVA test, paper §3.2.1).
type FisherF struct {
	D1, D2 float64
}

// PDF returns the F density at x.
func (f FisherF) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case f.D1 < 2:
			return math.Inf(1)
		case f.D1 == 2:
			return 1
		}
		return 0
	}
	d1, d2 := f.D1, f.D2
	lg := d1/2*math.Log(d1) + d2/2*math.Log(d2) + (d1/2-1)*math.Log(x) -
		(d1+d2)/2*math.Log(d2+d1*x) -
		(LnGamma(d1/2) + LnGamma(d2/2) - LnGamma((d1+d2)/2))
	return math.Exp(lg)
}

// CDF returns P(X <= x) via the incomplete beta function.
func (f FisherF) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return BetaInc(f.D1/2, f.D2/2, f.D1*x/(f.D1*x+f.D2))
}

// Quantile returns the p-quantile.
func (f FisherF) Quantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return 0
	case p == 1:
		return math.Inf(1)
	}
	x := BetaIncInv(f.D1/2, f.D2/2, p)
	return f.D2 * x / (f.D1 * (1 - x))
}

// Mean returns D2/(D2-2) for D2 > 2, NaN otherwise.
func (f FisherF) Mean() float64 {
	if f.D2 > 2 {
		return f.D2 / (f.D2 - 2)
	}
	return math.NaN()
}

// Variance returns the F variance for D2 > 4, NaN otherwise.
func (f FisherF) Variance() float64 {
	if f.D2 <= 4 {
		return math.NaN()
	}
	d1, d2 := f.D1, f.D2
	return 2 * d2 * d2 * (d1 + d2 - 2) / (d1 * (d2 - 2) * (d2 - 2) * (d2 - 4))
}

// Rand draws an F variate as (X1/D1)/(X2/D2) with independent chi-squared
// numerator and denominator.
func (f FisherF) Rand(rng *rand.Rand) float64 {
	x1 := ChiSquared{K: f.D1}.Rand(rng)
	x2 := ChiSquared{K: f.D2}.Rand(rng)
	return (x1 / f.D1) / (x2 / f.D2)
}

// Exponential is the exponential distribution with rate Lambda > 0.
type Exponential struct {
	Lambda float64
}

// PDF returns the exponential density at x.
func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.Lambda * math.Exp(-e.Lambda*x)
}

// CDF returns 1 - exp(-Lambda·x) for x >= 0.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Lambda * x)
}

// Quantile returns -ln(1-p)/Lambda.
func (e Exponential) Quantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 1:
		return math.Inf(1)
	}
	return -math.Log1p(-p) / e.Lambda
}

// Mean returns 1/Lambda.
func (e Exponential) Mean() float64 { return 1 / e.Lambda }

// Variance returns 1/Lambda².
func (e Exponential) Variance() float64 { return 1 / (e.Lambda * e.Lambda) }

// Rand draws an exponential variate.
func (e Exponential) Rand(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / e.Lambda
}

// Pareto is the (type I) Pareto distribution with scale Xm > 0 and shape
// Alpha > 0. It models heavy interference tails such as rare network
// congestion events (paper §1, "sources of nondeterminism").
type Pareto struct {
	Xm    float64
	Alpha float64
}

// PDF returns the Pareto density at x (0 for x < Xm).
func (p Pareto) PDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return p.Alpha * math.Pow(p.Xm, p.Alpha) / math.Pow(x, p.Alpha+1)
}

// CDF returns 1-(Xm/x)^Alpha for x >= Xm.
func (p Pareto) CDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return 1 - math.Pow(p.Xm/x, p.Alpha)
}

// Quantile returns the q-quantile.
func (p Pareto) Quantile(q float64) float64 {
	switch {
	case math.IsNaN(q) || q < 0 || q > 1:
		return math.NaN()
	case q == 1:
		return math.Inf(1)
	}
	return p.Xm / math.Pow(1-q, 1/p.Alpha)
}

// Mean returns Alpha·Xm/(Alpha-1) for Alpha > 1, +Inf otherwise.
func (p Pareto) Mean() float64 {
	if p.Alpha > 1 {
		return p.Alpha * p.Xm / (p.Alpha - 1)
	}
	return math.Inf(1)
}

// Variance returns the Pareto variance for Alpha > 2, +Inf otherwise.
func (p Pareto) Variance() float64 {
	if p.Alpha > 2 {
		a := p.Alpha
		return p.Xm * p.Xm * a / ((a - 1) * (a - 1) * (a - 2))
	}
	return math.Inf(1)
}

// Rand draws a Pareto variate by inversion.
func (p Pareto) Rand(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Uniform is the continuous uniform distribution on [A, B), A < B.
type Uniform struct {
	A, B float64
}

// PDF returns 1/(B-A) inside the support and 0 outside.
func (u Uniform) PDF(x float64) float64 {
	if x < u.A || x >= u.B {
		return 0
	}
	return 1 / (u.B - u.A)
}

// CDF returns the uniform CDF at x.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.A:
		return 0
	case x >= u.B:
		return 1
	}
	return (x - u.A) / (u.B - u.A)
}

// Quantile returns A + p·(B-A).
func (u Uniform) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	return u.A + p*(u.B-u.A)
}

// Mean returns (A+B)/2.
func (u Uniform) Mean() float64 { return (u.A + u.B) / 2 }

// Variance returns (B-A)²/12.
func (u Uniform) Variance() float64 {
	d := u.B - u.A
	return d * d / 12
}

// Rand draws a uniform variate on [A, B).
func (u Uniform) Rand(rng *rand.Rand) float64 {
	return u.A + rng.Float64()*(u.B-u.A)
}

// Compile-time interface checks.
var (
	_ Distribution = Normal{}
	_ Distribution = LogNormal{}
	_ Distribution = StudentT{}
	_ Distribution = ChiSquared{}
	_ Distribution = FisherF{}
	_ Distribution = Exponential{}
	_ Distribution = Pareto{}
	_ Distribution = Uniform{}
)
