package dist

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

// allDists enumerates one parametrization of each distribution for the
// generic property tests below.
func allDists() map[string]Distribution {
	return map[string]Distribution{
		"Normal(3,2)":      Normal{Mu: 3, Sigma: 2},
		"LogNormal(0,0.5)": LogNormal{Mu: 0, Sigma: 0.5},
		"StudentT(7)":      StudentT{Nu: 7},
		"ChiSquared(4)":    ChiSquared{K: 4},
		"FisherF(5,12)":    FisherF{D1: 5, D2: 12},
		"Exponential(2)":   Exponential{Lambda: 2},
		"Pareto(1,3)":      Pareto{Xm: 1, Alpha: 3},
		"Gamma(3,2)":       Gamma{K: 3, Theta: 2},
		"Uniform(-1,4)":    Uniform{A: -1, B: 4},
	}
}

func TestQuantileCDFRoundTrip(t *testing.T) {
	ps := []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}
	for name, d := range allDists() {
		for _, p := range ps {
			x := d.Quantile(p)
			got := d.CDF(x)
			if math.Abs(got-p) > 1e-7 {
				t.Errorf("%s: CDF(Quantile(%g)) = %g", name, p, got)
			}
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	for name, d := range allDists() {
		prev := math.Inf(-1)
		for _, p := range []float64{0.05, 0.2, 0.4, 0.6, 0.8, 0.95} {
			x := d.Quantile(p)
			if x < prev {
				t.Errorf("%s: quantiles not monotone at p=%g", name, p)
			}
			prev = x
		}
	}
}

func TestPDFIntegratesToCDF(t *testing.T) {
	// Trapezoid-integrate the PDF between the 5% and 95% quantiles and
	// compare with the CDF difference.
	for name, d := range allDists() {
		lo, hi := d.Quantile(0.05), d.Quantile(0.95)
		const n = 20000
		h := (hi - lo) / n
		sum := 0.5 * (d.PDF(lo) + d.PDF(hi))
		for i := 1; i < n; i++ {
			sum += d.PDF(lo + float64(i)*h)
		}
		got := sum * h
		want := d.CDF(hi) - d.CDF(lo)
		if math.Abs(got-want) > 1e-4 {
			t.Errorf("%s: ∫pdf = %g, CDF diff = %g", name, got, want)
		}
	}
}

func TestRandMatchesMoments(t *testing.T) {
	// Iterate in sorted order: map-range order is randomized, which would
	// hand each distribution a different slice of the shared rng stream
	// per run and make the moment checks flaky (Pareto's heavy tail needs
	// the stream it was tuned on).
	names := make([]string, 0, len(allDists()))
	for name := range allDists() {
		names = append(names, name)
	}
	sort.Strings(names)
	dists := allDists()
	const n = 200000
	for _, name := range names {
		d := dists[name]
		rng := rand.New(rand.NewPCG(42, 1))
		mean := d.Mean()
		variance := d.Variance()
		if math.IsNaN(mean) || math.IsInf(variance, 1) {
			continue
		}
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := d.Rand(rng)
			sum += v
			sumSq += v * v
		}
		m := sum / n
		v := sumSq/n - m*m
		seMean := math.Sqrt(variance / n)
		if math.Abs(m-mean) > 6*seMean+1e-9 {
			t.Errorf("%s: sample mean %g, want %g (±%g)", name, m, mean, 6*seMean)
		}
		if math.Abs(v-variance) > 0.1*variance+1e-9 {
			t.Errorf("%s: sample variance %g, want %g", name, v, variance)
		}
	}
}

func TestStudentTKnownQuantiles(t *testing.T) {
	// Classic t-table values (two-sided 95% → p = 0.975).
	cases := []struct {
		nu   float64
		p    float64
		want float64
	}{
		{1, 0.975, 12.706204736432095},
		{2, 0.975, 4.302652729911275},
		{5, 0.975, 2.570581835636197},
		{9, 0.975, 2.2621571627409915},
		{10, 0.995, 3.169272672616872},
		{30, 0.975, 2.0422724563012373},
		{100, 0.975, 1.9839715184496334},
		{49, 0.95, 1.6765508919142635},
	}
	for _, c := range cases {
		got := StudentT{Nu: c.nu}.Quantile(c.p)
		closeTo(t, "t quantile", got, c.want, 1e-6)
	}
}

func TestStudentTCDFSymmetry(t *testing.T) {
	d := StudentT{Nu: 6}
	for _, x := range []float64{0.1, 0.5, 1, 2.5, 10} {
		closeTo(t, "t CDF symmetry", d.CDF(x)+d.CDF(-x), 1, 1e-12)
	}
	closeTo(t, "t CDF at 0", d.CDF(0), 0.5, 1e-15)
}

func TestChiSquaredKnownQuantiles(t *testing.T) {
	cases := []struct {
		k, p, want float64
	}{
		{1, 0.95, 3.841458820694124},
		{2, 0.95, 5.991464547107979},
		{3, 0.95, 7.814727903251179},
		{5, 0.99, 15.08627246938899},
		{10, 0.5, 9.341818229895768},
	}
	for _, c := range cases {
		got := ChiSquared{K: c.k}.Quantile(c.p)
		closeTo(t, "chi2 quantile", got, c.want, 1e-5)
	}
}

func TestFisherFKnownQuantiles(t *testing.T) {
	// qf(p, d1, d2) in R.
	check := []struct {
		d1, d2, p, want float64
	}{
		{1, 10, 0.95, 4.964602743730711},
		{2, 10, 0.95, 4.102821015337288},
		{3, 20, 0.95, 3.098391212545098},
		{5, 5, 0.99, 10.967024268237238},
		{4, 60, 0.95, 2.5252136570797694},
	}
	for _, c := range check {
		got := FisherF{D1: c.d1, D2: c.d2}.Quantile(c.p)
		closeTo(t, "F quantile", got, c.want, 1e-4)
	}
}

func TestLogNormalMoments(t *testing.T) {
	l := LogNormal{Mu: 1, Sigma: 0.7}
	closeTo(t, "LogNormal mean", l.Mean(), math.Exp(1+0.49/2), 1e-12)
	med := l.Quantile(0.5)
	closeTo(t, "LogNormal median", med, math.E, 1e-9)
	if l.Mean() <= med {
		t.Error("log-normal mean should exceed median (right skew)")
	}
}

func TestParetoTail(t *testing.T) {
	p := Pareto{Xm: 2, Alpha: 2.5}
	if p.CDF(1.9) != 0 {
		t.Error("CDF below Xm must be 0")
	}
	closeTo(t, "Pareto CDF", p.CDF(4), 1-math.Pow(0.5, 2.5), 1e-12)
	if !math.IsInf(Pareto{Xm: 1, Alpha: 0.9}.Mean(), 1) {
		t.Error("Pareto mean with alpha<1 should be +Inf")
	}
}

func TestUniformBasics(t *testing.T) {
	u := Uniform{A: 2, B: 6}
	closeTo(t, "Uniform mean", u.Mean(), 4, 1e-15)
	closeTo(t, "Uniform var", u.Variance(), 16.0/12.0, 1e-15)
	closeTo(t, "Uniform CDF", u.CDF(3), 0.25, 1e-15)
	closeTo(t, "Uniform quantile", u.Quantile(0.75), 5, 1e-15)
}

func TestExponentialQuantile(t *testing.T) {
	e := Exponential{Lambda: 0.5}
	closeTo(t, "Exp median", e.Quantile(0.5), math.Ln2/0.5, 1e-12)
	closeTo(t, "Exp mean", e.Mean(), 2, 1e-15)
}

func TestGammaSpecialCases(t *testing.T) {
	// Gamma(1, 1/λ) is Exponential(λ).
	g := Gamma{K: 1, Theta: 2}
	e := Exponential{Lambda: 0.5}
	for _, x := range []float64{0.1, 1, 3, 10} {
		closeTo(t, "Gamma(1)=Exp CDF", g.CDF(x), e.CDF(x), 1e-12)
		closeTo(t, "Gamma(1)=Exp PDF", g.PDF(x), e.PDF(x), 1e-12)
	}
	// Gamma(k/2, 2) is ChiSquared(k).
	g2 := Gamma{K: 2.5, Theta: 2}
	c := ChiSquared{K: 5}
	for _, x := range []float64{0.5, 2, 7, 15} {
		closeTo(t, "Gamma=Chi2 CDF", g2.CDF(x), c.CDF(x), 1e-12)
	}
	closeTo(t, "Gamma mean", (Gamma{K: 3, Theta: 2}).Mean(), 6, 1e-15)
	closeTo(t, "Gamma var", (Gamma{K: 3, Theta: 2}).Variance(), 12, 1e-15)
	// Boundary densities.
	if (Gamma{K: 1, Theta: 2}).PDF(0) != 0.5 {
		t.Error("Gamma(1) density at 0")
	}
	if !math.IsInf((Gamma{K: 0.5, Theta: 1}).PDF(0), 1) {
		t.Error("Gamma(k<1) density at 0 should diverge")
	}
}

func TestNormalStandardization(t *testing.T) {
	n := Normal{Mu: 10, Sigma: 3}
	closeTo(t, "Normal CDF at mean", n.CDF(10), 0.5, 1e-15)
	closeTo(t, "Normal q(0.975)", n.Quantile(0.975), 10+3*1.959963984540054, 1e-8)
	closeTo(t, "Normal PDF peak", n.PDF(10), 1/(3*math.Sqrt(2*math.Pi)), 1e-12)
}
