package timer

import (
	"testing"
	"time"
)

func TestVirtualClock(t *testing.T) {
	var c VirtualClock
	if c.Now() != 0 {
		t.Error("fresh virtual clock should read 0")
	}
	c.Advance(5 * time.Microsecond)
	if c.Now() != 5*time.Microsecond {
		t.Errorf("Now = %v", c.Now())
	}
	c.Advance(-time.Second) // ignored
	if c.Now() != 5*time.Microsecond {
		t.Error("virtual time went backwards")
	}
	c.Set(time.Millisecond)
	if c.Now() != time.Millisecond {
		t.Errorf("Set: Now = %v", c.Now())
	}
	c.Set(0) // ignored: in the past
	if c.Now() != time.Millisecond {
		t.Error("Set moved the clock backwards")
	}
}

func TestWallClockMonotonic(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	b := c.Now()
	if b < a {
		t.Errorf("wall clock not monotonic: %v then %v", a, b)
	}
}

func TestCalibrateWallClock(t *testing.T) {
	cal := Calibrate(NewWallClock(), 32)
	if cal.Resolution <= 0 {
		t.Errorf("resolution = %v, want > 0", cal.Resolution)
	}
	if cal.Overhead < 0 {
		t.Errorf("overhead = %v, want >= 0", cal.Overhead)
	}
	// Modern platforms: resolution and overhead far below 1 ms.
	if cal.Resolution > time.Millisecond {
		t.Errorf("implausible resolution %v", cal.Resolution)
	}
	if cal.Overhead > time.Millisecond {
		t.Errorf("implausible overhead %v", cal.Overhead)
	}
}

func TestCalibrationCheck(t *testing.T) {
	cal := Calibration{Resolution: time.Microsecond, Overhead: 100 * time.Nanosecond}

	// Long interval: fine.
	if err := cal.Check(time.Millisecond); err != nil {
		t.Errorf("1ms should pass: %v", err)
	}
	// Interval where overhead is 10% (> 5%): rejected.
	if err := cal.Check(1 * time.Microsecond); err == nil {
		t.Error("1µs should fail the overhead rule")
	}
	// Interval finer than 10x resolution: rejected.
	if err := cal.Check(5 * time.Microsecond); err == nil {
		t.Error("5µs should fail the resolution rule (needs 10µs)")
	}
	// Non-positive interval: rejected.
	if err := cal.Check(0); err == nil {
		t.Error("0 interval should fail")
	}
}

func TestMinReliableInterval(t *testing.T) {
	cal := Calibration{Resolution: time.Microsecond, Overhead: 100 * time.Nanosecond}
	// Overhead bound: 100ns/0.05 = 2µs; resolution bound: 10µs → 10µs.
	if got := cal.MinReliableInterval(); got != 10*time.Microsecond {
		t.Errorf("MinReliableInterval = %v, want 10µs", got)
	}
	if err := cal.Check(cal.MinReliableInterval()); err != nil {
		t.Errorf("the minimum reliable interval must pass Check: %v", err)
	}
	// Overhead-dominated calibration.
	cal2 := Calibration{Resolution: time.Nanosecond, Overhead: time.Microsecond}
	if got := cal2.MinReliableInterval(); got != 20*time.Microsecond {
		t.Errorf("MinReliableInterval = %v, want 20µs", got)
	}
}

func TestStopwatchOnVirtualClock(t *testing.T) {
	var c VirtualClock
	sw := NewStopwatch(&c)
	c.Advance(42 * time.Microsecond)
	if sw.Elapsed() != 42*time.Microsecond {
		t.Errorf("Elapsed = %v", sw.Elapsed())
	}
	if d := sw.Restart(); d != 42*time.Microsecond {
		t.Errorf("Restart = %v", d)
	}
	c.Advance(8 * time.Microsecond)
	if d := sw.Restart(); d != 8*time.Microsecond {
		t.Errorf("second Restart = %v", d)
	}
}

func TestStopwatchDefaultsToWallClock(t *testing.T) {
	sw := NewStopwatch(nil)
	if sw.Elapsed() < 0 {
		t.Error("negative elapsed on wall clock")
	}
}

func TestCalibrateMinimumSamples(t *testing.T) {
	// samples < 16 is clamped, must still work.
	cal := Calibrate(NewWallClock(), 1)
	if cal.Resolution <= 0 {
		t.Error("clamped calibration failed")
	}
}
