// Package timer provides calibrated interval measurement per the paper's
// §4.2.1: before trusting measured intervals, an experimenter must know
// the timer's resolution and per-call overhead, ensure the overhead is a
// small fraction of the measured interval (the paper suggests < 5%), and
// ensure the resolution is sufficient (the paper suggests 10× finer than
// the interval). The package also provides a virtual clock so simulated
// experiments use exactly the same measurement code path as real ones.
package timer

import (
	"fmt"
	"sort"
	"time"
)

// Clock abstracts a time source so simulated and real experiments share
// one measurement path.
type Clock interface {
	// Now returns the current time as a monotonic duration from an
	// arbitrary epoch.
	Now() time.Duration
}

// WallClock reads the process monotonic clock via time.Since on a fixed
// epoch, which Go guarantees uses the monotonic reading.
type WallClock struct {
	epoch time.Time
}

// NewWallClock returns a WallClock anchored at the current instant.
func NewWallClock() *WallClock {
	return &WallClock{epoch: time.Now()}
}

// Now returns the monotonic time since the clock was created.
func (c *WallClock) Now() time.Duration { return time.Since(c.epoch) }

// VirtualClock is a manually advanced clock for discrete-event
// simulations. It is not safe for concurrent use; simulators advance it
// from a single scheduling goroutine.
type VirtualClock struct {
	now time.Duration
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Duration { return c.now }

// Advance moves the virtual clock forward by d (negative d is ignored,
// virtual time never goes backwards).
func (c *VirtualClock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// Set jumps the clock to t if t is in the future.
func (c *VirtualClock) Set(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// Calibration describes a time source's measured quality.
type Calibration struct {
	// Resolution is the smallest observable nonzero increment between
	// consecutive readings.
	Resolution time.Duration
	// Overhead is the median cost of one Now() call.
	Overhead time.Duration
}

// Calibrate measures the resolution and per-call overhead of a clock by
// sampling consecutive readings. It mirrors what LibSciBench reports on
// startup for its timers.
func Calibrate(c Clock, samples int) Calibration {
	if samples < 16 {
		samples = 16
	}
	// Resolution: smallest nonzero delta between back-to-back readings,
	// spinning until the reading changes.
	resDeltas := make([]time.Duration, 0, samples)
	for i := 0; i < samples; i++ {
		a := c.Now()
		b := c.Now()
		for b == a {
			b = c.Now()
		}
		resDeltas = append(resDeltas, b-a)
	}
	sort.Slice(resDeltas, func(i, j int) bool { return resDeltas[i] < resDeltas[j] })
	resolution := resDeltas[0]

	// Overhead: time k consecutive calls, divide.
	const k = 256
	ohs := make([]time.Duration, 0, samples)
	for i := 0; i < samples; i++ {
		start := c.Now()
		for j := 0; j < k; j++ {
			_ = c.Now()
		}
		ohs = append(ohs, (c.Now()-start)/k)
	}
	sort.Slice(ohs, func(i, j int) bool { return ohs[i] < ohs[j] })
	return Calibration{Resolution: resolution, Overhead: ohs[len(ohs)/2]}
}

// Quality thresholds from §4.2.1.
const (
	// MaxOverheadFraction is the largest acceptable ratio of timer
	// overhead to measured interval ("we suggest <5%").
	MaxOverheadFraction = 0.05
	// MinResolutionFactor is the required ratio of interval to timer
	// resolution ("we suggest 10x higher").
	MinResolutionFactor = 10
)

// Check validates a measured interval against the calibration and
// returns a non-nil warning error when the measurement is untrustworthy:
// either the timer overhead exceeds MaxOverheadFraction of the interval
// or the resolution is coarser than interval/MinResolutionFactor.
func (cal Calibration) Check(interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("timer: non-positive interval %v", interval)
	}
	if float64(cal.Overhead) > MaxOverheadFraction*float64(interval) {
		return fmt.Errorf("timer: overhead %v exceeds %.0f%% of interval %v; measure more events per interval",
			cal.Overhead, MaxOverheadFraction*100, interval)
	}
	if float64(cal.Resolution)*MinResolutionFactor > float64(interval) {
		return fmt.Errorf("timer: resolution %v too coarse for interval %v (need %dx margin)",
			cal.Resolution, interval, MinResolutionFactor)
	}
	return nil
}

// MinReliableInterval returns the smallest interval this calibration can
// measure within the §4.2.1 quality thresholds.
func (cal Calibration) MinReliableInterval() time.Duration {
	byOverhead := time.Duration(float64(cal.Overhead) / MaxOverheadFraction)
	byResolution := cal.Resolution * MinResolutionFactor
	if byOverhead > byResolution {
		return byOverhead
	}
	return byResolution
}

// Stopwatch measures one interval on a Clock.
type Stopwatch struct {
	clock Clock
	start time.Duration
}

// NewStopwatch creates a stopwatch on the given clock (wall clock when
// nil) and starts it.
func NewStopwatch(c Clock) *Stopwatch {
	if c == nil {
		c = NewWallClock()
	}
	return &Stopwatch{clock: c, start: c.Now()}
}

// Restart resets the start point and returns the elapsed interval that
// ended now.
func (s *Stopwatch) Restart() time.Duration {
	now := s.clock.Now()
	d := now - s.start
	s.start = now
	return d
}

// Elapsed returns the interval since start without restarting.
func (s *Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }
