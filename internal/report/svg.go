package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/stats"
)

// This file renders publication-style SVG figures (stdlib-only): XY
// charts with axes, ticks and legends, and filled density curves — the
// vector twins of the package's ASCII renderers, for dropping
// regenerated paper figures into documents.

// svgPalette holds the stroke colors assigned to series in order.
var svgPalette = []string{
	"#1b9e77", "#d95f02", "#7570b3", "#e7298a", "#66a61e", "#e6ab02",
}

type svgCanvas struct {
	w, h       int
	padL, padR int
	padT, padB int
	xlo, xhi   float64
	ylo, yhi   float64
	b          strings.Builder
}

func newSVGCanvas(w, h int, xlo, xhi, ylo, yhi float64) *svgCanvas {
	c := &svgCanvas{
		w: w, h: h,
		padL: 64, padR: 16, padT: 28, padB: 44,
		xlo: xlo, xhi: xhi, ylo: ylo, yhi: yhi,
	}
	if c.xhi == c.xlo {
		c.xhi = c.xlo + 1
	}
	if c.yhi == c.ylo {
		c.yhi = c.ylo + 1
	}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		w, h, w, h)
	fmt.Fprintf(&c.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return c
}

func (c *svgCanvas) x(v float64) float64 {
	return float64(c.padL) + (v-c.xlo)/(c.xhi-c.xlo)*float64(c.w-c.padL-c.padR)
}

func (c *svgCanvas) y(v float64) float64 {
	return float64(c.h-c.padB) - (v-c.ylo)/(c.yhi-c.ylo)*float64(c.h-c.padT-c.padB)
}

func (c *svgCanvas) axes(title, xlabel, ylabel string) {
	left, right := float64(c.padL), float64(c.w-c.padR)
	top, bottom := float64(c.padT), float64(c.h-c.padB)
	fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		left, bottom, right, bottom)
	fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		left, bottom, left, top)
	// Five ticks per axis.
	for i := 0; i <= 4; i++ {
		fx := c.xlo + (c.xhi-c.xlo)*float64(i)/4
		fy := c.ylo + (c.yhi-c.ylo)*float64(i)/4
		px := c.x(fx)
		py := c.y(fy)
		fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
			px, bottom, px, bottom+5)
		fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle">%.4g</text>`+"\n",
			px, bottom+18, fx)
		fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
			left-5, py, left, py)
		fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="end">%.4g</text>`+"\n",
			left-8, py+4, fy)
	}
	if title != "" {
		fmt.Fprintf(&c.b, `<text x="%d" y="18" font-size="14" text-anchor="middle" font-weight="bold">%s</text>`+"\n",
			c.w/2, svgEscape(title))
	}
	if xlabel != "" {
		fmt.Fprintf(&c.b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
			c.w/2, c.h-8, svgEscape(xlabel))
	}
	if ylabel != "" {
		fmt.Fprintf(&c.b, `<text x="14" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
			c.h/2, c.h/2, svgEscape(ylabel))
	}
}

func (c *svgCanvas) close() string {
	c.b.WriteString("</svg>\n")
	return c.b.String()
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// SVGXYPlot renders the series as an SVG line chart with axes, ticks and
// a legend.
func SVGXYPlot(w io.Writer, title, xlabel, ylabel string, series []Series, width, height int) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series")
	}
	if width < 200 {
		width = 560
	}
	if height < 150 {
		height = 360
	}
	xlo, xhi := math.Inf(1), math.Inf(-1)
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("report: series %q x/y length mismatch", s.Name)
		}
		for i := range s.X {
			xlo = math.Min(xlo, s.X[i])
			xhi = math.Max(xhi, s.X[i])
			ylo = math.Min(ylo, s.Y[i])
			yhi = math.Max(yhi, s.Y[i])
		}
	}
	c := newSVGCanvas(width, height, xlo, xhi, ylo, yhi)
	c.axes(title, xlabel, ylabel)
	for si, s := range series {
		color := svgPalette[si%len(svgPalette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", c.x(s.X[i]), c.y(s.Y[i])))
		}
		fmt.Fprintf(&c.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.Join(pts, " "), color)
		for i := range s.X {
			fmt.Fprintf(&c.b, `<circle cx="%.1f" cy="%.1f" r="2.6" fill="%s"/>`+"\n",
				c.x(s.X[i]), c.y(s.Y[i]), color)
		}
		// Legend entry.
		ly := c.padT + 14 + 16*si
		fmt.Fprintf(&c.b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			c.padL+10, ly, c.padL+34, ly, color)
		fmt.Fprintf(&c.b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n",
			c.padL+40, ly+4, svgEscape(s.Name))
	}
	_, err := io.WriteString(w, c.close())
	return err
}

// SVGDensityPlot renders a filled KDE curve of xs with vertical marker
// lines for min, median, mean, the 95th percentile and max — the SVG
// twin of the paper's Figure 1.
func SVGDensityPlot(w io.Writer, title, xlabel string, xs []float64, width, height int) error {
	if len(xs) == 0 {
		return fmt.Errorf("report: nothing to plot")
	}
	if width < 200 {
		width = 560
	}
	if height < 150 {
		height = 300
	}
	pts := stats.KDE(xs, 0, 256)
	if pts == nil {
		return fmt.Errorf("report: degenerate sample")
	}
	maxD := 0.0
	for _, p := range pts {
		maxD = math.Max(maxD, p.Density)
	}
	c := newSVGCanvas(width, height, pts[0].X, pts[len(pts)-1].X, 0, maxD*1.05)
	c.axes(title, xlabel, "density")

	// Filled density polygon.
	var poly []string
	poly = append(poly, fmt.Sprintf("%.1f,%.1f", c.x(pts[0].X), c.y(0)))
	for _, p := range pts {
		poly = append(poly, fmt.Sprintf("%.1f,%.1f", c.x(p.X), c.y(p.Density)))
	}
	poly = append(poly, fmt.Sprintf("%.1f,%.1f", c.x(pts[len(pts)-1].X), c.y(0)))
	fmt.Fprintf(&c.b, `<polygon points="%s" fill="#1b9e77" fill-opacity="0.35" stroke="#1b9e77" stroke-width="1.5"/>`+"\n",
		strings.Join(poly, " "))

	s := stats.Summarize(xs)
	markers := []struct {
		v     float64
		label string
		color string
	}{
		{s.Min, "min", "#666666"},
		{s.Median, "median", "#d95f02"},
		{s.Mean, "mean", "#7570b3"},
		{s.P95, "p95", "#e7298a"},
		{s.Max, "max", "#666666"},
	}
	for i, mk := range markers {
		px := c.x(mk.v)
		fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%d" stroke="%s" stroke-dasharray="4 3"/>`+"\n",
			px, c.y(0), px, c.padT+12, mk.color)
		fmt.Fprintf(&c.b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle" fill="%s">%s</text>`+"\n",
			px, c.padT+10-(i%2)*10+10, mk.color, mk.label)
	}
	_, err := io.WriteString(w, c.close())
	return err
}
