// Package report renders analysis results for humans and machines:
// aligned text tables, ASCII histograms, box plots, violin plots, and XY
// charts (the text equivalents of the paper's Figures 1–7), plus CSV and
// JSON exporters so datasets remain analyzable with external tools —
// LibSciBench's R integration translated to a self-contained Go library.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row, stringifying the cells with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = strconv.FormatFloat(v, 'g', 6, 64)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w with aligned columns.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	writeRow := func(r []string) error {
		var b strings.Builder
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if len(t.Headers) > 0 {
		if err := writeRow(t.Headers); err != nil {
			return err
		}
		var b strings.Builder
		for i := 0; i < cols; i++ {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", widths[i]))
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// WriteCSV exports named columns of equal length as CSV (the raw-data
// release Rule 9 asks for).
func WriteCSV(w io.Writer, names []string, cols ...[]float64) error {
	if len(names) != len(cols) {
		return fmt.Errorf("report: %d names for %d columns", len(names), len(cols))
	}
	n := 0
	for i, c := range cols {
		if i == 0 {
			n = len(c)
		} else if len(c) != n {
			return fmt.Errorf("report: column %q has %d rows, want %d", names[i], len(c), n)
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(names); err != nil {
		return err
	}
	row := make([]string, len(cols))
	for r := 0; r < n; r++ {
		for c := range cols {
			row[c] = strconv.FormatFloat(cols[c][r], 'g', 17, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSVColumn parses one named column back from CSV produced by
// WriteCSV (or by any other tool).
func ReadCSVColumn(r io.Reader, name string) ([]float64, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, err
	}
	idx := -1
	for i, h := range header {
		if h == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("report: column %q not found in %v", name, header)
	}
	var out []float64
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseFloat(rec[idx], 64)
		if err != nil {
			return nil, fmt.Errorf("report: bad value %q: %w", rec[idx], err)
		}
		out = append(out, v)
	}
	return out, nil
}

// WriteJSON marshals any value as indented JSON.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
