package report

import (
	"math/rand/v2"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("b", "x")
	tbl.AddRow("gamma", 42)
	out := tbl.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") {
		t.Errorf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 3 rows.
	if len(lines) != 6 {
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	// Columns aligned: 'value' header starts at the same offset in each row.
	hdr := lines[1]
	col := strings.Index(hdr, "value")
	if col < 0 {
		t.Fatal("no value header")
	}
	if lines[3][col-1] != ' ' && lines[3][col] == ' ' {
		t.Errorf("misaligned rows:\n%s", out)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf strings.Builder
	a := []float64{1.5, 2.25, -3.125}
	b := []float64{10, 20, 30}
	if err := WriteCSV(&buf, []string{"lat", "p"}, a, b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVColumn(strings.NewReader(buf.String()), "lat")
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[0] != 1.5 || back[2] != -3.125 {
		t.Errorf("round trip = %v", back)
	}
	if _, err := ReadCSVColumn(strings.NewReader(buf.String()), "nope"); err == nil {
		t.Error("missing column should error")
	}
}

func TestCSVValidation(t *testing.T) {
	var buf strings.Builder
	if err := WriteCSV(&buf, []string{"a"}, []float64{1}, []float64{2}); err == nil {
		t.Error("name/column mismatch should error")
	}
	if err := WriteCSV(&buf, []string{"a", "b"}, []float64{1}, []float64{2, 3}); err == nil {
		t.Error("ragged columns should error")
	}
}

func TestWriteJSON(t *testing.T) {
	var buf strings.Builder
	if err := WriteJSON(&buf, map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"x\": 1") {
		t.Errorf("json = %s", buf.String())
	}
}

func sampleData(n int, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, 1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 5 + rng.NormFloat64()
	}
	return xs
}

func TestHistogramPlot(t *testing.T) {
	var buf strings.Builder
	if err := HistogramPlot(&buf, sampleData(500, 2), 8, 40); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 8 {
		t.Errorf("bins rendered = %d, want 8:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(buf.String(), "#") {
		t.Error("no bars rendered")
	}
	if err := HistogramPlot(&buf, nil, 4, 40); err == nil {
		t.Error("empty data should error")
	}
}

func TestDensityPlot(t *testing.T) {
	var buf strings.Builder
	if err := DensityPlot(&buf, sampleData(2000, 3), 60, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, "M") {
		t.Errorf("density plot lacks curve or markers:\n%s", out)
	}
	if err := DensityPlot(&buf, nil, 60, 10); err == nil {
		t.Error("empty data should error")
	}
}

func TestComputeBoxStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	b := ComputeBoxStats("g", xs)
	if b.Median != 5.5 {
		t.Errorf("median = %g", b.Median)
	}
	if b.NumOutside != 1 {
		t.Errorf("outside = %d, want 1 (the 100)", b.NumOutside)
	}
	if b.WhiskerHi == 100 {
		t.Error("whisker must not extend to the outlier")
	}
	if b.WhiskerLo != 1 {
		t.Errorf("whisker lo = %g", b.WhiskerLo)
	}
	if b.Q1 >= b.Q3 {
		t.Error("quartiles inverted")
	}
}

func TestBoxPlot(t *testing.T) {
	var buf strings.Builder
	groups := map[string][]float64{
		"dora":    sampleData(300, 4),
		"pilatus": sampleData(300, 5),
	}
	if err := BoxPlot(&buf, groups, 50); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "dora") || !strings.Contains(out, "pilatus") {
		t.Errorf("labels missing:\n%s", out)
	}
	if !strings.Contains(out, "M") || !strings.Contains(out, "=") {
		t.Errorf("box glyphs missing:\n%s", out)
	}
	if err := BoxPlot(&buf, nil, 50); err == nil {
		t.Error("no groups should error")
	}
}

func TestViolinPlot(t *testing.T) {
	var buf strings.Builder
	groups := map[string][]float64{"a": sampleData(1000, 6)}
	if err := ViolinPlot(&buf, groups, 50); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "med") {
		t.Errorf("violin output:\n%s", buf.String())
	}
	if err := ViolinPlot(&buf, map[string][]float64{}, 50); err == nil {
		t.Error("no groups should error")
	}
}

func TestXYPlot(t *testing.T) {
	var buf strings.Builder
	s := []Series{
		{Name: "measured", X: []float64{1, 2, 4, 8}, Y: []float64{8, 4, 2, 1}, Marker: 'o'},
		{Name: "ideal", X: []float64{1, 2, 4, 8}, Y: []float64{8, 4, 2, 1}},
	}
	if err := XYPlot(&buf, "scaling", s, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "scaling") || !strings.Contains(out, "measured") {
		t.Errorf("plot output:\n%s", out)
	}
	if !strings.Contains(out, "o") {
		t.Error("custom marker missing")
	}
	if err := XYPlot(&buf, "", nil, 40, 10); err == nil {
		t.Error("no series should error")
	}
	bad := []Series{{Name: "b", X: []float64{1}, Y: []float64{1, 2}}}
	if err := XYPlot(&buf, "", bad, 40, 10); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestPlotsHandleConstantData(t *testing.T) {
	var buf strings.Builder
	constData := []float64{3, 3, 3, 3, 3, 3}
	if err := BoxPlot(&buf, map[string][]float64{"c": constData}, 40); err != nil {
		t.Errorf("constant box plot: %v", err)
	}
	if err := ViolinPlot(&buf, map[string][]float64{"c": constData}, 40); err != nil {
		t.Errorf("constant violin: %v", err)
	}
	s := []Series{{Name: "flat", X: []float64{1, 2}, Y: []float64{5, 5}}}
	if err := XYPlot(&buf, "", s, 40, 8); err != nil {
		t.Errorf("flat series: %v", err)
	}
}
