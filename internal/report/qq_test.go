package report

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

func TestQQPlotNormalData(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 5 + 2*rng.NormFloat64()
	}
	var sb strings.Builder
	if err := QQPlot(&sb, xs, 50, 12); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "o") || !strings.Contains(out, "straightness") {
		t.Errorf("Q-Q output incomplete:\n%s", out)
	}
	// For normal data the straightness annotation should read ≈1.
	if !strings.Contains(out, "r=0.99") && !strings.Contains(out, "r=1.00") {
		t.Errorf("expected high straightness annotation:\n%s", strings.SplitN(out, "\n", 2)[0])
	}
}

func TestQQPlotSubsamplesHugeData(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64())
	}
	var sb strings.Builder
	if err := QQPlot(&sb, xs, 50, 12); err != nil {
		t.Fatal(err)
	}
	if sb.Len() == 0 {
		t.Error("nothing rendered")
	}
}

func TestQQPlotValidation(t *testing.T) {
	var sb strings.Builder
	if err := QQPlot(&sb, []float64{1, 2}, 50, 12); err == nil {
		t.Error("tiny sample should error")
	}
	// Constant data is degenerate but must not panic.
	if err := QQPlot(&sb, []float64{3, 3, 3, 3}, 50, 12); err != nil {
		t.Errorf("constant data: %v", err)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("a|b", 1.5) // pipe must be escaped
	tbl.AddRow("c", 2)
	var sb strings.Builder
	if err := tbl.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"**demo**", "| name | value |", "| --- | --- |", `a\|b`} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	empty := &Table{}
	if err := empty.RenderMarkdown(&sb); err == nil {
		t.Error("headerless table should error")
	}
}
