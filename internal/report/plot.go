package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/stats"
)

// HistogramPlot renders a horizontal-bar histogram of xs with the given
// number of bins (Sturges when nbins <= 0) and bar width in characters.
func HistogramPlot(w io.Writer, xs []float64, nbins, width int) error {
	if nbins <= 0 {
		nbins = stats.SturgesBins(len(xs))
	}
	if width < 10 {
		width = 40
	}
	bins := stats.Histogram(xs, nbins)
	if bins == nil {
		return fmt.Errorf("report: nothing to plot")
	}
	maxC := 0
	for _, b := range bins {
		if b.Count > maxC {
			maxC = b.Count
		}
	}
	for _, b := range bins {
		bar := 0
		if maxC > 0 {
			bar = b.Count * width / maxC
		}
		if _, err := fmt.Fprintf(w, "[%12.6g, %12.6g) %6d %s\n",
			b.Lo, b.Hi, b.Count, strings.Repeat("#", bar)); err != nil {
			return err
		}
	}
	return nil
}

// DensityPlot renders a KDE curve as a vertical-axis ASCII chart, the
// text analogue of the paper's Figure 1 density with annotated summary
// positions (min, median, mean, 95th percentile, max).
func DensityPlot(w io.Writer, xs []float64, width, height int) error {
	if len(xs) == 0 {
		return fmt.Errorf("report: nothing to plot")
	}
	if width < 20 {
		width = 72
	}
	if height < 4 {
		height = 12
	}
	pts := stats.KDE(xs, 0, width)
	if pts == nil {
		return fmt.Errorf("report: degenerate sample")
	}
	maxD := 0.0
	for _, p := range pts {
		if p.Density > maxD {
			maxD = p.Density
		}
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c, p := range pts {
		h := int(p.Density / maxD * float64(height-1))
		for r := 0; r <= h; r++ {
			grid[height-1-r][c] = '#'
		}
	}
	// Annotate summary positions on an axis row.
	axis := []byte(strings.Repeat("-", width))
	lo, hi := pts[0].X, pts[len(pts)-1].X
	mark := func(x float64, ch byte) {
		if hi == lo {
			return
		}
		c := int((x - lo) / (hi - lo) * float64(width-1))
		if c >= 0 && c < width {
			axis[c] = ch
		}
	}
	s := stats.Summarize(xs)
	mark(s.Min, '|')
	mark(s.Max, '|')
	mark(s.Median, 'M')
	mark(s.Mean, 'A')
	mark(s.P95, '9')
	for _, row := range grid {
		if _, err := fmt.Fprintln(w, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, string(axis)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%-12.6g%s%12.6g\n  (axis marks: | min/max, M median, A mean, 9 p95)\n",
		lo, strings.Repeat(" ", max(0, width-24)), hi)
	return err
}

// BoxStats are the five-number summary plus mean and 1.5-IQR whiskers
// used by box plots (whisker semantics per the paper: lowest/highest
// observation within 1.5 IQR of the box).
type BoxStats struct {
	Label      string
	Min, Max   float64
	Q1, Q3     float64
	Median     float64
	Mean       float64
	WhiskerLo  float64
	WhiskerHi  float64
	NumOutside int // observations beyond the whiskers
}

// ComputeBoxStats derives box-plot statistics from a sample.
func ComputeBoxStats(label string, xs []float64) BoxStats {
	s := stats.Sorted(xs)
	q1 := stats.Quantile(s, 0.25)
	q3 := stats.Quantile(s, 0.75)
	iqr := q3 - q1
	loFence := q1 - 1.5*iqr
	hiFence := q3 + 1.5*iqr
	b := BoxStats{
		Label:  label,
		Min:    stats.Min(xs),
		Max:    stats.Max(xs),
		Q1:     q1,
		Q3:     q3,
		Median: stats.Quantile(s, 0.5),
		Mean:   stats.Mean(xs),
	}
	b.WhiskerLo = b.Max
	b.WhiskerHi = b.Min
	for _, v := range s {
		if v >= loFence && v < b.WhiskerLo {
			b.WhiskerLo = v
		}
		if v <= hiFence && v > b.WhiskerHi {
			b.WhiskerHi = v
		}
		if v < loFence || v > hiFence {
			b.NumOutside++
		}
	}
	return b
}

// BoxPlot renders one horizontal box plot line per group on a shared
// axis spanning all groups' whiskers.
func BoxPlot(w io.Writer, groups map[string][]float64, width int) error {
	if len(groups) == 0 {
		return fmt.Errorf("report: no groups")
	}
	if width < 30 {
		width = 60
	}
	var boxes []BoxStats
	lo, hi := math.Inf(1), math.Inf(-1)
	// Deterministic order: sort keys.
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	labelW := 0
	for _, k := range keys {
		b := ComputeBoxStats(k, groups[k])
		boxes = append(boxes, b)
		lo = math.Min(lo, b.WhiskerLo)
		hi = math.Max(hi, b.WhiskerHi)
		if len(k) > labelW {
			labelW = len(k)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	col := func(x float64) int {
		c := int((x - lo) / (hi - lo) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	for _, b := range boxes {
		row := []byte(strings.Repeat(" ", width))
		for c := col(b.WhiskerLo); c <= col(b.WhiskerHi); c++ {
			row[c] = '-'
		}
		for c := col(b.Q1); c <= col(b.Q3); c++ {
			row[c] = '='
		}
		row[col(b.WhiskerLo)] = '|'
		row[col(b.WhiskerHi)] = '|'
		row[col(b.Median)] = 'M'
		if c := col(b.Mean); row[c] != 'M' {
			row[c] = 'A'
		}
		if _, err := fmt.Fprintf(w, "%-*s %s (med %.4g, out %d)\n",
			labelW, b.Label, string(row), b.Median, b.NumOutside); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s %-12.6g%s%12.6g\n", labelW, "",
		lo, strings.Repeat(" ", max(0, width-24)), hi)
	return err
}

// ViolinPlot renders per-group density strips using glyph thickness —
// the text analogue of Fig 7c's violin plot. Each group occupies one row.
func ViolinPlot(w io.Writer, groups map[string][]float64, width int) error {
	if len(groups) == 0 {
		return fmt.Errorf("report: no groups")
	}
	if width < 30 {
		width = 60
	}
	keys := make([]string, 0, len(groups))
	labelW := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for k, xs := range groups {
		keys = append(keys, k)
		if len(k) > labelW {
			labelW = len(k)
		}
		lo = math.Min(lo, stats.Min(xs))
		hi = math.Max(hi, stats.Max(xs))
	}
	sort.Strings(keys)
	if hi == lo {
		hi = lo + 1
	}
	glyphs := []byte(" .:-=+*#%@")
	for _, k := range keys {
		xs := groups[k]
		// Bin the data onto the shared axis and map counts to glyphs.
		counts := make([]int, width)
		for _, v := range xs {
			c := int((v - lo) / (hi - lo) * float64(width-1))
			if c >= 0 && c < width {
				counts[c]++
			}
		}
		maxC := 0
		for _, c := range counts {
			if c > maxC {
				maxC = c
			}
		}
		row := make([]byte, width)
		for i, c := range counts {
			g := 0
			if maxC > 0 && c > 0 {
				g = 1 + c*(len(glyphs)-2)/maxC
			}
			row[i] = glyphs[g]
		}
		med := stats.Median(xs)
		if _, err := fmt.Fprintf(w, "%-*s %s (med %.4g)\n", labelW, k, string(row), med); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s %-12.6g%s%12.6g\n", labelW, "",
		lo, strings.Repeat(" ", max(0, width-24)), hi)
	return err
}

// Series is one named line in an XY chart.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte
}

// XYPlot renders multiple series on a shared linear-axis character grid
// (the text analogue of Figs 4, 5 and 7a/b).
func XYPlot(w io.Writer, title string, series []Series, width, height int) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series")
	}
	if width < 20 {
		width = 72
	}
	if height < 5 {
		height = 20
	}
	xlo, xhi := math.Inf(1), math.Inf(-1)
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("report: series %q x/y length mismatch", s.Name)
		}
		for i := range s.X {
			xlo = math.Min(xlo, s.X[i])
			xhi = math.Max(xhi, s.X[i])
			ylo = math.Min(ylo, s.Y[i])
			yhi = math.Max(yhi, s.Y[i])
		}
	}
	if xhi == xlo {
		xhi = xlo + 1
	}
	if yhi == ylo {
		yhi = ylo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		for i := range s.X {
			c := int((s.X[i] - xlo) / (xhi - xlo) * float64(width-1))
			r := int((s.Y[i] - ylo) / (yhi - ylo) * float64(height-1))
			grid[height-1-r][c] = marker
		}
	}
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	for r, row := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%.4g", yhi)
		case height - 1:
			label = fmt.Sprintf("%.4g", ylo)
		}
		if _, err := fmt.Fprintf(w, "%10s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10s +%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%10s  %-12.6g%s%12.6g\n", "",
		xlo, strings.Repeat(" ", max(0, width-24)), xhi); err != nil {
		return err
	}
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		if _, err := fmt.Fprintf(w, "%10s  %c = %s\n", "", marker, s.Name); err != nil {
			return err
		}
	}
	return nil
}
