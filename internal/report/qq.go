package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/stats"
)

// QQPlot renders a normal quantile-quantile scatter of xs (the paper's
// Fig 2 bottom row): theoretical standard-normal quantiles on the x
// axis, sample order statistics on the y axis, with the least-squares
// reference line drawn as '-' where no point lands. Near-linear point
// clouds indicate normality.
func QQPlot(w io.Writer, xs []float64, width, height int) error {
	pts := stats.QQPoints(xs)
	if len(pts) < 3 {
		return fmt.Errorf("report: need at least 3 observations for a Q-Q plot")
	}
	if width < 20 {
		width = 60
	}
	if height < 8 {
		height = 16
	}
	// Subsample huge datasets evenly (order statistics are already
	// sorted, so striding keeps the shape).
	if len(pts) > 2000 {
		stride := len(pts) / 2000
		sub := make([]stats.QQPoint, 0, 2000)
		for i := 0; i < len(pts); i += stride {
			sub = append(sub, pts[i])
		}
		pts = sub
	}

	xlo, xhi := pts[0].Theoretical, pts[len(pts)-1].Theoretical
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		ylo = math.Min(ylo, p.Sample)
		yhi = math.Max(yhi, p.Sample)
	}
	if xhi == xlo {
		xhi = xlo + 1
	}
	if yhi == ylo {
		yhi = ylo + 1
	}

	// Least-squares reference line through the Q-Q points.
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		sx += p.Theoretical
		sy += p.Sample
		sxx += p.Theoretical * p.Theoretical
		sxy += p.Theoretical * p.Sample
	}
	n := float64(len(pts))
	denom := n*sxx - sx*sx
	slope, intercept := 0.0, sy/n
	if denom != 0 {
		slope = (n*sxy - sx*sy) / denom
		intercept = (sy - slope*sx) / n
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int((x - xlo) / (xhi - xlo) * float64(width-1))
		return min(max(c, 0), width-1)
	}
	row := func(y float64) int {
		r := int((y - ylo) / (yhi - ylo) * float64(height-1))
		return height - 1 - min(max(r, 0), height-1)
	}
	// Reference line first so points overwrite it.
	for c := 0; c < width; c++ {
		x := xlo + (xhi-xlo)*float64(c)/float64(width-1)
		y := intercept + slope*x
		if y >= ylo && y <= yhi {
			grid[row(y)][c] = '-'
		}
	}
	for _, p := range pts {
		grid[row(p.Sample)][col(p.Theoretical)] = 'o'
	}

	corr := stats.QQCorrelation(xs)
	if _, err := fmt.Fprintf(w, "normal Q-Q plot (n=%d, straightness r=%.5f)\n", len(xs), corr); err != nil {
		return err
	}
	for r, rowBytes := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%.4g", yhi)
		case height - 1:
			label = fmt.Sprintf("%.4g", ylo)
		}
		if _, err := fmt.Fprintf(w, "%10s |%s\n", label, string(rowBytes)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10s +%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%10s  %-8.3g%s%8.3g  (theoretical N(0,1) quantiles)\n", "",
		xlo, strings.Repeat(" ", max(0, width-16)), xhi)
	return err
}

// RenderMarkdown writes the table as GitHub-flavored Markdown — handy
// for dropping regenerated results straight into EXPERIMENTS.md-style
// documents.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if len(t.Headers) == 0 {
		return fmt.Errorf("report: markdown tables need headers")
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		b.WriteString("|")
		for i := 0; i < len(t.Headers); i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			b.WriteString(" |")
		}
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	var sep []string
	for range t.Headers {
		sep = append(sep, "---")
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}
