package report

import (
	"encoding/xml"
	"math/rand/v2"
	"strings"
	"testing"
)

// parseSVG validates well-formedness by streaming the tokens.
func parseSVG(t *testing.T, s string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(s))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
}

func TestSVGXYPlot(t *testing.T) {
	var sb strings.Builder
	series := []Series{
		{Name: "measured <µs>", X: []float64{1, 2, 4, 8}, Y: []float64{1, 2.2, 4.1, 8.9}},
		{Name: "ideal", X: []float64{1, 2, 4, 8}, Y: []float64{1, 2, 4, 8}},
	}
	if err := SVGXYPlot(&sb, "scaling & bounds", "processes", "speedup", series, 560, 360); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	parseSVG(t, out)
	for _, want := range []string{"<svg", "polyline", "circle", "scaling &amp; bounds", "measured &lt;µs&gt;"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if err := SVGXYPlot(&sb, "", "", "", nil, 0, 0); err == nil {
		t.Error("no series should error")
	}
	bad := []Series{{Name: "b", X: []float64{1}, Y: []float64{1, 2}}}
	if err := SVGXYPlot(&sb, "", "", "", bad, 0, 0); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestSVGDensityPlot(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = 280 + 15*rng.NormFloat64()
	}
	var sb strings.Builder
	if err := SVGDensityPlot(&sb, "HPL completion times", "seconds", xs, 560, 300); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	parseSVG(t, out)
	for _, want := range []string{"polygon", "median", "mean", "p95"} {
		if !strings.Contains(out, want) {
			t.Errorf("density SVG missing %q", want)
		}
	}
	if err := SVGDensityPlot(&sb, "", "", nil, 0, 0); err == nil {
		t.Error("empty data should error")
	}
	if err := SVGDensityPlot(&sb, "", "", []float64{5, 5, 5}, 0, 0); err == nil {
		t.Error("constant data should error (no KDE)")
	}
}

func TestSVGFlatSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	var sb strings.Builder
	flat := []Series{{Name: "flat", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}}}
	if err := SVGXYPlot(&sb, "", "", "", flat, 300, 200); err != nil {
		t.Fatal(err)
	}
	parseSVG(t, sb.String())
	if strings.Contains(sb.String(), "NaN") {
		t.Error("NaN leaked into SVG coordinates")
	}
}
