package noise

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/stats"
)

func sample(m Model, n int, base time.Duration, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(m.Perturb(rng, time.Duration(i)*time.Millisecond, base))
	}
	return xs
}

func TestNoneIsIdentity(t *testing.T) {
	xs := sample(None{}, 100, time.Microsecond, 1)
	for _, x := range xs {
		if x != float64(time.Microsecond) {
			t.Fatalf("None perturbed %v", x)
		}
	}
}

func TestGaussianStaysPositiveAndCentered(t *testing.T) {
	xs := sample(Gaussian{Rel: 0.1}, 20000, time.Microsecond, 2)
	for _, x := range xs {
		if x <= 0 {
			t.Fatal("non-positive duration")
		}
	}
	mean := stats.Mean(xs)
	if math.Abs(mean/float64(time.Microsecond)-1) > 0.01 {
		t.Errorf("Gaussian mean ratio = %g, want ≈1", mean/float64(time.Microsecond))
	}
}

func TestLogNormalRightSkewed(t *testing.T) {
	xs := sample(LogNormal{Sigma: 0.5}, 50000, time.Microsecond, 3)
	if stats.Skewness(xs) <= 0 {
		t.Errorf("log-normal noise skewness = %g, want > 0", stats.Skewness(xs))
	}
	if stats.Mean(xs) <= stats.Median(xs) {
		t.Error("log-normal noise should have mean > median")
	}
	// Mean slowdown is exp(σ²/2) ≈ 1.133.
	ratio := stats.Mean(xs) / float64(time.Microsecond)
	if math.Abs(ratio-math.Exp(0.125)) > 0.02 {
		t.Errorf("mean slowdown = %g, want ≈ %g", ratio, math.Exp(0.125))
	}
}

func TestParetoTailFrequencyAndSeverity(t *testing.T) {
	m := ParetoTail{Prob: 0.05, Scale: 10 * time.Microsecond, Alpha: 2}
	xs := sample(m, 50000, time.Microsecond, 4)
	base := float64(time.Microsecond)
	hit := 0
	for _, x := range xs {
		if x > base {
			hit++
			if x < base+float64(10*time.Microsecond) {
				t.Fatalf("tail hit below Scale: %g", x)
			}
		}
	}
	frac := float64(hit) / float64(len(xs))
	if math.Abs(frac-0.05) > 0.01 {
		t.Errorf("tail frequency = %g, want ≈0.05", frac)
	}
}

func TestPeriodicWindows(t *testing.T) {
	m := Periodic{Period: time.Millisecond, Window: 100 * time.Microsecond}
	rng := rand.New(rand.NewPCG(5, 5))
	// Event at phase 0: delayed by the full window.
	d := m.Perturb(rng, 0, time.Microsecond)
	if d != time.Microsecond+100*time.Microsecond {
		t.Errorf("at window start: %v", d)
	}
	// Event mid-window: delayed by the remainder.
	d = m.Perturb(rng, 40*time.Microsecond, time.Microsecond)
	if d != time.Microsecond+60*time.Microsecond {
		t.Errorf("mid-window: %v", d)
	}
	// Event outside the window: untouched.
	d = m.Perturb(rng, 500*time.Microsecond, time.Microsecond)
	if d != time.Microsecond {
		t.Errorf("outside window: %v", d)
	}
	// Next period hits again.
	d = m.Perturb(rng, time.Millisecond, time.Microsecond)
	if d != time.Microsecond+100*time.Microsecond {
		t.Errorf("next period: %v", d)
	}
	// Degenerate config is identity.
	if got := (Periodic{}).Perturb(rng, 0, time.Microsecond); got != time.Microsecond {
		t.Error("zero Periodic should be identity")
	}
}

func TestMixtureIsMultimodal(t *testing.T) {
	m := Mixture{
		Models:  []Model{Shift{Delta: 0}, Shift{Delta: 50 * time.Microsecond}},
		Weights: []float64{0.7, 0.3},
	}
	xs := sample(m, 20000, time.Microsecond, 6)
	lo, hi := 0, 0
	for _, x := range xs {
		if x == float64(time.Microsecond) {
			lo++
		} else if x == float64(51*time.Microsecond) {
			hi++
		} else {
			t.Fatalf("unexpected value %g", x)
		}
	}
	fhi := float64(hi) / float64(len(xs))
	if math.Abs(fhi-0.3) > 0.02 {
		t.Errorf("second mode frequency = %g, want ≈0.3", fhi)
	}
}

func TestMixtureEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	if got := (Mixture{}).Perturb(rng, 0, time.Second); got != time.Second {
		t.Error("empty mixture should be identity")
	}
	// Zero weights fall back to the first model.
	m := Mixture{Models: []Model{Shift{Delta: time.Second}}, Weights: []float64{0}}
	if got := m.Perturb(rng, 0, 0); got != time.Second {
		t.Error("zero-weight mixture should use first model")
	}
}

func TestStackComposes(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	s := Stack{Shift{Delta: time.Microsecond}, Shift{Delta: 2 * time.Microsecond}}
	if got := s.Perturb(rng, 0, time.Microsecond); got != 4*time.Microsecond {
		t.Errorf("stacked shifts = %v, want 4µs", got)
	}
}

func TestOnceWarmup(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	o := &Once{Inner: Shift{Delta: time.Millisecond}, Count: 2}
	if o.Perturb(rng, 0, time.Microsecond) != time.Microsecond+time.Millisecond {
		t.Error("first event should be shifted")
	}
	if o.Perturb(rng, 0, time.Microsecond) != time.Microsecond+time.Millisecond {
		t.Error("second event should be shifted")
	}
	if o.Perturb(rng, 0, time.Microsecond) != time.Microsecond {
		t.Error("third event should be clean")
	}
	o.Reset()
	if o.Perturb(rng, 0, time.Microsecond) != time.Microsecond+time.Millisecond {
		t.Error("Reset should re-arm the warmup")
	}
}

func TestSystemNoiseComposition(t *testing.T) {
	if _, ok := SystemNoise(0, 0, 0, 0, 0).(None); !ok {
		t.Error("all-zero SystemNoise should be None")
	}
	m := SystemNoise(0.01, 0.001, time.Microsecond, time.Millisecond, 10*time.Microsecond)
	s, ok := m.(Stack)
	if !ok || len(s) != 3 {
		t.Fatalf("expected 3-element Stack, got %T", m)
	}
	xs := sample(m, 10000, 100*time.Microsecond, 10)
	if stats.Min(xs) <= 0 {
		t.Error("noise produced non-positive durations")
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	m := SystemNoise(0.02, 0.01, time.Microsecond, 0, 0)
	a := sample(m, 1000, time.Microsecond, 42)
	b := sample(m, 1000, time.Microsecond, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different noise")
		}
	}
}
