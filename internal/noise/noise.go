// Package noise models the sources of nondeterminism the paper lists in
// §1 — network background traffic, task scheduling, interrupts, cache
// effects — as composable stochastic processes that perturb simulated
// execution times. Each model maps a base duration (and the current
// simulated time, for time-correlated processes) to a perturbed duration.
//
// The models produce the phenomenology that motivates the paper's
// statistics: right-skewed log-normal bodies, heavy Pareto interference
// tails, multimodal mixtures from scheduling, and periodic OS jitter.
package noise

import (
	"math"
	"time"
)

// Source is the randomness a noise model may consume. Both
// *math/rand/v2.Rand (the machine's shared stream) and *rng.Stream (the
// per-rank value streams the collective engine uses) satisfy it, so one
// model works under either draw discipline.
type Source interface {
	Float64() float64
	NormFloat64() float64
}

// Model perturbs a nominal duration. Implementations must be
// deterministic given the rng stream, so seeded experiments reproduce
// bit-for-bit.
type Model interface {
	// Perturb returns the observed duration for a nominal duration d
	// occurring at simulated time now.
	Perturb(rng Source, now, d time.Duration) time.Duration
}

// None is the identity model (a perfectly quiet machine).
type None struct{}

// Perturb returns d unchanged.
func (None) Perturb(_ Source, _, d time.Duration) time.Duration { return d }

// Gaussian adds zero-mean normal noise with relative standard deviation
// Rel (e.g. 0.01 for 1%), truncated so durations stay positive.
type Gaussian struct {
	Rel float64
}

// Perturb applies the multiplicative Gaussian factor.
func (g Gaussian) Perturb(rng Source, _, d time.Duration) time.Duration {
	f := 1 + g.Rel*rng.NormFloat64()
	if f < 0.01 {
		f = 0.01
	}
	return time.Duration(float64(d) * f)
}

// LogNormal multiplies the duration by exp(σ·Z), the right-skewed
// multiplicative slowdown observed for most system activity. Sigma around
// 0.005–0.05 reproduces typical supercomputer variability; the mean
// slowdown exp(σ²/2) is intentionally > 1 (noise only delays).
type LogNormal struct {
	Sigma float64
}

// Perturb applies the log-normal slowdown.
func (l LogNormal) Perturb(rng Source, _, d time.Duration) time.Duration {
	return time.Duration(float64(d) * math.Exp(l.Sigma*rng.NormFloat64()))
}

// ParetoTail adds, with probability Prob per event, a heavy-tailed delay
// of at least Scale (Pareto shape Alpha) — rare interference such as
// network congestion bursts or page faults.
type ParetoTail struct {
	Prob  float64       // per-event probability of an interference hit
	Scale time.Duration // minimum extra delay when hit
	Alpha float64       // tail index (smaller = heavier); 1.5–3 typical
}

// Perturb adds the occasional Pareto-distributed delay.
func (p ParetoTail) Perturb(rng Source, _, d time.Duration) time.Duration {
	if rng.Float64() >= p.Prob {
		return d
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	extra := float64(p.Scale) / math.Pow(u, 1/p.Alpha)
	return d + time.Duration(extra)
}

// Periodic models OS daemon activity: every Period of simulated time, a
// window of length Window steals the core, delaying any event that lands
// inside it by the remainder of the window (the "fixed-frequency noise"
// of Hoefler, Schneider & Lumsdaine's noise studies). Phase offsets the
// window start.
type Periodic struct {
	Period time.Duration
	Window time.Duration
	Phase  time.Duration
}

// Perturb delays events that fall into the periodic interference window.
func (p Periodic) Perturb(_ Source, now, d time.Duration) time.Duration {
	if p.Period <= 0 || p.Window <= 0 {
		return d
	}
	pos := (now + p.Phase) % p.Period
	if pos < p.Window {
		return d + (p.Window - pos)
	}
	return d
}

// Mixture selects one of its component models per event according to
// Weights (normalized internally), producing the multimodal timing
// distributions that scheduling and cache effects create.
type Mixture struct {
	Models  []Model
	Weights []float64
}

// Perturb dispatches to one randomly chosen component.
func (m Mixture) Perturb(rng Source, now, d time.Duration) time.Duration {
	if len(m.Models) == 0 {
		return d
	}
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	if total <= 0 {
		return m.Models[0].Perturb(rng, now, d)
	}
	u := rng.Float64() * total
	for i, w := range m.Weights {
		if u < w || i == len(m.Models)-1 {
			return m.Models[i].Perturb(rng, now, d)
		}
		u -= w
	}
	return d
}

// Stack applies models in sequence, feeding each model's output to the
// next — e.g. a log-normal body plus a Pareto tail plus periodic jitter.
type Stack []Model

// Perturb chains all component models.
func (s Stack) Perturb(rng Source, now, d time.Duration) time.Duration {
	for _, m := range s {
		d = m.Perturb(rng, now, d)
	}
	return d
}

// Shift adds a constant offset (modeling, e.g., warmup cost on the first
// iterations when combined with Once).
type Shift struct {
	Delta time.Duration
}

// Perturb adds the constant shift.
func (s Shift) Perturb(_ Source, _, d time.Duration) time.Duration {
	return d + s.Delta
}

// Once applies the inner model only to the first Count events, then
// becomes the identity — the "establish working state on demand" warmup
// behaviour of §4.1.2 (connection setup, cold caches, JIT).
type Once struct {
	Inner Model
	Count int
	seen  int
}

// Perturb applies Inner for the first Count events only. Once is
// stateful and must not be shared across concurrent processes.
func (o *Once) Perturb(rng Source, now, d time.Duration) time.Duration {
	if o.seen < o.Count {
		o.seen++
		return o.Inner.Perturb(rng, now, d)
	}
	return d
}

// Reset re-arms a Once model for a fresh run.
func (o *Once) Reset() { o.seen = 0 }

// SystemNoise builds the composite model used by the simulated clusters
// in this repository: a log-normal body (sigma), a rare heavy tail
// (prob, scale), and OS jitter with the given daemon period/window.
// Any zero parameter disables that component.
func SystemNoise(sigma, tailProb float64, tailScale, period, window time.Duration) Model {
	var s Stack
	if sigma > 0 {
		s = append(s, LogNormal{Sigma: sigma})
	}
	if tailProb > 0 && tailScale > 0 {
		s = append(s, ParetoTail{Prob: tailProb, Scale: tailScale, Alpha: 2})
	}
	if period > 0 && window > 0 {
		s = append(s, Periodic{Period: period, Window: window})
	}
	if len(s) == 0 {
		return None{}
	}
	return s
}
