// Package serve implements deterministic open-loop service workloads
// (ROADMAP item 2): seeded arrival-schedule generators (Poisson,
// multi-period diurnal, bursty ON/OFF) feeding simulated servers with
// bounded queues and size/deadline batching on the desim calendar
// queue, with per-request latencies recorded into the zero-allocation
// stats.LogHistogram for tail-percentile analysis.
//
// The package exists to measure latency the way the paper demands it be
// measured. A closed-loop load generator — the shape of most benchmark
// loops, where each client waits for a response before issuing its next
// request — silently stops offering load whenever the system stalls, so
// the very requests that would have observed the stall are never sent.
// That is coordinated omission, and it makes reported p99s lies of
// omission (Rule 2: report more than one number; Rule 6: model the
// distribution you actually have). Open-loop arrivals are generated
// from the seed alone, independent of responses, so queueing delay
// during stalls lands in the histogram. CheckCoordinatedOmission runs
// both modes on the identical seeded stall schedule and quantifies the
// gap.
//
// Determinism contract (DESIGN.md §9): a Run is a pure function of its
// Options. The arrival schedule and every per-request service draw are
// derived from (seed, salt, request index) — never from execution order
// — and the simulation itself is a single-threaded discrete-event run,
// so results are bit-identical across worker counts, shard layouts, and
// replays (Rule 9).
package serve

import "fmt"

// OmissionCheck is the result of running the same experiment open- and
// closed-loop: the coordinated-omission audit of Rule 2/6.
type OmissionCheck struct {
	Open   Result
	Closed Result
	// OpenP99/ClosedP99 are the p99 sojourn times (seconds) of each
	// mode; Ratio is Open/Closed — how badly a closed-loop harness
	// would have under-reported the tail on this workload.
	OpenP99   float64
	ClosedP99 float64
	Ratio     float64
}

// CheckCoordinatedOmission runs the experiment described by o twice on
// the identical seeded stall schedule and service model — once
// open-loop, once closed-loop — and reports the tail-latency gap. A
// Ratio near 1 means the workload had no stalls worth omitting; a large
// Ratio is the smoking gun that closed-loop numbers for this system
// are not trustworthy (o.Mode is ignored).
func CheckCoordinatedOmission(o Options) (OmissionCheck, error) {
	o.Hist = nil // each mode needs its own histogram
	o.Mode = OpenLoop
	open, err := Run(o)
	if err != nil {
		return OmissionCheck{}, fmt.Errorf("serve: open-loop run: %w", err)
	}
	o.Mode = ClosedLoop
	closed, err := Run(o)
	if err != nil {
		return OmissionCheck{}, fmt.Errorf("serve: closed-loop run: %w", err)
	}
	chk := OmissionCheck{
		Open:      open,
		Closed:    closed,
		OpenP99:   open.Hist.Quantile(0.99),
		ClosedP99: closed.Hist.Quantile(0.99),
	}
	if chk.ClosedP99 > 0 {
		chk.Ratio = chk.OpenP99 / chk.ClosedP99
	}
	return chk, nil
}
