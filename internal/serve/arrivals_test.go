package serve

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestScheduleDeterministic(t *testing.T) {
	cfgs := []ArrivalConfig{
		{Kind: Poisson, Rate: 500},
		{Kind: Diurnal, Rate: 500, Periods: []DiurnalPeriod{{Period: 2 * time.Second, Amplitude: 0.5}}},
		{Kind: OnOff, Rate: 500},
	}
	for _, cfg := range cfgs {
		a, err := cfg.Schedule(5*time.Second, 0, 42)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Kind, err)
		}
		b, err := cfg.Schedule(5*time.Second, 0, 42)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Kind, err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: same seed, different lengths %d vs %d", cfg.Kind, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverges at %d: %v vs %v", cfg.Kind, i, a[i], b[i])
			}
		}
		c, err := cfg.Schedule(5*time.Second, 0, 43)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Kind, err)
		}
		if len(a) == len(c) {
			same := true
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("%s: different seeds produced identical schedules", cfg.Kind)
			}
		}
	}
}

func TestScheduleMonotoneInRange(t *testing.T) {
	for _, cfg := range []ArrivalConfig{
		{Kind: Poisson, Rate: 1000},
		{Kind: Diurnal, Rate: 1000, Periods: []DiurnalPeriod{{Period: time.Second, Amplitude: 1}}},
		{Kind: OnOff, Rate: 1000},
	} {
		dur := 3 * time.Second
		sched, err := cfg.Schedule(dur, 0, 7)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Kind, err)
		}
		prev := time.Duration(-1)
		for i, at := range sched {
			if at <= 0 || at > dur {
				t.Fatalf("%s: arrival %d at %v outside (0, %v]", cfg.Kind, i, at, dur)
			}
			if at < prev {
				t.Fatalf("%s: arrival %d at %v before predecessor %v", cfg.Kind, i, at, prev)
			}
			prev = at
		}
	}
}

func TestPoissonRate(t *testing.T) {
	// 200 req/s over 50 s: the count is Poisson(10000); five standard
	// deviations is ±500.
	sched, err := ArrivalConfig{Rate: 200}.Schedule(50*time.Second, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(sched); math.Abs(float64(n)-10000) > 500 {
		t.Fatalf("poisson count %d, want 10000±500", n)
	}
}

func TestDiurnalModulation(t *testing.T) {
	// One full 10 s sinusoid at amplitude 0.9: the positive half-wave
	// must carry far more arrivals than the trough half.
	cfg := ArrivalConfig{
		Kind:    Diurnal,
		Rate:    500,
		Periods: []DiurnalPeriod{{Period: 10 * time.Second, Amplitude: 0.9}},
	}
	sched, err := cfg.Schedule(10*time.Second, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	var first, second int
	for _, at := range sched {
		if at <= 5*time.Second {
			first++
		} else {
			second++
		}
	}
	if first < 2*second {
		t.Fatalf("diurnal modulation missing: first half %d, second half %d", first, second)
	}
	// The long-run mean must still be Rate: expected ≈ 5000.
	if n := len(sched); math.Abs(float64(n)-5000) > 500 {
		t.Fatalf("diurnal count %d, want ≈5000 (mean-rate preservation)", n)
	}
}

func TestOnOffBurstiness(t *testing.T) {
	// The MMPP must be overdispersed relative to Poisson: the index of
	// dispersion (var/mean of per-bin counts) is ≈1 for Poisson and ≫1
	// for ON/OFF bursts.
	dur := 20 * time.Second
	bin := 50 * time.Millisecond
	dispersion := func(cfg ArrivalConfig) float64 {
		sched, err := cfg.Schedule(dur, 0, 11)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]float64, int(dur/bin))
		for _, at := range sched {
			i := int(at / bin)
			if i >= len(counts) {
				i = len(counts) - 1
			}
			counts[i]++
		}
		var mean float64
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		var v float64
		for _, c := range counts {
			v += (c - mean) * (c - mean)
		}
		v /= float64(len(counts) - 1)
		return v / mean
	}
	poisson := dispersion(ArrivalConfig{Rate: 400})
	burst := dispersion(ArrivalConfig{Kind: OnOff, Rate: 400})
	if poisson > 1.5 {
		t.Fatalf("poisson dispersion %.2f, want ≈1", poisson)
	}
	if burst < 2 {
		t.Fatalf("onoff dispersion %.2f, want ≫1 (poisson was %.2f)", burst, poisson)
	}
}

func TestScheduleMaxN(t *testing.T) {
	sched, err := ArrivalConfig{Rate: 1e6}.Schedule(time.Second, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 100 {
		t.Fatalf("maxN cap: got %d arrivals, want 100", len(sched))
	}
}

func TestScheduleErrors(t *testing.T) {
	bad := []ArrivalConfig{
		{Kind: "weibull", Rate: 1},
		{Rate: 0},
		{Rate: -3},
		{Rate: math.Inf(1)},
		{Kind: Diurnal, Rate: 1},
		{Kind: Diurnal, Rate: 1, Periods: []DiurnalPeriod{{Period: -time.Second}}},
		{Kind: Diurnal, Rate: 1, Periods: []DiurnalPeriod{{Period: time.Second, Amplitude: 1.5}}},
		{Kind: OnOff, Rate: 1, MeanOn: -time.Second},
		{Kind: OnOff, Rate: 1, OnFactor: -1},
	}
	for i, cfg := range bad {
		if _, err := cfg.Schedule(time.Second, 0, 1); !errors.Is(err, ErrBadArrivals) {
			t.Errorf("config %d: err = %v, want ErrBadArrivals", i, err)
		}
	}
	if _, err := (ArrivalConfig{Rate: 1}).Schedule(0, 0, 1); !errors.Is(err, ErrBadArrivals) {
		t.Errorf("zero duration: err = %v, want ErrBadArrivals", err)
	}
}

// FuzzArrivalSchedule checks the generator invariants on arbitrary
// inputs: no panics, arrivals strictly inside (0, duration], monotone
// non-decreasing, capped at maxN, and bit-identical on regeneration.
func FuzzArrivalSchedule(f *testing.F) {
	f.Add(uint8(0), uint64(1), uint16(1000), uint8(10))
	f.Add(uint8(1), uint64(42), uint16(500), uint8(3))
	f.Add(uint8(2), uint64(7), uint16(60000), uint8(1))
	f.Fuzz(func(t *testing.T, kind uint8, seed uint64, rateMilli uint16, durDeciSec uint8) {
		rate := float64(rateMilli) // up to 65535 req/s
		if rate == 0 {
			rate = 0.5
		}
		dur := time.Duration(int(durDeciSec)%50+1) * 100 * time.Millisecond
		var cfg ArrivalConfig
		switch kind % 3 {
		case 0:
			cfg = ArrivalConfig{Kind: Poisson, Rate: rate}
		case 1:
			cfg = ArrivalConfig{Kind: Diurnal, Rate: rate, Periods: []DiurnalPeriod{
				{Period: dur / 2, Amplitude: float64(seed%101) / 100},
				{Period: dur, Amplitude: 0.3},
			}}
		case 2:
			cfg = ArrivalConfig{Kind: OnOff, Rate: rate,
				MeanOn:  time.Duration(seed%97+1) * time.Millisecond,
				MeanOff: time.Duration(seed%251+1) * time.Millisecond}
		}
		maxN := 20000
		a, err := cfg.Schedule(dur, maxN, seed)
		if err != nil {
			t.Fatalf("valid config rejected: %v", err)
		}
		if len(a) > maxN {
			t.Fatalf("maxN %d exceeded: %d arrivals", maxN, len(a))
		}
		prev := time.Duration(-1)
		for i, at := range a {
			if at <= 0 || at > dur {
				t.Fatalf("arrival %d at %v outside (0, %v]", i, at, dur)
			}
			if at < prev {
				t.Fatalf("arrival %d at %v before %v", i, at, prev)
			}
			prev = at
		}
		b, err := cfg.Schedule(dur, maxN, seed)
		if err != nil || len(a) != len(b) {
			t.Fatalf("regeneration diverged: %v, %d vs %d", err, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("regeneration diverged at %d", i)
			}
		}
	})
}
