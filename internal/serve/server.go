package serve

import (
	"fmt"
	"math"
	"time"

	"repro/internal/desim"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Telemetry: serve's own behaviour, observable without perturbing it
// (these writes never reach a histogram or an RNG stream).
var (
	telRequests = telemetry.Default().Counter("serve.requests")
	telDropped  = telemetry.Default().Counter("serve.dropped")
	telBatches  = telemetry.Default().Counter("serve.batches")
)

// ServiceConfig is the per-request service-time model: lognormal with
// median Mean and shape Sigma (Sigma 0 = deterministic Mean), drawn from
// a per-request stream keyed on (seed, request index) so a request's
// cost is identical whether it is served open-loop, closed-loop, first,
// or last — the property the coordinated-omission comparison and every
// bit-identity guarantee rest on.
type ServiceConfig struct {
	Mean    time.Duration
	Sigma   float64
	PerItem time.Duration // added service time per extra request in a batch
}

// Stall is one injected server freeze: no batch may start service inside
// [At, At+Dur). In-flight batches complete normally — the stall models a
// scheduler stall or GC pause at the dispatch point, the canonical
// trigger of coordinated omission.
type Stall struct {
	At  time.Duration
	Dur time.Duration
}

// ServerConfig parametrizes the simulated service.
type ServerConfig struct {
	// Servers is the number of parallel service units (default 1).
	Servers int
	// QueueCap bounds the pending-request queue; arrivals beyond it are
	// dropped and counted (0 = unbounded).
	QueueCap int
	// BatchMax is the largest batch a server takes at once (default 1 =
	// no batching). BatchDelay is how long an unfilled batch waits for
	// more requests before dispatching anyway (0 = dispatch whatever is
	// queued as soon as a server is free) — the size/deadline policy of
	// inference serving.
	BatchMax   int
	BatchDelay time.Duration
	// Service is the service-time model.
	Service ServiceConfig
	// Stalls are injected dispatch freezes, sorted by At.
	Stalls []Stall
}

// ErrBadServer reports a nonsensical server configuration.
var ErrBadServer = fmt.Errorf("serve: invalid server config")

func (c ServerConfig) withDefaults() (ServerConfig, error) {
	if c.Servers == 0 {
		c.Servers = 1
	}
	if c.BatchMax == 0 {
		c.BatchMax = 1
	}
	if c.Servers < 0 || c.QueueCap < 0 || c.BatchMax < 0 || c.BatchDelay < 0 {
		return c, fmt.Errorf("%w: negative servers/queue/batch parameters", ErrBadServer)
	}
	if c.Service.Mean == 0 {
		c.Service.Mean = time.Millisecond
	}
	if c.Service.Mean < 0 || c.Service.Sigma < 0 || c.Service.PerItem < 0 {
		return c, fmt.Errorf("%w: negative service-time parameters", ErrBadServer)
	}
	for i, s := range c.Stalls {
		if s.At < 0 || s.Dur <= 0 {
			return c, fmt.Errorf("%w: stall %d at %v for %v", ErrBadServer, i, s.At, s.Dur)
		}
		if i > 0 && s.At < c.Stalls[i-1].At+c.Stalls[i-1].Dur {
			return c, fmt.Errorf("%w: stalls must be sorted and non-overlapping", ErrBadServer)
		}
	}
	return c, nil
}

// LoopMode selects how the load generator issues requests.
type LoopMode string

// Load-generation modes.
const (
	// OpenLoop issues requests on the arrival schedule regardless of
	// responses — the only mode whose tail percentiles are free of
	// coordinated omission.
	OpenLoop LoopMode = "open-loop"
	// ClosedLoop keeps a fixed number of clients, each issuing its next
	// request only after the previous response — the shape of most
	// naive benchmark loops, which under-reports tails under stalls.
	ClosedLoop LoopMode = "closed-loop"
)

// DefaultMaxRequests caps a single epoch's request count as a safety
// valve against runaway rate×duration configurations.
const DefaultMaxRequests = 4 << 20

// Options configures one simulated serving epoch.
type Options struct {
	Arrival  ArrivalConfig
	Server   ServerConfig
	Duration time.Duration
	// MaxRequests caps the epoch (0 = DefaultMaxRequests).
	MaxRequests int
	Seed        uint64
	// Mode defaults to OpenLoop.
	Mode LoopMode
	// Clients is the closed-loop concurrency (0 = Servers).
	Clients int
	// Hist, when non-nil, receives the latency recordings (reset
	// first); otherwise a fresh histogram is allocated. Lets sweep
	// loops reuse one histogram allocation across epochs.
	Hist *stats.LogHistogram
}

// Result is one fully simulated epoch.
type Result struct {
	Mode LoopMode
	// Offered counts generated requests (scheduled arrivals open-loop,
	// issued requests closed-loop); Completed counts requests served and
	// recorded; Dropped counts arrivals rejected by the bounded queue.
	// Offered == Completed + Dropped.
	Offered   int
	Completed int
	Dropped   int
	// Batches counts dispatched batches; MeanBatch is the mean batch
	// size (NaN when no batch dispatched).
	Batches   int
	MeanBatch float64
	// OfferedRate is Offered/Duration in req/s; Throughput is
	// Completed/End — the achieved service rate over the full drain.
	OfferedRate float64
	Throughput  float64
	// MaxLatency is the exact worst sojourn time; End is the simulated
	// time at which the last completion fired (≥ Duration under
	// backlog).
	MaxLatency time.Duration
	End        time.Duration
	// Hist holds every recorded request latency in seconds.
	Hist *stats.LogHistogram
}

// request is one in-flight request.
type request struct {
	idx     int
	arrival time.Duration
}

// sim is the per-epoch simulation state driven by the desim engine.
type sim struct {
	eng  desim.Engine
	cfg  ServerConfig
	mode LoopMode
	seed uint64

	queue []request // FIFO; queue[head:] is the live window
	head  int
	idle  int

	hist      *stats.LogHistogram
	completed int
	dropped   int
	batches   int
	batchSum  int
	maxLat    time.Duration

	wakePending bool
	wakeTime    time.Duration

	// Closed-loop issue state.
	duration time.Duration
	maxReqs  int
	issued   int
}

// serviceDraw returns request i's service time, a pure function of
// (seed, i).
func (s *sim) serviceDraw(i int) time.Duration {
	svc := s.cfg.Service
	if svc.Sigma == 0 {
		return svc.Mean
	}
	st := rng.NewStream(
		rng.Mix64(s.seed^serviceSaltHi^uint64(i)),
		rng.Mix64(s.seed^serviceSaltLo^uint64(i)),
	)
	return time.Duration(math.Round(float64(svc.Mean) * math.Exp(svc.Sigma*st.NormFloat64())))
}

// stallClear returns the earliest time ≥ t at which dispatch is allowed.
func (s *sim) stallClear(t time.Duration) time.Duration {
	for _, st := range s.cfg.Stalls {
		if t < st.At {
			return t
		}
		if t < st.At+st.Dur {
			return st.At + st.Dur
		}
	}
	return t
}

func (s *sim) qlen() int { return len(s.queue) - s.head }

// arrive admits (or drops) one request at the current simulated time.
func (s *sim) arrive(idx int) {
	if s.cfg.QueueCap > 0 && s.qlen() >= s.cfg.QueueCap {
		s.dropped++
		telDropped.Inc()
		return
	}
	s.queue = append(s.queue, request{idx: idx, arrival: s.eng.Now()})
	s.tryDispatch()
}

// wake schedules a dispatch re-check at `at`, deduplicating against an
// already-pending earlier wake. Stale wake events are harmless:
// tryDispatch is idempotent.
func (s *sim) wake(at time.Duration) {
	if s.wakePending && s.wakeTime <= at {
		return
	}
	s.wakePending = true
	s.wakeTime = at
	s.eng.At(at, func(*desim.Engine) {
		if s.wakeTime == at {
			s.wakePending = false
		}
		s.tryDispatch()
	})
}

// tryDispatch hands queued requests to idle servers under the batching
// policy: dispatch a full batch immediately, or an unfilled one once the
// oldest request has waited BatchDelay; defer any start that lands
// inside a stall window to its end.
func (s *sim) tryDispatch() {
	now := s.eng.Now()
	for s.idle > 0 && s.qlen() > 0 {
		k := s.qlen()
		if k > s.cfg.BatchMax {
			k = s.cfg.BatchMax
		}
		if k < s.cfg.BatchMax && s.cfg.BatchDelay > 0 {
			if deadline := s.queue[s.head].arrival + s.cfg.BatchDelay; now < deadline {
				s.wake(deadline)
				return
			}
		}
		if clear := s.stallClear(now); clear > now {
			s.wake(clear)
			return
		}

		batch := append([]request(nil), s.queue[s.head:s.head+k]...)
		s.head += k
		if s.head == len(s.queue) {
			s.queue = s.queue[:0]
			s.head = 0
		}
		s.idle--
		s.batches++
		s.batchSum += k
		telBatches.Inc()

		// Batch service: the requests run together (the GPU-inference
		// shape — cost is the slowest member) plus a linear per-item
		// overhead.
		var dur time.Duration
		for _, r := range batch {
			if d := s.serviceDraw(r.idx); d > dur {
				dur = d
			}
		}
		dur += s.cfg.Service.PerItem * time.Duration(k-1)
		s.eng.After(dur, func(*desim.Engine) { s.complete(batch) })
	}
}

// complete records a finished batch and, closed-loop, lets each freed
// client issue its next request.
func (s *sim) complete(batch []request) {
	now := s.eng.Now()
	s.idle++
	for _, r := range batch {
		lat := now - r.arrival
		if lat > s.maxLat {
			s.maxLat = lat
		}
		s.hist.Record(lat.Seconds())
		s.completed++
		telRequests.Inc()
		if s.mode == ClosedLoop && now < s.duration && s.issued < s.maxReqs {
			idx := s.issued
			s.issued++
			s.arrive(idx)
		}
	}
	s.tryDispatch()
}

// Run simulates one serving epoch to completion (all admitted requests
// served) and returns the analyzed result. The simulation is a pure
// function of Options: a single-threaded discrete-event run whose
// arrival schedule and per-request service draws are derived from the
// seed alone — see DESIGN.md §9 for the determinism contract.
func Run(o Options) (Result, error) {
	srv, err := o.Server.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if o.Duration <= 0 {
		return Result{}, fmt.Errorf("%w: duration %v must be positive", ErrBadServer, o.Duration)
	}
	if o.Mode == "" {
		o.Mode = OpenLoop
	}
	if o.Mode != OpenLoop && o.Mode != ClosedLoop {
		return Result{}, fmt.Errorf("%w: unknown mode %q", ErrBadServer, o.Mode)
	}
	maxReqs := o.MaxRequests
	if maxReqs <= 0 {
		maxReqs = DefaultMaxRequests
	}
	hist := o.Hist
	if hist == nil {
		hist = &stats.LogHistogram{}
	}
	hist.Reset()

	s := &sim{
		cfg:      srv,
		mode:     o.Mode,
		seed:     o.Seed,
		idle:     srv.Servers,
		hist:     hist,
		duration: o.Duration,
		maxReqs:  maxReqs,
	}

	offered := 0
	switch o.Mode {
	case OpenLoop:
		schedule, err := o.Arrival.Schedule(o.Duration, maxReqs, o.Seed)
		if err != nil {
			return Result{}, err
		}
		offered = len(schedule)
		for i, at := range schedule {
			idx := i
			s.eng.At(at, func(*desim.Engine) { s.arrive(idx) })
		}
	case ClosedLoop:
		// Validate the arrival config anyway: open and closed runs of
		// the same Options must agree on what the experiment was.
		if _, err := o.Arrival.withDefaults(); err != nil {
			return Result{}, err
		}
		clients := o.Clients
		if clients <= 0 {
			clients = srv.Servers
		}
		for c := 0; c < clients && s.issued < maxReqs; c++ {
			idx := s.issued
			s.issued++
			s.eng.At(0, func(*desim.Engine) { s.arrive(idx) })
		}
	}

	end := s.eng.Run()
	if o.Mode == ClosedLoop {
		offered = s.issued
	}

	res := Result{
		Mode:        o.Mode,
		Offered:     offered,
		Completed:   s.completed,
		Dropped:     s.dropped,
		Batches:     s.batches,
		MeanBatch:   math.NaN(),
		OfferedRate: float64(offered) / o.Duration.Seconds(),
		MaxLatency:  s.maxLat,
		End:         end,
		Hist:        hist,
	}
	if s.batches > 0 {
		res.MeanBatch = float64(s.batchSum) / float64(s.batches)
	}
	if end > 0 {
		res.Throughput = float64(s.completed) / end.Seconds()
	}
	return res, nil
}
