package serve

import (
	"math"
	"testing"
	"time"
)

// TestCoordinatedOmissionGolden is the CO proof the audit rules lean on:
// the same seeded workload — Poisson arrivals, deterministic service, a
// single injected 2 s dispatch stall — measured open- and closed-loop,
// with the open-loop p99 checked against the analytic M/D/1-with-stall
// value.
//
// Setup: λ = 1000 req/s, deterministic s = 200 µs (ρ = 0.2), duration
// T = 20 s, one stall of S = 2 s at t = 5 s.
//
// Open loop: a request arriving x seconds into the stall finds ≈λx
// requests queued ahead; service resumes at the stall's end, so its
// sojourn is ≈ S − x + λx·s + s = S − x(1−ρ) + s. Inverting for the
// rank: the 1% worst of N ≈ λT requests are those with
// x ≤ 0.01·N·(1−ρ)/λ, hence
//
//	p99_open ≈ S + s − 0.01·λT·(1−ρ)/λ = 2.0002 − 0.16 ≈ 1.84 s.
//
// Closed loop (one client, one server): the client stops issuing while
// its single in-flight request is stalled, so exactly ONE request
// observes the stall; every other sojourn is s. With ≈T/s ≈ 10^5
// requests, p99_closed = s = 200 µs — the loop coordinated with the
// server's omission and erased the stall from the tail. The true tail
// is ~9000× worse than the closed-loop harness reports.
func TestCoordinatedOmissionGolden(t *testing.T) {
	const (
		lambda = 1000.0
		svc    = 200 * time.Microsecond
		stall  = 2 * time.Second
		dur    = 20 * time.Second
	)
	o := Options{
		Arrival: ArrivalConfig{Kind: Poisson, Rate: lambda},
		Server: ServerConfig{
			Service: ServiceConfig{Mean: svc},
			Stalls:  []Stall{{At: 5 * time.Second, Dur: stall}},
		},
		Duration: dur,
		Seed:     2026,
		Clients:  1,
	}
	chk, err := CheckCoordinatedOmission(o)
	if err != nil {
		t.Fatal(err)
	}

	rho := lambda * svc.Seconds()
	wantOpen := stall.Seconds() + svc.Seconds() -
		0.01*float64(chk.Open.Completed)*(1-rho)/lambda
	if rel := math.Abs(chk.OpenP99-wantOpen) / wantOpen; rel > 0.15 {
		t.Errorf("open-loop p99 = %.4f s, analytic %.4f s (rel err %.1f%%)",
			chk.OpenP99, wantOpen, 100*rel)
	}
	// Closed-loop p99 is the bare service time (±1/64 histogram
	// quantization): the stall vanished from the closed-loop tail.
	if rel := math.Abs(chk.ClosedP99-svc.Seconds()) / svc.Seconds(); rel > 0.05 {
		t.Errorf("closed-loop p99 = %.6f s, want ≈%.6f s", chk.ClosedP99, svc.Seconds())
	}
	if chk.Ratio < 1000 {
		t.Errorf("omission ratio %.0f, want ≫1000 (open %.4f s / closed %.6f s)",
			chk.Ratio, chk.OpenP99, chk.ClosedP99)
	}
	// The closed loop must also have seen the stall in its MAX — it is
	// only the percentile machinery that gets fooled, which is the point.
	if chk.Closed.MaxLatency < stall/2 {
		t.Errorf("closed-loop max %v never observed the stall", chk.Closed.MaxLatency)
	}
	if chk.Open.Completed != chk.Open.Offered || chk.Open.Dropped != 0 {
		t.Errorf("open loop lost requests: %+v", chk.Open)
	}
}

// TestOmissionRatioNearOneWithoutStalls: with no stalls and light load,
// open and closed loops agree — the ratio diagnostic does not cry wolf.
func TestOmissionRatioNearOneWithoutStalls(t *testing.T) {
	chk, err := CheckCoordinatedOmission(Options{
		Arrival:  ArrivalConfig{Rate: 200},
		Server:   ServerConfig{Service: ServiceConfig{Mean: 500 * time.Microsecond}},
		Duration: 5 * time.Second,
		Seed:     17,
		Clients:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if chk.Ratio < 0.8 || chk.Ratio > 2.5 {
		t.Fatalf("stall-free omission ratio %.2f, want ≈1 (open %.6f, closed %.6f)",
			chk.Ratio, chk.OpenP99, chk.ClosedP99)
	}
}
