package serve

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"time"
)

func TestRunDeterministic(t *testing.T) {
	// A Run is a pure function of Options: two invocations must agree on
	// every field, including the float sum inside the histogram (the
	// single-threaded event order is fixed, so even addition order is
	// reproduced bit-for-bit).
	o := Options{
		Arrival: ArrivalConfig{Kind: OnOff, Rate: 800},
		Server: ServerConfig{
			Servers:    2,
			QueueCap:   64,
			BatchMax:   4,
			BatchDelay: 2 * time.Millisecond,
			Service:    ServiceConfig{Mean: 3 * time.Millisecond, Sigma: 0.6, PerItem: 100 * time.Microsecond},
		},
		Duration: 4 * time.Second,
		Seed:     99,
	}
	a, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same options, different results:\n%+v\nvs\n%+v", a, b)
	}
	if a.Completed == 0 || a.Batches == 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
	if a.Offered != a.Completed+a.Dropped {
		t.Fatalf("conservation: offered %d != completed %d + dropped %d", a.Offered, a.Completed, a.Dropped)
	}
	if got := uint64(a.Completed); a.Hist.Count() != got {
		t.Fatalf("histogram holds %d records, completed %d", a.Hist.Count(), got)
	}
}

func TestBoundedQueueDrops(t *testing.T) {
	// Offered load at 10× capacity with a 4-deep queue must shed most of
	// the traffic — and account for every request.
	res, err := Run(Options{
		Arrival:  ArrivalConfig{Rate: 2000},
		Server:   ServerConfig{QueueCap: 4, Service: ServiceConfig{Mean: 5 * time.Millisecond}},
		Duration: 2 * time.Second,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatalf("overloaded bounded queue dropped nothing: %+v", res)
	}
	if res.Offered != res.Completed+res.Dropped {
		t.Fatalf("conservation: %d != %d + %d", res.Offered, res.Completed, res.Dropped)
	}
	// Unbounded queue on the same schedule drops nothing.
	res2, err := Run(Options{
		Arrival:  ArrivalConfig{Rate: 2000},
		Server:   ServerConfig{Service: ServiceConfig{Mean: 5 * time.Millisecond}},
		Duration: 2 * time.Second,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Dropped != 0 || res2.Completed != res2.Offered {
		t.Fatalf("unbounded queue dropped: %+v", res2)
	}
}

func TestBatchingFillsBatches(t *testing.T) {
	// High arrival rate with size-8 batches and a deadline: batches must
	// actually fill (mean well above 1), and batching must beat
	// single-dispatch throughput on the identical schedule when per-item
	// cost is low.
	base := Options{
		Arrival:  ArrivalConfig{Rate: 5000},
		Duration: 2 * time.Second,
		Seed:     21,
	}
	batched := base
	batched.Server = ServerConfig{
		BatchMax:   8,
		BatchDelay: time.Millisecond,
		Service:    ServiceConfig{Mean: time.Millisecond, PerItem: 20 * time.Microsecond},
	}
	rb, err := Run(batched)
	if err != nil {
		t.Fatal(err)
	}
	if rb.MeanBatch < 2 {
		t.Fatalf("mean batch %.2f, want ≥2 under saturation", rb.MeanBatch)
	}
	if rb.Batches == 0 || float64(rb.Completed)/float64(rb.Batches) != rb.MeanBatch {
		t.Fatalf("batch accounting: completed %d batches %d mean %.3f", rb.Completed, rb.Batches, rb.MeanBatch)
	}
	single := base
	single.Server = ServerConfig{Service: ServiceConfig{Mean: time.Millisecond}}
	rs, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Throughput <= rs.Throughput {
		t.Fatalf("batching did not raise throughput: %.0f vs %.0f req/s", rb.Throughput, rs.Throughput)
	}
}

func TestBatchDelayDispatchesPartialBatch(t *testing.T) {
	// A trickle that never fills BatchMax must still be served once the
	// oldest request has waited BatchDelay — not starve forever.
	res, err := Run(Options{
		Arrival:  ArrivalConfig{Rate: 10},
		Server:   ServerConfig{BatchMax: 64, BatchDelay: 50 * time.Millisecond, Service: ServiceConfig{Mean: time.Millisecond}},
		Duration: 2 * time.Second,
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Offered || res.Completed == 0 {
		t.Fatalf("partial batches starved: %+v", res)
	}
	// Every latency carries the deadline wait, bounded by
	// BatchDelay + service + slack.
	if res.MaxLatency > 150*time.Millisecond {
		t.Fatalf("max latency %v exceeds deadline+service bound", res.MaxLatency)
	}
}

func TestClosedLoop(t *testing.T) {
	res, err := Run(Options{
		Arrival:  ArrivalConfig{Rate: 1000},
		Server:   ServerConfig{Servers: 2, Service: ServiceConfig{Mean: time.Millisecond}},
		Duration: time.Second,
		Seed:     8,
		Mode:     ClosedLoop,
		Clients:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ClosedLoop || res.Completed == 0 {
		t.Fatalf("closed loop did not run: %+v", res)
	}
	if res.Offered != res.Completed+res.Dropped {
		t.Fatalf("conservation: %+v", res)
	}
	// 4 clients on 2 servers with deterministic 1 ms service: each
	// completion latency is wait+service ≈ 2 ms, ~2000 completions/s.
	if res.Completed < 1500 || res.Completed > 2500 {
		t.Fatalf("closed-loop completions %d, want ≈2000", res.Completed)
	}
}

func TestServiceDrawIsPerRequest(t *testing.T) {
	// Request i's service cost must depend only on (seed, i) — never on
	// execution order or server topology — so a request costs the same
	// whether it is served open-loop, closed-loop, batched, or last.
	s1 := &sim{cfg: ServerConfig{Service: ServiceConfig{Mean: 2 * time.Millisecond, Sigma: 0.8}}, seed: 31}
	s2 := &sim{cfg: ServerConfig{Servers: 8, Service: ServiceConfig{Mean: 2 * time.Millisecond, Sigma: 0.8}}, seed: 31}
	for i := 0; i < 1000; i++ {
		if a, b := s1.serviceDraw(i), s2.serviceDraw(i); a != b {
			t.Fatalf("request %d draw differs across configs: %v vs %v", i, a, b)
		}
	}
	if s1.serviceDraw(0) == s1.serviceDraw(1) {
		t.Fatalf("distinct requests share a service draw")
	}
}

func TestRunErrors(t *testing.T) {
	base := Options{Arrival: ArrivalConfig{Rate: 100}, Duration: time.Second}
	for name, mutate := range map[string]func(*Options){
		"zero duration":  func(o *Options) { o.Duration = 0 },
		"bad mode":       func(o *Options) { o.Mode = "half-open" },
		"bad arrivals":   func(o *Options) { o.Arrival.Rate = -1 },
		"neg servers":    func(o *Options) { o.Server.Servers = -1 },
		"neg service":    func(o *Options) { o.Server.Service.Mean = -time.Second },
		"stall overlap":  func(o *Options) { o.Server.Stalls = []Stall{{At: time.Second, Dur: time.Second}, {At: 0, Dur: time.Second}} },
		"zero-dur stall": func(o *Options) { o.Server.Stalls = []Stall{{At: 0, Dur: 0}} },
	} {
		o := base
		mutate(&o)
		if _, err := Run(o); err == nil {
			t.Errorf("%s: Run accepted invalid options", name)
		} else if !errors.Is(err, ErrBadServer) && !errors.Is(err, ErrBadArrivals) {
			t.Errorf("%s: err = %v, want ErrBadServer/ErrBadArrivals", name, err)
		}
	}
}

func TestHistReuse(t *testing.T) {
	o := Options{
		Arrival:  ArrivalConfig{Rate: 300},
		Server:   ServerConfig{Service: ServiceConfig{Mean: time.Millisecond}},
		Duration: time.Second,
		Seed:     2,
	}
	fresh, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	reused := fresh.Hist // pass the same histogram back in
	o.Seed = 3
	second, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	_ = second
	o.Hist = reused
	third, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if third.Hist != reused {
		t.Fatalf("supplied histogram was not used")
	}
	if third.Hist.Count() != uint64(third.Completed) {
		t.Fatalf("reused histogram not reset: %d records for %d completions",
			third.Hist.Count(), third.Completed)
	}
	if math.IsNaN(third.Hist.Quantile(0.5)) {
		t.Fatalf("reused histogram empty after run")
	}
}
