// Package rules codifies the paper's twelve guidelines as an executable
// audit: a Report describes how an experiment was designed, measured,
// analyzed, and presented, and Audit checks it rule by rule, producing
// findings a reviewer (or CI pipeline) can act on. The rule texts are
// quoted from Hoefler & Belli, SC'15.
package rules

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Severity grades a finding.
type Severity int

const (
	// Pass: the rule's requirements are met.
	Pass Severity = iota
	// Warning: the rule is partially met or its applicability is unclear.
	Warning
	// Violation: the rule is clearly not followed.
	Violation
)

// String returns the severity name.
func (s Severity) String() string {
	switch s {
	case Pass:
		return "PASS"
	case Warning:
		return "WARN"
	case Violation:
		return "FAIL"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Finding is one audit observation.
type Finding struct {
	Rule     int
	Severity Severity
	Message  string
}

// String renders the finding.
func (f Finding) String() string {
	return fmt.Sprintf("Rule %2d [%s] %s", f.Rule, f.Severity, f.Message)
}

// RuleTexts holds the twelve rules verbatim for reporting.
var RuleTexts = [13]string{
	1:  "When publishing parallel speedup, report if the base case is a single parallel process or best serial execution, as well as the absolute execution performance of the base case.",
	2:  "Specify the reason for only reporting subsets of standard benchmarks or applications or not using all system resources.",
	3:  "Use the arithmetic mean only for summarizing costs. Use the harmonic mean for summarizing rates.",
	4:  "Avoid summarizing ratios; summarize the costs or rates that the ratios base on instead. Only if these are not available use the geometric mean for summarizing ratios.",
	5:  "Report if the measurement values are deterministic. For nondeterministic data, report confidence intervals of the measurement.",
	6:  "Do not assume normality of collected data (e.g., based on the number of samples) without diagnostic checking.",
	7:  "Compare nondeterministic data in a statistically sound way, e.g., using non-overlapping confidence intervals or ANOVA.",
	8:  "Carefully investigate if measures of central tendency such as mean or median are useful to report. Some problems, such as worst-case latency, may require other percentiles.",
	9:  "Document all varying factors and their levels as well as the complete experimental setup (e.g., software, hardware, techniques) to facilitate reproducibility and provide interpretability.",
	10: "For parallel time measurements, report all measurement, (optional) synchronization, and summarization techniques.",
	11: "If possible, show upper performance bounds to facilitate interpretability of the measured results.",
	12: "Plot as much information as needed to interpret the experimental results. Only connect measurements by lines if they indicate trends and the interpolation is valid.",
}

// SummaryMethod names a data-summarization technique used in a report.
type SummaryMethod string

// Summary methods.
const (
	ArithmeticMean SummaryMethod = "arithmetic mean"
	HarmonicMean   SummaryMethod = "harmonic mean"
	GeometricMean  SummaryMethod = "geometric mean"
	MedianSummary  SummaryMethod = "median"
	PercentileOnly SummaryMethod = "percentiles"
	Unspecified    SummaryMethod = "unspecified"
)

// SummaryUse records one summarized metric: what kind of quantity it is
// and which method summarized it.
type SummaryUse struct {
	Metric      string
	Kind        stats.Kind
	Method      SummaryMethod
	RawDataFrom string // where the underlying costs live ("" = unavailable)
}

// ComparisonMethod names a statistical comparison technique.
type ComparisonMethod string

// Comparison methods.
const (
	NoComparison     ComparisonMethod = "none (raw numbers compared)"
	CIOverlap        ComparisonMethod = "non-overlapping confidence intervals"
	ANOVATest        ComparisonMethod = "ANOVA"
	KruskalWallis    ComparisonMethod = "Kruskal-Wallis"
	TTestComparison  ComparisonMethod = "t-test"
	EffectSizeMethod ComparisonMethod = "effect size"
)

// Comparison records one claim that system/configuration A beats B.
type Comparison struct {
	Claim  string
	Method ComparisonMethod
}

// Environment documents the experimental setup per Table 1's nine
// design classes; empty strings mean "not documented". NotApplicable
// lists classes irrelevant to this experiment (e.g. "network" for a
// shared-memory study), which count as documented.
type Environment struct {
	Processor        string // CPU model / accelerator
	Memory           string // RAM size / type / bus
	Network          string // NIC model / topology / latency / bandwidth
	Compiler         string // version / flags
	RuntimeLibs      string // kernel / library versions
	Filesystem       string // storage configuration
	InputAndCode     string // software versions and inputs
	MeasurementSetup string // how time was measured, iterations, etc.
	CodeURL          string // where the source is published
	NotApplicable    []string
}

// classes returns the class name → (value, label) mapping.
func (e Environment) classes() map[string]string {
	return map[string]string{
		"processor":         e.Processor,
		"memory":            e.Memory,
		"network":           e.Network,
		"compiler":          e.Compiler,
		"runtime libraries": e.RuntimeLibs,
		"filesystem":        e.Filesystem,
		"input and code":    e.InputAndCode,
		"measurement setup": e.MeasurementSetup,
	}
}

// Factor is one varied experimental factor and its levels (Rule 9).
type Factor struct {
	Name   string
	Levels []string
}

// Plot describes one figure in the report (Rule 12).
type Plot struct {
	Name               string
	ShowsVariation     bool // CIs, boxes, violins, or stated in caption
	VariationInText    bool // spread stated in prose because it would clutter
	ConnectsPoints     bool
	InterpolationValid bool // connecting lines indicate a real trend
}

// ParallelTiming documents how parallel time was measured (Rule 10).
type ParallelTiming struct {
	MeasurementMethod   string // e.g. "per-rank interval timing"
	SynchronizationUsed string // e.g. "delay-window", "barrier", ""
	SummarizationAcross string // e.g. "maximum across ranks", ""
}

// Speedup documents a speedup claim (Rule 1).
type Speedup struct {
	BaseCase         string  // "best serial" or "single parallel process"; "" = unstated
	BaseAbsolute     float64 // absolute base performance (0 = not reported)
	BaseAbsoluteUnit string
}

// Report is the auditable description of one experimental study.
type Report struct {
	Title string

	// Rule 1.
	Speedups []Speedup

	// Rule 2.
	UsedSubset          bool   // only part of a suite/app/machine was used
	SubsetJustification string //

	// Rules 3–4.
	Summaries []SummaryUse

	// Rules 5–6.
	Deterministic    bool
	ReportsCI        bool
	CILevel          float64
	NormalityChecked bool // diagnostic test or Q-Q inspection performed
	UsesMeanCI       bool // parametric CI of the mean in use

	// Rule 7.
	Comparisons []Comparison

	// Rule 8.
	CenterJustified     bool      // suitability of mean/median was considered
	PercentilesReported []float64 //

	// Rule 9.
	Env     Environment
	Factors []Factor

	// Rule 10.
	Parallel *ParallelTiming // nil = not a parallel-time experiment

	// Rule 11.
	BoundsModels []string // names of bounds shown ("" slice = none)
	BoundsWhyNot string   // justification when no bound is possible

	// Rule 12.
	Plots []Plot

	// Measurement integrity (fault-aware campaigns; see bench.Resilience).
	// SamplesAttempted and SamplesLost describe the collection loop's
	// accounting: losing samples silently is a Rule 2 violation (the
	// retained data is an unexplained subset of the measurements), while
	// disclosed loss passes. Zero values mean "no loss occurred or none
	// was tracked" and add no findings, keeping fault-unaware reports
	// unchanged.
	SamplesAttempted int
	SamplesLost      int
	LossDisclosed    bool
	// StationarityChecked records that a change-point test ran over the
	// ordered sample stream; RegimeShiftDetected records its outcome. A
	// detected shift means the sample mixes two regimes — summarizing it
	// as one distribution violates Rule 6's diagnostic-checking mandate.
	StationarityChecked bool
	RegimeShiftDetected bool

	// Load-generation extension (service/latency studies; see
	// internal/serve). LoadGeneration names how load was offered
	// ("open-loop", "closed-loop", "" = not a load study — zero values add
	// no findings). CoordinatedOmissionChecked records that the open-
	// vs closed-loop audit ran on the same seeded workload;
	// OmissionRatio is its open-p99 / closed-p99 result. Closed-loop
	// tail percentiles are subject to coordinated omission: the
	// generator stops offering load exactly when the system stalls, so
	// the stalled requests that define the tail are never issued. Such
	// tails are an undisclosed subset of the intended load (Rule 2) and
	// an unchecked distributional assumption (Rule 6); Rule 5's CIs are
	// only as honest as the sample they bracket.
	LoadGeneration             string
	CoordinatedOmissionChecked bool
	OmissionRatio              float64
}

// Load-generation modes recognized by the audit (matching
// serve.OpenLoop / serve.ClosedLoop).
const (
	OpenLoopGeneration   = "open-loop"
	ClosedLoopGeneration = "closed-loop"
)

// Audit checks every rule and returns all findings sorted by rule.
func Audit(r Report) []Finding {
	var fs []Finding
	add := func(rule int, sev Severity, msg string) {
		fs = append(fs, Finding{Rule: rule, Severity: sev, Message: msg})
	}

	// Rule 1: speedup base case.
	if len(r.Speedups) == 0 {
		add(1, Pass, "no speedups reported")
	}
	for _, s := range r.Speedups {
		switch {
		case s.BaseCase == "":
			add(1, Violation, "speedup reported without stating the base case (serial vs single parallel process)")
		case s.BaseAbsolute <= 0:
			add(1, Violation, fmt.Sprintf("speedup base case %q lacks absolute performance", s.BaseCase))
		default:
			add(1, Pass, fmt.Sprintf("speedup base %q with absolute performance %g %s",
				s.BaseCase, s.BaseAbsolute, s.BaseAbsoluteUnit))
		}
	}

	// Rule 2: subsets must be justified.
	switch {
	case !r.UsedSubset:
		add(2, Pass, "whole benchmark/application and all resources used")
	case r.SubsetJustification != "":
		add(2, Pass, "subset use justified: "+r.SubsetJustification)
	default:
		add(2, Violation, "subset of benchmarks/resources used without justification")
	}
	// Rule 2, measurement-integrity extension: samples lost to faults
	// make the retained data a subset of the attempted measurements,
	// which must be disclosed like any other subset.
	if r.SamplesLost > 0 {
		if r.LossDisclosed {
			add(2, Pass, fmt.Sprintf("sample loss disclosed: %d of %d attempts lost to faults",
				r.SamplesLost, r.SamplesAttempted))
		} else {
			add(2, Violation, fmt.Sprintf("%d of %d sample attempts lost to faults without disclosure",
				r.SamplesLost, r.SamplesAttempted))
		}
	}
	// Rule 2, coordinated-omission extension: a closed-loop generator
	// that measurably under-offered load reported an undisclosed subset
	// of the intended requests — the stalled ones are missing.
	if r.LoadGeneration == ClosedLoopGeneration && r.CoordinatedOmissionChecked && r.OmissionRatio > 1.25 {
		add(2, Warning, fmt.Sprintf(
			"closed-loop generation omitted the stalled load: open-loop p99 is %.1f× the closed-loop p99 (coordinated omission)",
			r.OmissionRatio))
	}

	// Rules 3 and 4: summary methods per metric kind.
	sawRatio := false
	for _, s := range r.Summaries {
		if s.Kind == stats.Ratio {
			sawRatio = true
		}
		switch s.Kind {
		case stats.Cost:
			switch s.Method {
			case ArithmeticMean, MedianSummary, PercentileOnly:
				add(3, Pass, fmt.Sprintf("cost %q summarized with %s", s.Metric, s.Method))
			case Unspecified:
				add(3, Violation, fmt.Sprintf("cost %q summarized with unspecified method", s.Metric))
			default:
				add(3, Violation, fmt.Sprintf("cost %q summarized with %s (use the arithmetic mean)", s.Metric, s.Method))
			}
		case stats.Rate:
			switch s.Method {
			case HarmonicMean, MedianSummary, PercentileOnly:
				add(3, Pass, fmt.Sprintf("rate %q summarized with %s", s.Metric, s.Method))
			case Unspecified:
				add(3, Violation, fmt.Sprintf("rate %q summarized with unspecified method", s.Metric))
			default:
				add(3, Violation, fmt.Sprintf("rate %q summarized with %s (use the harmonic mean)", s.Metric, s.Method))
			}
		case stats.Ratio:
			switch {
			case s.RawDataFrom != "":
				add(4, Violation, fmt.Sprintf("ratio %q summarized although raw costs/rates are available from %s", s.Metric, s.RawDataFrom))
			case s.Method == GeometricMean:
				add(4, Warning, fmt.Sprintf("ratio %q summarized with the geometric mean (acceptable only because raw data is unavailable)", s.Metric))
			default:
				add(4, Violation, fmt.Sprintf("ratio %q summarized with %s", s.Metric, s.Method))
			}
		}
	}
	if len(r.Summaries) == 0 {
		add(3, Warning, "no summary methods documented")
	}
	if !sawRatio {
		add(4, Pass, "no ratio summaries used")
	}

	// Rule 5: determinism and CIs.
	switch {
	case r.Deterministic:
		add(5, Pass, "measurements reported as deterministic")
	case r.ReportsCI && r.CILevel > 0:
		add(5, Pass, fmt.Sprintf("nondeterministic data with %.0f%% confidence intervals", r.CILevel*100))
	case r.ReportsCI:
		add(5, Warning, "confidence intervals reported without stating the level")
	default:
		add(5, Violation, "nondeterministic data without confidence intervals")
	}
	// Rule 5, load-generation extension: CIs bracket the sample they are
	// computed from; open-loop arrivals make that sample the true
	// latency distribution, closed-loop arrivals do not.
	if r.LoadGeneration == OpenLoopGeneration {
		add(5, Pass, "open-loop load generation: tail samples are free of coordinated omission")
	}

	// Rule 6: normality diagnostics before parametric statistics.
	switch {
	case r.Deterministic:
		add(6, Pass, "deterministic data, normality not needed")
	case r.UsesMeanCI && !r.NormalityChecked:
		add(6, Violation, "parametric (mean) confidence intervals without a normality check")
	case !r.NormalityChecked:
		add(6, Warning, "no normality diagnostics documented")
	default:
		add(6, Pass, "normality diagnostically checked")
	}
	// Rule 6, stationarity extension: diagnostic checking covers more
	// than normality — a mid-campaign regime shift (contamination) means
	// no single distribution describes the sample at all.
	if r.StationarityChecked {
		if r.RegimeShiftDetected {
			add(6, Warning, "change-point test flags a mid-campaign regime shift: the sample mixes distributions")
		} else {
			add(6, Pass, "stationarity checked: no change point in the sample stream")
		}
	}
	// Rule 6, coordinated-omission extension: closed-loop tail
	// percentiles describe a distribution censored by the generator
	// itself — reporting them without the open-vs-closed diagnostic is
	// an unchecked distributional assumption.
	if r.LoadGeneration == ClosedLoopGeneration {
		if r.CoordinatedOmissionChecked {
			add(6, Pass, fmt.Sprintf(
				"coordinated-omission check performed: open-loop p99 is %.2f× the closed-loop p99", r.OmissionRatio))
		} else {
			add(6, Violation, "closed-loop tail percentiles reported without a coordinated-omission check")
		}
	}

	// Rule 7: sound comparisons.
	if len(r.Comparisons) == 0 {
		add(7, Pass, "no cross-system comparisons made")
	}
	for _, c := range r.Comparisons {
		if r.Deterministic {
			add(7, Pass, fmt.Sprintf("comparison %q on deterministic data", c.Claim))
			continue
		}
		switch c.Method {
		case CIOverlap, ANOVATest, KruskalWallis, TTestComparison, EffectSizeMethod:
			add(7, Pass, fmt.Sprintf("comparison %q uses %s", c.Claim, c.Method))
		default:
			add(7, Violation, fmt.Sprintf("comparison %q lacks a statistical test", c.Claim))
		}
	}

	// Rule 8: suitability of the central tendency.
	switch {
	case r.CenterJustified:
		add(8, Pass, "choice of central tendency justified")
	case len(r.PercentilesReported) > 0:
		add(8, Pass, fmt.Sprintf("percentiles reported: %v", r.PercentilesReported))
	default:
		add(8, Warning, "no justification for the chosen measure of central tendency")
	}

	// Rule 9: environment and factors.
	missing := missingClasses(r.Env)
	if len(missing) == 0 {
		add(9, Pass, "all nine documentation classes covered")
	} else if len(missing) <= 2 {
		add(9, Warning, "undocumented classes: "+strings.Join(missing, ", "))
	} else {
		add(9, Violation, "undocumented classes: "+strings.Join(missing, ", "))
	}
	if r.Env.CodeURL == "" {
		add(9, Warning, "source code not published")
	} else {
		add(9, Pass, "source available at "+r.Env.CodeURL)
	}
	if len(r.Factors) == 0 {
		add(9, Warning, "no varying factors documented")
	} else {
		for _, f := range r.Factors {
			if len(f.Levels) == 0 {
				add(9, Violation, fmt.Sprintf("factor %q has no documented levels", f.Name))
			}
		}
	}

	// Rule 10: parallel time measurement documentation.
	if r.Parallel == nil {
		add(10, Pass, "not a parallel-time experiment")
	} else {
		p := r.Parallel
		if p.MeasurementMethod == "" {
			add(10, Violation, "parallel measurement method undocumented")
		}
		if p.SummarizationAcross == "" {
			add(10, Violation, "summarization across processes undocumented")
		}
		if p.SynchronizationUsed == "" {
			add(10, Warning, "no synchronization method documented (acceptable only if none was used)")
		}
		if p.MeasurementMethod != "" && p.SummarizationAcross != "" {
			add(10, Pass, fmt.Sprintf("parallel timing: %s, sync: %s, summary: %s",
				p.MeasurementMethod, orNone(p.SynchronizationUsed), p.SummarizationAcross))
		}
	}

	// Rule 11: bounds models.
	switch {
	case len(r.BoundsModels) > 0:
		add(11, Pass, "bounds shown: "+strings.Join(r.BoundsModels, ", "))
	case r.BoundsWhyNot != "":
		add(11, Pass, "no bounds possible: "+r.BoundsWhyNot)
	default:
		add(11, Warning, "no upper performance bound shown")
	}

	// Rule 12: plots.
	if len(r.Plots) == 0 {
		add(12, Warning, "no plots described")
	}
	for _, p := range r.Plots {
		switch {
		case !p.ShowsVariation && !p.VariationInText && !r.Deterministic:
			add(12, Violation, fmt.Sprintf("plot %q shows nondeterministic data without variation", p.Name))
		case p.ConnectsPoints && !p.InterpolationValid:
			add(12, Violation, fmt.Sprintf("plot %q connects points without a valid interpolation", p.Name))
		default:
			add(12, Pass, fmt.Sprintf("plot %q acceptable", p.Name))
		}
	}

	sort.SliceStable(fs, func(i, j int) bool { return fs[i].Rule < fs[j].Rule })
	return fs
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

func missingClasses(e Environment) []string {
	na := map[string]bool{}
	for _, c := range e.NotApplicable {
		na[strings.ToLower(c)] = true
	}
	var missing []string
	for name, val := range e.classes() {
		if val == "" && !na[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return missing
}

// Compliance summarizes an audit: per-rule worst severity and an overall
// pass count out of 12.
type Compliance struct {
	PerRule [13]Severity
	Passed  int
}

// Summarize folds findings into a per-rule compliance summary.
func Summarize(findings []Finding) Compliance {
	var c Compliance
	seen := [13]bool{}
	for _, f := range findings {
		if f.Rule < 1 || f.Rule > 12 {
			continue
		}
		seen[f.Rule] = true
		if f.Severity > c.PerRule[f.Rule] {
			c.PerRule[f.Rule] = f.Severity
		}
	}
	for rule := 1; rule <= 12; rule++ {
		// Unexamined rules count as warnings, not passes.
		if !seen[rule] {
			c.PerRule[rule] = Warning
		}
		if c.PerRule[rule] == Pass {
			c.Passed++
		}
	}
	return c
}

// String renders the compliance scorecard.
func (c Compliance) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compliance: %d/12 rules passed\n", c.Passed)
	for rule := 1; rule <= 12; rule++ {
		fmt.Fprintf(&b, "  rule %2d: %s\n", rule, c.PerRule[rule])
	}
	return b.String()
}

// WriteReport renders the findings grouped by rule with the verbatim
// rule text for each non-passing rule — the reviewer-facing audit
// document.
func WriteReport(w io.Writer, findings []Finding) error {
	c := Summarize(findings)
	if _, err := fmt.Fprintf(w, "twelve-rule audit: %d/12 passed\n\n", c.Passed); err != nil {
		return err
	}
	for rule := 1; rule <= 12; rule++ {
		var mine []Finding
		for _, f := range findings {
			if f.Rule == rule {
				mine = append(mine, f)
			}
		}
		status := c.PerRule[rule]
		if _, err := fmt.Fprintf(w, "Rule %2d [%s]\n", rule, status); err != nil {
			return err
		}
		if status != Pass {
			if _, err := fmt.Fprintf(w, "  text: %s\n", RuleTexts[rule]); err != nil {
				return err
			}
		}
		for _, f := range mine {
			if _, err := fmt.Fprintf(w, "  - [%s] %s\n", f.Severity, f.Message); err != nil {
				return err
			}
		}
	}
	return nil
}
