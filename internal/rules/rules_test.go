package rules

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// goodReport builds a report that satisfies all twelve rules.
func goodReport() Report {
	return Report{
		Title: "ping-pong latency study",
		Speedups: []Speedup{{
			BaseCase:         "best serial execution",
			BaseAbsolute:     2.5,
			BaseAbsoluteUnit: "Gflop/s",
		}},
		Summaries: []SummaryUse{
			{Metric: "completion time", Kind: stats.Cost, Method: ArithmeticMean},
			{Metric: "flop rate", Kind: stats.Rate, Method: HarmonicMean},
		},
		ReportsCI:        true,
		CILevel:          0.95,
		NormalityChecked: true,
		UsesMeanCI:       false,
		Comparisons: []Comparison{
			{Claim: "Dora beats Pilatus at the median", Method: KruskalWallis},
		},
		CenterJustified:     true,
		PercentilesReported: []float64{0.5, 0.99},
		Env: Environment{
			Processor:        "2x Intel Xeon E5-2690 v3",
			Memory:           "64 GiB DDR4-1600",
			Network:          "Aries dragonfly",
			Compiler:         "gcc 4.8.2 -O3",
			RuntimeLibs:      "CLE 5.2.40",
			Filesystem:       "not used",
			InputAndCode:     "64 B ping-pong, 1e6 samples",
			MeasurementSetup: "single-event timing, delay-window sync",
			CodeURL:          "https://example.org/code",
		},
		Factors: []Factor{{Name: "system", Levels: []string{"Dora", "Pilatus"}}},
		Parallel: &ParallelTiming{
			MeasurementMethod:   "per-rank interval timing",
			SynchronizationUsed: "delay-window",
			SummarizationAcross: "maximum across ranks",
		},
		BoundsModels: []string{"ideal linear", "Amdahl b=0.01"},
		Plots: []Plot{{
			Name:               "latency densities",
			ShowsVariation:     true,
			ConnectsPoints:     false,
			InterpolationValid: false,
		}},
	}
}

func worstSeverity(fs []Finding, rule int) Severity {
	worst := Pass
	for _, f := range fs {
		if f.Rule == rule && f.Severity > worst {
			worst = f.Severity
		}
	}
	return worst
}

func TestGoodReportPassesAllRules(t *testing.T) {
	fs := Audit(goodReport())
	c := Summarize(fs)
	if c.Passed != 12 {
		t.Errorf("passed %d/12:\n%s", c.Passed, c)
		for _, f := range fs {
			if f.Severity != Pass {
				t.Logf("  %s", f)
			}
		}
	}
}

func TestRule1SpeedupViolations(t *testing.T) {
	r := goodReport()
	r.Speedups = []Speedup{{BaseCase: ""}}
	if worstSeverity(Audit(r), 1) != Violation {
		t.Error("unstated base case must be a violation")
	}
	r.Speedups = []Speedup{{BaseCase: "single parallel process"}}
	if worstSeverity(Audit(r), 1) != Violation {
		t.Error("missing absolute base performance must be a violation")
	}
	r.Speedups = nil
	if worstSeverity(Audit(r), 1) != Pass {
		t.Error("no speedups is fine")
	}
}

func TestRule2Subsets(t *testing.T) {
	r := goodReport()
	r.UsedSubset = true
	r.SubsetJustification = ""
	if worstSeverity(Audit(r), 2) != Violation {
		t.Error("unjustified subset must be a violation")
	}
	r.SubsetJustification = "compiler cannot transform Fortran benchmarks"
	if worstSeverity(Audit(r), 2) != Pass {
		t.Error("justified subset passes")
	}
}

func TestRule3WrongMeans(t *testing.T) {
	r := goodReport()
	r.Summaries = []SummaryUse{{Metric: "flop/s", Kind: stats.Rate, Method: ArithmeticMean}}
	if worstSeverity(Audit(r), 3) != Violation {
		t.Error("arithmetic mean of rates must be a violation")
	}
	r.Summaries = []SummaryUse{{Metric: "time", Kind: stats.Cost, Method: GeometricMean}}
	if worstSeverity(Audit(r), 3) != Violation {
		t.Error("geometric mean of costs must be a violation")
	}
	r.Summaries = []SummaryUse{{Metric: "time", Kind: stats.Cost, Method: Unspecified}}
	if worstSeverity(Audit(r), 3) != Violation {
		t.Error("unspecified summary must be a violation")
	}
}

func TestRule4Ratios(t *testing.T) {
	r := goodReport()
	r.Summaries = []SummaryUse{{
		Metric: "% of peak", Kind: stats.Ratio, Method: GeometricMean,
		RawDataFrom: "table 3",
	}}
	if worstSeverity(Audit(r), 4) != Violation {
		t.Error("summarizing ratios with raw data available must be a violation")
	}
	r.Summaries[0].RawDataFrom = ""
	if worstSeverity(Audit(r), 4) != Warning {
		t.Error("geometric mean of ratios without raw data is a warning")
	}
	r.Summaries[0].Method = ArithmeticMean
	if worstSeverity(Audit(r), 4) != Violation {
		t.Error("arithmetic mean of ratios must be a violation")
	}
}

func TestRule5CIs(t *testing.T) {
	r := goodReport()
	r.ReportsCI = false
	if worstSeverity(Audit(r), 5) != Violation {
		t.Error("nondeterministic data without CIs must be a violation")
	}
	r.Deterministic = true
	if worstSeverity(Audit(r), 5) != Pass {
		t.Error("deterministic data passes")
	}
	r.Deterministic = false
	r.ReportsCI = true
	r.CILevel = 0
	if worstSeverity(Audit(r), 5) != Warning {
		t.Error("CI without level is a warning")
	}
}

func TestRule6Normality(t *testing.T) {
	r := goodReport()
	r.UsesMeanCI = true
	r.NormalityChecked = false
	if worstSeverity(Audit(r), 6) != Violation {
		t.Error("mean CIs without normality check must be a violation")
	}
	r.UsesMeanCI = false
	if worstSeverity(Audit(r), 6) != Warning {
		t.Error("no diagnostics is a warning")
	}
	r.Deterministic = true
	if worstSeverity(Audit(r), 6) != Pass {
		t.Error("deterministic data passes rule 6")
	}
}

func TestRule7Comparisons(t *testing.T) {
	r := goodReport()
	r.Comparisons = []Comparison{{Claim: "A is 2x faster", Method: NoComparison}}
	if worstSeverity(Audit(r), 7) != Violation {
		t.Error("untested comparison must be a violation")
	}
	r.Deterministic = true
	if worstSeverity(Audit(r), 7) != Pass {
		t.Error("deterministic comparisons pass")
	}
}

func TestRule8Center(t *testing.T) {
	r := goodReport()
	r.CenterJustified = false
	r.PercentilesReported = nil
	if worstSeverity(Audit(r), 8) != Warning {
		t.Error("unjustified center is a warning")
	}
}

func TestRule9Environment(t *testing.T) {
	r := goodReport()
	r.Env.Network = ""
	r.Env.Compiler = ""
	if worstSeverity(Audit(r), 9) != Warning {
		t.Error("two missing classes is a warning")
	}
	r.Env.Memory = ""
	if worstSeverity(Audit(r), 9) != Violation {
		t.Error("three missing classes is a violation")
	}
	// NotApplicable classes count as documented, restoring a pass.
	r.Env.NotApplicable = []string{"network", "compiler", "memory"}
	if worstSeverity(Audit(r), 9) != Pass {
		t.Error("not-applicable classes should count as documented")
	}
}

func TestRule9CodeAndFactors(t *testing.T) {
	r := goodReport()
	r.Env.CodeURL = ""
	if worstSeverity(Audit(r), 9) != Warning {
		t.Error("unpublished code is a warning")
	}
	r = goodReport()
	r.Factors = []Factor{{Name: "p", Levels: nil}}
	if worstSeverity(Audit(r), 9) != Violation {
		t.Error("factor without levels is a violation")
	}
}

func TestRule10Parallel(t *testing.T) {
	r := goodReport()
	r.Parallel = &ParallelTiming{}
	if worstSeverity(Audit(r), 10) != Violation {
		t.Error("undocumented parallel timing must be a violation")
	}
	r.Parallel = nil
	if worstSeverity(Audit(r), 10) != Pass {
		t.Error("non-parallel experiments pass rule 10")
	}
	r.Parallel = &ParallelTiming{
		MeasurementMethod:   "kernel timing",
		SummarizationAcross: "median across ranks",
	}
	if worstSeverity(Audit(r), 10) != Warning {
		t.Error("missing sync documentation is a warning")
	}
}

func TestRule11Bounds(t *testing.T) {
	r := goodReport()
	r.BoundsModels = nil
	if worstSeverity(Audit(r), 11) != Warning {
		t.Error("missing bounds is a warning")
	}
	r.BoundsWhyNot = "no known nontrivial bound for this workload"
	if worstSeverity(Audit(r), 11) != Pass {
		t.Error("justified absence of bounds passes")
	}
}

func TestRule12Plots(t *testing.T) {
	r := goodReport()
	r.Plots = []Plot{{Name: "lines", ShowsVariation: false}}
	if worstSeverity(Audit(r), 12) != Violation {
		t.Error("plot without variation on nondeterministic data must be a violation")
	}
	r.Plots = []Plot{{Name: "bars", ShowsVariation: true, ConnectsPoints: true}}
	if worstSeverity(Audit(r), 12) != Violation {
		t.Error("connecting lines without valid interpolation must be a violation")
	}
	r.Plots = []Plot{{Name: "ok", VariationInText: true}}
	if worstSeverity(Audit(r), 12) != Pass {
		t.Error("variation stated in text passes (the rule's comment)")
	}
}

func TestSummarizeCountsAndUnexamined(t *testing.T) {
	c := Summarize(nil)
	if c.Passed != 0 {
		t.Errorf("no findings should pass nothing, got %d", c.Passed)
	}
	for rule := 1; rule <= 12; rule++ {
		if c.PerRule[rule] != Warning {
			t.Errorf("unexamined rule %d should be a warning", rule)
		}
	}
	if !strings.Contains(c.String(), "0/12") {
		t.Error("scorecard rendering")
	}
}

func TestFindingAndSeverityStrings(t *testing.T) {
	f := Finding{Rule: 3, Severity: Violation, Message: "bad mean"}
	if !strings.Contains(f.String(), "Rule  3") || !strings.Contains(f.String(), "FAIL") {
		t.Errorf("finding = %q", f.String())
	}
	if Pass.String() != "PASS" || Warning.String() != "WARN" {
		t.Error("severity strings")
	}
	if Severity(9).String() == "" {
		t.Error("unknown severity should stringify")
	}
}

func TestRuleTextsComplete(t *testing.T) {
	for i := 1; i <= 12; i++ {
		if RuleTexts[i] == "" {
			t.Errorf("rule %d text missing", i)
		}
	}
}

func TestWriteReport(t *testing.T) {
	r := goodReport()
	r.Speedups = []Speedup{{}} // force a rule 1 failure
	var sb strings.Builder
	if err := WriteReport(&sb, Audit(r)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "11/12 passed") {
		t.Errorf("scorecard header missing:\n%s", out)
	}
	// Failing rules include their verbatim text; passing ones do not.
	if !strings.Contains(out, "When publishing parallel speedup") {
		t.Error("rule 1 text missing for the failing rule")
	}
	if strings.Count(out, "Rule  3") != 1 {
		t.Error("each rule appears exactly once as a header")
	}
}

func TestMeasurementIntegrityChecks(t *testing.T) {
	// Undisclosed sample loss: a Rule 2 violation.
	r := goodReport()
	r.SamplesAttempted = 120
	r.SamplesLost = 20
	fs := Audit(r)
	if worstSeverity(fs, 2) != Violation {
		t.Error("undisclosed sample loss must violate Rule 2")
	}

	// Disclosed loss passes.
	r.LossDisclosed = true
	fs = Audit(r)
	if worstSeverity(fs, 2) != Pass {
		t.Error("disclosed sample loss must pass Rule 2")
	}

	// Detected regime shift warns on Rule 6 even with normality checked.
	r.StationarityChecked = true
	r.RegimeShiftDetected = true
	fs = Audit(r)
	if worstSeverity(fs, 6) != Warning {
		t.Error("detected regime shift must warn on Rule 6")
	}

	// Clean stationarity check passes.
	r.RegimeShiftDetected = false
	fs = Audit(r)
	if worstSeverity(fs, 6) != Pass {
		t.Error("clean stationarity check must pass Rule 6")
	}

	// Back-compat: a report without integrity fields gets no new findings.
	base, faultFree := Audit(goodReport()), 0
	for _, f := range base {
		if f.Rule == 2 || f.Rule == 6 {
			faultFree++
		}
	}
	if faultFree != 2 { // subset pass + normality pass, nothing else
		t.Errorf("fault-unaware report gained findings: %d on rules 2/6", faultFree)
	}
}

func TestLoadGenerationExtension(t *testing.T) {
	// A report that is not a load study gains no load findings.
	for _, f := range Audit(goodReport()) {
		if strings.Contains(f.Message, "coordinated") || strings.Contains(f.Message, "loop") {
			t.Fatalf("load-unaware report gained a load finding: %s", f)
		}
	}

	// Open-loop generation adds a Rule 5 pass.
	r := goodReport()
	r.LoadGeneration = OpenLoopGeneration
	found := false
	for _, f := range Audit(r) {
		if f.Rule == 5 && f.Severity == Pass && strings.Contains(f.Message, "open-loop") {
			found = true
		}
	}
	if !found {
		t.Error("open-loop generation must add a Rule 5 pass")
	}

	// Closed-loop tails without the omission check violate Rule 6.
	r = goodReport()
	r.LoadGeneration = ClosedLoopGeneration
	if worstSeverity(Audit(r), 6) != Violation {
		t.Error("unchecked closed-loop tails must violate Rule 6")
	}

	// A performed check with a benign ratio passes Rule 6 and leaves
	// Rule 2 alone.
	r.CoordinatedOmissionChecked = true
	r.OmissionRatio = 1.05
	fs := Audit(r)
	if worstSeverity(fs, 6) != Pass {
		t.Error("checked closed-loop tails with benign ratio must pass Rule 6")
	}
	if worstSeverity(fs, 2) != Pass {
		t.Error("benign omission ratio must not flag Rule 2")
	}

	// A damning ratio warns on Rule 2: the stalled load was omitted.
	r.OmissionRatio = 8.4
	if worstSeverity(Audit(r), 2) != Warning {
		t.Error("omission ratio > 1.25 on closed-loop data must warn on Rule 2")
	}
}
