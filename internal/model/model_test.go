package model

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

func TestLeastSquaresExact(t *testing.T) {
	// y = 2 + 3x, noise-free.
	var x [][]float64
	var y []float64
	for i := 0; i < 10; i++ {
		xi := float64(i)
		x = append(x, []float64{1, xi})
		y = append(y, 2+3*xi)
	}
	fit, err := LeastSquares(x, y, []string{"1", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Beta[0]-2) > 1e-9 || math.Abs(fit.Beta[1]-3) > 1e-9 {
		t.Errorf("beta = %v", fit.Beta)
	}
	if math.Abs(fit.R2-1) > 1e-12 || fit.RMSE > 1e-9 {
		t.Errorf("R² = %g, RMSE = %g", fit.R2, fit.RMSE)
	}
	if !strings.Contains(fit.String(), "R²") {
		t.Error("String rendering")
	}
	if got := fit.Predict([]float64{1, 10}); math.Abs(got-32) > 1e-9 {
		t.Errorf("Predict = %g", got)
	}
}

func TestLeastSquaresNoisy(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		a := rng.Float64() * 10
		b := rng.Float64() * 5
		x = append(x, []float64{1, a, b})
		y = append(y, 1+2*a-0.5*b+0.1*rng.NormFloat64())
	}
	fit, err := LeastSquares(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, -0.5}
	for i, w := range want {
		if math.Abs(fit.Beta[i]-w) > 0.05 {
			t.Errorf("beta[%d] = %g, want %g", i, fit.Beta[i], w)
		}
	}
	if fit.R2 < 0.99 {
		t.Errorf("R² = %g", fit.R2)
	}
	// Default feature names.
	if fit.Features[1] != "x1" {
		t.Errorf("names = %v", fit.Features)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil, nil); err != ErrShape {
		t.Errorf("err = %v", err)
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}, nil); err != ErrTooFew {
		t.Errorf("err = %v", err)
	}
	// Collinear columns → singular.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	if _, err := LeastSquares(x, []float64{1, 2, 3}, nil); err != ErrSingular {
		t.Errorf("err = %v", err)
	}
	// Ragged rows.
	bad := [][]float64{{1, 2}, {1}}
	if _, err := LeastSquares(bad, []float64{1, 2}, nil); err != ErrShape {
		t.Errorf("ragged err = %v", err)
	}
	// Name count mismatch.
	if _, err := LeastSquares([][]float64{{1}, {2}}, []float64{1, 2}, []string{"a", "b"}); err != ErrShape {
		t.Errorf("names err = %v", err)
	}
}

func TestFitCollectiveRecoversModel(t *testing.T) {
	// Plant T(p) = 1e-6 + 2e-6·log2(p) + 3e-8·p with tiny noise.
	rng := rand.New(rand.NewPCG(2, 2))
	var ps []int
	var ts []float64
	for p := 2; p <= 512; p *= 2 {
		for r := 0; r < 5; r++ {
			ps = append(ps, p)
			ts = append(ts, 1e-6+2e-6*math.Log2(float64(p))+3e-8*float64(p)+1e-9*rng.NormFloat64())
		}
	}
	m, err := FitCollective(ps, ts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.A-1e-6) > 1e-7 || math.Abs(m.B-2e-6) > 1e-7 || math.Abs(m.C-3e-8) > 1e-8 {
		t.Errorf("model = %+v", m)
	}
	if m.R2 < 0.999 {
		t.Errorf("R² = %g", m.R2)
	}
	if m.Eval(64) <= m.Eval(32) {
		t.Error("model not increasing")
	}
	if m.String() == "" {
		t.Error("String rendering")
	}
}

func TestFitCollectiveOnSimulatedReduce(t *testing.T) {
	// Fit the LogP-style model to real simulated reductions and verify
	// it explains the data (the §5.1 semi-analytic workflow).
	var ps []int
	var ts []float64
	for p := 2; p <= 64; p *= 2 {
		m, err := cluster.New(cluster.Quiet(64, 1), p, 3)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 3; r++ {
			ps = append(ps, p)
			ts = append(ts, m.Reduce(8, nil).Root.Seconds())
		}
	}
	fit, err := FitCollective(ps, ts)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.98 {
		t.Errorf("LogP model explains only R²=%g of quiet reduce", fit.R2)
	}
	// The log coefficient dominates: a binomial tree is Θ(log p).
	if fit.B <= 0 {
		t.Errorf("log2 coefficient = %g, want > 0", fit.B)
	}
}

func TestFitCollectiveValidation(t *testing.T) {
	if _, err := FitCollective([]int{1, 2}, []float64{1}); err != ErrShape {
		t.Errorf("err = %v", err)
	}
	if _, err := FitCollective([]int{1, 2, 4}, []float64{1, 2, 3}); err != ErrTooFew {
		t.Errorf("err = %v", err)
	}
	if _, err := FitCollective([]int{0, 2, 4, 8}, []float64{1, 2, 3, 4}); err == nil {
		t.Error("p=0 should error")
	}
}

func TestFitSegmentedThreePieces(t *testing.T) {
	// Plant the paper's Fig 7 overhead structure: constant for p<=8,
	// 0.1·log2 for 8<p<=16, 0.17·log2 for p>16.
	var ps []int
	var ts []float64
	f := func(p int) float64 {
		switch {
		case p <= 8:
			return 10e-9
		case p <= 16:
			return 0.1e-3 * math.Log2(float64(p))
		default:
			return 0.17e-3 * math.Log2(float64(p))
		}
	}
	for p := 2; p <= 64; p++ {
		ps = append(ps, p)
		ts = append(ts, f(p))
	}
	m, err := FitSegmented(ps, ts, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) != 3 {
		t.Fatalf("segments = %d", len(m.Segments))
	}
	// Evaluate against the ground truth everywhere.
	for p := 2; p <= 64; p++ {
		got := m.Eval(p)
		want := f(p)
		if math.Abs(got-want) > 1e-6+0.01*want {
			t.Errorf("Eval(%d) = %g, want %g", p, got, want)
		}
	}
	// Middle segment recovers the 0.1 ms coefficient.
	mid := m.Segments[1]
	if math.Abs(mid.Coef-0.1e-3) > 1e-5 {
		t.Errorf("middle coefficient = %g, want 1e-4", mid.Coef)
	}
	if m.String() == "" {
		t.Error("String rendering")
	}
}

func TestFitSegmentedEdgeCases(t *testing.T) {
	if _, err := FitSegmented(nil, nil, nil); err != ErrShape {
		t.Errorf("err = %v", err)
	}
	if _, err := FitSegmented([]int{2, 4}, []float64{1, 2}, []int{8, 4}); err == nil {
		t.Error("unsorted breakpoints should error")
	}
	// A single observation in a piece becomes a constant.
	m, err := FitSegmented([]int{4, 32, 33}, []float64{1, 5, 5.1}, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Eval(4)-1) > 1e-12 {
		t.Errorf("single-point segment Eval = %g", m.Eval(4))
	}
	// Extrapolation beyond the data uses the final piece.
	if m.Eval(128) <= 0 {
		t.Error("extrapolation broken")
	}
	// A piece with all-identical p falls back to the mean constant.
	m2, err := FitSegmented([]int{4, 4, 4, 32, 64}, []float64{1, 2, 3, 5, 6}, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m2.Eval(4)-2) > 1e-9 {
		t.Errorf("identical-p fallback Eval(4) = %g, want 2", m2.Eval(4))
	}
}

func TestSegmentedMatchesSimulatedReduceFloor(t *testing.T) {
	// Fit the empirical reduce floor per process count and confirm the
	// fitted model lower-bounds noisy reductions (the Fig 7 calibrated
	// bound's soundness).
	cfg := cluster.PizDaint()
	var ps []int
	var floor []float64
	for p := 2; p <= 64; p *= 2 {
		m, err := cluster.New(cfg, p, 5)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for r := 0; r < 40; r++ {
			v := m.Reduce(8, nil).Root.Seconds()
			if v < best {
				best = v
			}
			m.Advance(100 * time.Microsecond)
		}
		ps = append(ps, p)
		floor = append(floor, best)
	}
	seg, err := FitSegmented(ps, floor, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	// The fit at measured points should be within 20% of the floors.
	for i, p := range ps {
		if math.Abs(seg.Eval(p)-floor[i]) > 0.2*floor[i] {
			t.Errorf("p=%d: fitted %g vs floor %g", p, seg.Eval(p), floor[i])
		}
	}
}
