// Package model implements the semi-analytic performance modeling of
// §5.1: fitting interpretable cost models to measured data so results
// can be put into perspective. It provides ordinary least squares on
// arbitrary feature bases (solved from scratch via normal equations and
// Gaussian elimination with partial pivoting), the LogP-style collective
// model T(p) = a + b·log₂p + c·p, and the segmented (piecewise) fit the
// paper uses for Piz Daint's reduction ("the three pieces can be
// explained by Piz Daint's architecture").
package model

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Errors.
var (
	ErrShape    = errors.New("model: x and y shapes disagree")
	ErrSingular = errors.New("model: normal equations are singular (collinear features)")
	ErrTooFew   = errors.New("model: not enough observations for the parameter count")
)

// Fit is a fitted linear model y ≈ Σ βᵢ·featureᵢ(x).
type Fit struct {
	Beta     []float64
	Features []string
	R2       float64 // coefficient of determination
	RMSE     float64 // root mean squared residual
}

// String renders the fitted formula.
func (f Fit) String() string {
	var b strings.Builder
	for i, name := range f.Features {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%.4g·%s", f.Beta[i], name)
	}
	fmt.Fprintf(&b, "  (R²=%.4f)", f.R2)
	return b.String()
}

// LeastSquares fits y ≈ X·β by ordinary least squares. Rows of x are
// observations; names label the columns for reporting.
func LeastSquares(x [][]float64, y []float64, names []string) (Fit, error) {
	n := len(y)
	if n == 0 || len(x) != n {
		return Fit{}, ErrShape
	}
	p := len(x[0])
	if p == 0 || (names != nil && len(names) != p) {
		return Fit{}, ErrShape
	}
	if n < p {
		return Fit{}, ErrTooFew
	}
	// Normal equations: (XᵀX)β = Xᵀy.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p+1) // augmented with Xᵀy
	}
	for r := 0; r < n; r++ {
		row := x[r]
		if len(row) != p {
			return Fit{}, ErrShape
		}
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xtx[i][p] += row[i] * y[r]
		}
	}
	beta, err := solveGauss(xtx)
	if err != nil {
		return Fit{}, err
	}
	if names == nil {
		names = make([]string, p)
		for i := range names {
			names[i] = fmt.Sprintf("x%d", i)
		}
	}
	fit := Fit{Beta: beta, Features: append([]string(nil), names...)}

	// Goodness of fit.
	var meanY float64
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(n)
	var ssRes, ssTot float64
	for r := 0; r < n; r++ {
		pred := 0.0
		for j := 0; j < p; j++ {
			pred += beta[j] * x[r][j]
		}
		d := y[r] - pred
		ssRes += d * d
		t := y[r] - meanY
		ssTot += t * t
	}
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	} else if ssRes == 0 {
		fit.R2 = 1
	}
	fit.RMSE = math.Sqrt(ssRes / float64(n))
	return fit, nil
}

// solveGauss solves the augmented system [A | b] in place via Gaussian
// elimination with partial pivoting.
func solveGauss(aug [][]float64) ([]float64, error) {
	p := len(aug)
	for col := 0; col < p; col++ {
		// Pivot.
		best := col
		for r := col + 1; r < p; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[best][col]) {
				best = r
			}
		}
		if math.Abs(aug[best][col]) < 1e-12 {
			return nil, ErrSingular
		}
		aug[col], aug[best] = aug[best], aug[col]
		// Eliminate below.
		inv := 1 / aug[col][col]
		for r := col + 1; r < p; r++ {
			f := aug[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= p; c++ {
				aug[r][c] -= f * aug[col][c]
			}
		}
	}
	// Back substitution.
	beta := make([]float64, p)
	for i := p - 1; i >= 0; i-- {
		s := aug[i][p]
		for j := i + 1; j < p; j++ {
			s -= aug[i][j] * beta[j]
		}
		beta[i] = s / aug[i][i]
	}
	return beta, nil
}

// Predict evaluates the fitted model on one feature row.
func (f Fit) Predict(row []float64) float64 {
	s := 0.0
	for i, b := range f.Beta {
		if i < len(row) {
			s += b * row[i]
		}
	}
	return s
}

// CollectiveModel is the LogP-style collective cost model
// T(p) = A + B·log₂p + C·p fitted to (process count, time) data.
type CollectiveModel struct {
	A, B, C float64
	R2      float64
}

// FitCollective fits the collective model to measured (p, seconds)
// pairs. At least four distinct process counts are required.
func FitCollective(ps []int, seconds []float64) (CollectiveModel, error) {
	if len(ps) != len(seconds) {
		return CollectiveModel{}, ErrShape
	}
	if len(ps) < 4 {
		return CollectiveModel{}, ErrTooFew
	}
	x := make([][]float64, len(ps))
	for i, p := range ps {
		if p < 1 {
			return CollectiveModel{}, fmt.Errorf("model: process count %d", p)
		}
		x[i] = []float64{1, math.Log2(float64(p)), float64(p)}
	}
	fit, err := LeastSquares(x, seconds, []string{"1", "log2(p)", "p"})
	if err != nil {
		return CollectiveModel{}, err
	}
	return CollectiveModel{A: fit.Beta[0], B: fit.Beta[1], C: fit.Beta[2], R2: fit.R2}, nil
}

// Eval evaluates the collective model at p.
func (m CollectiveModel) Eval(p int) float64 {
	return m.A + m.B*math.Log2(float64(p)) + m.C*float64(p)
}

// String renders the model.
func (m CollectiveModel) String() string {
	return fmt.Sprintf("T(p) = %.4g + %.4g·log2(p) + %.4g·p  (R²=%.4f)", m.A, m.B, m.C, m.R2)
}

// Segment is one piece of a segmented model: for p in (LoExclusive, Hi],
// T(p) = Coef·log₂p + Const.
type Segment struct {
	LoExclusive int
	Hi          int
	Const       float64
	Coef        float64
	R2          float64
}

// Segmented is the piecewise log-linear model of the paper's Fig 7
// reduction overhead: pieces split at architectural boundaries (e.g.
// socket, group, global).
type Segmented struct {
	Segments []Segment
}

// FitSegmented fits one log-linear piece per interval between the given
// breakpoints (e.g. breaks = [8, 16] fits pieces for p ≤ 8,
// 8 < p ≤ 16, p > 16 — the paper's three Piz Daint pieces). Each piece
// needs at least two observations; single-observation pieces become
// constants.
func FitSegmented(ps []int, seconds []float64, breaks []int) (Segmented, error) {
	if len(ps) != len(seconds) || len(ps) == 0 {
		return Segmented{}, ErrShape
	}
	for i := 1; i < len(breaks); i++ {
		if breaks[i] <= breaks[i-1] {
			return Segmented{}, fmt.Errorf("model: breakpoints must be increasing")
		}
	}
	maxP := 0
	for _, p := range ps {
		if p > maxP {
			maxP = p
		}
	}
	bounds := append(append([]int{0}, breaks...), maxP)

	var out Segmented
	for s := 0; s+1 < len(bounds); s++ {
		lo, hi := bounds[s], bounds[s+1]
		if hi <= lo {
			continue
		}
		var xs [][]float64
		var ys []float64
		for i, p := range ps {
			if p > lo && p <= hi {
				xs = append(xs, []float64{1, math.Log2(float64(p))})
				ys = append(ys, seconds[i])
			}
		}
		seg := Segment{LoExclusive: lo, Hi: hi}
		switch len(ys) {
		case 0:
			continue
		case 1:
			seg.Const = ys[0]
			seg.R2 = 1
		default:
			fit, err := LeastSquares(xs, ys, []string{"1", "log2(p)"})
			if err == nil {
				seg.Const = fit.Beta[0]
				seg.Coef = fit.Beta[1]
				seg.R2 = fit.R2
			} else {
				// Collinear (all same p): constant fallback.
				mean := 0.0
				for _, v := range ys {
					mean += v
				}
				seg.Const = mean / float64(len(ys))
			}
		}
		out.Segments = append(out.Segments, seg)
	}
	if len(out.Segments) == 0 {
		return Segmented{}, ErrTooFew
	}
	return out, nil
}

// Eval evaluates the segmented model at p (the last covering segment
// wins; p beyond the data extrapolates the final piece).
func (m Segmented) Eval(p int) float64 {
	if len(m.Segments) == 0 {
		return math.NaN()
	}
	seg := m.Segments[len(m.Segments)-1]
	for _, s := range m.Segments {
		if p > s.LoExclusive && p <= s.Hi {
			seg = s
			break
		}
	}
	return seg.Const + seg.Coef*math.Log2(float64(p))
}

// String renders the segmented model piece by piece.
func (m Segmented) String() string {
	var b strings.Builder
	for i, s := range m.Segments {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "p∈(%d,%d]: %.4g + %.4g·log2(p)", s.LoExclusive, s.Hi, s.Const, s.Coef)
	}
	return b.String()
}
