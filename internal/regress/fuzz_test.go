package regress

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseReport asserts the BENCH_*.json parser is total: arbitrary
// bytes either parse into a report that survives a re-encode/re-parse
// round trip, or return an error — never a panic. Mirrors the journal
// parser fuzz setup from the campaign package.
func FuzzParseReport(f *testing.F) {
	f.Add([]byte(v1Doc))
	var v2 bytes.Buffer
	rep, err := ParseBench(strings.NewReader(benchText))
	if err != nil {
		f.Fatal(err)
	}
	if err := rep.WriteJSON(&v2); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"schema": 99}`))
	f.Add([]byte(`{"schema": 2, "results": [{"name":"B","iterations":[1],"samples":{"ns/op":[1]}}]}`))
	f.Add([]byte(`{"schema": 2, "results": [{"name":"B","iterations":[1,2],"samples":{"ns/op":[1]}}]}`))
	f.Add([]byte(`{"results": [{"name":"B","iterations":1,"metrics":{"ns/op":1e308}}]}`))
	f.Add([]byte(`{"results": [{"name":"B","iterations":1,"metrics":{"ns/op":`)) // torn
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := ParseReport(data)
		if err != nil {
			return
		}
		// Anything that parsed must be valid and must round-trip.
		if err := rep.Validate(); err != nil {
			t.Fatalf("parsed report fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := ParseReport(buf.Bytes())
		if err != nil {
			t.Fatalf("re-parse of re-encoded report: %v", err)
		}
		if len(back.Results) != len(rep.Results) {
			t.Fatalf("round trip changed result count: %d -> %d",
				len(rep.Results), len(back.Results))
		}
	})
}

// FuzzParseBench asserts the `go test -bench` text parser is total and
// that whatever it accepts re-parses from its own JSON encoding.
func FuzzParseBench(f *testing.F) {
	f.Add(benchText)
	f.Add("")
	f.Add("BenchmarkX-8 100 5 ns/op\n")
	f.Add("BenchmarkX-8 100 5 ns/op\nBenchmarkX-8 90 6 ns/op\n")
	f.Add("pkg: a\nBenchmarkX 1 2 ns/op\npkg: b\nBenchmarkX 1 3 ns/op\n")
	f.Add("BenchmarkX-8 100 NaN ns/op\n")
	f.Add("BenchmarkX-8 -1 5 ns/op\n")
	f.Add("Benchmark\ngoos: linux\ncpu: weird: colons: here\n")
	f.Fuzz(func(t *testing.T, text string) {
		rep, err := ParseBench(strings.NewReader(text))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if _, err := ParseReport(buf.Bytes()); err != nil {
			t.Fatalf("ParseBench output does not re-parse: %v", err)
		}
	})
}
