// Package regress implements the repo's statistical performance-
// regression gate: it applies the paper's own machinery (median +
// rank-based CIs per Le Boudec, Mann–Whitney rank tests, Tukey outlier
// policy, §4.2.2 sample-size planning) to `go test -bench` sample sets,
// so performance claims about the harness itself are held to Rules 5–8
// instead of eyeballed means from single runs.
//
// The package has two halves: a versioned on-disk format for recorded
// benchmark runs (`BENCH_*.json`, schema v2 with per-run raw samples;
// schema v1 single-run files still parse), and the comparison engine
// that turns a baseline/candidate pair into per-benchmark verdicts.
package regress

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion is the current `BENCH_*.json` schema. Version 1 (no
// "schema" field; one run per benchmark, metrics as single numbers) is
// still accepted by ParseReport; versions newer than this are refused
// rather than misread.
const SchemaVersion = 2

// Errors returned by the format layer.
var (
	// ErrSchema reports a BENCH file whose schema version is newer than
	// this build understands.
	ErrSchema = errors.New("regress: schema version too new")
	// ErrNoResults reports a report with no benchmark entries.
	ErrNoResults = errors.New("regress: report has no benchmark results")
	// ErrMalformed reports a structurally invalid report (missing ns/op,
	// ragged sample columns, non-finite values, duplicate benchmarks).
	ErrMalformed = errors.New("regress: malformed report")
)

// Report is one recorded benchmark run set: the environment block
// (Rule 9), the requested repetition count, optional provenance, and
// per-benchmark raw samples.
type Report struct {
	// Schema is the format version (SchemaVersion when written by this
	// build; 0 in files that predate the field, i.e. v1).
	Schema int `json:"schema,omitempty"`
	// Env is the Rule 9 environment block: the goos/goarch/cpu header
	// `go test` prints, plus the go version, GOMAXPROCS, CPU count and
	// host recorded at collection time.
	Env map[string]string `json:"env"`
	// Count is the requested number of repetitions (go test -count).
	Count int `json:"count,omitempty"`
	// Provenance records where a committed baseline came from.
	Provenance *Provenance `json:"provenance,omitempty"`
	// Results holds one entry per benchmark, in first-seen order.
	Results []Result `json:"results"`
}

// Provenance documents a baseline's origin so a committed
// `BENCH_*.json` carries its own chain of custody (Rule 9).
type Provenance struct {
	// Commit is the VCS revision the samples were collected at.
	Commit string `json:"commit,omitempty"`
	// Date is the collection time, RFC 3339.
	Date string `json:"date,omitempty"`
	// EnvFingerprint is EnvFingerprint(Env) at collection time; a
	// mismatch against a candidate flags a cross-machine comparison.
	EnvFingerprint string `json:"env_fingerprint,omitempty"`
	// Tool identifies the writer (e.g. "benchjson -count 5").
	Tool string `json:"tool,omitempty"`
}

// Result is one benchmark's repeated measurements: the per-run
// iteration counts and, per metric unit, the per-run raw samples —
// Samples["ns/op"][i] is run i's ns/op.
type Result struct {
	Name       string               `json:"name"`
	Package    string               `json:"package,omitempty"`
	Iterations []int64              `json:"iterations"`
	Samples    map[string][]float64 `json:"samples"`
}

// Key identifies the benchmark across reports (package + name).
func (r Result) Key() string {
	if r.Package == "" {
		return r.Name
	}
	return r.Package + "." + r.Name
}

// Runs returns the number of recorded repetitions.
func (r Result) Runs() int { return len(r.Iterations) }

// Sample returns the raw per-run samples for a metric unit (nil when
// the unit was not recorded).
func (r Result) Sample(unit string) []float64 { return r.Samples[unit] }

// reportV1 is the schema-1 wire shape: one run per benchmark, metrics
// as single numbers.
type reportV1 struct {
	Env     map[string]string `json:"env"`
	Results []struct {
		Name       string             `json:"name"`
		Package    string             `json:"package"`
		Iterations int64              `json:"iterations"`
		Metrics    map[string]float64 `json:"metrics"`
	} `json:"results"`
}

// ParseReport decodes a `BENCH_*.json` document, accepting both the
// current schema v2 and legacy v1 files (which become single-run sample
// sets). The returned report is validated: every benchmark has ns/op
// samples, sample columns are rectangular, and all values are finite.
func ParseReport(data []byte) (*Report, error) {
	var probe struct {
		Schema int `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if probe.Schema > SchemaVersion {
		return nil, fmt.Errorf("%w: schema %d, this build understands <= %d",
			ErrSchema, probe.Schema, SchemaVersion)
	}
	var rep Report
	if probe.Schema >= SchemaVersion {
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
	} else {
		var v1 reportV1
		if err := json.Unmarshal(data, &v1); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		rep = upgradeV1(v1)
	}
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return &rep, nil
}

// LoadReport reads and parses a `BENCH_*.json` file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep, err := ParseReport(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// upgradeV1 lifts a single-run v1 report into the v2 shape: each metric
// value becomes a one-element sample column.
func upgradeV1(v1 reportV1) Report {
	rep := Report{Schema: 1, Env: v1.Env, Count: 1}
	for _, r := range v1.Results {
		res := Result{
			Name:       r.Name,
			Package:    r.Package,
			Iterations: []int64{r.Iterations},
			Samples:    map[string][]float64{},
		}
		for unit, v := range r.Metrics {
			res.Samples[unit] = []float64{v}
		}
		rep.Results = append(rep.Results, res)
	}
	return rep
}

// Validate checks structural soundness: at least one result, ns/op
// present everywhere, rectangular sample columns matching the iteration
// count, finite values, and no duplicate benchmark keys.
func (rep *Report) Validate() error {
	if len(rep.Results) == 0 {
		return ErrNoResults
	}
	seen := make(map[string]bool, len(rep.Results))
	for _, r := range rep.Results {
		if r.Name == "" {
			return fmt.Errorf("%w: result with empty name", ErrMalformed)
		}
		if seen[r.Key()] {
			return fmt.Errorf("%w: duplicate benchmark %q", ErrMalformed, r.Key())
		}
		seen[r.Key()] = true
		runs := len(r.Iterations)
		if runs == 0 {
			return fmt.Errorf("%w: %s has no runs", ErrMalformed, r.Key())
		}
		for _, it := range r.Iterations {
			if it <= 0 {
				return fmt.Errorf("%w: %s has non-positive iteration count", ErrMalformed, r.Key())
			}
		}
		if len(r.Samples["ns/op"]) == 0 {
			return fmt.Errorf("%w: %s has no ns/op samples", ErrMalformed, r.Key())
		}
		for unit, xs := range r.Samples {
			if len(xs) != runs {
				return fmt.Errorf("%w: %s %s has %d samples for %d runs",
					ErrMalformed, r.Key(), unit, len(xs), runs)
			}
			for _, v := range xs {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("%w: %s %s has non-finite sample", ErrMalformed, r.Key(), unit)
				}
			}
		}
	}
	return nil
}

// WriteJSON writes the report as indented JSON, stamping the current
// schema version.
func (rep *Report) WriteJSON(w io.Writer) error {
	rep.Schema = SchemaVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// EnvFingerprint hashes an environment block into a short stable
// identifier: the first 12 hex digits of the SHA-256 over the sorted
// key=value lines. Two runs with the same fingerprint ran in (at least
// nominally) the same environment; comparing across different
// fingerprints is a Rule 9 caveat the gate reports.
func EnvFingerprint(env map[string]string) string {
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\n", k, env[k])
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:12]
}

// CaptureEnv returns the collector-side Rule 9 environment block: go
// toolchain version, GOOS/GOARCH, GOMAXPROCS, CPU count, and host name.
// The goos/goarch/cpu header lines `go test` prints are merged over
// these by ParseBench.
func CaptureEnv() map[string]string {
	env := map[string]string{
		"go":         runtime.Version(),
		"goos":       runtime.GOOS,
		"goarch":     runtime.GOARCH,
		"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0)),
		"numcpu":     strconv.Itoa(runtime.NumCPU()),
	}
	if host, err := os.Hostname(); err == nil {
		env["host"] = host
	}
	return env
}

// ParseBench parses `go test -bench` text output into a schema v2
// report, grouping the repeated result lines a `-count N` run prints
// into per-run sample columns. Header lines (goos/goarch/cpu/pkg) feed
// the environment block and per-benchmark package attribution.
func ParseBench(r io.Reader) (*Report, error) {
	rep := &Report{Schema: SchemaVersion, Env: map[string]string{}}
	index := map[string]int{} // Result.Key() -> index in rep.Results
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			rep.Env[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "pkg:"):
			_, v, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			name, iters, metrics, ok := parseBenchLine(line)
			if !ok {
				continue // e.g. a benchmark that only printed its name
			}
			key := name
			if pkg != "" {
				key = pkg + "." + name
			}
			i, exists := index[key]
			if !exists {
				i = len(rep.Results)
				index[key] = i
				rep.Results = append(rep.Results, Result{
					Name:    name,
					Package: pkg,
					Samples: map[string][]float64{},
				})
			}
			res := &rep.Results[i]
			res.Iterations = append(res.Iterations, iters)
			for unit, v := range metrics {
				res.Samples[unit] = append(res.Samples[unit], v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine decodes one result line of the form
//
//	BenchmarkName-8   1234   5678 ns/op   90 B/op   3 allocs/op
//
// stripping the trailing -GOMAXPROCS suffix go test appends.
func parseBenchLine(line string) (name string, iters int64, metrics map[string]float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", 0, nil, false
	}
	name = fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", 0, nil, false
	}
	metrics = map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", 0, nil, false
		}
		metrics[fields[i+1]] = v
	}
	if _, has := metrics["ns/op"]; !has {
		return "", 0, nil, false
	}
	return name, iters, metrics, true
}
