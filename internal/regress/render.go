package regress

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/ci"
)

// WriteJSON writes the gate report as indented JSON.
func (g *GateReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// ParseGateJSON decodes a gate report previously written by WriteJSON,
// for tooling that post-processes verdicts.
func ParseGateJSON(data []byte) (*GateReport, error) {
	var g GateReport
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return &g, nil
}

// WriteMarkdown renders the per-benchmark verdict table as GitHub-
// flavored markdown — the artifact the CI job publishes as its job
// summary. Every row carries its evidence: medians with their
// nonparametric CIs, the relative shift, the rank-test p-value, and
// the sample accounting (Rule 5: never a bare mean).
func (g *GateReport) WriteMarkdown(w io.Writer) error {
	bw := &errWriter{w: w}
	counts := g.Counts()
	fmt.Fprintf(bw, "### benchgate — %d benchmark(s): %d PASS, %d REGRESSED, %d IMPROVED, %d INCONCLUSIVE\n\n",
		len(g.Comparisons), counts[VerdictPass], counts[VerdictRegressed],
		counts[VerdictImproved], counts[VerdictInconclusive])
	fmt.Fprintf(bw, "Gate: |Δmedian| ≥ %.1f%% **and** Mann–Whitney p < %.2g (%.0f%% median CIs, Tukey k=%.1f on %s).\n\n",
		100*g.Options.Threshold, g.Options.Alpha, 100*g.Options.Confidence,
		g.Options.TukeyK, g.Options.Unit)
	if g.EnvMismatch {
		fmt.Fprintf(bw, "> ⚠️ %s\n\n", g.EnvNote)
	}
	fmt.Fprintln(bw, "| benchmark | baseline median | candidate median | Δ | p (U) | n | verdict | caveats |")
	fmt.Fprintln(bw, "|---|---|---|---|---|---|---|---|")
	for _, c := range g.Comparisons {
		fmt.Fprintf(bw, "| %s | %s | %s | %+.1f%% | %s | %d/%d | %s %s | %s |\n",
			c.Name,
			medianCell(c.BaselineMedian, c.BaselineCI, c.Unit),
			medianCell(c.CandidateMedian, c.CandidateCI, c.Unit),
			100*c.Delta, pCell(c.P), c.BaselineN, c.CandidateN,
			verdictEmoji(c.Verdict), c.Verdict, caveatCell(c.Caveats(g.EnvMismatch)))
	}
	fmt.Fprintln(bw)
	for _, c := range g.Comparisons {
		if c.Verdict != VerdictPass {
			fmt.Fprintf(bw, "- **%s** %s: %s\n", c.Name, c.Verdict, c.Reason)
		}
	}
	writeMissing(bw, "only in baseline (removed?)", g.MissingInCandidate)
	writeMissing(bw, "only in candidate (new)", g.MissingInBaseline)
	return bw.err
}

// WriteText renders a plain-terminal version of the verdict table.
func (g *GateReport) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	counts := g.Counts()
	fmt.Fprintf(bw, "benchgate: %d benchmark(s): %d PASS, %d REGRESSED, %d IMPROVED, %d INCONCLUSIVE\n",
		len(g.Comparisons), counts[VerdictPass], counts[VerdictRegressed],
		counts[VerdictImproved], counts[VerdictInconclusive])
	fmt.Fprintf(bw, "gate: |dmedian| >= %.1f%% and Mann-Whitney p < %.2g (unit %s)\n",
		100*g.Options.Threshold, g.Options.Alpha, g.Options.Unit)
	if g.EnvMismatch {
		fmt.Fprintf(bw, "warning: %s\n", g.EnvNote)
	}
	for _, c := range g.Comparisons {
		fmt.Fprintf(bw, "  %-14s %-40s %12.6g -> %-12.6g %+7.1f%%  p=%-8s n=%d/%d\n",
			c.Verdict, c.Name, c.BaselineMedian, c.CandidateMedian,
			100*c.Delta, pCell(c.P), c.BaselineN, c.CandidateN)
		if c.Verdict != VerdictPass {
			fmt.Fprintf(bw, "  %-14s   %s\n", "", c.Reason)
		}
	}
	if len(g.MissingInCandidate) > 0 {
		fmt.Fprintf(bw, "only in baseline: %s\n", strings.Join(g.MissingInCandidate, ", "))
	}
	if len(g.MissingInBaseline) > 0 {
		fmt.Fprintf(bw, "only in candidate: %s\n", strings.Join(g.MissingInBaseline, ", "))
	}
	return bw.err
}

func writeMissing(w io.Writer, label string, keys []string) {
	if len(keys) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%s: %s\n", label, strings.Join(keys, ", "))
}

func medianCell(med float64, iv *ci.Interval, unit string) string {
	if iv == nil {
		return fmt.Sprintf("%.4g %s", med, unit)
	}
	return fmt.Sprintf("%.4g [%.4g, %.4g] %s", med, iv.Lo, iv.Hi, unit)
}

// caveatCell renders a row's Rule 9 caveat list; a clean row shows "—"
// so absence of caveats is a statement, not an empty cell.
func caveatCell(cv []string) string {
	if len(cv) == 0 {
		return "—"
	}
	return strings.Join(cv, "; ")
}

func pCell(p float64) string {
	if math.IsNaN(p) {
		return "—"
	}
	return fmt.Sprintf("%.3g", p)
}

func verdictEmoji(v Verdict) string {
	switch v {
	case VerdictPass:
		return "✅"
	case VerdictRegressed:
		return "❌"
	case VerdictImproved:
		return "🚀"
	default:
		return "❔"
	}
}

// errWriter folds repeated Fprintf error checks into one sticky error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	_, err := e.w.Write(p)
	e.err = err
	return len(p), nil
}
