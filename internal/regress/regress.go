package regress

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ci"
	"repro/internal/htest"
	"repro/internal/stats"
)

// Verdict is the gate's per-benchmark conclusion.
type Verdict string

const (
	// VerdictPass: no supportable evidence of a slowdown at or above
	// the effect threshold.
	VerdictPass Verdict = "PASS"
	// VerdictRegressed: the candidate's median is significantly higher
	// (rank test, p < alpha) AND the shift is at least the effect
	// threshold — noise-level wobble never reaches this verdict.
	VerdictRegressed Verdict = "REGRESSED"
	// VerdictImproved: significantly lower median, at or beyond the
	// threshold.
	VerdictImproved Verdict = "IMPROVED"
	// VerdictInconclusive: the comparison cannot support any claim —
	// too few samples for the rank test, or the sample sizes are below
	// the §4.2.2 requirement for the requested resolution (an
	// underpowered non-rejection is not a PASS).
	VerdictInconclusive Verdict = "INCONCLUSIVE"
)

// Options configures a gate run. The zero value is usable: 5% effect
// threshold, α = 0.05, 95% CIs, Tukey k = 1.5.
type Options struct {
	// Threshold is the minimum relative median shift treated as a real
	// effect (0.05 = 5%). Shifts below it never fail the gate, however
	// significant — the effect-size discipline of §3.2.2.
	Threshold float64
	// Alpha is the rank-test significance level (default 0.05).
	Alpha float64
	// Confidence is the level for the median CIs (default 0.95).
	Confidence float64
	// TukeyK is the outlier-fence multiplier (default 1.5); negative
	// disables outlier removal. Removed counts are always reported
	// (§3.1.3).
	TukeyK float64
	// Unit is the gated metric (default "ns/op"). Other recorded units
	// are reported as informational deltas.
	Unit string
}

func (o Options) threshold() float64 {
	if o.Threshold <= 0 {
		return 0.05
	}
	return o.Threshold
}

func (o Options) alpha() float64 {
	if o.Alpha <= 0 {
		return 0.05
	}
	return o.Alpha
}

func (o Options) confidence() float64 {
	if o.Confidence <= 0 || o.Confidence >= 1 {
		return 0.95
	}
	return o.Confidence
}

func (o Options) tukeyK() float64 {
	if o.TukeyK == 0 {
		return 1.5
	}
	return o.TukeyK
}

func (o Options) unit() string {
	if o.Unit == "" {
		return "ns/op"
	}
	return o.Unit
}

// MetricDelta is an informational (non-gated) metric comparison:
// median baseline vs candidate and the relative shift.
type MetricDelta struct {
	Unit      string  `json:"unit"`
	Baseline  float64 `json:"baseline"`
	Candidate float64 `json:"candidate"`
	Delta     float64 `json:"delta"` // relative; NaN encoded as 0 when baseline is 0
}

// Comparison is one benchmark's full verdict with the statistical
// evidence behind it, so the reported conclusion carries its basis
// (Rule 5: report CIs and sample counts, not bare means).
type Comparison struct {
	Name    string `json:"name"`
	Package string `json:"package,omitempty"`
	Unit    string `json:"unit"`

	Verdict Verdict `json:"verdict"`
	// Reason is the one-line human-readable basis for the verdict.
	Reason string `json:"reason"`

	// Sample accounting (after outlier removal; removed counts per
	// §3.1.3's "report the number of removed outliers").
	BaselineN         int `json:"baseline_n"`
	CandidateN        int `json:"candidate_n"`
	BaselineOutliers  int `json:"baseline_outliers"`
	CandidateOutliers int `json:"candidate_outliers"`

	// Medians and their nonparametric CIs (nil when n < 6, the Le
	// Boudec minimum).
	BaselineMedian  float64      `json:"baseline_median"`
	CandidateMedian float64      `json:"candidate_median"`
	BaselineCI      *ci.Interval `json:"baseline_ci,omitempty"`
	CandidateCI     *ci.Interval `json:"candidate_ci,omitempty"`

	// Delta is the relative median shift (candidate − baseline) /
	// baseline; positive = slower for cost metrics like ns/op.
	Delta float64 `json:"delta"`
	// P is the two-sided Mann–Whitney p-value (NaN when the test could
	// not run).
	P float64 `json:"p"`
	// RankBiserial is the rank-test effect size in [−1, 1].
	RankBiserial float64 `json:"rank_biserial"`

	// RequiredN is the §4.2.2 sample count needed to resolve the
	// threshold at the configured confidence (0 when not computable);
	// Underpowered marks comparisons whose sides fall short of it.
	RequiredN    int  `json:"required_n,omitempty"`
	Underpowered bool `json:"underpowered"`

	// Secondary holds the non-gated metric deltas (B/op, allocs/op,
	// custom units), sorted by unit.
	Secondary []MetricDelta `json:"secondary,omitempty"`
}

// Caveats lists everything that weakens this comparison's verdict as
// evidence — the Rule 9 disclosures a reader needs before acting on a
// REGRESSED row: environment drift between the two collections (the
// shared-runner false-positive mode narrated in EXPERIMENTS.md), Tukey
// outliers silently absent from the medians (§3.1.3), and an n below
// the §4.2.2 requirement for the gated threshold. envMismatch is the
// report-level fingerprint verdict (it applies to every row).
func (c Comparison) Caveats(envMismatch bool) []string {
	var cv []string
	if envMismatch {
		cv = append(cv, "env drift")
	}
	if c.BaselineOutliers > 0 || c.CandidateOutliers > 0 {
		cv = append(cv, fmt.Sprintf("outliers removed %d/%d", c.BaselineOutliers, c.CandidateOutliers))
	}
	if c.Underpowered && c.RequiredN > 0 {
		cv = append(cv, fmt.Sprintf("underpowered n<%d", c.RequiredN))
	}
	return cv
}

// GateReport is the whole gate run: per-benchmark comparisons plus the
// cross-cutting caveats (benchmarks present on only one side,
// environment fingerprint mismatch).
type GateReport struct {
	Options     ResolvedOptions `json:"options"`
	Comparisons []Comparison    `json:"comparisons"`
	// MissingInCandidate / MissingInBaseline list benchmark keys found
	// on only one side (renames, new benchmarks, deletions).
	MissingInCandidate []string `json:"missing_in_candidate,omitempty"`
	MissingInBaseline  []string `json:"missing_in_baseline,omitempty"`
	// EnvMismatch notes a Rule 9 caveat: the two reports carry
	// different environment fingerprints, so hardware/toolchain drift
	// may explain any shift.
	EnvMismatch bool   `json:"env_mismatch"`
	EnvNote     string `json:"env_note,omitempty"`
}

// Counts returns the number of comparisons per verdict.
func (g *GateReport) Counts() map[Verdict]int {
	m := map[Verdict]int{}
	for _, c := range g.Comparisons {
		m[c.Verdict]++
	}
	return m
}

// Regressed reports whether any benchmark regressed — the gate's
// exit-code condition.
func (g *GateReport) Regressed() bool {
	for _, c := range g.Comparisons {
		if c.Verdict == VerdictRegressed {
			return true
		}
	}
	return false
}

// Compare runs the gate: for every benchmark present in both reports
// it applies the outlier policy, computes median + rank CIs, runs the
// Mann–Whitney test, checks §4.2.2 power, and issues a verdict.
// Comparisons are ordered by benchmark key for deterministic output.
func Compare(baseline, candidate *Report, opt Options) (*GateReport, error) {
	if err := baseline.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := candidate.Validate(); err != nil {
		return nil, fmt.Errorf("candidate: %w", err)
	}
	g := &GateReport{}
	g.Options.Threshold = opt.threshold()
	g.Options.Alpha = opt.alpha()
	g.Options.Confidence = opt.confidence()
	g.Options.TukeyK = opt.tukeyK()
	g.Options.Unit = opt.unit()

	baseIdx := indexByKey(baseline)
	candIdx := indexByKey(candidate)
	keys := make([]string, 0, len(baseIdx))
	for k := range baseIdx {
		if _, ok := candIdx[k]; ok {
			keys = append(keys, k)
		} else {
			g.MissingInCandidate = append(g.MissingInCandidate, k)
		}
	}
	for k := range candIdx {
		if _, ok := baseIdx[k]; !ok {
			g.MissingInBaseline = append(g.MissingInBaseline, k)
		}
	}
	sort.Strings(keys)
	sort.Strings(g.MissingInCandidate)
	sort.Strings(g.MissingInBaseline)

	bfp, cfp := EnvFingerprint(baseline.Env), EnvFingerprint(candidate.Env)
	if bfp != cfp {
		g.EnvMismatch = true
		g.EnvNote = fmt.Sprintf("environment fingerprints differ (baseline %s, candidate %s): "+
			"hardware or toolchain drift may explain shifts (Rule 9)", bfp, cfp)
	}

	for _, k := range keys {
		b, c := baseIdx[k], candIdx[k]
		g.Comparisons = append(g.Comparisons, compareOne(b, c, g.Options))
	}
	return g, nil
}

func indexByKey(rep *Report) map[string]Result {
	m := make(map[string]Result, len(rep.Results))
	for _, r := range rep.Results {
		m[r.Key()] = r
	}
	return m
}

// ResolvedOptions is the Options value after defaulting — recorded in
// the GateReport so a verdict table carries the thresholds it was
// judged under.
type ResolvedOptions struct {
	Threshold  float64 `json:"threshold"`
	Alpha      float64 `json:"alpha"`
	Confidence float64 `json:"confidence"`
	TukeyK     float64 `json:"tukey_k"`
	Unit       string  `json:"unit"`
}

func compareOne(b, c Result, opt ResolvedOptions) Comparison {
	cmp := Comparison{Name: b.Name, Package: b.Package, Unit: opt.Unit}

	bs, bOut := applyOutlierPolicy(b.Sample(opt.Unit), opt.TukeyK)
	cs, cOut := applyOutlierPolicy(c.Sample(opt.Unit), opt.TukeyK)
	cmp.BaselineN, cmp.CandidateN = len(bs), len(cs)
	cmp.BaselineOutliers, cmp.CandidateOutliers = bOut, cOut
	cmp.P = math.NaN()
	cmp.Secondary = secondaryDeltas(b, c, opt.Unit)

	if len(bs) == 0 || len(cs) == 0 {
		cmp.Verdict = VerdictInconclusive
		cmp.Reason = fmt.Sprintf("no %s samples on one side", opt.Unit)
		return cmp
	}
	cmp.BaselineMedian = stats.Median(bs)
	cmp.CandidateMedian = stats.Median(cs)
	if cmp.BaselineMedian != 0 {
		cmp.Delta = (cmp.CandidateMedian - cmp.BaselineMedian) / cmp.BaselineMedian
	}
	if iv, err := ci.MedianCI(bs, opt.Confidence); err == nil {
		cmp.BaselineCI = &iv
	}
	if iv, err := ci.MedianCI(cs, opt.Confidence); err == nil {
		cmp.CandidateCI = &iv
	}
	// §4.2.2 power check against the threshold the gate must resolve,
	// judged from the baseline side (the committed reference).
	if need, err := ci.RequiredSamples(bs, opt.Confidence, opt.Threshold); err == nil {
		cmp.RequiredN = need
		cmp.Underpowered = len(bs) < need || len(cs) < need
	}

	if len(bs) < 2 || len(cs) < 2 {
		cmp.Verdict = VerdictInconclusive
		cmp.Reason = fmt.Sprintf("n=%d vs n=%d: too few samples for a rank test (single-run v1 baseline?)",
			len(bs), len(cs))
		return cmp
	}
	if cmp.BaselineMedian == 0 {
		cmp.Verdict = VerdictInconclusive
		cmp.Reason = "baseline median is zero; relative shift undefined"
		return cmp
	}

	mw, err := htest.MannWhitney(bs, cs)
	if err != nil {
		cmp.Verdict = VerdictInconclusive
		cmp.Reason = fmt.Sprintf("rank test unavailable: %v", err)
		return cmp
	}
	cmp.P = mw.P
	cmp.RankBiserial = mw.RankBiserial

	significant := mw.P < opt.Alpha
	big := math.Abs(cmp.Delta) >= opt.Threshold
	switch {
	case significant && big && cmp.Delta > 0:
		cmp.Verdict = VerdictRegressed
		cmp.Reason = fmt.Sprintf("median +%.1f%% (≥ %.1f%% threshold), U test p=%.3g < %.2g",
			100*cmp.Delta, 100*opt.Threshold, mw.P, opt.Alpha)
	case significant && big:
		cmp.Verdict = VerdictImproved
		cmp.Reason = fmt.Sprintf("median %.1f%% (≥ %.1f%% threshold), U test p=%.3g < %.2g",
			100*cmp.Delta, 100*opt.Threshold, mw.P, opt.Alpha)
	case significant:
		cmp.Verdict = VerdictPass
		cmp.Reason = fmt.Sprintf("significant (p=%.3g) but |Δmedian| %.1f%% < %.1f%% threshold: noise-level wobble",
			mw.P, 100*math.Abs(cmp.Delta), 100*opt.Threshold)
	case cmp.Underpowered:
		cmp.Verdict = VerdictInconclusive
		cmp.Reason = fmt.Sprintf("not significant (p=%.3g) but underpowered: n=%d/%d < required %d for ±%.1f%% (§4.2.2)",
			mw.P, len(bs), len(cs), cmp.RequiredN, 100*opt.Threshold)
	default:
		cmp.Verdict = VerdictPass
		cmp.Reason = fmt.Sprintf("no significant shift (p=%.3g, Δmedian %+.1f%%)", mw.P, 100*cmp.Delta)
	}
	return cmp
}

// applyOutlierPolicy removes Tukey-fence outliers (k < 0 disables) and
// reports how many were removed. Samples too small to estimate fences
// (n < 4) pass through unfiltered.
func applyOutlierPolicy(xs []float64, k float64) ([]float64, int) {
	if k < 0 || len(xs) < 4 {
		return xs, 0
	}
	kept, outliers := stats.TukeyFilter(xs, k)
	if len(kept) == 0 {
		// Degenerate fences (shouldn't happen with k >= 0); keep the
		// data rather than discard the benchmark.
		return xs, 0
	}
	return kept, len(outliers)
}

// secondaryDeltas compares the non-gated units present on both sides.
func secondaryDeltas(b, c Result, gated string) []MetricDelta {
	units := make([]string, 0, len(b.Samples))
	for u := range b.Samples {
		if u == gated {
			continue
		}
		if _, ok := c.Samples[u]; ok {
			units = append(units, u)
		}
	}
	sort.Strings(units)
	out := make([]MetricDelta, 0, len(units))
	for _, u := range units {
		mb := stats.Median(b.Samples[u])
		mc := stats.Median(c.Samples[u])
		d := MetricDelta{Unit: u, Baseline: mb, Candidate: mc}
		if mb != 0 {
			d.Delta = (mc - mb) / mb
		}
		out = append(out, d)
	}
	return out
}
