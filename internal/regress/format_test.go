package regress

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

const v1Doc = `{
  "env": {"goos": "linux", "goarch": "amd64", "cpu": "Test CPU"},
  "results": [
    {"name": "BenchmarkFoo", "package": "repro", "iterations": 100, "metrics": {"ns/op": 1234, "B/op": 64, "allocs/op": 2}},
    {"name": "BenchmarkBar", "package": "repro", "iterations": 50, "metrics": {"ns/op": 99.5}}
  ]
}`

func TestParseReportV1(t *testing.T) {
	rep, err := ParseReport([]byte(v1Doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(rep.Results))
	}
	foo := rep.Results[0]
	if foo.Key() != "repro.BenchmarkFoo" {
		t.Errorf("key = %q", foo.Key())
	}
	if foo.Runs() != 1 {
		t.Errorf("v1 runs = %d, want 1", foo.Runs())
	}
	if got := foo.Sample("ns/op"); len(got) != 1 || got[0] != 1234 {
		t.Errorf("ns/op = %v, want [1234]", got)
	}
	if got := foo.Sample("allocs/op"); len(got) != 1 || got[0] != 2 {
		t.Errorf("allocs/op = %v, want [2]", got)
	}
}

func TestParseReportV2RoundTrip(t *testing.T) {
	rep := &Report{
		Env:   map[string]string{"goos": "linux", "go": "go1.24.0"},
		Count: 3,
		Provenance: &Provenance{
			Commit: "abc123", Date: "2026-08-05T00:00:00Z",
			EnvFingerprint: EnvFingerprint(map[string]string{"goos": "linux", "go": "go1.24.0"}),
			Tool:           "benchjson -count 3",
		},
		Results: []Result{{
			Name:       "BenchmarkFoo",
			Package:    "repro",
			Iterations: []int64{100, 120, 110},
			Samples: map[string][]float64{
				"ns/op":     {1000, 1010, 990},
				"allocs/op": {2, 2, 2},
			},
		}},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion {
		t.Errorf("schema = %d, want %d", got.Schema, SchemaVersion)
	}
	if got.Count != 3 || got.Provenance == nil || got.Provenance.Commit != "abc123" {
		t.Errorf("count/provenance not preserved: %+v", got)
	}
	r := got.Results[0]
	if r.Runs() != 3 {
		t.Fatalf("runs = %d, want 3", r.Runs())
	}
	if s := r.Sample("ns/op"); len(s) != 3 || s[1] != 1010 {
		t.Errorf("ns/op = %v", s)
	}
}

func TestParseReportErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want error
	}{
		{"not json", `{"env": `, ErrMalformed},
		{"schema too new", `{"schema": 99, "results": [{"name":"B","iterations":[1],"samples":{"ns/op":[1]}}]}`, ErrSchema},
		{"no results", `{"schema": 2, "results": []}`, ErrNoResults},
		{"no results v1", `{"env": {}}`, ErrNoResults},
		{"empty name", `{"schema": 2, "results": [{"name":"","iterations":[1],"samples":{"ns/op":[1]}}]}`, ErrMalformed},
		{"no runs", `{"schema": 2, "results": [{"name":"B","iterations":[],"samples":{"ns/op":[1]}}]}`, ErrMalformed},
		{"zero iterations", `{"schema": 2, "results": [{"name":"B","iterations":[0],"samples":{"ns/op":[1]}}]}`, ErrMalformed},
		{"no ns/op", `{"schema": 2, "results": [{"name":"B","iterations":[1],"samples":{"B/op":[1]}}]}`, ErrMalformed},
		{"ragged", `{"schema": 2, "results": [{"name":"B","iterations":[1,2],"samples":{"ns/op":[1,2],"B/op":[1]}}]}`, ErrMalformed},
		{"ns/op shorter than runs", `{"schema": 2, "results": [{"name":"B","iterations":[1,2],"samples":{"ns/op":[1]}}]}`, ErrMalformed},
		{"duplicate", `{"schema": 2, "results": [
			{"name":"B","iterations":[1],"samples":{"ns/op":[1]}},
			{"name":"B","iterations":[1],"samples":{"ns/op":[2]}}]}`, ErrMalformed},
		{"non-finite", `{"schema": 2, "results": [{"name":"B","iterations":[1],"samples":{"ns/op":["NaN"]}}]}`, ErrMalformed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseReport([]byte(tc.doc))
			if !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

const benchText = `goos: linux
goarch: amd64
pkg: repro
cpu: Test CPU @ 2.10GHz
BenchmarkFoo-8   	    1000	      1100 ns/op	      64 B/op	       2 allocs/op
BenchmarkBar/j=1-8   	     500	      2000 ns/op
BenchmarkFoo-8   	    1100	      1050 ns/op	      64 B/op	       2 allocs/op
BenchmarkBar/j=1-8   	     510	      2020 ns/op
BenchmarkFoo-8   	     990	      1150 ns/op	      64 B/op	       2 allocs/op
BenchmarkBar/j=1-8   	     495	      1980 ns/op
PASS
ok  	repro	1.234s
`

func TestParseBenchGroupsRepetitions(t *testing.T) {
	rep, err := ParseBench(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2 (grouped)", len(rep.Results))
	}
	foo := rep.Results[0]
	if foo.Name != "BenchmarkFoo" || foo.Package != "repro" {
		t.Errorf("first result = %q pkg %q", foo.Name, foo.Package)
	}
	if got := foo.Sample("ns/op"); len(got) != 3 || got[0] != 1100 || got[2] != 1150 {
		t.Errorf("foo ns/op = %v", got)
	}
	if got := foo.Sample("B/op"); len(got) != 3 {
		t.Errorf("foo B/op = %v", got)
	}
	bar := rep.Results[1]
	if bar.Name != "BenchmarkBar/j=1" {
		t.Errorf("second result = %q", bar.Name)
	}
	if got := bar.Sample("ns/op"); len(got) != 3 || got[1] != 2020 {
		t.Errorf("bar ns/op = %v", got)
	}
	if rep.Env["cpu"] != "Test CPU @ 2.10GHz" || rep.Env["goos"] != "linux" {
		t.Errorf("env = %v", rep.Env)
	}
	// The grouped text must round-trip through the v2 schema.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 2 || back.Results[0].Runs() != 3 {
		t.Errorf("round-trip lost structure: %+v", back.Results)
	}
}

func TestParseBenchNoBenchmarks(t *testing.T) {
	_, err := ParseBench(strings.NewReader("PASS\nok  \trepro\t0.1s\n"))
	if !errors.Is(err, ErrNoResults) {
		t.Errorf("err = %v, want ErrNoResults", err)
	}
}

func TestEnvFingerprint(t *testing.T) {
	a := map[string]string{"goos": "linux", "cpu": "X"}
	b := map[string]string{"cpu": "X", "goos": "linux"}
	if EnvFingerprint(a) != EnvFingerprint(b) {
		t.Error("fingerprint depends on map order")
	}
	c := map[string]string{"cpu": "Y", "goos": "linux"}
	if EnvFingerprint(a) == EnvFingerprint(c) {
		t.Error("fingerprint ignores values")
	}
	if n := len(EnvFingerprint(a)); n != 12 {
		t.Errorf("fingerprint length = %d, want 12", n)
	}
}

func TestCaptureEnv(t *testing.T) {
	env := CaptureEnv()
	for _, k := range []string{"go", "goos", "goarch", "gomaxprocs", "numcpu"} {
		if env[k] == "" {
			t.Errorf("CaptureEnv missing %q", k)
		}
	}
}
