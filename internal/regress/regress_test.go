package regress

import (
	"bytes"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"testing"

	"repro/internal/ci"
)

// reportFrom builds a v2 report holding one benchmark per name with
// the given ns/op sample columns.
func reportFrom(env map[string]string, benches map[string][]float64) *Report {
	rep := &Report{Schema: SchemaVersion, Env: env}
	names := make([]string, 0, len(benches))
	for name := range benches {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic result order (Compare sorts anyway)
	for _, name := range names {
		samples := benches[name]
		iters := make([]int64, len(samples))
		for i := range iters {
			iters[i] = 1
		}
		rep.Results = append(rep.Results, Result{
			Name:       name,
			Package:    "repro",
			Iterations: iters,
			Samples:    map[string][]float64{"ns/op": samples},
		})
	}
	return rep
}

func draw(rng *rand.Rand, n int, mean, sd float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = mean + sd*rng.NormFloat64()
	}
	return xs
}

var testEnv = map[string]string{"goos": "linux", "cpu": "test"}

// TestNoFalsePositives is the gate's false-positive control (acceptance
// criterion): across 100 seeded trials of baseline and candidate drawn
// from the SAME distribution, no benchmark may be reported REGRESSED
// (or IMPROVED) — the effect-size threshold must absorb the ~5% of
// trials where the rank test alone rejects by chance.
func TestNoFalsePositives(t *testing.T) {
	const trials = 100
	regressed, improved, inconclusive := 0, 0, 0
	for seed := uint64(1); seed <= trials; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed))
		base := reportFrom(testEnv, map[string][]float64{
			"BenchmarkSame": draw(rng, 20, 1000, 20), // 2% CoV, n=20
		})
		cand := reportFrom(testEnv, map[string][]float64{
			"BenchmarkSame": draw(rng, 20, 1000, 20),
		})
		g, err := Compare(base, cand, Options{Threshold: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		switch g.Comparisons[0].Verdict {
		case VerdictRegressed:
			regressed++
			t.Errorf("seed %d: false REGRESSED: %s", seed, g.Comparisons[0].Reason)
		case VerdictImproved:
			improved++
			t.Errorf("seed %d: false IMPROVED: %s", seed, g.Comparisons[0].Reason)
		case VerdictInconclusive:
			inconclusive++
		}
	}
	if regressed != 0 || improved != 0 {
		t.Fatalf("false positives across %d same-distribution trials: %d REGRESSED, %d IMPROVED",
			trials, regressed, improved)
	}
	if inconclusive > trials/10 {
		t.Errorf("%d/%d trials inconclusive; gate should be decisive at this n and noise", inconclusive, trials)
	}
}

// TestDetectsMedianShift is the power side of the acceptance criterion:
// a +20% median shift, sampled at the §4.2.2-planned n for the 5%
// threshold, must be flagged REGRESSED with a rank-test p < 0.05.
func TestDetectsMedianShift(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 42))
	const mean, sd = 1000.0, 200.0 // 20% CoV: genuinely noisy benchmark

	// Plan the sample size from a pilot, exactly as a caller would.
	pilot := draw(rng, 30, mean, sd)
	need, err := ci.RequiredSamples(pilot, 0.95, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if need < 6 {
		t.Fatalf("planned n = %d; test misconfigured (want a noisy enough pilot)", need)
	}
	t.Logf("§4.2.2 planned n = %d for ±5%% at 95%% (pilot CoV %.0f%%)", need, 100*sd/mean)

	base := reportFrom(testEnv, map[string][]float64{
		"BenchmarkShift": draw(rng, need, mean, sd),
	})
	cand := reportFrom(testEnv, map[string][]float64{
		"BenchmarkShift": draw(rng, need, 1.2*mean, sd), // +20% median
	})
	g, err := Compare(base, cand, Options{Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Comparisons[0]
	if c.Verdict != VerdictRegressed {
		t.Fatalf("verdict = %s (%s), want REGRESSED", c.Verdict, c.Reason)
	}
	if !(c.P < 0.05) {
		t.Errorf("p = %g, want < 0.05", c.P)
	}
	if c.Delta < 0.10 {
		t.Errorf("measured delta = %+.1f%%, want near +20%%", 100*c.Delta)
	}
	if c.Underpowered {
		t.Errorf("comparison at planned n flagged underpowered (n=%d/%d, required %d)",
			c.BaselineN+c.BaselineOutliers, c.CandidateN+c.CandidateOutliers, c.RequiredN)
	}
}

func TestDetectsImprovement(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	base := reportFrom(testEnv, map[string][]float64{
		"BenchmarkFast": draw(rng, 40, 1000, 50),
	})
	cand := reportFrom(testEnv, map[string][]float64{
		"BenchmarkFast": draw(rng, 40, 800, 50), // −20%
	})
	g, err := Compare(base, cand, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := g.Comparisons[0].Verdict; v != VerdictImproved {
		t.Fatalf("verdict = %s, want IMPROVED (%s)", v, g.Comparisons[0].Reason)
	}
	if g.Regressed() {
		t.Error("Regressed() = true on an improvement")
	}
}

// A v1 baseline holds a single run per benchmark: the gate must refuse
// to claim anything (INCONCLUSIVE), not silently PASS.
func TestSingleRunBaselineInconclusive(t *testing.T) {
	base, err := ParseReport([]byte(v1Doc))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 3))
	cand := reportFrom(map[string]string{"goos": "linux", "goarch": "amd64", "cpu": "Test CPU"},
		map[string][]float64{"BenchmarkFoo": draw(rng, 10, 1234, 10), "BenchmarkBar": draw(rng, 10, 99.5, 1)})
	g, err := Compare(base, cand, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range g.Comparisons {
		if c.Verdict != VerdictInconclusive {
			t.Errorf("%s: verdict = %s, want INCONCLUSIVE for n=1 baseline", c.Name, c.Verdict)
		}
	}
	if g.Regressed() {
		t.Error("Regressed() on inconclusive-only report")
	}
}

// An underpowered non-rejection must not read as PASS: high noise and
// tiny n cannot resolve the threshold, so the verdict is INCONCLUSIVE.
func TestUnderpoweredInconclusive(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	base := reportFrom(testEnv, map[string][]float64{
		"BenchmarkNoisy": draw(rng, 6, 1000, 300), // 30% CoV, n=6
	})
	cand := reportFrom(testEnv, map[string][]float64{
		"BenchmarkNoisy": draw(rng, 6, 1000, 300),
	})
	g, err := Compare(base, cand, Options{Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Comparisons[0]
	if c.Verdict == VerdictPass {
		t.Fatalf("verdict = PASS at n=6 with 30%% CoV; §4.2.2 requires %d samples (reason: %s)",
			c.RequiredN, c.Reason)
	}
	if c.Verdict == VerdictInconclusive && !c.Underpowered && !strings.Contains(c.Reason, "too few") {
		t.Errorf("inconclusive but not flagged underpowered: %s", c.Reason)
	}
}

// A statistically significant but sub-threshold wobble is PASS: the
// effect-size gate keeps noise-level shifts from failing builds.
func TestNoiseWobblePasses(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	base := reportFrom(testEnv, map[string][]float64{
		"BenchmarkTight": draw(rng, 200, 1000, 5),
	})
	cand := reportFrom(testEnv, map[string][]float64{
		"BenchmarkTight": draw(rng, 200, 1010, 5), // +1%: real but tiny
	})
	g, err := Compare(base, cand, Options{Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Comparisons[0]
	if !(c.P < 0.05) {
		t.Fatalf("test misconfigured: shift not significant (p=%g)", c.P)
	}
	if c.Verdict != VerdictPass {
		t.Fatalf("verdict = %s, want PASS for significant-but-small shift (%s)", c.Verdict, c.Reason)
	}
}

func TestMissingAndAddedBenchmarks(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 17))
	xs := draw(rng, 10, 100, 2)
	base := reportFrom(testEnv, map[string][]float64{"BenchmarkOld": xs, "BenchmarkBoth": xs})
	cand := reportFrom(testEnv, map[string][]float64{"BenchmarkNew": xs, "BenchmarkBoth": xs})
	g, err := Compare(base, cand, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Comparisons) != 1 || g.Comparisons[0].Name != "BenchmarkBoth" {
		t.Errorf("comparisons = %+v, want just BenchmarkBoth", g.Comparisons)
	}
	if len(g.MissingInCandidate) != 1 || !strings.Contains(g.MissingInCandidate[0], "BenchmarkOld") {
		t.Errorf("MissingInCandidate = %v", g.MissingInCandidate)
	}
	if len(g.MissingInBaseline) != 1 || !strings.Contains(g.MissingInBaseline[0], "BenchmarkNew") {
		t.Errorf("MissingInBaseline = %v", g.MissingInBaseline)
	}
}

func TestEnvMismatchNoted(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 19))
	xs := draw(rng, 10, 100, 2)
	base := reportFrom(map[string]string{"cpu": "Xeon"}, map[string][]float64{"BenchmarkX": xs})
	cand := reportFrom(map[string]string{"cpu": "EPYC"}, map[string][]float64{"BenchmarkX": xs})
	g, err := Compare(base, cand, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.EnvMismatch || !strings.Contains(g.EnvNote, "Rule 9") {
		t.Errorf("EnvMismatch = %v, note = %q", g.EnvMismatch, g.EnvNote)
	}
}

func TestOutlierPolicyReported(t *testing.T) {
	xs := []float64{100, 101, 99, 100, 102, 99, 100, 101, 5000} // one wild outlier
	base := reportFrom(testEnv, map[string][]float64{"BenchmarkOut": xs})
	cand := reportFrom(testEnv, map[string][]float64{"BenchmarkOut": xs})
	g, err := Compare(base, cand, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Comparisons[0]
	if c.BaselineOutliers != 1 || c.CandidateOutliers != 1 {
		t.Errorf("outliers = %d/%d, want 1/1", c.BaselineOutliers, c.CandidateOutliers)
	}
	if c.BaselineN != len(xs)-1 {
		t.Errorf("n after policy = %d, want %d", c.BaselineN, len(xs)-1)
	}
	// Disabled policy keeps everything.
	g2, err := Compare(base, cand, Options{TukeyK: -1})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Comparisons[0].BaselineN != len(xs) || g2.Comparisons[0].BaselineOutliers != 0 {
		t.Errorf("TukeyK<0 still filtered: %+v", g2.Comparisons[0])
	}
}

// TestSharedRunnerFalseRegressedCarriesCaveats pins the scenario the
// EXPERIMENTS.md benchgate entry narrates: on a shared CI runner, two
// back-to-back collections of UNCHANGED code measured +13% with p=0.02
// — a statistically sound verdict on a lying environment (Rule 9).
// The gate cannot un-measure that, but the markdown verdict table must
// carry the evidence against itself: the REGRESSED row's caveat cell
// names the environment drift (and the Tukey removals thinning its
// medians), so no reader — human or bot — trusts the ❌ bare.
func TestSharedRunnerFalseRegressedCarriesCaveats(t *testing.T) {
	// Baseline: a quiet collection. Candidate: same code minutes later
	// under a noisy neighbour — ~13% slower, internally tight, plus one
	// wild descheduling outlier the Tukey fence removes.
	base := reportFrom(
		map[string]string{"cpu": "shared-runner", "load": "idle"},
		map[string][]float64{"BenchmarkSuiteRun": {1.60e6, 1.61e6, 1.62e6, 1.63e6, 1.64e6}})
	cand := reportFrom(
		map[string]string{"cpu": "shared-runner", "load": "noisy-neighbor"},
		map[string][]float64{"BenchmarkSuiteRun": {1.82e6, 1.83e6, 1.84e6, 1.85e6, 1.86e6, 9.5e6}})
	g, err := Compare(base, cand, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Comparisons[0]
	if c.Verdict != VerdictRegressed {
		t.Fatalf("fixture must reproduce the false REGRESSED: got %s (%s)", c.Verdict, c.Reason)
	}
	if !g.EnvMismatch {
		t.Fatal("environment fingerprints must differ in this fixture")
	}
	if c.CandidateOutliers != 1 {
		t.Fatalf("candidate outliers = %d, want 1 (the descheduling spike)", c.CandidateOutliers)
	}
	cv := c.Caveats(g.EnvMismatch)
	if len(cv) == 0 {
		t.Fatal("the false-REGRESSED row carries no caveats")
	}
	var md bytes.Buffer
	if err := g.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	if !strings.Contains(out, "| caveats |") {
		t.Error("markdown table has no caveat column")
	}
	row := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "| BenchmarkSuiteRun") {
			row = line
		}
	}
	for _, want := range []string{"REGRESSED", "env drift", "outliers removed 0/1"} {
		if !strings.Contains(row, want) {
			t.Errorf("verdict row missing %q: %s", want, row)
		}
	}
	// A clean row on a clean run stays unannotated: the caveat cell is a
	// statement either way.
	same := reportFrom(testEnv, map[string][]float64{"BenchmarkClean": {100, 101, 99, 100, 102, 101}})
	g2, err := Compare(same, same, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var md2 bytes.Buffer
	if err := g2.WriteMarkdown(&md2); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(md2.String(), "\n") {
		if strings.Contains(line, "BenchmarkClean") && !strings.Contains(line, "| — |") {
			t.Errorf("clean row's caveat cell not —: %s", line)
		}
	}
}

func TestSecondaryDeltas(t *testing.T) {
	mk := func(ns, bop float64) *Report {
		return &Report{
			Schema: SchemaVersion, Env: testEnv,
			Results: []Result{{
				Name: "BenchmarkM", Iterations: []int64{1, 1},
				Samples: map[string][]float64{
					"ns/op": {ns, ns}, "B/op": {bop, bop},
				},
			}},
		}
	}
	g, err := Compare(mk(100, 64), mk(100, 128), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sec := g.Comparisons[0].Secondary
	if len(sec) != 1 || sec[0].Unit != "B/op" {
		t.Fatalf("secondary = %+v", sec)
	}
	if sec[0].Delta != 1.0 {
		t.Errorf("B/op delta = %g, want 1.0 (doubled)", sec[0].Delta)
	}
}

func TestRenderers(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 23))
	base := reportFrom(testEnv, map[string][]float64{
		"BenchmarkA": draw(rng, 20, 1000, 20),
		"BenchmarkB": draw(rng, 20, 500, 10),
	})
	cand := reportFrom(testEnv, map[string][]float64{
		"BenchmarkA": draw(rng, 20, 1300, 20), // regression
		"BenchmarkB": draw(rng, 20, 500, 10),
	})
	g, err := Compare(base, cand, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Regressed() {
		t.Fatal("expected a regression in the fixture")
	}
	var md bytes.Buffer
	if err := g.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"| benchmark |", "BenchmarkA", "REGRESSED", "1 PASS", "Mann–Whitney"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown missing %q:\n%s", want, md.String())
		}
	}
	var txt bytes.Buffer
	if err := g.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "REGRESSED") {
		t.Errorf("text output missing verdict:\n%s", txt.String())
	}
	var js bytes.Buffer
	if err := g.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	round, err := ParseGateJSON(js.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Comparisons) != 2 || !round.Regressed() {
		t.Errorf("JSON round-trip lost verdicts: %+v", round.Comparisons)
	}
}

func TestCompareRejectsInvalidReports(t *testing.T) {
	bad := &Report{Schema: SchemaVersion, Results: nil}
	good := reportFrom(testEnv, map[string][]float64{"BenchmarkX": {1, 2, 3}})
	if _, err := Compare(bad, good, Options{}); err == nil {
		t.Error("Compare accepted an empty baseline")
	}
	if _, err := Compare(good, bad, Options{}); err == nil {
		t.Error("Compare accepted an empty candidate")
	}
}

func TestVerdictDeterminism(t *testing.T) {
	rng := rand.New(rand.NewPCG(29, 29))
	benches := map[string][]float64{}
	for _, n := range []string{"BenchmarkZ", "BenchmarkA", "BenchmarkM"} {
		benches[n] = draw(rng, 12, 100, 3)
	}
	base := reportFrom(testEnv, benches)
	cand := reportFrom(testEnv, benches)
	var first string
	for i := 0; i < 5; i++ {
		g, err := Compare(base, cand, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := g.WriteMarkdown(&buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf.String()
		} else if buf.String() != first {
			t.Fatal("gate output varies across identical runs")
		}
	}
	if !strings.Contains(first, "BenchmarkA") {
		t.Error("missing benchmark row")
	}
	// Identical data: delta is exactly 0 and p is 1 for every row.
	g, _ := Compare(base, cand, Options{})
	for _, c := range g.Comparisons {
		if c.Delta != 0 || !math.IsNaN(c.P) && c.P < 0.99 {
			t.Errorf("%s: identical data gave delta=%g p=%g", c.Name, c.Delta, c.P)
		}
	}
}
