package stats

import (
	"fmt"
	"math"
)

// This file adds the robust location/spread estimators that complement
// the paper's percentile recommendations: trimmed and winsorized means
// (outlier-resistant alternatives to Tukey removal that keep sample
// size), the median absolute deviation (a robust spread to pair with the
// median the way the standard deviation pairs with the mean), and the
// weighted mean for unequally weighted costs (§3.1.1 notes the standard
// case weights all measurements equally).

// TrimmedMean returns the arithmetic mean after removing the `trim`
// fraction (0 <= trim < 0.5) from each tail, e.g. trim = 0.1 drops the
// lowest and highest 10%.
func TrimmedMean(xs []float64, trim float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), ErrEmpty
	}
	if trim < 0 || trim >= 0.5 {
		return math.NaN(), fmt.Errorf("stats: trim fraction %g outside [0, 0.5)", trim)
	}
	s := Sorted(xs)
	k := int(trim * float64(len(s)))
	kept := s[k : len(s)-k]
	if len(kept) == 0 {
		return math.NaN(), ErrEmpty
	}
	return Mean(kept), nil
}

// WinsorizedMean replaces the `trim` fraction in each tail with the
// nearest retained value before averaging — less variance reduction than
// trimming but no discarded observations.
func WinsorizedMean(xs []float64, trim float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), ErrEmpty
	}
	if trim < 0 || trim >= 0.5 {
		return math.NaN(), fmt.Errorf("stats: trim fraction %g outside [0, 0.5)", trim)
	}
	s := Sorted(xs)
	k := int(trim * float64(len(s)))
	if k > 0 {
		lo := s[k]
		hi := s[len(s)-1-k]
		for i := 0; i < k; i++ {
			s[i] = lo
			s[len(s)-1-i] = hi
		}
	}
	return Mean(s), nil
}

// MAD returns the median absolute deviation about the median, scaled by
// 1.4826 so it estimates the standard deviation for normal data — the
// robust spread companion to the median.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return 1.4826 * Median(dev)
}

// WeightedMean returns Σwᵢxᵢ / Σwᵢ. Weights must be non-negative with a
// positive sum.
func WeightedMean(xs, ws []float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), ErrEmpty
	}
	if len(xs) != len(ws) {
		return math.NaN(), fmt.Errorf("stats: %d values vs %d weights", len(xs), len(ws))
	}
	var sum, wsum float64
	for i, x := range xs {
		w := ws[i]
		if w < 0 || math.IsNaN(w) {
			return math.NaN(), fmt.Errorf("stats: negative weight %g at %d", w, i)
		}
		sum += w * x
		wsum += w
	}
	if wsum == 0 {
		return math.NaN(), fmt.Errorf("stats: zero total weight")
	}
	return sum / wsum, nil
}

// RobustSummary pairs the robust location/spread estimators for
// reporting alongside (or instead of) the classical ones when the data
// is heavy-tailed.
type RobustSummaryStats struct {
	Median        float64
	MAD           float64
	TrimmedMean10 float64 // 10% trimmed
	Winsorized10  float64 // 10% winsorized
	RobustCoV     float64 // MAD/median, the robust stability measure
}

// RobustSummarize computes the robust summary (errors only on empty
// input).
func RobustSummarize(xs []float64) (RobustSummaryStats, error) {
	if len(xs) == 0 {
		return RobustSummaryStats{}, ErrEmpty
	}
	var out RobustSummaryStats
	out.Median = Median(xs)
	out.MAD = MAD(xs)
	tm, err := TrimmedMean(xs, 0.1)
	if err != nil {
		return out, err
	}
	out.TrimmedMean10 = tm
	wm, err := WinsorizedMean(xs, 0.1)
	if err != nil {
		return out, err
	}
	out.Winsorized10 = wm
	if out.Median != 0 {
		out.RobustCoV = out.MAD / math.Abs(out.Median)
	} else {
		out.RobustCoV = math.NaN()
	}
	return out, nil
}
