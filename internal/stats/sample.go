package stats

// Sample is the allocation-lean fast path through this package: it sorts
// the data exactly once, caches the sorted view, and accumulates the
// Welford moments in a single pass, so every downstream statistic — the
// descriptive Summary, quantiles, the IQR, Tukey fences, rank-based
// confidence intervals (internal/ci), and the normality diagnostics
// (internal/htest) — reuses the same ordered view instead of re-sorting
// per call. A full analysis (internal/bench) previously sorted the same
// sample 4–6 times; through Sample it sorts once.
//
// A Sample is immutable after construction and therefore safe for
// concurrent use; the caller must not mutate the underlying data while
// the Sample is alive. The zero Sample is empty; use NewSample (or
// (*Sample).Reset in a loop) to populate one.
type Sample struct {
	data   []float64 // caller's data in observation order (not copied)
	sorted []float64 // ascending copy, built once at construction
	w      Welford   // single-pass moments over data
}

// NewSample wraps xs, sorting a copy once and accumulating the moments.
// The slice itself is retained (not copied) so Data preserves observation
// order for order-sensitive analyses.
func NewSample(xs []float64) *Sample {
	s := new(Sample)
	s.Reset(xs)
	return s
}

// Reset re-points the Sample at xs, re-sorting and re-accumulating. It
// reuses the sorted buffer when capacities allow, making it the
// allocation-free way to analyze many samples in a loop. The usual
// immutability rule applies from the moment Reset returns.
func (s *Sample) Reset(xs []float64) {
	s.data = xs
	if cap(s.sorted) >= len(xs) {
		s.sorted = s.sorted[:len(xs)]
	} else {
		s.sorted = make([]float64, len(xs))
	}
	copy(s.sorted, xs)
	sortFloat64s(s.sorted)
	s.w = Welford{}
	for _, x := range xs {
		s.w.Add(x)
	}
}

// Data returns the observations in their original (time) order. Callers
// must treat it as read-only.
func (s *Sample) Data() []float64 { return s.data }

// Sorted returns the cached ascending view. Callers must treat it as
// read-only; mutating it corrupts every subsequent statistic.
func (s *Sample) Sorted() []float64 { return s.sorted }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.data) }

// Mean returns the arithmetic mean from the cached Welford accumulator
// (NaN when empty).
func (s *Sample) Mean() float64 { return s.w.Mean() }

// Variance returns the unbiased sample variance (NaN for n < 2).
func (s *Sample) Variance() float64 { return s.w.Variance() }

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return s.w.StdDev() }

// CoV returns the coefficient of variation s/x̄.
func (s *Sample) CoV() float64 { return s.w.CoV() }

// Min returns the smallest observation (NaN when empty).
func (s *Sample) Min() float64 { return s.w.Min() }

// Max returns the largest observation (NaN when empty).
func (s *Sample) Max() float64 { return s.w.Max() }

// Quantile returns the type-7 p-quantile from the cached sorted view.
func (s *Sample) Quantile(p float64) float64 { return Quantile(s.sorted, p) }

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// IQR returns the interquartile range x(75%) − x(25%).
func (s *Sample) IQR() float64 { return s.Quantile(0.75) - s.Quantile(0.25) }

// Skewness returns the adjusted Fisher–Pearson sample skewness, reusing
// the cached mean (NaN for n < 3). The computation is the same
// skewnessAbout body the slice-based stats.Skewness uses.
func (s *Sample) Skewness() float64 {
	return skewnessAbout(s.data, s.Mean())
}

// Summarize bundles the full descriptive summary from the cached views:
// one sort and two O(n) passes total, however many fields are read.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:        s.N(),
		Mean:     s.Mean(),
		StdDev:   s.StdDev(),
		CoV:      s.CoV(),
		Min:      s.Min(),
		Q1:       s.Quantile(0.25),
		Median:   s.Quantile(0.5),
		Q3:       s.Quantile(0.75),
		P95:      s.Quantile(0.95),
		P99:      s.Quantile(0.99),
		Max:      s.Max(),
		Skewness: s.Skewness(),
	}
}

// TukeyFences returns the outlier fences [q1 − k·IQR, q3 + k·IQR].
func (s *Sample) TukeyFences(k float64) (lo, hi float64) {
	q1 := s.Quantile(0.25)
	q3 := s.Quantile(0.75)
	iqr := q3 - q1
	return q1 - k*iqr, q3 + k*iqr
}

// TukeyFilter partitions the observations (in original order) into
// values inside the fences and the removed outliers.
func (s *Sample) TukeyFilter(k float64) (kept, outliers []float64) {
	if s.N() == 0 {
		return nil, nil
	}
	lo, hi := s.TukeyFences(k)
	kept = make([]float64, 0, s.N())
	for _, x := range s.data {
		if x < lo || x > hi {
			outliers = append(outliers, x)
		} else {
			kept = append(kept, x)
		}
	}
	return kept, outliers
}
