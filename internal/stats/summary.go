package stats

import (
	"fmt"
	"math"

	"repro/internal/dist"
)

// Kind classifies a measured metric per the paper's taxonomy (§3.1.1):
// costs have atomic units and linear influence (seconds, joules, flop);
// rates are cost quotients (flop/s); ratios are dimensionless
// normalizations (speedup, fraction of peak).
type Kind int

const (
	// Cost is a linear metric with an atomic unit (time, energy, flop).
	Cost Kind = iota
	// Rate is a quotient of costs whose denominator carries the primary
	// semantic meaning (flop/s, B/s).
	Rate
	// Ratio is a dimensionless normalization (speedup, % of peak).
	Ratio
)

// String returns the metric-kind name.
func (k Kind) String() string {
	switch k {
	case Cost:
		return "cost"
	case Rate:
		return "rate"
	case Ratio:
		return "ratio"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// SummarizeMean returns the statistically correct central summary for the
// metric kind, implementing Rules 3 and 4:
//
//   - Cost  → arithmetic mean.
//   - Rate  → harmonic mean.
//   - Ratio → geometric mean, together with a non-nil error value
//     ErrRatioSummary reminding the caller that summarizing ratios
//     is discouraged and the underlying costs should be averaged
//     before normalization where available.
func SummarizeMean(kind Kind, xs []float64) (float64, error) {
	switch kind {
	case Cost:
		if len(xs) == 0 {
			return math.NaN(), ErrEmpty
		}
		return Mean(xs), nil
	case Rate:
		return HarmonicMean(xs)
	case Ratio:
		g, err := GeometricMean(xs)
		if err != nil {
			return g, err
		}
		return g, ErrRatioSummary
	}
	return math.NaN(), fmt.Errorf("stats: unknown metric kind %d", int(kind))
}

// ErrRatioSummary flags a geometric-mean summary of ratios; per Rule 4 the
// costs or rates underlying the ratios should be summarized instead. The
// returned value is still usable, the error is advisory.
var ErrRatioSummary = fmt.Errorf("stats: summarizing ratios is discouraged (Rule 4); average the underlying costs or rates instead")

// RateFromCosts summarizes a rate correctly from its raw numerators and
// denominators, e.g. flop counts and execution times: it averages both
// costs first and then forms the quotient, the approach the paper
// recommends over averaging per-run rates (§3.1.1, HPL example).
func RateFromCosts(numerators, denominators []float64) (float64, error) {
	if len(numerators) == 0 || len(denominators) == 0 {
		return math.NaN(), ErrEmpty
	}
	if len(numerators) != len(denominators) {
		return math.NaN(), fmt.Errorf("stats: %d numerators vs %d denominators",
			len(numerators), len(denominators))
	}
	d := Mean(denominators)
	if d == 0 {
		return math.NaN(), fmt.Errorf("stats: zero mean denominator")
	}
	return Mean(numerators) / d, nil
}

// Summary collects the descriptive statistics the paper asks experimenters
// to report for a nondeterministic sample: central tendency, spread,
// robust rank statistics, and extremes.
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64
	CoV      float64
	Min      float64
	Q1       float64 // 25th percentile
	Median   float64
	Q3       float64 // 75th percentile
	P95      float64 // 95th percentile
	P99      float64 // 99th percentile
	Max      float64
	Skewness float64
}

// Summarize computes a Summary of xs through the Sample fast path: one
// sort, one Welford pass, one skewness pass.
func Summarize(xs []float64) Summary {
	var s Sample
	s.Reset(xs)
	return s.Summarize()
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf(
		"n=%d mean=%.6g sd=%.3g cov=%.3g min=%.6g q1=%.6g med=%.6g q3=%.6g p95=%.6g p99=%.6g max=%.6g",
		s.N, s.Mean, s.StdDev, s.CoV, s.Min, s.Q1, s.Median, s.Q3, s.P95, s.P99, s.Max)
}

// TukeyFences returns the outlier fences
// [q1 − k·IQR, q3 + k·IQR] for the sample, with the conventional k = 1.5
// (paper §3.1.3, "On Removing Outliers"). Larger k is more conservative.
func TukeyFences(xs []float64, k float64) (lo, hi float64) {
	s := Sorted(xs)
	q1 := Quantile(s, 0.25)
	q3 := Quantile(s, 0.75)
	iqr := q3 - q1
	return q1 - k*iqr, q3 + k*iqr
}

// TukeyFencesSorted is TukeyFences for an already-sorted sample (e.g. a
// Sample's cached view), skipping the re-sort.
func TukeyFencesSorted(sorted []float64, k float64) (lo, hi float64) {
	q1 := Quantile(sorted, 0.25)
	q3 := Quantile(sorted, 0.75)
	iqr := q3 - q1
	return q1 - k*iqr, q3 + k*iqr
}

// TukeyFilter partitions xs into values inside the Tukey fences and the
// removed outliers, preserving input order. Per the paper, the number of
// removed outliers must be reported for each experiment; callers get it
// as len(outliers).
func TukeyFilter(xs []float64, k float64) (kept, outliers []float64) {
	if len(xs) == 0 {
		return nil, nil
	}
	lo, hi := TukeyFences(xs, k)
	kept = make([]float64, 0, len(xs))
	for _, x := range xs {
		if x < lo || x > hi {
			outliers = append(outliers, x)
		} else {
			kept = append(kept, x)
		}
	}
	return kept, outliers
}

// LogTransform returns ln(x) for every observation; it normalizes
// right-skewed log-normal measurement data (paper §3.1.2,
// "Log-normalization"). All values must be strictly positive.
func LogTransform(xs []float64) ([]float64, error) {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return nil, ErrNonPositive
		}
		out[i] = math.Log(x)
	}
	return out, nil
}

// BlockNormalize averages consecutive blocks of k observations, the CLT
// normalization strategy of §3.1.2 ("Norm K=100", "Norm K=1000" in Fig 2).
// A trailing partial block is dropped so every output value averages
// exactly k inputs. It returns ErrEmpty when fewer than k observations
// are available.
func BlockNormalize(xs []float64, k int) ([]float64, error) {
	if k <= 0 {
		return nil, fmt.Errorf("stats: block size %d must be positive", k)
	}
	n := len(xs) / k
	if n == 0 {
		return nil, ErrEmpty
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = Mean(xs[i*k : (i+1)*k])
	}
	return out, nil
}

// QQPoints pairs each sorted observation with the standard normal
// quantile of its plotting position (i−0.5)/n, producing the data behind
// a normal Q-Q plot (paper Fig 2, bottom row). A near-linear relation
// indicates normality.
type QQPoint struct {
	Theoretical float64 // standard normal quantile
	Sample      float64 // observed order statistic
}

// QQPoints computes normal Q-Q plot coordinates for xs.
func QQPoints(xs []float64) []QQPoint {
	return QQPointsSorted(Sorted(xs))
}

// QQPointsSorted is QQPoints for an already-sorted sample (e.g. a
// Sample's cached view), skipping the re-sort.
func QQPointsSorted(sorted []float64) []QQPoint {
	n := len(sorted)
	pts := make([]QQPoint, n)
	for i, v := range sorted {
		p := (float64(i) + 0.5) / float64(n)
		pts[i] = QQPoint{Theoretical: dist.NormalQuantile(p), Sample: v}
	}
	return pts
}

// QQCorrelation returns the Pearson correlation of the Q-Q points, a
// simple scalar straightness diagnostic (1 means perfectly normal order
// statistics).
func QQCorrelation(xs []float64) float64 {
	return QQCorrelationSorted(Sorted(xs))
}

// QQCorrelationSorted is QQCorrelation over a pre-sorted sample.
func QQCorrelationSorted(sorted []float64) float64 {
	pts := QQPointsSorted(sorted)
	if len(pts) < 3 {
		return math.NaN()
	}
	tx := make([]float64, len(pts))
	ty := make([]float64, len(pts))
	for i, p := range pts {
		tx[i] = p.Theoretical
		ty[i] = p.Sample
	}
	return Correlation(tx, ty)
}

// Correlation returns the Pearson product-moment correlation of two
// equal-length samples (NaN if lengths differ or n < 2 or a sample is
// constant).
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}
