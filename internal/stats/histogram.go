package stats

import "math"

// LogHistogram is an HDR-style log-bucketed latency histogram: values are
// binned by binary exponent with histSubBuckets linear sub-buckets per
// octave, giving a bounded relative error of 1/histSubBuckets (≈1.6%)
// across the whole range. It complements QuantileSketch: the sketch
// tracks a fixed set of quantiles in O(1) memory, while the histogram
// supports arbitrary-rank queries after the fact — which is what the
// nonparametric rank-based confidence intervals of internal/ci need for
// tail percentiles (p99, p999) of service workloads.
//
// The geometry is fixed for the whole package (histMinExp..histMaxExp
// octaves), so any two Histograms are mergeable by element-wise count
// addition; there is no configuration to drift between a worker's
// histogram and the merge target. Record performs no heap allocations
// (the counts live in a fixed-size array), so the serve hot loop can
// record per-request latencies at memory speed. The zero value is ready
// to use.
type LogHistogram struct {
	counts [histBuckets]uint64
	total  uint64
	sum    float64
	min    float64 // exact extremes of recorded values
	max    float64
}

const (
	// histSubBits sets the linear sub-bucket resolution per octave:
	// 2^6 = 64 sub-buckets bound the relative quantization error by
	// 1/64 ≈ 1.6%, comfortably inside the sampling noise of any tail
	// estimate the harness reports.
	histSubBits    = 6
	histSubBuckets = 1 << histSubBits
	// histMinExp..histMaxExp are the frexp exponents covered exactly:
	// 2^(histMinExp-1) ≈ 0.47 ns up to 2^histMaxExp = 1024 s when values
	// are seconds. Values outside clamp to the first/last bucket (their
	// exact magnitude survives in Min/Max).
	histMinExp  = -31
	histMaxExp  = 10
	histOctaves = histMaxExp - histMinExp + 1
	histBuckets = histOctaves * histSubBuckets
)

// histIndex maps a positive value to its bucket.
func histIndex(v float64) int {
	if math.IsInf(v, 1) {
		return histBuckets - 1
	}
	f, e := math.Frexp(v) // v = f·2^e, f ∈ [0.5, 1)
	if e < histMinExp {
		return 0
	}
	if e > histMaxExp {
		return histBuckets - 1
	}
	sub := int((2*f - 1) * histSubBuckets) // linear position within the octave
	if sub >= histSubBuckets {
		sub = histSubBuckets - 1
	}
	return (e-histMinExp)*histSubBuckets + sub
}

// histValue returns the representative (midpoint) value of bucket idx.
func histValue(idx int) float64 {
	e := idx/histSubBuckets + histMinExp
	sub := idx % histSubBuckets
	return math.Ldexp(1+(float64(sub)+0.5)/histSubBuckets, e-1)
}

// Record adds one observation. NaN is ignored; zero and negative values
// clamp into the first bucket (latencies are nonnegative by
// construction, but a histogram must not corrupt itself on bad input).
// It never allocates.
func (h *LogHistogram) Record(v float64) {
	if math.IsNaN(v) {
		return
	}
	idx := 0
	if v > 0 {
		idx = histIndex(v)
	}
	h.counts[idx]++
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if h.total == 0 || v > h.max {
		h.max = v
	}
	h.total++
	h.sum += v
}

// Count returns the number of recorded observations.
func (h *LogHistogram) Count() uint64 { return h.total }

// Sum returns the sum of recorded observations.
func (h *LogHistogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean, or NaN if empty.
func (h *LogHistogram) Mean() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest recorded value (exact), or NaN if empty.
func (h *LogHistogram) Min() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	return h.min
}

// Max returns the largest recorded value (exact), or NaN if empty.
func (h *LogHistogram) Max() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	return h.max
}

// Reset returns the histogram to its empty state.
func (h *LogHistogram) Reset() {
	*h = LogHistogram{}
}

// Merge adds o's counts into h. Both histograms share the package-wide
// geometry, so the merge is exact: quantiles of the merged histogram
// equal quantiles of recording every observation into one histogram.
func (h *LogHistogram) Merge(o *LogHistogram) {
	if o == nil || o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.total == 0 || o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
}

// ValueAtRank returns the representative value of the observation at
// 1-based rank r in ascending order (rank 1 = smallest). Ranks clamp to
// [1, Count]; an empty histogram returns NaN. The first- and last-rank
// values are reported exactly (the tracked min/max); interior ranks
// carry the bucket quantization error of ≤1/64.
func (h *LogHistogram) ValueAtRank(r uint64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if r < 1 {
		r = 1
	}
	if r > h.total {
		r = h.total
	}
	if r == 1 {
		return h.min
	}
	if r == h.total {
		return h.max
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= r {
			return histValue(i)
		}
	}
	return h.max
}

// Quantile returns the nearest-rank p-quantile estimate: the value at
// rank ⌈p·n⌉. p ≤ 0 maps to the exact minimum, p ≥ 1 to the exact
// maximum. Unlike stats.Quantile over raw samples there is no
// interpolation between order statistics — ranks resolve to bucket
// midpoints with relative error ≤1/64.
func (h *LogHistogram) Quantile(p float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return h.min
	}
	if p >= 1 {
		return h.max
	}
	r := uint64(math.Ceil(p * float64(h.total)))
	if r < 1 {
		r = 1
	}
	return h.ValueAtRank(r)
}
