// Package stats implements the descriptive statistics and summarization
// techniques prescribed by Hoefler & Belli (SC'15) for reporting parallel
// performance results: the correct means for costs, rates, and ratios
// (Rules 3–4), robust rank statistics (median, quantiles, IQR), spread
// measures (sample standard deviation, coefficient of variation), online
// (Welford) accumulation, Tukey outlier detection, log- and CLT-block
// normalization, and density estimation for plotting.
package stats

import (
	"errors"
	"math"
	"slices"
	"sort"
)

// ErrEmpty is returned when a statistic is requested on an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// ErrNonPositive is returned by summaries that are only defined for
// strictly positive observations (geometric and harmonic means).
var ErrNonPositive = errors.New("stats: sample contains non-positive values")

// Mean returns the arithmetic mean of xs. Per Rule 3 it is the correct
// summary for costs (times, energy, flop counts), where the total is the
// quantity of interest. It returns NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// HarmonicMean returns the harmonic mean of xs. Per Rule 3 it is the
// correct summary for rates (e.g. flop/s) when the denominator carries the
// primary semantic meaning. All values must be strictly positive.
func HarmonicMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN(), ErrNonPositive
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum, nil
}

// GeometricMean returns the geometric mean of xs, computed in log space
// for numerical stability. Per Rule 4 it should only be used for ratios
// when the underlying costs or rates are unavailable. All values must be
// strictly positive.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN(), ErrNonPositive
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Variance returns the unbiased sample variance (n-1 denominator) of xs,
// or NaN when fewer than two observations are given.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation, the square root of the
// unbiased sample variance (paper §3.1.2).
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CoV returns the coefficient of variation s/x̄, the dimensionless
// stability measure recommended for long-term system consistency studies
// (paper §3.1.2, refs [34, 52]).
func CoV(xs []float64) float64 {
	return StdDev(xs) / Mean(xs)
}

// Min returns the smallest value in xs (NaN for an empty sample).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs (NaN for an empty sample).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sorted returns a sorted copy of xs, leaving the input untouched.
func Sorted(xs []float64) []float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sortFloat64s(s)
	return s
}

// sortFloat64s sorts ascending in place with sort.Float64s's NaN-first
// contract, taking the faster generic sort when no NaN is present (the
// common case for measurement data; the scan is O(n) against the sort's
// O(n log n)).
func sortFloat64s(xs []float64) {
	for _, x := range xs {
		if math.IsNaN(x) {
			sort.Float64s(xs)
			return
		}
	}
	slices.Sort(xs)
}

// Quantile returns the p-quantile (0 <= p <= 1) of the *sorted* slice
// using the type-7 (linear interpolation) definition that R and NumPy
// default to. The caller is responsible for sorting; use QuantileOf for
// unsorted data.
func Quantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	switch {
	case n == 0 || math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case n == 1:
		return sorted[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// QuantileOf sorts a copy of xs and returns its p-quantile.
func QuantileOf(xs []float64, p float64) float64 {
	return Quantile(Sorted(xs), p)
}

// Median returns the 50th percentile of xs (paper §3.1.3).
func Median(xs []float64) float64 {
	return QuantileOf(xs, 0.5)
}

// IQR returns the interquartile range x(75%) − x(25%) of xs.
func IQR(xs []float64) float64 {
	s := Sorted(xs)
	return Quantile(s, 0.75) - Quantile(s, 0.25)
}

// Skewness returns the adjusted Fisher–Pearson sample skewness of xs
// (g1 with the small-sample correction), NaN for n < 3.
func Skewness(xs []float64) float64 {
	return skewnessAbout(xs, Mean(xs))
}

// skewnessAbout is the one shared skewness body: the slice path above
// and the cached-mean Sample path both route through it, so the two
// implementations cannot drift.
func skewnessAbout(xs []float64, m float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return math.NaN()
	}
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	g1 := m3 / math.Pow(m2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2)
}

// ExcessKurtosis returns the sample excess kurtosis (g2 = m4/m2² − 3)
// of xs, NaN for n < 4.
func ExcessKurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return math.NaN()
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	m2 /= n
	m4 /= n
	return m4/(m2*m2) - 3
}

// Welford accumulates mean and variance online in a single pass using
// Welford's numerically stable recurrence — the incremental scheme the
// paper describes for computing the sample deviation without storing all
// observations (§3.1.2). The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations added so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running arithmetic mean (NaN before any Add).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the running unbiased sample variance (NaN for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// CoV returns the running coefficient of variation.
func (w *Welford) CoV() float64 { return w.StdDev() / w.Mean() }

// Min returns the smallest observation seen (NaN before any Add).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest observation seen (NaN before any Add).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// Merge combines another accumulator into w (parallel reduction of
// partial statistics, Chan et al. update).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n1, n2 := float64(w.n), float64(o.n)
	delta := o.mean - w.mean
	total := n1 + n2
	w.mean += delta * n2 / total
	w.m2 += o.m2 + delta*delta*n1*n2/total
	w.n += o.n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}
