package stats

import (
	"math"

	"repro/internal/dist"
)

// HistogramBin is one bin of a histogram: the half-open interval
// [Lo, Hi) and the number of observations that fell into it.
type HistogramBin struct {
	Lo, Hi float64
	Count  int
}

// Histogram bins xs into nbins equal-width bins spanning [min, max].
// The final bin is closed on the right so the maximum is counted.
// It returns nil for an empty sample or nbins < 1.
func Histogram(xs []float64, nbins int) []HistogramBin {
	if len(xs) == 0 || nbins < 1 {
		return nil
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi {
		// Degenerate sample: a single bin holding everything.
		return []HistogramBin{{Lo: lo, Hi: hi, Count: len(xs)}}
	}
	width := (hi - lo) / float64(nbins)
	bins := make([]HistogramBin, nbins)
	for i := range bins {
		bins[i].Lo = lo + float64(i)*width
		bins[i].Hi = lo + float64(i+1)*width
	}
	bins[nbins-1].Hi = hi
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx >= nbins {
			idx = nbins - 1
		}
		bins[idx].Count++
	}
	return bins
}

// SturgesBins returns the Sturges rule bin count ⌈log₂ n⌉ + 1 for a
// sample of size n (minimum 1).
func SturgesBins(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n)))) + 1
}

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth for
// Gaussian kernel density estimation,
// 0.9·min(s, IQR/1.34)·n^(−1/5), falling back to s when the IQR is zero.
func SilvermanBandwidth(xs []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return math.NaN()
	}
	s := StdDev(xs)
	iqr := IQR(xs)
	a := s
	if iqr > 0 && iqr/1.34 < a {
		a = iqr / 1.34
	}
	if a == 0 {
		return math.NaN()
	}
	return 0.9 * a * math.Pow(n, -0.2)
}

// DensityPoint is one evaluation of a kernel density estimate.
type DensityPoint struct {
	X       float64
	Density float64
}

// KDE evaluates a Gaussian kernel density estimate of xs at npoints
// evenly spaced locations spanning the data range extended by three
// bandwidths on each side (matching the density curves in the paper's
// Figures 1–3). A non-positive bandwidth selects Silverman's rule.
func KDE(xs []float64, bandwidth float64, npoints int) []DensityPoint {
	if len(xs) == 0 || npoints < 2 {
		return nil
	}
	h := bandwidth
	if h <= 0 || math.IsNaN(h) {
		h = SilvermanBandwidth(xs)
	}
	if math.IsNaN(h) || h <= 0 {
		return nil
	}
	lo := Min(xs) - 3*h
	hi := Max(xs) + 3*h
	step := (hi - lo) / float64(npoints-1)
	out := make([]DensityPoint, npoints)
	nh := float64(len(xs)) * h
	for i := 0; i < npoints; i++ {
		x := lo + float64(i)*step
		sum := 0.0
		for _, xi := range xs {
			sum += dist.NormalPDF((x - xi) / h)
		}
		out[i] = DensityPoint{X: x, Density: sum / nh}
	}
	return out
}
