package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func closeTo(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) || math.Abs(got-want) > tol {
		t.Errorf("%s = %.12g, want %.12g", name, got, want)
	}
}

func TestMeanBasics(t *testing.T) {
	closeTo(t, "Mean", Mean([]float64{1, 2, 3, 4}), 2.5, 1e-15)
	closeTo(t, "Mean single", Mean([]float64{7}), 7, 1e-15)
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

// TestPaperHPLMeansExample reproduces the §3.1.1 worked example exactly:
// three HPL runs of 100 Gflop at (10, 100, 40) s.
func TestPaperHPLMeansExample(t *testing.T) {
	times := []float64{10, 100, 40}
	const work = 100.0 // Gflop

	// Arithmetic mean of times is 50 s → 2 Gflop/s aggregate rate.
	closeTo(t, "mean time", Mean(times), 50, 1e-12)
	rateFromMeanTime := work / Mean(times)
	closeTo(t, "rate from mean time", rateFromMeanTime, 2, 1e-12)

	// Per-run rates (10, 1, 2.5) Gflop/s.
	rates := make([]float64, len(times))
	for i, s := range times {
		rates[i] = work / s
	}
	// Arithmetic mean of the rates is the *wrong* 4.5 Gflop/s.
	closeTo(t, "arith mean of rates", Mean(rates), 4.5, 1e-12)
	// Harmonic mean of the rates recovers the correct 2 Gflop/s.
	h, err := HarmonicMean(rates)
	if err != nil {
		t.Fatal(err)
	}
	closeTo(t, "harmonic mean of rates", h, 2, 1e-12)

	// Relative rates against 10 Gflop/s peak are (1, 0.1, 0.25);
	// their geometric mean is ~0.29 (the paper's "incorrect" 2.9 Gflop/s).
	ratios := []float64{1, 0.1, 0.25}
	g, err := GeometricMean(ratios)
	if err != nil {
		t.Fatal(err)
	}
	closeTo(t, "geometric mean of ratios", g, math.Cbrt(0.025), 1e-12)
	if math.Abs(g-0.29) > 0.005 {
		t.Errorf("geometric mean %g, paper reports ≈0.29", g)
	}

	// RateFromCosts gives the correct answer directly from raw costs.
	flops := []float64{100, 100, 100}
	r, err := RateFromCosts(flops, times)
	if err != nil {
		t.Fatal(err)
	}
	closeTo(t, "RateFromCosts", r, 2, 1e-12)
}

func TestSummarizeMeanByKind(t *testing.T) {
	xs := []float64{1, 2, 4}
	c, err := SummarizeMean(Cost, xs)
	if err != nil {
		t.Fatal(err)
	}
	closeTo(t, "cost mean", c, 7.0/3.0, 1e-12)

	r, err := SummarizeMean(Rate, xs)
	if err != nil {
		t.Fatal(err)
	}
	closeTo(t, "rate mean", r, 3.0/(1+0.5+0.25), 1e-12)

	g, err := SummarizeMean(Ratio, xs)
	if err != ErrRatioSummary {
		t.Errorf("ratio summary should return the advisory ErrRatioSummary, got %v", err)
	}
	closeTo(t, "ratio mean", g, 2, 1e-12)
}

// TestMeanInequality checks HM <= GM <= AM on random positive samples.
func TestMeanInequality(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	f := func(seed uint64) bool {
		n := int(seed%20) + 2
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*100 + 0.001
		}
		am := Mean(xs)
		gm, err1 := GeometricMean(xs)
		hm, err2 := HarmonicMean(xs)
		if err1 != nil || err2 != nil {
			return false
		}
		const slack = 1e-9
		return hm <= gm+slack && gm <= am+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNonPositiveRejected(t *testing.T) {
	if _, err := HarmonicMean([]float64{1, 0}); err != ErrNonPositive {
		t.Errorf("HarmonicMean with zero: err = %v, want ErrNonPositive", err)
	}
	if _, err := GeometricMean([]float64{1, -2}); err != ErrNonPositive {
		t.Errorf("GeometricMean with negative: err = %v, want ErrNonPositive", err)
	}
	if _, err := HarmonicMean(nil); err != ErrEmpty {
		t.Errorf("HarmonicMean(nil): err = %v, want ErrEmpty", err)
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Population variance is 4; sample variance is 32/7.
	closeTo(t, "Variance", Variance(xs), 32.0/7.0, 1e-12)
	closeTo(t, "StdDev", StdDev(xs), math.Sqrt(32.0/7.0), 1e-12)
	closeTo(t, "CoV", CoV(xs), math.Sqrt(32.0/7.0)/5.0, 1e-12)
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of n=1 should be NaN")
	}
}

func TestQuantileType7(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	closeTo(t, "q0", Quantile(s, 0), 1, 1e-15)
	closeTo(t, "q1", Quantile(s, 1), 4, 1e-15)
	closeTo(t, "median", Quantile(s, 0.5), 2.5, 1e-15)
	closeTo(t, "q0.25", Quantile(s, 0.25), 1.75, 1e-15) // R type-7
	closeTo(t, "q0.75", Quantile(s, 0.75), 3.25, 1e-15)

	odd := []float64{10, 20, 30}
	closeTo(t, "median odd", Quantile(odd, 0.5), 20, 1e-15)
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
	if !math.IsNaN(Quantile(s, -0.1)) || !math.IsNaN(Quantile(s, 1.1)) {
		t.Error("Quantile outside [0,1] should be NaN")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	f := func(seed uint64) bool {
		n := int(seed%50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		s := Sorted(xs)
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			q := Quantile(s, p)
			if q < prev {
				return false
			}
			prev = q
		}
		return Quantile(s, 0) == s[0] && Quantile(s, 1) == s[n-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMedianAndIQR(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7}
	closeTo(t, "Median", Median(xs), 5, 1e-15)
	closeTo(t, "IQR", IQR(xs), 4, 1e-15) // q3=7, q1=3 (type-7)
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 4))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 17
		w.Add(xs[i])
	}
	closeTo(t, "Welford mean", w.Mean(), Mean(xs), 1e-10)
	closeTo(t, "Welford var", w.Variance(), Variance(xs), 1e-9)
	closeTo(t, "Welford min", w.Min(), Min(xs), 0)
	closeTo(t, "Welford max", w.Max(), Max(xs), 0)
	if w.N() != 1000 {
		t.Errorf("N = %d", w.N())
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	xs := make([]float64, 501)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	var a, b, whole Welford
	for i, x := range xs {
		whole.Add(x)
		if i < 200 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	closeTo(t, "merged mean", a.Mean(), whole.Mean(), 1e-12)
	closeTo(t, "merged var", a.Variance(), whole.Variance(), 1e-12)
	if a.N() != whole.N() {
		t.Errorf("merged N = %d, want %d", a.N(), whole.N())
	}

	// Merging into an empty accumulator copies.
	var empty Welford
	empty.Merge(whole)
	closeTo(t, "merge into empty", empty.Mean(), whole.Mean(), 0)
	// Merging an empty accumulator is a no-op.
	before := whole.Mean()
	whole.Merge(Welford{})
	closeTo(t, "merge empty no-op", whole.Mean(), before, 0)
}

func TestTukeyOutliers(t *testing.T) {
	xs := []float64{1, 2, 2, 3, 3, 3, 4, 4, 5, 100}
	kept, outliers := TukeyFilter(xs, 1.5)
	if len(outliers) != 1 || outliers[0] != 100 {
		t.Errorf("outliers = %v, want [100]", outliers)
	}
	if len(kept) != 9 {
		t.Errorf("kept %d values, want 9", len(kept))
	}
	// A conservative-enough constant keeps everything (IQR = 1.75,
	// so hi = 4 + 60·1.75 = 109 > 100).
	_, out3 := TukeyFilter(xs, 60)
	if len(out3) != 0 {
		t.Errorf("k=60 should keep all, removed %v", out3)
	}
	k, o := TukeyFilter(nil, 1.5)
	if k != nil || o != nil {
		t.Error("TukeyFilter(nil) should return nils")
	}
}

func TestLogTransform(t *testing.T) {
	out, err := LogTransform([]float64{1, math.E, math.E * math.E})
	if err != nil {
		t.Fatal(err)
	}
	closeTo(t, "log[0]", out[0], 0, 1e-15)
	closeTo(t, "log[1]", out[1], 1, 1e-15)
	closeTo(t, "log[2]", out[2], 2, 1e-15)
	if _, err := LogTransform([]float64{1, 0}); err == nil {
		t.Error("LogTransform with zero should error")
	}
}

func TestBlockNormalize(t *testing.T) {
	xs := []float64{1, 3, 5, 7, 9, 11, 13}
	out, err := BlockNormalize(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 6, 10}
	if len(out) != len(want) {
		t.Fatalf("len = %d, want %d", len(out), len(want))
	}
	for i := range want {
		closeTo(t, "block mean", out[i], want[i], 1e-15)
	}
	if _, err := BlockNormalize(xs, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := BlockNormalize(xs[:1], 2); err != ErrEmpty {
		t.Error("too-small sample should return ErrEmpty")
	}
}

// TestBlockNormalizeGaussianizes verifies the CLT claim behind Fig 2:
// block means of a skewed distribution are closer to normal (by Q-Q
// straightness) than the raw data.
func TestBlockNormalizeGaussianizes(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64()) // log-normal, heavily skewed
	}
	rawCorr := QQCorrelation(xs)
	norm, err := BlockNormalize(xs, 100)
	if err != nil {
		t.Fatal(err)
	}
	blockCorr := QQCorrelation(norm)
	if blockCorr <= rawCorr {
		t.Errorf("block-normalized Q-Q correlation %.4f should exceed raw %.4f",
			blockCorr, rawCorr)
	}
	if blockCorr < 0.99 {
		t.Errorf("block means of k=100 should be nearly normal, corr = %.4f", blockCorr)
	}
}

func TestSkewnessSign(t *testing.T) {
	right := []float64{1, 1, 1, 2, 2, 3, 10}
	if Skewness(right) <= 0 {
		t.Errorf("right-skewed sample has skewness %g", Skewness(right))
	}
	sym := []float64{-2, -1, 0, 1, 2}
	closeTo(t, "symmetric skewness", Skewness(sym), 0, 1e-12)
	if !math.IsNaN(Skewness([]float64{1, 2})) {
		t.Error("skewness of n=2 should be NaN")
	}
}

func TestExcessKurtosis(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 1))
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	if k := ExcessKurtosis(xs); math.Abs(k) > 0.1 {
		t.Errorf("normal sample excess kurtosis %g, want ≈0", k)
	}
	if !math.IsNaN(ExcessKurtosis([]float64{1, 2, 3})) {
		t.Error("kurtosis of n=3 should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	s := Summarize(xs)
	if s.N != 5 {
		t.Errorf("N = %d", s.N)
	}
	closeTo(t, "summary mean", s.Mean, 3, 1e-15)
	closeTo(t, "summary median", s.Median, 3, 1e-15)
	closeTo(t, "summary min", s.Min, 1, 1e-15)
	closeTo(t, "summary max", s.Max, 5, 1e-15)
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	closeTo(t, "perfect corr", Correlation(xs, ys), 1, 1e-12)
	neg := []float64{8, 6, 4, 2}
	closeTo(t, "perfect anticorr", Correlation(xs, neg), -1, 1e-12)
	if !math.IsNaN(Correlation(xs, ys[:3])) {
		t.Error("length mismatch should be NaN")
	}
	if !math.IsNaN(Correlation([]float64{1, 1}, []float64{2, 3})) {
		t.Error("constant sample should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.2, 0.5, 0.9, 1.0}
	bins := Histogram(xs, 2)
	if len(bins) != 2 {
		t.Fatalf("bins = %d", len(bins))
	}
	// Bins are [0, 0.5) and [0.5, 1]: 0.5 belongs to the second bin.
	if bins[0].Count != 3 || bins[1].Count != 3 {
		t.Errorf("counts = %d,%d want 3,3", bins[0].Count, bins[1].Count)
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != len(xs) {
		t.Errorf("histogram loses observations: %d != %d", total, len(xs))
	}
	// Degenerate constant sample.
	one := Histogram([]float64{3, 3, 3}, 4)
	if len(one) != 1 || one[0].Count != 3 {
		t.Errorf("constant-sample histogram = %+v", one)
	}
	if Histogram(nil, 3) != nil {
		t.Error("empty histogram should be nil")
	}
}

func TestHistogramConservesProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	f := func(seed uint64) bool {
		n := int(seed%100) + 1
		nbins := int(seed%10) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		total := 0
		for _, b := range Histogram(xs, nbins) {
			total += b.Count
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 1))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 5
	}
	pts := KDE(xs, 0, 512)
	if len(pts) != 512 {
		t.Fatalf("points = %d", len(pts))
	}
	integral := 0.0
	for i := 1; i < len(pts); i++ {
		dx := pts[i].X - pts[i-1].X
		integral += 0.5 * (pts[i].Density + pts[i-1].Density) * dx
	}
	if math.Abs(integral-1) > 0.02 {
		t.Errorf("KDE integral = %g, want ≈1", integral)
	}
}

func TestQQPointsStraightForNormal(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	if c := QQCorrelation(xs); c < 0.999 {
		t.Errorf("normal Q-Q correlation %g, want > 0.999", c)
	}
}

func TestSturgesBins(t *testing.T) {
	if SturgesBins(1) != 1 {
		t.Error("n=1")
	}
	if got := SturgesBins(1024); got != 11 {
		t.Errorf("SturgesBins(1024) = %d, want 11", got)
	}
}

func TestKindString(t *testing.T) {
	if Cost.String() != "cost" || Rate.String() != "rate" || Ratio.String() != "ratio" {
		t.Error("Kind.String mismatch")
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should stringify")
	}
}
