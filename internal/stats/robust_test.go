package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestTrimmedMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 1000}
	// 10% trim drops one value from each tail: mean of 2..9 = 5.5.
	got, err := TrimmedMean(xs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	closeTo(t, "TrimmedMean", got, 5.5, 1e-12)
	// Zero trim equals the plain mean.
	got, err = TrimmedMean(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	closeTo(t, "trim=0", got, Mean(xs), 1e-12)
	if _, err := TrimmedMean(nil, 0.1); err != ErrEmpty {
		t.Error("empty should error")
	}
	if _, err := TrimmedMean(xs, 0.5); err == nil {
		t.Error("trim=0.5 should error")
	}
}

func TestWinsorizedMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 1000}
	// Winsorizing one from each tail: 1→2, 1000→9; mean of
	// {2,2,3,4,5,6,7,8,9,9} = 5.5.
	got, err := WinsorizedMean(xs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	closeTo(t, "WinsorizedMean", got, 5.5, 1e-12)
	// Input must remain untouched (Sorted copies).
	if xs[9] != 1000 {
		t.Error("input mutated")
	}
	if _, err := WinsorizedMean(nil, 0.1); err != ErrEmpty {
		t.Error("empty should error")
	}
	if _, err := WinsorizedMean(xs, -0.1); err == nil {
		t.Error("negative trim should error")
	}
}

func TestMADNormalConsistency(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = 10 + 3*rng.NormFloat64()
	}
	// The 1.4826 scaling makes MAD estimate sigma for normal data.
	if mad := MAD(xs); math.Abs(mad-3) > 0.05 {
		t.Errorf("MAD = %g, want ≈3", mad)
	}
	// MAD shrugs off a gross outlier that wrecks the standard deviation.
	xs[0] = 1e9
	if mad := MAD(xs); math.Abs(mad-3) > 0.05 {
		t.Errorf("MAD after outlier = %g, want ≈3", mad)
	}
	if !math.IsNaN(MAD(nil)) {
		t.Error("empty MAD should be NaN")
	}
}

func TestWeightedMean(t *testing.T) {
	got, err := WeightedMean([]float64{1, 3}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	closeTo(t, "WeightedMean", got, 2.5, 1e-12)
	// Equal weights reduce to the mean.
	got, err = WeightedMean([]float64{1, 2, 3}, []float64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	closeTo(t, "equal weights", got, 2, 1e-12)
	if _, err := WeightedMean(nil, nil); err != ErrEmpty {
		t.Error("empty should error")
	}
	if _, err := WeightedMean([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := WeightedMean([]float64{1}, []float64{-1}); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := WeightedMean([]float64{1}, []float64{0}); err == nil {
		t.Error("zero total weight should error")
	}
}

func TestRobustSummarize(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = math.Exp(0.5 * rng.NormFloat64())
	}
	rs, err := RobustSummarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Median <= 0 || rs.MAD <= 0 || rs.RobustCoV <= 0 {
		t.Errorf("summary = %+v", rs)
	}
	// Robust location estimates sit between median and mean for
	// right-skewed data.
	mean := Mean(xs)
	if !(rs.Median <= rs.TrimmedMean10 && rs.TrimmedMean10 <= mean) {
		t.Errorf("ordering: median %g, trimmed %g, mean %g",
			rs.Median, rs.TrimmedMean10, mean)
	}
	if _, err := RobustSummarize(nil); err != ErrEmpty {
		t.Error("empty should error")
	}
}
