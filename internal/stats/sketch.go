package stats

import "math"

// QuantileSketch is a fixed-memory streaming quantile estimator: the
// extended P² algorithm (Jain & Chlamtac 1985) tracking a small set of
// target quantiles plus min, max, count, and a Welford mean/variance
// accumulator. It exists so summary-mode collective results (Rule 4:
// report spread, not just a mean) can characterize per-rank completion
// times at million-rank scale without ever materializing an O(P) slice:
// Add is O(markers), the struct is a few hundred bytes, and there are
// zero heap allocations after construction.
//
// The estimates are approximate (piecewise-parabolic interpolation
// between five markers per quantile); accuracy is typically better than
// 1% of the true quantile for unimodal distributions at the sample
// sizes the simulator produces. Exact per-rank mode remains available
// below the summary threshold for bit-exact analysis.
type QuantileSketch struct {
	qs      []float64  // target quantiles, ascending
	markers []p2marker // one P² state per target
	count   uint64
	min     float64
	max     float64
	mean    float64 // Welford running mean
	m2      float64 // Welford sum of squared deviations
}

// p2marker is the five-marker state of the classic P² estimator for a
// single quantile.
type p2marker struct {
	p float64    // target quantile
	q [5]float64 // marker heights (estimates)
	n [5]float64 // actual marker positions
	d [5]float64 // desired marker positions
}

// defaultSketchQuantiles are the targets used by collective summaries:
// quartiles plus the tail percentiles the paper's figures report.
var defaultSketchQuantiles = []float64{0.25, 0.5, 0.75, 0.95, 0.99}

// NewQuantileSketch returns a sketch tracking the given quantiles (each
// in (0,1)); with no arguments it tracks {25, 50, 75, 95, 99}%.
func NewQuantileSketch(quantiles ...float64) *QuantileSketch {
	if len(quantiles) == 0 {
		quantiles = defaultSketchQuantiles
	}
	s := &QuantileSketch{
		qs:      append([]float64(nil), quantiles...),
		markers: make([]p2marker, len(quantiles)),
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
	for i, p := range quantiles {
		s.markers[i].p = p
	}
	return s
}

// Reset returns the sketch to its empty state, reusing all storage.
func (s *QuantileSketch) Reset() {
	s.count = 0
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
	s.mean = 0
	s.m2 = 0
	for i := range s.markers {
		p := s.markers[i].p
		s.markers[i] = p2marker{p: p}
	}
}

// Add feeds one observation into the sketch. It never allocates.
func (s *QuantileSketch) Add(x float64) {
	s.count++
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	delta := x - s.mean
	s.mean += delta / float64(s.count)
	s.m2 += delta * (x - s.mean)

	if s.count <= 5 {
		// Bootstrap phase: collect the first five observations sorted
		// into each marker's q array.
		k := int(s.count) - 1
		for i := range s.markers {
			m := &s.markers[i]
			m.q[k] = x
			for j := k; j > 0 && m.q[j-1] > m.q[j]; j-- {
				m.q[j-1], m.q[j] = m.q[j], m.q[j-1]
			}
		}
		if s.count == 5 {
			for i := range s.markers {
				m := &s.markers[i]
				p := m.p
				for j := 0; j < 5; j++ {
					m.n[j] = float64(j + 1)
				}
				m.d[0] = 1
				m.d[1] = 1 + 2*p
				m.d[2] = 1 + 4*p
				m.d[3] = 3 + 2*p
				m.d[4] = 5
			}
		}
		return
	}
	for i := range s.markers {
		s.markers[i].add(x)
	}
}

func (m *p2marker) add(x float64) {
	// Locate the cell containing x and clamp the extremes.
	var k int
	switch {
	case x < m.q[0]:
		m.q[0] = x
		k = 0
	case x < m.q[1]:
		k = 0
	case x < m.q[2]:
		k = 1
	case x < m.q[3]:
		k = 2
	case x <= m.q[4]:
		k = 3
	default:
		m.q[4] = x
		k = 3
	}
	for j := k + 1; j < 5; j++ {
		m.n[j]++
	}
	p := m.p
	m.d[1] += p / 2
	m.d[2] += p
	m.d[3] += (1 + p) / 2
	m.d[4]++

	// Adjust interior markers toward their desired positions.
	for j := 1; j <= 3; j++ {
		d := m.d[j] - m.n[j]
		if (d >= 1 && m.n[j+1]-m.n[j] > 1) || (d <= -1 && m.n[j-1]-m.n[j] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			qn := m.parabolic(j, sign)
			if m.q[j-1] < qn && qn < m.q[j+1] {
				m.q[j] = qn
			} else {
				m.q[j] = m.linear(j, sign)
			}
			m.n[j] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic prediction for marker j moved
// by sign (±1).
func (m *p2marker) parabolic(j int, sign float64) float64 {
	n := m.n
	q := m.q
	return q[j] + sign/(n[j+1]-n[j-1])*
		((n[j]-n[j-1]+sign)*(q[j+1]-q[j])/(n[j+1]-n[j])+
			(n[j+1]-n[j]-sign)*(q[j]-q[j-1])/(n[j]-n[j-1]))
}

// linear is the fallback linear prediction when the parabolic estimate
// would leave the bracket.
func (m *p2marker) linear(j int, sign float64) float64 {
	k := j + int(sign)
	return m.q[j] + sign*(m.q[k]-m.q[j])/(m.n[k]-m.n[j])
}

// Count returns the number of observations added.
func (s *QuantileSketch) Count() uint64 { return s.count }

// Min returns the smallest observation, or NaN if empty.
func (s *QuantileSketch) Min() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation, or NaN if empty.
func (s *QuantileSketch) Max() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.max
}

// Mean returns the arithmetic mean of the observations, or NaN if empty.
func (s *QuantileSketch) Mean() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.mean
}

// StdDev returns the sample standard deviation (n−1 denominator), or
// NaN with fewer than two observations.
func (s *QuantileSketch) StdDev() float64 {
	if s.count < 2 {
		return math.NaN()
	}
	return math.Sqrt(s.m2 / float64(s.count-1))
}

// Quantile returns the estimate for target quantile p. p must be one of
// the tracked targets (or 0/1, which map to min/max); other values
// return NaN rather than silently interpolating between sketches. With
// five or fewer observations the estimate is exact.
func (s *QuantileSketch) Quantile(p float64) float64 {
	if s.count == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return s.min
	}
	if p >= 1 {
		return s.max
	}
	for i, q := range s.qs {
		if q != p {
			continue
		}
		m := &s.markers[i]
		if s.count <= 5 {
			// Exact: nearest-rank over the sorted bootstrap buffer.
			n := int(s.count)
			idx := int(math.Ceil(p*float64(n))) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= n {
				idx = n - 1
			}
			return m.q[idx]
		}
		return m.q[2]
	}
	return math.NaN()
}

// Targets returns the tracked quantiles in the order given at
// construction.
func (s *QuantileSketch) Targets() []float64 { return s.qs }
