package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h LogHistogram
	if h.Count() != 0 {
		t.Fatalf("empty count = %d", h.Count())
	}
	for _, v := range []float64{h.Min(), h.Max(), h.Mean(), h.Quantile(0.5), h.ValueAtRank(1)} {
		if !math.IsNaN(v) {
			t.Fatalf("empty histogram statistic = %g, want NaN", v)
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Lognormal latencies spanning several octaves: every quantile
	// estimate must land within the bucket quantization bound of the
	// exact order statistic.
	rng := rand.New(rand.NewPCG(7, 11))
	n := 50000
	xs := make([]float64, n)
	var h LogHistogram
	for i := range xs {
		v := 200e-6 * math.Exp(0.8*rng.NormFloat64())
		xs[i] = v
		h.Record(v)
	}
	sort.Float64s(xs)
	for _, p := range []float64{0.25, 0.5, 0.9, 0.99, 0.999} {
		exact := xs[int(math.Ceil(p*float64(n)))-1]
		got := h.Quantile(p)
		if rel := math.Abs(got-exact) / exact; rel > 1.0/histSubBuckets+1e-9 {
			t.Errorf("p=%g: hist %.6g vs exact %.6g (rel err %.4f > %.4f)",
				p, got, exact, rel, 1.0/histSubBuckets)
		}
	}
	if h.Min() != xs[0] || h.Max() != xs[n-1] {
		t.Errorf("extremes not exact: min %g/%g max %g/%g", h.Min(), xs[0], h.Max(), xs[n-1])
	}
	if math.Abs(h.Mean()-Mean(xs))/Mean(xs) > 1e-9 {
		t.Errorf("mean %g vs exact %g", h.Mean(), Mean(xs))
	}
}

func TestHistogramMergeMatchesSingle(t *testing.T) {
	// Recording a stream into k shards and merging must be exactly the
	// single-histogram result: same counts, same quantiles, same
	// extremes — the property the sharded serve sweep relies on.
	rng := rand.New(rand.NewPCG(3, 5))
	var whole LogHistogram
	shards := make([]LogHistogram, 4)
	for i := 0; i < 20000; i++ {
		v := math.Exp(2 * rng.NormFloat64())
		whole.Record(v)
		shards[i%len(shards)].Record(v)
	}
	var merged LogHistogram
	for i := range shards {
		merged.Merge(&shards[i])
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("merge count mismatch: %d vs %d", merged.Count(), whole.Count())
	}
	// Sums accumulate in different orders, so equality is up to float
	// rounding, not bit-exact.
	if math.Abs(merged.Sum()-whole.Sum())/whole.Sum() > 1e-12 {
		t.Fatalf("merge sum mismatch: %g vs %g", merged.Sum(), whole.Sum())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merge extremes mismatch")
	}
	for _, p := range []float64{0.01, 0.5, 0.99, 0.999} {
		if m, w := merged.Quantile(p), whole.Quantile(p); m != w {
			t.Errorf("p=%g: merged %g != whole %g", p, m, w)
		}
	}
}

func TestHistogramBadInput(t *testing.T) {
	var h LogHistogram
	h.Record(math.NaN()) // ignored
	if h.Count() != 0 {
		t.Fatalf("NaN was recorded")
	}
	h.Record(-1) // clamps to the first bucket
	h.Record(0)
	h.Record(1e-300) // below the range: first bucket
	h.Record(1e300)  // above the range: last bucket
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Min() != -1 || h.Max() != 1e300 {
		t.Fatalf("extremes %g..%g not exact", h.Min(), h.Max())
	}
	if h.ValueAtRank(1) != -1 || h.ValueAtRank(h.Count()) != 1e300 {
		t.Fatalf("first/last rank must report exact extremes")
	}
}

func TestHistogramRecordZeroAllocs(t *testing.T) {
	var h LogHistogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(123e-6)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f per op, want 0", allocs)
	}
}

func TestHistogramReset(t *testing.T) {
	var h LogHistogram
	h.Record(1)
	h.Reset()
	if h.Count() != 0 || !math.IsNaN(h.Quantile(0.5)) {
		t.Fatalf("Reset did not empty the histogram")
	}
}

// FuzzHistogramMerge checks the merge identity on arbitrary splits of an
// arbitrary value stream: merging shard histograms must be
// indistinguishable from recording everything into one histogram, and no
// input (NaN, infinities, subnormals, negatives) may panic or corrupt
// counts.
func FuzzHistogramMerge(f *testing.F) {
	f.Add(uint64(1), uint16(100), uint8(3))
	f.Add(uint64(42), uint16(1000), uint8(1))
	f.Add(uint64(7), uint16(17), uint8(7))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, k uint8) {
		shards := int(k%8) + 1
		rng := rand.New(rand.NewPCG(seed, 0xabcdef))
		var whole LogHistogram
		parts := make([]LogHistogram, shards)
		recorded := uint64(0)
		for i := 0; i < int(n); i++ {
			var v float64
			switch rng.Uint64() % 8 {
			case 0:
				v = math.NaN()
			case 1:
				v = math.Inf(1)
			case 2:
				v = -rng.Float64()
			case 3:
				v = rng.Float64() * 1e-300
			default:
				v = math.Exp(10 * (rng.Float64() - 0.5))
			}
			whole.Record(v)
			parts[i%shards].Record(v)
			if !math.IsNaN(v) {
				recorded++
			}
		}
		var merged LogHistogram
		for i := range parts {
			merged.Merge(&parts[i])
		}
		if merged.Count() != whole.Count() || whole.Count() != recorded {
			t.Fatalf("count: merged %d whole %d recorded %d", merged.Count(), whole.Count(), recorded)
		}
		if recorded == 0 {
			return
		}
		for _, p := range []float64{0, 0.5, 0.99, 1} {
			m, w := merged.Quantile(p), whole.Quantile(p)
			if m != w && !(math.IsNaN(m) && math.IsNaN(w)) {
				t.Fatalf("p=%g: merged %g != whole %g", p, m, w)
			}
		}
	})
}
