package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// ExampleSummarizeMean reproduces the paper's §3.1.1 HPL example: the
// arithmetic mean is correct for the execution times (costs), the
// harmonic mean for the derived rates.
func ExampleSummarizeMean() {
	times := []float64{10, 100, 40} // seconds for 100 Gflop each
	rates := []float64{10, 1, 2.5}  // Gflop/s per run

	meanTime, _ := stats.SummarizeMean(stats.Cost, times)
	rate, _ := stats.SummarizeMean(stats.Rate, rates)
	wrong := stats.Mean(rates)

	fmt.Printf("mean time: %g s → %g Gflop/s\n", meanTime, 100/meanTime)
	fmt.Printf("harmonic mean of rates: %g Gflop/s (correct)\n", rate)
	fmt.Printf("arithmetic mean of rates: %g Gflop/s (wrong)\n", wrong)
	// Output:
	// mean time: 50 s → 2 Gflop/s
	// harmonic mean of rates: 2 Gflop/s (correct)
	// arithmetic mean of rates: 4.5 Gflop/s (wrong)
}

// ExampleTukeyFilter shows the outlier policy: removal is possible but
// the count must be reported.
func ExampleTukeyFilter() {
	xs := []float64{1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 25.0}
	kept, outliers := stats.TukeyFilter(xs, 1.5)
	fmt.Printf("kept %d observations, removed %d outlier(s): %v\n",
		len(kept), len(outliers), outliers)
	// Output:
	// kept 6 observations, removed 1 outlier(s): [25]
}

// ExampleBlockNormalize shows the CLT normalization of Fig 2.
func ExampleBlockNormalize() {
	xs := []float64{1, 3, 2, 4, 3, 5, 4, 6}
	blocks, _ := stats.BlockNormalize(xs, 2)
	fmt.Println(blocks)
	// Output:
	// [2 3 4 5]
}

// ExampleWelford shows single-pass accumulation of mean and deviation —
// the online scheme §3.1.2 describes.
func ExampleWelford() {
	var w stats.Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	fmt.Printf("n=%d mean=%g sd=%.4f\n", w.N(), w.Mean(), w.StdDev())
	// Output:
	// n=8 mean=5 sd=2.1381
}
