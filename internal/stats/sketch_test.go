package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

func TestSketchExactSmallSamples(t *testing.T) {
	s := NewQuantileSketch(0.5)
	for _, x := range []float64{5, 1, 3} {
		s.Add(x)
	}
	if got := s.Quantile(0.5); got != 3 {
		t.Errorf("median of {1,3,5} = %g, want 3", got)
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("min/max = %g/%g, want 1/5", s.Min(), s.Max())
	}
	if s.Count() != 3 {
		t.Errorf("count = %d, want 3", s.Count())
	}
}

func TestSketchEmpty(t *testing.T) {
	s := NewQuantileSketch()
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Mean()) {
		t.Error("empty sketch must return NaN")
	}
}

func TestSketchUntrackedQuantile(t *testing.T) {
	s := NewQuantileSketch(0.5)
	for i := 0; i < 100; i++ {
		s.Add(float64(i))
	}
	if !math.IsNaN(s.Quantile(0.33)) {
		t.Error("untracked quantile must return NaN, not interpolate")
	}
	if s.Quantile(0) != 0 || s.Quantile(1) != 99 {
		t.Error("p=0/1 must map to min/max")
	}
}

// TestSketchAccuracy checks P² estimates against exact quantiles for
// uniform, normal, and heavy-tailed (lognormal) streams — the shapes
// per-rank completion times actually take.
func TestSketchAccuracy(t *testing.T) {
	const n = 100000
	gens := map[string]func(*rand.Rand) float64{
		"uniform":   func(r *rand.Rand) float64 { return r.Float64() },
		"normal":    func(r *rand.Rand) float64 { return 10 + 2*r.NormFloat64() },
		"lognormal": func(r *rand.Rand) float64 { return math.Exp(0.5 * r.NormFloat64()) },
	}
	for name, gen := range gens {
		r := rand.New(rand.NewPCG(42, 7))
		s := NewQuantileSketch()
		xs := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			x := gen(r)
			s.Add(x)
			xs = append(xs, x)
		}
		sort.Float64s(xs)
		for _, p := range s.Targets() {
			exact := xs[int(p*float64(n))]
			got := s.Quantile(p)
			// Tolerance: 2% of the exact value plus a small absolute
			// floor for near-zero quantiles.
			tol := 0.02*math.Abs(exact) + 0.01
			if math.Abs(got-exact) > tol {
				t.Errorf("%s q%.2f: sketch %g, exact %g (tol %g)", name, p, got, exact, tol)
			}
		}
		if got, want := s.Mean(), Mean(xs); math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Errorf("%s mean: sketch %g, exact %g", name, got, want)
		}
	}
}

func TestSketchDeterministic(t *testing.T) {
	run := func() []float64 {
		r := rand.New(rand.NewPCG(9, 9))
		s := NewQuantileSketch()
		for i := 0; i < 5000; i++ {
			s.Add(r.NormFloat64())
		}
		out := []float64{s.Min(), s.Max(), s.Mean(), s.StdDev()}
		for _, p := range s.Targets() {
			out = append(out, s.Quantile(p))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sketch not deterministic at output %d: %g != %g", i, a[i], b[i])
		}
	}
}

func TestSketchReset(t *testing.T) {
	s := NewQuantileSketch(0.5)
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	s.Reset()
	if s.Count() != 0 || !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("Reset did not clear state")
	}
	for _, x := range []float64{2, 4, 6} {
		s.Add(x)
	}
	if got := s.Quantile(0.5); got != 4 {
		t.Errorf("median after reset = %g, want 4", got)
	}
}

func TestSketchAddAllocationFree(t *testing.T) {
	s := NewQuantileSketch()
	r := rand.New(rand.NewPCG(1, 1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		s.Add(xs[i%len(xs)])
		i++
	})
	if allocs != 0 {
		t.Errorf("Add allocates %.1f objects per call, want 0", allocs)
	}
}

func BenchmarkSketchAdd(b *testing.B) {
	s := NewQuantileSketch()
	r := rand.New(rand.NewPCG(1, 1))
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = r.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(xs[i&4095])
	}
}
