package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

// closeRel reports whether a and b agree to within rel (or both NaN).
func closeRel(a, b, rel float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	if a == b {
		return true
	}
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))
}

func TestSampleMatchesPackageFunctions(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = math.Exp(0.4 * rng.NormFloat64())
	}
	s := NewSample(xs)

	sorted := Sorted(xs)
	for i, v := range s.Sorted() {
		if v != sorted[i] {
			t.Fatalf("Sorted()[%d] = %g, Sorted(xs)[%d] = %g", i, v, i, sorted[i])
		}
	}
	for _, p := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1} {
		if got, want := s.Quantile(p), Quantile(sorted, p); got != want {
			t.Errorf("Quantile(%g) = %g, package says %g", p, got, want)
		}
	}
	if got, want := s.Median(), Median(xs); got != want {
		t.Errorf("Median = %g, package says %g", got, want)
	}
	if got, want := s.IQR(), IQR(xs); got != want {
		t.Errorf("IQR = %g, package says %g", got, want)
	}
	if got, want := s.Min(), Min(xs); got != want {
		t.Errorf("Min = %g, package says %g", got, want)
	}
	if got, want := s.Max(), Max(xs); got != want {
		t.Errorf("Max = %g, package says %g", got, want)
	}
	// Welford vs the two-pass formulas: equal to within floating-point
	// noise, not necessarily to the last bit.
	if !closeRel(s.Mean(), Mean(xs), 1e-12) {
		t.Errorf("Mean = %g, package says %g", s.Mean(), Mean(xs))
	}
	if !closeRel(s.StdDev(), StdDev(xs), 1e-9) {
		t.Errorf("StdDev = %g, package says %g", s.StdDev(), StdDev(xs))
	}
	if !closeRel(s.CoV(), CoV(xs), 1e-9) {
		t.Errorf("CoV = %g, package says %g", s.CoV(), CoV(xs))
	}
	if got, want := s.Skewness(), Skewness(xs); !closeRel(got, want, 1e-9) {
		t.Errorf("Skewness = %g, package says %g", got, want)
	}

	// Summarize must agree field-for-field with the package Summarize
	// (which itself routes through a Sample, so this is exact).
	if got, want := s.Summarize(), Summarize(xs); got != want {
		t.Errorf("Summarize:\n  sample  %+v\n  package %+v", got, want)
	}

	lo1, hi1 := s.TukeyFences(1.5)
	lo2, hi2 := TukeyFences(xs, 1.5)
	if lo1 != lo2 || hi1 != hi2 {
		t.Errorf("TukeyFences = (%g, %g), package says (%g, %g)", lo1, hi1, lo2, hi2)
	}
	k1, o1 := s.TukeyFilter(1.5)
	k2, o2 := TukeyFilter(xs, 1.5)
	if len(k1) != len(k2) || len(o1) != len(o2) {
		t.Fatalf("TukeyFilter sizes: sample (%d, %d), package (%d, %d)",
			len(k1), len(o1), len(k2), len(o2))
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("TukeyFilter kept[%d] differs", i)
		}
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("TukeyFilter outliers[%d] differs", i)
		}
	}
}

func TestSampleDataPreservesOrder(t *testing.T) {
	xs := []float64{3, 1, 2}
	s := NewSample(xs)
	for i, v := range s.Data() {
		if v != xs[i] {
			t.Fatalf("Data()[%d] = %g, want %g (observation order)", i, v, xs[i])
		}
	}
	want := []float64{1, 2, 3}
	for i, v := range s.Sorted() {
		if v != want[i] {
			t.Fatalf("Sorted()[%d] = %g, want %g", i, v, want[i])
		}
	}
}

func TestSampleResetReusesBuffer(t *testing.T) {
	s := NewSample([]float64{5, 4, 3, 2, 1})
	buf := s.Sorted()
	s.Reset([]float64{9, 7, 8})
	if got := s.Sorted(); &got[0] != &buf[0] {
		t.Error("Reset to a smaller sample did not reuse the sorted buffer")
	}
	if s.Median() != 8 {
		t.Errorf("median after Reset = %g, want 8", s.Median())
	}
	if s.N() != 3 {
		t.Errorf("N after Reset = %d, want 3", s.N())
	}
	// Growing past capacity reallocates but stays correct.
	s.Reset([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if s.Median() != 5 || s.N() != 9 {
		t.Errorf("after growing Reset: median %g n %d", s.Median(), s.N())
	}
}

func TestSampleEmptyAndNaN(t *testing.T) {
	var s Sample
	if s.N() != 0 {
		t.Errorf("zero Sample N = %d", s.N())
	}
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) {
		t.Error("zero Sample moments must be NaN")
	}
	kept, out := s.TukeyFilter(1.5)
	if kept != nil || out != nil {
		t.Error("zero Sample TukeyFilter must return nils")
	}

	// NaNs sort to the end, exactly as stats.Sorted orders them.
	xs := []float64{2, math.NaN(), 1}
	s.Reset(xs)
	sorted := Sorted(xs)
	for i := range sorted {
		a, b := s.Sorted()[i], sorted[i]
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Fatalf("NaN sample Sorted()[%d] = %g, Sorted(xs)[%d] = %g", i, a, i, b)
		}
	}
}
