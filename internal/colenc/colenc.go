// Package colenc is the low-level columnar chunk encoding shared by the
// v2 campaign journal (internal/campaign) and the binary telemetry
// trace sink (internal/telemetry): varint and zigzag integer columns,
// delta-of-delta encoding for monotone counters, XOR-prefix float64
// compression (Gorilla/FTDC-style), and CRC32-framed chunks with
// torn-tail detection.
//
// The framing contract is the one the write-ahead journal's recovery
// discipline needs: a file is a header followed by frames, each frame
// `uvarint(len(payload)) || payload || crc32(payload)` — so a reader
// scanning from the start either verifies a whole frame or stops,
// classifying everything from the first bad byte as a torn tail. A
// crash mid-append can only ever tear the final frame.
package colenc

import (
	"encoding/binary"
	"hash/crc32"
)

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendVarint appends v as a zigzag-encoded signed varint.
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// AppendFloatDelta appends cur XOR prev in trimmed little-endian form:
// one count byte (0–8) followed by that many significant low-order
// bytes of the XOR. Consecutive floats of similar magnitude share sign,
// exponent and high mantissa bits, so the XOR's high bytes are zero and
// are not stored; an exactly repeated value costs a single zero byte.
func AppendFloatDelta(dst []byte, prev, cur uint64) []byte {
	x := prev ^ cur
	n := 8
	for n > 0 && byte(x>>(8*(n-1))) == 0 {
		n--
	}
	dst = append(dst, byte(n))
	for i := 0; i < n; i++ {
		dst = append(dst, byte(x>>(8*i)))
	}
	return dst
}

// Dec is an error-latching decoder over one chunk payload: a failed or
// out-of-bounds read marks the decoder bad and every subsequent read
// returns zero values, so column decoders read linearly and check Bad
// once at the end — exactly the discipline a fuzzed parser needs.
type Dec struct {
	b   []byte
	bad bool
}

// NewDec returns a decoder over payload.
func NewDec(payload []byte) *Dec { return &Dec{b: payload} }

// Bad reports whether any read failed.
func (d *Dec) Bad() bool { return d.bad }

// Len returns the number of unread bytes.
func (d *Dec) Len() int { return len(d.b) }

// Done reports a fully-consumed, error-free payload — the only
// acceptable end state for a verified chunk (trailing garbage inside a
// CRC-valid frame is corruption, not slack).
func (d *Dec) Done() bool { return !d.bad && len(d.b) == 0 }

// Uvarint reads one unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.bad {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Varint reads one zigzag-encoded signed varint.
func (d *Dec) Varint() int64 {
	if d.bad {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Byte reads one byte.
func (d *Dec) Byte() byte {
	if d.bad || len(d.b) == 0 {
		d.bad = true
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// Bytes reads exactly n bytes (aliasing the payload; callers copy if
// they retain).
func (d *Dec) Bytes(n int) []byte {
	if d.bad || n < 0 || n > len(d.b) {
		d.bad = true
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

// FloatDelta reads one AppendFloatDelta-encoded value against prev.
func (d *Dec) FloatDelta(prev uint64) uint64 {
	n := d.Byte()
	if d.bad || n > 8 {
		d.bad = true
		return 0
	}
	var x uint64
	for i := 0; i < int(n); i++ {
		x |= uint64(d.Byte()) << (8 * i)
	}
	if d.bad {
		return 0
	}
	return prev ^ x
}

// frameTrailer is the CRC32 (IEEE, little-endian) appended after each
// frame's payload.
const frameTrailer = 4

// AppendFrame appends one CRC-framed chunk: uvarint payload length,
// the payload, and its CRC32.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// ReadFrame parses one frame from the head of data. It returns the
// verified payload and the total frame size consumed; ok is false when
// the head of data is not a whole, CRC-verified frame — a torn write, a
// truncation, or a bit flip, all of which the caller treats as the
// start of the torn tail.
func ReadFrame(data []byte) (payload []byte, size int, ok bool) {
	ln, n := binary.Uvarint(data)
	if n <= 0 || ln > uint64(len(data)-n) {
		return nil, 0, false
	}
	if uint64(len(data)-n)-ln < frameTrailer {
		return nil, 0, false
	}
	payload = data[n : n+int(ln)]
	crc := binary.LittleEndian.Uint32(data[n+int(ln):])
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, false
	}
	return payload, n + int(ln) + frameTrailer, true
}
