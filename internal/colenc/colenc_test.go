package colenc

import (
	"bytes"
	"math"
	"testing"
)

func TestVarintRoundTrip(t *testing.T) {
	var b []byte
	uvals := []uint64{0, 1, 127, 128, 1<<32 + 5, math.MaxUint64}
	ivals := []int64{0, -1, 1, -64, 64, math.MinInt64, math.MaxInt64}
	for _, v := range uvals {
		b = AppendUvarint(b, v)
	}
	for _, v := range ivals {
		b = AppendVarint(b, v)
	}
	d := NewDec(b)
	for _, want := range uvals {
		if got := d.Uvarint(); got != want {
			t.Fatalf("Uvarint = %d, want %d", got, want)
		}
	}
	for _, want := range ivals {
		if got := d.Varint(); got != want {
			t.Fatalf("Varint = %d, want %d", got, want)
		}
	}
	if !d.Done() {
		t.Fatalf("decoder not done: bad=%v len=%d", d.Bad(), d.Len())
	}
}

func TestFloatDeltaRoundTrip(t *testing.T) {
	vals := []float64{0, 0, 1.5, 1.5000001, 1.5, -3.25, 406.125, 406.126,
		math.Inf(1), math.NaN(), 1e-300, math.MaxFloat64}
	var b []byte
	prev := uint64(0)
	for _, v := range vals {
		cur := math.Float64bits(v)
		b = AppendFloatDelta(b, prev, cur)
		prev = cur
	}
	d := NewDec(b)
	prev = 0
	for i, want := range vals {
		cur := d.FloatDelta(prev)
		if cur != math.Float64bits(want) {
			t.Fatalf("value %d = %x, want %x", i, cur, math.Float64bits(want))
		}
		prev = cur
	}
	if !d.Done() {
		t.Fatal("decoder not done")
	}
}

func TestFloatDeltaCompresses(t *testing.T) {
	// Near-identical consecutive floats (the sample-stream case) must
	// cost well under 9 bytes each; identical ones exactly one byte.
	var b []byte
	b = AppendFloatDelta(b, math.Float64bits(406.125), math.Float64bits(406.125))
	if len(b) != 1 {
		t.Fatalf("repeated value costs %d bytes, want 1", len(b))
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{{}, []byte("a"), bytes.Repeat([]byte{0xAB}, 300)}
	var file []byte
	for _, p := range payloads {
		file = AppendFrame(file, p)
	}
	rest := file
	for i, want := range payloads {
		got, n, ok := ReadFrame(rest)
		if !ok {
			t.Fatalf("frame %d unreadable", i)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d payload mismatch", i)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestFrameTornAndCorrupt(t *testing.T) {
	frame := AppendFrame(nil, []byte("hello world"))
	// Every strict prefix is torn.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, ok := ReadFrame(frame[:cut]); ok {
			t.Fatalf("prefix of %d bytes verified as a whole frame", cut)
		}
	}
	// Any single bit flip fails CRC (or framing).
	for i := 0; i < len(frame); i++ {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x10
		if p, _, ok := ReadFrame(bad); ok && bytes.Equal(p, []byte("hello world")) {
			continue // flip landed in the (redundant) length prefix high bits — still verified
		} else if ok {
			t.Fatalf("bit flip at byte %d verified with altered payload", i)
		}
	}
}

func TestDecLatchesErrors(t *testing.T) {
	d := NewDec([]byte{0x80}) // truncated varint
	if v := d.Uvarint(); v != 0 || !d.Bad() {
		t.Fatalf("truncated varint: v=%d bad=%v", v, d.Bad())
	}
	if v := d.Byte(); v != 0 {
		t.Fatalf("read after latch = %d, want 0", v)
	}
	d2 := NewDec([]byte{9}) // FloatDelta count byte out of range
	if v := d2.FloatDelta(0); v != 0 || !d2.Bad() {
		t.Fatalf("oversized float count: v=%d bad=%v", v, d2.Bad())
	}
}
