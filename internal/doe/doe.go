// Package doe implements the factorial experimental-design machinery the
// paper recommends in §4 ("We recommend factorial design to compare the
// influence of multiple factors, each at various different levels, on
// the measured performance. This allows experimenters to study the
// effect of each factor as well as interactions between factors."):
// full factorial designs over arbitrary levels, two-level (2^k) designs
// with main-effect and interaction estimation via orthogonal contrasts,
// and replicate-based significance tests for each effect.
package doe

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/dist"
	"repro/internal/stats"
)

// Factor is one experimental factor with its levels (Rule 9 requires
// documenting both).
type Factor struct {
	Name   string
	Levels []string
}

// Design is a set of runs over the cross product of factor levels. Each
// run is a vector of level indices, one per factor.
type Design struct {
	Factors []Factor
	Runs    [][]int
}

// Errors.
var (
	ErrNoFactors   = errors.New("doe: no factors")
	ErrBadLevels   = errors.New("doe: every factor needs at least two levels")
	ErrNotTwoLevel = errors.New("doe: effects analysis requires a two-level design")
	ErrReplicates  = errors.New("doe: need at least two replicates per run for significance")
	ErrShape       = errors.New("doe: observations do not match the design")
)

// FullFactorial enumerates every combination of factor levels, varying
// the last factor fastest.
func FullFactorial(factors []Factor) (*Design, error) {
	if len(factors) == 0 {
		return nil, ErrNoFactors
	}
	total := 1
	for _, f := range factors {
		if len(f.Levels) < 2 {
			return nil, ErrBadLevels
		}
		total *= len(f.Levels)
	}
	d := &Design{Factors: factors, Runs: make([][]int, 0, total)}
	cur := make([]int, len(factors))
	for {
		run := make([]int, len(cur))
		copy(run, cur)
		d.Runs = append(d.Runs, run)
		// Odometer increment.
		i := len(cur) - 1
		for ; i >= 0; i-- {
			cur[i]++
			if cur[i] < len(factors[i].Levels) {
				break
			}
			cur[i] = 0
		}
		if i < 0 {
			return d, nil
		}
	}
}

// TwoLevel builds the 2^k full factorial over the named factors with
// conventional low/high levels.
func TwoLevel(names ...string) (*Design, error) {
	factors := make([]Factor, len(names))
	for i, n := range names {
		factors[i] = Factor{Name: n, Levels: []string{"low", "high"}}
	}
	return FullFactorial(factors)
}

// RunLabel renders one run's levels, e.g. "blocksize=high, placement=low".
func (d *Design) RunLabel(run []int) string {
	parts := make([]string, len(d.Factors))
	for i, f := range d.Factors {
		parts[i] = f.Name + "=" + f.Levels[run[i]]
	}
	return strings.Join(parts, ", ")
}

// Observations holds replicated measurements: Y[r][j] is replicate j of
// design run r.
type Observations struct {
	Design *Design
	Y      [][]float64
}

// Collect executes the design: measure(levels) is invoked `reps` times
// per run (the measurement layer's warmup/outlier policy applies inside
// the closure).
func Collect(d *Design, reps int, measure func(levels []int) float64) (*Observations, error) {
	if reps < 1 {
		reps = 1
	}
	if measure == nil {
		return nil, errors.New("doe: nil measure function")
	}
	obs := &Observations{Design: d, Y: make([][]float64, len(d.Runs))}
	for r, run := range d.Runs {
		for j := 0; j < reps; j++ {
			obs.Y[r] = append(obs.Y[r], measure(run))
		}
	}
	return obs, nil
}

// Effect is one estimated effect of a two-level design: a main effect
// (one factor) or an interaction (multiple factors). Effect is the
// change in the response when moving the factor set's contrast from low
// to high; T and P are the replicate-based significance test.
type Effect struct {
	Factors []string
	Effect  float64
	SE      float64
	T       float64
	P       float64
}

// Name renders the effect's factor set, e.g. "A×B".
func (e Effect) Name() string { return strings.Join(e.Factors, "×") }

// String renders the effect with its significance.
func (e Effect) String() string {
	return fmt.Sprintf("%s: %+.6g (t=%.3g, p=%.3g)", e.Name(), e.Effect, e.T, e.P)
}

// Effects estimates all main effects and, when interactions is true, all
// two-factor interactions of a replicated two-level design using
// orthogonal contrasts: effect = (2/N)·Σ sign(run)·ȳ(run), with the
// standard error pooled from the within-run replicate variance.
func Effects(obs *Observations, interactions bool) ([]Effect, error) {
	d := obs.Design
	if d == nil || len(obs.Y) != len(d.Runs) {
		return nil, ErrShape
	}
	for _, f := range d.Factors {
		if len(f.Levels) != 2 {
			return nil, ErrNotTwoLevel
		}
	}
	reps := -1
	for _, y := range obs.Y {
		if reps == -1 {
			reps = len(y)
		} else if len(y) != reps {
			return nil, ErrShape
		}
	}
	if reps < 2 {
		return nil, ErrReplicates
	}
	nRuns := len(d.Runs)

	// Pooled within-run variance of a run mean: s²_pooled/reps, with
	// nRuns·(reps−1) degrees of freedom.
	var pooledSS float64
	for _, y := range obs.Y {
		m := stats.Mean(y)
		for _, v := range y {
			dlt := v - m
			pooledSS += dlt * dlt
		}
	}
	df := nRuns * (reps - 1)
	s2 := pooledSS / float64(df)
	// Var(effect) = (2/nRuns)² · Σ Var(ȳ_run) = 4·s²/(nRuns·reps).
	seEffect := 2 * math.Sqrt(s2/float64(nRuns*reps))

	means := make([]float64, nRuns)
	for r, y := range obs.Y {
		means[r] = stats.Mean(y)
	}

	var sets [][]int
	for i := range d.Factors {
		sets = append(sets, []int{i})
	}
	if interactions {
		for i := range d.Factors {
			for j := i + 1; j < len(d.Factors); j++ {
				sets = append(sets, []int{i, j})
			}
		}
	}

	td := dist.StudentT{Nu: float64(df)}
	var out []Effect
	for _, set := range sets {
		sum := 0.0
		for r, run := range d.Runs {
			sign := 1.0
			for _, fi := range set {
				if run[fi] == 0 {
					sign = -sign
				}
			}
			sum += sign * means[r]
		}
		eff := 2 * sum / float64(nRuns)
		var names []string
		for _, fi := range set {
			names = append(names, d.Factors[fi].Name)
		}
		e := Effect{Factors: names, Effect: eff, SE: seEffect}
		if seEffect > 0 {
			e.T = eff / seEffect
			e.P = 2 * td.CDF(-math.Abs(e.T))
		} else if eff != 0 {
			e.P = 0
		} else {
			e.P = 1
		}
		out = append(out, e)
	}
	return out, nil
}
