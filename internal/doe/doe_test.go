package doe

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

func TestFullFactorialEnumeration(t *testing.T) {
	d, err := FullFactorial([]Factor{
		{Name: "A", Levels: []string{"a0", "a1"}},
		{Name: "B", Levels: []string{"b0", "b1", "b2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Runs) != 6 {
		t.Fatalf("runs = %d, want 6", len(d.Runs))
	}
	// Unique combinations.
	seen := map[string]bool{}
	for _, run := range d.Runs {
		label := d.RunLabel(run)
		if seen[label] {
			t.Fatalf("duplicate run %s", label)
		}
		seen[label] = true
	}
	if !seen["A=a1, B=b2"] || !seen["A=a0, B=b0"] {
		t.Errorf("missing corners: %v", seen)
	}
}

func TestFullFactorialValidation(t *testing.T) {
	if _, err := FullFactorial(nil); err != ErrNoFactors {
		t.Errorf("err = %v", err)
	}
	if _, err := FullFactorial([]Factor{{Name: "A", Levels: []string{"only"}}}); err != ErrBadLevels {
		t.Errorf("err = %v", err)
	}
}

func TestTwoLevelDesign(t *testing.T) {
	d, err := TwoLevel("A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Runs) != 8 {
		t.Fatalf("2^3 = %d runs", len(d.Runs))
	}
	// Balance: each factor is high in exactly half the runs.
	for f := 0; f < 3; f++ {
		high := 0
		for _, run := range d.Runs {
			high += run[f]
		}
		if high != 4 {
			t.Errorf("factor %d high in %d/8 runs", f, high)
		}
	}
}

// TestEffectsRecoverKnownModel plants y = 10 + 3A − 2B + 1.5AB + ε (with
// A, B coded ±1) and checks the contrast analysis recovers each effect.
// Effects in the 2-level convention are the change from low to high,
// i.e. 2× the coded coefficient.
func TestEffectsRecoverKnownModel(t *testing.T) {
	d, err := TwoLevel("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	obs, err := Collect(d, 50, func(levels []int) float64 {
		a := float64(2*levels[0] - 1)
		b := float64(2*levels[1] - 1)
		return 10 + 3*a - 2*b + 1.5*a*b + 0.5*rng.NormFloat64()
	})
	if err != nil {
		t.Fatal(err)
	}
	effects, err := Effects(obs, true)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"A": 6, "B": -4, "A×B": 3}
	if len(effects) != 3 {
		t.Fatalf("effects = %d, want 3", len(effects))
	}
	for _, e := range effects {
		w, ok := want[e.Name()]
		if !ok {
			t.Fatalf("unexpected effect %s", e.Name())
		}
		if math.Abs(e.Effect-w) > 0.3 {
			t.Errorf("%s = %.3g, want %.3g", e.Name(), e.Effect, w)
		}
		if !(&e).Significant() {
			t.Errorf("%s should be significant: %s", e.Name(), e)
		}
	}
}

// Significant is a test helper: effect significant at 1%.
func (e *Effect) Significant() bool { return e.P < 0.01 }

func TestEffectsNullFactorNotSignificant(t *testing.T) {
	d, err := TwoLevel("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	// B has no effect at all.
	obs, err := Collect(d, 30, func(levels []int) float64 {
		a := float64(2*levels[0] - 1)
		return 5 + 2*a + rng.NormFloat64()
	})
	if err != nil {
		t.Fatal(err)
	}
	effects, err := Effects(obs, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(effects) != 2 {
		t.Fatalf("main effects = %d", len(effects))
	}
	for _, e := range effects {
		switch e.Name() {
		case "A":
			if e.P > 0.001 {
				t.Errorf("A should be strongly significant: %s", e)
			}
		case "B":
			if e.P < 0.05 {
				t.Errorf("null factor B flagged significant: %s", e)
			}
		}
	}
}

func TestEffectsValidation(t *testing.T) {
	d, _ := TwoLevel("A")
	obs := &Observations{Design: d, Y: [][]float64{{1}, {2}}}
	if _, err := Effects(obs, false); err != ErrReplicates {
		t.Errorf("err = %v", err)
	}
	obs = &Observations{Design: d, Y: [][]float64{{1, 2}}}
	if _, err := Effects(obs, false); err != ErrShape {
		t.Errorf("err = %v", err)
	}
	mixed, _ := FullFactorial([]Factor{{Name: "A", Levels: []string{"x", "y", "z"}}, {Name: "B", Levels: []string{"0", "1"}}})
	obsM := &Observations{Design: mixed, Y: make([][]float64, len(mixed.Runs))}
	for i := range obsM.Y {
		obsM.Y[i] = []float64{1, 2}
	}
	if _, err := Effects(obsM, false); err != ErrNotTwoLevel {
		t.Errorf("err = %v", err)
	}
	ragged := &Observations{Design: d, Y: [][]float64{{1, 2}, {3}}}
	if _, err := Effects(ragged, false); err != ErrShape {
		t.Errorf("ragged err = %v", err)
	}
}

func TestCollectValidation(t *testing.T) {
	d, _ := TwoLevel("A")
	if _, err := Collect(d, 3, nil); err == nil {
		t.Error("nil measure should error")
	}
	obs, err := Collect(d, 0, func([]int) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.Y[0]) != 1 {
		t.Error("reps < 1 should clamp to 1")
	}
}

func TestEffectString(t *testing.T) {
	e := Effect{Factors: []string{"A", "B"}, Effect: 1.5, T: 3, P: 0.01}
	if !strings.Contains(e.String(), "A×B") {
		t.Errorf("String = %s", e.String())
	}
}

func TestDeterministicEffectOrdering(t *testing.T) {
	d, _ := TwoLevel("A", "B", "C")
	obs, _ := Collect(d, 2, func(levels []int) float64 {
		return float64(levels[0])
	})
	effects, err := Effects(obs, true)
	if err != nil {
		t.Fatal(err)
	}
	// Main effects first (A, B, C), then interactions (A×B, A×C, B×C).
	wantOrder := []string{"A", "B", "C", "A×B", "A×C", "B×C"}
	for i, e := range effects {
		if e.Name() != wantOrder[i] {
			t.Fatalf("order[%d] = %s, want %s", i, e.Name(), wantOrder[i])
		}
	}
}
