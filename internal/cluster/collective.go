package cluster

import (
	"math/bits"
	"time"

	"repro/internal/stats"
)

// CollectiveResult reports one collective operation: the global time at
// which every rank completed its part, relative to the operation start.
// Below the summary threshold (see Config.ResultMode) the exact
// per-rank times are materialized; at scale the result instead carries
// a fixed-size quantile sketch, so million-rank collectives allocate a
// constant number of bytes regardless of P.
type CollectiveResult struct {
	// PerRank[r] is rank r's completion time relative to the collective's
	// start (the last moment the rank participates). Nil in summary mode.
	PerRank []time.Duration
	// Root is the completion time at the root (for rooted collectives)
	// or the global maximum (for barriers).
	Root time.Duration
	// Ranks is the number of participating ranks (= len(PerRank) when
	// PerRank is present).
	Ranks int
	// Summary, in summary mode, sketches the distribution of per-rank
	// completion times in seconds (quartiles, p95/p99, mean, spread).
	Summary *stats.QuantileSketch

	max time.Duration // slowest rank, computed during the final level pass
}

// Max returns the slowest rank's completion time, the usual "time of a
// collective" summary (see Fig 5, which plots the maximum across
// processes to assess worst-case performance — Rule 10's example). The
// value is computed once while the result is assembled; calling Max in
// a hot loop no longer rescans O(P) entries.
func (r CollectiveResult) Max() time.Duration {
	if r.max == 0 && len(r.PerRank) > 0 {
		// Hand-assembled results (tests) never went through the engine's
		// final pass; fall back to scanning.
		for _, d := range r.PerRank {
			if d > r.max {
				r.max = d
			}
		}
	}
	return r.max
}

// AppendPerRankSeconds appends the per-rank times in seconds to dst and
// returns the extended slice — the allocation-free form for measurement
// loops that reuse one buffer across repetitions. Summary-mode results
// carry no per-rank data and append nothing (use Summary instead).
func (r CollectiveResult) AppendPerRankSeconds(dst []float64) []float64 {
	for _, d := range r.PerRank {
		dst = append(dst, d.Seconds())
	}
	return dst
}

// PerRankSeconds converts the per-rank times to float64 seconds for the
// statistics layer, allocating a fresh slice each call; hot paths
// should prefer AppendPerRankSeconds.
func (r CollectiveResult) PerRankSeconds() []float64 {
	return r.AppendPerRankSeconds(make([]float64, 0, len(r.PerRank)))
}

// Reduce simulates an MPI_Reduce-style reduction of `bytes` payloads to
// rank 0 over the machine's ranks, starting with the given per-rank
// start skews (nil = perfectly synchronized). It uses the standard
// two-phase algorithm real MPI libraries use for arbitrary process
// counts: ranks beyond the largest power of two 2^K ≤ p first fold their
// values into their partner (rank − 2^K), then a K-round binomial tree
// reduces among the first 2^K ranks.
//
// Transfers follow a rendezvous protocol: a message starts moving only
// once the sender's subtree is combined *and* the receiver has posted the
// matching receive, and receives are posted in program (round) order.
// This serialization is what makes the fold phase cost a full extra
// latency on the critical path, reproducing the measurable advantage of
// powers-of-two process counts (Fig 5).
//
// Evaluation is level-wise: in round j every parent r (a multiple of
// 2^(j+1)) receives from child r+2^j, whose own subtree completed in
// rounds < j, so each level is one batched sweep (see
// collective_engine.go for why this preserves bit-identical output).
func (m *Machine) Reduce(bytes int, skew []time.Duration) CollectiveResult {
	p := len(m.procs)
	if p == 1 {
		return m.unitResult()
	}
	m.beginCollective()
	fin := m.grab(p)
	defer m.release(fin)
	root := m.reduceLevels(bytes, skew, fin)
	return m.finishResult(fin, root)
}

// reduceLevels runs the reduction, writing each rank's completion time
// into fin (zeroed, len p) and returning the root's completion time.
func (m *Machine) reduceLevels(bytes int, skew []time.Duration, fin []time.Duration) time.Duration {
	p := len(m.procs)
	// acc[r] is the time rank r's subtree value is fully combined so
	// far; children finalize strictly before their parent reads them.
	acc := m.grab(p)
	defer m.release(acc)
	if skew != nil {
		copy(acc, skew)
	}
	pow2 := 1 << (bits.Len(uint(p)) - 1)
	extra := p - pow2

	// recv performs one rendezvous receive from src into dst, drawing
	// from dst's stream only.
	recv := func(dst, src int, fs *FaultStats) {
		st := &m.streams[dst]
		sendReady := acc[src] + m.cfg.SendOverhead
		begin := sendReady
		if acc[dst] > begin {
			begin = acc[dst] // receiver posts late: sender blocks
		}
		arrive := begin + m.msgLatencySrc(st, fs, src, dst, bytes, begin)
		if arrive > fin[src] {
			fin[src] = arrive // sender participates until delivery
		}
		if arrive > acc[dst] {
			acc[dst] = arrive
		}
		acc[dst] += m.opCostSrc(st, dst, acc[dst])
	}

	// Fold level: ranks pow2..p-1 push their values into rank − pow2.
	m.runLevel(extra, func(i int, fs *FaultStats) { recv(i, i+pow2, fs) })
	// Binomial levels. step/half mutate between (not during) level runs,
	// so one closure serves every level — per-sweep allocations stay
	// constant in P instead of growing with the tree depth.
	var step, half int
	level := func(k int, fs *FaultStats) {
		r := k * step
		recv(r, r+half, fs)
	}
	for j := 0; 1<<j < pow2; j++ {
		step = 1 << (j + 1)
		half = 1 << j
		m.runLevel(pow2/step, level)
	}
	for r := 0; r < pow2; r++ {
		if acc[r] > fin[r] {
			fin[r] = acc[r]
		}
	}
	return fin[0]
}

// Bcast simulates a binomial-tree broadcast of `bytes` from rank 0 and
// returns per-rank receive-completion times relative to the start.
// Round k's senders (ranks < 2^k) and receivers (ranks 2^k..2^(k+1)-1)
// are disjoint, so each round is one batched level.
func (m *Machine) Bcast(bytes int, skew []time.Duration) CollectiveResult {
	p := len(m.procs)
	if p == 1 {
		return m.unitResult()
	}
	m.beginCollective()
	fin := m.grab(p)
	defer m.release(fin)
	m.bcastLevels(bytes, skew, fin)
	res := m.finishResult(fin, 0)
	res.Root = res.Max()
	return res
}

func (m *Machine) bcastLevels(bytes int, skew []time.Duration, fin []time.Duration) {
	p := len(m.procs)
	have := m.grab(p) // time each rank holds the value (-1 = not yet)
	defer m.release(have)
	for r := 1; r < p; r++ {
		have[r] = -1
	}
	if skew != nil {
		have[0] = skew[0]
	}
	var width int
	level := func(r int, fs *FaultStats) {
		dst := r + width
		if have[r] < 0 {
			return
		}
		sendAt := have[r] + m.cfg.SendOverhead
		if skew != nil && skew[r] > sendAt {
			sendAt = skew[r]
		}
		arrive := sendAt + m.msgLatencySrc(&m.streams[dst], fs, r, dst, bytes, sendAt)
		if skew != nil && skew[dst] > arrive {
			arrive = skew[dst]
		}
		have[dst] = arrive
		if arrive > fin[dst] {
			fin[dst] = arrive
		}
		if sendAt > fin[r] {
			fin[r] = sendAt
		}
	}
	for k := 0; 1<<k < p; k++ {
		width = 1 << k
		n := width
		if n > p-width {
			n = p - width
		}
		m.runLevel(n, level)
	}
}

// Barrier simulates a dissemination barrier: in round k every rank sends
// to (r + 2^k) mod p and proceeds once it hears from (r − 2^k) mod p.
// Per-rank exit times (relative to the start) are returned. Barriers
// synchronize "commonly well enough" (§4.2.1) but give no timing
// guarantee — the returned skew spread is exactly the residual error a
// barrier-synchronized measurement would see. Every rank is a receiver
// exactly once per round, so each round is one batched level of p
// messages.
func (m *Machine) Barrier(skew []time.Duration) CollectiveResult {
	p := len(m.procs)
	if p == 1 {
		return m.unitResult()
	}
	m.beginCollective()
	fin := m.grab(p)
	defer m.release(fin)
	m.barrierLevels(skew, fin)
	res := m.finishResult(fin, 0)
	res.Root = res.Max()
	return res
}

func (m *Machine) barrierLevels(skew []time.Duration, fin []time.Duration) {
	p := len(m.procs)
	cur := m.grab(p)
	next := m.grab(p)
	defer m.release(cur)
	defer m.release(next)
	if skew != nil {
		copy(cur, skew)
	}
	var shift int
	level := func(r int, fs *FaultStats) {
		src := r - shift
		if src < 0 {
			src += p
		}
		sendAt := cur[src] + m.cfg.SendOverhead
		arrive := sendAt + m.msgLatencySrc(&m.streams[r], fs, src, r, 1, sendAt)
		if cur[r] > arrive {
			next[r] = cur[r]
		} else {
			next[r] = arrive
		}
	}
	for k := 0; 1<<k < p; k++ {
		shift = 1 << k
		m.runLevel(p, level)
		cur, next = next, cur
	}
	copy(fin, cur)
}
