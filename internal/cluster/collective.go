package cluster

import (
	"math/bits"
	"time"
)

// CollectiveResult reports one collective operation: the global time at
// which every rank completed its part, relative to the operation start.
type CollectiveResult struct {
	// PerRank[r] is rank r's completion time relative to the collective's
	// start (the last moment the rank participates).
	PerRank []time.Duration
	// Root is the completion time at the root (for rooted collectives)
	// or the global maximum (for barriers).
	Root time.Duration
}

// Max returns the slowest rank's completion time, the usual "time of a
// collective" summary (see Fig 5, which plots the maximum across
// processes to assess worst-case performance — Rule 10's example).
func (r CollectiveResult) Max() time.Duration {
	var m time.Duration
	for _, d := range r.PerRank {
		if d > m {
			m = d
		}
	}
	return m
}

// PerRankSeconds converts the per-rank times to float64 seconds for the
// statistics layer.
func (r CollectiveResult) PerRankSeconds() []float64 {
	out := make([]float64, len(r.PerRank))
	for i, d := range r.PerRank {
		out[i] = d.Seconds()
	}
	return out
}

// Reduce simulates an MPI_Reduce-style reduction of `bytes` payloads to
// rank 0 over the machine's ranks, starting with the given per-rank
// start skews (nil = perfectly synchronized). It uses the standard
// two-phase algorithm real MPI libraries use for arbitrary process
// counts: ranks beyond the largest power of two 2^K ≤ p first fold their
// values into their partner (rank − 2^K), then a K-round binomial tree
// reduces among the first 2^K ranks.
//
// Transfers follow a rendezvous protocol: a message starts moving only
// once the sender's subtree is combined *and* the receiver has posted the
// matching receive, and receives are posted in program (round) order.
// This serialization is what makes the fold phase cost a full extra
// latency on the critical path, reproducing the measurable advantage of
// powers-of-two process counts (Fig 5).
func (m *Machine) Reduce(bytes int, skew []time.Duration) CollectiveResult {
	p := len(m.procs)
	res := CollectiveResult{PerRank: make([]time.Duration, p)}
	if p == 1 {
		return res
	}
	start := make([]time.Duration, p)
	for r := 0; r < p; r++ {
		if skew != nil {
			start[r] = skew[r]
		}
	}

	// pow2 is the largest power of two <= p; ranks pow2..p-1 fold into
	// ranks 0..extra-1 before the binomial phase.
	pow2 := 1 << (bits.Len(uint(p)) - 1)
	extra := p - pow2

	finish := func(r int, at time.Duration) {
		if at > res.PerRank[r] {
			res.PerRank[r] = at
		}
	}

	// ready[r] is the time rank r's subtree value is fully combined.
	// Children have strictly higher ranks than their parents, so one pass
	// from high to low ranks resolves all dependencies.
	ready := make([]time.Duration, pow2)
	for r := pow2 - 1; r >= 0; r-- {
		cur := start[r]

		// recv performs one rendezvous receive from src into r.
		recv := func(src int, srcReady time.Duration) {
			sendReady := srcReady + m.cfg.SendOverhead
			begin := sendReady
			if cur > begin {
				begin = cur // receiver posts late: sender blocks
			}
			arrive := begin + m.msgLatency(src, r, bytes, begin)
			finish(src, arrive) // sender participates until delivery
			if arrive > cur {
				cur = arrive
			}
			cur += m.opCost(r, cur)
		}

		if r < extra {
			recv(r+pow2, start[r+pow2])
		}
		limit := bits.TrailingZeros(uint(r))
		if r == 0 {
			limit = bits.Len(uint(pow2)) - 1
		}
		for j := 0; j < limit; j++ {
			c := r + 1<<j
			if c < pow2 {
				recv(c, ready[c])
			}
		}
		ready[r] = cur
		finish(r, cur)
	}
	res.Root = res.PerRank[0]
	return res
}

// Bcast simulates a binomial-tree broadcast of `bytes` from rank 0 and
// returns per-rank receive-completion times relative to the start.
func (m *Machine) Bcast(bytes int, skew []time.Duration) CollectiveResult {
	p := len(m.procs)
	res := CollectiveResult{PerRank: make([]time.Duration, p)}
	if p == 1 {
		return res
	}
	have := make([]time.Duration, p)
	for r := 1; r < p; r++ {
		have[r] = -1
	}
	if skew != nil {
		have[0] = skew[0]
	}
	// Standard binomial broadcast: in round k, every rank r < 2^k that
	// has the value sends to r + 2^k.
	for k := 0; 1<<k < p; k++ {
		for r := 0; r < 1<<k && r < p; r++ {
			dst := r + 1<<k
			if dst >= p || have[r] < 0 {
				continue
			}
			sendAt := have[r] + m.cfg.SendOverhead
			if skew != nil && skew[r] > sendAt {
				sendAt = skew[r]
			}
			arrive := sendAt + m.msgLatency(r, dst, bytes, sendAt)
			if skew != nil && skew[dst] > arrive {
				arrive = skew[dst]
			}
			have[dst] = arrive
			if arrive > res.PerRank[dst] {
				res.PerRank[dst] = arrive
			}
			if sendAt > res.PerRank[r] {
				res.PerRank[r] = sendAt
			}
		}
	}
	res.Root = res.Max()
	return res
}

// Barrier simulates a dissemination barrier: in round k every rank sends
// to (r + 2^k) mod p and proceeds once it hears from (r − 2^k) mod p.
// Per-rank exit times (relative to the start) are returned. Barriers
// synchronize "commonly well enough" (§4.2.1) but give no timing
// guarantee — the returned skew spread is exactly the residual error a
// barrier-synchronized measurement would see.
func (m *Machine) Barrier(skew []time.Duration) CollectiveResult {
	p := len(m.procs)
	res := CollectiveResult{PerRank: make([]time.Duration, p)}
	cur := make([]time.Duration, p)
	for r := 0; r < p; r++ {
		if skew != nil {
			cur[r] = skew[r]
		}
	}
	if p == 1 {
		return res
	}
	next := make([]time.Duration, p)
	for k := 0; 1<<k < p; k++ {
		for r := 0; r < p; r++ {
			src := ((r-1<<k)%p + p) % p
			sendAt := cur[src] + m.cfg.SendOverhead
			arrive := sendAt + m.msgLatency(src, r, 1, sendAt)
			if cur[r] > arrive {
				next[r] = cur[r]
			} else {
				next[r] = arrive
			}
		}
		cur, next = next, cur
	}
	copy(res.PerRank, cur)
	res.Root = res.Max()
	return res
}
