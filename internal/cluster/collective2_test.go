package cluster

import (
	"testing"
	"time"
)

func TestAllreduceCostsReducePlusBcast(t *testing.T) {
	m := mustNew(t, Quiet(16, 1), 16, 1)
	ar := m.Allreduce(8, nil)
	m2 := mustNew(t, Quiet(16, 1), 16, 1)
	red := m2.Reduce(8, nil)
	// Allreduce must cost at least the reduce phase everywhere.
	for r, d := range ar.PerRank {
		if r == 0 {
			continue
		}
		if d <= red.Root {
			t.Errorf("rank %d finished allreduce (%v) before reduce completes (%v)",
				r, d, red.Root)
		}
	}
	// Rank 0 holds the value right at reduce completion.
	if ar.PerRank[0] != ar.Root {
		t.Error("root completion mismatch")
	}
	// Trivial p=1.
	m1 := mustNew(t, Quiet(1, 1), 1, 1)
	if m1.Allreduce(8, nil).Max() != 0 {
		t.Error("p=1 allreduce should be free")
	}
}

func TestGatherMessageGrowth(t *testing.T) {
	// With a strong bandwidth term, gather (payload grows toward the
	// root) costs more than reduce (fixed payload) for the same byte
	// count per rank.
	cfg := Quiet(16, 1)
	cfg.BandwidthBps = 1e8 // make the bandwidth term dominant
	mg := mustNew(t, cfg, 16, 2)
	gather := mg.Gather(100000, nil)
	mr := mustNew(t, cfg, 16, 2)
	reduce := mr.Reduce(100000, nil)
	if gather.Root <= reduce.Root {
		t.Errorf("gather (%v) should exceed reduce (%v) under bandwidth pressure",
			gather.Root, reduce.Root)
	}
	m1 := mustNew(t, Quiet(1, 1), 1, 1)
	if m1.Gather(8, nil).Max() != 0 {
		t.Error("p=1 gather should be free")
	}
}

func TestGatherNonPowerOfTwo(t *testing.T) {
	m := mustNew(t, Quiet(16, 1), 13, 3)
	res := m.Gather(64, nil)
	if res.Root <= 0 {
		t.Fatal("gather produced no time")
	}
	for r, d := range res.PerRank {
		if d < 0 {
			t.Errorf("rank %d negative completion %v", r, d)
		}
	}
	// Root is the slowest participant in a gather.
	if res.Max() != res.Root {
		t.Error("root should finish last")
	}
}

func TestScatterReachesAllAndHalves(t *testing.T) {
	m := mustNew(t, Quiet(16, 1), 16, 4)
	res := m.Scatter(64, nil)
	for r := 1; r < 16; r++ {
		if res.PerRank[r] <= 0 {
			t.Errorf("rank %d never received its block", r)
		}
	}
	// Scatter of one block ≈ bcast cost order: log p rounds.
	bcM := mustNew(t, Quiet(16, 1), 16, 4)
	bc := bcM.Bcast(64, nil)
	if res.Max() > 3*bc.Max() {
		t.Errorf("scatter (%v) wildly above bcast (%v)", res.Max(), bc.Max())
	}
}

func TestAllgatherRingLinearInP(t *testing.T) {
	// Ring allgather is Θ(p): doubling p should roughly double time on
	// the quiet machine.
	t8 := mustNew(t, Quiet(64, 1), 8, 5).Allgather(64, nil).Max()
	t16 := mustNew(t, Quiet(64, 1), 16, 5).Allgather(64, nil).Max()
	ratio := float64(t16) / float64(t8)
	if ratio < 1.8 || ratio > 2.6 {
		t.Errorf("allgather scaling ratio = %.2f, want ≈2 (ring is Θ(p))", ratio)
	}
	m1 := mustNew(t, Quiet(1, 1), 1, 1)
	if m1.Allgather(8, nil).Max() != 0 {
		t.Error("p=1 allgather should be free")
	}
}

func TestAlltoallPairwise(t *testing.T) {
	// Power-of-two p uses XOR pairing; either way every rank pays p−1
	// exchanges.
	res := mustNew(t, Quiet(16, 1), 16, 6).Alltoall(64, nil)
	if res.Max() <= 0 {
		t.Fatal("alltoall produced no time")
	}
	// Non-power-of-two path.
	res13 := mustNew(t, Quiet(16, 1), 13, 6).Alltoall(64, nil)
	if res13.Max() <= 0 {
		t.Fatal("non-power-of-two alltoall produced no time")
	}
	// Alltoall (p−1 serialized exchanges) must cost more than a single
	// allgather step count on the same machine... compare against
	// broadcast which is only log p.
	bc := mustNew(t, Quiet(16, 1), 16, 6).Bcast(64, nil)
	if res.Max() <= bc.Max() {
		t.Errorf("alltoall (%v) should exceed bcast (%v)", res.Max(), bc.Max())
	}
	m1 := mustNew(t, Quiet(1, 1), 1, 1)
	if m1.Alltoall(8, nil).Max() != 0 {
		t.Error("p=1 alltoall should be free")
	}
}

func TestCollectivesRespectSkew(t *testing.T) {
	skew := make([]time.Duration, 8)
	skew[5] = 2 * time.Millisecond
	for name, run := range map[string]func(*Machine) CollectiveResult{
		"allreduce": func(m *Machine) CollectiveResult { return m.Allreduce(8, skew) },
		"gather":    func(m *Machine) CollectiveResult { return m.Gather(8, skew) },
		"allgather": func(m *Machine) CollectiveResult { return m.Allgather(8, skew) },
		"alltoall":  func(m *Machine) CollectiveResult { return m.Alltoall(8, skew) },
	} {
		m := mustNew(t, Quiet(8, 1), 8, 7)
		res := run(m)
		if res.Max() < 2*time.Millisecond {
			t.Errorf("%s: late rank ignored (max %v)", name, res.Max())
		}
	}
}

func TestCollectivesDeterministicUnderSeed(t *testing.T) {
	run := func() []time.Duration {
		m := mustNew(t, PizDaint(), 24, 99)
		var out []time.Duration
		out = append(out, m.Allreduce(8, nil).PerRank...)
		out = append(out, m.Gather(64, nil).PerRank...)
		out = append(out, m.Scatter(64, nil).PerRank...)
		out = append(out, m.Allgather(64, nil).PerRank...)
		out = append(out, m.Alltoall(64, nil).PerRank...)
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("collective replay diverged at %d", i)
		}
	}
}
