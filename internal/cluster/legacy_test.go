package cluster

import (
	"math/bits"
	"sort"
	"testing"
	"time"
)

// This file pins the level-wise per-rank-stream engine against the
// pre-rewrite sequential implementations, kept verbatim below (modulo
// the msgLatency/opCost entry points, which now take the drawing stream
// explicitly). Two contracts are pinned:
//
//  1. On a noise-free (Quiet) system every draw is value-neutral, so the
//     rendezvous computation graph — not the RNG discipline — fully
//     determines the result. New and legacy engines must agree
//     bit-for-bit. This proves the level-wise sweep evaluates the exact
//     same dependency graph as the old high-to-low pass.
//  2. On a noisy system the draws differ (machine stream vs per-rank
//     streams) but the distributions must match: medians and means of
//     Max() over a deterministic seed set agree within tolerance.

func refOpCost(m *Machine, rank int, at time.Duration) time.Duration {
	return m.opCostSrc(m.rng, rank, at)
}

// refReduce is the pre-rewrite Reduce: one high-to-low pass on the
// machine stream.
func refReduce(m *Machine, bytes int, skew []time.Duration) CollectiveResult {
	p := len(m.procs)
	res := CollectiveResult{PerRank: make([]time.Duration, p), Ranks: p}
	if p == 1 {
		return res
	}
	start := make([]time.Duration, p)
	for r := 0; r < p; r++ {
		if skew != nil {
			start[r] = skew[r]
		}
	}
	pow2 := 1 << (bits.Len(uint(p)) - 1)
	extra := p - pow2
	finish := func(r int, at time.Duration) {
		if at > res.PerRank[r] {
			res.PerRank[r] = at
		}
	}
	ready := make([]time.Duration, pow2)
	for r := pow2 - 1; r >= 0; r-- {
		cur := start[r]
		recv := func(src int, srcReady time.Duration) {
			sendReady := srcReady + m.cfg.SendOverhead
			begin := sendReady
			if cur > begin {
				begin = cur
			}
			arrive := begin + m.msgLatency(src, r, bytes, begin)
			finish(src, arrive)
			if arrive > cur {
				cur = arrive
			}
			cur += refOpCost(m, r, cur)
		}
		if r < extra {
			recv(r+pow2, start[r+pow2])
		}
		limit := bits.TrailingZeros(uint(r))
		if r == 0 {
			limit = bits.Len(uint(pow2)) - 1
		}
		for j := 0; j < limit; j++ {
			c := r + 1<<j
			if c < pow2 {
				recv(c, ready[c])
			}
		}
		ready[r] = cur
		finish(r, cur)
	}
	res.Root = res.PerRank[0]
	return res
}

// refBcast is the pre-rewrite binomial broadcast.
func refBcast(m *Machine, bytes int, skew []time.Duration) CollectiveResult {
	p := len(m.procs)
	res := CollectiveResult{PerRank: make([]time.Duration, p), Ranks: p}
	if p == 1 {
		return res
	}
	have := make([]time.Duration, p)
	for r := 1; r < p; r++ {
		have[r] = -1
	}
	if skew != nil {
		have[0] = skew[0]
	}
	for k := 0; 1<<k < p; k++ {
		for r := 0; r < 1<<k && r < p; r++ {
			dst := r + 1<<k
			if dst >= p || have[r] < 0 {
				continue
			}
			sendAt := have[r] + m.cfg.SendOverhead
			if skew != nil && skew[r] > sendAt {
				sendAt = skew[r]
			}
			arrive := sendAt + m.msgLatency(r, dst, bytes, sendAt)
			if skew != nil && skew[dst] > arrive {
				arrive = skew[dst]
			}
			have[dst] = arrive
			if arrive > res.PerRank[dst] {
				res.PerRank[dst] = arrive
			}
			if sendAt > res.PerRank[r] {
				res.PerRank[r] = sendAt
			}
		}
	}
	res.Root = res.Max()
	return res
}

// refBarrier is the pre-rewrite dissemination barrier.
func refBarrier(m *Machine, skew []time.Duration) CollectiveResult {
	p := len(m.procs)
	res := CollectiveResult{PerRank: make([]time.Duration, p), Ranks: p}
	cur := make([]time.Duration, p)
	for r := 0; r < p; r++ {
		if skew != nil {
			cur[r] = skew[r]
		}
	}
	if p == 1 {
		return res
	}
	next := make([]time.Duration, p)
	for k := 0; 1<<k < p; k++ {
		for r := 0; r < p; r++ {
			src := ((r-1<<k)%p + p) % p
			sendAt := cur[src] + m.cfg.SendOverhead
			arrive := sendAt + m.msgLatency(src, r, 1, sendAt)
			if cur[r] > arrive {
				next[r] = cur[r]
			} else {
				next[r] = arrive
			}
		}
		cur, next = next, cur
	}
	copy(res.PerRank, cur)
	res.Root = res.Max()
	return res
}

// TestLevelSweepMatchesLegacyGraph: on a Quiet system every stochastic
// draw multiplies by exactly 1, so any difference between engines would
// be a difference in the dependency graph itself. Bit-identity required.
func TestLevelSweepMatchesLegacyGraph(t *testing.T) {
	for _, p := range []int{2, 3, 13, 16, 64, 100} {
		skew := make([]time.Duration, p)
		for r := range skew {
			skew[r] = time.Duration((r*37)%11) * time.Microsecond
		}
		for name, pair := range map[string]struct {
			ref func(*Machine) CollectiveResult
			new func(*Machine) CollectiveResult
		}{
			"reduce": {
				func(m *Machine) CollectiveResult { return refReduce(m, 64, skew) },
				func(m *Machine) CollectiveResult { return m.Reduce(64, skew) },
			},
			"bcast": {
				func(m *Machine) CollectiveResult { return refBcast(m, 64, skew) },
				func(m *Machine) CollectiveResult { return m.Bcast(64, skew) },
			},
			"barrier": {
				func(m *Machine) CollectiveResult { return refBarrier(m, skew) },
				func(m *Machine) CollectiveResult { return m.Barrier(skew) },
			},
		} {
			ref := pair.ref(mustNew(t, Quiet(64, 32), p, 5))
			got := pair.new(mustNew(t, Quiet(64, 32), p, 5))
			if got.Root != ref.Root {
				t.Errorf("%s p=%d: root %v, legacy %v", name, p, got.Root, ref.Root)
			}
			for r := range ref.PerRank {
				if got.PerRank[r] != ref.PerRank[r] {
					t.Fatalf("%s p=%d rank %d: %v, legacy %v",
						name, p, r, got.PerRank[r], ref.PerRank[r])
				}
			}
		}
	}
}

// TestStreamRewriteStatisticalEquivalence: with noise enabled the two
// engines consume different random streams, so individual runs differ,
// but the distribution of collective completion times must not move.
// The seed set is fixed, so the medians/means below are deterministic
// and this test pins the noisy behaviour of the rewrite.
func TestStreamRewriteStatisticalEquivalence(t *testing.T) {
	const p = 64
	const n = 300
	for name, pair := range map[string]struct {
		ref func(*Machine) CollectiveResult
		new func(*Machine) CollectiveResult
	}{
		"reduce": {
			func(m *Machine) CollectiveResult { return refReduce(m, 64, nil) },
			func(m *Machine) CollectiveResult { return m.Reduce(64, nil) },
		},
		"bcast": {
			func(m *Machine) CollectiveResult { return refBcast(m, 64, nil) },
			func(m *Machine) CollectiveResult { return m.Bcast(64, nil) },
		},
		"barrier": {
			func(m *Machine) CollectiveResult { return refBarrier(m, nil) },
			func(m *Machine) CollectiveResult { return m.Barrier(nil) },
		},
	} {
		refMax := make([]float64, 0, n)
		newMax := make([]float64, 0, n)
		for seed := uint64(1); seed <= n; seed++ {
			refMax = append(refMax, pair.ref(mustNew(t, PizDaint(), p, seed)).Max().Seconds())
			newMax = append(newMax, pair.new(mustNew(t, PizDaint(), p, seed)).Max().Seconds())
		}
		sort.Float64s(refMax)
		sort.Float64s(newMax)
		medRef, medNew := refMax[n/2], newMax[n/2]
		if rel := (medNew - medRef) / medRef; rel > 0.10 || rel < -0.10 {
			t.Errorf("%s: median moved %.1f%% (legacy %.3gs, new %.3gs)",
				name, 100*rel, medRef, medNew)
		}
		var sumRef, sumNew float64
		for i := range refMax {
			sumRef += refMax[i]
			sumNew += newMax[i]
		}
		if rel := (sumNew - sumRef) / sumRef; rel > 0.10 || rel < -0.10 {
			t.Errorf("%s: mean moved %.1f%% (legacy %.3gs, new %.3gs)",
				name, 100*rel, sumRef/n, sumNew/n)
		}
	}
}

// TestMillionRankSummarySmoke is the acceptance-criterion sweep: one
// Allreduce across 2^20 ranks in summary mode must complete without
// materializing any O(P) result state.
func TestMillionRankSummarySmoke(t *testing.T) {
	const p = 1 << 20
	cfg := Quiet(1<<14, 64)
	cfg.ResultMode = ModeSummary
	m := mustNew(t, cfg, p, 1)
	res := m.Allreduce(8, nil)
	if res.PerRank != nil {
		t.Fatal("summary mode must not materialize PerRank")
	}
	if res.Summary == nil || res.Summary.Count() != p {
		t.Fatalf("sketch must cover all %d ranks", p)
	}
	if res.Ranks != p {
		t.Errorf("Ranks = %d, want %d", res.Ranks, p)
	}
	if res.Root <= 0 || res.Max() < res.Root {
		t.Errorf("implausible times: root %v max %v", res.Root, res.Max())
	}
	if med := res.Summary.Quantile(0.5); med <= 0 || med > res.Max().Seconds() {
		t.Errorf("implausible median %g", med)
	}
}

// TestSummaryAllocsFlat pins the allocation-flat claim: per-sweep
// allocations in summary mode must not grow with P once the machine's
// scratch pool is warm.
func TestSummaryAllocsFlat(t *testing.T) {
	allocs := func(p int) float64 {
		cfg := Quiet(1<<12, 64)
		cfg.ResultMode = ModeSummary
		m := mustNew(t, cfg, p, 1)
		m.Allreduce(8, nil) // warm the buffer pool
		return testing.AllocsPerRun(3, func() { m.Allreduce(8, nil) })
	}
	small, big := allocs(1<<15), allocs(1<<16)
	if small != big {
		t.Errorf("summary-mode allocations scale with P: %v at 2^15 vs %v at 2^16", small, big)
	}
	if big > 32 {
		t.Errorf("summary-mode sweep allocates too much: %v allocs", big)
	}
}
