package cluster

import (
	"testing"
	"time"
)

// Error-path and degenerate-topology coverage: zero-byte payloads,
// single-node machines, and single-rank (trivial) collectives.

func TestZeroByteMessages(t *testing.T) {
	m, err := New(PizDora(), 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	lat := m.PingPong(0, 15, 0, 50)
	for i, d := range lat {
		if d <= 0 {
			t.Fatalf("round %d: zero-byte latency %v must stay positive", i, d)
		}
	}
	// Zero-byte collectives complete with positive critical paths.
	for name, res := range map[string]CollectiveResult{
		"reduce":    m.Reduce(0, nil),
		"bcast":     m.Bcast(0, nil),
		"gather":    m.Gather(0, nil),
		"scatter":   m.Scatter(0, nil),
		"allgather": m.Allgather(0, nil),
		"alltoall":  m.Alltoall(0, nil),
	} {
		if res.Max() <= 0 {
			t.Errorf("%s: zero-byte collective max %v", name, res.Max())
		}
	}
	// A zero-byte payload must be cheaper than a large one (no
	// bandwidth term).
	small := m.Reduce(0, nil).Max()
	large := m.Reduce(1<<20, nil).Max()
	if large <= small {
		t.Errorf("1MiB reduce %v not above zero-byte reduce %v", large, small)
	}
}

func TestSingleNodeTopology(t *testing.T) {
	// All ranks share one node: every transfer is intra-node and the
	// network model's inter-node terms never fire.
	m, err := New(Quiet(1, 8), 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	lat := m.PingPong(0, 7, 64, 20)
	for _, d := range lat {
		if d <= 0 {
			t.Fatal("intra-node latency must be positive")
		}
		// Quiet intra-node latency is 100ns one-way + overhead; anything
		// near the 1µs inter-node floor means the wrong path was taken.
		if d > 2*time.Microsecond {
			t.Fatalf("single-node latency %v looks like an inter-node draw", d)
		}
	}
	for _, res := range []CollectiveResult{
		m.Reduce(8, nil), m.Bcast(8, nil), m.Barrier(nil), m.Alltoall(8, nil),
	} {
		if res.Max() <= 0 {
			t.Fatal("single-node collective must have positive cost")
		}
	}
	if m.NodeOf(0) != m.NodeOf(7) {
		t.Error("all ranks must share node 0")
	}
}

func TestSingleRankCollectivesTrivial(t *testing.T) {
	m, err := New(Quiet(1, 1), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]CollectiveResult{
		"reduce":    m.Reduce(8, nil),
		"allreduce": m.Allreduce(8, nil),
		"bcast":     m.Bcast(8, nil),
		"barrier":   m.Barrier(nil),
		"gather":    m.Gather(8, nil),
		"scatter":   m.Scatter(8, nil),
		"allgather": m.Allgather(8, nil),
		"alltoall":  m.Alltoall(8, nil),
	} {
		if len(res.PerRank) != 1 || res.PerRank[0] != 0 || res.Root != 0 {
			t.Errorf("%s on one rank must be free: %+v", name, res)
		}
	}
	// Sync on a single rank is trivially perfect.
	if sync := m.BarrierSync(); sync.MaxSkew != 0 {
		t.Errorf("single-rank barrier skew %v", sync.MaxSkew)
	}
}
