package cluster

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/stats"
)

func mustNew(t *testing.T, cfg Config, ranks int, seed uint64) *Machine {
	t.Helper()
	m, err := New(cfg, ranks, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, 4, 1); err == nil {
		t.Error("zero config should error")
	}
	if _, err := New(Quiet(2, 2), 0, 1); err == nil {
		t.Error("zero ranks should error")
	}
	if _, err := New(Quiet(2, 2), 5, 1); err == nil {
		t.Error("overcommit should error")
	}
}

func TestPlacement(t *testing.T) {
	packed := mustNew(t, Quiet(4, 2), 8, 1)
	if packed.NodeOf(0) != 0 || packed.NodeOf(1) != 0 || packed.NodeOf(2) != 1 {
		t.Errorf("packed layout wrong: %d %d %d",
			packed.NodeOf(0), packed.NodeOf(1), packed.NodeOf(2))
	}
	cfg := Quiet(4, 2)
	cfg.Placement = Scattered
	scat := mustNew(t, cfg, 8, 1)
	if scat.NodeOf(0) != 0 || scat.NodeOf(1) != 1 || scat.NodeOf(4) != 0 {
		t.Errorf("scattered layout wrong: %d %d %d",
			scat.NodeOf(0), scat.NodeOf(1), scat.NodeOf(4))
	}
	if Packed.String() != "packed" || Scattered.String() != "scattered" {
		t.Error("Placement.String")
	}
}

func TestClockModelRoundTrip(t *testing.T) {
	cfg := Quiet(2, 2)
	cfg.ClockOffsetMax = time.Millisecond
	cfg.ClockDriftPPM = 50
	m := mustNew(t, cfg, 4, 7)
	for r := 0; r < 4; r++ {
		for _, g := range []time.Duration{0, time.Second, time.Hour} {
			local := m.LocalTime(r, g)
			back := m.GlobalFromLocal(r, local)
			if d := back - g; d < -time.Microsecond || d > time.Microsecond {
				t.Errorf("rank %d: round trip error %v at %v", r, d, g)
			}
		}
	}
	// With offsets enabled, ranks must disagree about "now".
	same := true
	base := m.LocalTime(0, time.Second)
	for r := 1; r < 4; r++ {
		if m.LocalTime(r, time.Second) != base {
			same = false
		}
	}
	if same {
		t.Error("clock offsets had no effect")
	}
}

func TestClockGranularityQuantizes(t *testing.T) {
	cfg := Quiet(1, 2)
	cfg.ClockGranularity = time.Microsecond
	m := mustNew(t, cfg, 2, 1)
	got := m.LocalTime(0, 1234567*time.Nanosecond)
	if got%time.Microsecond != 0 {
		t.Errorf("granular clock read %v is not quantized", got)
	}
}

func TestPingPongQuietExact(t *testing.T) {
	m := mustNew(t, Quiet(2, 1), 2, 3)
	// Quiet config: latency exactly LatFloor + bytes/bw, overhead 100ns.
	lats := m.PingPong(0, 1, 0, 5)
	want := time.Microsecond + 100*time.Nanosecond
	for _, l := range lats {
		if l != want {
			t.Errorf("quiet ping-pong latency = %v, want %v", l, want)
		}
	}
	// Payload adds the bandwidth term: 10 kB at 10 GB/s = 1µs one-way.
	lats = m.PingPong(0, 1, 10000, 1)
	want = time.Microsecond + 100*time.Nanosecond + time.Microsecond
	if lats[0] != want {
		t.Errorf("payload latency = %v, want %v", lats[0], want)
	}
}

func TestPingPongDoraDistribution(t *testing.T) {
	m := mustNew(t, PizDora(), 48, 42)
	raw := m.PingPong(0, 47, 64, 20000)
	xs := make([]float64, len(raw))
	for i, d := range raw {
		xs[i] = float64(d) / float64(time.Microsecond)
	}
	med := stats.Median(xs)
	min := stats.Min(xs)
	if med < 1.6 || med > 2.0 {
		t.Errorf("Dora 64B median = %.3f µs, want ≈1.77", med)
	}
	if min < 1.45 || min > 1.7 {
		t.Errorf("Dora min = %.3f µs, want ≈1.57", min)
	}
	if stats.Skewness(xs) <= 0 {
		t.Error("latency distribution should be right-skewed")
	}
	if stats.Max(xs) < med*1.5 {
		t.Error("expected a heavy tail beyond 1.5× the median")
	}
}

func TestPilatusVsDoraShape(t *testing.T) {
	// The Fig 3/4 relationship: Pilatus has a lower minimum but a higher
	// median and a heavier tail than Piz Dora.
	// Ranks must sit on different nodes (the paper's setup: "two
	// processes on different compute nodes").
	dora := mustNew(t, PizDora(), 48, 1)
	pil := mustNew(t, Pilatus(), 48, 1)
	const n = 200000
	dx := make([]float64, n)
	px := make([]float64, n)
	for i, d := range dora.PingPong(0, 47, 64, n) {
		dx[i] = float64(d) / float64(time.Microsecond)
	}
	for i, d := range pil.PingPong(0, 47, 64, n) {
		px[i] = float64(d) / float64(time.Microsecond)
	}
	if !(stats.Min(px) < stats.Min(dx)) {
		t.Errorf("Pilatus min %.3f should undercut Dora min %.3f",
			stats.Min(px), stats.Min(dx))
	}
	if !(stats.Median(px) > stats.Median(dx)) {
		t.Errorf("Pilatus median %.3f should exceed Dora median %.3f",
			stats.Median(px), stats.Median(dx))
	}
	if !(stats.QuantileOf(px, 0.9999) > stats.QuantileOf(dx, 0.9999)) {
		t.Errorf("Pilatus extreme tail should be heavier")
	}
	// Mean difference in the ballpark of the paper's 0.108 µs.
	diff := stats.Mean(px) - stats.Mean(dx)
	if diff < 0.03 || diff > 0.3 {
		t.Errorf("mean difference = %.3f µs, want ≈0.1", diff)
	}
}

func TestReduceQuietTwoRanks(t *testing.T) {
	m := mustNew(t, Quiet(2, 1), 2, 5)
	res := m.Reduce(8, nil)
	// Rank 1 is send-ready at SendOverhead (100ns); the rendezvous
	// transfer takes 1µs + 0.8ns; the sender participates until delivery.
	wantLeaf := 100*time.Nanosecond + time.Microsecond
	if d := res.PerRank[1] - wantLeaf; d < -time.Nanosecond || d > 2*time.Nanosecond {
		t.Errorf("leaf completion = %v, want ≈%v", res.PerRank[1], wantLeaf)
	}
	// The root combines 50ns after delivery.
	want := wantLeaf + 50*time.Nanosecond
	if d := res.Root - want; d < -time.Nanosecond || d > 3*time.Nanosecond {
		t.Errorf("root completion = %v, want ≈%v", res.Root, want)
	}
	if res.Max() != res.Root {
		t.Error("root should be the slowest rank here")
	}
}

func TestReduceSingleRankTrivial(t *testing.T) {
	m := mustNew(t, Quiet(1, 1), 1, 5)
	res := m.Reduce(8, nil)
	if res.Root != 0 || len(res.PerRank) != 1 {
		t.Errorf("p=1 reduce = %+v", res)
	}
}

func TestReduceDepthScalesLogarithmically(t *testing.T) {
	// On the quiet machine, completion ≈ rounds × (overhead + latency +
	// op), so T(2^k) grows linearly in k.
	var prev time.Duration
	for k := 1; k <= 6; k++ {
		m := mustNew(t, Quiet(64, 1), 1<<k, 9)
		res := m.Reduce(8, nil)
		if res.Root <= prev {
			t.Errorf("T(%d) = %v not increasing", 1<<k, res.Root)
		}
		// Crude linearity check: at most ~k times the 2-rank cost + slack.
		if k >= 2 && res.Root > time.Duration(k)*2*(time.Microsecond+200*time.Nanosecond) {
			t.Errorf("T(%d) = %v grows faster than O(log p)", 1<<k, res.Root)
		}
		prev = res.Root
	}
}

func TestReducePowersOfTwoAdvantage(t *testing.T) {
	// The Fig 5 effect: p = 2^k completes faster than p = 2^k + 1 (the
	// extra fold phase costs a full latency).
	for _, k := range []int{2, 3, 4, 5} {
		p2 := 1 << k
		mA := mustNew(t, Quiet(80, 1), p2, 13)
		mB := mustNew(t, Quiet(80, 1), p2+1, 13)
		tA := mA.Reduce(8, nil).Max()
		tB := mB.Reduce(8, nil).Max()
		if tB <= tA {
			t.Errorf("T(%d) = %v should exceed T(%d) = %v", p2+1, tB, p2, tA)
		}
	}
}

func TestReduceLeavesFinishBeforeRoot(t *testing.T) {
	m := mustNew(t, PizDaint(), 64, 21)
	res := m.Reduce(8, nil)
	if res.PerRank[63] >= res.Root {
		t.Errorf("leaf 63 (%v) should finish before root (%v)",
			res.PerRank[63], res.Root)
	}
	for r, d := range res.PerRank {
		if d < 0 {
			t.Errorf("rank %d has negative completion %v", r, d)
		}
	}
}

func TestReduceRespectsStartSkew(t *testing.T) {
	skew := make([]time.Duration, 8)
	skew[3] = time.Millisecond // rank 3 starts very late
	m := mustNew(t, Quiet(8, 1), 8, 2)
	res := m.Reduce(8, skew)
	if res.Root < time.Millisecond {
		t.Errorf("root %v should wait for the late rank", res.Root)
	}
	m2 := mustNew(t, Quiet(8, 1), 8, 2)
	res2 := m2.Reduce(8, nil)
	if res2.Root >= time.Millisecond {
		t.Errorf("without skew the reduce should be fast, got %v", res2.Root)
	}
}

func TestBcastReachesEveryRank(t *testing.T) {
	m := mustNew(t, Quiet(16, 1), 16, 3)
	res := m.Bcast(64, nil)
	for r := 1; r < 16; r++ {
		if res.PerRank[r] <= 0 {
			t.Errorf("rank %d never received the broadcast", r)
		}
	}
	// Binomial depth: log2(16) = 4 rounds; on the quiet machine each
	// round is ~1.1µs, so the last arrival is ≈4.4µs.
	if res.Max() > 6*time.Microsecond {
		t.Errorf("broadcast took %v, want ≈4.4µs", res.Max())
	}
}

func TestBarrierExitsTight(t *testing.T) {
	m := mustNew(t, Quiet(32, 1), 32, 4)
	res := m.Barrier(nil)
	spread := res.Max()
	var min time.Duration = 1 << 62
	for _, d := range res.PerRank {
		if d < min {
			min = d
		}
	}
	if spread-min > 2*time.Microsecond {
		t.Errorf("quiet barrier exit spread = %v, want tight", spread-min)
	}
	// p=1 trivial.
	m1 := mustNew(t, Quiet(1, 1), 1, 4)
	if m1.Barrier(nil).Max() != 0 {
		t.Error("p=1 barrier should be free")
	}
}

func TestDelayWindowSyncBeatsNaiveClocks(t *testing.T) {
	cfg := PizDora()
	mNaive := mustNew(t, cfg, 16, 8)
	naive := mNaive.NaiveClockSync(time.Millisecond)
	mDW := mustNew(t, cfg, 16, 8)
	dw := mDW.DelayWindowSync(time.Millisecond, 5)

	// Naive sync suffers the full clock offsets (±500µs).
	if naive.MaxSkew < 50*time.Microsecond {
		t.Errorf("naive skew = %v, expected large (clock offsets)", naive.MaxSkew)
	}
	// Delay-window corrects offsets down to network-asymmetry error.
	if dw.MaxSkew > 20*time.Microsecond {
		t.Errorf("delay-window skew = %v, want < 20µs", dw.MaxSkew)
	}
	if dw.MaxSkew >= naive.MaxSkew {
		t.Errorf("delay-window (%v) should beat naive (%v)", dw.MaxSkew, naive.MaxSkew)
	}
	// Skews are normalized to the earliest starter.
	minSkew := dw.Skew[0]
	for _, s := range dw.Skew {
		if s < minSkew {
			minSkew = s
		}
	}
	if minSkew != 0 {
		t.Error("skews must be relative to the earliest starter")
	}
}

func TestComputeTimeScalesWithFlops(t *testing.T) {
	m := mustNew(t, Quiet(1, 2), 2, 6)
	t1 := m.ComputeTime(0, 1e10, 0) // 1 second of work at 1e10 flop/s
	if d := t1 - time.Second; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("1e10 flops = %v, want ≈1s", t1)
	}
	t2 := m.ComputeTime(0, 2e10, 0)
	ratio := float64(t2) / float64(t1)
	if math.Abs(ratio-2) > 0.01 {
		t.Errorf("compute time not linear in flops: ratio %g", ratio)
	}
	// Zero flop rate → zero time (configuration degenerate but safe).
	cfg := Quiet(1, 1)
	cfg.FlopsPerSec = 0
	m0 := mustNew(t, cfg, 1, 1)
	if m0.ComputeTime(0, 1e9, 0) != 0 {
		t.Error("zero flop rate should yield zero time")
	}
}

func TestDeterminismUnderSeed(t *testing.T) {
	run := func() []time.Duration {
		m := mustNew(t, PizDaint(), 64, 1234)
		out := m.PingPong(0, 63, 64, 100)
		res := m.Reduce(8, nil)
		out = append(out, res.PerRank...)
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAdvanceMovesTimeForward(t *testing.T) {
	m := mustNew(t, Quiet(1, 1), 1, 1)
	m.Advance(time.Second)
	if m.Now() != time.Second {
		t.Errorf("Now = %v", m.Now())
	}
	m.Advance(-time.Hour)
	if m.Now() != time.Second {
		t.Error("negative Advance must be ignored")
	}
}

func TestDaemonNodesCreatePerRankHeterogeneity(t *testing.T) {
	// The Fig 6 scenario: with daemons on some nodes, per-rank reduce
	// completion distributions differ beyond noise.
	cfg := PizDaint()
	cfg.DaemonNodes = 8
	cfg.DaemonPeriod = 300 * time.Microsecond
	cfg.DaemonWindow = 30 * time.Microsecond
	m := mustNew(t, cfg, 64, 99)
	const runs = 300
	perRank := make([][]float64, 64)
	for i := 0; i < runs; i++ {
		res := m.Reduce(8, nil)
		for r, d := range res.PerRank {
			perRank[r] = append(perRank[r], float64(d))
		}
		m.Advance(500 * time.Microsecond)
	}
	// Mean completion across ranks should vary by much more than the
	// within-rank standard error for at least some pairs.
	means := make([]float64, 64)
	for r := range perRank {
		means[r] = stats.Mean(perRank[r])
	}
	if stats.Max(means) < stats.Min(means)*1.01 {
		t.Error("expected visible per-rank heterogeneity with daemons")
	}
}

func TestTopologyDistanceModel(t *testing.T) {
	cfg := Quiet(64, 1)
	cfg.Placement = Scattered

	// Dragonfly: ranks in the same group pay no extra hop; cross-group
	// pairs pay HopLatency extra each way.
	m := mustNew(t, cfg, 64, 1)
	m.SetTopology(TopologyConfig{
		Kind:       TopoDragonfly,
		GroupSize:  8,
		HopLatency: 500 * time.Nanosecond,
	})
	same := m.PingPong(0, 7, 0, 1)[0]  // nodes 0 and 7: group 0
	cross := m.PingPong(0, 8, 0, 1)[0] // nodes 0 and 8: groups 0 and 1
	if cross-same != 500*time.Nanosecond {
		t.Errorf("dragonfly hop delta = %v, want 500ns (one-way avg of RTT)", cross-same)
	}

	// Fat-tree: two levels of extra distance.
	m2 := mustNew(t, cfg, 64, 1)
	m2.SetTopology(TopologyConfig{
		Kind:       TopoFatTree,
		GroupSize:  2,
		HopLatency: 300 * time.Nanosecond,
	})
	leaf := m2.PingPong(0, 1, 0, 1)[0]    // same leaf switch
	block := m2.PingPong(0, 3, 0, 1)[0]   // same aggregation block
	global := m2.PingPong(0, 40, 0, 1)[0] // across blocks
	if block-leaf != 300*time.Nanosecond {
		t.Errorf("fat-tree level-1 delta = %v, want 300ns", block-leaf)
	}
	if global-leaf != 600*time.Nanosecond {
		t.Errorf("fat-tree level-2 delta = %v, want 600ns", global-leaf)
	}

	// Flat default is unchanged.
	m3 := mustNew(t, cfg, 64, 1)
	flatA := m3.PingPong(0, 7, 0, 1)[0]
	flatB := m3.PingPong(0, 40, 0, 1)[0]
	if flatA != flatB {
		t.Errorf("flat topology should be uniform: %v vs %v", flatA, flatB)
	}
	if TopoFlat.String() != "flat" || TopoDragonfly.String() != "dragonfly" || TopoFatTree.String() != "fat-tree" {
		t.Error("topology names")
	}
	if Topology(9).String() == "" {
		t.Error("unknown topology should stringify")
	}
}

func TestTopologyCreatesMultimodalLatency(t *testing.T) {
	// With scattered ranks across a dragonfly, a collective samples both
	// intra- and inter-group paths: the latency mix is multimodal, one
	// of the paper's named noise sources (§1, §4.1.2).
	cfg := PizDaint()
	cfg.Placement = Scattered
	m := mustNew(t, cfg, 32, 5)
	m.SetTopology(TopologyConfig{
		Kind:       TopoDragonfly,
		GroupSize:  4,
		HopLatency: 2 * time.Microsecond,
	})
	intra := make([]float64, 0, 2000)
	inter := make([]float64, 0, 2000)
	for _, d := range m.PingPong(0, 3, 64, 2000) {
		intra = append(intra, float64(d))
	}
	for _, d := range m.PingPong(0, 8, 64, 2000) {
		inter = append(inter, float64(d))
	}
	if stats.Median(inter)-stats.Median(intra) < float64(time.Microsecond) {
		t.Errorf("inter-group median should sit ≈2µs above intra-group: %v vs %v",
			stats.Median(inter), stats.Median(intra))
	}
}

func TestPingPongCtxCancellation(t *testing.T) {
	m := mustNew(t, PizDora(), 2, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := m.PingPongCtx(ctx, 0, 1, 64, 100); len(got) != 0 {
		t.Fatalf("cancelled exchange completed %d rounds, want 0", len(got))
	}

	// A live context behaves exactly like PingPong, including the clock
	// advance, so deterministic replay is unaffected by the ctx plumbing.
	a := mustNew(t, PizDora(), 2, 1)
	b := mustNew(t, PizDora(), 2, 1)
	xa := a.PingPong(0, 1, 64, 50)
	xb := b.PingPongCtx(context.Background(), 0, 1, 64, 50)
	if len(xa) != len(xb) {
		t.Fatalf("round counts differ: %d vs %d", len(xa), len(xb))
	}
	for i := range xa {
		if xa[i] != xb[i] {
			t.Fatalf("round %d differs: %v vs %v", i, xa[i], xb[i])
		}
	}
}
