package cluster

import (
	"time"
)

// SyncResult describes one time-synchronization attempt: the per-rank
// start skews (deviation of each rank's actual start from the intended
// common instant) that a subsequently measured collective would suffer.
type SyncResult struct {
	// Skew[r] is rank r's start offset relative to the earliest starter
	// (all values >= 0; a perfectly synchronized start is all zeros).
	Skew []time.Duration
	// MaxSkew is the spread between first and last starter.
	MaxSkew time.Duration
}

func newSyncResult(abs []time.Duration) SyncResult {
	min := abs[0]
	for _, t := range abs[1:] {
		if t < min {
			min = t
		}
	}
	res := SyncResult{Skew: make([]time.Duration, len(abs))}
	for i, t := range abs {
		res.Skew[i] = t - min
		if res.Skew[i] > res.MaxSkew {
			res.MaxSkew = res.Skew[i]
		}
	}
	return res
}

// BarrierSync models the common-but-unreliable approach of starting a
// timed operation right after a barrier (§4.2.1): the residual skew is
// the spread of barrier exit times.
func (m *Machine) BarrierSync() SyncResult {
	defer m.ExactPerRank()() // skews need every rank's exit time
	res := m.Barrier(nil)
	return newSyncResult(res.PerRank)
}

// NaiveClockSync models the broken approach of agreeing on a wall-clock
// start time without estimating per-rank clock offsets: every rank waits
// until its own (unsynchronized) clock reads the target. The resulting
// skew is on the order of the clock offsets themselves — the baseline
// against which DelayWindowSync is the paper's fix.
func (m *Machine) NaiveClockSync(window time.Duration) SyncResult {
	p := len(m.procs)
	startLocal := m.LocalTime(0, m.now) + window
	abs := make([]time.Duration, p)
	for r := 0; r < p; r++ {
		abs[r] = m.GlobalFromLocal(r, startLocal)
	}
	m.now += window
	return newSyncResult(abs)
}

// DelayWindowSync implements the scheme the paper recommends for accurate
// parallel timing (§4.2.1, refs [25, 62]): a master (rank 0) estimates
// every rank's clock offset with `pingRounds` round-trip exchanges
// (offset ≈ remote reading − local midpoint, taking the minimum-RTT
// exchange as least contaminated), then broadcasts a start time `window`
// in the future; every rank busy-waits until its local clock reaches the
// translated instant. The residual skew reflects offset-estimation error,
// clock drift over the window, and clock granularity.
func (m *Machine) DelayWindowSync(window time.Duration, pingRounds int) SyncResult {
	defer m.ExactPerRank()() // the broadcast's per-rank arrivals gate each start
	p := len(m.procs)
	if pingRounds < 1 {
		pingRounds = 1
	}
	// Phase 1: offset estimation per rank (global time advances as the
	// master serially pings each rank).
	offset := make([]time.Duration, p) // estimated offset of rank r's clock vs master's
	for r := 1; r < p; r++ {
		bestRTT := time.Duration(1<<62 - 1)
		var best time.Duration
		for i := 0; i < pingRounds; i++ {
			t0 := m.now
			fwd := m.msgLatency(0, r, 16, t0)
			arrive := t0 + fwd
			remote := m.LocalTime(r, arrive)
			back := m.msgLatency(r, 0, 16, arrive)
			t1 := arrive + back
			m.now = t1
			rtt := t1 - t0
			if rtt < bestRTT {
				bestRTT = rtt
				mid := m.LocalTime(0, t0) + rtt/2
				best = remote - mid
			}
		}
		offset[r] = best
	}

	// Phase 2: broadcast the start time (master-local clock) and wait.
	startLocal0 := m.LocalTime(0, m.now) + window
	bc := m.Bcast(16, nil)
	abs := make([]time.Duration, p)
	for r := 0; r < p; r++ {
		// Rank r waits until its local clock reads startLocal0 + offset[r].
		target := startLocal0 + offset[r]
		abs[r] = m.GlobalFromLocal(r, target)
		// A rank that received the broadcast after the start time begins
		// immediately (late start).
		recvAt := m.now + bc.PerRank[r]
		if recvAt > abs[r] {
			abs[r] = recvAt
		}
	}
	m.now += window
	return newSyncResult(abs)
}
