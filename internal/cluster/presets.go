package cluster

import (
	"time"

	"repro/internal/noise"
)

// The preset configurations approximate the three systems of the paper's
// §4.1.2 ("Our experimental setup"). The absolute parameters are tuned so
// the simulated latency distributions land in the ranges the paper
// reports (Figures 1–4): they are *models*, not measurements of the real
// machines — see DESIGN.md's substitution table.

// PizDaint approximates the Cray XC30 partition used for the HPL and Pi
// scaling experiments: 8-core nodes, Aries dragonfly interconnect.
func PizDaint() Config {
	return Config{
		Name:         "Piz Daint (simulated XC30)",
		Nodes:        5272,
		CoresPerNode: 8,
		LatFloor:     600 * time.Nanosecond,
		LatBody:      350 * time.Nanosecond,
		LatSigma:     0.25,
		TailProb:     2e-4,
		TailScale:    2 * time.Microsecond,
		TailAlpha:    2.5,
		IntraNodeLat: 150 * time.Nanosecond,
		BandwidthBps: 9.0e9,
		FlopsPerSec:  2.0e10, // ~20 Gflop/s sustained per core for DGEMM-like work
		CPUNoise:     noise.LogNormal{Sigma: 0.015},
		NodeSigma:    0.01,
		DaemonNodes:  24,
		DaemonPeriod: 10 * time.Millisecond,
		DaemonWindow: 50 * time.Microsecond,

		ClockOffsetMax:   500 * time.Microsecond,
		ClockDriftPPM:    20,
		ClockGranularity: 10 * time.Nanosecond,
		ReduceOpCost:     80 * time.Nanosecond,
		SendOverhead:     250 * time.Nanosecond,
	}
}

// PizDora approximates the Cray XC40: 24-core nodes, Aries interconnect.
// Its simulated 64 B ping-pong latency has median ≈ 1.77 µs, minimum
// ≈ 1.57 µs and a tail reaching ≈ 7 µs over 10⁶ samples (Fig 3, top).
func PizDora() Config {
	return Config{
		Name:         "Piz Dora (simulated XC40)",
		Nodes:        1256,
		CoresPerNode: 24,
		LatFloor:     1100 * time.Nanosecond,
		LatBody:      400 * time.Nanosecond,
		LatSigma:     0.25,
		TailProb:     1e-4,
		TailScale:    1 * time.Microsecond,
		TailAlpha:    3,
		IntraNodeLat: 200 * time.Nanosecond,
		BandwidthBps: 1.0e10,
		FlopsPerSec:  2.2e10,
		CPUNoise:     noise.LogNormal{Sigma: 0.01},
		NodeSigma:    0.008,
		DaemonNodes:  8,
		DaemonPeriod: 10 * time.Millisecond,
		DaemonWindow: 30 * time.Microsecond,

		ClockOffsetMax:   500 * time.Microsecond,
		ClockDriftPPM:    15,
		ClockGranularity: 10 * time.Nanosecond,
		ReduceOpCost:     70 * time.Nanosecond,
		SendOverhead:     220 * time.Nanosecond,
	}
}

// Pilatus approximates the InfiniBand FDR fat-tree cluster: a lower
// latency floor (min ≈ 1.48 µs) but a wider body (median ≈ 1.88 µs) and
// a heavier congestion tail (max ≈ 11.6 µs over 10⁶ samples) than Piz
// Dora — the Fig 3/4 comparison pair.
func Pilatus() Config {
	return Config{
		Name:         "Pilatus (simulated InfiniBand FDR)",
		Nodes:        44,
		CoresPerNode: 16,
		LatFloor:     1000 * time.Nanosecond,
		LatBody:      520 * time.Nanosecond,
		LatSigma:     0.5,
		TailProb:     3e-4,
		TailScale:    2 * time.Microsecond,
		TailAlpha:    2.5,
		IntraNodeLat: 250 * time.Nanosecond,
		BandwidthBps: 6.8e9,
		FlopsPerSec:  1.8e10,
		CPUNoise:     noise.LogNormal{Sigma: 0.02},
		NodeSigma:    0.01,
		DaemonNodes:  4,
		DaemonPeriod: 4 * time.Millisecond,
		DaemonWindow: 40 * time.Microsecond,

		ClockOffsetMax:   1 * time.Millisecond,
		ClockDriftPPM:    30,
		ClockGranularity: 10 * time.Nanosecond,
		ReduceOpCost:     90 * time.Nanosecond,
		SendOverhead:     300 * time.Nanosecond,
	}
}

// Quiet returns a noise-free single-purpose test system, useful for
// validating algorithmic costs without stochastic terms.
func Quiet(nodes, cores int) Config {
	return Config{
		Name:         "quiet test system",
		Nodes:        nodes,
		CoresPerNode: cores,
		LatFloor:     time.Microsecond,
		LatBody:      0,
		LatSigma:     0,
		IntraNodeLat: 100 * time.Nanosecond,
		BandwidthBps: 1e10,
		FlopsPerSec:  1e10,
		ReduceOpCost: 50 * time.Nanosecond,
		SendOverhead: 100 * time.Nanosecond,
	}
}
