// Package cluster implements a simulated parallel machine — the
// substitute for the paper's Cray XC30/XC40 and InfiniBand systems (see
// DESIGN.md, substitutions). It models nodes and processes, per-process
// clocks with offset, drift and granularity, a noisy network (latency
// floor, log-normal body, heavy interference tail, bandwidth term), node
// heterogeneity and OS jitter, and the message-passing collectives the
// paper measures (ping-pong, binomial-tree reduce and broadcast,
// dissemination barrier) plus the delay-window time synchronization of
// §4.2.1. All randomness flows from one seeded PCG stream, so every
// experiment reproduces bit-for-bit.
package cluster

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"repro/internal/faults"
	"repro/internal/noise"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// Telemetry: simulation volume, observable without perturbing it — the
// counters never touch the machine's seeded stream, so simulated
// experiments stay bit-identical with telemetry on or off.
var (
	telMachines = telemetry.Default().Counter("cluster.machines")
	telMessages = telemetry.Default().Counter("cluster.messages")
)

// Placement selects how ranks map onto nodes (§4.1.2 notes batch
// allocation policies such as packed or scattered layouts matter).
type Placement int

const (
	// Packed fills each node's cores before moving to the next node.
	Packed Placement = iota
	// Scattered round-robins ranks across nodes.
	Scattered
)

// String returns the placement-policy name.
func (p Placement) String() string {
	switch p {
	case Packed:
		return "packed"
	case Scattered:
		return "scattered"
	}
	return fmt.Sprintf("Placement(%d)", int(p))
}

// Config describes a simulated system. The network latency of one
// one-way inter-node message is
//
//	LatFloor + LatBody·exp(LatSigma·Z) + bytes/BandwidthBps [+ rare Pareto tail]
//
// which produces the right-skewed, heavy-tailed latency distributions of
// the paper's Figures 2–4.
type Config struct {
	Name         string
	Nodes        int
	CoresPerNode int
	Placement    Placement

	// Network model.
	LatFloor     time.Duration // deterministic wire/NIC floor (one-way)
	LatBody      time.Duration // median of the variable part
	LatSigma     float64       // log-normal sigma of the variable part
	TailProb     float64       // probability of an interference hit per message
	TailScale    time.Duration // minimum extra delay on a hit
	TailAlpha    float64       // Pareto tail index of the hit (e.g. 2–3)
	IntraNodeLat time.Duration // one-way latency between ranks sharing a node
	BandwidthBps float64       // per-link bandwidth, bytes/second

	// Compute model.
	FlopsPerSec float64     // per-core sustained flop rate
	CPUNoise    noise.Model // per-compute-phase perturbation (nil = none)

	// Node heterogeneity: per-node speed factors are drawn log-normally
	// with sigma NodeSigma (0 = homogeneous), and the first DaemonNodes
	// nodes host a periodic OS-jitter daemon with a random phase.
	NodeSigma    float64
	DaemonNodes  int
	DaemonPeriod time.Duration
	DaemonWindow time.Duration

	// Clock model (per process).
	ClockOffsetMax   time.Duration // uniform initial offset in ±max
	ClockDriftPPM    float64       // uniform drift in ±ppm
	ClockGranularity time.Duration // reading quantization (0 = exact)

	// Collective cost model.
	ReduceOpCost time.Duration // combining two partial values
	SendOverhead time.Duration // CPU cost to issue one message

	// Faults, when non-nil, injects the schedule's adversarial events —
	// stragglers, interference bursts, message loss with retransmit,
	// rank crashes, clock steps — into every message, compute phase, and
	// clock reading. The schedule is pure data and all randomness still
	// flows from the machine's seeded stream, so faulty experiments
	// reproduce bit-for-bit.
	Faults *faults.Schedule

	// Collective engine controls (see collective_engine.go). ResultMode
	// selects per-rank vs summary collective results; ModeAuto switches
	// to summaries at SummaryThreshold ranks (default 65536).
	// CollectiveWorkers evaluates each tree level with that many
	// goroutines and CollectiveBatch sets the per-worker chunk size —
	// both are pure throughput knobs: per-rank RNG streams make
	// collective output bit-identical for a fixed seed regardless of
	// batch size or worker count. Zero picks the parallel default,
	// min(GOMAXPROCS, level/2048); set a negative value (or 1) to force
	// serial evaluation.
	ResultMode        ResultMode
	SummaryThreshold  int
	CollectiveWorkers int
	CollectiveBatch   int
}

// proc is one simulated process (MPI rank analogue).
type proc struct {
	rank        int
	node        int
	clockOffset time.Duration
	clockDrift  float64 // fractional (1e-6 per ppm)
	speed       float64 // node speed factor (1 = nominal)
	daemon      noise.Model
}

// Machine is an instantiated simulated system with a fixed number of
// ranks. Machines are not safe for concurrent use: experiments drive
// them sequentially, exactly like a benchmark driving one job (the
// collective engine's internal workers synchronize per tree level and
// never outlive a call).
type Machine struct {
	cfg    Config
	rng    *rand.Rand
	seed   uint64
	procs  []proc // flat: a million-rank machine is one slab, not 2^20 heap objects
	topo   TopologyConfig
	now    time.Duration // global (true) simulated time
	fstats FaultStats

	// Collective engine state (collective_engine.go): per-rank RNG
	// streams reseeded per invocation, reusable O(P) scratch buffers,
	// and per-worker fault accounting.
	collSeq    uint64
	streams    []rng.Stream
	forceExact int
	bufPool    [][]time.Duration
	wstats     []FaultStats
}

// FaultStats counts the fault events the machine absorbed — the
// accounting Rule 4's "report all data, including failures" needs.
type FaultStats struct {
	// Retransmits is the total number of retransmissions performed by
	// the loss protocol.
	Retransmits int
	// LostMessages counts messages that needed at least one
	// retransmission.
	LostMessages int
	// CrashTimeouts counts transfers abandoned because one endpoint had
	// crashed; each cost the surviving peer the schedule's CrashWait.
	CrashTimeouts int
}

// FaultStats returns the fault events absorbed since construction (or
// the last ResetFaultStats).
func (m *Machine) FaultStats() FaultStats { return m.fstats }

// ResetFaultStats clears the fault accounting, e.g. between campaigns
// sharing one machine.
func (m *Machine) ResetFaultStats() { m.fstats = FaultStats{} }

// New builds a machine with the given number of ranks placed per the
// config; all randomness derives from seed.
func New(cfg Config, ranks int, seed uint64) (*Machine, error) {
	if cfg.Nodes <= 0 || cfg.CoresPerNode <= 0 {
		return nil, fmt.Errorf("cluster: config needs Nodes and CoresPerNode > 0")
	}
	if ranks <= 0 {
		return nil, fmt.Errorf("cluster: ranks = %d must be positive", ranks)
	}
	if ranks > cfg.Nodes*cfg.CoresPerNode {
		return nil, fmt.Errorf("cluster: %d ranks exceed %d nodes × %d cores",
			ranks, cfg.Nodes, cfg.CoresPerNode)
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	telMachines.Inc()
	m := &Machine{
		cfg:  cfg,
		rng:  rand.New(rand.NewPCG(seed, 0x5c1beccd)),
		seed: seed,
	}

	// Per-node characteristics.
	speeds := make([]float64, cfg.Nodes)
	daemons := make([]noise.Model, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		speeds[n] = 1.0
		if cfg.NodeSigma > 0 {
			speeds[n] = math.Exp(cfg.NodeSigma * m.rng.NormFloat64())
		}
		if n < cfg.DaemonNodes && cfg.DaemonPeriod > 0 && cfg.DaemonWindow > 0 {
			daemons[n] = noise.Periodic{
				Period: cfg.DaemonPeriod,
				Window: cfg.DaemonWindow,
				Phase:  time.Duration(m.rng.Int64N(int64(cfg.DaemonPeriod))),
			}
		}
	}

	m.procs = make([]proc, ranks)
	for r := 0; r < ranks; r++ {
		var node int
		if cfg.Placement == Scattered {
			node = r % cfg.Nodes
		} else {
			node = r / cfg.CoresPerNode
		}
		p := &m.procs[r]
		p.rank, p.node, p.speed, p.daemon = r, node, speeds[node], daemons[node]
		if cfg.ClockOffsetMax > 0 {
			p.clockOffset = time.Duration(m.rng.Int64N(2*int64(cfg.ClockOffsetMax))) -
				cfg.ClockOffsetMax
		}
		if cfg.ClockDriftPPM > 0 {
			p.clockDrift = (2*m.rng.Float64() - 1) * cfg.ClockDriftPPM * 1e-6
		}
	}
	return m, nil
}

// Ranks returns the number of processes.
func (m *Machine) Ranks() int { return len(m.procs) }

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Now returns the global simulated time.
func (m *Machine) Now() time.Duration { return m.now }

// Advance moves global simulated time forward (used between repetitions
// so time-correlated noise such as OS daemons decorrelates across runs).
func (m *Machine) Advance(d time.Duration) {
	if d > 0 {
		m.now += d
	}
}

// Lognormal draws a multiplicative exp(sigma·Z) factor from the
// machine's random stream. Long aggregate runs (e.g. whole HPL
// executions) use it to model per-run system state — batch allocation
// quality, global network load — that per-event noise cannot capture.
func (m *Machine) Lognormal(sigma float64) float64 {
	return math.Exp(sigma * m.rng.NormFloat64())
}

// HalfLognormal draws exp(sigma·|Z|), a one-sided multiplicative
// slowdown of at least 1 — interference only ever delays.
func (m *Machine) HalfLognormal(sigma float64) float64 {
	return math.Exp(sigma * math.Abs(m.rng.NormFloat64()))
}

// NodeOf returns the node hosting a rank.
func (m *Machine) NodeOf(rank int) int { return m.procs[rank].node }

// LocalTime converts a global simulated instant to rank r's local clock
// reading, applying offset, drift, scheduled clock steps, and
// granularity — the asynchronous clock model behind §4.2.1's "parallel
// time" discussion.
func (m *Machine) LocalTime(rank int, global time.Duration) time.Duration {
	p := &m.procs[rank]
	t := p.clockOffset + time.Duration(float64(global)*(1+p.clockDrift))
	t += m.cfg.Faults.ClockShift(rank, global)
	if g := m.cfg.ClockGranularity; g > 0 {
		t = t / g * g
	}
	return t
}

// GlobalFromLocal inverts LocalTime (ignoring granularity): the global
// instant at which rank r's clock first reads local. With scheduled
// clock steps the inversion is a fixed point — the shift in effect
// depends on the global instant being solved for — so a step landing
// inside a delay-window wait moves the rank's start by the step size,
// exactly the silent §4.2.1 skew that synchronizing before an NTP
// adjustment produces.
func (m *Machine) GlobalFromLocal(rank int, local time.Duration) time.Duration {
	p := &m.procs[rank]
	g := time.Duration(float64(local-p.clockOffset) / (1 + p.clockDrift))
	f := m.cfg.Faults
	if f == nil {
		return g
	}
	// Each iteration either reproduces the previous shift (converged) or
	// crosses at least one step boundary, so steps+1 passes suffice;
	// a negative step can make the clock read `local` twice, in which
	// case the bounded loop settles on one consistent crossing.
	for i := 0; i <= len(f.ClockSteps); i++ {
		next := time.Duration(float64(local-p.clockOffset-f.ClockShift(rank, g)) /
			(1 + p.clockDrift))
		if next == g {
			break
		}
		g = next
	}
	return g
}

// msgLatency draws one one-way message latency between two ranks at
// global time `at`, including the bandwidth term for the payload and any
// scheduled faults: a crashed endpoint turns the transfer into a
// CrashWait timeout, bursts multiply the inter-node path, stragglers
// stretch everything their node touches, and the loss protocol adds
// retransmission waits.
func (m *Machine) msgLatency(from, to, bytes int, at time.Duration) time.Duration {
	telMessages.Inc()
	return m.msgLatencySrc(m.rng, &m.fstats, from, to, bytes, at)
}

// msgLatencySrc is msgLatency with an explicit draw source and fault
// accounting sink. Point-to-point paths pass the machine's shared
// stream; the collective engine passes the RECEIVER's per-rank stream
// and a per-worker FaultStats, which is what makes level-batched and
// multi-worker evaluation bit-identical to serial evaluation (telemetry
// message counts are added per level there, not here).
func (m *Machine) msgLatencySrc(src noise.Source, fs *FaultStats, from, to, bytes int, at time.Duration) time.Duration {
	f := m.cfg.Faults
	if f != nil && (f.CrashedAt(from, at) || f.CrashedAt(to, at)) {
		// The surviving peer blocks until the runtime declares the
		// transfer dead. No latency is drawn: nothing was delivered.
		fs.CrashTimeouts++
		return f.CrashWait()
	}
	pf, pt := &m.procs[from], &m.procs[to]
	var lat float64
	interNode := pf.node != pt.node
	if !interNode {
		lat = float64(m.cfg.IntraNodeLat)
		if lat <= 0 {
			lat = float64(m.cfg.LatFloor) / 4
		}
		// Intra-node transfers still jitter a little.
		lat *= math.Exp(m.cfg.LatSigma / 2 * src.NormFloat64())
	} else {
		lat = float64(m.cfg.LatFloor) + float64(m.hopExtra(pf.node, pt.node)) +
			float64(m.cfg.LatBody)*math.Exp(m.cfg.LatSigma*src.NormFloat64())
		if m.cfg.TailProb > 0 && src.Float64() < m.cfg.TailProb {
			u := src.Float64()
			for u == 0 {
				u = src.Float64()
			}
			alpha := m.cfg.TailAlpha
			if alpha <= 0 {
				alpha = 2
			}
			lat += float64(m.cfg.TailScale) / math.Pow(u, 1/alpha)
		}
		if f != nil {
			lat *= f.BurstFactorAt(at)
		}
	}
	if m.cfg.BandwidthBps > 0 && bytes > 0 {
		lat += float64(bytes) / m.cfg.BandwidthBps * float64(time.Second)
	}
	if f != nil {
		// The slower endpoint gates the transfer end to end.
		if slow := math.Max(f.SlowdownAt(pf.node, at), f.SlowdownAt(pt.node, at)); slow > 1 {
			lat *= slow
		}
	}
	d := time.Duration(lat)
	if f != nil && interNode {
		if wait, retries := f.RetransmitDelay(src); retries > 0 {
			fs.Retransmits += retries
			fs.LostMessages++
			d += wait
		}
	}
	// Receiver-side daemon interference can delay delivery processing.
	if pt.daemon != nil {
		d = pt.daemon.Perturb(src, at+d, d)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// ComputeTime returns the simulated wall time for `flops` floating point
// operations on rank r starting at global time `at`, including node
// speed, CPU noise and daemon interference.
func (m *Machine) ComputeTime(rank int, flops float64, at time.Duration) time.Duration {
	if m.cfg.FlopsPerSec <= 0 {
		return 0
	}
	p := &m.procs[rank]
	d := time.Duration(flops / (m.cfg.FlopsPerSec * p.speed) * float64(time.Second))
	if m.cfg.CPUNoise != nil {
		d = m.cfg.CPUNoise.Perturb(m.rng, at, d)
	}
	if p.daemon != nil {
		d = p.daemon.Perturb(m.rng, at, d)
	}
	if f := m.cfg.Faults; f != nil {
		if slow := f.SlowdownAt(p.node, at); slow > 1 {
			d = time.Duration(float64(d) * slow)
		}
	}
	return d
}

// opCostSrc returns one noisy reduction-operator application on rank r,
// drawing from src (the rank's own stream inside collectives).
func (m *Machine) opCostSrc(src noise.Source, rank int, at time.Duration) time.Duration {
	d := m.cfg.ReduceOpCost
	if d <= 0 {
		return 0
	}
	d = time.Duration(float64(d) / m.procs[rank].speed)
	if m.cfg.CPUNoise != nil {
		d = m.cfg.CPUNoise.Perturb(src, at, d)
	}
	return d
}

// PingPong performs `rounds` request–reply exchanges of `bytes` between
// two ranks and returns the observed one-way latency estimates
// (round-trip time halved), the quantity plotted in Figures 2–4 and 7c.
// The first WarmupRounds are included — discarding them is the
// measurement layer's policy decision (§4.1.2, "Warmup").
func (m *Machine) PingPong(a, b, bytes, rounds int) []time.Duration {
	return m.PingPongCtx(context.Background(), a, b, bytes, rounds)
}

// PingPongCtx is PingPong under a context: cancellation stops the
// exchange between rounds and returns the rounds completed so far, so a
// long sweep hands control back promptly instead of finishing a large
// fixed batch. The machine's clock only advances for completed rounds,
// keeping an interrupted exchange resumable deterministically.
func (m *Machine) PingPongCtx(ctx context.Context, a, b, bytes, rounds int) []time.Duration {
	out := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		if ctx != nil && ctx.Err() != nil {
			return out
		}
		fwd := m.msgLatency(a, b, bytes, m.now)
		m.now += fwd
		back := m.msgLatency(b, a, bytes, m.now)
		m.now += back
		out = append(out, (fwd+back+2*m.cfg.SendOverhead)/2)
	}
	return out
}
