package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/rng"
	"repro/internal/stats"
)

// This file is the batched collective evaluation engine. The design has
// three load-bearing rules:
//
//  1. Stream discipline — every noise/fault draw a collective makes is
//     attributed to the RECEIVER of the message and comes from that
//     rank's private PCG stream, reseeded at each collective invocation
//     as a pure function of (machine seed, invocation number, rank) via
//     the splitmix64 finalizer. Draw sequences therefore depend only on
//     each rank's own message order, never on the order ranks are
//     evaluated in — which is what makes rule 2 sound.
//
//  2. Level batching — a binomial tree (and each dissemination/ring/
//     pairwise round) is evaluated one level at a time; within a level
//     every message has a distinct receiver and writes disjoint state,
//     so the level can be chunked into batches and spread over workers
//     with bit-identical results for any CollectiveBatch and
//     CollectiveWorkers settings.
//
//  3. Allocation-flat results — O(P) working arrays come from a
//     machine-owned buffer pool reused across invocations, and summary
//     mode replaces the O(P) PerRank result with a fixed-size quantile
//     sketch, so steady-state bytes per collective are independent of P.

// ResultMode selects how collectives report per-rank completion times.
type ResultMode int

const (
	// ModeAuto reports exact PerRank below SummaryThreshold ranks and a
	// summary sketch at or above it.
	ModeAuto ResultMode = iota
	// ModePerRank always materializes the exact PerRank slice.
	ModePerRank
	// ModeSummary always returns the fixed-size summary.
	ModeSummary
)

// String returns the mode name as accepted by the CLI -mode flag.
func (r ResultMode) String() string {
	switch r {
	case ModeAuto:
		return "auto"
	case ModePerRank:
		return "perrank"
	case ModeSummary:
		return "summary"
	}
	return fmt.Sprintf("ResultMode(%d)", int(r))
}

// ParseResultMode parses a -mode flag value.
func ParseResultMode(s string) (ResultMode, error) {
	switch s {
	case "auto", "":
		return ModeAuto, nil
	case "perrank", "exact":
		return ModePerRank, nil
	case "summary":
		return ModeSummary, nil
	}
	return ModeAuto, fmt.Errorf("cluster: unknown result mode %q (auto|perrank|summary)", s)
}

// DefaultSummaryThreshold is the rank count at which ModeAuto stops
// materializing O(P) PerRank slices: 2^16 keeps every historical
// experiment in this repository (≤ thousands of ranks) bit-identical
// while million-rank sweeps go allocation-flat.
const DefaultSummaryThreshold = 1 << 16

// summaryFor reports whether a collective over p ranks should return a
// summary instead of exact per-rank times.
func (m *Machine) summaryFor(p int) bool {
	if m.forceExact > 0 {
		return false
	}
	switch m.cfg.ResultMode {
	case ModePerRank:
		return false
	case ModeSummary:
		return true
	}
	th := m.cfg.SummaryThreshold
	if th <= 0 {
		th = DefaultSummaryThreshold
	}
	return p >= th
}

// ExactPerRank forces per-rank collective results (overriding the
// configured ResultMode) until the returned restore function runs. It
// nests. Consumers that need every rank's completion time — HPL's panel
// pipeline, the sync schemes — wrap their collective calls in it.
func (m *Machine) ExactPerRank() func() {
	m.forceExact++
	return func() { m.forceExact-- }
}

// beginCollective starts a new collective invocation: it bumps the
// invocation counter and reseeds every rank's stream from
// (seed, invocation, rank) only. Reseeding is O(P) with zero draws from
// the machine stream, so collectives no longer perturb the shared
// stream used by point-to-point paths.
func (m *Machine) beginCollective() {
	m.collSeq++
	if len(m.streams) != len(m.procs) {
		m.streams = make([]rng.Stream, len(m.procs))
	}
	h := rng.Mix64(m.seed ^ rng.Mix64(m.collSeq))
	for r := range m.streams {
		u := uint64(r)
		m.streams[r].Seed(rng.Mix64(h^u), rng.Mix64(h+0x9e3779b97f4a7c15*(u+1)))
	}
}

// grab returns a zeroed []time.Duration of length n from the machine's
// buffer pool; release returns it. All collectives on one machine use
// the same length, so steady state allocates nothing.
func (m *Machine) grab(n int) []time.Duration {
	if k := len(m.bufPool) - 1; k >= 0 {
		b := m.bufPool[k]
		m.bufPool = m.bufPool[:k]
		if cap(b) >= n {
			b = b[:n]
			for i := range b {
				b[i] = 0
			}
			return b
		}
	}
	return make([]time.Duration, n)
}

func (m *Machine) release(b []time.Duration) {
	m.bufPool = append(m.bufPool, b)
}

// minParallelRound is the level size below which goroutine fan-out
// costs more than it saves; smaller levels run serially (results are
// identical either way — this is purely a scheduling cutoff).
const minParallelRound = 2048

// defaultCollectiveWorkers resolves CollectiveWorkers == 0 for a level
// of n messages: min(GOMAXPROCS, n/minParallelRound), so each worker
// owns at least one minimum-size run and small levels never fan out.
// The engine is race-clean by construction (per-rank streams, static
// partitions) and bit-identical for every worker count, so parallel is
// safe as the default; an explicit negative (or 1) still forces serial.
func defaultCollectiveWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if per := n / minParallelRound; w > per {
		w = per
	}
	if w < 1 {
		w = 1
	}
	return w
}

// collectiveWorkers resolves the configured worker count for a level of
// n messages. It exists so runLevel's `workers` is assigned exactly
// once: the level goroutines capture the variable, and a reassigned
// capture is moved to the heap — one allocation per level, even on the
// serial path, which would break the allocation-flat summary guarantee
// (TestSummaryAllocsFlat).
func collectiveWorkers(cfg, n int) int {
	if cfg != 0 {
		return cfg
	}
	return defaultCollectiveWorkers(n)
}

// runLevel evaluates one tree level / round of n messages. fn(i, fs)
// must write only state owned by message i (its receiver's slots plus
// its unique sender's finish slot) and draw only from the receiver's
// stream, which makes any static partition of [0,n) race-free and
// result-identical. Fault counts accumulate into per-worker sinks and
// are summed after the barrier — integer sums are order-independent.
func (m *Machine) runLevel(n int, fn func(i int, fs *FaultStats)) {
	if n <= 0 {
		return
	}
	telMessages.Add(int64(n))
	workers := collectiveWorkers(m.cfg.CollectiveWorkers, n)
	if workers <= 1 || n < minParallelRound {
		for i := 0; i < n; i++ {
			fn(i, &m.fstats)
		}
		return
	}
	batch := m.cfg.CollectiveBatch
	if batch <= 0 {
		batch = 1024
	}
	if len(m.wstats) < workers {
		m.wstats = make([]FaultStats, workers)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fs := &m.wstats[w]
			for lo := w * batch; lo < n; lo += workers * batch {
				hi := lo + batch
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i, fs)
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		m.fstats.Retransmits += m.wstats[w].Retransmits
		m.fstats.LostMessages += m.wstats[w].LostMessages
		m.fstats.CrashTimeouts += m.wstats[w].CrashTimeouts
		m.wstats[w] = FaultStats{}
	}
}

// finishResult packages per-rank completion times (a scratch buffer the
// caller releases) into a CollectiveResult, computing the cached Max in
// the same single pass — no later rescans. Exact mode copies into a
// fresh PerRank slice; summary mode feeds the fixed-size quantile
// sketch instead of materializing anything O(P).
func (m *Machine) finishResult(fin []time.Duration, root time.Duration) CollectiveResult {
	res := CollectiveResult{Root: root, Ranks: len(fin)}
	var max time.Duration
	if m.summaryFor(len(fin)) {
		sk := stats.NewQuantileSketch()
		for _, d := range fin {
			if d > max {
				max = d
			}
			sk.Add(d.Seconds())
		}
		res.Summary = sk
	} else {
		res.PerRank = make([]time.Duration, len(fin))
		copy(res.PerRank, fin)
		for _, d := range fin {
			if d > max {
				max = d
			}
		}
	}
	res.max = max
	return res
}

// unitResult is the p == 1 degenerate collective: no messages, no
// draws, completion at t = 0.
func (m *Machine) unitResult() CollectiveResult {
	var fin [1]time.Duration
	return m.finishResult(fin[:], 0)
}
