package cluster

import "time"

// Topology refines the network model with distance-dependent latency:
// §4.1.2 requires documenting "details of the network (topology,
// latency, and bandwidth)" precisely because placement-dependent hop
// counts shift latency distributions (and create the multi-modal shapes
// of Fig 2). The zero value (TopoFlat) keeps the uniform model.
type Topology int

const (
	// TopoFlat treats every inter-node pair identically (the default).
	TopoFlat Topology = iota
	// TopoDragonfly groups nodes (GroupSize per group): same-group pairs
	// pay the base latency, cross-group pairs add HopLatency (the global
	// optical hop of a Cray Aries dragonfly).
	TopoDragonfly
	// TopoFatTree arranges nodes under switches (GroupSize per leaf
	// switch): same-switch pairs pay the base latency; each extra tree
	// level toward the common ancestor adds HopLatency (up to 2 extra
	// levels modeled).
	TopoFatTree
)

// String returns the topology name.
func (t Topology) String() string {
	switch t {
	case TopoFlat:
		return "flat"
	case TopoDragonfly:
		return "dragonfly"
	case TopoFatTree:
		return "fat-tree"
	}
	return "Topology(?)"
}

// TopologyConfig extends Config with the distance model. It lives in its
// own struct so the flat presets stay untouched.
type TopologyConfig struct {
	Kind       Topology
	GroupSize  int           // nodes per group / leaf switch
	HopLatency time.Duration // extra one-way latency per additional hop
}

// SetTopology installs a distance model on the machine (call right
// after New; affects all subsequent traffic).
func (m *Machine) SetTopology(tc TopologyConfig) {
	m.topo = tc
}

// hopExtra returns the extra one-way latency between two nodes under the
// machine's topology.
func (m *Machine) hopExtra(nodeA, nodeB int) time.Duration {
	tc := m.topo
	if tc.Kind == TopoFlat || tc.GroupSize <= 0 || nodeA == nodeB {
		return 0
	}
	ga, gb := nodeA/tc.GroupSize, nodeB/tc.GroupSize
	switch tc.Kind {
	case TopoDragonfly:
		if ga != gb {
			return tc.HopLatency
		}
	case TopoFatTree:
		if ga == gb {
			return 0
		}
		// One extra level for neighbouring switch blocks, two beyond.
		const blockSize = 8 // leaf switches per aggregation block
		if ga/blockSize == gb/blockSize {
			return tc.HopLatency
		}
		return 2 * tc.HopLatency
	}
	return 0
}
