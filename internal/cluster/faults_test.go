package cluster

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/stats"
)

// medianLatency runs a ping-pong and returns the median one-way latency
// in seconds.
func medianLatency(t *testing.T, cfg Config, ranks, rounds int, seed uint64) float64 {
	t.Helper()
	m, err := New(cfg, ranks, seed)
	if err != nil {
		t.Fatal(err)
	}
	raw := m.PingPong(0, ranks-1, 64, rounds)
	xs := make([]float64, len(raw))
	for i, d := range raw {
		xs[i] = d.Seconds()
	}
	return stats.Median(xs)
}

func TestStragglerSlowsMessages(t *testing.T) {
	cfg := PizDora()
	clean := medianLatency(t, cfg, 48, 200, 9)

	cfg.Faults = &faults.Schedule{
		Stragglers: []faults.Straggler{{Node: 0, Factor: 4}},
	}
	slow := medianLatency(t, cfg, 48, 200, 9)
	if slow < 2*clean {
		t.Errorf("straggler median %g not clearly above clean %g", slow, clean)
	}
}

func TestStragglerSlowsCompute(t *testing.T) {
	cfg := Quiet(4, 2)
	cfg.Faults = &faults.Schedule{
		Stragglers: []faults.Straggler{{Node: 1, Factor: 3}},
	}
	m, err := New(cfg, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Packed placement: ranks 0,1 on node 0; ranks 2,3 on node 1.
	fast := m.ComputeTime(0, 1e7, 0)
	slow := m.ComputeTime(2, 1e7, 0)
	if slow < time.Duration(2.9*float64(fast)) {
		t.Errorf("straggler compute %v not ~3x the clean %v", slow, fast)
	}
}

func TestBurstWindowSpikes(t *testing.T) {
	cfg := Quiet(2, 1)
	cfg.Faults = &faults.Schedule{
		Bursts: []faults.Burst{{
			Start:    0,
			Duration: 10 * time.Millisecond,
			Factor:   10,
		}},
	}
	m, err := New(cfg, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	inside := m.PingPong(0, 1, 0, 1)[0]
	m.Advance(time.Second) // leave the window
	outside := m.PingPong(0, 1, 0, 1)[0]
	if inside < 5*outside {
		t.Errorf("burst latency %v not clearly above post-burst %v", inside, outside)
	}
}

func TestMessageLossRetransmits(t *testing.T) {
	cfg := Quiet(2, 1)
	cfg.Faults = &faults.Schedule{
		Loss: &faults.Loss{Prob: 0.3, Timeout: 50 * time.Microsecond, Backoff: 2, MaxRetries: 4},
	}
	m, err := New(cfg, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = m.PingPong(0, 1, 8, 500)
	fs := m.FaultStats()
	if fs.LostMessages == 0 || fs.Retransmits < fs.LostMessages {
		t.Errorf("p=0.3 over 1000 messages: stats = %+v", fs)
	}
	m.ResetFaultStats()
	if m.FaultStats() != (FaultStats{}) {
		t.Error("ResetFaultStats did not clear")
	}
}

func TestCrashedRankTimesOut(t *testing.T) {
	cfg := Quiet(4, 1)
	cfg.Faults = &faults.Schedule{
		Crashes:      []faults.Crash{{Rank: 1, At: 0}},
		CrashTimeout: 5 * time.Millisecond,
	}
	m, err := New(cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every exchange with rank 1 costs the full crash timeout.
	lat := m.PingPong(0, 1, 8, 1)[0]
	if lat < 5*time.Millisecond/2 {
		t.Errorf("crashed peer latency %v, want >= half of 5ms timeout", lat)
	}
	if m.FaultStats().CrashTimeouts == 0 {
		t.Error("crash timeout not accounted")
	}
}

func TestCollectivesWithCrashedRankComplete(t *testing.T) {
	// Satellite: collectives with a crashed/absent participant must
	// terminate (with visibly corrupted times), not hang.
	cfg := Quiet(8, 1)
	cfg.Faults = &faults.Schedule{
		Crashes:      []faults.Crash{{Rank: 3, At: 0}},
		CrashTimeout: 2 * time.Millisecond,
	}
	m, err := New(cfg, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := New(Quiet(8, 1), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	type coll struct {
		name string
		run  func(m *Machine) CollectiveResult
	}
	colls := []coll{
		{"reduce", func(m *Machine) CollectiveResult { return m.Reduce(8, nil) }},
		{"allreduce", func(m *Machine) CollectiveResult { return m.Allreduce(8, nil) }},
		{"bcast", func(m *Machine) CollectiveResult { return m.Bcast(8, nil) }},
		{"barrier", func(m *Machine) CollectiveResult { return m.Barrier(nil) }},
		{"gather", func(m *Machine) CollectiveResult { return m.Gather(8, nil) }},
		{"scatter", func(m *Machine) CollectiveResult { return m.Scatter(8, nil) }},
		{"allgather", func(m *Machine) CollectiveResult { return m.Allgather(8, nil) }},
		{"alltoall", func(m *Machine) CollectiveResult { return m.Alltoall(8, nil) }},
	}
	for _, c := range colls {
		faulty := c.run(m)
		baseline := c.run(clean)
		if len(faulty.PerRank) != 8 {
			t.Errorf("%s: %d per-rank times", c.name, len(faulty.PerRank))
		}
		if faulty.Max() < 2*time.Millisecond {
			t.Errorf("%s: max %v does not reflect the crash timeout", c.name, faulty.Max())
		}
		if faulty.Max() < 10*baseline.Max() {
			t.Errorf("%s: crashed run %v not clearly above clean %v",
				c.name, faulty.Max(), baseline.Max())
		}
	}
}

func TestClockStepBreaksDelayWindowSync(t *testing.T) {
	cfg := Quiet(4, 1)
	cfg.ClockOffsetMax = 100 * time.Microsecond
	base, err := New(cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cleanSync := base.DelayWindowSync(time.Millisecond, 3)

	// The same system, but rank 2's clock steps +300µs after the offset
	// estimation completed (pings finish within tens of µs on the quiet
	// system) and before the 1ms start deadline: the stepped clock
	// reaches the agreed start time early, so the rank jumps the gun by
	// roughly the step.
	step := 300 * time.Microsecond
	cfg.Faults = &faults.Schedule{
		ClockSteps: []faults.ClockStep{{Rank: 2, At: 400 * time.Microsecond, Step: step}},
	}
	faulty, err := New(cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	stepSync := faulty.DelayWindowSync(time.Millisecond, 3)
	if stepSync.MaxSkew < cleanSync.MaxSkew+step/2 {
		t.Errorf("clock step skew %v vs clean %v: step not reflected",
			stepSync.MaxSkew, cleanSync.MaxSkew)
	}
}

func TestFaultyMachineDeterministicUnderSeed(t *testing.T) {
	run := func() ([]time.Duration, FaultStats) {
		cfg := Pilatus()
		cfg.Faults, _ = faults.Preset("storm")
		m, err := New(cfg, 32, 77)
		if err != nil {
			t.Fatal(err)
		}
		return m.PingPong(0, 31, 64, 300), m.FaultStats()
	}
	a, sa := run()
	b, sb := run()
	if !reflect.DeepEqual(a, b) || sa != sb {
		t.Error("same seed and schedule must reproduce bit-for-bit")
	}
}

func TestNewRejectsInvalidSchedule(t *testing.T) {
	cfg := Quiet(2, 1)
	cfg.Faults = &faults.Schedule{
		Stragglers: []faults.Straggler{{Node: 0, Factor: 0.1}},
	}
	if _, err := New(cfg, 2, 1); err == nil {
		t.Error("invalid fault schedule must be rejected at construction")
	}
}
