package cluster

import (
	"math/bits"
	"time"
)

// This file adds the remaining collectives a benchmarking harness needs
// (SKaMPI-style coverage): allreduce, gather, scatter, allgather and
// alltoall. All use the same rendezvous cost model as Reduce, so their
// relative costs follow the textbook algorithmics (reduce+bcast,
// binomial trees, rings, pairwise exchange), and all evaluate
// level-wise on per-rank streams (collective_engine.go).

// Allreduce simulates reduce-to-root followed by a binomial broadcast of
// the result (the simple MPI algorithm for small payloads). Per-rank
// completion is when the rank holds the final value. At 2^20 ranks this
// is the tentpole single-sweep path: 20 reduction levels and 20
// broadcast levels, each one batched pass, with a fixed-size summary
// result.
func (m *Machine) Allreduce(bytes int, skew []time.Duration) CollectiveResult {
	p := len(m.procs)
	if p == 1 {
		return m.unitResult()
	}
	m.beginCollective()
	fin := m.grab(p)
	defer m.release(fin)
	root := m.reduceLevels(bytes, skew, fin)

	// Broadcast starts at the root's completion; it is a separate
	// invocation so its draws are independent of the reduction's.
	m.beginCollective()
	bcFin := m.grab(p)
	defer m.release(bcFin)
	m.bcastLevels(bytes, nil, bcFin)

	for r := 1; r < p; r++ {
		fin[r] = root + bcFin[r]
	}
	fin[0] = root // rank 0 has the value at reduce completion
	return m.finishResult(fin, root)
}

// Gather simulates a binomial-tree gather of `bytes` per rank to rank 0;
// inner nodes forward their whole accumulated subtree payload, so
// message sizes grow toward the root (the real cost structure of
// MPI_Gather). The subtree size under child c in round j is a closed
// form — 2^j ranks plus the extras folded into [c, c+2^j) — so the
// level-wise sweep needs no sequential bookkeeping.
func (m *Machine) Gather(bytes int, skew []time.Duration) CollectiveResult {
	p := len(m.procs)
	if p == 1 {
		return m.unitResult()
	}
	m.beginCollective()
	fin := m.grab(p)
	defer m.release(fin)
	acc := m.grab(p)
	defer m.release(acc)
	if skew != nil {
		copy(acc, skew)
	}
	pow2 := 1 << (bits.Len(uint(p)) - 1)
	extra := p - pow2

	recv := func(dst, src, nbytes int, fs *FaultStats) {
		sendReady := acc[src] + m.cfg.SendOverhead
		begin := max(sendReady, acc[dst])
		arrive := begin + m.msgLatencySrc(&m.streams[dst], fs, src, dst, nbytes, begin)
		if arrive > fin[src] {
			fin[src] = arrive
		}
		if arrive > acc[dst] {
			acc[dst] = arrive
		}
	}

	m.runLevel(extra, func(i int, fs *FaultStats) { recv(i, i+pow2, bytes, fs) })
	var step, half int
	level := func(k int, fs *FaultStats) {
		r := k * step
		c := r + half
		// Ranks accumulated below c: its 2^j-wide binomial subtree
		// plus any extras folded into it during the fold level.
		count := half
		if folded := extra - c; folded > 0 {
			if folded > half {
				folded = half
			}
			count += folded
		}
		recv(r, c, bytes*count, fs)
	}
	for j := 0; 1<<j < pow2; j++ {
		step = 1 << (j + 1)
		half = 1 << j
		m.runLevel(pow2/step, level)
	}
	for r := 0; r < pow2; r++ {
		if acc[r] > fin[r] {
			fin[r] = acc[r]
		}
	}
	return m.finishResult(fin, fin[0])
}

// Scatter simulates a binomial-tree scatter from rank 0: inner nodes
// forward the payload destined for their whole subtree, halving message
// sizes each level.
func (m *Machine) Scatter(bytes int, skew []time.Duration) CollectiveResult {
	p := len(m.procs)
	if p == 1 {
		return m.unitResult()
	}
	m.beginCollective()
	fin := m.grab(p)
	defer m.release(fin)
	have := m.grab(p)
	defer m.release(have)
	for r := 1; r < p; r++ {
		have[r] = -1
	}
	if skew != nil {
		have[0] = skew[0]
	}
	var width int
	level := func(r int, fs *FaultStats) {
		dst := r + width
		if have[r] < 0 {
			return
		}
		// Payload: everything for dst's subtree (ranks dst..min(dst+2^k, p)-1).
		count := min(width, p-dst)
		sendAt := have[r] + m.cfg.SendOverhead
		if skew != nil && skew[r] > sendAt {
			sendAt = skew[r]
		}
		arrive := sendAt + m.msgLatencySrc(&m.streams[dst], fs, r, dst, bytes*count, sendAt)
		if skew != nil && skew[dst] > arrive {
			arrive = skew[dst]
		}
		have[dst] = arrive
		if arrive > fin[dst] {
			fin[dst] = arrive
		}
		if sendAt > fin[r] {
			fin[r] = sendAt
		}
	}
	for k := 0; 1<<k < p; k++ {
		width = 1 << k
		n := width
		if n > p-width {
			n = p - width
		}
		m.runLevel(n, level)
	}
	res := m.finishResult(fin, 0)
	res.Root = res.Max()
	return res
}

// Allgather simulates the ring algorithm: p−1 steps, each rank passing
// the next block to its right neighbour — bandwidth-optimal for large
// payloads, Θ(p) latency. Every rank receives exactly once per step, so
// each step is one batched level.
func (m *Machine) Allgather(bytes int, skew []time.Duration) CollectiveResult {
	p := len(m.procs)
	if p == 1 {
		return m.unitResult()
	}
	m.beginCollective()
	fin := m.grab(p)
	defer m.release(fin)
	cur := m.grab(p)
	next := m.grab(p)
	defer m.release(cur)
	defer m.release(next)
	if skew != nil {
		copy(cur, skew)
	}
	level := func(r int, fs *FaultStats) {
		src := r - 1
		if src < 0 {
			src += p
		}
		sendAt := cur[src] + m.cfg.SendOverhead
		arrive := sendAt + m.msgLatencySrc(&m.streams[r], fs, src, r, bytes, sendAt)
		next[r] = max(cur[r], arrive)
	}
	for step := 0; step < p-1; step++ {
		m.runLevel(p, level)
		cur, next = next, cur
	}
	copy(fin, cur)
	res := m.finishResult(fin, 0)
	res.Root = res.Max()
	return res
}

// Alltoall simulates the pairwise-exchange algorithm: p−1 rounds, in
// round k rank r exchanges blocks with rank r XOR k (for power-of-two p)
// or (r+k) mod p otherwise. Each round's receives are one batched level.
func (m *Machine) Alltoall(bytes int, skew []time.Duration) CollectiveResult {
	p := len(m.procs)
	if p == 1 {
		return m.unitResult()
	}
	m.beginCollective()
	fin := m.grab(p)
	defer m.release(fin)
	cur := m.grab(p)
	next := m.grab(p)
	defer m.release(cur)
	defer m.release(next)
	if skew != nil {
		copy(cur, skew)
	}
	pow2 := p&(p-1) == 0
	var round int
	level := func(r int, fs *FaultStats) {
		var partner int
		if pow2 {
			partner = r ^ round
		} else {
			partner = (r + round) % p
		}
		// The exchange completes when the later party's message
		// lands at the other side.
		sendAt := cur[r] + m.cfg.SendOverhead
		partnerSend := cur[partner] + m.cfg.SendOverhead
		begin := max(sendAt, partnerSend) // rendezvous pairing
		arrive := begin + m.msgLatencySrc(&m.streams[r], fs, partner, r, bytes, begin)
		next[r] = max(cur[r], arrive)
	}
	for k := 1; k < p; k++ {
		round = k
		m.runLevel(p, level)
		cur, next = next, cur
	}
	copy(fin, cur)
	res := m.finishResult(fin, 0)
	res.Root = res.Max()
	return res
}
