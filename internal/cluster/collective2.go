package cluster

import (
	"math/bits"
	"time"
)

// This file adds the remaining collectives a benchmarking harness needs
// (SKaMPI-style coverage): allreduce, gather, scatter, allgather and
// alltoall. All use the same rendezvous cost model as Reduce, so their
// relative costs follow the textbook algorithmics (reduce+bcast,
// binomial trees, rings, pairwise exchange).

// Allreduce simulates reduce-to-root followed by a binomial broadcast of
// the result (the simple MPI algorithm for small payloads). Per-rank
// completion is when the rank holds the final value.
func (m *Machine) Allreduce(bytes int, skew []time.Duration) CollectiveResult {
	p := len(m.procs)
	res := CollectiveResult{PerRank: make([]time.Duration, p)}
	if p == 1 {
		return res
	}
	red := m.Reduce(bytes, skew)
	// Broadcast starts at the root's completion.
	bc := m.Bcast(bytes, nil)
	for r := 0; r < p; r++ {
		res.PerRank[r] = red.Root + bc.PerRank[r]
	}
	res.Root = red.Root // rank 0 has the value at reduce completion
	res.PerRank[0] = red.Root
	return res
}

// Gather simulates a binomial-tree gather of `bytes` per rank to rank 0;
// inner nodes forward their whole accumulated subtree payload, so
// message sizes grow toward the root (the real cost structure of
// MPI_Gather).
func (m *Machine) Gather(bytes int, skew []time.Duration) CollectiveResult {
	p := len(m.procs)
	res := CollectiveResult{PerRank: make([]time.Duration, p)}
	if p == 1 {
		return res
	}
	start := make([]time.Duration, p)
	if skew != nil {
		copy(start, skew)
	}
	pow2 := 1 << (bits.Len(uint(p)) - 1)
	extra := p - pow2

	finish := func(r int, at time.Duration) {
		if at > res.PerRank[r] {
			res.PerRank[r] = at
		}
	}
	ready := make([]time.Duration, pow2)
	subtree := make([]int, pow2) // ranks accumulated below (incl. self)
	for i := range subtree {
		subtree[i] = 1
	}
	for r := pow2 - 1; r >= 0; r-- {
		cur := start[r]
		recv := func(src int, srcReady time.Duration, srcCount int) {
			sendReady := srcReady + m.cfg.SendOverhead
			begin := max(sendReady, cur)
			arrive := begin + m.msgLatency(src, r, bytes*srcCount, begin)
			finish(src, arrive)
			if arrive > cur {
				cur = arrive
			}
		}
		if r < extra {
			recv(r+pow2, start[r+pow2], 1)
			subtree[r]++
		}
		limit := bits.TrailingZeros(uint(r))
		if r == 0 {
			limit = bits.Len(uint(pow2)) - 1
		}
		for j := 0; j < limit; j++ {
			c := r + 1<<j
			if c < pow2 {
				recv(c, ready[c], subtree[c])
				subtree[r] += subtree[c]
			}
		}
		ready[r] = cur
		finish(r, cur)
	}
	res.Root = res.PerRank[0]
	return res
}

// Scatter simulates a binomial-tree scatter from rank 0: inner nodes
// forward the payload destined for their whole subtree, halving message
// sizes each level.
func (m *Machine) Scatter(bytes int, skew []time.Duration) CollectiveResult {
	p := len(m.procs)
	res := CollectiveResult{PerRank: make([]time.Duration, p)}
	if p == 1 {
		return res
	}
	have := make([]time.Duration, p)
	for r := 1; r < p; r++ {
		have[r] = -1
	}
	if skew != nil {
		have[0] = skew[0]
	}
	for k := 0; 1<<k < p; k++ {
		for r := 0; r < 1<<k && r < p; r++ {
			dst := r + 1<<k
			if dst >= p || have[r] < 0 {
				continue
			}
			// Payload: everything for dst's subtree (ranks dst..min(dst+2^k, p)-1).
			count := min(1<<k, p-dst)
			sendAt := have[r] + m.cfg.SendOverhead
			if skew != nil && skew[r] > sendAt {
				sendAt = skew[r]
			}
			arrive := sendAt + m.msgLatency(r, dst, bytes*count, sendAt)
			if skew != nil && skew[dst] > arrive {
				arrive = skew[dst]
			}
			have[dst] = arrive
			if arrive > res.PerRank[dst] {
				res.PerRank[dst] = arrive
			}
			if sendAt > res.PerRank[r] {
				res.PerRank[r] = sendAt
			}
		}
	}
	res.Root = res.Max()
	return res
}

// Allgather simulates the ring algorithm: p−1 steps, each rank passing
// the next block to its right neighbour — bandwidth-optimal for large
// payloads, Θ(p) latency.
func (m *Machine) Allgather(bytes int, skew []time.Duration) CollectiveResult {
	p := len(m.procs)
	res := CollectiveResult{PerRank: make([]time.Duration, p)}
	if p == 1 {
		return res
	}
	cur := make([]time.Duration, p)
	if skew != nil {
		copy(cur, skew)
	}
	next := make([]time.Duration, p)
	for step := 0; step < p-1; step++ {
		for r := 0; r < p; r++ {
			src := (r - 1 + p) % p
			sendAt := cur[src] + m.cfg.SendOverhead
			arrive := sendAt + m.msgLatency(src, r, bytes, sendAt)
			next[r] = max(cur[r], arrive)
		}
		cur, next = next, cur
	}
	copy(res.PerRank, cur)
	res.Root = res.Max()
	return res
}

// Alltoall simulates the pairwise-exchange algorithm: p−1 rounds, in
// round k rank r exchanges blocks with rank r XOR k (for power-of-two p)
// or (r+k) mod p otherwise.
func (m *Machine) Alltoall(bytes int, skew []time.Duration) CollectiveResult {
	p := len(m.procs)
	res := CollectiveResult{PerRank: make([]time.Duration, p)}
	if p == 1 {
		return res
	}
	cur := make([]time.Duration, p)
	if skew != nil {
		copy(cur, skew)
	}
	next := make([]time.Duration, p)
	pow2 := p&(p-1) == 0
	for k := 1; k < p; k++ {
		for r := 0; r < p; r++ {
			var partner int
			if pow2 {
				partner = r ^ k
			} else {
				partner = (r + k) % p
			}
			// The exchange completes when the later party's message
			// lands at the other side.
			sendAt := cur[r] + m.cfg.SendOverhead
			partnerSend := cur[partner] + m.cfg.SendOverhead
			begin := max(sendAt, partnerSend) // rendezvous pairing
			arrive := begin + m.msgLatency(partner, r, bytes, begin)
			next[r] = max(cur[r], arrive)
		}
		cur, next = next, cur
	}
	copy(res.PerRank, cur)
	res.Root = res.Max()
	return res
}
