package cluster

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/faults"
)

// noisyFaultCfg returns a noisy system plus a fault schedule, the
// hardest case for evaluation-order invariance: every message draws
// noise, some draw retransmits, and a node straggles.
func noisyFaultCfg() Config {
	cfg := PizDaint()
	cfg.Faults = &faults.Schedule{
		Stragglers: []faults.Straggler{{Node: 3, Factor: 2.5, Start: 0}},
		Bursts:     []faults.Burst{{Start: 50 * time.Microsecond, Duration: 450 * time.Microsecond, Factor: 3}},
		Loss:       &faults.Loss{Prob: 0.02, Timeout: 20 * time.Microsecond, Backoff: 2, MaxRetries: 2},
	}
	return cfg
}

// TestCollectiveBatchWorkerInvariance is the tentpole determinism
// golden test: for a fixed seed, collective output must be bit-identical
// for every batch size and worker count, including fault accounting.
// P=5000 makes the large tree levels (2048+) cross the parallel cutoff
// so the worker pool really runs.
func TestCollectiveBatchWorkerInvariance(t *testing.T) {
	const p = 5000
	const seed = 424242
	skew := make([]time.Duration, p)
	for r := range skew {
		skew[r] = time.Duration(r%7) * time.Microsecond
	}
	collectives := map[string]func(*Machine) CollectiveResult{
		"reduce":    func(m *Machine) CollectiveResult { return m.Reduce(64, skew) },
		"bcast":     func(m *Machine) CollectiveResult { return m.Bcast(64, skew) },
		"barrier":   func(m *Machine) CollectiveResult { return m.Barrier(skew) },
		"allreduce": func(m *Machine) CollectiveResult { return m.Allreduce(64, skew) },
		"gather":    func(m *Machine) CollectiveResult { return m.Gather(64, skew) },
		"scatter":   func(m *Machine) CollectiveResult { return m.Scatter(64, skew) },
	}
	type variant struct{ batch, workers int }
	// {0, 0} is the shipped default — since the parallel-default change
	// it resolves to min(GOMAXPROCS, level/2048) workers, so the
	// reference run itself exercises the auto fan-out; {0, -1} is the
	// explicit serial opt-out it must match bit-for-bit.
	variants := []variant{
		{0, 0}, {0, -1}, {1, 1}, {7, 2}, {256, 8}, {4096, 2}, {1, 8}, {4096, 8},
	}
	for name, run := range collectives {
		var ref CollectiveResult
		var refStats FaultStats
		for i, v := range variants {
			cfg := noisyFaultCfg()
			cfg.CollectiveBatch = v.batch
			cfg.CollectiveWorkers = v.workers
			m := mustNew(t, cfg, p, seed)
			got := run(m)
			if i == 0 {
				ref = got
				refStats = m.FaultStats()
				if len(ref.PerRank) != p {
					t.Fatalf("%s: reference run not in exact mode", name)
				}
				continue
			}
			if got.Root != ref.Root || got.Max() != ref.Max() {
				t.Errorf("%s batch=%d workers=%d: root/max %v/%v, want %v/%v",
					name, v.batch, v.workers, got.Root, got.Max(), ref.Root, ref.Max())
			}
			for r := range ref.PerRank {
				if got.PerRank[r] != ref.PerRank[r] {
					t.Fatalf("%s batch=%d workers=%d: rank %d = %v, want %v",
						name, v.batch, v.workers, r, got.PerRank[r], ref.PerRank[r])
				}
			}
			if m.FaultStats() != refStats {
				t.Errorf("%s batch=%d workers=%d: fault stats %+v, want %+v",
					name, v.batch, v.workers, m.FaultStats(), refStats)
			}
		}
	}
}

// TestRingCollectivesBatchInvariance covers the ring/pairwise
// collectives at a size where runs stay cheap (their message count is
// Θ(p²)); the engine path is the same runLevel machinery.
func TestRingCollectivesBatchInvariance(t *testing.T) {
	const p = 300
	for name, run := range map[string]func(*Machine) CollectiveResult{
		"allgather": func(m *Machine) CollectiveResult { return m.Allgather(64, nil) },
		"alltoall":  func(m *Machine) CollectiveResult { return m.Alltoall(64, nil) },
	} {
		var ref CollectiveResult
		for i, v := range []struct{ batch, workers int }{{0, 0}, {3, 2}, {512, 8}} {
			cfg := noisyFaultCfg()
			cfg.CollectiveBatch = v.batch
			cfg.CollectiveWorkers = v.workers
			m := mustNew(t, cfg, p, 99)
			got := run(m)
			if i == 0 {
				ref = got
				continue
			}
			for r := range ref.PerRank {
				if got.PerRank[r] != ref.PerRank[r] {
					t.Fatalf("%s variant %d: rank %d differs", name, i, r)
				}
			}
		}
	}
}

// TestSummaryBoundary pins the exact/summary switch: identical seeds
// must produce bit-identical Max/Root whichever way the result is
// packaged, auto mode must match forced per-rank below the threshold
// bit-for-bit, and the sketch must describe all P ranks.
func TestSummaryBoundary(t *testing.T) {
	const p = 600
	const seed = 7
	build := func(mode ResultMode, threshold int) *Machine {
		cfg := noisyFaultCfg()
		cfg.ResultMode = mode
		cfg.SummaryThreshold = threshold
		return mustNew(t, cfg, p, seed)
	}

	exact := build(ModePerRank, 0).Allreduce(64, nil)
	summary := build(ModeSummary, 0).Allreduce(64, nil)
	autoBelow := build(ModeAuto, p+1).Allreduce(64, nil)
	autoAbove := build(ModeAuto, p).Allreduce(64, nil)

	if len(exact.PerRank) != p || exact.Summary != nil {
		t.Fatal("ModePerRank must materialize PerRank and no sketch")
	}
	if summary.PerRank != nil || summary.Summary == nil {
		t.Fatal("ModeSummary must return a sketch and no PerRank")
	}
	if summary.Summary.Count() != uint64(p) {
		t.Errorf("sketch count = %d, want %d", summary.Summary.Count(), p)
	}
	if summary.Max() != exact.Max() || summary.Root != exact.Root || summary.Ranks != exact.Ranks {
		t.Errorf("summary (max %v root %v) != exact (max %v root %v)",
			summary.Max(), summary.Root, exact.Max(), exact.Root)
	}
	if got, want := summary.Summary.Max(), exact.Max().Seconds(); got != want {
		t.Errorf("sketch max %g != exact max %g", got, want)
	}
	// Below the threshold, auto is bit-identical to forced per-rank.
	if len(autoBelow.PerRank) != p {
		t.Fatal("auto below threshold must stay exact")
	}
	for r := range exact.PerRank {
		if autoBelow.PerRank[r] != exact.PerRank[r] {
			t.Fatalf("auto below threshold diverges at rank %d", r)
		}
	}
	// At the threshold, auto switches to the summary representation of
	// the same run.
	if autoAbove.PerRank != nil || autoAbove.Summary == nil {
		t.Fatal("auto at threshold must summarize")
	}
	if autoAbove.Max() != exact.Max() {
		t.Errorf("auto summary max %v != exact %v", autoAbove.Max(), exact.Max())
	}
	// The sketch quantiles must be bracketed by the exact extremes.
	med := autoAbove.Summary.Quantile(0.5)
	if med < autoAbove.Summary.Min() || med > autoAbove.Summary.Max() {
		t.Errorf("sketch median %g outside [min,max]", med)
	}
}

// TestExactPerRankOverride pins the escape hatch consumers like HPL and
// the sync schemes use.
func TestExactPerRankOverride(t *testing.T) {
	cfg := Quiet(64, 8)
	cfg.ResultMode = ModeSummary
	m := mustNew(t, cfg, 128, 3)
	if res := m.Reduce(8, nil); res.PerRank != nil {
		t.Fatal("ModeSummary should not materialize PerRank")
	}
	restore := m.ExactPerRank()
	if res := m.Reduce(8, nil); len(res.PerRank) != 128 {
		t.Fatal("ExactPerRank must force per-rank results")
	}
	restore()
	if res := m.Reduce(8, nil); res.PerRank != nil {
		t.Fatal("restore must re-enable summary mode")
	}
	// The sync schemes force exact mode internally even under ModeSummary.
	if sync := m.BarrierSync(); len(sync.Skew) != 128 {
		t.Fatal("BarrierSync must produce per-rank skews in summary mode")
	}
	if sync := m.DelayWindowSync(time.Millisecond, 2); len(sync.Skew) != 128 {
		t.Fatal("DelayWindowSync must produce per-rank skews in summary mode")
	}
}

// TestDefaultCollectiveWorkers pins the CollectiveWorkers == 0
// resolution: parallel by default, scaled so each worker owns at least
// one minimum-size run, never exceeding GOMAXPROCS, floored at 1.
func TestDefaultCollectiveWorkers(t *testing.T) {
	maxProcs := runtime.GOMAXPROCS(0)
	for _, tc := range []struct{ n, want int }{
		{0, 1},
		{minParallelRound - 1, 1},
		{minParallelRound, 1},
		{2 * minParallelRound, min(2, maxProcs)},
		{1 << 20, min((1<<20)/minParallelRound, maxProcs)},
	} {
		if got := defaultCollectiveWorkers(tc.n); got != tc.want {
			t.Errorf("defaultCollectiveWorkers(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}
