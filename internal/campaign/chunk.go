package campaign

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Chunk is one contiguous span of a campaign file, read for shipment:
// Data covers [Off, Off+len(Data)) of the file, CRC is crc32.IEEE over
// Data, Size is the file's total size at read time, and EOF reports
// whether this chunk reaches it. Shipping a journal as chunks keeps the
// resume discipline end-to-end: the receiver appends at its own size,
// acknowledges what it has, and a reconnecting sender re-reads only the
// suffix.
type Chunk struct {
	Off  int64
	Data []byte
	CRC  uint32
	Size int64
	EOF  bool
}

// chunkReadPause is a test seam invoked between the pre-read stat and
// the read itself, where a concurrent append can land. Production is a
// no-op.
var chunkReadPause = func() {}

// ReadFileChunk reads up to max bytes of path starting at off. off may
// equal the file size (an empty EOF chunk — the probe a sender uses to
// learn the receiver's resume offset costs no payload). off beyond the
// file size is an error: the caller's view of the file is ahead of
// reality, which is exactly the divergence chunked shipment must
// surface, not paper over.
//
// EOF and Size are computed from a re-stat taken AFTER the read: the
// file is a live journal an executor appends to concurrently, and a
// size captured before the read goes stale the moment an append lands
// in between — the sender would then believe it reached EOF while
// bytes remain, parking shipment until the next poll instead of
// draining immediately.
func ReadFileChunk(path string, off int64, max int) (Chunk, error) {
	if off < 0 {
		return Chunk{}, fmt.Errorf("campaign: negative chunk offset %d", off)
	}
	if max <= 0 {
		max = 64 << 10
	}
	f, err := os.Open(path)
	if err != nil {
		return Chunk{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return Chunk{}, err
	}
	size := st.Size()
	if off > size {
		return Chunk{}, fmt.Errorf("campaign: chunk offset %d beyond %s (%d bytes)", off, path, size)
	}
	n := size - off
	if n > int64(max) {
		n = int64(max)
	}
	chunkReadPause()
	buf := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(f, off, n), buf); err != nil {
		return Chunk{}, fmt.Errorf("campaign: reading chunk of %s at %d: %w", path, off, err)
	}
	// Re-stat: an append-only journal never shrinks, so the post-read
	// size is the authoritative floor for whether bytes remain past
	// this chunk.
	st2, err := f.Stat()
	if err != nil {
		return Chunk{}, err
	}
	if st2.Size() > size {
		size = st2.Size()
	}
	return Chunk{
		Off:  off,
		Data: buf,
		CRC:  crc32.ChecksumIEEE(buf),
		Size: size,
		EOF:  off+n >= size,
	}, nil
}

// ReadJournalChunk reads a chunk of the campaign journal in dir.
func ReadJournalChunk(dir string, off int64, max int) (Chunk, error) {
	return ReadFileChunk(filepath.Join(dir, JournalFile), off, max)
}

// ValidPrefix replays journal bytes and reports how many leading bytes
// form whole, CRC-verified records — the truncation point a resumed
// journal is cut back to. Chunked shipment needs it because a crash can
// ship a torn tail before dying: the replacement executor drops that
// tail locally (Open truncates to the valid prefix) and must shrink the
// receiver's mirror to the same point before appending its divergent
// continuation.
func ValidPrefix(journal []byte) int64 {
	st := Replay(journal)
	return st.ValidBytes
}
