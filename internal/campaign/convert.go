package campaign

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"path/filepath"

	"repro/internal/colenc"
)

// ConvertInfo summarizes a journal format conversion.
type ConvertInfo struct {
	// From and To are the source and target formats (From is the
	// sniffed format, or the target itself when the journal was already
	// in it and nothing was rewritten).
	From, To Format
	// Records is the number of records carried across.
	Records int
	// OldBytes and NewBytes are the on-disk journal sizes before and
	// after (equal when no rewrite happened).
	OldBytes, NewBytes int64
}

// encodeJournal serializes records in the given format, from scratch —
// the exact bytes a fresh journal writing these records would hold
// (v2: full chunks of flushEvery records, then one final short chunk).
func encodeJournal(recs []Record, format Format, flushEvery int) ([]byte, error) {
	if flushEvery <= 0 {
		flushEvery = DefaultFlushEvery
	}
	switch format {
	case FormatJSONL:
		var out []byte
		for _, r := range recs {
			rb, err := json.Marshal(r)
			if err != nil {
				return nil, fmt.Errorf("campaign: encoding record %d: %w", r.Seq, err)
			}
			lb, err := json.Marshal(frame{CRC: crc32.ChecksumIEEE(rb), Rec: rb})
			if err != nil {
				return nil, fmt.Errorf("campaign: framing record %d: %w", r.Seq, err)
			}
			out = append(out, lb...)
			out = append(out, '\n')
		}
		return out, nil
	case FormatV2:
		out := append([]byte(nil), magicV2...)
		for len(recs) > 0 {
			n := flushEvery
			if n > len(recs) {
				n = len(recs)
			}
			out = colenc.AppendFrame(out, appendChunkV2(nil, recs[:n]))
			recs = recs[n:]
		}
		return out, nil
	default:
		return nil, fmt.Errorf("campaign: cannot encode journal format %v", format)
	}
}

// ConvertJournal rewrites the campaign journal in dir into the target
// format (flushEvery tunes the v2 chunk width; 0 means the default).
// The conversion is refused on a torn journal — convert must never
// silently discard bytes a resume would have surfaced as torn; Open the
// campaign first to adjudicate the tail. The rewrite is verified
// (re-replayed and compared record-for-record against the source)
// before being published atomically and durably over the old journal,
// so a crash at any point leaves either the old or the new journal
// intact, never a hybrid. A journal already in the target format is
// left untouched.
func ConvertJournal(dir string, to Format, flushEvery int) (ConvertInfo, error) {
	if to != FormatJSONL && to != FormatV2 {
		return ConvertInfo{}, fmt.Errorf("campaign: cannot convert to journal format %v", to)
	}
	_, st, err := Load(dir)
	if err != nil {
		return ConvertInfo{}, err
	}
	if st.Torn {
		return ConvertInfo{}, fmt.Errorf("campaign: journal in %s has a torn tail; resume the campaign (or Open it) before converting", dir)
	}
	if st.Format == 0 {
		// Empty journal: no bytes to sniff. It is a valid (empty) v1
		// journal as it stands.
		st.Format = FormatJSONL
	}
	path := filepath.Join(dir, JournalFile)
	oldBytes := st.ValidBytes
	info := ConvertInfo{From: st.Format, To: to, Records: len(st.Records), OldBytes: oldBytes}
	if st.Format == to {
		info.NewBytes = oldBytes
		return info, nil
	}
	nb, err := encodeJournal(st.Records, to, flushEvery)
	if err != nil {
		return ConvertInfo{}, err
	}
	// Verify before publishing: the new bytes must replay to exactly
	// the records the old journal held — a conversion is only a
	// conversion if replay cannot tell (beyond the format tag).
	got := Replay(nb)
	if got.Torn || len(got.Records) != len(st.Records) {
		return ConvertInfo{}, fmt.Errorf("campaign: conversion self-check failed (torn=%v records=%d want %d)", got.Torn, len(got.Records), len(st.Records))
	}
	for i, r := range got.Records {
		if r.Seq != st.Records[i].Seq || r.Event != st.Records[i].Event {
			return ConvertInfo{}, fmt.Errorf("campaign: conversion self-check failed at record %d", i+1)
		}
	}
	tmp := path + ".convert"
	if err := writeFileDurable(tmp, nb); err != nil {
		return ConvertInfo{}, fmt.Errorf("campaign: %w", err)
	}
	if err := renameFile(tmp, path); err != nil {
		return ConvertInfo{}, fmt.Errorf("campaign: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return ConvertInfo{}, fmt.Errorf("campaign: syncing directory: %w", err)
	}
	info.NewBytes = int64(len(nb))
	return info, nil
}
