package campaign

import (
	"fmt"

	"repro/internal/rules"
)

// LoadVerified is the merge reader: it loads a unit campaign directory
// and verifies the recorded manifest against the manifest the caller
// expects (built from the sweep's unit table), refusing with an
// ErrManifestDrift error that names exactly which fields mismatch. It
// is the read-side counterpart of CheckResume — a merged report must
// never pool a journal whose recorded setup drifted from the sweep that
// claims it (Rule 9).
//
// The journal's verified prefix is returned even on drift so a refusing
// merge can still report what the drifted directory contained.
func LoadVerified(dir string, want Manifest) (Manifest, State, []rules.Finding, error) {
	recorded, st, err := Load(dir)
	if err != nil {
		return Manifest{}, State{}, nil, err
	}
	if ds := DriftFields(recorded, want); len(ds) > 0 {
		return recorded, st, driftFindings(ds, "merge"), driftError(ds)
	}
	return recorded, st, nil, nil
}

// VerifySweepMember checks that a unit manifest carries the expected
// sweep membership (hash and unit id); a standalone campaign or one
// from a different sweep is refused with a named-field drift error.
func VerifySweepMember(m Manifest, sweepHash, unitID string) error {
	switch {
	case m.Sweep == nil:
		return fmt.Errorf("%w: mismatched field(s): sweep membership (recorded standalone campaign, current sweep unit %s)",
			ErrManifestDrift, unitID)
	case m.Sweep.SweepHash != sweepHash:
		return fmt.Errorf("%w: mismatched field(s): sweep hash (recorded %s, current %s)",
			ErrManifestDrift, short(m.Sweep.SweepHash), short(sweepHash))
	case m.Sweep.UnitID != unitID:
		return fmt.Errorf("%w: mismatched field(s): sweep unit (recorded %s, current %s)",
			ErrManifestDrift, m.Sweep.UnitID, unitID)
	}
	return nil
}
