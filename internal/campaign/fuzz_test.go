package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
)

// validJournal builds an n-record journal in memory for fuzz seeding.
func validJournal(tb testing.TB, n int) []byte {
	tb.Helper()
	dir := tb.TempDir()
	j, err := Create(dir, Manifest{Version: FormatVersion, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	kinds := []bench.EventKind{
		bench.EventWarmup, bench.EventSample, bench.EventRetry,
		bench.EventPanic, bench.EventLoss,
	}
	for i := 1; i <= n; i++ {
		ev := bench.Event{Kind: kinds[i%len(kinds)], Calls: i}
		if ev.Kind == bench.EventSample {
			ev.Value = float64(i) * 1.5
		}
		if err := j.Record(ev); err != nil {
			tb.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzReplay throws arbitrary bytes — seeded with valid journals, torn
// writes, bit flips, and truncations — at the journal reader. The
// reader must never panic, never invent records (dense sequence
// numbers, CRC-verified), and must be idempotent: re-reading the
// verified prefix yields exactly the same records.
func FuzzReplay(f *testing.F) {
	valid := validJournal(f, 6)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"crc":0,"rec":{"seq":1,"event":{"kind":"sample","value":1,"calls":1}}}` + "\n"))
	f.Add([]byte(`{"crc":123,"rec":{"seq":`)) // torn mid-append
	f.Add(append(append([]byte(nil), valid...), valid[:37]...))
	if len(valid) > 10 {
		// Truncations and a bit flip as explicit seeds; the fuzzer
		// mutates from here.
		f.Add(valid[:len(valid)/2])
		f.Add(valid[:len(valid)-1])
		flipped := append([]byte(nil), valid...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		st := Replay(data)
		if st.ValidBytes < 0 || st.ValidBytes > int64(len(data)) {
			t.Fatalf("ValidBytes %d outside [0, %d]", st.ValidBytes, len(data))
		}
		for i, r := range st.Records {
			if r.Seq != i+1 {
				t.Fatalf("non-dense seq %d at index %d", r.Seq, i)
			}
		}
		// Idempotence over the verified prefix: same records, no tear.
		again := Replay(data[:st.ValidBytes])
		if again.Torn || len(again.Records) != len(st.Records) {
			t.Fatalf("verified prefix re-replays torn=%v n=%d, want clean n=%d",
				again.Torn, len(again.Records), len(st.Records))
		}
		for i := range again.Records {
			if again.Records[i] != st.Records[i] {
				t.Fatalf("record %d changed across replays", i)
			}
		}
		// The event stream must fold without panics in bench, whatever
		// the journal contained.
		_ = st.Events()
		_ = st.Samples()
	})
}

// FuzzReplayTruncation drives the dedicated torn-write invariant: for a
// valid journal truncated at any offset, replay returns exactly the
// records whose full lines survived.
func FuzzReplayTruncation(f *testing.F) {
	valid := validJournal(f, 4)
	lineEnds := []int{}
	for i, b := range valid {
		if b == '\n' {
			lineEnds = append(lineEnds, i+1)
		}
	}
	f.Add(0)
	f.Add(len(valid) / 2)
	f.Add(len(valid) - 1)
	f.Add(len(valid))
	f.Fuzz(func(t *testing.T, cut int) {
		if cut < 0 || cut > len(valid) {
			t.Skip()
		}
		st := Replay(valid[:cut])
		want := 0
		for _, e := range lineEnds {
			if cut >= e {
				want++
			}
		}
		if len(st.Records) != want {
			t.Fatalf("cut %d: %d records, want %d", cut, len(st.Records), want)
		}
		if !bytes.Equal(valid[:st.ValidBytes], valid[:st.ValidBytes]) {
			t.Fatal("unreachable")
		}
	})
}
