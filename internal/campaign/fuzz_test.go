package campaign

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/colenc"
)

// validJournal builds an n-record v1 journal in memory for fuzz seeding.
func validJournal(tb testing.TB, n int) []byte {
	return validJournalOpt(tb, n, JournalOptions{})
}

// validJournalOpt builds an n-record journal in the given format.
func validJournalOpt(tb testing.TB, n int, opt JournalOptions) []byte {
	tb.Helper()
	dir := tb.TempDir()
	j, err := CreateJournal(dir, Manifest{Version: FormatVersion, Seed: 1}, opt)
	if err != nil {
		tb.Fatal(err)
	}
	kinds := []bench.EventKind{
		bench.EventWarmup, bench.EventSample, bench.EventRetry,
		bench.EventPanic, bench.EventLoss,
	}
	for i := 1; i <= n; i++ {
		ev := bench.Event{Kind: kinds[i%len(kinds)], Calls: i}
		if ev.Kind == bench.EventSample {
			ev.Value = float64(i) * 1.5
		}
		if err := j.Record(ev); err != nil {
			tb.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzReplay throws arbitrary bytes — seeded with valid journals, torn
// writes, bit flips, and truncations — at the journal reader. The
// reader must never panic, never invent records (dense sequence
// numbers, CRC-verified), and must be idempotent: re-reading the
// verified prefix yields exactly the same records.
func FuzzReplay(f *testing.F) {
	valid := validJournal(f, 6)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"crc":0,"rec":{"seq":1,"event":{"kind":"sample","value":1,"calls":1}}}` + "\n"))
	f.Add([]byte(`{"crc":123,"rec":{"seq":`)) // torn mid-append
	f.Add(append(append([]byte(nil), valid...), valid[:37]...))
	if len(valid) > 10 {
		// Truncations and a bit flip as explicit seeds; the fuzzer
		// mutates from here.
		f.Add(valid[:len(valid)/2])
		f.Add(valid[:len(valid)-1])
		flipped := append([]byte(nil), valid...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}
	// Shard-merge corpus: the journal shapes a SIGKILLed executor leaves
	// behind for the merge reader — a second unit's journal appended
	// after a clean one (two dense seq runs: the second must be dropped
	// as a tear, never silently concatenated into one campaign), and a
	// clean journal whose tail died mid-fsync.
	other := validJournal(f, 3)
	f.Add(append(append([]byte(nil), valid...), other...))
	if nl := bytes.IndexByte(other, '\n'); nl > 0 {
		f.Add(append(append([]byte(nil), valid...), other[:nl/2]...))
	}
	// Cross-format seeds: sniffing must route v2 bytes (and hybrids that
	// can only arise from corruption) through the same invariants.
	v2 := validJournalOpt(f, 5, JournalOptions{Format: FormatV2, FlushEvery: 2})
	f.Add(v2)
	f.Add(append(append([]byte(nil), v2...), valid...))
	f.Add(append(append([]byte(nil), valid...), v2...))

	f.Fuzz(func(t *testing.T, data []byte) {
		st := Replay(data)
		if st.ValidBytes < 0 || st.ValidBytes > int64(len(data)) {
			t.Fatalf("ValidBytes %d outside [0, %d]", st.ValidBytes, len(data))
		}
		for i, r := range st.Records {
			if r.Seq != i+1 {
				t.Fatalf("non-dense seq %d at index %d", r.Seq, i)
			}
		}
		// Idempotence over the verified prefix: same records, no tear.
		again := Replay(data[:st.ValidBytes])
		if again.Torn || len(again.Records) != len(st.Records) {
			t.Fatalf("verified prefix re-replays torn=%v n=%d, want clean n=%d",
				again.Torn, len(again.Records), len(st.Records))
		}
		for i := range again.Records {
			if again.Records[i] != st.Records[i] {
				t.Fatalf("record %d changed across replays", i)
			}
		}
		// The event stream must fold without panics in bench, whatever
		// the journal contained.
		_ = st.Events()
		_ = st.Samples()
	})
}

// FuzzJournalV2 throws arbitrary bytes — seeded with valid v2 journals
// at several chunk widths, torn headers, truncations, bit flips,
// spliced journals, and handcrafted hostile chunks (oversized counts,
// non-dense firstSeq) — at the chunked binary reader. The invariants
// are the v1 replay contract plus the v2 boundary discipline: never
// panic, never invent records, never allocate unboundedly from a lied
// count field, ValidBytes lands on header/chunk boundaries only, and
// the verified prefix re-replays identically.
func FuzzJournalV2(f *testing.F) {
	small := validJournalOpt(f, 6, JournalOptions{Format: FormatV2, FlushEvery: 2})
	big := validJournalOpt(f, 40, JournalOptions{Format: FormatV2, FlushEvery: 16})
	f.Add(small)
	f.Add(big)
	f.Add([]byte{})
	f.Add(append([]byte(nil), magicV2...)) // bare header
	f.Add(magicV2[:5])                     // torn header
	f.Add(append(append([]byte(nil), magicV2...), 0xFF, 0xFF, 0xFF))
	if len(small) > 10 {
		f.Add(small[:len(small)/2])
		f.Add(small[:len(small)-1])
		flipped := append([]byte(nil), big...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}
	// Two journals spliced (the SIGKILLed-executor shape): the second
	// journal's chunks restart at seq 1 and must be dropped as a tear.
	f.Add(append(append([]byte(nil), small...), small...))
	f.Add(append(append([]byte(nil), small...), big[len(magicV2):]...))
	// A CRC-valid frame whose payload lies: count far beyond the payload.
	hostile := append([]byte(nil), magicV2...)
	payload := colenc.AppendUvarint(nil, 1)        // firstSeq
	payload = colenc.AppendUvarint(payload, 1<<40) // count: 1T records
	hostile = colenc.AppendFrame(hostile, payload)
	f.Add(hostile)
	// A CRC-valid frame whose firstSeq is not the dense continuation.
	gap := append([]byte(nil), magicV2...)
	gp := colenc.AppendUvarint(nil, 7) // firstSeq 7 with 0 prior records
	gp = colenc.AppendUvarint(gp, 1)
	gp = append(gp, kindSample)
	gp = colenc.AppendVarint(gp, 1)
	gp = colenc.AppendFloatDelta(gp, 0, 0x3FF0000000000000)
	gap = colenc.AppendFrame(gap, gp)
	f.Add(gap)

	f.Fuzz(func(t *testing.T, data []byte) {
		st := Replay(data)
		if st.ValidBytes < 0 || st.ValidBytes > int64(len(data)) {
			t.Fatalf("ValidBytes %d outside [0, %d]", st.ValidBytes, len(data))
		}
		if SniffFormat(data) == FormatV2 {
			if st.Format != FormatV2 {
				t.Fatalf("v2 bytes replayed as %v", st.Format)
			}
			if st.ValidBytes != 0 && st.ValidBytes < int64(len(magicV2)) {
				t.Fatalf("ValidBytes %d inside the header", st.ValidBytes)
			}
		}
		for i, r := range st.Records {
			if r.Seq != i+1 {
				t.Fatalf("non-dense seq %d at index %d", r.Seq, i)
			}
		}
		again := Replay(data[:st.ValidBytes])
		if again.Torn || len(again.Records) != len(st.Records) {
			t.Fatalf("verified prefix re-replays torn=%v n=%d, want clean n=%d",
				again.Torn, len(again.Records), len(st.Records))
		}
		for i := range again.Records {
			if again.Records[i] != st.Records[i] {
				t.Fatalf("record %d changed across replays", i)
			}
		}
		_ = st.Events()
		_ = st.Samples()
	})
}

// FuzzManifest throws arbitrary bytes — seeded with standalone and
// shard-sweep-member manifests — at the campaign loader and the drift
// checker. Decoding must never panic; any manifest that decodes at all
// must be drift-free against itself (otherwise shard reassignment would
// refuse to resume work it wrote moments earlier); and the shard merge
// reader must agree with the plain loader on whether dir is a campaign.
func FuzzManifest(f *testing.F) {
	plain, err := json.Marshal(Manifest{
		Version: FormatVersion, Name: "fuzz", Seed: 7,
		ConfigHash: "deadbeef", FaultFingerprint: "feedface",
	})
	if err != nil {
		f.Fatal(err)
	}
	member, err := json.Marshal(Manifest{
		Version: FormatVersion, Name: "fuzz", Seed: 7,
		ConfigHash: "deadbeef", FaultFingerprint: "feedface",
		Sweep: &SweepRef{SweepHash: "0ddba11", UnitID: "u00-cfg-00", Shard: 2},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(plain)
	f.Add(member)
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{"sweep":{"shard":-1}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{`))
	journal := validJournal(f, 3)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, ManifestFile), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, JournalFile), journal, 0o644); err != nil {
			t.Fatal(err)
		}
		m, st, err := Load(dir)
		if err != nil {
			// Undecodable manifest: the merge reader must refuse too,
			// not fall back to trusting the journal alone.
			if _, _, _, verr := LoadVerified(dir, Manifest{}); verr == nil {
				t.Fatal("LoadVerified accepted a dir Load refused")
			}
			return
		}
		if len(st.Records) != 3 {
			t.Fatalf("valid journal read back %d records, want 3", len(st.Records))
		}
		// Reflexivity: whatever decoded, it cannot drift from itself.
		if ds := DriftFields(m, m); len(ds) != 0 {
			t.Fatalf("manifest drifts from itself: %+v", ds)
		}
		if _, err := CheckResume(m, m); err != nil {
			t.Fatalf("CheckResume refuses identical manifests: %v", err)
		}
		// And the merge reader, handed the decoded manifest as its
		// expectation, must accept the same directory.
		if _, _, _, err := LoadVerified(dir, m); err != nil {
			t.Fatalf("LoadVerified refuses manifest equal to recorded: %v", err)
		}
	})
}

// FuzzReplayTruncation drives the dedicated torn-write invariant: for a
// valid journal truncated at any offset, replay returns exactly the
// records whose full lines survived.
func FuzzReplayTruncation(f *testing.F) {
	valid := validJournal(f, 4)
	lineEnds := []int{}
	for i, b := range valid {
		if b == '\n' {
			lineEnds = append(lineEnds, i+1)
		}
	}
	f.Add(0)
	f.Add(len(valid) / 2)
	f.Add(len(valid) - 1)
	f.Add(len(valid))
	f.Fuzz(func(t *testing.T, cut int) {
		if cut < 0 || cut > len(valid) {
			t.Skip()
		}
		st := Replay(valid[:cut])
		want := 0
		for _, e := range lineEnds {
			if cut >= e {
				want++
			}
		}
		if len(st.Records) != want {
			t.Fatalf("cut %d: %d records, want %d", cut, len(st.Records), want)
		}
		if !bytes.Equal(valid[:st.ValidBytes], valid[:st.ValidBytes]) {
			t.Fatal("unreachable")
		}
	})
}
