package campaign

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/colenc"
)

func v2Options(flushEvery int) JournalOptions {
	return JournalOptions{Format: FormatV2, FlushEvery: flushEvery}
}

// journalEvents builds a realistic mixed event stream: warmups, samples
// with slowly-drifting values, retries, a panic, a loss, and one kind
// outside the closed code set (the literal-escape path).
func journalEvents(n int) []bench.Event {
	evs := []bench.Event{
		{Kind: bench.EventWarmup, Calls: 1},
		{Kind: bench.EventWarmup, Calls: 2},
	}
	calls := 2
	for i := 0; i < n; i++ {
		calls++
		switch {
		case i%11 == 5:
			evs = append(evs, bench.Event{Kind: bench.EventRetry, Calls: calls})
		case i%17 == 9:
			evs = append(evs, bench.Event{Kind: bench.EventPanic, Calls: calls})
		case i%23 == 13:
			evs = append(evs, bench.Event{Kind: bench.EventLoss, Calls: calls})
		default:
			evs = append(evs, bench.Event{
				Kind: bench.EventSample, Value: 406.125 + float64(i)*1e-3, Calls: calls})
		}
	}
	evs = append(evs, bench.Event{Kind: "experimental-kind", Value: -1.5, Calls: calls + 1})
	return evs
}

func writeJournal(t *testing.T, opt JournalOptions, evs []bench.Event) string {
	t.Helper()
	dir := t.TempDir()
	j, err := CreateJournal(dir, testManifest(t, 1, testConfig{}, nil), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if err := j.Record(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestJournalV2RoundTrip(t *testing.T) {
	evs := journalEvents(100)
	for _, flush := range []int{1, 3, 64, 1000} {
		dir := writeJournal(t, v2Options(flush), evs)
		_, st, err := Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		if st.Format != FormatV2 || st.Torn {
			t.Fatalf("flush %d: format=%v torn=%v", flush, st.Format, st.Torn)
		}
		if len(st.Records) != len(evs) {
			t.Fatalf("flush %d: %d records, want %d", flush, len(st.Records), len(evs))
		}
		for i, r := range st.Records {
			if r.Seq != i+1 || r.Event != evs[i] {
				t.Fatalf("flush %d: record %d = %+v, want seq %d event %+v",
					flush, i, r, i+1, evs[i])
			}
		}
	}
}

// TestJournalV2TornAtEveryOffset truncates a v2 journal at every byte
// offset: replay must recover exactly the whole sealed chunks that
// survived, mark the rest torn, and Open must truncate to the verified
// prefix and continue appending a journal that replays clean.
func TestJournalV2TornAtEveryOffset(t *testing.T) {
	evs := journalEvents(40)
	dir := writeJournal(t, v2Options(8), evs)
	data, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	clean := Replay(data)
	if clean.Torn || len(clean.Records) != len(evs) {
		t.Fatalf("setup: torn=%v records=%d", clean.Torn, len(clean.Records))
	}
	// Valid prefixes are the header plus whole-chunk boundaries.
	valid := map[int64]int{int64(len(magicV2)): 0}
	{
		rest := data[len(magicV2):]
		off, n := int64(len(magicV2)), 0
		for len(rest) > 0 {
			payload, sz, ok := colenc.ReadFrame(rest)
			if !ok {
				t.Fatal("setup: torn chunk in clean journal")
			}
			recs, ok := decodeChunkV2(payload, n)
			if !ok {
				t.Fatal("setup: undecodable chunk")
			}
			n += len(recs)
			off += int64(sz)
			valid[off] = n
			rest = rest[sz:]
		}
	}
	for cut := 0; cut <= len(data); cut++ {
		st := Replay(data[:cut])
		wantRecords, atBoundary := valid[st.ValidBytes]
		if !atBoundary && st.ValidBytes != 0 {
			t.Fatalf("cut %d: ValidBytes %d is not a chunk boundary", cut, st.ValidBytes)
		}
		if len(st.Records) != wantRecords {
			t.Fatalf("cut %d: %d records at ValidBytes %d, want %d",
				cut, len(st.Records), st.ValidBytes, wantRecords)
		}
		if st.ValidBytes > int64(cut) {
			t.Fatalf("cut %d: ValidBytes %d beyond data", cut, st.ValidBytes)
		}
		if wantTorn := int64(cut) != st.ValidBytes; st.Torn != wantTorn {
			t.Fatalf("cut %d: torn=%v want %v (ValidBytes %d)", cut, st.Torn, wantTorn, st.ValidBytes)
		}
	}
}

// TestJournalV2BitFlips mirrors the v1 bit-flip test: a flip anywhere
// must never invent records, break dense numbering, or panic.
func TestJournalV2BitFlips(t *testing.T) {
	evs := journalEvents(30)
	dir := writeJournal(t, v2Options(8), evs)
	data, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x10
		st := Replay(mut)
		if len(st.Records) > len(evs) {
			t.Fatalf("pos %d: invented records", pos)
		}
		for i, r := range st.Records {
			if r.Seq != i+1 {
				t.Fatalf("pos %d: non-dense seq %d at %d", pos, r.Seq, i)
			}
		}
	}
}

// TestJournalV2TornHeaderRecovers covers a crash inside CreateJournal
// before the format header reached disk: replay classifies the partial
// magic as a torn v2 header with an empty verified prefix, and Open
// rewrites the header and appends normally.
func TestJournalV2TornHeaderRecovers(t *testing.T) {
	dir := writeJournal(t, v2Options(4), nil)
	path := filepath.Join(dir, JournalFile)
	if err := os.WriteFile(path, magicV2[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	st := Replay(magicV2[:3])
	if st.Format != FormatV2 || !st.Torn || st.ValidBytes != 0 {
		t.Fatalf("torn header replay: %+v", st)
	}
	j, _, _, err := OpenJournal(dir, v2Options(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(bench.Event{Kind: bench.EventSample, Value: 1, Calls: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Torn || len(got.Records) != 1 || got.Format != FormatV2 {
		t.Fatalf("after recovery: %+v", got)
	}
}

// TestOpenJournalKeepsExistingFormat pins the sniffing contract: a
// resume extends the journal it found, whatever format the caller asked
// for; the option only applies to an empty journal.
func TestOpenJournalKeepsExistingFormat(t *testing.T) {
	ev := bench.Event{Kind: bench.EventSample, Value: 2.5, Calls: 1}
	ev2 := bench.Event{Kind: bench.EventSample, Value: 2.75, Calls: 2}
	for _, tc := range []struct {
		name   string
		create JournalOptions
		open   JournalOptions
		want   Format
	}{
		{"v1-stays-v1", JournalOptions{}, v2Options(4), FormatJSONL},
		{"v2-stays-v2", v2Options(4), JournalOptions{Format: FormatJSONL}, FormatV2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := writeJournal(t, tc.create, []bench.Event{ev})
			j, _, st, err := OpenJournal(dir, tc.open)
			if err != nil {
				t.Fatal(err)
			}
			if len(st.Records) != 1 || j.Format() != tc.want {
				t.Fatalf("records=%d format=%v, want 1 records format %v",
					len(st.Records), j.Format(), tc.want)
			}
			if err := j.Record(ev2); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			_, got, err := Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			if got.Format != tc.want || len(got.Records) != 2 || got.Torn {
				t.Fatalf("after append: format=%v records=%d torn=%v",
					got.Format, len(got.Records), got.Torn)
			}
			if got.Records[1].Event != ev2 {
				t.Fatalf("appended record = %+v", got.Records[1].Event)
			}
		})
	}
}

// TestJournalV2GroupFlush pins the group-commit contract: records below
// the flush width stay pending (nothing but the header on disk), the
// width-th record seals a chunk, and Flush/Close seal a partial tail.
func TestJournalV2GroupFlush(t *testing.T) {
	dir := t.TempDir()
	j, err := CreateJournal(dir, testManifest(t, 1, testConfig{}, nil), v2Options(4))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, JournalFile)
	fileLen := func() int64 {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		return st.Size()
	}
	for i := 1; i <= 3; i++ {
		if err := j.Record(bench.Event{Kind: bench.EventSample, Value: float64(i), Calls: i}); err != nil {
			t.Fatal(err)
		}
	}
	if n := fileLen(); n != int64(len(magicV2)) {
		t.Fatalf("3 pending records: %d bytes on disk, want bare header (%d)", n, len(magicV2))
	}
	if err := j.Record(bench.Event{Kind: bench.EventSample, Value: 4, Calls: 4}); err != nil {
		t.Fatal(err)
	}
	sealed := fileLen()
	if sealed <= int64(len(magicV2)) {
		t.Fatal("4th record did not seal a chunk")
	}
	if st := Replay(readFile(t, path)); len(st.Records) != 4 || st.Torn {
		t.Fatalf("after seal: records=%d torn=%v", len(st.Records), st.Torn)
	}
	// One more record: pending again, then Flush seals the short chunk.
	if err := j.Record(bench.Event{Kind: bench.EventSample, Value: 5, Calls: 5}); err != nil {
		t.Fatal(err)
	}
	if n := fileLen(); n != sealed {
		t.Fatalf("pending record hit disk early (%d vs %d)", n, sealed)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := Replay(readFile(t, path)); len(st.Records) != 5 || st.Torn {
		t.Fatalf("after Flush: records=%d torn=%v", len(st.Records), st.Torn)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestJournalV2CompressionRatio gates the artifact-size acceptance
// criterion at the format level: a realistic 1000-sample journal must
// be ≥5× smaller in v2 than in v1.
func TestJournalV2CompressionRatio(t *testing.T) {
	evs := journalEvents(1000)
	v1 := readFile(t, filepath.Join(writeJournal(t, JournalOptions{}, evs), JournalFile))
	v2 := readFile(t, filepath.Join(writeJournal(t, v2Options(0), evs), JournalFile))
	if len(v2)*5 > len(v1) {
		t.Fatalf("v2 journal %d bytes vs v1 %d bytes: ratio %.2f < 5",
			len(v2), len(v1), float64(len(v1))/float64(len(v2)))
	}
	t.Logf("1000-sample journal: v1 %d bytes, v2 %d bytes (%.1f×, %.1f bytes/record)",
		len(v1), len(v2), float64(len(v1))/float64(len(v2)), float64(len(v2))/float64(len(evs)))
}

// TestJournalRecordFailureRecovery is the failed-append satellite: an
// injected write or fsync fault mid-append must leave the journal fully
// recoverable — the torn fragment rewound, seq not advanced — so the
// records appended after the fault clears all replay. The "old"
// subtests reproduce what the pre-fix writer left on disk (torn
// fragment mid-file, seq advanced past the failure) and prove Replay
// drops every subsequent record: the torn-tail cascade this fix
// removes.
func TestJournalRecordFailureRecovery(t *testing.T) {
	ev := func(i int) bench.Event {
		return bench.Event{Kind: bench.EventSample, Value: float64(i), Calls: i}
	}
	inject := func(t *testing.T, mode string) {
		switch mode {
		case "write":
			prev := journalWrite
			journalWrite = func(f *os.File, b []byte) (int, error) {
				// A short write is the realistic disk-full shape: some
				// bytes land, then the error.
				n, _ := f.Write(b[:len(b)/2])
				return n, os.ErrDeadlineExceeded
			}
			t.Cleanup(func() { journalWrite = prev })
		case "fsync":
			prevW, prevS := journalWrite, fsyncFile
			// The bytes land, the fsync fails: the record is written but
			// unacknowledged — it must still be rewound, or a retry would
			// duplicate its seq.
			fsyncFile = func(f *os.File) error { return os.ErrDeadlineExceeded }
			t.Cleanup(func() { journalWrite = prevW; fsyncFile = prevS })
		}
	}
	clear := func(mode string) {
		journalWrite = func(f *os.File, b []byte) (int, error) { return f.Write(b) }
		fsyncFile = func(f *os.File) error { return f.Sync() }
		_ = mode
	}
	for _, mode := range []string{"write", "fsync"} {
		t.Run("v1/"+mode, func(t *testing.T) {
			dir := t.TempDir()
			j, err := Create(dir, testManifest(t, 1, testConfig{}, nil))
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			for i := 1; i <= 2; i++ {
				if err := j.Record(ev(i)); err != nil {
					t.Fatal(err)
				}
			}
			inject(t, mode)
			if err := j.Record(ev(3)); err == nil {
				t.Fatal("faulted append reported success")
			}
			clear(mode)
			// The caller survives the error and appends more records.
			for i := 3; i <= 5; i++ {
				if err := j.Record(ev(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			_, st, err := Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			if st.Torn || len(st.Records) != 5 {
				t.Fatalf("after recovery: torn=%v records=%d, want 5 clean", st.Torn, len(st.Records))
			}
			for i, r := range st.Records {
				if r.Event != ev(i+1) {
					t.Fatalf("record %d = %+v", i, r.Event)
				}
			}
		})
	}

	// What the pre-fix writer produced: the half-written fragment stays
	// in the file and the next append lands after it with seq already
	// advanced past the failed record. Both corruptions cascade — every
	// record after the fault is dropped as torn tail. This is the loss
	// the rewind-and-hold-seq discipline prevents.
	t.Run("old-behavior-cascades", func(t *testing.T) {
		dir := writeJournal(t, JournalOptions{}, []bench.Event{ev(1), ev(2)})
		base := readFile(t, filepath.Join(dir, JournalFile))
		okTail := readFile(t, filepath.Join(
			writeJournal(t, JournalOptions{}, []bench.Event{ev(1), ev(2), ev(3), ev(4)}), JournalFile))
		rec3 := okTail[len(base) : len(base)+(len(okTail)-len(base))/2]

		// Torn fragment mid-file: half of record 3's line, then record 4
		// written whole (as a post-error retry loop would have done).
		rec4 := okTail[len(base)+len(rec3):]
		torn := append(append(append([]byte(nil), base...), rec3[:len(rec3)/2]...), rec4...)
		if st := Replay(torn); len(st.Records) != 2 || !st.Torn {
			t.Fatalf("mid-file fragment: records=%d torn=%v — expected cascade", len(st.Records), st.Torn)
		}

		// Seq advanced past the failure: record 3 never landed but the
		// writer's counter moved on, so the next append carries seq 4.
		gap := append(append([]byte(nil), base...), rec4...)
		if st := Replay(gap); len(st.Records) != 2 || !st.Torn {
			t.Fatalf("seq gap: records=%d torn=%v — expected cascade", len(st.Records), st.Torn)
		}
	})
}

// TestJournalV2SealFailureRetry: a failed seal keeps the accepted
// records pending and the file rewound, so a later Flush (or Close)
// lands them — nothing accepted is lost to a transient write error.
func TestJournalV2SealFailureRetry(t *testing.T) {
	dir := t.TempDir()
	j, err := CreateJournal(dir, testManifest(t, 1, testConfig{}, nil), v2Options(2))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	ev := func(i int) bench.Event {
		return bench.Event{Kind: bench.EventSample, Value: float64(i), Calls: i}
	}
	if err := j.Record(ev(1)); err != nil {
		t.Fatal(err)
	}
	prev := journalWrite
	journalWrite = func(f *os.File, b []byte) (int, error) {
		n, _ := f.Write(b[:len(b)/3])
		return n, os.ErrDeadlineExceeded
	}
	if err := j.Record(ev(2)); err == nil { // triggers the failing seal
		journalWrite = prev
		t.Fatal("faulted seal reported success")
	}
	journalWrite = prev
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(ev(3)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, st, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Torn || len(st.Records) != 3 {
		t.Fatalf("after retry: torn=%v records=%d, want 3 clean", st.Torn, len(st.Records))
	}
}

// TestRunResumeBitIdenticalAcrossFormats is the cross-format acceptance
// test: the same campaign journaled in v1 and v2 — including an
// interruption and resume — retains bit-identical samples, and the v2
// resume survives losing its unsealed tail (the group-commit window).
func TestRunResumeBitIdenticalAcrossFormats(t *testing.T) {
	const seed = 5
	cfg := testConfig{System: "quiet", Samples: 20}
	want, err := bench.RunErr(testPlan(), measureFrom(seed))
	if err != nil {
		t.Fatal(err)
	}

	for _, opt := range []JournalOptions{{}, v2Options(8)} {
		t.Run(opt.withDefaults().Format.String(), func(t *testing.T) {
			dir := t.TempDir()
			m := testManifest(t, seed, cfg, nil)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			inner := measureFrom(seed)
			calls := 0
			res, err := RunOpts(ctx, dir, m, testPlan(), func() (float64, error) {
				if calls++; calls == 31 {
					cancel()
				}
				return inner()
			}, opt)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stop != bench.StopInterrupted {
				t.Fatalf("Stop = %q, want interrupted", res.Stop)
			}

			if opt.Format == FormatV2 {
				// Simulate the OS crash the group-commit trade permits:
				// drop the final sealed chunk (standing in for an unsealed
				// tail that never reached disk). Resume re-measures it.
				path := filepath.Join(dir, JournalFile)
				data := readFile(t, path)
				st := Replay(data)
				if st.Torn || len(st.Records) == 0 {
					t.Fatalf("setup: torn=%v records=%d", st.Torn, len(st.Records))
				}
				// Find the start of the last chunk and cut mid-way into it.
				cut := int64(len(magicV2))
				rest := data[len(magicV2):]
				for {
					_, n, ok := colenc.ReadFrame(rest)
					if !ok {
						t.Fatal("setup: torn chunk")
					}
					if len(rest) == n {
						break
					}
					cut += int64(n)
					rest = rest[n:]
				}
				if err := os.WriteFile(path, data[:cut+3], 0o644); err != nil {
					t.Fatal(err)
				}
			}

			got, info, err := Resume(context.Background(), dir, m, testPlan(),
				measureFrom(seed), ResumeOptions{Journal: opt})
			if err != nil {
				t.Fatal(err)
			}
			if opt.Format == FormatV2 && !info.Torn {
				t.Error("v2 crash simulation: tail not reported torn")
			}
			if len(got.Raw) != len(want.Raw) {
				t.Fatalf("resumed n=%d, uninterrupted n=%d", len(got.Raw), len(want.Raw))
			}
			for i := range got.Raw {
				if math.Float64bits(got.Raw[i]) != math.Float64bits(want.Raw[i]) {
					t.Fatalf("sample %d diverged", i)
				}
			}
			_, st, err := Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			if xs := st.Samples(); len(xs) != len(want.Raw) {
				t.Errorf("final journal has %d samples, want %d", len(xs), len(want.Raw))
			}
			if st.Format != opt.withDefaults().Format {
				t.Errorf("final journal format %v, want %v", st.Format, opt.withDefaults().Format)
			}
		})
	}
}

// TestConvertJournal converts both directions, verifies record
// equality, refuses torn journals, and proves a converted campaign
// resumes bit-identically to the unconverted one.
func TestConvertJournal(t *testing.T) {
	evs := journalEvents(50)

	t.Run("round-trip", func(t *testing.T) {
		dir := writeJournal(t, JournalOptions{}, evs)
		v1Bytes := readFile(t, filepath.Join(dir, JournalFile))

		info, err := ConvertJournal(dir, FormatV2, 16)
		if err != nil {
			t.Fatal(err)
		}
		if info.From != FormatJSONL || info.To != FormatV2 || info.Records != len(evs) {
			t.Fatalf("info = %+v", info)
		}
		if info.NewBytes*2 > info.OldBytes {
			t.Fatalf("conversion barely shrank: %d → %d", info.OldBytes, info.NewBytes)
		}
		_, st, err := Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		if st.Format != FormatV2 || st.Torn || len(st.Records) != len(evs) {
			t.Fatalf("after v1→v2: %v torn=%v records=%d", st.Format, st.Torn, len(st.Records))
		}

		// Idempotent: converting to the present format rewrites nothing.
		again, err := ConvertJournal(dir, FormatV2, 16)
		if err != nil {
			t.Fatal(err)
		}
		if again.From != FormatV2 || again.OldBytes != again.NewBytes {
			t.Fatalf("idempotent convert: %+v", again)
		}

		// And back: byte-identical to the original v1 journal.
		if _, err := ConvertJournal(dir, FormatJSONL, 0); err != nil {
			t.Fatal(err)
		}
		back := readFile(t, filepath.Join(dir, JournalFile))
		if !bytes.Equal(back, v1Bytes) {
			t.Fatalf("v1→v2→v1 not byte-identical: %d vs %d bytes", len(back), len(v1Bytes))
		}
	})

	t.Run("refuses-torn", func(t *testing.T) {
		dir := writeJournal(t, JournalOptions{}, evs)
		path := filepath.Join(dir, JournalFile)
		data := readFile(t, path)
		if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ConvertJournal(dir, FormatV2, 0); err == nil {
			t.Fatal("converted a torn journal")
		}
	})

	t.Run("resume-after-convert", func(t *testing.T) {
		const seed = 5
		want, err := bench.RunErr(testPlan(), measureFrom(seed))
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		m := testManifest(t, seed, testConfig{System: "quiet", Samples: 20}, nil)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		inner := measureFrom(seed)
		calls := 0
		if _, err := Run(ctx, dir, m, testPlan(), func() (float64, error) {
			if calls++; calls == 31 {
				cancel()
			}
			return inner()
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := ConvertJournal(dir, FormatV2, 0); err != nil {
			t.Fatal(err)
		}
		got, _, err := Resume(context.Background(), dir, m, testPlan(),
			measureFrom(seed), ResumeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Raw) != len(want.Raw) {
			t.Fatalf("resumed n=%d, want %d", len(got.Raw), len(want.Raw))
		}
		for i := range got.Raw {
			if math.Float64bits(got.Raw[i]) != math.Float64bits(want.Raw[i]) {
				t.Fatalf("sample %d diverged after convert", i)
			}
		}
	})
}
