package campaign

import (
	"bytes"
	"fmt"
	"math"
	"time"

	"repro/internal/bench"
	"repro/internal/colenc"
	"repro/internal/telemetry"
)

// Format identifies a journal's on-disk layout.
type Format int

const (
	// FormatJSONL is the v1 layout: one CRC32-framed JSON record per
	// line, fsynced per record. Maximally durable, human-greppable, and
	// the slowest — fsync latency is paid once per collection event.
	FormatJSONL Format = 1
	// FormatV2 is the chunked binary layout: a magic header followed by
	// CRC32-framed chunks of column-major, delta- and varint-compressed
	// records, fsynced per sealed chunk (group commit). One fsync covers
	// FlushEvery records and samples cost a few bytes instead of ~100,
	// at the price that an OS crash may lose the unsealed tail (which
	// resume re-measures deterministically).
	FormatV2 Format = 2
)

// String returns the CLI spelling of the format.
func (f Format) String() string {
	switch f {
	case FormatJSONL:
		return "v1"
	case FormatV2:
		return "v2"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat parses a CLI journal-format spelling. The empty string is
// the default (v1); "v1"/"jsonl" and "v2"/"binary" are accepted.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "", "v1", "jsonl":
		return FormatJSONL, nil
	case "v2", "binary":
		return FormatV2, nil
	default:
		return 0, fmt.Errorf("campaign: unknown journal format %q (want v1, jsonl, v2 or binary)", s)
	}
}

// magicV2 is the v2 format header: 8 bytes, written durably before the
// first chunk. No v1 journal can start with it (v1 lines start with
// '{'), so the leading bytes of a journal identify its format.
var magicV2 = []byte("SCIBJv2\n")

// SniffFormat identifies the format of raw journal bytes. Empty input
// returns 0 (undetermined — an empty journal reads back identically in
// either format). A strict prefix of the v2 magic sniffs as FormatV2:
// only a v2 creator crashing mid-header writes such bytes, and the
// torn-header recovery path (Replay → Torn, ValidBytes 0) handles them.
func SniffFormat(data []byte) Format {
	if len(data) == 0 {
		return 0
	}
	if bytes.HasPrefix(data, magicV2) || bytes.HasPrefix(magicV2, data) {
		return FormatV2
	}
	return FormatJSONL
}

// Per-record kind codes in a v2 chunk's kind column. kindLiteral
// escapes a kind outside the closed set: uvarint length + raw bytes
// follow, so the format never silently narrows bench's event
// vocabulary.
const (
	kindWarmup  = 0
	kindSample  = 1
	kindRetry   = 2
	kindPanic   = 3
	kindLoss    = 4
	kindLiteral = 0xFF
)

func kindCode(k bench.EventKind) (byte, bool) {
	switch k {
	case bench.EventWarmup:
		return kindWarmup, true
	case bench.EventSample:
		return kindSample, true
	case bench.EventRetry:
		return kindRetry, true
	case bench.EventPanic:
		return kindPanic, true
	case bench.EventLoss:
		return kindLoss, true
	default:
		return 0, false
	}
}

func kindFromCode(c byte) (bench.EventKind, bool) {
	switch c {
	case kindWarmup:
		return bench.EventWarmup, true
	case kindSample:
		return bench.EventSample, true
	case kindRetry:
		return bench.EventRetry, true
	case kindPanic:
		return bench.EventPanic, true
	case kindLoss:
		return bench.EventLoss, true
	default:
		return "", false
	}
}

// appendChunkV2 encodes recs (which must be non-empty with dense seqs)
// as one self-contained column-major chunk payload:
//
//	uvarint firstSeq              — dense-continuation check on replay
//	uvarint count
//	kind column: count × (code byte | 0xFF + uvarint len + bytes)
//	calls column: varint calls[0], then delta-of-delta varints —
//	  cumulative call counts grow by near-constant strides (the batch
//	  size), so second differences are near zero and cost one byte
//	value column: XOR-float deltas against the previous record's bits
//	  (chunk-local, starting from 0) — consecutive observations of the
//	  same quantity share sign/exponent/high-mantissa bits
func appendChunkV2(dst []byte, recs []Record) []byte {
	dst = colenc.AppendUvarint(dst, uint64(recs[0].Seq))
	dst = colenc.AppendUvarint(dst, uint64(len(recs)))
	for _, r := range recs {
		if c, ok := kindCode(r.Event.Kind); ok {
			dst = append(dst, c)
		} else {
			dst = append(dst, kindLiteral)
			dst = colenc.AppendUvarint(dst, uint64(len(r.Event.Kind)))
			dst = append(dst, r.Event.Kind...)
		}
	}
	prevCalls, prevDelta := int64(0), int64(0)
	for i, r := range recs {
		c := int64(r.Event.Calls)
		if i == 0 {
			dst = colenc.AppendVarint(dst, c)
		} else {
			d := c - prevCalls
			dst = colenc.AppendVarint(dst, d-prevDelta)
			prevDelta = d
		}
		prevCalls = c
	}
	prevBits := uint64(0)
	for _, r := range recs {
		bits := math.Float64bits(r.Event.Value)
		dst = colenc.AppendFloatDelta(dst, prevBits, bits)
		prevBits = bits
	}
	return dst
}

// decodeChunkV2 decodes one CRC-verified chunk payload whose records
// must continue densely after have prior records. It is strict — a
// count that cannot fit the payload, a non-dense firstSeq, an unknown
// structure, or trailing bytes all fail — because a CRC-valid frame
// with an undecodable payload is corruption, not slack.
func decodeChunkV2(payload []byte, have int) ([]Record, bool) {
	d := colenc.NewDec(payload)
	firstSeq := d.Uvarint()
	count := d.Uvarint()
	// Every record costs at least one byte in the kind column alone, so
	// count is bounded by the remaining payload — this caps allocation
	// before a fuzzed count field can ask for gigabytes.
	if d.Bad() || count == 0 || count > uint64(d.Len()) {
		return nil, false
	}
	if firstSeq != uint64(have)+1 {
		return nil, false
	}
	recs := make([]Record, count)
	for i := range recs {
		recs[i].Seq = have + 1 + i
		c := d.Byte()
		if c == kindLiteral {
			n := d.Uvarint()
			if d.Bad() || n > uint64(d.Len()) {
				return nil, false
			}
			recs[i].Event.Kind = bench.EventKind(d.Bytes(int(n)))
		} else {
			k, ok := kindFromCode(c)
			if !ok {
				return nil, false
			}
			recs[i].Event.Kind = k
		}
	}
	prevCalls, prevDelta := int64(0), int64(0)
	for i := range recs {
		if i == 0 {
			prevCalls = d.Varint()
		} else {
			prevDelta += d.Varint()
			prevCalls += prevDelta
		}
		recs[i].Event.Calls = int(prevCalls)
	}
	prevBits := uint64(0)
	for i := range recs {
		prevBits = d.FloatDelta(prevBits)
		recs[i].Event.Value = math.Float64frombits(prevBits)
	}
	if !d.Done() {
		return nil, false
	}
	return recs, true
}

// replayV2 reconstructs state from v2 journal bytes: header, then
// frames, accepting chunks up to the first torn or corrupt one. A torn
// header (crash inside CreateJournal before the header reached disk)
// yields ValidBytes 0; OpenJournal rewrites the header and the journal
// continues empty, exactly as a v1 journal torn at byte 0 would.
func replayV2(data []byte) State {
	st := State{Format: FormatV2}
	if !bytes.HasPrefix(data, magicV2) {
		st.Torn = true
		return st
	}
	st.ValidBytes = int64(len(magicV2))
	rest := data[len(magicV2):]
	for len(rest) > 0 {
		payload, n, ok := colenc.ReadFrame(rest)
		if !ok {
			st.Torn = true
			return st
		}
		recs, ok := decodeChunkV2(payload, len(st.Records))
		if !ok {
			st.Torn = true
			return st
		}
		st.Records = append(st.Records, recs...)
		st.ValidBytes += int64(n)
		rest = rest[n:]
	}
	return st
}

// writeHeaderV2 writes the format header durably, so every future
// reader — including one racing a crash — sniffs v2 from the verified
// prefix before any chunk exists.
func (j *Journal) writeHeaderV2() error {
	if _, err := journalWrite(j.f, magicV2); err != nil {
		j.rewind()
		return fmt.Errorf("campaign: writing journal header: %w", err)
	}
	if j.Sync {
		if err := fsyncFile(j.f); err != nil {
			j.rewind()
			return fmt.Errorf("campaign: syncing journal header: %w", err)
		}
	}
	j.good = int64(len(magicV2))
	return nil
}

// recordV2 accepts one event into the pending chunk, sealing when the
// group-commit width is reached. Acceptance is the acknowledgment the
// collection loop sees; durability lands at the seal — the documented
// v2 trade (≤ FlushEvery−1 trailing events exposed to an OS crash, a
// clean Close loses none, resume re-measures deterministically).
func (j *Journal) recordV2(ev bench.Event) error {
	j.pending = append(j.pending, Record{Seq: j.seq + len(j.pending) + 1, Event: ev})
	if len(j.pending) >= j.flushEvery {
		return j.seal()
	}
	return nil
}

// seal writes the pending records as one CRC-framed chunk and (in Sync
// mode) fsyncs it. On failure the file is rewound to the last durable
// offset but pending is kept: the records were accepted, and a caller
// that retries (or a Close after a transient error) seals them again —
// the journal on disk never holds a torn fragment between chunks.
func (j *Journal) seal() error {
	if j.format != FormatV2 || len(j.pending) == 0 {
		return nil
	}
	frame := colenc.AppendFrame(nil, appendChunkV2(nil, j.pending))
	if _, err := journalWrite(j.f, frame); err != nil {
		j.rewind()
		return fmt.Errorf("campaign: appending chunk: %w", err)
	}
	if j.Sync {
		t0 := time.Now()
		if err := fsyncFile(j.f); err != nil {
			j.rewind()
			return fmt.Errorf("campaign: syncing journal: %w", err)
		}
		telFsyncUs.Observe(telemetry.Us(time.Since(t0)))
	}
	j.seq += len(j.pending)
	j.good += int64(len(frame))
	telRecords.Add(int64(len(j.pending)))
	telChunks.Inc()
	j.pending = j.pending[:0]
	return nil
}
