package campaign

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/faults"
	"repro/internal/rules"
)

// measureFrom returns a deterministic seeded measure source with
// occasional fault-suspect spikes (every 7th draw), so campaigns
// exercise the retry/loss paths.
func measureFrom(seed uint64) func() (float64, error) {
	rng := rand.New(rand.NewPCG(seed, 42))
	n := 0
	return func() (float64, error) {
		n++
		v := 1 + rng.Float64()
		if n%7 == 0 {
			v += 10
		}
		return v, nil
	}
}

func testPlan() bench.Plan {
	return bench.Plan{
		Warmup:     2,
		MinSamples: 20,
		MaxSamples: 80,
		RelErr:     0.02,
		BatchSize:  5,
		Resilience: &bench.Resilience{ValueCeiling: 5, MaxRetries: 1, MaxLossFraction: 1},
	}
}

type testConfig struct {
	System  string `json:"system"`
	Samples int    `json:"samples"`
}

func testManifest(t *testing.T, seed uint64, cfg testConfig, sched *faults.Schedule) Manifest {
	t.Helper()
	m, err := NewManifest("test", seed, cfg, sched, rules.Environment{
		Processor: "simulated",
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCreateLoadOpenRoundtrip(t *testing.T) {
	dir := t.TempDir()
	m := testManifest(t, 1, testConfig{System: "quiet", Samples: 10}, nil)
	j, err := Create(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := j.Record(bench.Event{Kind: bench.EventSample, Value: float64(i), Calls: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, m); !errors.Is(err, ErrCampaignExists) {
		t.Fatalf("second Create: err = %v, want ErrCampaignExists", err)
	}

	got, st, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.ConfigHash != m.ConfigHash || got.Seed != m.Seed {
		t.Errorf("manifest roundtrip mismatch: %+v vs %+v", got, m)
	}
	if len(st.Records) != 3 || st.Torn {
		t.Fatalf("replayed %d records (torn=%v), want 3 clean", len(st.Records), st.Torn)
	}
	if xs := st.Samples(); len(xs) != 3 || xs[2] != 3 {
		t.Errorf("samples = %v", xs)
	}

	if _, _, err := Load(t.TempDir()); !errors.Is(err, ErrNoCampaign) {
		t.Errorf("Load(empty) err = %v, want ErrNoCampaign", err)
	}
}

// TestReplayTornAtEveryOffset truncates a valid journal at every byte
// offset and requires replay to recover exactly the records whose lines
// survived intact — never a partial record, never a panic.
func TestReplayTornAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, testManifest(t, 1, testConfig{}, nil))
	if err != nil {
		t.Fatal(err)
	}
	var ends []int64 // cumulative byte length after each record
	path := filepath.Join(dir, JournalFile)
	for i := 1; i <= 5; i++ {
		if err := j.Record(bench.Event{Kind: bench.EventSample, Value: float64(i) / 3, Calls: i}); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, fi.Size())
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(data); cut++ {
		st := Replay(data[:cut])
		wantRecs := 0
		for _, e := range ends {
			if int64(cut) >= e {
				wantRecs++
			}
		}
		if len(st.Records) != wantRecs {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(st.Records), wantRecs)
		}
		lastEnd := int64(0)
		if wantRecs > 0 {
			lastEnd = ends[wantRecs-1]
		}
		wantTorn := int64(cut) > lastEnd // leftover bytes past the last whole record
		if st.Torn != wantTorn {
			t.Fatalf("cut %d: torn = %v, want %v", cut, st.Torn, wantTorn)
		}
	}
}

func TestReplayRejectsBitFlips(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, testManifest(t, 1, testConfig{}, nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if err := j.Record(bench.Event{Kind: bench.EventSample, Value: float64(i), Calls: i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	clean := Replay(data)
	if len(clean.Records) != 4 {
		t.Fatal("setup")
	}
	// Flip one bit in every byte position in turn; replay must never
	// return more records than the clean prefix before the flip, and
	// never crash.
	for pos := 0; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x10
		st := Replay(mut)
		if len(st.Records) > 4 {
			t.Fatalf("pos %d: invented records", pos)
		}
		for i, r := range st.Records {
			if r.Seq != i+1 {
				t.Fatalf("pos %d: non-dense seq %d at %d", pos, r.Seq, i)
			}
		}
	}
}

// TestInterruptResumeBitIdentical is the acceptance test: a journaled
// campaign killed by (a) context cancellation and (b) a simulated crash
// mid-append resumes to a final Result whose retained samples are
// bit-identical to an uninterrupted run with the same seed.
func TestInterruptResumeBitIdentical(t *testing.T) {
	const seed = 5
	cfg := testConfig{System: "quiet", Samples: 20}

	want, err := bench.RunErr(testPlan(), measureFrom(seed))
	if err != nil {
		t.Fatal(err)
	}

	for _, crash := range []bool{false, true} {
		name := "cancel"
		if crash {
			name = "crash-mid-append"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			m := testManifest(t, seed, cfg, nil)

			// Interrupt the campaign partway by cancelling from inside
			// the measure source after 31 invocations.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			inner := measureFrom(seed)
			calls := 0
			res, err := Run(ctx, dir, m, testPlan(), func() (float64, error) {
				if calls++; calls == 31 {
					cancel()
				}
				return inner()
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stop != bench.StopInterrupted {
				t.Fatalf("Stop = %q, want interrupted", res.Stop)
			}

			if crash {
				// Simulate dying mid-append: leave half a record at the
				// journal tail.
				path := filepath.Join(dir, JournalFile)
				f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.WriteString(`{"crc":123,"rec":{"seq":`); err != nil {
					t.Fatal(err)
				}
				f.Close()
			}

			got, info, err := Resume(context.Background(), dir, m, testPlan(),
				measureFrom(seed), ResumeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if crash != info.Torn {
				t.Errorf("Torn = %v, want %v", info.Torn, crash)
			}
			if info.PriorSamples == 0 || info.FastForwarded == 0 {
				t.Errorf("nothing recovered: %+v", info)
			}
			if info.ReplayChecked == 0 || info.ReplayMismatched != 0 {
				t.Errorf("replay verification: %+v", info)
			}
			if got.Stop != want.Stop || len(got.Raw) != len(want.Raw) {
				t.Fatalf("resumed stop=%q n=%d, uninterrupted stop=%q n=%d",
					got.Stop, len(got.Raw), want.Stop, len(want.Raw))
			}
			for i := range got.Raw {
				if math.Float64bits(got.Raw[i]) != math.Float64bits(want.Raw[i]) {
					t.Fatalf("sample %d diverged: %v vs %v", i, got.Raw[i], want.Raw[i])
				}
			}
			// The journal now holds the complete campaign: a second
			// replay reconstructs every retained sample.
			_, st, err := Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			if xs := st.Samples(); len(xs) != len(want.Raw) {
				t.Errorf("final journal has %d samples, want %d", len(xs), len(want.Raw))
			}
		})
	}
}

func TestResumeRefusesManifestDrift(t *testing.T) {
	const seed = 5
	dir := t.TempDir()
	m := testManifest(t, seed, testConfig{System: "quiet", Samples: 20}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	inner := measureFrom(seed)
	calls := 0
	if _, err := Run(ctx, dir, m, testPlan(), func() (float64, error) {
		if calls++; calls == 10 {
			cancel()
		}
		return inner()
	}); err != nil && !errors.Is(err, bench.ErrTooFewSamples) {
		t.Fatal(err)
	}
	cancel()

	cases := map[string]Manifest{
		"config": testManifest(t, seed, testConfig{System: "quiet", Samples: 500}, nil),
		"seed":   testManifest(t, seed+1, testConfig{System: "quiet", Samples: 20}, nil),
		"faults": testManifest(t, seed, testConfig{System: "quiet", Samples: 20},
			&faults.Schedule{Stragglers: []faults.Straggler{{Node: 0, Factor: 2}}}),
	}
	// Tear the journal tail: a refused resume must not repair (or touch)
	// the journal — the torn record is evidence of how the campaign died.
	jpath := filepath.Join(dir, JournalFile)
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"crc":1,"rec":{"seq":`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}

	for name, drifted := range cases {
		_, info, err := Resume(context.Background(), dir, drifted, testPlan(),
			measureFrom(seed), ResumeOptions{})
		if !errors.Is(err, ErrManifestDrift) {
			t.Fatalf("%s drift: err = %v, want ErrManifestDrift", name, err)
		}
		if len(info.Findings) == 0 || info.Findings[0].Rule != 9 ||
			info.Findings[0].Severity != rules.Violation {
			t.Errorf("%s drift: findings = %v, want a Rule 9 violation", name, info.Findings)
		}
		if !info.Torn {
			t.Errorf("%s drift: refusal did not report the torn tail", name)
		}
	}
	after, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("refused resume modified the journal")
	}
}

func TestResumeRefusesReplayDivergence(t *testing.T) {
	const seed = 5
	dir := t.TempDir()
	m := testManifest(t, seed, testConfig{System: "quiet"}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	inner := measureFrom(seed)
	calls := 0
	if _, err := Run(ctx, dir, m, testPlan(), func() (float64, error) {
		if calls++; calls == 25 {
			cancel()
		}
		return inner()
	}); err != nil {
		t.Fatal(err)
	}
	cancel()

	// Same manifest, but the measure source secretly drifted (different
	// seed): the replay verification must catch it.
	_, info, err := Resume(context.Background(), dir, m, testPlan(),
		measureFrom(seed+1), ResumeOptions{})
	if !errors.Is(err, ErrReplayDivergence) {
		t.Fatalf("err = %v, want ErrReplayDivergence", err)
	}
	if info.ReplayMismatched == 0 {
		t.Errorf("no mismatches recorded: %+v", info)
	}
}

func TestBoundaryShift(t *testing.T) {
	flat := make([]float64, 60)
	shifted := make([]float64, 60)
	rng := rand.New(rand.NewPCG(3, 3))
	for i := range flat {
		flat[i] = 1 + 0.01*rng.Float64()
		shifted[i] = flat[i]
		if i >= 30 {
			shifted[i] += 5
		}
	}
	if _, drift, err := BoundaryShift(flat, 30, boundaryAlpha); err != nil || drift {
		t.Errorf("flat stream: drift=%v err=%v", drift, err)
	}
	cp, drift, err := BoundaryShift(shifted, 30, boundaryAlpha)
	if err != nil || !drift {
		t.Errorf("shifted-at-boundary: drift=%v err=%v cp=%+v", drift, err, cp)
	}
	// Same shift but the boundary is far away: significant, not drift.
	_, drift, err = BoundaryShift(shifted, 5, boundaryAlpha)
	if err != nil || drift {
		t.Errorf("shift far from boundary: drift=%v err=%v", drift, err)
	}
}

func TestCheckResumeFormatVersion(t *testing.T) {
	a := Manifest{Version: FormatVersion}
	b := Manifest{Version: FormatVersion + 1}
	if _, err := CheckResume(a, b); !errors.Is(err, ErrManifestDrift) {
		t.Errorf("version drift not refused: %v", err)
	}
}
