package campaign

import (
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
)

func TestReadFileChunk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	data := []byte("0123456789")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := ReadFileChunk(path, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(c.Data) != "0123" || c.Off != 0 || c.Size != 10 || c.EOF {
		t.Fatalf("first chunk: %+v", c)
	}
	if c.CRC != crc32.ChecksumIEEE([]byte("0123")) {
		t.Fatal("chunk CRC mismatch")
	}
	c, err = ReadFileChunk(path, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(c.Data) != "89" || !c.EOF {
		t.Fatalf("tail chunk: %+v", c)
	}
	// Probing at exactly EOF is legal (the resume handshake does it);
	// past EOF is the caller's bug.
	c, err = ReadFileChunk(path, 10, 4)
	if err != nil || len(c.Data) != 0 || !c.EOF {
		t.Fatalf("EOF probe: %+v err=%v", c, err)
	}
	if _, err := ReadFileChunk(path, 11, 4); err == nil {
		t.Fatal("offset past EOF accepted")
	}
}

// TestReadFileChunkConcurrentAppend pins the EOF race: an append
// landing between the pre-read stat and the read must not let the
// chunk claim EOF — the sender would park shipment until the next poll
// while bytes sit unshipped. The post-read re-stat sees the growth.
func TestReadFileChunkConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	prev := chunkReadPause
	defer func() { chunkReadPause = prev }()
	chunkReadPause = func() {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString("ABCDEF"); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	c, err := ReadFileChunk(path, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	// The read itself raced the append and may or may not include the
	// new bytes; what must hold is that EOF only stands when the chunk
	// really reaches the post-append size.
	if c.Size != 16 {
		t.Fatalf("post-read size %d, want 16", c.Size)
	}
	if c.EOF && c.Off+int64(len(c.Data)) < 16 {
		t.Fatalf("EOF claimed with %d bytes unshipped (chunk %+v)",
			16-c.Off-int64(len(c.Data)), c)
	}
	// Re-chunking from the acknowledged offset drains the appended tail.
	chunkReadPause = func() {}
	next, err := ReadFileChunk(path, c.Off+int64(len(c.Data)), 64)
	if err != nil {
		t.Fatal(err)
	}
	if !next.EOF || next.Off+int64(len(next.Data)) != 16 {
		t.Fatalf("follow-up chunk does not reach EOF: %+v", next)
	}
}

func TestValidPrefixDropsTornTail(t *testing.T) {
	dir := t.TempDir()
	man := testManifest(t, 1, testConfig{System: "vp", Samples: 3}, nil)
	j2, err := Create(dir, man)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := j2.Record(bench.Event{Kind: bench.EventSample, Value: float64(i), Calls: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	whole := ValidPrefix(j)
	if whole != int64(len(j)) {
		t.Fatalf("clean journal prefix %d, want %d", whole, len(j))
	}
	// A torn tail (partial last record) must be excluded from the
	// durable prefix — it is exactly what the shipper's truncate floor
	// tells the mirror to drop.
	torn := append(append([]byte(nil), j...), []byte(`{"seq":4,"val`)...)
	if got := ValidPrefix(torn); got != whole {
		t.Fatalf("torn journal prefix %d, want %d", got, whole)
	}
}
