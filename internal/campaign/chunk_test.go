package campaign

import (
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
)

func TestReadFileChunk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	data := []byte("0123456789")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := ReadFileChunk(path, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(c.Data) != "0123" || c.Off != 0 || c.Size != 10 || c.EOF {
		t.Fatalf("first chunk: %+v", c)
	}
	if c.CRC != crc32.ChecksumIEEE([]byte("0123")) {
		t.Fatal("chunk CRC mismatch")
	}
	c, err = ReadFileChunk(path, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(c.Data) != "89" || !c.EOF {
		t.Fatalf("tail chunk: %+v", c)
	}
	// Probing at exactly EOF is legal (the resume handshake does it);
	// past EOF is the caller's bug.
	c, err = ReadFileChunk(path, 10, 4)
	if err != nil || len(c.Data) != 0 || !c.EOF {
		t.Fatalf("EOF probe: %+v err=%v", c, err)
	}
	if _, err := ReadFileChunk(path, 11, 4); err == nil {
		t.Fatal("offset past EOF accepted")
	}
}

func TestValidPrefixDropsTornTail(t *testing.T) {
	dir := t.TempDir()
	man := testManifest(t, 1, testConfig{System: "vp", Samples: 3}, nil)
	j2, err := Create(dir, man)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := j2.Record(bench.Event{Kind: bench.EventSample, Value: float64(i), Calls: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	whole := ValidPrefix(j)
	if whole != int64(len(j)) {
		t.Fatalf("clean journal prefix %d, want %d", whole, len(j))
	}
	// A torn tail (partial last record) must be excluded from the
	// durable prefix — it is exactly what the shipper's truncate floor
	// tells the mirror to drop.
	torn := append(append([]byte(nil), j...), []byte(`{"seq":4,"val`)...)
	if got := ValidPrefix(torn); got != whole {
		t.Fatalf("torn journal prefix %d, want %d", got, whole)
	}
}
