package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCreateManifestCrashDurability pins the write-ahead ordering Create
// promises by recording every fsync and rename through the seams. The
// on-disk states a crash can leave must be exactly: nothing, manifest
// only, or manifest + journal — never a journal without a durable
// manifest, and never a renamed manifest whose bytes were not yet
// flushed. Before the fix, Create fsynced nothing at all, so the rename
// could publish an empty manifest and the journal could survive a crash
// that lost the manifest entirely.
func TestCreateManifestCrashDurability(t *testing.T) {
	origFsync, origRename := fsyncFile, renameFile
	defer func() { fsyncFile, renameFile = origFsync, origRename }()

	dir := t.TempDir()
	journalPath := filepath.Join(dir, JournalFile)
	manifestPath := filepath.Join(dir, ManifestFile)
	journalExists := func() bool {
		_, err := os.Stat(journalPath)
		return err == nil
	}

	var ops []string
	fsyncFile = func(f *os.File) error {
		switch name := f.Name(); {
		case name == dir:
			if journalExists() {
				ops = append(ops, "fsync-dir-with-journal")
			} else {
				ops = append(ops, "fsync-dir")
			}
		case strings.HasSuffix(name, ".tmp"):
			ops = append(ops, "fsync-tmp")
		case name == journalPath:
			ops = append(ops, "fsync-journal")
		default:
			ops = append(ops, "fsync-"+filepath.Base(name))
		}
		return f.Sync()
	}
	renameFile = func(oldpath, newpath string) error {
		ops = append(ops, "rename")
		if journalExists() {
			t.Error("journal existed before the manifest rename: a crash here leaves an uninterpretable journal")
		}
		return os.Rename(oldpath, newpath)
	}

	j, err := Create(dir, testManifest(t, 1, testConfig{System: "quiet"}, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	// The full durability protocol, in order: flush the temp manifest's
	// bytes, publish it atomically, make the rename itself durable, and
	// only then create the journal — whose directory entry is flushed too.
	want := []string{"fsync-tmp", "rename", "fsync-dir", "fsync-dir-with-journal"}
	if got := strings.Join(ops, ","); got != strings.Join(want, ",") {
		t.Fatalf("durability op order = %v, want %v", ops, want)
	}
	if _, err := os.Stat(manifestPath); err != nil {
		t.Fatalf("manifest missing after Create: %v", err)
	}
}

// TestCreateManifestDurableBeforeJournal is the crash simulation: fail
// the directory fsync that seals the manifest rename and require Create
// to refuse to proceed — in particular, to never have created the
// journal file.
func TestCreateManifestDurableBeforeJournal(t *testing.T) {
	origFsync := fsyncFile
	defer func() { fsyncFile = origFsync }()

	dir := t.TempDir()
	fsyncFile = func(f *os.File) error {
		if f.Name() == dir {
			return os.ErrInvalid // simulated crash/IO failure at the seal
		}
		return f.Sync()
	}

	if _, err := Create(dir, testManifest(t, 1, testConfig{System: "quiet"}, nil)); err == nil {
		t.Fatal("Create succeeded despite the directory fsync failing")
	}
	if _, err := os.Stat(filepath.Join(dir, JournalFile)); !os.IsNotExist(err) {
		t.Errorf("journal exists although the manifest was never made durable (stat err = %v)", err)
	}
}
