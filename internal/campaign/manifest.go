// Package campaign makes benchmark campaigns durable and interruptible:
// a write-ahead sample journal (append-only JSONL with per-record CRC32
// checksums), a campaign manifest binding the journal to its exact
// experimental setup (config hash, RNG seed, fault-schedule fingerprint,
// environment description — Rule 9's reproducibility record), and a
// resume path that replays a possibly-truncated journal, drops the torn
// tail, fast-forwards the deterministic measure source, and continues
// collection exactly where it stopped.
//
// The motivation is the paper's Rule 2 ("report all data") under the
// reality Hunold & Carpen-Amarie document: multi-hour campaigns die
// mid-run. Without a journal, a crash or Ctrl-C silently discards every
// sample gathered so far; with one, the campaign checkpoints on every
// observation and an interrupted run resumes bit-for-bit. Resume is
// refused when the configuration drifted — continuing a campaign under
// a different setup would silently mix two experiments, which the
// twelve-rule audit surfaces as a Rule 9 violation.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/rules"
)

// FormatVersion identifies the on-disk journal/manifest layout.
const FormatVersion = 1

// Manifest binds a journal to the exact experimental setup that
// produced it. Seed, ConfigHash and FaultFingerprint are the identity
// of the campaign: resume compares them and refuses on any drift.
type Manifest struct {
	Version int    `json:"version"`
	Name    string `json:"name,omitempty"`
	// Seed is the RNG seed of the deterministic measure source.
	Seed uint64 `json:"seed"`
	// ConfigHash is the SHA-256 of the canonical JSON encoding of the
	// campaign configuration (plan, machine, flags — whatever the
	// caller declares as "the setup").
	ConfigHash string `json:"config_hash"`
	// FaultFingerprint is the SHA-256 of the injected fault schedule
	// (the hash of JSON "null" when no faults are injected): a changed
	// schedule is a changed experiment.
	FaultFingerprint string `json:"fault_fingerprint"`
	// Environment is the Rule 9 description of the experimental
	// environment, stored alongside the data it explains.
	Environment rules.Environment `json:"environment"`
	// Sweep, when non-nil, marks this campaign as one unit of a sharded
	// sweep (internal/shard): which sweep it belongs to and which unit
	// it measures. SweepHash and UnitID are campaign identity — a
	// reassigned executor resuming the unit must present the same
	// membership; the shard index is informational (reassignment keeps
	// the shard, but identity must not depend on which executor ran it).
	Sweep *SweepRef `json:"sweep,omitempty"`
	// CreatedAt records when the campaign started (informational; not
	// part of the campaign identity).
	CreatedAt time.Time `json:"created_at"`
}

// SweepRef identifies the sharded sweep a unit campaign belongs to.
type SweepRef struct {
	// SweepHash is the SHA-256 identity of the whole sweep (its
	// canonical unit list; see internal/shard).
	SweepHash string `json:"sweep_hash"`
	// UnitID names this campaign's unit within the sweep.
	UnitID string `json:"unit_id"`
	// Shard is the shard index the unit was assigned to (informational).
	Shard int `json:"shard"`
}

// NewManifest builds a manifest for a campaign: config is the caller's
// complete setup description (hashed canonically), sched the injected
// fault schedule (nil for none), env the Rule 9 environment record.
func NewManifest(name string, seed uint64, config any, sched *faults.Schedule, env rules.Environment) (Manifest, error) {
	ch, err := HashJSON(config)
	if err != nil {
		return Manifest{}, fmt.Errorf("campaign: hashing config: %w", err)
	}
	ff, err := HashJSON(sched)
	if err != nil {
		return Manifest{}, fmt.Errorf("campaign: hashing fault schedule: %w", err)
	}
	return Manifest{
		Version:          FormatVersion,
		Name:             name,
		Seed:             seed,
		ConfigHash:       ch,
		FaultFingerprint: ff,
		Environment:      env,
		CreatedAt:        time.Now().UTC(),
	}, nil
}

// HashJSON returns the hex SHA-256 of v's JSON encoding. Go's JSON
// encoder is canonical for structs (declaration order) and maps (sorted
// keys), so equal configurations hash equally.
func HashJSON(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// ErrManifestDrift reports a resume attempt whose current setup differs
// from the recorded one. Continuing would mix two experiments in one
// sample — a Rule 9 violation the audit engine reports.
var ErrManifestDrift = errors.New("campaign: manifest drift, resume refused")

// Drift is one mismatched manifest identity field: its human name and
// the two values that disagree.
type Drift struct {
	Field    string
	Recorded string
	Current  string
}

func (d Drift) String() string {
	return fmt.Sprintf("%s (recorded %s, current %s)", d.Field, d.Recorded, d.Current)
}

// DriftFields compares the identity fields of two manifests and returns
// one Drift per mismatch, in declaration order. An empty result means
// the two manifests describe the same experiment. Version is compared
// too: a format mismatch is a drift like any other, named explicitly.
func DriftFields(recorded, current Manifest) []Drift {
	var ds []Drift
	drift := func(field, rec, cur string) {
		ds = append(ds, Drift{Field: field, Recorded: rec, Current: cur})
	}
	if recorded.Version != current.Version {
		drift("journal format version", fmt.Sprintf("v%d", recorded.Version), fmt.Sprintf("v%d", current.Version))
	}
	if recorded.Seed != current.Seed {
		drift("RNG seed", fmt.Sprint(recorded.Seed), fmt.Sprint(current.Seed))
	}
	if recorded.ConfigHash != current.ConfigHash {
		drift("config hash", short(recorded.ConfigHash), short(current.ConfigHash))
	}
	if recorded.FaultFingerprint != current.FaultFingerprint {
		drift("fault-schedule fingerprint", short(recorded.FaultFingerprint), short(current.FaultFingerprint))
	}
	switch {
	case recorded.Sweep == nil && current.Sweep == nil:
	case recorded.Sweep == nil:
		drift("sweep membership", "standalone campaign", "sweep unit "+current.Sweep.UnitID)
	case current.Sweep == nil:
		drift("sweep membership", "sweep unit "+recorded.Sweep.UnitID, "standalone campaign")
	default:
		if recorded.Sweep.SweepHash != current.Sweep.SweepHash {
			drift("sweep hash", short(recorded.Sweep.SweepHash), short(current.Sweep.SweepHash))
		}
		if recorded.Sweep.UnitID != current.Sweep.UnitID {
			drift("sweep unit", recorded.Sweep.UnitID, current.Sweep.UnitID)
		}
	}
	return ds
}

// driftFindings converts drifted fields to Rule 9 audit findings.
func driftFindings(ds []Drift, action string) []rules.Finding {
	fs := make([]rules.Finding, 0, len(ds))
	for _, d := range ds {
		fs = append(fs, rules.Finding{
			Rule:     9,
			Severity: rules.Violation,
			Message: fmt.Sprintf("%s %s drifted (recorded %s, current %s): "+
				"the samples would not share the recorded experimental setup", action, d.Field, d.Recorded, d.Current),
		})
	}
	return fs
}

// driftError builds the ErrManifestDrift-wrapping error that names
// exactly which fields mismatched, so a refused resume (or merge) tells
// the operator what to fix rather than issuing a generic refusal.
func driftError(ds []Drift) error {
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = d.String()
	}
	return fmt.Errorf("%w: mismatched field(s): %s", ErrManifestDrift, strings.Join(names, "; "))
}

// CheckResume compares the recorded manifest against the current one
// and returns one Rule 9 audit finding per drifted identity field plus
// ErrManifestDrift naming every mismatched field when resume must be
// refused. A nil error means the setups match and resume is sound.
func CheckResume(recorded, current Manifest) ([]rules.Finding, error) {
	ds := DriftFields(recorded, current)
	if len(ds) == 0 {
		return nil, nil
	}
	return driftFindings(ds, "resume"), driftError(ds)
}

func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
