// Package campaign makes benchmark campaigns durable and interruptible:
// a write-ahead sample journal (append-only JSONL with per-record CRC32
// checksums), a campaign manifest binding the journal to its exact
// experimental setup (config hash, RNG seed, fault-schedule fingerprint,
// environment description — Rule 9's reproducibility record), and a
// resume path that replays a possibly-truncated journal, drops the torn
// tail, fast-forwards the deterministic measure source, and continues
// collection exactly where it stopped.
//
// The motivation is the paper's Rule 2 ("report all data") under the
// reality Hunold & Carpen-Amarie document: multi-hour campaigns die
// mid-run. Without a journal, a crash or Ctrl-C silently discards every
// sample gathered so far; with one, the campaign checkpoints on every
// observation and an interrupted run resumes bit-for-bit. Resume is
// refused when the configuration drifted — continuing a campaign under
// a different setup would silently mix two experiments, which the
// twelve-rule audit surfaces as a Rule 9 violation.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/rules"
)

// FormatVersion identifies the on-disk journal/manifest layout.
const FormatVersion = 1

// Manifest binds a journal to the exact experimental setup that
// produced it. Seed, ConfigHash and FaultFingerprint are the identity
// of the campaign: resume compares them and refuses on any drift.
type Manifest struct {
	Version int    `json:"version"`
	Name    string `json:"name,omitempty"`
	// Seed is the RNG seed of the deterministic measure source.
	Seed uint64 `json:"seed"`
	// ConfigHash is the SHA-256 of the canonical JSON encoding of the
	// campaign configuration (plan, machine, flags — whatever the
	// caller declares as "the setup").
	ConfigHash string `json:"config_hash"`
	// FaultFingerprint is the SHA-256 of the injected fault schedule
	// (the hash of JSON "null" when no faults are injected): a changed
	// schedule is a changed experiment.
	FaultFingerprint string `json:"fault_fingerprint"`
	// Environment is the Rule 9 description of the experimental
	// environment, stored alongside the data it explains.
	Environment rules.Environment `json:"environment"`
	// CreatedAt records when the campaign started (informational; not
	// part of the campaign identity).
	CreatedAt time.Time `json:"created_at"`
}

// NewManifest builds a manifest for a campaign: config is the caller's
// complete setup description (hashed canonically), sched the injected
// fault schedule (nil for none), env the Rule 9 environment record.
func NewManifest(name string, seed uint64, config any, sched *faults.Schedule, env rules.Environment) (Manifest, error) {
	ch, err := HashJSON(config)
	if err != nil {
		return Manifest{}, fmt.Errorf("campaign: hashing config: %w", err)
	}
	ff, err := HashJSON(sched)
	if err != nil {
		return Manifest{}, fmt.Errorf("campaign: hashing fault schedule: %w", err)
	}
	return Manifest{
		Version:          FormatVersion,
		Name:             name,
		Seed:             seed,
		ConfigHash:       ch,
		FaultFingerprint: ff,
		Environment:      env,
		CreatedAt:        time.Now().UTC(),
	}, nil
}

// HashJSON returns the hex SHA-256 of v's JSON encoding. Go's JSON
// encoder is canonical for structs (declaration order) and maps (sorted
// keys), so equal configurations hash equally.
func HashJSON(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// ErrManifestDrift reports a resume attempt whose current setup differs
// from the recorded one. Continuing would mix two experiments in one
// sample — a Rule 9 violation the audit engine reports.
var ErrManifestDrift = errors.New("campaign: manifest drift, resume refused")

// CheckResume compares the recorded manifest against the current one
// and returns one Rule 9 audit finding per drifted identity field plus
// ErrManifestDrift when resume must be refused. A nil error means the
// setups match and resume is sound.
func CheckResume(recorded, current Manifest) ([]rules.Finding, error) {
	var fs []rules.Finding
	drift := func(what, rec, cur string) {
		fs = append(fs, rules.Finding{
			Rule:     9,
			Severity: rules.Violation,
			Message: fmt.Sprintf("resume %s drifted (recorded %s, current %s): "+
				"the resumed samples would not share the recorded experimental setup", what, rec, cur),
		})
	}
	if recorded.Version != current.Version {
		return nil, fmt.Errorf("%w: journal format v%d, this build writes v%d",
			ErrManifestDrift, recorded.Version, current.Version)
	}
	if recorded.Seed != current.Seed {
		drift("RNG seed", fmt.Sprint(recorded.Seed), fmt.Sprint(current.Seed))
	}
	if recorded.ConfigHash != current.ConfigHash {
		drift("config hash", short(recorded.ConfigHash), short(current.ConfigHash))
	}
	if recorded.FaultFingerprint != current.FaultFingerprint {
		drift("fault-schedule fingerprint", short(recorded.FaultFingerprint), short(current.FaultFingerprint))
	}
	if len(fs) > 0 {
		return fs, fmt.Errorf("%w: %d Rule 9 finding(s)", ErrManifestDrift, len(fs))
	}
	return nil, nil
}

func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
