package campaign

import (
	"context"
	"fmt"
	"math"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/htest"
	"repro/internal/rules"
	"repro/internal/telemetry"
)

// boundaryAlpha is the significance level of the suspend/resume
// boundary drift check (Pettitt across the combined stream).
const boundaryAlpha = 0.01

// Run executes a fully journaled campaign in dir: every collection
// event is durable before the next observation runs, so an interruption
// at any point — Ctrl-C, OOM, power loss — leaves a resumable journal.
// Interruption surfaces as Result.Stop == bench.StopInterrupted.
func Run(ctx context.Context, dir string, m Manifest, plan bench.Plan, measure func() (float64, error)) (bench.Result, error) {
	return RunOpts(ctx, dir, m, plan, measure, JournalOptions{})
}

// RunOpts is Run with an explicit journal format selection. The format
// is storage, not experiment identity: a campaign journaled in v2
// retains the same records a v1 campaign would, and its report is
// byte-identical.
func RunOpts(ctx context.Context, dir string, m Manifest, plan bench.Plan,
	measure func() (float64, error), opt JournalOptions) (bench.Result, error) {
	ctx, span := telemetry.StartSpan(ctx, "campaign", filepath.Base(dir))
	defer span.End()
	j, err := CreateJournal(dir, m, opt)
	if err != nil {
		return bench.Result{}, err
	}
	defer j.Close()
	plan.Record = j
	res, err := bench.RunErrCtx(ctx, plan, measure)
	if cerr := j.Close(); err == nil && cerr != nil {
		// A failed final seal means the journal's tail was not made
		// durable — surface it rather than return a result whose journal
		// silently lags it.
		err = cerr
	}
	return res, err
}

// ResumeOptions tunes Resume for the nature of the measure source. The
// zero value is correct for deterministic sources (seeded simulated
// machines): the source is fast-forwarded through the journaled number
// of invocations and the recovered samples are re-verified against
// re-measurement, making resume bit-for-bit.
type ResumeOptions struct {
	// NoFastForward skips replaying measure invocations. Set it for
	// nondeterministic (wall-clock) measure sources, where replay buys
	// nothing; the resumed stream then continues from fresh draws and
	// the boundary drift check is the integrity signal. Implies
	// NoVerify.
	NoFastForward bool
	// NoVerify fast-forwards without comparing replayed values against
	// the journal.
	NoVerify bool
	// Journal tunes the journal writer for the appended continuation.
	// The journal's existing on-disk format always wins (a resume
	// extends the journal it found); Journal.Format only applies when
	// nothing was journaled yet, and Journal.FlushEvery tunes the v2
	// group-commit width.
	Journal JournalOptions
}

// ResumeInfo reports what Resume recovered and verified.
type ResumeInfo struct {
	// PriorSamples is the number of observations recovered from the
	// journal; the resumed result's first PriorSamples retained
	// observations are exactly these.
	PriorSamples int
	// Torn reports that a torn/corrupt tail record was dropped during
	// replay (the expected signature of a crash mid-append).
	Torn bool
	// FastForwarded is the number of measure invocations replayed to
	// restore the deterministic source's RNG position.
	FastForwarded int
	// ReplayChecked and ReplayMismatched count recovered samples that
	// were re-verified against re-measurement during fast-forward. Any
	// mismatch means the environment or code drifted since the
	// original run and resume is refused.
	ReplayChecked    int
	ReplayMismatched int
	// Boundary is Pettitt's change-point test over the combined
	// pre/post-resume stream; BoundaryDrift reports a significant shift
	// localized at the suspend/resume boundary — the environment
	// changed across the interruption and the resumed half must be
	// quarantined rather than pooled (Rule 6).
	Boundary      htest.ChangePoint
	BoundaryDrift bool
	// Findings carries the audit findings of the resume: Rule 9
	// violations on refusal, a Rule 6 warning on boundary drift.
	Findings []rules.Finding
}

// ErrReplayDivergence reports that fast-forward re-measurement did not
// reproduce the journaled samples: the measure source is not in the
// recorded state (changed code, environment, or seed), so the resumed
// samples would not extend the recorded experiment.
var ErrReplayDivergence = fmt.Errorf("%w: replayed samples diverge from journal", ErrManifestDrift)

// Resume continues an interrupted journaled campaign in dir: it replays
// the journal (dropping any torn tail), refuses on manifest drift (a
// Rule 9 violation), restores the measure source's position, preloads
// the recovered collection state, and runs the campaign to completion —
// appending to the same journal. With a deterministic source the final
// retained sample is bit-identical to an uninterrupted run.
//
// current must be rebuilt from the caller's present configuration; its
// hashes are compared against the recorded manifest. The returned
// ResumeInfo carries the recovery accounting and the suspend/resume
// boundary drift check.
func Resume(ctx context.Context, dir string, current Manifest, plan bench.Plan,
	measure func() (float64, error), opt ResumeOptions) (bench.Result, ResumeInfo, error) {
	ctx, span := telemetry.StartSpan(ctx, "campaign", "resume "+filepath.Base(dir))
	defer span.End()
	var info ResumeInfo
	// Verify the manifest before opening for writing: a refused resume
	// must leave the journal byte-for-byte untouched (including any torn
	// tail, which is evidence of how the campaign died).
	recorded, st, err := Load(dir)
	if err != nil {
		return bench.Result{}, info, err
	}
	info.Torn = st.Torn
	prior := st.Samples()
	info.PriorSamples = len(prior)

	if fs, err := CheckResume(recorded, current); err != nil {
		info.Findings = fs
		return bench.Result{}, info, err
	}

	j, _, st, err := OpenJournal(dir, opt.Journal)
	if err != nil {
		return bench.Result{}, info, err
	}
	defer j.Close()

	resume := &bench.ResumeState{Events: st.Events()}
	if !opt.NoFastForward {
		if err := fastForward(resume, st.Records, measure, plan, opt, &info); err != nil {
			return bench.Result{}, info, err
		}
	}

	plan.Record = j
	plan.Resume = resume
	res, err := bench.RunErrCtx(ctx, plan, measure)
	if cerr := j.Close(); err == nil && cerr != nil {
		err = cerr // a failed final seal left the journal's tail volatile
	}
	if err != nil {
		return res, info, err
	}

	// Quarantine check: did the environment drift while the campaign
	// was suspended? Pettitt across the suspend/resume boundary flags a
	// regime shift localized at the seam. Only meaningful when both
	// halves contributed and no outlier removal reindexed the stream.
	if res.OutliersRemoved == 0 && info.PriorSamples > 0 && len(res.Raw) > info.PriorSamples {
		if cp, drift, err := BoundaryShift(res.Raw, info.PriorSamples, boundaryAlpha); err == nil {
			info.Boundary = cp
			info.BoundaryDrift = drift
			if drift {
				info.Findings = append(info.Findings, rules.Finding{
					Rule:     6,
					Severity: rules.Warning,
					Message: fmt.Sprintf("regime shift at the suspend/resume boundary (sample %d, p ≈ %.3g): "+
						"the environment drifted across the interruption; quarantine the resumed half "+
						"instead of pooling it", cp.Index, cp.P),
				})
			}
		}
	}
	return res, info, nil
}

// fastForward replays the journaled number of measure invocations so a
// deterministic source reaches the exact state it held at interruption,
// verifying (unless opted out) that re-measurement reproduces the
// journaled samples bit-for-bit.
func fastForward(resume *bench.ResumeState, recs []Record,
	measure func() (float64, error), plan bench.Plan, opt ResumeOptions, info *ResumeInfo) error {
	// With single-event observations, the journal maps each sample to
	// the measure invocation that produced it; aggregated observations
	// (EventsPerSample > 1) fast-forward without value verification.
	verify := !opt.NoVerify && plan.EventsPerSample <= 1
	wantByCall := map[int]float64{}
	if verify {
		for _, r := range recs {
			if r.Event.Kind == bench.EventSample {
				wantByCall[r.Event.Calls] = r.Event.Value
			}
		}
	}
	for call := 1; call <= resume.Calls(); call++ {
		v, err := replayOne(measure)
		info.FastForwarded++
		if err != nil {
			continue // the original attempt failed here too (or diverged — caught below)
		}
		if want, ok := wantByCall[call]; ok {
			info.ReplayChecked++
			if math.Float64bits(want) != math.Float64bits(v) {
				info.ReplayMismatched++
			}
		}
	}
	if info.ReplayMismatched > 0 {
		info.Findings = append(info.Findings, rules.Finding{
			Rule:     9,
			Severity: rules.Violation,
			Message: fmt.Sprintf("%d of %d replayed samples diverge from the journal: "+
				"the measure source is not in its recorded state", info.ReplayMismatched, info.ReplayChecked),
		})
		return ErrReplayDivergence
	}
	return nil
}

// replayOne runs one fast-forward invocation with panic recovery (the
// original campaign may legitimately have panicked here).
func replayOne(measure func() (float64, error)) (v float64, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("campaign: replayed measure panicked: %v", p)
		}
	}()
	return measure()
}

// BoundaryShift runs Pettitt's change-point test over a combined
// measurement stream and reports whether a significant shift localizes
// at the given boundary index (the suspend/resume seam): within
// max(3, 5%) samples of it. A shift elsewhere is ordinary mid-campaign
// contamination, already covered by Result.ShiftDetected.
func BoundaryShift(xs []float64, boundary int, alpha float64) (htest.ChangePoint, bool, error) {
	return BoundaryShiftWin(xs, boundary, alpha, 0)
}

// BoundaryShiftWin is BoundaryShift with an explicit localization
// window: a significant change-point within win samples of boundary
// counts as boundary drift. win <= 0 selects the default max(3, 5% of
// the stream). Callers whose seams have coarser natural resolution — a
// shard merge, where contamination is unit-granular because executors
// run whole units — pass the unit width.
func BoundaryShiftWin(xs []float64, boundary int, alpha float64, win int) (htest.ChangePoint, bool, error) {
	cp, err := htest.Pettitt(xs)
	if err != nil {
		return htest.ChangePoint{}, false, err
	}
	if !cp.Significant(alpha) {
		return cp, false, nil
	}
	if win <= 0 {
		win = len(xs) / 20
		if win < 3 {
			win = 3
		}
	}
	drift := cp.Index >= boundary-win && cp.Index < boundary+win
	return cp, drift, nil
}
