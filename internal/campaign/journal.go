package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bench"
	"repro/internal/telemetry"
)

// Telemetry: journal durability cost, observable without changing a
// byte of the journal itself (internal/telemetry's invariant).
var (
	telRecords = telemetry.Default().Counter("campaign.records")
	telFsyncUs = telemetry.Default().Histogram("campaign.fsync_us")
)

// fsyncFile and renameFile are indirection seams for the
// crash-durability test, which records their call order to verify the
// write-ahead ordering Create promises. Production behaviour is the
// plain syscall.
var (
	fsyncFile  = func(f *os.File) error { return f.Sync() }
	renameFile = os.Rename
)

// syncDir fsyncs a directory so a just-created or just-renamed entry in
// it survives a crash — without it, POSIX allows the rename itself to be
// lost even though the file's bytes were flushed.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = fsyncFile(d)
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// On-disk layout of a campaign directory.
const (
	// ManifestFile holds the campaign Manifest (JSON).
	ManifestFile = "manifest.json"
	// JournalFile is the append-only event journal (JSONL, one
	// CRC-framed record per line).
	JournalFile = "journal.jsonl"
)

// Record is one journaled collection event, numbered densely from 1.
type Record struct {
	Seq   int         `json:"seq"`
	Event bench.Event `json:"event"`
}

// frame is the wire form of one journal line: the record's exact JSON
// bytes plus their CRC32 (IEEE). The checksum is computed over the raw
// bytes as written, so a reader verifies integrity without re-encoding.
type frame struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// State is the collection state reconstructed from a journal.
type State struct {
	// Records are the verified records, in order.
	Records []Record
	// Torn reports that the journal ended in a torn or corrupt record
	// (a crash mid-append, a bit flip); the bad tail was dropped.
	Torn bool
	// ValidBytes is the length of the verified journal prefix; bytes
	// past it are the dropped tail.
	ValidBytes int64
}

// Events extracts the bench event stream from the verified records.
func (s State) Events() []bench.Event {
	evs := make([]bench.Event, len(s.Records))
	for i, r := range s.Records {
		evs[i] = r.Event
	}
	return evs
}

// Samples returns the retained observations, in collection order.
func (s State) Samples() []float64 {
	var xs []float64
	for _, r := range s.Records {
		if r.Event.Kind == bench.EventSample {
			xs = append(xs, r.Event.Value)
		}
	}
	return xs
}

// Journal is an open write-ahead journal. It implements bench.Recorder:
// attach it via Plan.Record and every collection event is framed,
// checksummed, and flushed to disk before collection proceeds.
type Journal struct {
	f   *os.File
	seq int
	// Sync controls per-record fsync. Default true: an OS crash loses
	// at most the record being written. Set false to trade durability
	// against the page cache for journaling throughput.
	Sync bool
}

// Errors returned by the journal layer.
var (
	// ErrCampaignExists reports Create on a directory that already
	// holds a campaign (resume it with Open instead).
	ErrCampaignExists = errors.New("campaign: directory already holds a campaign")
	// ErrNoCampaign reports Open on a directory without a manifest.
	ErrNoCampaign = errors.New("campaign: no campaign in directory")
)

// Create starts a new campaign: it creates dir (if needed), writes the
// manifest, and opens an empty journal. It refuses a directory that
// already contains a campaign.
func Create(dir string, m Manifest) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	mpath := filepath.Join(dir, ManifestFile)
	if _, err := os.Stat(mpath); err == nil {
		return nil, fmt.Errorf("%w: %s", ErrCampaignExists, dir)
	}
	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("campaign: encoding manifest: %w", err)
	}
	// Manifest first, atomically AND durably: a journal must never exist
	// without the setup record that makes it interpretable (Rule 9). The
	// rename alone is not enough — the temp file's bytes must be fsynced
	// before the rename (or a crash can publish an empty manifest under
	// the final name) and the directory must be fsynced after it (or the
	// rename itself can be lost while the journal's creation survives).
	tmp := mpath + ".tmp"
	if err := writeFileDurable(tmp, append(mb, '\n')); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if err := renameFile(tmp, mpath); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return nil, fmt.Errorf("campaign: syncing directory: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, JournalFile),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	// Make the journal's directory entry durable too, so the on-disk
	// states a crash can leave are exactly: nothing, manifest only, or
	// manifest + journal — never a journal without its manifest.
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: syncing directory: %w", err)
	}
	return &Journal{f: f, Sync: true}, nil
}

// writeFileDurable writes data to path and fsyncs the file before
// returning, so a subsequent rename can never publish incomplete bytes.
func writeFileDurable(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err = f.Write(data); err == nil {
		err = fsyncFile(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Load reads a campaign directory without opening it for writing: the
// manifest plus the replayed journal state. Use it to inspect a
// campaign or to audit its integrity.
func Load(dir string) (Manifest, State, error) {
	mb, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		if os.IsNotExist(err) {
			return Manifest{}, State{}, fmt.Errorf("%w: %s", ErrNoCampaign, dir)
		}
		return Manifest{}, State{}, fmt.Errorf("campaign: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return Manifest{}, State{}, fmt.Errorf("campaign: corrupt manifest: %w", err)
	}
	jb, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		if os.IsNotExist(err) {
			return m, State{}, nil // campaign created, nothing collected yet
		}
		return m, State{}, fmt.Errorf("campaign: %w", err)
	}
	return m, Replay(jb), nil
}

// Open reopens an interrupted campaign for appending: it replays the
// journal, truncates any torn tail record, and positions the writer
// after the last verified record.
func Open(dir string) (*Journal, Manifest, State, error) {
	m, st, err := Load(dir)
	if err != nil {
		return nil, Manifest{}, State{}, err
	}
	f, err := os.OpenFile(filepath.Join(dir, JournalFile), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, Manifest{}, State{}, fmt.Errorf("campaign: %w", err)
	}
	// Physically drop the torn tail so the journal on disk is exactly
	// its verified prefix, then append after it.
	if err := f.Truncate(st.ValidBytes); err != nil {
		f.Close()
		return nil, Manifest{}, State{}, fmt.Errorf("campaign: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(st.ValidBytes, 0); err != nil {
		f.Close()
		return nil, Manifest{}, State{}, fmt.Errorf("campaign: %w", err)
	}
	return &Journal{f: f, seq: len(st.Records), Sync: true}, m, st, nil
}

// Replay scans raw journal bytes and reconstructs the verified state:
// records are accepted up to (not including) the first line that fails
// JSON framing, CRC verification, or dense sequence numbering — a crash
// mid-append leaves exactly such a torn tail, which is dropped.
func Replay(data []byte) State {
	st := State{}
	off := int64(0)
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// No terminating newline: a torn final write.
			st.Torn = true
			return st
		}
		line := data[:nl]
		rec, ok := decodeLine(line)
		if !ok || rec.Seq != len(st.Records)+1 {
			st.Torn = true
			return st
		}
		st.Records = append(st.Records, rec)
		off += int64(nl + 1)
		st.ValidBytes = off
		data = data[nl+1:]
	}
	return st
}

// decodeLine verifies and decodes one journal line.
func decodeLine(line []byte) (Record, bool) {
	var fr frame
	if err := json.Unmarshal(line, &fr); err != nil || fr.Rec == nil {
		return Record{}, false
	}
	if crc32.ChecksumIEEE(fr.Rec) != fr.CRC {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(fr.Rec, &rec); err != nil {
		return Record{}, false
	}
	return rec, true
}

// Record appends one collection event, CRC-framed, and (by default)
// fsyncs before returning — the write-ahead contract: an event is only
// acknowledged to the collection loop once it is durable.
func (j *Journal) Record(ev bench.Event) error {
	j.seq++
	rb, err := json.Marshal(Record{Seq: j.seq, Event: ev})
	if err != nil {
		return fmt.Errorf("campaign: encoding record: %w", err)
	}
	lb, err := json.Marshal(frame{CRC: crc32.ChecksumIEEE(rb), Rec: rb})
	if err != nil {
		return fmt.Errorf("campaign: framing record: %w", err)
	}
	if _, err := j.f.Write(append(lb, '\n')); err != nil {
		return fmt.Errorf("campaign: appending record: %w", err)
	}
	if j.Sync {
		t0 := time.Now()
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("campaign: syncing journal: %w", err)
		}
		telFsyncUs.Observe(telemetry.Us(time.Since(t0)))
	}
	telRecords.Inc()
	return nil
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
