package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bench"
	"repro/internal/telemetry"
)

// Telemetry: journal durability cost, observable without changing a
// byte of the journal itself (internal/telemetry's invariant).
var (
	telRecords = telemetry.Default().Counter("campaign.records")
	telChunks  = telemetry.Default().Counter("campaign.chunks")
	telFsyncUs = telemetry.Default().Histogram("campaign.fsync_us")
)

// fsyncFile, renameFile and journalWrite are indirection seams for the
// crash-durability tests, which record call order (write-ahead
// ordering) or inject mid-append faults (torn-state recovery).
// Production behaviour is the plain syscall.
var (
	fsyncFile    = func(f *os.File) error { return f.Sync() }
	renameFile   = os.Rename
	journalWrite = func(f *os.File, b []byte) (int, error) { return f.Write(b) }
)

// syncDir fsyncs a directory so a just-created or just-renamed entry in
// it survives a crash — without it, POSIX allows the rename itself to be
// lost even though the file's bytes were flushed.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = fsyncFile(d)
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// On-disk layout of a campaign directory.
const (
	// ManifestFile holds the campaign Manifest (JSON).
	ManifestFile = "manifest.json"
	// JournalFile is the append-only event journal. The name is fixed
	// across formats — v1 is JSONL (one CRC-framed record per line), v2
	// is the chunked binary layout (see journalv2.go); readers sniff the
	// format from the leading bytes, so every consumer (resume, shard
	// merge, remote chunk shipment) handles either transparently.
	JournalFile = "journal.jsonl"
)

// Record is one journaled collection event, numbered densely from 1.
type Record struct {
	Seq   int         `json:"seq"`
	Event bench.Event `json:"event"`
}

// frame is the wire form of one v1 journal line: the record's exact
// JSON bytes plus their CRC32 (IEEE). The checksum is computed over the
// raw bytes as written, so a reader verifies integrity without
// re-encoding.
type frame struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// State is the collection state reconstructed from a journal.
type State struct {
	// Records are the verified records, in order.
	Records []Record
	// Torn reports that the journal ended in a torn or corrupt record
	// (a crash mid-append, a bit flip); the bad tail was dropped.
	Torn bool
	// ValidBytes is the length of the verified journal prefix; bytes
	// past it are the dropped tail. For a v2 journal the prefix includes
	// the format header, so ValidBytes is never less than the header
	// size once the header verified.
	ValidBytes int64
	// Format is the sniffed on-disk format the bytes were decoded as.
	Format Format
}

// Events extracts the bench event stream from the verified records.
func (s State) Events() []bench.Event {
	evs := make([]bench.Event, len(s.Records))
	for i, r := range s.Records {
		evs[i] = r.Event
	}
	return evs
}

// Samples returns the retained observations, in collection order.
func (s State) Samples() []float64 {
	var xs []float64
	for _, r := range s.Records {
		if r.Event.Kind == bench.EventSample {
			xs = append(xs, r.Event.Value)
		}
	}
	return xs
}

// DefaultFlushEvery is the v2 group-commit width: how many records a
// chunk accumulates before it is sealed (written, CRC-framed, and — in
// Sync mode — fsynced). One fsync then covers DefaultFlushEvery
// records instead of one, which is where the v2 append-throughput win
// comes from; the price is that an OS crash can lose up to
// FlushEvery-1 trailing events (a clean Close loses none). Resume
// simply re-measures the lost tail — bit-identically, for a
// deterministic source.
const DefaultFlushEvery = 64

// JournalOptions selects the on-disk journal format and tunes the v2
// group-commit width. The zero value is the v1 JSONL format with
// per-record fsync — the most durable and the slowest.
type JournalOptions struct {
	// Format is the on-disk layout (FormatJSONL or FormatV2); 0 means
	// FormatJSONL.
	Format Format
	// FlushEvery is the v2 records-per-chunk group-commit width; 0
	// means DefaultFlushEvery. Ignored by FormatJSONL.
	FlushEvery int
}

func (o JournalOptions) withDefaults() JournalOptions {
	if o.Format == 0 {
		o.Format = FormatJSONL
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = DefaultFlushEvery
	}
	return o
}

// Journal is an open write-ahead journal. It implements bench.Recorder:
// attach it via Plan.Record and every collection event is framed,
// checksummed, and flushed to disk before collection proceeds (v1
// per-record; v2 per sealed chunk).
type Journal struct {
	f   *os.File
	seq int
	// Sync controls fsync on the append path. Default true: an OS crash
	// loses at most the record being written (v1) or the unsealed chunk
	// tail (v2). Set false to trade durability against the page cache
	// for journaling throughput.
	Sync bool

	format     Format
	flushEvery int
	pending    []Record // v2: records accepted but not yet sealed
	good       int64    // offset of the last cleanly-written byte (the rewind floor)
	broken     error    // latched after an unrecoverable rewind failure
}

// Format returns the journal's on-disk format.
func (j *Journal) Format() Format { return j.format }

// Errors returned by the journal layer.
var (
	// ErrCampaignExists reports Create on a directory that already
	// holds a campaign (resume it with Open instead).
	ErrCampaignExists = errors.New("campaign: directory already holds a campaign")
	// ErrNoCampaign reports Open on a directory without a manifest.
	ErrNoCampaign = errors.New("campaign: no campaign in directory")
)

// Create starts a new campaign in the default (v1 JSONL) journal
// format: it creates dir (if needed), writes the manifest, and opens an
// empty journal. It refuses a directory that already contains a
// campaign.
func Create(dir string, m Manifest) (*Journal, error) {
	return CreateJournal(dir, m, JournalOptions{})
}

// CreateJournal is Create with an explicit journal format selection.
func CreateJournal(dir string, m Manifest, opt JournalOptions) (*Journal, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	mpath := filepath.Join(dir, ManifestFile)
	if _, err := os.Stat(mpath); err == nil {
		return nil, fmt.Errorf("%w: %s", ErrCampaignExists, dir)
	}
	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("campaign: encoding manifest: %w", err)
	}
	// Manifest first, atomically AND durably: a journal must never exist
	// without the setup record that makes it interpretable (Rule 9). The
	// rename alone is not enough — the temp file's bytes must be fsynced
	// before the rename (or a crash can publish an empty manifest under
	// the final name) and the directory must be fsynced after it (or the
	// rename itself can be lost while the journal's creation survives).
	tmp := mpath + ".tmp"
	if err := writeFileDurable(tmp, append(mb, '\n')); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if err := renameFile(tmp, mpath); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return nil, fmt.Errorf("campaign: syncing directory: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, JournalFile),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	// Make the journal's directory entry durable too, so the on-disk
	// states a crash can leave are exactly: nothing, manifest only, or
	// manifest + journal — never a journal without its manifest.
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: syncing directory: %w", err)
	}
	j := &Journal{f: f, Sync: true, format: opt.Format, flushEvery: opt.FlushEvery}
	if opt.Format == FormatV2 {
		// The format header goes down durably before the first record so
		// every later reader — including one racing a crash — sniffs v2
		// from the verified prefix.
		if err := j.writeHeaderV2(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// writeFileDurable writes data to path and fsyncs the file before
// returning, so a subsequent rename can never publish incomplete bytes.
func writeFileDurable(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err = f.Write(data); err == nil {
		err = fsyncFile(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Load reads a campaign directory without opening it for writing: the
// manifest plus the replayed journal state. Use it to inspect a
// campaign or to audit its integrity.
func Load(dir string) (Manifest, State, error) {
	mb, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		if os.IsNotExist(err) {
			return Manifest{}, State{}, fmt.Errorf("%w: %s", ErrNoCampaign, dir)
		}
		return Manifest{}, State{}, fmt.Errorf("campaign: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return Manifest{}, State{}, fmt.Errorf("campaign: corrupt manifest: %w", err)
	}
	jb, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		if os.IsNotExist(err) {
			return m, State{}, nil // campaign created, nothing collected yet
		}
		return m, State{}, fmt.Errorf("campaign: %w", err)
	}
	return m, Replay(jb), nil
}

// Open reopens an interrupted campaign for appending: it replays the
// journal (sniffing the on-disk format), truncates any torn tail, and
// positions the writer after the last verified record — continuing in
// the format the journal already uses.
func Open(dir string) (*Journal, Manifest, State, error) {
	return OpenJournal(dir, JournalOptions{})
}

// OpenJournal is Open with explicit options. The journal's existing
// format always wins — a resume must extend the journal it found, not
// switch layouts mid-file; opt.Format applies only when the journal is
// empty (nothing written yet), and opt.FlushEvery tunes the v2
// group-commit width for the appended continuation.
func OpenJournal(dir string, opt JournalOptions) (*Journal, Manifest, State, error) {
	opt = opt.withDefaults()
	m, st, err := Load(dir)
	if err != nil {
		return nil, Manifest{}, State{}, err
	}
	format := st.Format
	if format == 0 {
		format = opt.Format
	}
	f, err := os.OpenFile(filepath.Join(dir, JournalFile), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, Manifest{}, State{}, fmt.Errorf("campaign: %w", err)
	}
	// Physically drop the torn tail so the journal on disk is exactly
	// its verified prefix, then append after it.
	if err := f.Truncate(st.ValidBytes); err != nil {
		f.Close()
		return nil, Manifest{}, State{}, fmt.Errorf("campaign: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(st.ValidBytes, 0); err != nil {
		f.Close()
		return nil, Manifest{}, State{}, fmt.Errorf("campaign: %w", err)
	}
	j := &Journal{f: f, seq: len(st.Records), Sync: true,
		format: format, flushEvery: opt.FlushEvery, good: st.ValidBytes}
	if format == FormatV2 && st.ValidBytes == 0 {
		// The header itself was torn (crash inside Create): lay it down
		// again before appending.
		if err := j.writeHeaderV2(); err != nil {
			f.Close()
			return nil, Manifest{}, State{}, err
		}
	}
	return j, m, st, nil
}

// Replay scans raw journal bytes and reconstructs the verified state.
// The format is sniffed from the leading bytes (the v2 magic header vs
// v1 JSONL); in either format records are accepted up to (not
// including) the first frame that fails structural decoding, CRC
// verification, or dense sequence numbering — a crash mid-append leaves
// exactly such a torn tail, which is dropped.
func Replay(data []byte) State {
	switch SniffFormat(data) {
	case FormatV2:
		return replayV2(data)
	}
	st := State{Format: FormatJSONL}
	off := int64(0)
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// No terminating newline: a torn final write.
			st.Torn = true
			return st
		}
		line := data[:nl]
		rec, ok := decodeLine(line)
		if !ok || rec.Seq != len(st.Records)+1 {
			st.Torn = true
			return st
		}
		st.Records = append(st.Records, rec)
		off += int64(nl + 1)
		st.ValidBytes = off
		data = data[nl+1:]
	}
	return st
}

// decodeLine verifies and decodes one v1 journal line.
func decodeLine(line []byte) (Record, bool) {
	var fr frame
	if err := json.Unmarshal(line, &fr); err != nil || fr.Rec == nil {
		return Record{}, false
	}
	if crc32.ChecksumIEEE(fr.Rec) != fr.CRC {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(fr.Rec, &rec); err != nil {
		return Record{}, false
	}
	return rec, true
}

// Record appends one collection event under the write-ahead contract:
// an event is only acknowledged to the collection loop once it is
// durable (v1: CRC-framed, written, fsynced; v2: accepted into the
// pending chunk, which seals — write + CRC + group fsync — every
// FlushEvery records and on Close).
//
// A failed append leaves the journal recoverable: the file is rewound
// to the last durable offset (never leaving a torn fragment mid-file)
// and seq does not advance, so a caller that survives the error — or a
// retry of the same event — continues a journal whose every byte still
// replays. Without the rewind, the next successful append would land
// after the torn fragment and Replay would drop it and everything
// beyond it as a torn tail.
func (j *Journal) Record(ev bench.Event) error {
	if j.broken != nil {
		return j.broken
	}
	if j.format == FormatV2 {
		return j.recordV2(ev)
	}
	next := j.seq + 1
	rb, err := json.Marshal(Record{Seq: next, Event: ev})
	if err != nil {
		return fmt.Errorf("campaign: encoding record: %w", err)
	}
	lb, err := json.Marshal(frame{CRC: crc32.ChecksumIEEE(rb), Rec: rb})
	if err != nil {
		return fmt.Errorf("campaign: framing record: %w", err)
	}
	line := append(lb, '\n')
	if _, err := journalWrite(j.f, line); err != nil {
		j.rewind()
		return fmt.Errorf("campaign: appending record: %w", err)
	}
	if j.Sync {
		t0 := time.Now()
		if err := fsyncFile(j.f); err != nil {
			// The bytes may or may not have reached disk; either way the
			// record was not acknowledged, so it must not stay in the
			// file — a retry would otherwise duplicate its seq.
			j.rewind()
			return fmt.Errorf("campaign: syncing journal: %w", err)
		}
		telFsyncUs.Observe(telemetry.Us(time.Since(t0)))
	}
	j.seq = next
	j.good += int64(len(line))
	telRecords.Inc()
	return nil
}

// rewind restores the journal file to its last durable state after a
// failed append: everything past the rewind floor is a torn or
// unacknowledged fragment that must not precede future appends. If the
// rewind itself fails the journal latches broken — appending past an
// un-truncated fragment would silently orphan every later record.
func (j *Journal) rewind() {
	if err := j.f.Truncate(j.good); err != nil {
		j.broken = fmt.Errorf("campaign: journal unrecoverable: truncating torn fragment: %w", err)
		return
	}
	if _, err := j.f.Seek(j.good, 0); err != nil {
		j.broken = fmt.Errorf("campaign: journal unrecoverable: repositioning writer: %w", err)
	}
}

// Flush seals any pending v2 chunk (a no-op for v1, which has no
// buffered state). Call it to checkpoint mid-campaign without closing.
func (j *Journal) Flush() error {
	if j.broken != nil {
		return j.broken
	}
	return j.seal()
}

// Close flushes and closes the journal file. Pending v2 records are
// sealed first, so a clean shutdown never loses accepted events.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.seal()
	if serr := j.f.Sync(); err == nil {
		err = serr
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
