// Package rng centralizes the repository's seed-stream discipline: the
// splitmix64 finalizer used to derive independent deterministic streams
// from one master seed, and a value-type PCG stream suitable for
// per-rank randomness in the simulated cluster.
//
// The discipline (established by the sharded bootstrap, PR 3) is that a
// stream's identity is a pure function of (master seed, stream index) —
// never of execution order, batch size, or worker count. Any component
// that partitions work across goroutines or machines derives one stream
// per logical unit through Mix64 and the results are bit-identical
// however the units are scheduled.
package rng

import (
	"math"
	"math/bits"
)

// Mix64 is the splitmix64 finalizer (Steele, Lea & Flood), a strong
// bijective bit mixer: golden-ratio increment followed by two
// multiply-xorshift rounds. It turns structured inputs (seed ^ index)
// into independent-looking stream seeds.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Stream is a PCG-DXSM 128/64 generator held by value, so a simulated
// machine can keep one stream per rank in a flat slice with no per-rank
// heap objects. The algorithm and constants match math/rand/v2's PCG;
// only the container differs. The zero value is a valid (if poorly
// seeded) stream; use NewStream or Seed.
type Stream struct {
	hi, lo uint64
	// Cached second output of the polar normal transform.
	spare    float64
	hasSpare bool
}

// NewStream returns a stream seeded from the pair, conventionally
// produced by Mix64 of (master seed, stream index).
func NewStream(seed1, seed2 uint64) Stream {
	var s Stream
	s.Seed(seed1, seed2)
	return s
}

// Seed resets the stream to the given 128-bit state, discarding any
// cached normal draw.
func (s *Stream) Seed(seed1, seed2 uint64) {
	s.hi, s.lo = seed1, seed2
	s.hasSpare = false
	s.spare = 0
}

// Uint64 returns the next output of the PCG XSL-RR 128/64 generator.
func (s *Stream) Uint64() uint64 {
	const (
		mulHi = 2549297995355413924
		mulLo = 4865540595714422341
		incHi = 6364136223846793005
		incLo = 1442695040888963407
	)
	// state = state * mul + inc, 128-bit.
	hi, lo := bits.Mul64(s.lo, mulLo)
	hi += s.hi*mulLo + s.lo*mulHi
	lo, c := bits.Add64(lo, incLo, 0)
	hi, _ = bits.Add64(hi, incHi, c)
	s.lo, s.hi = lo, hi
	// DXSM output function (the variant math/rand/v2 uses).
	const cheapMul = 0xda942042e4dd58b5
	hi ^= hi >> 32
	hi *= cheapMul
	hi ^= hi >> 48
	hi *= lo | 1
	return hi
}

// Float64 returns a uniform draw in [0, 1) with 53 random bits.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal draw via Marsaglia's polar
// method, caching the second value of each generated pair. The sequence
// is deterministic per stream but deliberately NOT the same as
// math/rand/v2's ziggurat — streams are independent noise sources, not
// drop-in replays of the shared generator.
func (s *Stream) NormFloat64() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.spare = v * f
		s.hasSpare = true
		return u * f
	}
}
