package rng

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestMix64MatchesReferenceVectors(t *testing.T) {
	// Reference outputs of splitmix64 seeded with 1234567 (first three
	// next() calls), from the canonical Steele et al. sequence.
	state := uint64(1234567)
	var got []uint64
	for i := 0; i < 3; i++ {
		got = append(got, Mix64(state))
		state += 0x9e3779b97f4a7c15
	}
	want := []uint64{6457827717110365317, 3203168211198807973, 9817491932198370423}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("splitmix64 output %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMix64Distinctness(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		v := Mix64(i)
		if seen[v] {
			t.Fatalf("collision at %d", i)
		}
		seen[v] = true
	}
}

func TestStreamMatchesStdlibPCG(t *testing.T) {
	// Stream is math/rand/v2's PCG by value: same seed, same outputs.
	s := NewStream(42, 99)
	ref := rand.NewPCG(42, 99)
	for i := 0; i < 1000; i++ {
		if g, w := s.Uint64(), ref.Uint64(); g != w {
			t.Fatalf("output %d: %d != stdlib %d", i, g, w)
		}
	}
}

func TestStreamSeedResets(t *testing.T) {
	s := NewStream(7, 8)
	a := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	_ = s.NormFloat64() // prime the spare cache
	s.Seed(7, 8)
	b := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reseeded stream diverged at %d", i)
		}
	}
}

func TestStreamFloat64Range(t *testing.T) {
	s := NewStream(1, 2)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestStreamNormFloat64Moments(t *testing.T) {
	s := NewStream(3, 4)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %g, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %g, want ≈1", variance)
	}
}

func TestStreamsIndependent(t *testing.T) {
	// Streams derived by Mix64 of adjacent indices must not correlate.
	a := NewStream(Mix64(100), Mix64(100^0xabcdef))
	b := NewStream(Mix64(101), Mix64(101^0xabcdef))
	const n = 50000
	var sa, sb, sab float64
	for i := 0; i < n; i++ {
		x, y := a.Float64()-0.5, b.Float64()-0.5
		sa += x * x
		sb += y * y
		sab += x * y
	}
	if corr := sab / math.Sqrt(sa*sb); math.Abs(corr) > 0.02 {
		t.Errorf("adjacent streams correlate: r = %g", corr)
	}
}
