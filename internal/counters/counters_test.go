package counters

import (
	"strings"
	"testing"
)

var sink []byte

func allocate1MB() {
	sink = make([]byte, 1<<20)
	for i := 0; i < len(sink); i += 4096 {
		sink[i] = 1
	}
}

func TestMeasureCapturesAllocations(t *testing.T) {
	d := Measure(allocate1MB)
	if d.AllocBytes < 1<<20 {
		t.Errorf("allocated %d B, want >= 1 MiB", d.AllocBytes)
	}
	if d.Mallocs < 1 {
		t.Errorf("mallocs = %d", d.Mallocs)
	}
	if d.Elapsed <= 0 {
		t.Errorf("elapsed = %v", d.Elapsed)
	}
	if !strings.Contains(d.String(), "allocated") {
		t.Error("String rendering")
	}
}

func TestMeasureNoAllocWork(t *testing.T) {
	x := 0
	d := Measure(func() {
		for i := 0; i < 1000; i++ {
			x += i
		}
	})
	_ = x
	// A pure-compute region allocates (nearly) nothing.
	if d.AllocBytes > 1<<16 {
		t.Errorf("unexpected allocations: %d B", d.AllocBytes)
	}
}

func TestSeriesAndDeterminism(t *testing.T) {
	ds := Series(5, allocate1MB)
	if len(ds) != 5 {
		t.Fatalf("series = %d", len(ds))
	}
	// The byte count of an identical allocation is deterministic (within
	// runtime background noise) even though its duration is not — the
	// paper's §3.1.1 cost/time distinction.
	if !AllocsDeterministic(ds, 1<<16) {
		t.Error("allocation byte counts varied beyond tolerance across identical runs")
	}
	times := TimesSeconds(ds)
	if len(times) != 5 || times[0] <= 0 {
		t.Errorf("times = %v", times)
	}
	rates := AllocRates(ds)
	for _, r := range rates {
		if r <= 0 {
			t.Errorf("rates = %v", rates)
			break
		}
	}
}

func TestAllocsDeterministicEdge(t *testing.T) {
	if AllocsDeterministic(nil, 0) {
		t.Error("empty series cannot be deterministic")
	}
	one := []Delta{{AllocBytes: 5}}
	if !AllocsDeterministic(one, 0) {
		t.Error("single delta is trivially deterministic")
	}
	two := []Delta{{AllocBytes: 5}, {AllocBytes: 600}}
	if AllocsDeterministic(two, 10) {
		t.Error("differing deltas flagged deterministic")
	}
	if !AllocsDeterministic(two, 1000) {
		t.Error("within-tolerance deltas flagged nondeterministic")
	}
	// Tolerance works in both directions.
	down := []Delta{{AllocBytes: 600}, {AllocBytes: 5}}
	if AllocsDeterministic(down, 10) {
		t.Error("descending difference not caught")
	}
}

func TestSubArithmetic(t *testing.T) {
	before := Snapshot{AllocBytes: 100, Mallocs: 10, GCCycles: 1, GCPause: 5}
	after := Snapshot{AllocBytes: 350, Mallocs: 17, GCCycles: 3, GCPause: 11}
	d := Sub(before, after, 42)
	if d.AllocBytes != 250 || d.Mallocs != 7 || d.GCCycles != 2 || d.GCPause != 6 || d.Elapsed != 42 {
		t.Errorf("delta = %+v", d)
	}
}
