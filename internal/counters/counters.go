// Package counters provides software performance counters for Go
// programs — this repository's analogue of LibSciBench's PAPI hardware
// counter support: per-measurement deltas of allocation volume, heap
// objects, GC cycles and GC pause time, collected around a measured
// region. Counting *what happened* alongside *how long it took* lets the
// analysis separate deterministic cost metrics (allocations are usually
// deterministic; Rule 5) from nondeterministic time.
package counters

import (
	"fmt"
	"runtime"
	"time"
)

// Snapshot is a point-in-time reading of the runtime counters.
type Snapshot struct {
	AllocBytes uint64 // cumulative bytes allocated
	Mallocs    uint64 // cumulative heap objects allocated
	GCCycles   uint32 // completed GC cycles
	GCPause    time.Duration
}

// Read captures the current counter values.
func Read() Snapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return Snapshot{
		AllocBytes: ms.TotalAlloc,
		Mallocs:    ms.Mallocs,
		GCCycles:   ms.NumGC,
		GCPause:    time.Duration(ms.PauseTotalNs),
	}
}

// Delta is the counter change across a measured region.
type Delta struct {
	AllocBytes uint64
	Mallocs    uint64
	GCCycles   uint32
	GCPause    time.Duration
	Elapsed    time.Duration
}

// String renders the delta compactly.
func (d Delta) String() string {
	return fmt.Sprintf("%v elapsed, %d B / %d objects allocated, %d GC cycles (%v pause)",
		d.Elapsed, d.AllocBytes, d.Mallocs, d.GCCycles, d.GCPause)
}

// Sub computes after − before with the elapsed wall time.
func Sub(before, after Snapshot, elapsed time.Duration) Delta {
	return Delta{
		AllocBytes: after.AllocBytes - before.AllocBytes,
		Mallocs:    after.Mallocs - before.Mallocs,
		GCCycles:   after.GCCycles - before.GCCycles,
		GCPause:    after.GCPause - before.GCPause,
		Elapsed:    elapsed,
	}
}

// Measure runs fn once and returns its counter delta.
func Measure(fn func()) Delta {
	before := Read()
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	return Sub(before, Read(), elapsed)
}

// Series collects per-invocation deltas over n runs of fn — the raw
// material for checking whether a cost metric is deterministic (Rule 5:
// deterministic metrics are summarized algebraically, not statistically).
func Series(n int, fn func()) []Delta {
	out := make([]Delta, n)
	for i := range out {
		out[i] = Measure(fn)
	}
	return out
}

// AllocsDeterministic reports whether the allocation byte counts agree
// across all deltas within tolBytes — the §3.1.1 determinism test for a
// cost metric. A tolerance is needed because Go's counters are
// process-global: the runtime and other goroutines contribute small,
// variable amounts on top of the measured region's own allocations.
func AllocsDeterministic(ds []Delta, tolBytes uint64) bool {
	if len(ds) == 0 {
		return false
	}
	ref := ds[0].AllocBytes
	for _, d := range ds[1:] {
		diff := d.AllocBytes - ref
		if d.AllocBytes < ref {
			diff = ref - d.AllocBytes
		}
		if diff > tolBytes {
			return false
		}
	}
	return true
}

// TimesSeconds extracts the elapsed times in seconds for the statistics
// layer.
func TimesSeconds(ds []Delta) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Elapsed.Seconds()
	}
	return out
}

// AllocRates derives the allocation rate (B/s) per delta — a *rate*
// metric that per Rule 3 must be summarized with the harmonic mean (or
// from the raw costs).
func AllocRates(ds []Delta) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		if d.Elapsed > 0 {
			out[i] = float64(d.AllocBytes) / d.Elapsed.Seconds()
		}
	}
	return out
}
