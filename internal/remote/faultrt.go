package remote

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// ErrPartitioned is the failure a partitioned FaultTransport returns.
var ErrPartitioned = errors.New("remote: injected network partition")

// FaultTransport is a seeded, deterministic network-fault injector
// wrapped around an http.RoundTripper — the transport-layer sibling of
// internal/faults' cluster schedules. Each request consumes one draw
// from a splitmix64 stream, so the same seed over the same request
// sequence injects the same drops, delays, and duplications; Partition
// and Heal are explicit switches for the scenario a probability cannot
// script (the link dies mid-shard and comes back).
type FaultTransport struct {
	// Next is the wrapped transport (default http.DefaultTransport).
	Next http.RoundTripper
	// DropProb fails the request outright (the message never arrives).
	DropProb float64
	// DelayProb delays a request by Delay before sending.
	DelayProb float64
	Delay     time.Duration
	// DupProb sends the request twice back-to-back — the duplicated
	// delivery that chunk idempotency must absorb.
	DupProb float64

	seed uint64
	ctr  atomic.Uint64

	mu          sync.Mutex
	partitioned bool

	// Drops and Dups count injected faults (for test assertions).
	Drops atomic.Int64
	Dups  atomic.Int64
}

// NewFaultTransport seeds a fault injector.
func NewFaultTransport(seed uint64, next http.RoundTripper) *FaultTransport {
	return &FaultTransport{Next: next, seed: seed}
}

// Partition makes every request fail until Heal — both directions of
// this client's traffic are dead.
func (t *FaultTransport) Partition() {
	t.mu.Lock()
	t.partitioned = true
	t.mu.Unlock()
}

// Heal ends the partition.
func (t *FaultTransport) Heal() {
	t.mu.Lock()
	t.partitioned = false
	t.mu.Unlock()
}

// Partitioned reports the current link state.
func (t *FaultTransport) Partitioned() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.partitioned
}

// draw returns the next deterministic uniform in [0, 1).
func (t *FaultTransport) draw() float64 {
	n := t.ctr.Add(1)
	return float64(rng.Mix64(t.seed^n)>>11) / (1 << 53)
}

// RoundTrip injects the scheduled faults around the real round trip.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Partitioned() {
		return nil, fmt.Errorf("%w: %s", ErrPartitioned, req.URL.Path)
	}
	next := t.Next
	if next == nil {
		next = http.DefaultTransport
	}
	if t.DropProb > 0 && t.draw() < t.DropProb {
		t.Drops.Add(1)
		return nil, fmt.Errorf("remote: injected drop: %s", req.URL.Path)
	}
	if t.DelayProb > 0 && t.draw() < t.DelayProb {
		time.Sleep(t.Delay)
	}
	if t.DupProb > 0 && t.draw() < t.DupProb && req.Body != nil {
		// Replay the request once before the "real" delivery; the caller
		// sees only the second response, like a network that duplicated
		// the datagram.
		body, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		t.Dups.Add(1)
		first := req.Clone(req.Context())
		first.Body = io.NopCloser(bytes.NewReader(body))
		if resp, err := next.RoundTrip(first); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		second := req.Clone(req.Context())
		second.Body = io.NopCloser(bytes.NewReader(body))
		return next.RoundTrip(second)
	}
	return next.RoundTrip(req)
}
