package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/shard"
	"repro/internal/telemetry"
)

// Telemetry: transport accounting. Counters only — nothing here may
// change a report byte.
var (
	telAssigns      = telemetry.Default().Counter("remote.assigns")
	telChunks       = telemetry.Default().Counter("remote.chunks_applied")
	telChunkBytes   = telemetry.Default().Counter("remote.chunk_bytes")
	telDupChunks    = telemetry.Default().Counter("remote.chunks_duplicate")
	telStaleRefused = telemetry.Default().Counter("remote.stale_refused")
	telBadFrames    = telemetry.Default().Counter("remote.bad_frames")
	telHeartbeats   = telemetry.Default().Counter("remote.heartbeats_forwarded")
	telWorkers      = telemetry.Default().Gauge("remote.workers")
)

// errKilled is the Wait result of an attempt the supervisor killed.
var errKilled = errors.New("remote: attempt fenced off by supervisor kill")

// CoordinatorOptions tunes the coordinator transport.
type CoordinatorOptions struct {
	// Listen is the TCP address to serve on (default "127.0.0.1:0").
	Listen string
	// RequestTimeout bounds every RPC to a worker (default 5s): a
	// partitioned worker must fail the call, not hang the supervisor.
	RequestTimeout time.Duration
	// AssignRetries is the per-attempt budget of assignment RPC retries
	// before the attempt counts as a crash (default 3).
	AssignRetries int
	// Seed derives all retry jitter (campaign seed by convention).
	Seed uint64
	// Transport, when non-nil, replaces the HTTP transport for worker
	// RPCs — the seam the seeded fault injector plugs into.
	Transport http.RoundTripper
	// Log, when non-nil, receives one line per transport event.
	Log io.Writer
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.Listen == "" {
		o.Listen = "127.0.0.1:0"
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.AssignRetries <= 0 {
		o.AssignRetries = 3
	}
	return o
}

// workerRec is one registered worker.
type workerRec struct {
	ID       string
	Addr     string
	Hostname string
	EnvFP    string
	reg      RegisterRequest
}

// lease fences one shard attempt: only chunks, heartbeats, and
// completion claims carrying exactly this (attempt, worker) may touch
// the shard's mirror. Kill or completion marks it dead; a dead lease
// refuses everything, so a zombie worker that outlived its supervision
// cannot corrupt a reassigned shard.
type lease struct {
	shard   int
	attempt int
	worker  string

	mu   sync.Mutex
	dead bool
	err  error
	done chan struct{} // closed on first resolve
}

// resolve delivers the attempt outcome exactly once.
func (l *lease) resolve(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return
	}
	l.dead = true
	l.err = err
	close(l.done)
}

func (l *lease) isDead() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dead
}

// Coordinator is the sweep-side end of the remote transport: an HTTP
// server workers register with, a mirror of every shard directory fed
// by their chunk shipments, and a StartFunc that makes the existing
// supervisor drive remote attempts exactly like local processes.
type Coordinator struct {
	sweepDir string
	sweep    shard.SweepManifest
	opt      CoordinatorOptions
	srv      *http.Server
	ln       net.Listener
	client   *http.Client

	mu         sync.Mutex
	workers    []*workerRec
	byAddr     map[string]*workerRec
	leases     map[int]*lease
	lastWorker map[int]string // previous holder per shard, for reassignment anti-affinity
	nextID     int
	rr         int

	fileMu sync.Mutex // serializes all mirror file mutations
}

// NewCoordinator opens the sweep in sweepDir and starts serving the
// worker-facing API. Close releases the listener.
func NewCoordinator(sweepDir string, opt CoordinatorOptions) (*Coordinator, error) {
	sw, err := shard.LoadSweep(sweepDir)
	if err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	ln, err := net.Listen("tcp", opt.Listen)
	if err != nil {
		return nil, fmt.Errorf("remote: coordinator listen: %w", err)
	}
	c := &Coordinator{
		sweepDir:   sweepDir,
		sweep:      sw,
		opt:        opt,
		ln:         ln,
		byAddr:     map[string]*workerRec{},
		leases:     map[int]*lease{},
		lastWorker: map[int]string{},
		client: &http.Client{
			Timeout:   opt.RequestTimeout,
			Transport: opt.Transport,
		},
	}
	mux := http.NewServeMux()
	mux.HandleFunc(PathRegister, c.handleRegister)
	mux.HandleFunc(PathChunk, c.handleChunk)
	mux.HandleFunc(PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc(PathDone, c.handleDone)
	mux.HandleFunc(PathFail, c.handleFail)
	c.srv = &http.Server{Handler: mux}
	go c.srv.Serve(ln)
	return c, nil
}

// URL returns the coordinator's base URL for worker registration.
func (c *Coordinator) URL() string {
	return "http://" + c.ln.Addr().String()
}

// Close stops serving. In-flight leases are resolved as killed.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	for _, l := range c.leases {
		l.resolve(errKilled)
	}
	c.mu.Unlock()
	return c.srv.Close()
}

// WorkerInfo describes one registered worker.
type WorkerInfo struct {
	ID       string
	Addr     string
	Hostname string
	EnvFP    string
}

// Workers lists registered workers in registration order.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerInfo, len(c.workers))
	for i, w := range c.workers {
		out[i] = WorkerInfo{ID: w.ID, Addr: w.Addr, Hostname: w.Hostname, EnvFP: w.EnvFP}
	}
	return out
}

// WaitForWorkers blocks until at least n workers have registered.
func (c *Coordinator) WaitForWorkers(ctx context.Context, n int) error {
	for {
		c.mu.Lock()
		got := len(c.workers)
		c.mu.Unlock()
		if got >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("remote: %d of %d worker(s) registered: %w", got, n, ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// StartFunc returns the launcher that plugs remote execution into
// shard.Supervise: each call assigns the shard attempt to a registered
// worker (preferring a different worker than the previous, failed
// attempt's) and returns a handle whose Wait observes the mirror-side
// completion and whose Kill fences the attempt.
func (c *Coordinator) StartFunc() shard.StartFunc {
	return func(shardDir string, attempt int) (shard.Handle, error) {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(shardDir), "shard-%d", &idx); err != nil {
			return nil, fmt.Errorf("remote: shard dir %q: %w", shardDir, err)
		}
		w, err := c.pickWorker(idx)
		if err != nil {
			return nil, err
		}
		m, err := shard.LoadManifest(shardDir)
		if err != nil {
			return nil, err
		}
		seed, err := c.snapshotSeed(shardDir)
		if err != nil {
			return nil, err
		}
		l := &lease{shard: idx, attempt: attempt, worker: w.ID, done: make(chan struct{})}
		c.mu.Lock()
		if old := c.leases[idx]; old != nil {
			old.resolve(errKilled) // no two live leases per shard, ever
		}
		c.leases[idx] = l
		c.lastWorker[idx] = w.ID
		c.mu.Unlock()

		req := AssignRequest{
			SweepHash: c.sweep.SweepHash,
			Shard:     idx,
			Attempt:   attempt,
			Manifest:  m,
			Seed:      seed,
		}
		if err := c.assign(w, req); err != nil {
			l.resolve(errKilled)
			return nil, fmt.Errorf("remote: assigning shard %d attempt %d to %s: %w", idx, attempt, w.ID, err)
		}
		telAssigns.Inc()
		c.logf("shard %d: attempt %d assigned to %s (%s)\n", idx, attempt, w.ID, w.Hostname)
		return &remoteHandle{c: c, w: w, l: l}, nil
	}
}

// pickWorker chooses the next worker round-robin, skipping the previous
// holder of the shard when any alternative exists — a lost worker's
// shard should move, not bounce.
func (c *Coordinator) pickWorker(shardIdx int) (*workerRec, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.workers) == 0 {
		return nil, errors.New("remote: no workers registered")
	}
	prev := c.lastWorker[shardIdx]
	for i := 0; i < len(c.workers); i++ {
		w := c.workers[c.rr%len(c.workers)]
		c.rr++
		if w.ID == prev && len(c.workers) > 1 {
			continue
		}
		return w, nil
	}
	w := c.workers[c.rr%len(c.workers)]
	c.rr++
	return w, nil
}

// assign delivers one assignment with bounded seeded-backoff retries.
func (c *Coordinator) assign(w *workerRec, req AssignRequest) error {
	key := fmt.Sprintf("assign/%d/%d", req.Shard, req.Attempt)
	var last error
	for try := 1; try <= c.opt.AssignRetries; try++ {
		var resp AssignResponse
		err := postJSON(c.client, w.Addr+PathAssign, req, &resp)
		if err == nil {
			if !resp.OK {
				return fmt.Errorf("worker refused: %s", resp.Refused)
			}
			return nil
		}
		last = err
		time.Sleep(SeededBackoff(c.opt.Seed, key, try, 50*time.Millisecond, time.Second))
	}
	return last
}

// snapshotSeed captures the shard mirror for an assignment: heartbeat
// plus every unit campaign file. The replacement worker starts from
// exactly what the coordinator verified shipped — completed units are
// skipped, partial journals resumed, nothing re-measured.
func (c *Coordinator) snapshotSeed(shardDir string) ([]FileState, error) {
	c.fileMu.Lock()
	defer c.fileMu.Unlock()
	var out []FileState
	add := func(rel string) error {
		b, err := os.ReadFile(filepath.Join(shardDir, rel))
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		out = append(out, FileState{Path: rel, Data: b, CRC: crc32.ChecksumIEEE(b)})
		return nil
	}
	if err := add(shard.HeartbeatFile); err != nil {
		return nil, err
	}
	units, err := os.ReadDir(filepath.Join(shardDir, shard.UnitsDir))
	if err != nil {
		if os.IsNotExist(err) {
			return out, nil
		}
		return nil, err
	}
	sort.Slice(units, func(i, j int) bool { return units[i].Name() < units[j].Name() })
	for _, u := range units {
		if !u.IsDir() {
			continue
		}
		for f := range shardFiles {
			if err := add(filepath.Join(shard.UnitsDir, u.Name(), f)); err != nil {
				return nil, err
			}
		}
	}
	// Deterministic seed order (map iteration above is not).
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// remoteHandle adapts a fenced lease to the supervisor's Handle.
type remoteHandle struct {
	c *Coordinator
	w *workerRec
	l *lease
}

// Wait blocks until the attempt resolves (done, fail, or kill).
func (h *remoteHandle) Wait() error {
	<-h.l.done
	h.l.mu.Lock()
	defer h.l.mu.Unlock()
	return h.l.err
}

// Kill fences the attempt: the lease dies first (so not one more byte
// from it can land), then a best-effort cancel tells the worker to stop
// burning cycles — if the network eats it, the worker finds out when
// its next ship is refused as stale.
func (h *remoteHandle) Kill() error {
	h.l.resolve(errKilled)
	go func() {
		var resp AssignResponse
		_ = postJSON(h.c.client, h.w.Addr+PathCancel, CancelRequest{
			SweepHash: h.c.sweep.SweepHash,
			Shard:     h.l.shard,
			Attempt:   h.l.attempt,
		}, &resp)
	}()
	return nil
}

// ---- HTTP handlers (worker → coordinator) ----

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !readBody(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	c.mu.Lock()
	rec, ok := c.byAddr[req.Addr]
	if !ok {
		rec = &workerRec{
			ID:       fmt.Sprintf("w%03d", c.nextID),
			Addr:     req.Addr,
			Hostname: req.Hostname,
			EnvFP:    req.EnvFingerprint,
			reg:      req,
		}
		c.nextID++
		c.workers = append(c.workers, rec)
		c.byAddr[req.Addr] = rec
		telWorkers.Set(int64(len(c.workers)))
	}
	c.mu.Unlock()
	c.logf("worker %s registered from %s (host %s, env %s)\n", rec.ID, req.Addr, req.Hostname, req.EnvFingerprint[:min(12, len(req.EnvFingerprint))])
	writeJSONResp(w, RegisterResponse{WorkerID: rec.ID, SweepHash: c.sweep.SweepHash, SweepName: c.sweep.Name})
}

// leaseFor fences one mutating message. A nil lease (with reason) means
// refuse — and the refusal is the zombie's signal to stand down.
func (c *Coordinator) leaseFor(sweepHash string, shardIdx, attempt int, workerID string) (*lease, string) {
	if sweepHash != c.sweep.SweepHash {
		return nil, fmt.Sprintf("sweep hash %s is not this coordinator's sweep", sweepHash)
	}
	c.mu.Lock()
	l := c.leases[shardIdx]
	c.mu.Unlock()
	if l == nil {
		return nil, fmt.Sprintf("shard %d has no active attempt", shardIdx)
	}
	if l.attempt != attempt || l.worker != workerID {
		return nil, fmt.Sprintf("shard %d is held by %s attempt %d, not %s attempt %d (stale)",
			shardIdx, l.worker, l.attempt, workerID, attempt)
	}
	if l.isDead() {
		return nil, fmt.Sprintf("shard %d attempt %d was fenced off (stale)", shardIdx, attempt)
	}
	return l, ""
}

func (c *Coordinator) handleChunk(w http.ResponseWriter, r *http.Request) {
	var f ChunkFrame
	if !readBody(w, r, &f) {
		return
	}
	if err := f.Validate(); err != nil {
		telBadFrames.Inc()
		writeJSONResp(w, ChunkResponse{OK: false, Refused: err.Error()})
		return
	}
	if _, reason := c.leaseFor(f.SweepHash, f.Shard, f.Attempt, f.WorkerID); reason != "" {
		telStaleRefused.Inc()
		writeJSONResp(w, ChunkResponse{OK: false, Refused: reason, Stale: true})
		return
	}
	writeJSONResp(w, c.applyChunk(f))
}

// applyChunk lands one validated, fenced frame in the mirror. The
// response's ResumeOff is always the mirror's post-apply size — the
// single source of truth the worker ships from.
func (c *Coordinator) applyChunk(f ChunkFrame) ChunkResponse {
	c.fileMu.Lock()
	defer c.fileMu.Unlock()
	path := filepath.Join(c.sweepDir, shard.ShardDirName(f.Shard), filepath.FromSlash(f.Path))
	size := int64(0)
	if st, err := os.Stat(path); err == nil {
		size = st.Size()
	}
	if f.Truncate {
		if f.Off > size {
			return ChunkResponse{OK: false, ResumeOff: size,
				Refused: fmt.Sprintf("cannot truncate %s to %d: mirror has %d bytes", f.Path, f.Off, size)}
		}
		if f.Off < size {
			if err := os.Truncate(path, f.Off); err != nil {
				return ChunkResponse{OK: false, ResumeOff: size, Refused: err.Error()}
			}
			c.logf("shard %d: mirror %s truncated %d → %d (torn tail dropped at resume)\n",
				f.Shard, f.Path, size, f.Off)
		}
		return ChunkResponse{OK: true, ResumeOff: f.Off}
	}
	switch {
	case f.Off == size:
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return ChunkResponse{OK: false, ResumeOff: size, Refused: err.Error()}
		}
		fh, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return ChunkResponse{OK: false, ResumeOff: size, Refused: err.Error()}
		}
		_, werr := fh.Write(f.Data)
		cerr := fh.Close()
		if werr != nil || cerr != nil {
			return ChunkResponse{OK: false, ResumeOff: size, Refused: "mirror write failed"}
		}
		telChunks.Inc()
		telChunkBytes.Add(int64(len(f.Data)))
		return ChunkResponse{OK: true, ResumeOff: size + int64(len(f.Data))}
	case f.Off < size:
		// Duplicate delivery (a retried or network-duplicated frame):
		// acknowledge without touching the mirror — appends are
		// idempotent because ResumeOff, not the sender's counter, is
		// authoritative.
		telDupChunks.Inc()
		return ChunkResponse{OK: true, ResumeOff: size}
	default:
		// Gap: the worker is ahead of the mirror (a lost earlier chunk).
		return ChunkResponse{OK: false, ResumeOff: size,
			Refused: fmt.Sprintf("offset %d past mirror size %d", f.Off, size)}
	}
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var m HeartbeatMsg
	if !readBody(w, r, &m) {
		return
	}
	if _, reason := c.leaseFor(m.SweepHash, m.Shard, m.Attempt, m.WorkerID); reason != "" {
		telStaleRefused.Inc()
		writeJSONResp(w, ChunkResponse{OK: false, Refused: reason, Stale: true})
		return
	}
	c.fileMu.Lock()
	err := shard.WriteHeartbeat(filepath.Join(c.sweepDir, shard.ShardDirName(m.Shard)), m.HB)
	c.fileMu.Unlock()
	if err != nil {
		writeJSONResp(w, ChunkResponse{OK: false, Refused: err.Error()})
		return
	}
	telHeartbeats.Inc()
	writeJSONResp(w, ChunkResponse{OK: true})
}

func (c *Coordinator) handleDone(w http.ResponseWriter, r *http.Request) {
	var req DoneRequest
	if !readBody(w, r, &req) {
		return
	}
	l, reason := c.leaseFor(req.SweepHash, req.Shard, req.Attempt, req.WorkerID)
	if reason != "" {
		telStaleRefused.Inc()
		writeJSONResp(w, DoneResponse{OK: false, Refused: reason, Stale: true})
		return
	}
	// Verify the inventory: "done" may only mean "every byte the worker
	// measured is in the mirror". Any mismatch sends back the mirror's
	// truth so the worker re-ships exactly the missing suffixes.
	shardDir := filepath.Join(c.sweepDir, shard.ShardDirName(req.Shard))
	c.fileMu.Lock()
	var mismatched []FileSum
	for _, fs := range req.Files {
		if !ValidChunkPath(fs.Path) {
			c.fileMu.Unlock()
			writeJSONResp(w, DoneResponse{OK: false, Refused: fmt.Sprintf("inventory path %q refused", fs.Path)})
			return
		}
		b, err := os.ReadFile(filepath.Join(shardDir, filepath.FromSlash(fs.Path)))
		if err != nil {
			mismatched = append(mismatched, FileSum{Path: fs.Path, Size: 0})
			continue
		}
		if int64(len(b)) != fs.Size || crc32.ChecksumIEEE(b) != fs.CRC {
			mismatched = append(mismatched, FileSum{Path: fs.Path, Size: int64(len(b)), CRC: crc32.ChecksumIEEE(b)})
		}
	}
	if len(mismatched) > 0 {
		c.fileMu.Unlock()
		writeJSONResp(w, DoneResponse{OK: false, Refused: "mirror incomplete", Mirror: mismatched})
		return
	}
	// Inventory verified: record host provenance (Rule 9, per machine)
	// and publish the completion sentinel the supervisor trusts.
	c.mu.Lock()
	var rec *workerRec
	for _, wr := range c.workers {
		if wr.ID == req.WorkerID {
			rec = wr
			break
		}
	}
	c.mu.Unlock()
	if rec != nil {
		if err := shard.WriteHost(shardDir, shard.HostRecord{
			Hostname:       rec.Hostname,
			EnvFingerprint: rec.EnvFP,
			WorkerID:       rec.ID,
			Addr:           rec.Addr,
			Attempt:        req.Attempt,
		}); err != nil {
			c.fileMu.Unlock()
			writeJSONResp(w, DoneResponse{OK: false, Refused: err.Error()})
			return
		}
	}
	if err := writeJSONFile(filepath.Join(shardDir, shard.DoneFile), req.Done); err != nil {
		c.fileMu.Unlock()
		writeJSONResp(w, DoneResponse{OK: false, Refused: err.Error()})
		return
	}
	c.fileMu.Unlock()
	c.logf("shard %d: attempt %d completed by %s, inventory verified (%d files)\n",
		req.Shard, req.Attempt, req.WorkerID, len(req.Files))
	l.resolve(nil)
	writeJSONResp(w, DoneResponse{OK: true})
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var req FailRequest
	if !readBody(w, r, &req) {
		return
	}
	l, reason := c.leaseFor(req.SweepHash, req.Shard, req.Attempt, req.WorkerID)
	if reason != "" {
		telStaleRefused.Inc()
		writeJSONResp(w, DoneResponse{OK: false, Refused: reason, Stale: true})
		return
	}
	c.logf("shard %d: attempt %d failed on %s: %s\n", req.Shard, req.Attempt, req.WorkerID, req.Error)
	l.resolve(fmt.Errorf("remote: worker %s: %s", req.WorkerID, req.Error))
	writeJSONResp(w, DoneResponse{OK: true})
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opt.Log != nil {
		fmt.Fprintf(c.opt.Log, format, args...)
	}
}

// ---- shared HTTP plumbing ----

// maxBody bounds any request/response body (a chunk plus JSON framing
// fits comfortably; a seed-laden assignment gets more headroom).
const maxBody = 64 << 20

// readBody decodes a JSON request body, refusing oversized payloads.
func readBody(w http.ResponseWriter, r *http.Request, v any) bool {
	defer r.Body.Close()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(v); err != nil {
		httpErr(w, http.StatusBadRequest, fmt.Errorf("remote: decoding request: %w", err))
		return false
	}
	return true
}

func writeJSONResp(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpErr(w http.ResponseWriter, code int, err error) {
	http.Error(w, err.Error(), code)
}

// postJSON posts req and decodes the JSON response into resp.
func postJSON(client *http.Client, url string, req, resp any) error {
	b, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hr, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer hr.Body.Close()
	body, err := io.ReadAll(io.LimitReader(hr.Body, maxBody))
	if err != nil {
		return err
	}
	if hr.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", url, hr.Status, bytes.TrimSpace(body))
	}
	return json.Unmarshal(body, resp)
}

// writeJSONFile mirrors the shard package's atomic manifest write.
func writeJSONFile(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
