package remote

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/rules"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// Telemetry: worker-side shipment accounting.
var (
	telShipped    = telemetry.Default().Counter("remote.chunks_shipped")
	telShipBytes  = telemetry.Default().Counter("remote.ship_bytes")
	telShipErrors = telemetry.Default().Counter("remote.ship_errors")
	telFenced     = telemetry.Default().Counter("remote.attempts_fenced")
)

// WorkerOptions configures a worker agent.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (required).
	Coordinator string
	// Listen is the worker's own TCP address (default "127.0.0.1:0").
	Listen string
	// AdvertiseHost overrides the host workers advertise to the
	// coordinator (default: the listener's address — correct for
	// loopback; multi-homed machines set it to their reachable IP).
	AdvertiseHost string
	// WorkDir is where shard campaigns run locally (default: a temp dir).
	WorkDir string
	// Runner rebuilds each unit's measurement (required).
	Runner shard.UnitRunner
	// Heartbeat is the local executor beat interval (default 250ms).
	Heartbeat time.Duration
	// ShipInterval paces heartbeat forwarding and journal shipment
	// (default 100ms). Shipping is asynchronous to measurement: a
	// partition stalls shipment, never the executor.
	ShipInterval time.Duration
	// RequestTimeout bounds each RPC to the coordinator (default 5s).
	RequestTimeout time.Duration
	// RegisterRetries bounds registration attempts (default 10).
	RegisterRetries int
	// Seed derives retry jitter (default 1; set it to the campaign seed
	// for reproducible schedules).
	Seed uint64
	// Env is the worker's Rule 9 host record (default HostEnv()).
	Env *rules.Environment
	// Hostname names this host in merge stratification (default
	// os.Hostname).
	Hostname string
	// Transport, when non-nil, replaces the HTTP transport for
	// coordinator RPCs — the fault-injection seam.
	Transport http.RoundTripper
	// Log, when non-nil, receives one line per worker event.
	Log io.Writer
}

func (o WorkerOptions) withDefaults() (WorkerOptions, error) {
	if o.Coordinator == "" {
		return o, errors.New("remote: worker needs a coordinator URL")
	}
	if o.Runner == nil {
		return o, errors.New("remote: worker needs a UnitRunner")
	}
	if o.Listen == "" {
		o.Listen = "127.0.0.1:0"
	}
	if o.ShipInterval <= 0 {
		o.ShipInterval = 100 * time.Millisecond
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.RegisterRetries <= 0 {
		o.RegisterRetries = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Env == nil {
		env := HostEnv()
		o.Env = &env
	}
	if o.Hostname == "" {
		o.Hostname, _ = os.Hostname()
	}
	return o, nil
}

// job is one shard attempt running on this worker.
type job struct {
	shardIdx int
	attempt  int
	dir      string
	cancel   context.CancelFunc
	finished chan struct{}
}

// Worker is the machine-side agent: it registers with a coordinator,
// accepts fenced shard assignments, runs the journaled executor
// locally, and ships journal bytes home. Measurement never waits for
// the network — during a partition the executor keeps appending to its
// local journal, and on heal the shipper resumes from the mirror's
// acknowledged offset, re-shipping only the suffix.
type Worker struct {
	opt       WorkerOptions
	id        string
	sweepHash string
	base      string
	workDir   string
	client    *http.Client
	srv       *http.Server
	ln        net.Listener

	mu   sync.Mutex
	jobs map[int]*job
	wg   sync.WaitGroup
}

// StartWorker launches a worker agent: listen, register (with seeded
// retries — the coordinator may not be up yet), serve assignments.
func StartWorker(opt WorkerOptions) (*Worker, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", opt.Listen)
	if err != nil {
		return nil, fmt.Errorf("remote: worker listen: %w", err)
	}
	addr := ln.Addr().String()
	if opt.AdvertiseHost != "" {
		_, port, _ := net.SplitHostPort(addr)
		addr = net.JoinHostPort(opt.AdvertiseHost, port)
	}
	w := &Worker{
		opt:     opt,
		base:    "http://" + addr,
		workDir: opt.WorkDir,
		ln:      ln,
		jobs:    map[int]*job{},
		client:  &http.Client{Timeout: opt.RequestTimeout, Transport: opt.Transport},
	}
	if w.workDir == "" {
		dir, err := os.MkdirTemp("", "scibench-worker")
		if err != nil {
			ln.Close()
			return nil, err
		}
		w.workDir = dir
	}
	mux := http.NewServeMux()
	mux.HandleFunc(PathAssign, w.handleAssign)
	mux.HandleFunc(PathCancel, w.handleCancel)
	mux.HandleFunc(PathStatus, w.handleStatus)
	w.srv = &http.Server{Handler: mux}
	go w.srv.Serve(ln)
	if err := w.register(); err != nil {
		w.srv.Close()
		return nil, err
	}
	return w, nil
}

// register announces this worker, retrying with seeded backoff until
// the coordinator answers or the budget runs out.
func (w *Worker) register() error {
	fp, err := Fingerprint(*w.opt.Env)
	if err != nil {
		return fmt.Errorf("remote: fingerprinting host env: %w", err)
	}
	req := RegisterRequest{
		Protocol:       ProtocolVersion,
		Addr:           w.base,
		Hostname:       w.opt.Hostname,
		Env:            *w.opt.Env,
		EnvFingerprint: fp,
	}
	var last error
	for try := 1; try <= w.opt.RegisterRetries; try++ {
		var resp RegisterResponse
		if err := postJSON(w.client, w.opt.Coordinator+PathRegister, req, &resp); err == nil {
			w.id = resp.WorkerID
			w.sweepHash = resp.SweepHash
			w.logf("worker %s: registered with %s (sweep %s)\n", w.id, w.opt.Coordinator, short12(resp.SweepHash))
			return nil
		} else {
			last = err
		}
		time.Sleep(SeededBackoff(w.opt.Seed, "register", try, 50*time.Millisecond, 2*time.Second))
	}
	return fmt.Errorf("remote: registering with %s: %w", w.opt.Coordinator, last)
}

// ID returns the coordinator-assigned worker ID.
func (w *Worker) ID() string { return w.id }

// URL returns the worker's own base URL.
func (w *Worker) URL() string { return w.base }

// Close cancels every running job and stops the agent.
func (w *Worker) Close() error {
	w.mu.Lock()
	for _, j := range w.jobs {
		j.cancel()
	}
	w.mu.Unlock()
	w.wg.Wait()
	return w.srv.Close()
}

// ---- HTTP handlers (coordinator → worker) ----

func (w *Worker) handleAssign(rw http.ResponseWriter, r *http.Request) {
	var req AssignRequest
	if !readBody(rw, r, &req) {
		return
	}
	if req.SweepHash != w.sweepHash {
		writeJSONResp(rw, AssignResponse{Refused: fmt.Sprintf("sweep %s is not the sweep this worker registered for", short12(req.SweepHash))})
		return
	}
	for _, fs := range req.Seed {
		if !ValidSeedPath(fs.Path) {
			writeJSONResp(rw, AssignResponse{Refused: fmt.Sprintf("seed path %q refused", fs.Path)})
			return
		}
		if crc32.ChecksumIEEE(fs.Data) != fs.CRC {
			writeJSONResp(rw, AssignResponse{Refused: fmt.Sprintf("seed file %s failed CRC", fs.Path)})
			return
		}
	}
	w.mu.Lock()
	old := w.jobs[req.Shard]
	switch {
	case old != nil && old.attempt == req.Attempt:
		// Duplicate delivery of the same assignment: already running.
		w.mu.Unlock()
		writeJSONResp(rw, AssignResponse{OK: true})
		return
	case old != nil && old.attempt > req.Attempt:
		w.mu.Unlock()
		writeJSONResp(rw, AssignResponse{Refused: fmt.Sprintf("attempt %d is stale: attempt %d already runs here", req.Attempt, old.attempt)})
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		shardIdx: req.Shard,
		attempt:  req.Attempt,
		dir:      filepath.Join(w.workDir, short12(req.SweepHash), shard.ShardDirName(req.Shard)),
		cancel:   cancel,
		finished: make(chan struct{}),
	}
	w.jobs[req.Shard] = j
	w.wg.Add(1)
	w.mu.Unlock()
	go func() {
		defer w.wg.Done()
		defer close(j.finished)
		// A predecessor attempt on this same shard must fully stop before
		// the new one touches the same local journals.
		if old != nil {
			old.cancel()
			<-old.finished
		}
		w.runJob(ctx, j, req)
		w.mu.Lock()
		if w.jobs[req.Shard] == j {
			delete(w.jobs, req.Shard)
		}
		w.mu.Unlock()
	}()
	writeJSONResp(rw, AssignResponse{OK: true})
}

func (w *Worker) handleCancel(rw http.ResponseWriter, r *http.Request) {
	var req CancelRequest
	if !readBody(rw, r, &req) {
		return
	}
	w.mu.Lock()
	j := w.jobs[req.Shard]
	w.mu.Unlock()
	if j != nil && j.attempt <= req.Attempt && req.SweepHash == w.sweepHash {
		w.logf("worker %s: shard %d attempt %d cancelled by coordinator\n", w.id, j.shardIdx, j.attempt)
		j.cancel()
	}
	writeJSONResp(rw, AssignResponse{OK: true})
}

func (w *Worker) handleStatus(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	jobs := map[string]int{}
	for idx, j := range w.jobs {
		jobs[shard.ShardDirName(idx)] = j.attempt
	}
	w.mu.Unlock()
	writeJSONResp(rw, struct {
		ID   string         `json:"id"`
		Jobs map[string]int `json:"jobs"`
	}{w.id, jobs})
}

// ---- job execution ----

// runJob drives one shard attempt: lay down the manifest and seed
// files, start the local executor, ship heartbeats and journal suffixes
// until it finishes, then hold the completion barrier (inventory-
// verified done) or report failure.
func (w *Worker) runJob(ctx context.Context, j *job, req AssignRequest) {
	_, span := telemetry.StartSpan(ctx, "remote", fmt.Sprintf("shard %d attempt %d", j.shardIdx, j.attempt))
	defer span.End()
	if err := w.prepare(j, req); err != nil {
		w.reportFail(ctx, j, fmt.Sprintf("preparing shard dir: %v", err))
		return
	}
	// floors: per-journal valid-prefix truncation points, computed before
	// the executor appends anything. The mirror may hold a torn tail the
	// dead predecessor shipped before crashing; it must be cut back to
	// the valid prefix before this attempt's divergent continuation
	// lands.
	floors := w.journalFloors(j)

	execDone := make(chan error, 1)
	go func() {
		_, err := shard.ExecShard(ctx, j.dir, w.opt.Runner, shard.ExecOptions{
			Attempt:   j.attempt,
			Heartbeat: w.opt.Heartbeat,
		})
		execDone <- err
	}()

	sh := &shipper{w: w, j: j, shipped: map[string]int64{}, floors: floors}
	tick := time.NewTicker(w.opt.ShipInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			<-execDone
			return
		case err := <-execDone:
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				w.reportFail(ctx, j, err.Error())
				return
			}
			w.finish(ctx, j, sh)
			return
		case <-tick.C:
			sh.forwardHeartbeat(ctx)
			if fenced := sh.shipPass(ctx); fenced {
				telFenced.Inc()
				w.logf("worker %s: shard %d attempt %d fenced off, stopping executor\n", w.id, j.shardIdx, j.attempt)
				j.cancel()
			}
		}
	}
}

// prepare writes the shard manifest and applies the assignment seed.
// Seed bytes only ever extend local files: by per-unit seed
// determinism, a shorter local journal is a strict prefix of the
// mirror's, so "longer wins" is the whole merge rule.
func (w *Worker) prepare(j *job, req AssignRequest) error {
	if err := os.MkdirAll(filepath.Join(j.dir, shard.UnitsDir), 0o755); err != nil {
		return err
	}
	if err := writeJSONFile(filepath.Join(j.dir, shard.ManifestFile), req.Manifest); err != nil {
		return err
	}
	for _, fs := range req.Seed {
		path := filepath.Join(j.dir, filepath.FromSlash(fs.Path))
		local := int64(-1)
		if st, err := os.Stat(path); err == nil {
			local = st.Size()
		}
		if local >= int64(len(fs.Data)) {
			continue
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, fs.Data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// journalFloors computes each local journal's CRC-valid prefix length.
func (w *Worker) journalFloors(j *job) map[string]int64 {
	floors := map[string]int64{}
	for _, rel := range w.localFiles(j) {
		if filepath.Base(rel) != campaign.JournalFile {
			continue
		}
		b, err := os.ReadFile(filepath.Join(j.dir, filepath.FromSlash(rel)))
		if err != nil {
			continue
		}
		floors[rel] = campaign.ValidPrefix(b)
	}
	return floors
}

// localFiles lists the shippable files currently in the job dir, in
// deterministic order.
func (w *Worker) localFiles(j *job) []string {
	var out []string
	units, err := os.ReadDir(filepath.Join(j.dir, shard.UnitsDir))
	if err != nil {
		return nil
	}
	for _, u := range units {
		if !u.IsDir() {
			continue
		}
		for f := range shardFiles {
			rel := shard.UnitsDir + "/" + u.Name() + "/" + f
			if _, err := os.Stat(filepath.Join(j.dir, shard.UnitsDir, u.Name(), f)); err == nil {
				out = append(out, rel)
			}
		}
	}
	sort.Strings(out)
	return out
}

// finish drives the completion barrier: ship until the mirror has every
// byte, then claim done with a full inventory; on "mirror incomplete"
// adopt the mirror's resume offsets and go around. Retries use seeded
// backoff and give up only when fenced or cancelled — while the shard's
// lease is ours, the only exit is a verified mirror.
func (w *Worker) finish(ctx context.Context, j *job, sh *shipper) {
	d, ok := shard.LoadDone(j.dir)
	if !ok {
		w.reportFail(ctx, j, "executor finished without a completion sentinel")
		return
	}
	for try := 1; ; try++ {
		if ctx.Err() != nil {
			return
		}
		if fenced := sh.shipPass(ctx); fenced {
			telFenced.Inc()
			return
		}
		if !sh.allShipped(ctx) {
			// Network trouble mid-pass: back off and re-ship the rest.
			time.Sleep(SeededBackoff(w.opt.Seed, fmt.Sprintf("finish/%d/%d", j.shardIdx, j.attempt), try, 50*time.Millisecond, 2*time.Second))
			continue
		}
		inv, err := w.inventory(j)
		if err != nil {
			w.reportFail(ctx, j, fmt.Sprintf("building inventory: %v", err))
			return
		}
		var resp DoneResponse
		err = postJSON(w.client, w.opt.Coordinator+PathDone, DoneRequest{
			WorkerID:  w.id,
			SweepHash: w.sweepHash,
			Shard:     j.shardIdx,
			Attempt:   j.attempt,
			Done:      d,
			Files:     inv,
		}, &resp)
		switch {
		case err != nil:
			telShipErrors.Inc()
		case resp.Stale:
			telFenced.Inc()
			return
		case resp.OK:
			w.logf("worker %s: shard %d attempt %d done, inventory verified\n", w.id, j.shardIdx, j.attempt)
			return
		default:
			// Mirror disagrees: resume each mismatched file from the
			// mirror's recorded size.
			for _, m := range resp.Mirror {
				if cur, ok := sh.shipped[m.Path]; !ok || m.Size < cur {
					sh.shipped[m.Path] = m.Size
				}
			}
		}
		time.Sleep(SeededBackoff(w.opt.Seed, fmt.Sprintf("done/%d/%d", j.shardIdx, j.attempt), try, 50*time.Millisecond, 2*time.Second))
	}
}

// inventory sums every shippable local file.
func (w *Worker) inventory(j *job) ([]FileSum, error) {
	var out []FileSum
	for _, rel := range w.localFiles(j) {
		b, err := os.ReadFile(filepath.Join(j.dir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		out = append(out, FileSum{Path: rel, Size: int64(len(b)), CRC: crc32.ChecksumIEEE(b)})
	}
	return out, nil
}

// reportFail tells the coordinator the attempt failed (best-effort,
// bounded retries — if the network is down, the heartbeat timeout
// delivers the same verdict later).
func (w *Worker) reportFail(ctx context.Context, j *job, msg string) {
	w.logf("worker %s: shard %d attempt %d failed: %s\n", w.id, j.shardIdx, j.attempt, msg)
	for try := 1; try <= 3; try++ {
		if ctx.Err() != nil {
			return
		}
		var resp DoneResponse
		if err := postJSON(w.client, w.opt.Coordinator+PathFail, FailRequest{
			WorkerID:  w.id,
			SweepHash: w.sweepHash,
			Shard:     j.shardIdx,
			Attempt:   j.attempt,
			Error:     msg,
		}, &resp); err == nil {
			return
		}
		time.Sleep(SeededBackoff(w.opt.Seed, fmt.Sprintf("fail/%d/%d", j.shardIdx, j.attempt), try, 50*time.Millisecond, time.Second))
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.opt.Log != nil {
		fmt.Fprintf(w.opt.Log, format, args...)
	}
}

// shipper tracks per-file shipment offsets for one attempt.
type shipper struct {
	w       *Worker
	j       *job
	shipped map[string]int64
	floors  map[string]int64 // pending journal truncations
	netDown bool             // last pass hit network errors (for logging only)
}

// forwardHeartbeat reads the executor's local heartbeat and relays it.
// Failures are ignored: no heartbeat through a partition is precisely
// what the supervisor should see.
func (s *shipper) forwardHeartbeat(ctx context.Context) {
	hb, ok := shard.ReadHeartbeat(s.j.dir)
	if !ok || ctx.Err() != nil {
		return
	}
	var resp ChunkResponse
	_ = postJSON(s.w.client, s.w.opt.Coordinator+PathHeartbeat, HeartbeatMsg{
		WorkerID:  s.w.id,
		SweepHash: s.w.sweepHash,
		Shard:     s.j.shardIdx,
		Attempt:   s.j.attempt,
		HB:        hb,
	}, &resp)
}

// shipPass pushes every file's unshipped suffix. It returns true when
// the coordinator fenced this attempt out (the zombie signal); network
// errors just end the pass — the next tick retries, and the executor
// never waited for any of it.
func (s *shipper) shipPass(ctx context.Context) (fenced bool) {
	for _, rel := range s.w.localFiles(s.j) {
		if ctx.Err() != nil {
			return false
		}
		if floor, ok := s.floors[rel]; ok {
			done, isFenced := s.sendTruncate(rel, floor)
			if isFenced {
				return true
			}
			if !done {
				return false // network error: retry next tick
			}
			delete(s.floors, rel)
		}
		path := filepath.Join(s.j.dir, filepath.FromSlash(rel))
		for {
			st, err := os.Stat(path)
			if err != nil || s.shipped[rel] >= st.Size() {
				break
			}
			ch, err := campaign.ReadFileChunk(path, s.shipped[rel], MaxChunk)
			if err != nil {
				break
			}
			var resp ChunkResponse
			err = postJSON(s.w.client, s.w.opt.Coordinator+PathChunk, ChunkFrame{
				WorkerID:  s.w.id,
				SweepHash: s.w.sweepHash,
				Shard:     s.j.shardIdx,
				Attempt:   s.j.attempt,
				Path:      rel,
				Off:       ch.Off,
				Data:      ch.Data,
				CRC:       ch.CRC,
			}, &resp)
			if err != nil {
				telShipErrors.Inc()
				s.netDown = true
				return false
			}
			if resp.Stale {
				return true
			}
			// ResumeOff is authoritative in every outcome: an ack moves
			// forward, a duplicate skips ahead, a gap rewinds.
			s.shipped[rel] = resp.ResumeOff
			if resp.OK {
				telShipped.Inc()
				telShipBytes.Add(int64(len(ch.Data)))
			}
		}
	}
	s.netDown = false
	return false
}

// sendTruncate aligns the mirror's journal with the local valid prefix.
// done=false means a network error (retry later).
func (s *shipper) sendTruncate(rel string, floor int64) (done, fenced bool) {
	var resp ChunkResponse
	err := postJSON(s.w.client, s.w.opt.Coordinator+PathChunk, ChunkFrame{
		WorkerID:  s.w.id,
		SweepHash: s.w.sweepHash,
		Shard:     s.j.shardIdx,
		Attempt:   s.j.attempt,
		Path:      rel,
		Off:       floor,
		Truncate:  true,
	}, &resp)
	if err != nil {
		telShipErrors.Inc()
		return false, false
	}
	if resp.Stale {
		return false, true
	}
	// Accepted (mirror cut to floor) or refused because the mirror is
	// shorter than the floor — either way ResumeOff is where shipping
	// starts.
	s.shipped[rel] = resp.ResumeOff
	return true, false
}

// allShipped reports whether every local file is fully mirrored.
func (s *shipper) allShipped(ctx context.Context) bool {
	if len(s.floors) > 0 {
		return false
	}
	for _, rel := range s.w.localFiles(s.j) {
		st, err := os.Stat(filepath.Join(s.j.dir, filepath.FromSlash(rel)))
		if err != nil {
			return false
		}
		if s.shipped[rel] < st.Size() {
			return false
		}
	}
	return ctx.Err() == nil
}

func short12(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
